// Cell search: directional initial access in a multi-BS deployment —
// the scenario that motivates the paper's introduction. A mobile scans
// candidate base stations scattered around it, each behind an
// independent LOS/NLOS/outage draw of the NYC 28 GHz path-loss model,
// spends a small alignment budget per reachable BS, and associates with
// the strongest measured beam.
//
//	go run ./examples/cellsearch
package main

import (
	"fmt"
	"log"
	"math"

	"mmwalign/internal/mac"
)

func main() {
	cfg := mac.CellSearchConfig{
		Link: mac.LinkConfig{
			Scheme:    "proposed",
			Multipath: true,
		},
		NumBS:       5,
		Radius:      150,
		BudgetPerBS: 96,
		Seed:        2022,
	}

	res, err := mac.RunCellSearch(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("directional cell search over %d candidate base stations\n", cfg.NumBS)
	fmt.Printf("(scheme %q, %d measurement slots per reachable BS)\n\n", cfg.Link.Scheme, cfg.BudgetPerBS)
	fmt.Printf("%-4s %-9s %-7s %-11s %-13s %-10s\n", "BS", "dist (m)", "state", "γ (dB)", "beam SNR (dB)", "slots")
	for _, bs := range res.PerBS {
		gamma, snr := fmtDB(bs.GammaDB), fmtDB(bs.TrueSNRDB)
		fmt.Printf("%-4d %-9.1f %-7s %-11s %-13s %-10d\n",
			bs.Index, bs.DistanceM, bs.State, gamma, snr, bs.SlotsSpent)
	}
	fmt.Println()
	if res.Associated < 0 {
		fmt.Println("initial access FAILED: every candidate was in outage")
		return
	}
	fmt.Printf("associated with BS %d at %.1f dB post-beamforming SNR after %d total slots\n",
		res.Associated, res.AssociatedSNRDB, res.TotalSlots)
	if res.FoundBestBS {
		fmt.Println("the measured ranking picked the genuinely best base station")
	} else {
		fmt.Println("note: measured ranking picked a suboptimal base station this drop")
	}
}

func fmtDB(v float64) string {
	if math.IsInf(v, -1) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}
