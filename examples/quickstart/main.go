// Quickstart: align one mmWave link with the paper's proposed scheme and
// compare it against random sounding at the same measurement budget.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mmwalign"
)

func main() {
	// A link with all defaults: 4×4 TX panel, 8×8 RX panel, 16×64 beam
	// codebooks (1024 pairs), single-path channel, 0 dB sounding SNR.
	link, err := mmwalign.NewLink(mmwalign.LinkSpec{Seed: 6})
	if err != nil {
		log.Fatal(err)
	}

	// Budget: sound 15% of the 1024 beam pairs.
	budget := link.TotalPairs() * 15 / 100

	fmt.Printf("link: %d beam pairs, sounding budget %d (%.0f%%)\n\n",
		link.TotalPairs(), budget, 100*float64(budget)/float64(link.TotalPairs()))

	for _, scheme := range []mmwalign.Scheme{mmwalign.SchemeProposed, mmwalign.SchemeRandom, mmwalign.SchemeScan} {
		res, err := link.Align(scheme, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s -> TX beam %2d (az %+6.1f°, el %+6.1f°), RX beam %2d (az %+6.1f°, el %+6.1f°)\n",
			scheme, res.TXBeam, res.TXAzDeg, res.TXElDeg, res.RXBeam, res.RXAzDeg, res.RXElDeg)
		fmt.Printf("%-10s    SNR %.1f dB (optimum %.1f dB, loss %.2f dB)\n\n",
			"", res.TrueSNRdB, res.OptimalSNRdB, res.LossDB)
	}
}
