// MUSIC refinement: the covariance estimate the alignment scheme builds
// is useful beyond codebook ranking. This example estimates Q̂ from a
// handful of beamformed energy measurements (the paper's estimator),
// runs MUSIC on it to localize the arrival direction off-grid, and
// compares the refined steering beam against the best codebook beam —
// recovering most of the codebook quantization loss without extra
// measurements.
//
//	go run ./examples/music
package main

import (
	"fmt"
	"log"
	"math"

	"mmwalign/internal/antenna"
	"mmwalign/internal/aoa"
	"mmwalign/internal/channel"
	"mmwalign/internal/covest"
	"mmwalign/internal/rng"
)

func main() {
	src := rng.New(11)
	tx := antenna.NewUPA(4, 4)
	rx := antenna.NewUPA(8, 8)
	ch, err := channel.NewSinglePath(src.Split("channel"), tx, rx, channel.SinglePathSpec{})
	if err != nil {
		log.Fatal(err)
	}
	truth := ch.Paths[0].AoA
	fmt.Printf("true arrival direction: az %+.2f°, el %+.2f°\n",
		deg(truth.Az), deg(truth.El))

	// Sound 48 of the 64 RX codewords once each (TX fixed at the path's
	// departure direction for clarity) and estimate Q̂ from the energies.
	cb := antenna.NewGridCodebook(rx, 8, 8, math.Pi, math.Pi/2)
	u := tx.Steering(ch.Paths[0].AoD)
	gamma := 1.0
	q := ch.RXCovariance(u)
	noise := src.Split("noise")
	var obs []covest.Observation
	// Random 48-beam subset: sounding a fixed prefix of the codebook
	// would leave whole angular regions unobserved.
	for _, i := range src.Split("pick").Perm(cb.Size())[:48] {
		v := cb.Beam(i).Weights
		lambda := gamma*q.QuadForm(v) + 1
		z := noise.ComplexNormal(lambda)
		obs = append(obs, covest.Observation{V: v, Energy: real(z)*real(z) + imag(z)*imag(z)})
	}
	est, err := covest.NewEstimator(rx.Elements(), covest.Options{Gamma: gamma, Mu: 1})
	if err != nil {
		log.Fatal(err)
	}
	qhat, stats, err := est.Estimate(obs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated Q̂ from %d energy measurements (rank %d, %d prox iterations)\n",
		len(obs), stats.Rank, stats.Iters)

	// Codebook answer vs MUSIC-refined answer.
	bestIdx, _ := cb.BestQuadForm(qhat)
	bestBeam := cb.Beam(bestIdx)
	_, peaks, err := aoa.Estimate(rx, qhat, aoa.Config{Sources: 1, GridAz: 256, GridEl: 128})
	if err != nil {
		log.Fatal(err)
	}
	refined := rx.Steering(peaks[0])

	gCode := ch.MeanPairGain(u, bestBeam.Weights)
	gRefined := ch.MeanPairGain(u, refined)
	gIdeal := ch.MeanPairGain(u, rx.Steering(truth))

	fmt.Printf("\nbest codebook beam:  az %+.2f°, el %+.2f°  -> %.2f dB below ideal\n",
		deg(bestBeam.Dir.Az), deg(bestBeam.Dir.El), lossDB(gCode, gIdeal))
	fmt.Printf("MUSIC-refined beam:  az %+.2f°, el %+.2f°  -> %.2f dB below ideal\n",
		deg(peaks[0].Az), deg(peaks[0].El), lossDB(gRefined, gIdeal))
	fmt.Printf("angle error: %.2f° (codebook grid spacing is %.1f°)\n",
		deg(math.Hypot(peaks[0].Az-truth.Az, peaks[0].El-truth.El)), 180.0/8)
}

func deg(r float64) float64 { return r * 180 / math.Pi }

func lossDB(g, ideal float64) float64 {
	if g <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(ideal/g)
}
