// Beam tracking: after the initial alignment, a deployed MAC does not
// re-run the full search every superframe — it re-sounds the held pair
// and its spatial neighbors for a few slots, escalating to a full
// realignment only when the measured SNR collapses (blockage, large
// drift). This example runs the tracking loop over a drifting, blocked
// multipath channel and contrasts its training cost and loss against
// realigning from scratch every frame.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"mmwalign/internal/mac"
)

func main() {
	base := mac.TrackerConfig{
		Link: mac.LinkConfig{
			Scheme:    "proposed",
			Multipath: true,
			GammaDB:   5,
		},
		Superframes:     16,
		SlotBudget:      512,
		FullTrainSlots:  96,
		TrackSlots:      8,
		DropThresholdDB: 8,
		Blockage:        &mac.BlockageConfig{PBlock: 0.15, PUnblock: 0.5, AttenuationDB: 25},
		Seed:            5,
	}

	stats, err := mac.RunTracker(base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("beam tracking over a drifting, intermittently blocked channel")
	fmt.Printf("\n%-7s %-7s %-12s %-9s %-14s %-10s\n",
		"frame", "mode", "train slots", "blocked", "achieved (dB)", "loss (dB)")
	for _, f := range stats.Frames {
		fmt.Printf("%-7d %-7s %-12d %-9d %-14.1f %-10.2f\n",
			f.Frame, f.Mode, f.TrainSlotsUsed, f.BlockedClusters, f.SelectedSNRDB, f.LossDB)
	}
	fmt.Printf("\nfull realignments: %d of %d frames\n", stats.FullRealigns, len(stats.Frames))
	fmt.Printf("mean training cost: %.1f slots/frame (full realignment costs %d)\n",
		stats.MeanTrainSlots, base.FullTrainSlots)
	fmt.Printf("mean loss: %.2f dB; efficiency vs genie: %.0f%%\n",
		stats.MeanLossDB, 100*stats.Efficiency)

	// Reference: realign from scratch every frame.
	always, err := mac.RunSuperframes(mac.SuperframeConfig{
		Link:        base.Link,
		Superframes: base.Superframes,
		TrainSlots:  base.FullTrainSlots,
		DataSlots:   base.SlotBudget - base.FullTrainSlots,
		Blockage:    base.Blockage,
		Seed:        base.Seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrealign-every-frame reference: %.1f slots/frame, loss %.2f dB, efficiency %.0f%%\n",
		float64(base.FullTrainSlots), always.MeanLossDB, 100*always.Efficiency)
}
