// Multi-user cell: training overhead scales with the number of served
// mobiles, so efficient beam alignment directly buys cell capacity —
// the argument of the paper's introduction. This example runs a
// one-BS/four-UE cell under two schedulers and two alignment schemes
// and prints cell throughput, efficiency against a zero-overhead genie,
// and Jain fairness.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"

	"mmwalign/internal/mac"
)

func main() {
	fmt.Println("one BS, 4 UEs, 32 training slots per UE per superframe,")
	fmt.Println("512 shared data slots, drifting multipath channels")
	fmt.Printf("\n%-12s %-14s %-12s %-12s %-10s\n",
		"scheme", "scheduler", "cell bits", "efficiency", "fairness")

	for _, scheme := range []string{"proposed", "random"} {
		for _, sched := range []string{"round-robin", "max-rate"} {
			cfg := mac.NetworkConfig{
				Link: mac.LinkConfig{
					Scheme:    scheme,
					Multipath: true,
					GammaDB:   0,
				},
				NumUEs:          4,
				Superframes:     8,
				TrainSlotsPerUE: 32,
				DataSlots:       512,
				Scheduler:       sched,
				Seed:            77,
			}
			stats, err := mac.RunNetwork(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-14s %-12.0f %-12.3f %-10.3f\n",
				scheme, sched, stats.SumBits, stats.Efficiency, stats.Fairness)
		}
	}
	fmt.Println("\nmax-rate trades fairness for throughput; the proposed scheme's")
	fmt.Println("better beams lift every configuration's efficiency")
}
