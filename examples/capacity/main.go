// Capacity trade-off: the protocol-level consequence the paper's
// efficiency argument rests on. Every superframe splits airtime between
// beam training and data; more training slots find a better beam pair
// but leave fewer slots to use it, and the channel drifts between
// superframes so training can never be skipped entirely. This example
// sweeps the training budget and prints delivered throughput relative
// to a genie that always holds the optimal beam with zero training,
// comparing the paper's proposed scheme against random sounding.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"mmwalign/internal/mac"
)

func main() {
	trainBudgets := []int{16, 32, 64, 128, 256}
	schemes := []string{"proposed", "random"}

	fmt.Println("superframe airtime trade-off (512-slot superframes, drifting channel)")
	fmt.Println("values: fraction of genie throughput delivered (higher is better)")
	fmt.Printf("\n%-12s", "train slots")
	for _, s := range schemes {
		fmt.Printf("%12s", s)
	}
	fmt.Printf("%14s\n", "mean loss(dB)")

	for _, train := range trainBudgets {
		fmt.Printf("%-12d", train)
		var lossNote string
		for _, scheme := range schemes {
			cfg := mac.SuperframeConfig{
				Link: mac.LinkConfig{
					Scheme:    scheme,
					Multipath: true,
				},
				Superframes:   12,
				TrainSlots:    train,
				DataSlots:     512 - train,
				DriftSigmaDeg: 1.5,
				Seed:          99,
			}
			stats, err := mac.RunSuperframes(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.3f", stats.Efficiency)
			if scheme == "proposed" {
				lossNote = fmt.Sprintf("%14.2f", stats.MeanLossDB)
			}
		}
		fmt.Println(lossNote)
	}
	fmt.Println("\nthe sweet spot: enough training to align well, not so much that")
	fmt.Println("training itself eats the data phase — and the proposed scheme")
	fmt.Println("reaches its peak with a smaller training budget")
}
