// Blockage recovery: the signature mmWave failure mode. A human body or
// vehicle crossing the beam attenuates the serving cluster by tens of
// dB; the link must fall back to an alternative cluster — which only a
// multipath-aware alignment scheme has learned about — and realign when
// the blocker clears. This example steps a two-state blockage process
// over the superframe simulation and prints the per-frame story.
//
//	go run ./examples/blockage
package main

import (
	"fmt"
	"log"
	"strings"

	"mmwalign/internal/mac"
)

func main() {
	cfg := mac.SuperframeConfig{
		Link: mac.LinkConfig{
			Scheme:    "proposed",
			Multipath: true,
			GammaDB:   5,
		},
		Superframes: 16,
		TrainSlots:  64,
		DataSlots:   448,
		// Blockage arrives rarely but persists for a few frames.
		Blockage: &mac.BlockageConfig{PBlock: 0.25, PUnblock: 0.4, AttenuationDB: 25},
		Seed:     31,
	}

	stats, err := mac.RunSuperframes(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-superframe link quality under dynamic cluster blockage")
	fmt.Println("(proposed scheme re-aligns every frame; 25 dB blockage depth)")
	fmt.Printf("\n%-7s %-9s %-14s %-14s %-10s %s\n",
		"frame", "blocked", "optimal (dB)", "achieved (dB)", "loss (dB)", "")
	for _, f := range stats.Frames {
		bar := strings.Repeat("#", clampInt(int(f.SelectedSNRDB/2), 0, 30))
		fmt.Printf("%-7d %-9d %-14.1f %-14.1f %-10.2f %s\n",
			f.Frame, f.BlockedClusters, f.OptimalSNRDB, f.SelectedSNRDB, f.LossDB, bar)
	}
	fmt.Printf("\nmean alignment loss: %.2f dB; protocol efficiency vs genie: %.0f%%\n",
		stats.MeanLossDB, 100*stats.Efficiency)
	fmt.Println("\nnote how the OPTIMAL SNR itself dips while clusters are blocked —")
	fmt.Println("re-alignment tracks the surviving clusters instead of losing the link")
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
