// Multipath deep-dive: reproduce the low-rank insight the paper builds
// on, then watch the proposed scheme exploit it on an NYC-style
// clustered channel.
//
// The example prints (1) the eigenvalue profile of the receive spatial
// covariance — showing that a handful of directions carry ~95% of the
// channel energy, the property that makes few-measurement estimation
// possible — and (2) the loss-vs-measurements trajectory of each scheme
// on that same channel.
//
//	go run ./examples/multipath
package main

import (
	"fmt"
	"log"
	"math"

	"mmwalign"
	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

func main() {
	const seed = 7

	// Part 1: the low-rank property, straight from the channel model.
	tx, rx := antenna.NewUPA(4, 4), antenna.NewUPA(8, 8)
	ch, err := channel.NewNYCMultipath(rng.New(seed).Split("channel"), tx, rx, channel.DefaultNYC28())
	if err != nil {
		log.Fatal(err)
	}
	q := ch.RXCovarianceIsotropic()
	eig, err := cmat.EigHermitian(q)
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	fmt.Printf("NYC multipath drop: %d clusters x %d subpaths\n",
		len(ch.Paths)/channel.DefaultNYC28().SubpathsPerCluster, channel.DefaultNYC28().SubpathsPerCluster)
	fmt.Println("\nRX spatial covariance energy capture (the low-rank property):")
	var acc float64
	for d := 0; d < 8 && d < len(eig.Values); d++ {
		if eig.Values[d] > 0 {
			acc += eig.Values[d]
		}
		fmt.Printf("  top %d of 64 directions: %5.1f%% of channel energy\n", d+1, 100*acc/total)
	}

	// Part 2: alignment on the same statistics via the public API.
	link, err := mmwalign.NewLink(mmwalign.LinkSpec{Seed: seed, Channel: mmwalign.ChannelNYCMultipath})
	if err != nil {
		log.Fatal(err)
	}
	budget := link.TotalPairs() / 5 // 20%

	fmt.Printf("\nAlignment trajectories (budget %d of %d pairs):\n", budget, link.TotalPairs())
	fmt.Printf("%-12s", "measurements")
	checkpoints := []int{16, 32, 64, 128, budget}
	for _, c := range checkpoints {
		fmt.Printf("%8d", c)
	}
	fmt.Println()
	for _, scheme := range []mmwalign.Scheme{mmwalign.SchemeProposed, mmwalign.SchemeRandom, mmwalign.SchemeScan} {
		res, err := link.Align(scheme, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", scheme)
		for _, c := range checkpoints {
			idx := c - 1
			if idx >= len(res.LossTrajectoryDB) {
				idx = len(res.LossTrajectoryDB) - 1
			}
			loss := res.LossTrajectoryDB[idx]
			if math.IsInf(loss, 1) {
				fmt.Printf("%8s", "-")
			} else {
				fmt.Printf("%8.2f", loss)
			}
		}
		fmt.Printf("   (final loss %.2f dB)\n", res.LossDB)
	}
	fmt.Println("\nvalues are SNR loss vs the optimal pair, in dB; lower is better")
}
