package mmwalign

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"time"

	"mmwalign/internal/align"
	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
	"mmwalign/internal/serve"
)

// Scheme names a beam-alignment strategy.
type Scheme string

// Available alignment schemes.
const (
	// SchemeProposed is the paper's learning-based scheme (Algorithm 1):
	// covariance-estimation-guided beam selection.
	SchemeProposed Scheme = "proposed"
	// SchemeRandom sounds uniformly random pairs (baseline).
	SchemeRandom Scheme = "random"
	// SchemeScan sounds pairs in spatially adjacent order (baseline).
	SchemeScan Scheme = "scan"
	// SchemeExhaustive rasters over every pair.
	SchemeExhaustive Scheme = "exhaustive"
	// SchemeHierarchical descends a multi-resolution RX codebook.
	SchemeHierarchical Scheme = "hierarchical"
	// SchemeTwoSided is the future-work extension: the proposed scheme's
	// RX machinery plus feedback-driven TX beam selection.
	SchemeTwoSided Scheme = "two-sided"
	// SchemeLocalRefine is the divide-and-conquer comparison baseline:
	// random probing followed by hill-climbing on the beam grid.
	SchemeLocalRefine Scheme = "local-refine"
	// SchemeDigital is the fully-digital-receiver upper bound: vector
	// snapshots and sample-covariance beam selection.
	SchemeDigital Scheme = "digital"
)

// ChannelKind selects the propagation model.
type ChannelKind int

// Channel kinds.
const (
	// ChannelSinglePath is one specular path with random geometry — the
	// paper's Fig. 5/7 scenario.
	ChannelSinglePath ChannelKind = iota + 1
	// ChannelNYCMultipath is the clustered multipath model with NYC
	// 28 GHz statistics — the paper's Fig. 6/8 scenario.
	ChannelNYCMultipath
)

// LinkSpec describes a simulated mmWave link. The zero value of every
// field selects the paper's setting.
type LinkSpec struct {
	// TXPanelX, TXPanelZ are the transmit UPA dimensions (default 4×4).
	TXPanelX, TXPanelZ int
	// RXPanelX, RXPanelZ are the receive UPA dimensions (default 8×8).
	RXPanelX, RXPanelZ int
	// TXBeamsAz, TXBeamsEl shape the TX codebook grid (default 4×4,
	// card(U) = 16).
	TXBeamsAz, TXBeamsEl int
	// RXBeamsAz, RXBeamsEl shape the RX codebook grid (default 8×8,
	// card(V) = 64).
	RXBeamsAz, RXBeamsEl int
	// SNRdB is the pre-beamforming sounding SNR E_s/N₀ (default 0 dB).
	SNRdB float64
	// Snapshots is the number of fading+noise snapshots averaged per
	// measurement (default 4).
	Snapshots int
	// Channel picks the propagation model (default ChannelSinglePath).
	Channel ChannelKind
	// Seed makes the link reproducible.
	Seed int64
}

func (s LinkSpec) withDefaults() LinkSpec {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&s.TXPanelX, 4)
	def(&s.TXPanelZ, 4)
	def(&s.RXPanelX, 8)
	def(&s.RXPanelZ, 8)
	def(&s.TXBeamsAz, 4)
	def(&s.TXBeamsEl, 4)
	def(&s.RXBeamsAz, 8)
	def(&s.RXBeamsEl, 8)
	def(&s.Snapshots, 4)
	if s.Channel == 0 {
		s.Channel = ChannelSinglePath
	}
	return s
}

// AlignOptions tunes the proposed scheme. The zero value uses the
// defaults of the reproduction.
type AlignOptions struct {
	// J is the number of RX measurements per TX slot (default 8).
	J int
	// Mu is the nuclear-norm regularization weight (default 1).
	Mu float64
	// Window bounds the estimation history (default 96 measurements).
	Window int
}

// Result reports an alignment run.
type Result struct {
	// Scheme is the strategy that produced the result.
	Scheme Scheme
	// TXBeam and RXBeam are the selected codebook indices.
	TXBeam, RXBeam int
	// TXAzDeg, TXElDeg, RXAzDeg, RXElDeg are the selected steering
	// angles in degrees.
	TXAzDeg, TXElDeg, RXAzDeg, RXElDeg float64
	// MeasuredSNRdB is the measured SNR of the selected pair — what the
	// receiver can report.
	MeasuredSNRdB float64
	// TrueSNRdB is the ground-truth expected SNR of the selected pair.
	TrueSNRdB float64
	// OptimalSNRdB is the oracle-best pair's SNR.
	OptimalSNRdB float64
	// LossDB is OptimalSNRdB − TrueSNRdB, the paper's Eq. 31 metric.
	LossDB float64
	// Measurements is the number of pairs actually sounded.
	Measurements int
	// SearchRate is Measurements / TotalPairs, the paper's Eq. 32.
	SearchRate float64
	// LossTrajectoryDB[i] is the loss of the best pair found after i+1
	// measurements (+Inf before the first codebook pair is sounded).
	LossTrajectoryDB []float64
}

// Link is a simulated mmWave TX/RX pair ready for beam alignment.
type Link struct {
	spec LinkSpec
	env  *align.Env
	root *rng.Source
	runs int
}

// NewLink builds a link from the spec, drawing the channel realization
// from the spec's seed.
func NewLink(spec LinkSpec) (*Link, error) {
	spec = spec.withDefaults()
	tx := antenna.NewUPA(spec.TXPanelX, spec.TXPanelZ)
	rx := antenna.NewUPA(spec.RXPanelX, spec.RXPanelZ)
	root := rng.New(spec.Seed)

	var (
		ch  *channel.Channel
		err error
	)
	switch spec.Channel {
	case ChannelSinglePath:
		ch, err = channel.NewSinglePath(root.Split("channel"), tx, rx, channel.SinglePathSpec{})
	case ChannelNYCMultipath:
		ch, err = channel.NewNYCMultipath(root.Split("channel"), tx, rx, channel.DefaultNYC28())
	default:
		return nil, fmt.Errorf("mmwalign: unknown channel kind %d", spec.Channel)
	}
	if err != nil {
		return nil, fmt.Errorf("mmwalign: building channel: %w", err)
	}

	sounder, err := meas.NewSounder(ch, channel.DBToLinear(spec.SNRdB), root.Split("noise"))
	if err != nil {
		return nil, fmt.Errorf("mmwalign: building sounder: %w", err)
	}
	sounder.SetSnapshots(spec.Snapshots)

	env := &align.Env{
		TXBook:  antenna.NewGridCodebook(tx, spec.TXBeamsAz, spec.TXBeamsEl, math.Pi, math.Pi/2),
		RXBook:  antenna.NewGridCodebook(rx, spec.RXBeamsAz, spec.RXBeamsEl, math.Pi, math.Pi/2),
		Sounder: sounder,
		Src:     root.Split("strategy"),
	}
	return &Link{spec: spec, env: env, root: root}, nil
}

// TotalPairs returns T = card(U)·card(V) for this link.
func (l *Link) TotalPairs() int { return l.env.TotalPairs() }

// Spec returns the (defaulted) specification the link was built with.
func (l *Link) Spec() LinkSpec { return l.spec }

// Align runs the given scheme with the given measurement budget and
// returns the selected beam pair with its quality metrics. Each call
// sounds the same channel realization with fresh measurement noise and
// fresh strategy randomness, so repeated calls (or different schemes)
// are directly comparable. Align is the non-cancellable convenience
// form of AlignContext.
func (l *Link) Align(scheme Scheme, budget int, opts ...AlignOptions) (Result, error) {
	return l.AlignContext(context.Background(), scheme, budget, opts...)
}

// AlignContext is Align with cooperative cancellation: when ctx is
// cancelled or its deadline passes, the run stops at the next
// measurement or estimation boundary and the context's error is
// returned (matchable with errors.Is).
func (l *Link) AlignContext(ctx context.Context, scheme Scheme, budget int, opts ...AlignOptions) (Result, error) {
	var opt AlignOptions
	if len(opts) > 1 {
		return Result{}, fmt.Errorf("mmwalign: pass at most one AlignOptions")
	}
	if len(opts) == 1 {
		opt = opts[0]
	}
	strat, err := l.strategy(scheme, opt)
	if err != nil {
		return Result{}, err
	}
	l.runs++
	runEnv := &align.Env{
		TXBook:  l.env.TXBook,
		RXBook:  l.env.RXBook,
		Sounder: l.env.Sounder,
		Src:     l.root.SplitIndexed("align-run", l.runs),
	}
	tr, err := align.EvaluateContext(ctx, runEnv, strat, budget)
	if err != nil {
		if ctx.Err() != nil {
			return Result{}, err
		}
		return Result{}, fmt.Errorf("mmwalign: %w", err)
	}

	txBeam := runEnv.TXBook.Beam(tr.BestPair.TX)
	rxBeam := runEnv.RXBook.Beam(tr.BestPair.RX)
	return Result{
		Scheme:           scheme,
		TXBeam:           tr.BestPair.TX,
		RXBeam:           tr.BestPair.RX,
		TXAzDeg:          txBeam.Dir.Az * 180 / math.Pi,
		TXElDeg:          txBeam.Dir.El * 180 / math.Pi,
		RXAzDeg:          rxBeam.Dir.Az * 180 / math.Pi,
		RXElDeg:          rxBeam.Dir.El * 180 / math.Pi,
		MeasuredSNRdB:    channel.LinearToDB(tr.BestMeasuredSNR),
		TrueSNRdB:        channel.LinearToDB(tr.BestTrueSNR),
		OptimalSNRdB:     channel.LinearToDB(tr.OptSNR),
		LossDB:           tr.FinalLossDB(),
		Measurements:     len(tr.LossDB),
		SearchRate:       float64(len(tr.LossDB)) / float64(l.TotalPairs()),
		LossTrajectoryDB: tr.LossDB,
	}, nil
}

// OptimalSNRdB returns the oracle-best pair's true SNR in dB — useful
// for computing losses of externally chosen pairs.
func (l *Link) OptimalSNRdB() float64 {
	_, snr := align.Oracle(l.env)
	return channel.LinearToDB(snr)
}

// ServerConfig tunes the embedded alignment server. The zero value is
// usable: defaults match cmd/beamserve's.
type ServerConfig struct {
	// MaxConcurrent bounds requests executing simultaneously (default 4).
	MaxConcurrent int
	// QueueDepth bounds requests waiting beyond MaxConcurrent (default
	// 8); arrivals past the sum are rejected with 503 + Retry-After.
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request does
	// not carry its own timeout_ms (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps a request-supplied timeout_ms (default 60s).
	MaxTimeout time.Duration
	// RetryAfterSeconds is the floor for the Retry-After hint on
	// backpressure responses (default 1); the live hint scales with the
	// observed queue drain time.
	RetryAfterSeconds int

	// RateLimitPerSec enables per-client token-bucket rate limiting
	// (429 + Retry-After) at this sustained rate; 0 disables. Clients
	// are keyed by the X-Client-ID header, falling back to remote host.
	RateLimitPerSec float64
	// RateLimitBurst is the bucket capacity (default ceil of the rate).
	RateLimitBurst int
	// BreakerThreshold is how many consecutive estimation failures on
	// one estimator spec trip its circuit breaker, short-circuiting to
	// the scan-order fallback (default 5; negative disables).
	BreakerThreshold int
	// BreakerCooldown is the open-circuit wait before a half-open probe
	// (default 5s).
	BreakerCooldown time.Duration
	// BrownoutQueueFrac is the queue-occupancy fraction that arms
	// brown-out degraded mode: under sustained pressure /v1/align
	// transparently serves scan-order responses marked "degraded": true
	// instead of 503ing (default 0.75; negative disables).
	BrownoutQueueFrac float64
	// BrownoutAfter / BrownoutRecover are the sustained-pressure and
	// sustained-quiet windows for entering and leaving brown-out
	// (default 2s each).
	BrownoutAfter   time.Duration
	BrownoutRecover time.Duration
}

// NewAlignHandler returns an http.Handler serving the beam-alignment
// API (POST /v1/estimate, POST /v1/align, GET /healthz, GET /statsz —
// see cmd/beamserve) together with a drain function: calling it stops
// admission and blocks until in-flight requests complete or its context
// expires. The handler keeps pooled estimator workspaces warm across
// requests; embed it when the alignment service should live inside an
// existing process instead of the standalone binary.
func NewAlignHandler(cfg ServerConfig) (http.Handler, func(context.Context) error) {
	srv := serve.NewServer(serve.Config{
		MaxConcurrent:     cfg.MaxConcurrent,
		QueueDepth:        cfg.QueueDepth,
		DefaultTimeout:    cfg.DefaultTimeout,
		MaxTimeout:        cfg.MaxTimeout,
		RetryAfterSeconds: cfg.RetryAfterSeconds,
		RateLimitPerSec:   cfg.RateLimitPerSec,
		RateLimitBurst:    cfg.RateLimitBurst,
		BreakerThreshold:  cfg.BreakerThreshold,
		BreakerCooldown:   cfg.BreakerCooldown,
		BrownoutQueueFrac: cfg.BrownoutQueueFrac,
		BrownoutAfter:     cfg.BrownoutAfter,
		BrownoutRecover:   cfg.BrownoutRecover,
	})
	return srv, srv.Drain
}

func (l *Link) strategy(scheme Scheme, opt AlignOptions) (align.Strategy, error) {
	strat, err := align.ForScheme(string(scheme), l.env.RXBook, align.SchemeSpec{
		J:      opt.J,
		Mu:     opt.Mu,
		Window: opt.Window,
		Gamma:  channel.DBToLinear(l.spec.SNRdB),
	})
	if err != nil {
		return nil, fmt.Errorf("mmwalign: unknown scheme %q", scheme)
	}
	return strat, nil
}
