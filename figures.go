package mmwalign

import (
	"context"
	"fmt"

	"mmwalign/internal/experiment"
)

// FigureSeries is one curve of a reproduced paper figure.
type FigureSeries struct {
	// Name is the scheme the curve belongs to.
	Name string
	// X and Y are the sweep points.
	X, Y []float64
	// YErr holds the 95% confidence half-width per point.
	YErr []float64
}

// FigureResult is a regenerated figure from the paper's evaluation.
type FigureResult struct {
	// ID is "fig5".."fig8".
	ID string
	// Title restates what the paper plots.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds one curve per scheme (random, scan, proposed by
	// default).
	Series []FigureSeries
	// FailedDrops counts channel drops excluded under the error budget
	// (ReproduceOptions.MaxFailedDrops); the Series then aggregate only
	// the surviving drops.
	FailedDrops int
	// FailureMessages describes each excluded (drop, scheme) cell.
	FailureMessages []string
}

// ReproduceOptions tunes a figure reproduction beyond the paper's
// defaults.
type ReproduceOptions struct {
	// MaxFailedDrops is the error budget: how many drops may fail while
	// still producing a figure. The default 0 is strict — any failure
	// aborts the reproduction with an attributed error.
	MaxFailedDrops int
}

// ReproduceFigure regenerates one of the paper's result figures (5–8)
// at the paper's default configuration with the given number of
// independent channel drops. Identical (figure, drops, seed) inputs
// return identical results. Expect roughly a second of compute per drop
// at the full problem size; the benchmark harness and cmd/figgen expose
// the same generators with more knobs. ReproduceFigure is the
// non-cancellable convenience form of ReproduceFigureContext.
func ReproduceFigure(figure, drops int, seed int64) (FigureResult, error) {
	return ReproduceFigureContext(context.Background(), figure, drops, seed)
}

// ReproduceFigureContext is ReproduceFigure with cooperative
// cancellation and an optional error budget: cancelling ctx stops the
// drop workers and returns the context's error; with a positive
// MaxFailedDrops, failed drops are excluded from the aggregation and
// reported in the result instead of aborting it.
func ReproduceFigureContext(ctx context.Context, figure, drops int, seed int64, opts ...ReproduceOptions) (FigureResult, error) {
	if drops <= 0 {
		return FigureResult{}, fmt.Errorf("mmwalign: drops %d must be positive", drops)
	}
	var opt ReproduceOptions
	if len(opts) > 1 {
		return FigureResult{}, fmt.Errorf("mmwalign: pass at most one ReproduceOptions")
	}
	if len(opts) == 1 {
		opt = opts[0]
	}
	fig, err := experiment.GenerateContext(ctx, figure, experiment.Config{
		Seed:           seed,
		Drops:          drops,
		MaxFailedDrops: opt.MaxFailedDrops,
	})
	if err != nil {
		if ctx.Err() != nil {
			return FigureResult{}, err
		}
		return FigureResult{}, fmt.Errorf("mmwalign: %w", err)
	}
	out := FigureResult{ID: fig.ID, Title: fig.Title, XLabel: fig.XLabel, YLabel: fig.YLabel}
	for _, s := range fig.Series {
		out.Series = append(out.Series, FigureSeries{
			Name: s.Name,
			X:    append([]float64(nil), s.X...),
			Y:    append([]float64(nil), s.Y...),
			YErr: append([]float64(nil), s.YErr...),
		})
	}
	if fig.Failures != nil {
		out.FailedDrops = fig.Failures.FailedDrops
		for _, f := range fig.Failures.Failures {
			out.FailureMessages = append(out.FailureMessages,
				fmt.Sprintf("drop %d scheme %s: %v", f.Drop, f.Scheme, f.Err))
		}
	}
	return out, nil
}
