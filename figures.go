package mmwalign

import (
	"fmt"

	"mmwalign/internal/experiment"
)

// FigureSeries is one curve of a reproduced paper figure.
type FigureSeries struct {
	// Name is the scheme the curve belongs to.
	Name string
	// X and Y are the sweep points.
	X, Y []float64
	// YErr holds the 95% confidence half-width per point.
	YErr []float64
}

// FigureResult is a regenerated figure from the paper's evaluation.
type FigureResult struct {
	// ID is "fig5".."fig8".
	ID string
	// Title restates what the paper plots.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds one curve per scheme (random, scan, proposed by
	// default).
	Series []FigureSeries
}

// ReproduceFigure regenerates one of the paper's result figures (5–8)
// at the paper's default configuration with the given number of
// independent channel drops. Identical (figure, drops, seed) inputs
// return identical results. Expect roughly a second of compute per drop
// at the full problem size; the benchmark harness and cmd/figgen expose
// the same generators with more knobs.
func ReproduceFigure(figure, drops int, seed int64) (FigureResult, error) {
	if drops <= 0 {
		return FigureResult{}, fmt.Errorf("mmwalign: drops %d must be positive", drops)
	}
	fig, err := experiment.Generate(figure, experiment.Config{Seed: seed, Drops: drops})
	if err != nil {
		return FigureResult{}, fmt.Errorf("mmwalign: %w", err)
	}
	out := FigureResult{ID: fig.ID, Title: fig.Title, XLabel: fig.XLabel, YLabel: fig.YLabel}
	for _, s := range fig.Series {
		out.Series = append(out.Series, FigureSeries{
			Name: s.Name,
			X:    append([]float64(nil), s.X...),
			Y:    append([]float64(nil), s.Y...),
			YErr: append([]float64(nil), s.YErr...),
		})
	}
	return out, nil
}
