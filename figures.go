package mmwalign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"mmwalign/internal/experiment"
	"mmwalign/internal/journal"
	"mmwalign/internal/obs"
)

// FigureSeries is one curve of a reproduced paper figure.
type FigureSeries struct {
	// Name is the scheme the curve belongs to.
	Name string
	// X and Y are the sweep points.
	X, Y []float64
	// YErr holds the 95% confidence half-width per point.
	YErr []float64
}

// FigureResult is a regenerated figure from the paper's evaluation.
type FigureResult struct {
	// ID is "fig5".."fig8".
	ID string
	// Title restates what the paper plots.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds one curve per scheme (random, scan, proposed by
	// default).
	Series []FigureSeries
	// FailedDrops counts channel drops excluded under the error budget
	// (ReproduceOptions.MaxFailedDrops); the Series then aggregate only
	// the surviving drops.
	FailedDrops int
	// FailureMessages describes each excluded (drop, scheme) cell.
	FailureMessages []string
	// Manifest records how the figure was produced: the resolved
	// configuration, seed, toolchain, and — when
	// ReproduceOptions.Instrument is set — per-phase timings, event
	// counters and covariance-solver aggregates.
	Manifest *RunManifest
}

// RunPhase is one timed phase of a reproduction run (channel
// generation, sounding, estimation, selection, oracle scoring).
type RunPhase struct {
	// Name is the phase name.
	Name string
	// Count is the number of timed spans folded in.
	Count int64
	// TotalNS is the accumulated wall-clock time in nanoseconds.
	TotalNS int64
}

// RunSolverStats aggregates the covariance-solver cost of a run.
type RunSolverStats struct {
	// Estimations is the number of covariance solves.
	Estimations int64
	// Iters totals proximal steps across all solves; EigenDecomps,
	// ObjectiveEvals, GradientEvals and Backtracks total the per-solve
	// cost counters, and Restarts the divergence-forced momentum
	// restarts.
	Iters          int64
	EigenDecomps   int64
	ObjectiveEvals int64
	GradientEvals  int64
	Backtracks     int64
	Restarts       int64
	// Recovered and Degraded count solves that ended through a solver
	// guardrail.
	Recovered int64
	Degraded  int64
	// MaxRank and MaxSubspaceDim are the largest estimate rank and
	// working-subspace dimension seen.
	MaxRank        int
	MaxSubspaceDim int
}

// RunManifest is the machine-readable record of one figure
// reproduction. Its serialized form (WriteJSON) follows the
// "mmwalign/run-manifest/v1" schema that cmd/figgen writes next to
// each CSV.
type RunManifest struct {
	// Schema identifies the manifest document format.
	Schema string
	// Figure and Title name the reproduced figure.
	Figure string
	Title  string
	// Seed is the root RNG seed the run derived everything from.
	Seed int64
	// GoVersion is the toolchain that produced the figure.
	GoVersion string
	// ConfigJSON is the fully defaulted experiment configuration.
	ConfigJSON json.RawMessage
	// Instrumented reports whether phase timings, counters and solver
	// aggregates were collected (ReproduceOptions.Instrument).
	Instrumented bool
	// ElapsedNS is the total run wall-clock time in nanoseconds.
	ElapsedNS int64
	// Phases, Counters and Solver hold the instrumentation results
	// (empty unless Instrumented).
	Phases   []RunPhase
	Counters map[string]int64
	Solver   RunSolverStats
	// Resume, Retries and Shard carry the robustness evidence of the
	// run: how many cells a checkpoint journal satisfied, what the
	// per-cell retry engine absorbed, and — for a figure merged from a
	// multi-process sharded sweep — which worker computed what. Nil
	// when the corresponding machinery was not engaged.
	Resume  *RunResume
	Retries *RunRetries
	Shard   *RunShard

	raw *obs.Manifest
}

// RunResume mirrors the manifest's checkpoint/resume evidence.
type RunResume struct {
	// Journal is the checkpoint file path; ConfigHash the canonical
	// config hash it was validated against.
	Journal    string
	ConfigHash string
	// SkippedCells were satisfied from the journal, RecordedCells newly
	// appended, out of TotalCells.
	SkippedCells  int
	RecordedCells int
	TotalCells    int
}

// RunRetries mirrors the manifest's retry-engine evidence.
type RunRetries struct {
	// MaxRetries is the configured per-cell budget; Attempts the
	// re-runs performed; RecoveredCells the transient failures rescued;
	// ExhaustedCells the permanent failures that burned every retry.
	MaxRetries     int
	Attempts       int64
	RecoveredCells int64
	ExhaustedCells int64
}

// RunShard mirrors the manifest's sharded-sweep evidence: the figure
// bytes are identical to a single-process run, so this is what records
// that the run was sharded, what each worker contributed, and how many
// cells were stolen from dead workers or duplicate-resolved.
type RunShard struct {
	// Dir is the shared shard directory.
	Dir string
	// MergedCells distinct cells were folded out of the worker journals
	// (of TotalCells); DuplicateCells were recorded by more than one
	// worker; StolenCells were reclaimed from stale leases.
	TotalCells     int
	MergedCells    int
	DuplicateCells int
	StolenCells    int
	// Workers lists per-worker tallies, sorted by worker ID.
	Workers []RunShardWorker
}

// RunShardWorker is one worker's contribution to a sharded run.
type RunShardWorker struct {
	// Worker is the worker ID.
	Worker string
	// JournaledCells is what the worker's journal holds; ComputedCells,
	// StolenCells and FailedCells are its self-reported tallies.
	JournaledCells int
	ComputedCells  int
	StolenCells    int
	FailedCells    int
	// Reported is false when the worker never wrote its final summary —
	// the signature of a killed worker.
	Reported bool
}

// WriteJSON writes the manifest in its canonical schema-validated JSON
// form.
func (m *RunManifest) WriteJSON(w io.Writer) error {
	if m == nil || m.raw == nil {
		return fmt.Errorf("mmwalign: empty run manifest")
	}
	return m.raw.WriteJSON(w)
}

// newRunManifest mirrors the engine's manifest into the public type.
func newRunManifest(src *obs.Manifest) *RunManifest {
	if src == nil {
		return nil
	}
	m := &RunManifest{
		Schema:       src.Schema,
		Figure:       src.Figure,
		Title:        src.Title,
		Seed:         src.Seed,
		GoVersion:    src.GoVersion,
		ConfigJSON:   append(json.RawMessage(nil), src.Config...),
		Instrumented: src.Instrumented,
		ElapsedNS:    src.ElapsedNS,
		Solver:       RunSolverStats(src.Solver),
		raw:          src,
	}
	for _, p := range src.Phases {
		m.Phases = append(m.Phases, RunPhase(p))
	}
	if src.Resume != nil {
		m.Resume = &RunResume{
			Journal:       src.Resume.Journal,
			ConfigHash:    src.Resume.ConfigHash,
			SkippedCells:  src.Resume.SkippedCells,
			RecordedCells: src.Resume.RecordedCells,
			TotalCells:    src.Resume.TotalCells,
		}
	}
	if src.Retries != nil {
		m.Retries = &RunRetries{
			MaxRetries:     src.Retries.MaxRetries,
			Attempts:       src.Retries.Attempts,
			RecoveredCells: src.Retries.RecoveredCells,
			ExhaustedCells: src.Retries.ExhaustedCells,
		}
	}
	if src.Shard != nil {
		m.Shard = &RunShard{
			Dir:            src.Shard.Dir,
			TotalCells:     src.Shard.TotalCells,
			MergedCells:    src.Shard.MergedCells,
			DuplicateCells: src.Shard.DuplicateCells,
			StolenCells:    src.Shard.StolenCells,
		}
		for _, w := range src.Shard.Workers {
			m.Shard.Workers = append(m.Shard.Workers, RunShardWorker(w))
		}
	}
	if len(src.Counters) > 0 {
		m.Counters = make(map[string]int64, len(src.Counters))
		for k, v := range src.Counters {
			m.Counters[k] = v
		}
	}
	return m
}

// ReproduceOptions tunes a figure reproduction beyond the paper's
// defaults.
type ReproduceOptions struct {
	// MaxFailedDrops is the error budget: how many drops may fail while
	// still producing a figure. The default 0 is strict — any failure
	// aborts the reproduction with an attributed error.
	MaxFailedDrops int
	// MaxRetries re-runs a failed (drop, scheme) cell up to this many
	// extra times (with RetryBackoff between attempts) before the
	// failure counts against MaxFailedDrops. Cells are deterministic in
	// (seed, drop, scheme), so retries can only rescue transient
	// faults — they never change figure numbers.
	MaxRetries int
	// RetryBackoff is the delay before a cell's first retry, doubling
	// per attempt (capped). Zero retries immediately.
	RetryBackoff time.Duration
	// Checkpoint, when non-empty, is the path of a crash-safe run
	// journal: every completed cell is fsynced there, and with Resume
	// set a prior journal's cells are skipped — an interrupted
	// reproduction continues where it stopped and still returns
	// byte-identical Series. The journal refuses a config that hashes
	// differently from the one it was started under.
	Checkpoint string
	// Resume loads the Checkpoint journal instead of starting it fresh.
	Resume bool
	// Instrument enables phase timers, event counters and solver
	// aggregation for the run; the results appear on
	// FigureResult.Manifest. Instrumentation is passive — the figure's
	// numbers are identical either way — and costs a few percent of
	// wall-clock time.
	Instrument bool
	// Progress, when non-nil, receives a live event after each completed
	// (drop, scheme) cell. It is called from worker goroutines and must
	// be safe for concurrent use. Requires Instrument.
	Progress func(done, total, failed int)
}

// ReproduceFigure regenerates one of the paper's result figures (5–8)
// at the paper's default configuration with the given number of
// independent channel drops. Identical (figure, drops, seed) inputs
// return identical results. Expect roughly a second of compute per drop
// at the full problem size; the benchmark harness and cmd/figgen expose
// the same generators with more knobs. ReproduceFigure is the
// non-cancellable convenience form of ReproduceFigureContext.
func ReproduceFigure(figure, drops int, seed int64) (FigureResult, error) {
	return ReproduceFigureContext(context.Background(), figure, drops, seed)
}

// ReproduceFigureContext is ReproduceFigure with cooperative
// cancellation and an optional error budget: cancelling ctx stops the
// drop workers and returns the context's error; with a positive
// MaxFailedDrops, failed drops are excluded from the aggregation and
// reported in the result instead of aborting it.
func ReproduceFigureContext(ctx context.Context, figure, drops int, seed int64, opts ...ReproduceOptions) (FigureResult, error) {
	if drops <= 0 {
		return FigureResult{}, fmt.Errorf("mmwalign: drops %d must be positive", drops)
	}
	var opt ReproduceOptions
	if len(opts) > 1 {
		return FigureResult{}, fmt.Errorf("mmwalign: pass at most one ReproduceOptions")
	}
	if len(opts) == 1 {
		opt = opts[0]
	}
	if opt.Instrument {
		rec := obs.New()
		if opt.Progress != nil {
			fn := opt.Progress
			rec.SetProgress(func(p obs.Progress) {
				fn(int(p.Done), int(p.Total), int(p.Failed))
			})
		}
		ctx = obs.Into(ctx, rec)
	}
	cfg := experiment.Config{
		Seed:           seed,
		Drops:          drops,
		MaxFailedDrops: opt.MaxFailedDrops,
		MaxRetries:     opt.MaxRetries,
		RetryBackoff:   opt.RetryBackoff,
	}
	if opt.Checkpoint != "" {
		want, err := experiment.JournalHeader(figure, cfg)
		if err != nil {
			return FigureResult{}, fmt.Errorf("mmwalign: %w", err)
		}
		var jnl *journal.Journal
		if opt.Resume {
			if _, statErr := os.Stat(opt.Checkpoint); statErr == nil {
				jnl, err = journal.Open(opt.Checkpoint, want)
			} else {
				jnl, err = journal.Create(opt.Checkpoint, want)
			}
		} else {
			jnl, err = journal.Create(opt.Checkpoint, want)
		}
		if err != nil {
			return FigureResult{}, fmt.Errorf("mmwalign: checkpoint: %w", err)
		}
		defer jnl.Close()
		cfg.Journal = jnl
	}
	fig, err := experiment.GenerateContext(ctx, figure, cfg)
	if err != nil {
		if ctx.Err() != nil {
			return FigureResult{}, err
		}
		return FigureResult{}, fmt.Errorf("mmwalign: %w", err)
	}
	out := FigureResult{ID: fig.ID, Title: fig.Title, XLabel: fig.XLabel, YLabel: fig.YLabel}
	for _, s := range fig.Series {
		out.Series = append(out.Series, FigureSeries{
			Name: s.Name,
			X:    append([]float64(nil), s.X...),
			Y:    append([]float64(nil), s.Y...),
			YErr: append([]float64(nil), s.YErr...),
		})
	}
	if fig.Failures != nil {
		out.FailedDrops = fig.Failures.FailedDrops
		for _, f := range fig.Failures.Failures {
			out.FailureMessages = append(out.FailureMessages,
				fmt.Sprintf("drop %d scheme %s: %v", f.Drop, f.Scheme, f.Err))
		}
	}
	out.Manifest = newRunManifest(fig.Manifest)
	return out, nil
}
