// Package mmwalign is a Go implementation of efficient directional beam
// alignment for millimeter-wave cellular links, reproducing "Directional
// Beam Alignment for Millimeter Wave Cellular Systems" (Zhao, Wang,
// Viswanathan; ICDCS 2016).
//
// A millimeter-wave link needs the transmitter and receiver to point
// narrow analog beams at each other before useful data can flow, and
// exhaustively sounding every TX/RX beam-pair combination is quadratic
// in codebook size. This library implements the paper's alternative:
// sound a small, adaptively chosen subset of pairs, exploit the low-rank
// structure of the mmWave spatial covariance to estimate the channel
// from those few energy measurements (a nuclear-norm-regularized
// maximum-likelihood problem in the matrix-completion family), and let
// the running estimate steer which beams to sound next.
//
// The package exposes a compact facade — build a Link, call Align — over
// the full simulation stack in internal/: complex linear algebra
// (internal/cmat), antenna arrays and codebooks (internal/antenna),
// single-path and NYC-measurement-derived multipath channels
// (internal/channel), the sounding model (internal/meas), the covariance
// estimator and a general SVT matrix-completion solver (internal/covest),
// the alignment strategies themselves (internal/align), a slotted MAC
// and directional cell-search layer (internal/mac), and the harness that
// regenerates the paper's figures (internal/experiment, cmd/figgen).
//
// # Quick start
//
//	link, err := mmwalign.NewLink(mmwalign.LinkSpec{Seed: 1})
//	if err != nil { ... }
//	res, err := link.Align(mmwalign.SchemeProposed, 128)
//	if err != nil { ... }
//	fmt.Printf("beam pair (%d,%d): %.1f dB below optimal after sounding %.0f%% of pairs\n",
//	        res.TXBeam, res.RXBeam, res.LossDB, 100*res.SearchRate)
//
// See the examples/ directory for runnable scenarios and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology and results.
package mmwalign
