package faultinject

import (
	"math"
	"testing"

	"mmwalign/internal/cmat"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// stubProber returns a constant clean energy so tests can attribute
// every change to the injector.
type stubProber struct {
	snapshots int
	count     int
}

func (s *stubProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	s.count++
	return meas.Measurement{TXBeam: txBeam, RXBeam: rxBeam, U: u, V: v, Z: 2, Energy: 5}
}

func (s *stubProber) MeasureVector(txBeam int, u cmat.Vector) meas.VectorMeasurement {
	s.count++
	return meas.VectorMeasurement{TXBeam: txBeam, U: u}
}

func (s *stubProber) TrueSNR(u, v cmat.Vector) float64 { return 4 }
func (s *stubProber) Gamma() float64                   { return 1 }
func (s *stubProber) Snapshots() int                   { return s.snapshots }
func (s *stubProber) SetSnapshots(k int)               { s.snapshots = k }
func (s *stubProber) Count() int                       { return s.count }

func measureN(s *Sounder, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Measure(0, 0, nil, nil).Energy
	}
	return out
}

func TestFaultInjectEachFaultKind(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		check func(t *testing.T, energies []float64, c Counts)
	}{
		{"nan", Config{PNaN: 1}, func(t *testing.T, es []float64, c Counts) {
			for _, e := range es {
				if !math.IsNaN(e) {
					t.Fatalf("energy %g, want NaN", e)
				}
			}
			if c.NaN != len(es) {
				t.Errorf("NaN count = %d, want %d", c.NaN, len(es))
			}
		}},
		{"inf", Config{PInf: 1}, func(t *testing.T, es []float64, c Counts) {
			for _, e := range es {
				if !math.IsInf(e, 1) {
					t.Fatalf("energy %g, want +Inf", e)
				}
			}
			if c.Inf != len(es) {
				t.Errorf("Inf count = %d, want %d", c.Inf, len(es))
			}
		}},
		{"outlier", Config{POutlier: 1, OutlierScale: 100}, func(t *testing.T, es []float64, c Counts) {
			for _, e := range es {
				if e != 500 {
					t.Fatalf("energy %g, want 500 (5 × scale 100)", e)
				}
			}
			if c.Outlier != len(es) {
				t.Errorf("Outlier count = %d, want %d", c.Outlier, len(es))
			}
		}},
		{"drop", Config{PDrop: 1}, func(t *testing.T, es []float64, c Counts) {
			for _, e := range es {
				if e != 0 {
					t.Fatalf("energy %g, want 0 (erasure)", e)
				}
			}
			if c.Dropped != len(es) {
				t.Errorf("Dropped count = %d, want %d", c.Dropped, len(es))
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(&stubProber{}, tc.cfg, rng.New(1))
			es := measureN(s, 10)
			tc.check(t, es, s.Counts)
			if s.Counts.Measurements != 10 || s.Counts.Total() != 10 {
				t.Errorf("counts = %+v, want 10 measurements, 10 faults", s.Counts)
			}
		})
	}
}

func TestFaultInjectBlockageAttenuatesSignalOnly(t *testing.T) {
	s := New(&stubProber{}, Config{BlockAfter: 3, BlockLossDB: 20}, rng.New(2))
	es := measureN(s, 6)
	for i, e := range es {
		if i < 3 {
			if e != 5 {
				t.Fatalf("pre-blockage energy %g, want clean 5", e)
			}
			continue
		}
		// Signal part 4 attenuated by 20 dB on top of the unit noise
		// floor: 1 + 4·10⁻² = 1.04.
		if math.Abs(e-1.04) > 1e-12 {
			t.Fatalf("blocked energy %g, want 1.04", e)
		}
	}
	if s.Counts.Blocked != 3 {
		t.Errorf("Blocked = %d, want 3", s.Counts.Blocked)
	}
	if s.Counts.Total() != 0 {
		t.Errorf("blockage must not count as corruption: %+v", s.Counts)
	}
}

func TestFaultInjectProbabilityZeroIsTransparent(t *testing.T) {
	s := New(&stubProber{}, Config{}, rng.New(3))
	for _, e := range measureN(s, 20) {
		if e != 5 {
			t.Fatalf("energy %g changed by a zero-probability injector", e)
		}
	}
	if s.Counts.Total() != 0 {
		t.Errorf("faults injected at probability zero: %+v", s.Counts)
	}
}

func TestFaultInjectWrapDeterministicPerCell(t *testing.T) {
	cfg := Config{Seed: 9, PNaN: 0.2, POutlier: 0.3, PDrop: 0.1, OutlierScale: 7}
	wrap := Wrap(cfg)
	run := func(drop int, scheme string) []float64 {
		p := wrap(drop, scheme, &stubProber{})
		return measureN(p.(*Sounder), 50)
	}
	a, b := run(2, "proposed"), run(2, "proposed")
	for i := range a {
		same := a[i] == b[i] || (math.IsNaN(a[i]) && math.IsNaN(b[i]))
		if !same {
			t.Fatalf("fault stream differs at %d for identical (drop, scheme): %g vs %g", i, a[i], b[i])
		}
	}
	// Distinct cells must get distinct streams.
	c := run(3, "proposed")
	identical := true
	for i := range a {
		if a[i] != c[i] && !(math.IsNaN(a[i]) && math.IsNaN(c[i])) {
			identical = false
			break
		}
	}
	if identical {
		t.Error("different drops produced identical fault streams")
	}
}

func TestFaultInjectDelegatesMetadata(t *testing.T) {
	inner := &stubProber{}
	s := New(inner, Config{}, rng.New(4))
	s.SetSnapshots(7)
	if got := s.Snapshots(); got != 7 {
		t.Errorf("Snapshots = %d, want 7", got)
	}
	if s.Gamma() != 1 || s.TrueSNR(nil, nil) != 4 {
		t.Error("metadata delegation broken")
	}
	s.Measure(0, 0, nil, nil)
	s.MeasureVector(0, nil)
	if s.Count() != inner.count {
		t.Errorf("Count = %d, want inner %d", s.Count(), inner.count)
	}
}

func TestWrapKillAfterKillsOnTheRightCell(t *testing.T) {
	killed := 0
	wrap := wrapKillAfter(2, func() { killed++ })

	// Cells 1 and 2 pass through untouched — not even wrapped.
	for i := 0; i < 2; i++ {
		p := wrap(i, "random", &stubProber{})
		if _, isKill := p.(*killProber); isKill {
			t.Fatalf("cell %d wrapped with the kill prober before the threshold", i+1)
		}
		p.Measure(0, 0, nil, nil)
		if killed != 0 {
			t.Fatalf("killed during cell %d", i+1)
		}
	}

	// Cell 3 dies on its first measurement, exactly once.
	p := wrap(2, "random", &stubProber{})
	p.Measure(0, 0, nil, nil)
	if killed != 1 {
		t.Fatalf("kill fired %d times on cell 3, want 1", killed)
	}
	p.Measure(0, 0, nil, nil)
	if killed != 1 {
		t.Fatalf("kill re-fired on a later measurement: %d", killed)
	}

	// Later cells are also kill-wrapped (the process would already be
	// dead); each has its own once.
	p2 := wrap(3, "proposed", &stubProber{})
	p2.Measure(0, 0, nil, nil)
	if killed != 2 {
		t.Fatalf("cell 4 did not arm its own kill: %d", killed)
	}
}

func TestWrapKillAfterMetadataDelegates(t *testing.T) {
	wrap := wrapKillAfter(0, func() {})
	p := wrap(0, "random", &stubProber{snapshots: 7})
	if p.Snapshots() != 7 || p.Gamma() != 1 {
		t.Error("kill prober does not delegate metadata")
	}
}
