// Package faultinject is the fault-injection harness behind the
// robustness test suite: it wraps a meas.Prober so that alignment
// strategies, the covariance estimator, and the experiment engine can be
// exercised against the failure modes a real sounding front end
// produces — poisoned energies (NaN/Inf), heavy-tailed outliers,
// dropped measurements, and mid-trajectory blockage — without touching
// any production code path.
//
// Injection is deterministic: the fault stream is a pure function of
// (Config.Seed, drop, scheme), so the experiment engine's worker-count
// invariance guarantee holds under injection, and a failing fuzz case
// replays from its coordinates alone.
package faultinject

import (
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"mmwalign/internal/cmat"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// Config selects which faults to inject and how often. Probabilities
// are per pair measurement and are evaluated from one uniform draw per
// measurement (in the order NaN, Inf, Outlier, Drop), so enabling one
// fault never shifts the random stream of another.
type Config struct {
	// Seed drives the fault stream (independent of the simulation seed).
	Seed int64
	// PNaN is the probability a measurement's energy is replaced by NaN.
	PNaN float64
	// PInf is the probability a measurement's energy is replaced by +Inf.
	PInf float64
	// POutlier is the probability a measurement's energy is multiplied
	// by OutlierScale — a heavy-tailed interference spike.
	POutlier float64
	// OutlierScale is the outlier multiplier. Default 1e9.
	OutlierScale float64
	// PDrop is the probability a measurement is erased: the receiver
	// sees zero energy (sounding slot lost), not an invalid value.
	PDrop float64
	// BlockAfter, when positive, simulates a blocker moving into the
	// path: from the BlockAfter-th measurement on, the signal part of
	// every energy is attenuated by BlockLossDB.
	BlockAfter int
	// BlockLossDB is the blockage attenuation in dB. Default 30.
	BlockLossDB float64
}

// Counts tallies the faults actually injected by one Sounder.
type Counts struct {
	// Measurements is the total number of pair measurements seen.
	Measurements int
	// NaN, Inf, Outlier and Dropped count each injected fault kind.
	NaN, Inf, Outlier, Dropped int
	// Blocked counts measurements taken under blockage attenuation.
	Blocked int
}

// Total returns the number of corrupted measurements (blockage is
// attenuation, not corruption, and is counted separately).
func (c Counts) Total() int { return c.NaN + c.Inf + c.Outlier + c.Dropped }

// Sounder wraps a meas.Prober and injects the configured faults into
// pair measurements. Vector measurements, SNR ground truth, and all
// metadata delegate untouched.
type Sounder struct {
	inner meas.Prober
	cfg   Config
	src   *rng.Source
	n     int
	// Counts tallies what was injected (readable after a run).
	Counts Counts
}

// New wraps inner with the fault model of cfg, drawing the fault stream
// from src. Use Wrap for the experiment-engine seam.
func New(inner meas.Prober, cfg Config, src *rng.Source) *Sounder {
	if cfg.OutlierScale == 0 {
		cfg.OutlierScale = 1e9
	}
	if cfg.BlockLossDB == 0 {
		cfg.BlockLossDB = 30
	}
	return &Sounder{inner: inner, cfg: cfg, src: src}
}

// Wrap returns a Config.WrapSounder hook for the experiment engine: each
// (drop, scheme) cell gets an independent fault stream split from
// cfg.Seed, keeping injection deterministic regardless of worker count.
func Wrap(cfg Config) func(drop int, scheme string, p meas.Prober) meas.Prober {
	return func(drop int, scheme string, p meas.Prober) meas.Prober {
		return New(p, cfg, rng.New(cfg.Seed).SplitIndexed("faultinject-"+scheme, drop))
	}
}

// Measure implements meas.Prober, applying at most one fault per
// measurement plus blockage attenuation when active.
func (s *Sounder) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	m := s.inner.Measure(txBeam, rxBeam, u, v)
	s.n++
	s.Counts.Measurements++

	if s.cfg.BlockAfter > 0 && s.n > s.cfg.BlockAfter {
		// Attenuate the signal part only: the unit noise floor of the
		// normalized energy statistic survives blockage.
		loss := math.Pow(10, -s.cfg.BlockLossDB/10)
		if sig := m.Energy - 1; sig > 0 {
			m.Energy = 1 + sig*loss
		}
		s.Counts.Blocked++
	}

	// One uniform draw per measurement keeps fault streams independent
	// of which faults are enabled.
	draw := s.src.Float64()
	switch {
	case draw < s.cfg.PNaN:
		m.Energy = math.NaN()
		s.Counts.NaN++
	case draw < s.cfg.PNaN+s.cfg.PInf:
		m.Energy = math.Inf(1)
		s.Counts.Inf++
	case draw < s.cfg.PNaN+s.cfg.PInf+s.cfg.POutlier:
		m.Energy *= s.cfg.OutlierScale
		s.Counts.Outlier++
	case draw < s.cfg.PNaN+s.cfg.PInf+s.cfg.POutlier+s.cfg.PDrop:
		m.Energy = 0
		m.Z = 0
		s.Counts.Dropped++
	}
	return m
}

// MeasureVector implements meas.Prober (delegates; the fault model
// targets the analog pair-sounding path).
func (s *Sounder) MeasureVector(txBeam int, u cmat.Vector) meas.VectorMeasurement {
	return s.inner.MeasureVector(txBeam, u)
}

// TrueSNR implements meas.Prober.
func (s *Sounder) TrueSNR(u, v cmat.Vector) float64 { return s.inner.TrueSNR(u, v) }

// Gamma implements meas.Prober.
func (s *Sounder) Gamma() float64 { return s.inner.Gamma() }

// Snapshots implements meas.Prober.
func (s *Sounder) Snapshots() int { return s.inner.Snapshots() }

// SetSnapshots implements meas.Prober.
func (s *Sounder) SetSnapshots(k int) { s.inner.SetSnapshots(k) }

// Count implements meas.Prober.
func (s *Sounder) Count() int { return s.inner.Count() }

// TransientMode selects how WrapTransient fails an attempt.
type TransientMode int

// Transient failure modes.
const (
	// TransientPanic panics on the cell's first measurement — the
	// guaranteed-to-fail mode the retry-engine tests lean on.
	TransientPanic TransientMode = iota
	// TransientNaN poisons every measurement energy of the attempt with
	// NaN — exercises the degradation paths instead of the panic path.
	TransientNaN
)

// WrapTransient returns a Config.WrapSounder hook that makes the first
// failAttempts attempts of every (drop, scheme) cell fail in the given
// mode; later attempts pass through untouched. The experiment engine
// re-invokes the hook on each retry, which is what lets the wrapper
// count attempts — making it the canonical transient fault: a cell
// that fails deterministically on attempt 1..n and succeeds (with the
// exact result an unfaulted first attempt would have produced) from
// attempt n+1 on. Attempt counting is keyed by (drop, scheme) under a
// lock, so it is deterministic regardless of worker count.
func WrapTransient(failAttempts int, mode TransientMode) func(drop int, scheme string, p meas.Prober) meas.Prober {
	var mu sync.Mutex
	attempts := make(map[string]int)
	return func(drop int, scheme string, p meas.Prober) meas.Prober {
		key := fmt.Sprintf("%s/%d", scheme, drop)
		mu.Lock()
		attempts[key]++
		n := attempts[key]
		mu.Unlock()
		if n > failAttempts {
			return p
		}
		return &transientProber{Prober: p, mode: mode}
	}
}

// transientProber applies one attempt's worth of injected failure.
type transientProber struct {
	meas.Prober
	mode TransientMode
}

// Measure implements meas.Prober with the configured transient fault.
func (t *transientProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	switch t.mode {
	case TransientPanic:
		panic("faultinject: transient measurement fault (fails this attempt only)")
	default: // TransientNaN
		m := t.Prober.Measure(txBeam, rxBeam, u, v)
		m.Energy = math.NaN()
		return m
	}
}

// WrapKillAfter returns a Config.WrapSounder hook that SIGKILLs the
// current process on the first measurement of the (cells+1)-th cell it
// sees — the shard chaos harness's deterministic mid-cell worker
// death. Unlike TransientPanic, nothing is recovered: the process dies
// exactly as a real OOM-kill or `kill -9` would, leaving a claimed
// lease with no journal record behind, which is the state the shard
// engine's stale-lease stealing exists to clean up.
//
// Cell counting is by hook invocation (the experiment engine invokes
// WrapSounder once per cell attempt), atomically, so the kill lands on
// a deterministic cell ordinal even under concurrent workers — though
// which (drop, scheme) that ordinal maps to depends on the schedule,
// which is fine: the chaos jobs assert on recovery, not on which cell
// died.
func WrapKillAfter(cells int) func(drop int, scheme string, p meas.Prober) meas.Prober {
	return wrapKillAfter(cells, func() {
		// os.Process.Kill delivers SIGKILL on unix: no deferred
		// functions, no journal flush, no lease release.
		proc, err := os.FindProcess(os.Getpid())
		if err == nil {
			proc.Kill()
		}
		// Nothing to do if the kill fails: the wrapped measurement
		// proceeds and the chaos job's wait-for-death times out loudly.
	})
}

// wrapKillAfter is WrapKillAfter with the kill action injectable for
// tests that must survive their own assertions.
func wrapKillAfter(cells int, kill func()) func(drop int, scheme string, p meas.Prober) meas.Prober {
	var seen atomic.Int64
	return func(drop int, scheme string, p meas.Prober) meas.Prober {
		if seen.Add(1) <= int64(cells) {
			return p
		}
		return &killProber{Prober: p, kill: kill}
	}
}

// killProber kills the process on its first measurement — mid-cell,
// after the lease claim, before any journal record.
type killProber struct {
	meas.Prober
	kill func()
	once sync.Once
}

// Measure implements meas.Prober.
func (k *killProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	k.once.Do(k.kill)
	return k.Prober.Measure(txBeam, rxBeam, u, v)
}

// DivergentOptions returns estimator options engineered to stress the
// solver guardrails: an absurd initial step with FISTA's non-monotone
// acceptance invites divergence that the covest guardrails must catch
// (StopDiverged / recovery to the best iterate) instead of returning
// garbage.
func DivergentOptions(base covest.Options) covest.Options {
	base.InitStep = 1e12
	base.Accelerated = true
	return base
}

var _ meas.Prober = (*Sounder)(nil)
