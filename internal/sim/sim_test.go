package sim

import (
	"math"
	"testing"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := New()
	var order []int
	mustSchedule(t, s, 3, func() { order = append(order, 3) })
	mustSchedule(t, s, 1, func() { order = append(order, 1) })
	mustSchedule(t, s, 2, func() { order = append(order, 2) })
	if ran := s.Run(10); ran != 3 {
		t.Fatalf("ran %d events", ran)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 10 {
		t.Errorf("Now = %g, want advanced to horizon 10", s.Now())
	}
}

func mustSchedule(t *testing.T, s *Simulator, d float64, fn Handler) {
	t.Helper()
	if err := s.Schedule(d, fn); err != nil {
		t.Fatal(err)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, s, 5, func() { order = append(order, i) })
	}
	s.Run(10)
	for i, got := range order {
		if got != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestHandlersCanScheduleMore(t *testing.T) {
	s := New()
	count := 0
	var tick Handler
	tick = func() {
		count++
		if count < 5 {
			if err := s.Schedule(1, tick); err != nil {
				t.Error(err)
			}
		}
	}
	mustSchedule(t, s, 1, tick)
	s.Run(100)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Processed() != 5 {
		t.Errorf("Processed = %d", s.Processed())
	}
}

func TestRunHorizonStopsEarly(t *testing.T) {
	s := New()
	fired := false
	mustSchedule(t, s, 100, func() { fired = true })
	if ran := s.Run(50); ran != 0 {
		t.Errorf("ran %d events before horizon", ran)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
	if s.Now() != 50 {
		t.Errorf("Now = %g", s.Now())
	}
	// The event still fires once the horizon extends.
	s.Run(200)
	if !fired {
		t.Error("event never fired")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty queue reported an event")
	}
}

func TestScheduleValidation(t *testing.T) {
	s := New()
	if err := s.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if err := s.Schedule(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay accepted")
	}
	if err := s.Schedule(math.Inf(1), func() {}); err == nil {
		t.Error("infinite delay accepted")
	}
	if err := s.Schedule(1, nil); err == nil {
		t.Error("nil handler accepted")
	}
	mustSchedule(t, s, 5, func() {})
	s.Run(10)
	if err := s.ScheduleAt(3, func() {}); err == nil {
		t.Error("scheduling in the past accepted")
	}
}

func TestClockMonotone(t *testing.T) {
	s := New()
	var times []float64
	for _, d := range []float64{5, 0.5, 2.5, 2.5, 9} {
		mustSchedule(t, s, d, func() { times = append(times, s.Now()) })
	}
	s.Run(100)
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("clock went backwards: %v", times)
		}
	}
}
