// Package sim is a minimal deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue with stable
// FIFO tie-breaking. The MAC-layer cellular simulations schedule user
// arrivals, departures, superframe ticks and handover checks on it.
//
// The engine is single-threaded by design: determinism matters more
// than parallelism for reproducing experiments, and the expensive work
// (beam alignment) happens inside event handlers anyway.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is an event callback. It runs at its scheduled virtual time
// and may schedule further events.
type Handler func()

type event struct {
	time float64
	seq  uint64
	fn   Handler
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator is a discrete-event scheduler. The zero value is not usable;
// construct with New.
type Simulator struct {
	now   float64
	seq   uint64
	queue eventHeap
	// processed counts executed events.
	processed int
}

// New returns a simulator with the clock at zero.
func New() *Simulator {
	s := &Simulator{}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() int { return s.processed }

// Schedule enqueues fn to run delay time units from now. A zero delay
// runs after all currently executing and earlier-scheduled events at
// this timestamp (FIFO). Returns an error for negative or non-finite
// delays.
func (s *Simulator) Schedule(delay float64, fn Handler) error {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("sim: invalid delay %g", delay)
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt enqueues fn at absolute virtual time t ≥ Now().
func (s *Simulator) ScheduleAt(t float64, fn Handler) error {
	if fn == nil {
		return fmt.Errorf("sim: nil handler")
	}
	if t < s.now || math.IsNaN(t) {
		return fmt.Errorf("sim: time %g is in the past (now %g)", t, s.now)
	}
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, fn: fn})
	return nil
}

// Step executes the next event, if any, advancing the clock to its
// timestamp. Reports whether an event ran.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.time
	s.processed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the next event lies
// beyond horizon; the clock is left at the last executed event (or
// advanced to horizon if that is later). Returns the number of events
// executed by this call.
func (s *Simulator) Run(horizon float64) int {
	ran := 0
	for s.queue.Len() > 0 && s.queue[0].time <= horizon {
		s.Step()
		ran++
	}
	if s.now < horizon {
		s.now = horizon
	}
	return ran
}
