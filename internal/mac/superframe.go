package mac

import (
	"context"
	"fmt"
	"math"

	"mmwalign/internal/channel"
	"mmwalign/internal/rng"
)

// SuperframeConfig parameterizes the training-versus-data airtime
// simulation: a sequence of superframes, each opening with TrainSlots
// measurement slots of beam alignment and closing with DataSlots data
// slots served on the selected pair, over a channel whose geometry
// drifts between superframes.
type SuperframeConfig struct {
	// Link is the radio configuration.
	Link LinkConfig
	// Superframes is the number of simulated superframes (default 20).
	Superframes int
	// TrainSlots is the alignment measurement budget per superframe
	// (default 64).
	TrainSlots int
	// DataSlots is the data-phase length per superframe (default 448,
	// giving the common ~1:8 control/data split).
	DataSlots int
	// DriftSigmaDeg is the per-superframe path-angle random-walk
	// standard deviation in degrees (default 1).
	DriftSigmaDeg float64
	// Blockage, when non-nil, adds a dynamic cluster-blockage process
	// stepped once per superframe.
	Blockage *BlockageConfig
	// Seed drives all randomness.
	Seed int64
}

// BlockageConfig parameterizes the per-superframe blockage process.
type BlockageConfig struct {
	// PBlock and PUnblock are per-superframe transition probabilities.
	PBlock, PUnblock float64
	// AttenuationDB is the blockage depth (default 25).
	AttenuationDB float64
}

func (c SuperframeConfig) withDefaults() SuperframeConfig {
	c.Link = c.Link.withDefaults()
	if c.Superframes == 0 {
		c.Superframes = 20
	}
	if c.TrainSlots == 0 {
		c.TrainSlots = 64
	}
	if c.DataSlots == 0 {
		c.DataSlots = 448
	}
	if c.DriftSigmaDeg == 0 {
		c.DriftSigmaDeg = 1
	}
	return c
}

// FrameStat records one superframe's outcome.
type FrameStat struct {
	// Frame is the superframe index.
	Frame int
	// BlockedClusters is the number of blocked clusters during the
	// frame (0 when no blockage process is configured).
	BlockedClusters int
	// SelectedSNRDB is the true SNR (dB) of the pair picked by training.
	SelectedSNRDB float64
	// OptimalSNRDB is the oracle pair's SNR (dB) on the same channel.
	OptimalSNRDB float64
	// LossDB is the alignment SNR loss of this frame.
	LossDB float64
	// DataBits is the data-phase throughput in bits/s/Hz × slots
	// (Shannon rate on the selected pair times DataSlots).
	DataBits float64
	// GenieBits is the throughput of a genie that needs no training and
	// always holds the optimal pair for the entire superframe.
	GenieBits float64
}

// SuperframeStats aggregates a run.
type SuperframeStats struct {
	// Frames holds the per-superframe records.
	Frames []FrameStat
	// MeanLossDB is the mean alignment loss across frames.
	MeanLossDB float64
	// Efficiency is Σ DataBits / Σ GenieBits — the fraction of the
	// genie's throughput the protocol actually delivers after paying
	// training overhead and alignment loss.
	Efficiency float64
}

// RunSuperframes executes the superframe simulation.
func RunSuperframes(cfg SuperframeConfig) (SuperframeStats, error) {
	return RunSuperframesContext(context.Background(), cfg)
}

// RunSuperframesContext is RunSuperframes with cooperative
// cancellation: the simulation stops cleanly at the next superframe or
// measurement boundary when ctx is cancelled, returning the context's
// error.
func RunSuperframesContext(ctx context.Context, cfg SuperframeConfig) (SuperframeStats, error) {
	cfg = cfg.withDefaults()
	if cfg.TrainSlots < 1 {
		return SuperframeStats{}, fmt.Errorf("mac: TrainSlots %d must be positive", cfg.TrainSlots)
	}
	root := rng.New(cfg.Seed)
	link := cfg.Link
	tx, rx, _, _ := link.books()
	ch, err := link.newChannel(root.Split("channel"), tx, rx)
	if err != nil {
		return SuperframeStats{}, fmt.Errorf("mac: channel: %w", err)
	}
	gamma := channel.DBToLinear(link.GammaDB)
	drift := cfg.DriftSigmaDeg * math.Pi / 180
	driftSrc := root.Split("drift")

	var blocker *channel.Blocker
	blockSrc := root.Split("blockage")
	if cfg.Blockage != nil {
		att := cfg.Blockage.AttenuationDB
		if att == 0 {
			att = 25
		}
		groupSize := 1
		if link.Multipath {
			groupSize = channel.DefaultNYC28().SubpathsPerCluster
		}
		blocker, err = channel.NewBlocker(ch, groupSize, cfg.Blockage.PBlock, cfg.Blockage.PUnblock, att)
		if err != nil {
			return SuperframeStats{}, fmt.Errorf("mac: blockage: %w", err)
		}
	}

	var stats SuperframeStats
	var sumLoss, sumBits, sumGenie float64
	totalSlots := float64(cfg.TrainSlots + cfg.DataSlots)
	for f := 0; f < cfg.Superframes; f++ {
		if err := ctx.Err(); err != nil {
			return SuperframeStats{}, err
		}
		blockedClusters := 0
		if blocker != nil {
			blocker.Step(blockSrc)
			blockedClusters = blocker.BlockedCount()
		}
		tr, env, err := alignOnce(ctx, link, ch, gamma,
			root.SplitIndexed("noise", f), root.SplitIndexed("strategy", f), cfg.TrainSlots)
		if err != nil {
			return SuperframeStats{}, fmt.Errorf("mac: superframe %d: %w", f, err)
		}
		_ = env
		sel := tr.BestTrueSNR
		opt := tr.OptSNR
		loss := tr.FinalLossDB()

		dataBits := float64(cfg.DataSlots) * math.Log2(1+sel)
		genieBits := totalSlots * math.Log2(1+opt)
		stats.Frames = append(stats.Frames, FrameStat{
			Frame:           f,
			BlockedClusters: blockedClusters,
			SelectedSNRDB:   channel.LinearToDB(sel),
			OptimalSNRDB:    channel.LinearToDB(opt),
			LossDB:          loss,
			DataBits:        dataBits,
			GenieBits:       genieBits,
		})
		sumLoss += loss
		sumBits += dataBits
		sumGenie += genieBits

		ch.Drift(driftSrc, drift)
	}
	stats.MeanLossDB = sumLoss / float64(len(stats.Frames))
	if sumGenie > 0 {
		stats.Efficiency = sumBits / sumGenie
	}
	return stats, nil
}
