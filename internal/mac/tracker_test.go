package mac

import (
	"testing"
)

func tinyTracker() TrackerConfig {
	return TrackerConfig{
		Link:           smallLink(),
		Superframes:    8,
		SlotBudget:     128,
		FullTrainSlots: 32,
		TrackSlots:     6,
		Seed:           1,
	}
}

func TestRunTrackerBasics(t *testing.T) {
	stats, err := RunTracker(tinyTracker())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Frames) != 8 {
		t.Fatalf("frames = %d", len(stats.Frames))
	}
	if stats.Frames[0].Mode != "full" {
		t.Error("frame 0 must be a full alignment")
	}
	if stats.FullRealigns < 1 {
		t.Error("no full realignments recorded")
	}
	for _, f := range stats.Frames {
		switch f.Mode {
		case "full":
			if f.TrainSlotsUsed > 32 {
				t.Errorf("frame %d full used %d slots", f.Frame, f.TrainSlotsUsed)
			}
		case "track":
			if f.TrainSlotsUsed > 6 {
				t.Errorf("frame %d track used %d slots", f.Frame, f.TrainSlotsUsed)
			}
		default:
			t.Errorf("frame %d unknown mode %q", f.Frame, f.Mode)
		}
		if f.SelectedSNRDB > f.OptimalSNRDB+1e-9 {
			t.Errorf("frame %d beats the oracle", f.Frame)
		}
	}
	if stats.Efficiency <= 0 || stats.Efficiency > 1 {
		t.Errorf("efficiency = %g", stats.Efficiency)
	}
}

func TestRunTrackerCheaperThanAlwaysRealigning(t *testing.T) {
	// Tracking's point: mean training cost far below the full budget.
	stats, err := RunTracker(tinyTracker())
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanTrainSlots >= 32 {
		t.Errorf("mean training cost %.1f slots, not below full 32", stats.MeanTrainSlots)
	}
}

func TestRunTrackerValidation(t *testing.T) {
	cfg := tinyTracker()
	cfg.SlotBudget = 16 // below FullTrainSlots
	if _, err := RunTracker(cfg); err == nil {
		t.Error("budget below full-train accepted")
	}
}

func TestRunTrackerDeterministic(t *testing.T) {
	a, err := RunTracker(tinyTracker())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTracker(tinyTracker())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLossDB != b.MeanLossDB || a.FullRealigns != b.FullRealigns {
		t.Error("same seed produced different tracker results")
	}
}

func TestRunTrackerBlockageTriggersRealign(t *testing.T) {
	// Deep, frequent blockage on a single-path channel must trip the
	// SNR-drop escalation at least once after frame 0.
	cfg := tinyTracker()
	cfg.Superframes = 12
	cfg.Blockage = &BlockageConfig{PBlock: 0.4, PUnblock: 0.4, AttenuationDB: 30}
	cfg.DropThresholdDB = 6
	stats, err := RunTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FullRealigns < 2 {
		t.Errorf("blockage never escalated to a realign (%d full frames)", stats.FullRealigns)
	}
}

func TestRunTrackerTracksDrift(t *testing.T) {
	// With slow drift and no blockage, tracking should hold the loss to
	// a usable level while spending a fraction of the full budget.
	cfg := tinyTracker()
	cfg.Superframes = 10
	cfg.DriftSigmaDeg = 0.5
	stats, err := RunTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanLossDB > 20 {
		t.Errorf("tracked mean loss %.1f dB; tracking is not holding the beam", stats.MeanLossDB)
	}
}
