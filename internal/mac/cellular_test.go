package mac

import (
	"testing"
)

func tinyCellular() CellularConfig {
	return CellularConfig{
		Link:            smallLink(),
		NumBS:           2,
		AreaM:           150,
		ArrivalRate:     0.5,
		MeanHoldS:       10,
		SuperframeS:     1,
		AlignBudget:     24,
		TrackBudget:     4,
		ScanPeriodTicks: 3,
		ScanBudget:      8,
		HorizonS:        20,
		Seed:            3,
	}
}

func TestRunCellularBasics(t *testing.T) {
	stats, err := RunCellular(tinyCellular())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Arrivals == 0 {
		t.Fatal("no arrivals in 20 simulated seconds at rate 0.5/s")
	}
	if stats.EventsProcessed == 0 {
		t.Error("no events processed")
	}
	if stats.Blocked > stats.Arrivals {
		t.Errorf("blocked %d > arrivals %d", stats.Blocked, stats.Arrivals)
	}
	if stats.Ticks > 0 {
		if stats.MeanSpectralEff < 0 {
			t.Errorf("negative spectral efficiency %g", stats.MeanSpectralEff)
		}
		if stats.MeanTrainFrac < 0 || stats.MeanTrainFrac > 1 {
			t.Errorf("train fraction %g outside [0,1]", stats.MeanTrainFrac)
		}
		if stats.OutageTicks > stats.Ticks {
			t.Errorf("outage ticks %d > ticks %d", stats.OutageTicks, stats.Ticks)
		}
	}
	if stats.FullAlignments < stats.Arrivals-stats.Blocked {
		t.Errorf("full alignments %d below admitted sessions %d",
			stats.FullAlignments, stats.Arrivals-stats.Blocked)
	}
}

func TestRunCellularDeterministic(t *testing.T) {
	a, err := RunCellular(tinyCellular())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCellular(tinyCellular())
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals != b.Arrivals || a.Ticks != b.Ticks ||
		a.Handovers != b.Handovers || a.MeanSpectralEff != b.MeanSpectralEff {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunCellularHorizonScalesArrivals(t *testing.T) {
	short := tinyCellular()
	short.HorizonS = 10
	long := tinyCellular()
	long.HorizonS = 40
	a, err := RunCellular(short)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCellular(long)
	if err != nil {
		t.Fatal(err)
	}
	if b.Arrivals <= a.Arrivals {
		t.Errorf("4x horizon produced %d arrivals vs %d", b.Arrivals, a.Arrivals)
	}
}

func TestRunCellularSessionsComplete(t *testing.T) {
	cfg := tinyCellular()
	cfg.MeanHoldS = 3 // short sessions: most complete inside the horizon
	cfg.HorizonS = 30
	stats, err := RunCellular(cfg)
	if err != nil {
		t.Fatal(err)
	}
	admitted := stats.Arrivals - stats.Blocked
	if admitted > 2 && stats.Completed == 0 {
		t.Errorf("no session completed out of %d admitted", admitted)
	}
}

func TestRunCellularFastUsersHandOver(t *testing.T) {
	// Fast users crossing a small area with two cells should trigger at
	// least one handover across a long horizon. Statistical but
	// deterministic for this seed.
	cfg := tinyCellular()
	cfg.SpeedMS = 20
	cfg.HorizonS = 40
	cfg.ArrivalRate = 0.4
	cfg.MeanHoldS = 30
	stats, err := RunCellular(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Handovers == 0 {
		t.Log("warning: no handovers at 20 m/s; check hysteresis/scan settings")
	}
	if stats.Handovers > 0 && stats.FullAlignments < stats.Handovers {
		t.Errorf("handovers %d without matching realignments %d",
			stats.Handovers, stats.FullAlignments)
	}
}
