package mac

// Cancellation tests mirroring the experiment engine's drain-on-cancel
// idiom: a cancelled MAC simulation must return context.Canceled
// promptly and leave no goroutines behind, so the scenario engine can
// abort long mobility runs mid-trajectory without leaks.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// drainHarness runs fn under a context cancelled mid-flight and asserts
// a clean context.Canceled return plus goroutine drain to baseline.
func drainHarness(t *testing.T, fn func(ctx context.Context) error) {
	t.Helper()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fn(ctx) }()

	// Let the run get past setup, then pull the plug.
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return within 10s")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d before, %d after", before, runtime.NumGoroutine())
}

func TestRunTrackerContextCancelDrains(t *testing.T) {
	drainHarness(t, func(ctx context.Context) error {
		_, err := RunTrackerContext(ctx, TrackerConfig{
			Superframes: 10_000,
			Seed:        41,
		})
		return err
	})
}

func TestRunSuperframesContextCancelDrains(t *testing.T) {
	drainHarness(t, func(ctx context.Context) error {
		_, err := RunSuperframesContext(ctx, SuperframeConfig{
			Superframes: 10_000,
			Seed:        42,
		})
		return err
	})
}

// An already-cancelled context must fail before any superframe runs.
func TestRunTrackerContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunTrackerContext(ctx, TrackerConfig{Superframes: 3, Seed: 43})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(stats.Frames) != 0 {
		t.Fatalf("pre-cancelled run produced %d frames", len(stats.Frames))
	}
}
