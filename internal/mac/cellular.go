package mac

import (
	"fmt"
	"math"

	"mmwalign/internal/align"
	"mmwalign/internal/channel"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
	"mmwalign/internal/sim"
)

// CellularConfig parameterizes the event-driven multi-cell simulation:
// the full "mmWave cellular network" of the paper's Figure 1. Users
// arrive as a Poisson process into a square deployment of base
// stations, perform directional cell search, are served over drifting
// per-link channels with per-superframe beam tracking, hand over when a
// neighbor measures better, and depart after an exponential hold time.
type CellularConfig struct {
	// Link is the per-link radio configuration.
	Link LinkConfig
	// NumBS is the number of base stations, placed uniformly at random
	// (default 3).
	NumBS int
	// AreaM is the side of the square deployment area in meters
	// (default 400).
	AreaM float64
	// ArrivalRate is the UE arrival rate in users per second
	// (default 0.1).
	ArrivalRate float64
	// MeanHoldS is the mean exponential session duration in seconds
	// (default 30).
	MeanHoldS float64
	// SpeedMS is the user speed in m/s; direction is random and bounces
	// at the area boundary (default 1.5, pedestrian).
	SpeedMS float64
	// SuperframeS is the superframe period in seconds — the tracking and
	// accounting tick (default 0.5).
	SuperframeS float64
	// AlignBudget is the measurement budget of a full alignment at
	// association and after handover (default 64).
	AlignBudget int
	// TrackBudget is the per-tick tracking budget (default 8).
	TrackBudget int
	// ScanPeriodTicks is how often neighbors are scanned for handover
	// (default every 4 ticks).
	ScanPeriodTicks int
	// ScanBudget is the quick per-neighbor scan budget (default 16).
	ScanBudget int
	// HysteresisDB is the handover margin (default 3).
	HysteresisDB float64
	// SlotsPerSuperframe converts training costs into airtime overhead
	// (default 512).
	SlotsPerSuperframe int
	// OutageSNRdB is the post-beamforming SNR below which a tick counts
	// as outage (default 0).
	OutageSNRdB float64
	// HorizonS is the simulated duration in seconds (default 60).
	HorizonS float64
	// Budget and PathLoss convert geometry into pre-beamforming SNR.
	Budget   channel.LinkBudget
	PathLoss channel.PathLossParams
	// Seed drives all randomness.
	Seed int64
}

func (c CellularConfig) withDefaults() CellularConfig {
	c.Link = c.Link.withDefaults()
	if c.NumBS == 0 {
		c.NumBS = 3
	}
	if c.AreaM == 0 {
		c.AreaM = 400
	}
	if c.ArrivalRate == 0 {
		c.ArrivalRate = 0.1
	}
	if c.MeanHoldS == 0 {
		c.MeanHoldS = 30
	}
	if c.SpeedMS == 0 {
		c.SpeedMS = 1.5
	}
	if c.SuperframeS == 0 {
		c.SuperframeS = 0.5
	}
	if c.AlignBudget == 0 {
		c.AlignBudget = 64
	}
	if c.TrackBudget == 0 {
		c.TrackBudget = 8
	}
	if c.ScanPeriodTicks == 0 {
		c.ScanPeriodTicks = 4
	}
	if c.ScanBudget == 0 {
		c.ScanBudget = 16
	}
	if c.HysteresisDB == 0 {
		c.HysteresisDB = 3
	}
	if c.SlotsPerSuperframe == 0 {
		c.SlotsPerSuperframe = 512
	}
	if c.HorizonS == 0 {
		c.HorizonS = 60
	}
	if c.Budget == (channel.LinkBudget{}) {
		c.Budget = channel.LinkBudget{TXPowerDBm: 30, BandwidthHz: 1e9, NoiseFigureDB: 7}
	}
	if c.PathLoss == (channel.PathLossParams{}) {
		c.PathLoss = channel.DefaultPathLoss28()
	}
	return c
}

// CellularStats aggregates an event-driven run.
type CellularStats struct {
	// Arrivals counts user arrivals within the horizon.
	Arrivals int
	// Blocked counts arrivals that found every BS in outage.
	Blocked int
	// Completed counts sessions that departed normally.
	Completed int
	// Handovers counts inter-BS handovers.
	Handovers int
	// FullAlignments counts full alignment runs (association + handover).
	FullAlignments int
	// Ticks counts served superframe ticks across all users.
	Ticks int
	// OutageTicks counts ticks below the outage SNR.
	OutageTicks int
	// MeanSpectralEff is the mean delivered bits/s/Hz per served tick,
	// after subtracting training airtime.
	MeanSpectralEff float64
	// MeanTrainFrac is the mean fraction of airtime spent training.
	MeanTrainFrac float64
	// EventsProcessed is the simulator's event count.
	EventsProcessed int
}

type cellBS struct {
	x, y float64
}

type cellLink struct {
	ch     *channel.Channel
	state  channel.LinkState
	shadow float64 // fixed per-link shadowing (dB)
}

type cellUE struct {
	id         int
	x, y       float64
	vx, vy     float64
	serving    int
	pair       align.Pair
	links      []*cellLink
	departed   bool
	tickNumber int
}

type cellular struct {
	cfg   CellularConfig
	root  *rng.Source
	s     *sim.Simulator
	bss   []cellBS
	stats CellularStats

	sumEff   float64
	sumTrain float64
	nextUE   int
}

// RunCellular executes the event-driven multi-cell simulation.
func RunCellular(cfg CellularConfig) (CellularStats, error) {
	cfg = cfg.withDefaults()
	c := &cellular{cfg: cfg, root: rng.New(cfg.Seed), s: sim.New()}

	place := c.root.Split("placement")
	for i := 0; i < cfg.NumBS; i++ {
		c.bss = append(c.bss, cellBS{
			x: place.Uniform(0, cfg.AreaM),
			y: place.Uniform(0, cfg.AreaM),
		})
	}

	arrivals := c.root.Split("arrivals")
	var scheduleArrival func()
	var simErr error
	scheduleArrival = func() {
		gap := arrivals.Exponential(cfg.ArrivalRate)
		if err := c.s.Schedule(gap, func() {
			if err := c.arrive(); err != nil && simErr == nil {
				simErr = err
			}
			scheduleArrival()
		}); err != nil && simErr == nil {
			simErr = err
		}
	}
	scheduleArrival()

	c.s.Run(cfg.HorizonS)
	if simErr != nil {
		return CellularStats{}, simErr
	}

	if c.stats.Ticks > 0 {
		c.stats.MeanSpectralEff = c.sumEff / float64(c.stats.Ticks)
		c.stats.MeanTrainFrac = c.sumTrain / float64(c.stats.Ticks)
	}
	c.stats.EventsProcessed = c.s.Processed()
	return c.stats, nil
}

// arrive admits one user: place it, build its per-BS links, run the
// directional cell search, and schedule its session.
func (c *cellular) arrive() error {
	c.stats.Arrivals++
	id := c.nextUE
	c.nextUE++
	src := c.root.SplitIndexed("ue", id)

	ue := &cellUE{
		id:      id,
		x:       src.Uniform(0, c.cfg.AreaM),
		y:       src.Uniform(0, c.cfg.AreaM),
		serving: -1,
	}
	theta := src.Uniform(0, 2*math.Pi)
	ue.vx = c.cfg.SpeedMS * math.Cos(theta)
	ue.vy = c.cfg.SpeedMS * math.Sin(theta)

	tx, rx, _, _ := c.cfg.Link.books()
	for b := range c.bss {
		link := &cellLink{shadow: src.NormalScaled(0, 4)}
		link.state = c.cfg.PathLoss.DrawState(src, c.dist(ue, b))
		if link.state != channel.StateOutage {
			ch, err := c.cfg.Link.newChannel(src.SplitIndexed("channel", b), tx, rx)
			if err != nil {
				return fmt.Errorf("mac: cellular UE %d BS %d: %w", id, b, err)
			}
			link.ch = ch
		}
		ue.links = append(ue.links, link)
	}

	// Directional cell search: quick scan of every reachable BS, then a
	// full alignment at the winner.
	best, bestSNR := -1, math.Inf(-1)
	for b := range c.bss {
		tr, err := c.alignUE(ue, b, c.cfg.ScanBudget)
		if err != nil {
			continue // unreachable (outage)
		}
		if tr.BestMeasuredSNR > bestSNR {
			best, bestSNR = b, tr.BestMeasuredSNR
		}
	}
	if best < 0 {
		c.stats.Blocked++
		return nil
	}
	tr, err := c.alignUE(ue, best, c.cfg.AlignBudget)
	if err != nil {
		c.stats.Blocked++
		return nil
	}
	c.stats.FullAlignments++
	ue.serving = best
	ue.pair = tr.BestPair

	// Session lifetime and first tick.
	hold := src.Exponential(1 / c.cfg.MeanHoldS)
	deadline := c.s.Now() + hold
	if err := c.s.Schedule(c.cfg.SuperframeS, func() { c.tick(ue, src, deadline) }); err != nil {
		return err
	}
	return nil
}

// tick advances one user's superframe: mobility, channel drift, beam
// tracking, throughput accounting, and periodic handover checks.
func (c *cellular) tick(ue *cellUE, src *rng.Source, deadline float64) {
	if ue.departed {
		return
	}
	if c.s.Now() >= deadline {
		ue.departed = true
		c.stats.Completed++
		return
	}
	ue.tickNumber++

	// Mobility with boundary bounce.
	ue.x += ue.vx * c.cfg.SuperframeS
	ue.y += ue.vy * c.cfg.SuperframeS
	if ue.x < 0 || ue.x > c.cfg.AreaM {
		ue.vx = -ue.vx
		ue.x = math.Min(math.Max(ue.x, 0), c.cfg.AreaM)
	}
	if ue.y < 0 || ue.y > c.cfg.AreaM {
		ue.vy = -ue.vy
		ue.y = math.Min(math.Max(ue.y, 0), c.cfg.AreaM)
	}

	// Channel evolution: displacement-proportional angle drift.
	driftRad := c.cfg.SpeedMS * c.cfg.SuperframeS * 0.005
	for _, l := range ue.links {
		if l.ch != nil {
			l.ch.Drift(src, driftRad)
		}
	}

	// Track the serving beam.
	trainSlots := 0
	env, gamma, err := c.envFor(ue, ue.serving)
	if err == nil && gamma > 0 {
		best, _, used := trackStep(env, ue.pair, c.cfg.TrackBudget)
		ue.pair = best
		trainSlots += used
	}

	// Periodic neighbor scan and handover.
	if ue.tickNumber%c.cfg.ScanPeriodTicks == 0 {
		servingSNR := c.trueServingSNR(ue)
		bestB, bestMeasured := -1, math.Inf(-1)
		var bestPair align.Pair
		for b := range c.bss {
			if b == ue.serving {
				continue
			}
			tr, err := c.alignUE(ue, b, c.cfg.ScanBudget)
			if err != nil {
				continue
			}
			trainSlots += c.cfg.ScanBudget
			if tr.BestMeasuredSNR > bestMeasured {
				bestB, bestMeasured, bestPair = b, tr.BestMeasuredSNR, tr.BestPair
			}
		}
		margin := channel.DBToLinear(c.cfg.HysteresisDB)
		if bestB >= 0 && bestMeasured > servingSNR*margin {
			ue.serving = bestB
			ue.pair = bestPair
			c.stats.Handovers++
			// Refine at the new cell.
			if tr, err := c.alignUE(ue, bestB, c.cfg.AlignBudget); err == nil {
				ue.pair = tr.BestPair
				trainSlots += c.cfg.AlignBudget
				c.stats.FullAlignments++
			}
		}
	}

	// Throughput accounting for this superframe.
	snr := c.trueServingSNR(ue)
	trainFrac := math.Min(1, float64(trainSlots)/float64(c.cfg.SlotsPerSuperframe))
	c.stats.Ticks++
	c.sumEff += (1 - trainFrac) * math.Log2(1+snr)
	c.sumTrain += trainFrac
	if channel.LinearToDB(snr) < c.cfg.OutageSNRdB {
		c.stats.OutageTicks++
	}

	// Next tick.
	_ = c.s.Schedule(c.cfg.SuperframeS, func() { c.tick(ue, src, deadline) })
}

// dist returns the UE-BS distance in meters.
func (c *cellular) dist(ue *cellUE, b int) float64 {
	return math.Hypot(ue.x-c.bss[b].x, ue.y-c.bss[b].y)
}

// gammaFor returns the pre-beamforming SNR of the UE-BS link from the
// deterministic path-loss mean plus the link's fixed shadowing.
func (c *cellular) gammaFor(ue *cellUE, b int) float64 {
	l := ue.links[b]
	if l.state == channel.StateOutage || l.ch == nil {
		return 0
	}
	d := math.Max(c.dist(ue, b), 1)
	var pl float64
	switch l.state {
	case channel.StateLOS:
		pl = c.cfg.PathLoss.AlphaLOS + c.cfg.PathLoss.BetaLOS*10*math.Log10(d)
	default:
		pl = c.cfg.PathLoss.AlphaNLOS + c.cfg.PathLoss.BetaNLOS*10*math.Log10(d)
	}
	return c.cfg.Budget.SNRLinear(pl + l.shadow)
}

// envFor builds a fresh measurement environment for the UE-BS link.
func (c *cellular) envFor(ue *cellUE, b int) (*align.Env, float64, error) {
	gamma := c.gammaFor(ue, b)
	if gamma <= 0 {
		return nil, 0, fmt.Errorf("mac: cellular link UE %d BS %d in outage", ue.id, b)
	}
	_, _, txBook, rxBook := c.cfg.Link.books()
	sounder, err := meas.NewSounder(ue.links[b].ch, gamma,
		c.root.SplitIndexed(fmt.Sprintf("noise-%d-%d", ue.id, b), ue.tickNumber))
	if err != nil {
		return nil, 0, err
	}
	sounder.SetSnapshots(c.cfg.Link.Snapshots)
	return &align.Env{
		TXBook:  txBook,
		RXBook:  rxBook,
		Sounder: sounder,
		Src:     c.root.SplitIndexed(fmt.Sprintf("strategy-%d-%d", ue.id, b), ue.tickNumber),
	}, gamma, nil
}

// alignUE runs a full alignment of the UE toward BS b with the given
// budget.
func (c *cellular) alignUE(ue *cellUE, b, budget int) (align.Trajectory, error) {
	env, gamma, err := c.envFor(ue, b)
	if err != nil {
		return align.Trajectory{}, err
	}
	strat, err := c.cfg.Link.strategy(gamma, env.RXBook)
	if err != nil {
		return align.Trajectory{}, err
	}
	return align.Evaluate(env, strat, budget)
}

// trueServingSNR returns the ground-truth SNR of the UE's held pair on
// its serving link (0 when unreachable).
func (c *cellular) trueServingSNR(ue *cellUE) float64 {
	if ue.serving < 0 {
		return 0
	}
	env, gamma, err := c.envFor(ue, ue.serving)
	if err != nil || gamma <= 0 {
		return 0
	}
	return align.TrueSNROf(env, ue.pair)
}
