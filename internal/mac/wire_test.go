package mac

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mmwalign/internal/align"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

func TestBeaconRoundTrip(t *testing.T) {
	in := Beacon{
		Header:       Header{Seq: 42, Src: 1, Dst: 2},
		SuperframeID: 123456,
		TrainSlots:   64,
		DataSlots:    448,
		TXBeams:      16,
	}
	out, err := Decode(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(*Beacon)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	in.Type = FrameBeacon
	if *got != in {
		t.Errorf("round trip: got %+v, want %+v", *got, in)
	}
}

func TestTrainRequestRoundTrip(t *testing.T) {
	in := TrainRequest{
		Header:       Header{Seq: 7, Src: 3, Dst: 4},
		TXBeam:       11,
		SlotIndex:    5,
		Measurements: 8,
	}
	out, err := Decode(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(*TrainRequest)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	in.Type = FrameTrainRequest
	if *got != in {
		t.Errorf("round trip: got %+v, want %+v", *got, in)
	}
}

func TestMeasurementReportRoundTripProperty(t *testing.T) {
	f := func(seq, src, dst, tx, rx uint16, energy float64) bool {
		if math.IsNaN(energy) {
			return true // NaN != NaN; semantics preserved but not comparable
		}
		in := MeasurementReport{
			Header: Header{Seq: seq, Src: src, Dst: dst},
			TXBeam: tx,
			RXBeam: rx,
			Energy: energy,
		}
		out, err := Decode(in.Marshal())
		if err != nil {
			return false
		}
		got, ok := out.(*MeasurementReport)
		if !ok {
			return false
		}
		in.Type = FrameMeasurementReport
		return *got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBeamFeedbackRoundTripNegativeSNR(t *testing.T) {
	in := BeamFeedback{
		Header:     Header{Seq: 1, Src: 9, Dst: 8},
		BestTXBeam: 3,
		BestRXBeam: 60,
		SNRCentiDB: -1234, // -12.34 dB must survive the uint32 transport
	}
	out, err := Decode(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(*BeamFeedback)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	in.Type = FrameBeamFeedback
	if *got != in {
		t.Errorf("round trip: got %+v, want %+v", *got, in)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short header: err = %v", err)
	}
	if _, err := Decode(make([]byte, headerLen)); !errors.Is(err, ErrUnknownFrameType) {
		t.Errorf("zero type: err = %v", err)
	}
	// Valid header claiming beacon but truncated payload.
	b := Beacon{Header: Header{Seq: 1}}.Marshal()
	if _, err := Decode(b[:headerLen+2]); !errors.Is(err, ErrShortFrame) {
		t.Errorf("truncated beacon: err = %v", err)
	}
	if _, err := Decode([]byte{99, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrUnknownFrameType) {
		t.Errorf("unknown type: err = %v", err)
	}
}

func TestFrameTypeString(t *testing.T) {
	tests := []struct {
		ft   FrameType
		want string
	}{
		{FrameBeacon, "beacon"},
		{FrameTrainRequest, "train-request"},
		{FrameMeasurementReport, "measurement-report"},
		{FrameBeamFeedback, "beam-feedback"},
		{FrameType(200), "FrameType(200)"},
	}
	for _, tt := range tests {
		if got := tt.ft.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.ft, got, tt.want)
		}
	}
}

func TestTraceAlignmentStructure(t *testing.T) {
	// Two TX slots of two measurements each.
	ms := []meas.Measurement{
		{TXBeam: 5, RXBeam: 1, Energy: 2.0},
		{TXBeam: 5, RXBeam: 9, Energy: 7.5},
		{TXBeam: 2, RXBeam: 9, Energy: 1.1},
		{TXBeam: 2, RXBeam: 4, Energy: 0.9},
	}
	frames := TraceAlignment(77, 1, 2, 4, 100, 16, ms, align.Pair{TX: 5, RX: 9}, 12.345)
	// beacon + 2 train requests + 4 reports + feedback = 8 frames.
	if len(frames) != 8 {
		t.Fatalf("got %d frames, want 8", len(frames))
	}

	decoded := make([]any, len(frames))
	for i, f := range frames {
		d, err := Decode(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		decoded[i] = d
	}

	beacon, ok := decoded[0].(*Beacon)
	if !ok || beacon.SuperframeID != 77 || beacon.TXBeams != 16 {
		t.Errorf("frame 0 = %+v", decoded[0])
	}
	req1, ok := decoded[1].(*TrainRequest)
	if !ok || req1.TXBeam != 5 || req1.SlotIndex != 0 || req1.Measurements != 2 {
		t.Errorf("frame 1 = %+v", decoded[1])
	}
	rep, ok := decoded[2].(*MeasurementReport)
	if !ok || rep.TXBeam != 5 || rep.RXBeam != 1 || rep.Energy != 2.0 {
		t.Errorf("frame 2 = %+v", decoded[2])
	}
	req2, ok := decoded[4].(*TrainRequest)
	if !ok || req2.TXBeam != 2 || req2.SlotIndex != 1 {
		t.Errorf("frame 4 = %+v", decoded[4])
	}
	fb, ok := decoded[7].(*BeamFeedback)
	if !ok || fb.BestTXBeam != 5 || fb.BestRXBeam != 9 || fb.SNRCentiDB != 1235 {
		t.Errorf("frame 7 = %+v", decoded[7])
	}
	// Direction check: downlink frames from BS (1), uplink from UE (2).
	if beacon.Src != 1 || rep.Src != 2 || fb.Src != 2 {
		t.Error("frame directions wrong")
	}
}

func TestTraceAlignmentSectorMarker(t *testing.T) {
	ms := []meas.Measurement{{TXBeam: 0, RXBeam: -1, Energy: 1}}
	frames := TraceAlignment(1, 1, 2, 1, 1, 4, ms, align.Pair{}, 0)
	d, err := Decode(frames[2])
	if err != nil {
		t.Fatal(err)
	}
	rep := d.(*MeasurementReport)
	if rep.RXBeam != math.MaxUint16 {
		t.Errorf("sector RX beam encoded as %d, want 65535", rep.RXBeam)
	}
}

func TestTraceAlignmentEndToEnd(t *testing.T) {
	// A real strategy run must produce a decodable, well-formed trace.
	link := smallLink()
	tx, rx, txBook, rxBook := link.books()
	_ = tx
	_ = rx
	tr, env, err := func() (align.Trajectory, *align.Env, error) {
		ch, err := link.newChannel(rng.New(91), txBook.Array(), rxBook.Array())
		if err != nil {
			return align.Trajectory{}, nil, err
		}
		return alignOnce(context.Background(), link, ch, 1, rng.New(92), rng.New(93), 16)
	}()
	if err != nil {
		t.Fatal(err)
	}
	_ = env
	ms := make([]meas.Measurement, 0, 16)
	// Rebuild a synthetic record from the trajectory length (the runner
	// does not retain raw measurements), exercising the trace path with
	// representative sizes.
	for i := 0; i < len(tr.LossDB); i++ {
		ms = append(ms, meas.Measurement{TXBeam: i / 4, RXBeam: i % 4, Energy: float64(i)})
	}
	frames := TraceAlignment(3, 10, 20, 16, 100, txBook.Size(), ms, tr.BestPair, tr.FinalLossDB())
	for i, f := range frames {
		if _, err := Decode(f); err != nil {
			t.Fatalf("frame %d does not decode: %v", i, err)
		}
	}
}
