package mac

import (
	"math"
	"testing"

	"mmwalign/internal/channel"
)

// smallLink keeps MAC tests fast: 2x2 / 4x4 arrays, 8x16 books.
func smallLink() LinkConfig {
	return LinkConfig{
		TXx: 2, TXz: 2, RXx: 4, RXz: 4,
		TXBookAz: 4, TXBookEl: 2, RXBookAz: 4, RXBookEl: 4,
		GammaDB: 0, Snapshots: 4, Scheme: "proposed", J: 4,
	}
}

func TestLinkConfigDefaults(t *testing.T) {
	c := LinkConfig{}.withDefaults()
	if c.TXx != 4 || c.RXx != 8 || c.Scheme != "proposed" || c.J != 8 || c.Snapshots != 4 {
		t.Errorf("unexpected defaults: %+v", c)
	}
}

func TestLinkConfigUnknownScheme(t *testing.T) {
	c := smallLink()
	c.Scheme = "psychic"
	_, _, _, rxBook := c.books()
	if _, err := c.strategy(1, rxBook); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestLinkConfigAllSchemesConstruct(t *testing.T) {
	c := smallLink()
	_, _, _, rxBook := c.books()
	for _, s := range []string{"random", "scan", "exhaustive", "proposed", "hierarchical"} {
		c.Scheme = s
		if _, err := c.strategy(1, rxBook); err != nil {
			t.Errorf("scheme %s: %v", s, err)
		}
	}
}

func TestRunSuperframesBasics(t *testing.T) {
	cfg := SuperframeConfig{
		Link:        smallLink(),
		Superframes: 5,
		TrainSlots:  24,
		DataSlots:   100,
		Seed:        1,
	}
	stats, err := RunSuperframes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Frames) != 5 {
		t.Fatalf("frames = %d, want 5", len(stats.Frames))
	}
	if stats.Efficiency <= 0 || stats.Efficiency > 1 {
		t.Errorf("efficiency = %g, want (0, 1]", stats.Efficiency)
	}
	for _, f := range stats.Frames {
		if f.LossDB < 0 {
			t.Errorf("frame %d negative loss %g", f.Frame, f.LossDB)
		}
		if f.SelectedSNRDB > f.OptimalSNRDB+1e-9 {
			t.Errorf("frame %d selected SNR beats optimal", f.Frame)
		}
		if f.DataBits < 0 || f.GenieBits <= 0 {
			t.Errorf("frame %d throughput records invalid: %+v", f.Frame, f)
		}
		if f.DataBits > f.GenieBits {
			t.Errorf("frame %d beat the genie", f.Frame)
		}
	}
}

func TestRunSuperframesDeterministic(t *testing.T) {
	cfg := SuperframeConfig{Link: smallLink(), Superframes: 3, TrainSlots: 16, DataSlots: 50, Seed: 7}
	a, err := RunSuperframes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuperframes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Efficiency != b.Efficiency || a.MeanLossDB != b.MeanLossDB {
		t.Error("same seed produced different results")
	}
}

func TestRunSuperframesRejectsBadBudget(t *testing.T) {
	cfg := SuperframeConfig{Link: smallLink(), TrainSlots: -1, Seed: 1}
	if _, err := RunSuperframes(cfg); err == nil {
		t.Error("negative TrainSlots accepted")
	}
}

func TestRunSuperframesMoreTrainingLowersLoss(t *testing.T) {
	// With drift, a larger per-frame training budget must not hurt mean
	// alignment loss (statistical, so compare generously).
	base := SuperframeConfig{Link: smallLink(), Superframes: 8, DataSlots: 100, Seed: 3}
	small := base
	small.TrainSlots = 8
	big := base
	big.TrainSlots = 96
	s1, err := RunSuperframes(small)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RunSuperframes(big)
	if err != nil {
		t.Fatal(err)
	}
	if s2.MeanLossDB > s1.MeanLossDB+1 {
		t.Errorf("96-slot training loss %g worse than 8-slot %g", s2.MeanLossDB, s1.MeanLossDB)
	}
}

func TestRunSuperframesWithBlockage(t *testing.T) {
	link := smallLink()
	link.Multipath = true
	cfg := SuperframeConfig{
		Link:        link,
		Superframes: 10,
		TrainSlots:  24,
		DataSlots:   100,
		Blockage:    &BlockageConfig{PBlock: 0.5, PUnblock: 0.3, AttenuationDB: 25},
		Seed:        21,
	}
	stats, err := RunSuperframes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawBlockage := false
	for _, f := range stats.Frames {
		if f.BlockedClusters > 0 {
			sawBlockage = true
		}
	}
	if !sawBlockage {
		t.Error("blockage process never blocked a cluster in 10 frames at pBlock=0.5")
	}
	if stats.Efficiency <= 0 || stats.Efficiency > 1 {
		t.Errorf("efficiency = %g", stats.Efficiency)
	}
}

func TestRunSuperframesBlockageValidation(t *testing.T) {
	cfg := SuperframeConfig{
		Link:        smallLink(),
		Superframes: 2,
		TrainSlots:  8,
		DataSlots:   10,
		Blockage:    &BlockageConfig{PBlock: 2, PUnblock: 0.3},
		Seed:        22,
	}
	if _, err := RunSuperframes(cfg); err == nil {
		t.Error("invalid blockage probability accepted")
	}
}

func TestRunCellSearchBasics(t *testing.T) {
	cfg := CellSearchConfig{
		Link:        smallLink(),
		NumBS:       4,
		BudgetPerBS: 24,
		Seed:        11,
	}
	res, err := RunCellSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBS) != 4 {
		t.Fatalf("PerBS = %d, want 4", len(res.PerBS))
	}
	reachable := 0
	for _, bs := range res.PerBS {
		if bs.DistanceM < cfg.MinDistance-1e-9 || bs.DistanceM > 200+1e-9 {
			t.Errorf("BS %d at distance %g outside placement", bs.Index, bs.DistanceM)
		}
		if bs.State != channel.StateOutage {
			reachable++
			if math.IsInf(bs.GammaDB, -1) {
				t.Errorf("reachable BS %d has no gamma", bs.Index)
			}
			if bs.SlotsSpent != 24 {
				t.Errorf("BS %d spent %d slots, want 24", bs.Index, bs.SlotsSpent)
			}
		}
	}
	if reachable > 0 {
		if res.Associated < 0 {
			t.Error("reachable BS exists but no association")
		}
		if res.TotalSlots != reachable*24 {
			t.Errorf("TotalSlots = %d, want %d", res.TotalSlots, reachable*24)
		}
	}
}

func TestRunCellSearchDeterministic(t *testing.T) {
	cfg := CellSearchConfig{Link: smallLink(), NumBS: 3, BudgetPerBS: 16, Seed: 5}
	a, err := RunCellSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCellSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Associated != b.Associated || a.AssociatedSNRDB != b.AssociatedSNRDB {
		t.Error("same seed produced different cell search outcomes")
	}
}

func TestRunCellSearchAllOutage(t *testing.T) {
	cfg := CellSearchConfig{
		Link:        smallLink(),
		NumBS:       3,
		BudgetPerBS: 8,
		// Force outage by placing everything far out with a model that
		// declares outage almost surely at 10km.
		Radius:      1e4,
		MinDistance: 9.9e3,
		Seed:        13,
	}
	res, err := RunCellSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range res.PerBS {
		if bs.State != channel.StateOutage {
			t.Skip("rare non-outage draw at 10km; skipping")
		}
	}
	if res.Associated != -1 {
		t.Error("association succeeded with every BS in outage")
	}
	if res.FoundBestBS {
		t.Error("FoundBestBS true with no association")
	}
}

func TestCellSearchConfigDefaults(t *testing.T) {
	c := CellSearchConfig{}.withDefaults()
	if c.NumBS != 3 || c.Radius != 200 || c.BudgetPerBS != 64 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.Budget.BandwidthHz != 1e9 {
		t.Errorf("link budget default: %+v", c.Budget)
	}
	if c.PathLoss.AlphaLOS != 61.4 {
		t.Errorf("path loss default: %+v", c.PathLoss)
	}
}

func TestCellSearchUsesMeasuredRanking(t *testing.T) {
	// The association decision must come from measured SNR; with a
	// decent budget it should usually also be the truly best BS. Run a
	// handful of seeds and require a majority match.
	match := 0
	const runs = 6
	for seed := int64(0); seed < runs; seed++ {
		cfg := CellSearchConfig{Link: smallLink(), NumBS: 3, BudgetPerBS: 48, Radius: 120, Seed: 100 + seed}
		res, err := RunCellSearch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Associated < 0 {
			continue
		}
		if res.FoundBestBS {
			match++
		}
	}
	if match < runs/2 {
		t.Errorf("associated with the best BS in only %d/%d runs", match, runs)
	}
}
