// Package mac embeds the beam-alignment schemes into the slotted MAC
// protocol context the paper targets: superframes that split airtime
// between a directional training phase (TX slots × RX measurement slots,
// exactly the paper's sounding structure) and a data phase whose rate
// depends on the beam pair the training selected. It also implements the
// directional cell-search procedure of the paper's introduction: a
// mobile sweeping multiple candidate base stations, each behind its own
// LOS/NLOS/outage path-loss draw, and associating with the best
// discovered beam.
//
// The simulations quantify the protocol-level consequence of alignment
// quality that motivates the paper: every slot spent training is a slot
// not spent on data, so a scheme that reaches a low SNR loss with fewer
// measurements buys net throughput.
package mac

import (
	"context"
	"fmt"
	"math"

	"mmwalign/internal/align"
	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// LinkConfig describes the radio configuration shared by the MAC
// simulations. Zero fields take paper defaults.
type LinkConfig struct {
	// TXx, TXz, RXx, RXz are the UPA dimensions (defaults 4×4 and 8×8).
	TXx, TXz, RXx, RXz int
	// TXBookAz, TXBookEl, RXBookAz, RXBookEl shape the codebook grids
	// (defaults 4×4 and 8×8).
	TXBookAz, TXBookEl, RXBookAz, RXBookEl int
	// GammaDB is the pre-beamforming SNR in dB (ignored by the cell
	// search, which derives per-BS SNR from the link budget).
	GammaDB float64
	// Snapshots per measurement (default 4).
	Snapshots int
	// Scheme names the alignment strategy (default "proposed").
	Scheme string
	// J is the proposed scheme's per-slot measurement count (default 8).
	J int
	// Multipath selects the NYC channel (default single-path).
	Multipath bool
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.TXx == 0 {
		c.TXx = 4
	}
	if c.TXz == 0 {
		c.TXz = 4
	}
	if c.RXx == 0 {
		c.RXx = 8
	}
	if c.RXz == 0 {
		c.RXz = 8
	}
	if c.TXBookAz == 0 {
		c.TXBookAz = 4
	}
	if c.TXBookEl == 0 {
		c.TXBookEl = 4
	}
	if c.RXBookAz == 0 {
		c.RXBookAz = 8
	}
	if c.RXBookEl == 0 {
		c.RXBookEl = 8
	}
	if c.Snapshots == 0 {
		c.Snapshots = 4
	}
	if c.Scheme == "" {
		c.Scheme = "proposed"
	}
	if c.J == 0 {
		c.J = 8
	}
	return c
}

// books builds the TX and RX codebooks.
func (c LinkConfig) books() (tx, rx antenna.UPA, txBook, rxBook *antenna.Codebook) {
	tx = antenna.NewUPA(c.TXx, c.TXz)
	rx = antenna.NewUPA(c.RXx, c.RXz)
	txBook = antenna.NewGridCodebook(tx, c.TXBookAz, c.TXBookEl, math.Pi, math.Pi/2)
	rxBook = antenna.NewGridCodebook(rx, c.RXBookAz, c.RXBookEl, math.Pi, math.Pi/2)
	return tx, rx, txBook, rxBook
}

// strategy instantiates the configured alignment scheme.
func (c LinkConfig) strategy(gamma float64, rxBook *antenna.Codebook) (align.Strategy, error) {
	switch c.Scheme {
	case "random":
		return align.RandomStrategy{}, nil
	case "scan":
		return align.ScanStrategy{}, nil
	case "exhaustive":
		return align.ExhaustiveStrategy{}, nil
	case "proposed":
		return align.NewProposed(align.ProposedConfig{
			J:         c.J,
			Window:    96,
			Estimator: covest.Options{Gamma: gamma, MaxIters: 25},
		}), nil
	case "two-sided":
		return align.NewTwoSided(align.ProposedConfig{
			J:         c.J,
			Window:    96,
			Estimator: covest.Options{Gamma: gamma, MaxIters: 25},
		}), nil
	case "hierarchical":
		return align.NewHierarchical(antenna.NewHierCodebook(rxBook, 2, 2)), nil
	case "local-refine":
		return align.NewLocalRefine(), nil
	case "digital":
		return align.NewDigital(), nil
	default:
		return nil, fmt.Errorf("mac: unknown scheme %q", c.Scheme)
	}
}

// newChannel draws a channel realization for the link.
func (c LinkConfig) newChannel(src *rng.Source, tx, rx antenna.Array) (*channel.Channel, error) {
	if c.Multipath {
		return channel.NewNYCMultipath(src, tx, rx, channel.DefaultNYC28())
	}
	return channel.NewSinglePath(src, tx, rx, channel.SinglePathSpec{})
}

// alignOnce runs one training phase on the given channel and returns the
// selected pair with its true SNR, plus the oracle SNR for reference.
// Cancelling ctx stops the training at the next measurement boundary.
func alignOnce(ctx context.Context, cfg LinkConfig, ch *channel.Channel, gamma float64, noise, strat *rng.Source, budget int) (align.Trajectory, *align.Env, error) {
	_, _, txBook, rxBook := cfg.books()
	sounder, err := meas.NewSounder(ch, gamma, noise)
	if err != nil {
		return align.Trajectory{}, nil, fmt.Errorf("mac: sounder: %w", err)
	}
	sounder.SetSnapshots(cfg.Snapshots)
	env := &align.Env{TXBook: txBook, RXBook: rxBook, Sounder: sounder, Src: strat}
	s, err := cfg.strategy(gamma, rxBook)
	if err != nil {
		return align.Trajectory{}, nil, err
	}
	tr, err := align.EvaluateContext(ctx, env, s, budget)
	if err != nil {
		return align.Trajectory{}, nil, err
	}
	return tr, env, nil
}
