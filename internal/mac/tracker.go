package mac

import (
	"context"
	"fmt"
	"math"

	"mmwalign/internal/align"
	"mmwalign/internal/channel"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// TrackerConfig parameterizes the beam-tracking simulation: after an
// initial full alignment, each superframe spends only a handful of
// slots re-sounding the current pair and its spatial neighbors
// (tracking), escalating to a full realignment when the measured SNR
// collapses — the blockage/drift recovery loop a deployed MAC would run
// on top of the paper's alignment scheme.
type TrackerConfig struct {
	// Link is the radio configuration.
	Link LinkConfig
	// Superframes is the simulated horizon (default 20).
	Superframes int
	// SlotBudget is the total slots per superframe, split between
	// training (tracking or realignment) and data (default 512).
	SlotBudget int
	// FullTrainSlots is the budget of a full (re)alignment (default 96).
	FullTrainSlots int
	// TrackSlots is the per-frame tracking budget (default 8).
	TrackSlots int
	// DropThresholdDB triggers a full realignment when the tracked
	// measured SNR falls this far below the post-alignment reference
	// (default 10).
	DropThresholdDB float64
	// DriftSigmaDeg is the per-frame angle drift (default 1).
	DriftSigmaDeg float64
	// Blockage, when non-nil, adds the cluster blockage process.
	Blockage *BlockageConfig
	// Seed drives all randomness.
	Seed int64
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	c.Link = c.Link.withDefaults()
	if c.Superframes == 0 {
		c.Superframes = 20
	}
	if c.SlotBudget == 0 {
		c.SlotBudget = 512
	}
	if c.FullTrainSlots == 0 {
		c.FullTrainSlots = 96
	}
	if c.TrackSlots == 0 {
		c.TrackSlots = 8
	}
	if c.DropThresholdDB == 0 {
		c.DropThresholdDB = 10
	}
	if c.DriftSigmaDeg == 0 {
		c.DriftSigmaDeg = 1
	}
	return c
}

// TrackerFrame records one superframe of the tracking loop.
type TrackerFrame struct {
	// Frame is the superframe index.
	Frame int
	// Mode is "full" for a full realignment frame, "track" otherwise.
	Mode string
	// TrainSlotsUsed is the training cost paid this frame.
	TrainSlotsUsed int
	// SelectedSNRDB and OptimalSNRDB are true SNRs (dB) of the held pair
	// and the oracle pair on this frame's channel.
	SelectedSNRDB, OptimalSNRDB float64
	// LossDB is their difference.
	LossDB float64
	// BlockedClusters counts blocked clusters during the frame.
	BlockedClusters int
}

// TrackerStats aggregates a tracking run.
type TrackerStats struct {
	// Frames holds per-frame records.
	Frames []TrackerFrame
	// FullRealigns counts full realignment frames (including frame 0).
	FullRealigns int
	// MeanTrainSlots is the mean per-frame training cost.
	MeanTrainSlots float64
	// MeanLossDB is the mean alignment loss.
	MeanLossDB float64
	// Efficiency is delivered/genie throughput as in RunSuperframes.
	Efficiency float64
}

// RunTracker executes the tracking simulation.
func RunTracker(cfg TrackerConfig) (TrackerStats, error) {
	return RunTrackerContext(context.Background(), cfg)
}

// RunTrackerContext is RunTracker with cooperative cancellation: the
// simulation stops cleanly at the next superframe or alignment boundary
// when ctx is cancelled, returning the context's error. Cancellation
// mid-trajectory is how the scenario engine aborts long mobility runs
// without leaking goroutines.
func RunTrackerContext(ctx context.Context, cfg TrackerConfig) (TrackerStats, error) {
	cfg = cfg.withDefaults()
	if cfg.TrackSlots < 1 || cfg.FullTrainSlots < 1 || cfg.SlotBudget <= cfg.FullTrainSlots {
		return TrackerStats{}, fmt.Errorf("mac: tracker slots invalid: budget %d, full %d, track %d",
			cfg.SlotBudget, cfg.FullTrainSlots, cfg.TrackSlots)
	}
	root := rng.New(cfg.Seed)
	link := cfg.Link
	tx, rx, txBook, rxBook := link.books()
	ch, err := link.newChannel(root.Split("channel"), tx, rx)
	if err != nil {
		return TrackerStats{}, fmt.Errorf("mac: tracker channel: %w", err)
	}
	gamma := channel.DBToLinear(link.GammaDB)
	drift := cfg.DriftSigmaDeg * math.Pi / 180
	driftSrc := root.Split("drift")

	var blocker *channel.Blocker
	blockSrc := root.Split("blockage")
	if cfg.Blockage != nil {
		att := cfg.Blockage.AttenuationDB
		if att == 0 {
			att = 25
		}
		groupSize := 1
		if link.Multipath {
			groupSize = channel.DefaultNYC28().SubpathsPerCluster
		}
		blocker, err = channel.NewBlocker(ch, groupSize, cfg.Blockage.PBlock, cfg.Blockage.PUnblock, att)
		if err != nil {
			return TrackerStats{}, fmt.Errorf("mac: tracker blockage: %w", err)
		}
	}

	var stats TrackerStats
	var sumLoss, sumBits, sumGenie, sumSlots float64
	var current align.Pair
	refSNRdB := math.Inf(-1)
	needFull := true

	for f := 0; f < cfg.Superframes; f++ {
		if err := ctx.Err(); err != nil {
			return TrackerStats{}, err
		}
		blockedClusters := 0
		if blocker != nil {
			blocker.Step(blockSrc)
			blockedClusters = blocker.BlockedCount()
		}

		sounder, err := meas.NewSounder(ch, gamma, root.SplitIndexed("noise", f))
		if err != nil {
			return TrackerStats{}, fmt.Errorf("mac: tracker sounder: %w", err)
		}
		sounder.SetSnapshots(link.Snapshots)
		env := &align.Env{TXBook: txBook, RXBook: rxBook, Sounder: sounder, Src: root.SplitIndexed("strategy", f)}

		mode := "track"
		trainUsed := 0
		if needFull {
			mode = "full"
			strat, err := link.strategy(gamma, rxBook)
			if err != nil {
				return TrackerStats{}, err
			}
			tr, err := align.EvaluateContext(ctx, env, strat, cfg.FullTrainSlots)
			if err != nil {
				return TrackerStats{}, fmt.Errorf("mac: tracker frame %d: %w", f, err)
			}
			current = tr.BestPair
			refSNRdB = channel.LinearToDB(tr.BestMeasuredSNR)
			trainUsed = len(tr.LossDB)
			stats.FullRealigns++
			needFull = false
		} else {
			best, bestEst, used := trackStep(env, current, cfg.TrackSlots)
			current = best
			trainUsed = used
			measuredDB := channel.LinearToDB(bestEst)
			if measuredDB < refSNRdB-cfg.DropThresholdDB {
				needFull = true // escalate next frame
			} else {
				// Slowly adapt the reference to legitimate drift.
				refSNRdB = 0.9*refSNRdB + 0.1*measuredDB
			}
		}

		sel := align.TrueSNROf(env, current)
		_, opt := align.Oracle(env)
		loss := math.Inf(1)
		if sel > 0 {
			loss = math.Max(0, 10*math.Log10(opt/sel))
		}
		dataSlots := cfg.SlotBudget - trainUsed
		sumBits += float64(dataSlots) * math.Log2(1+sel)
		sumGenie += float64(cfg.SlotBudget) * math.Log2(1+opt)
		sumLoss += loss
		sumSlots += float64(trainUsed)

		stats.Frames = append(stats.Frames, TrackerFrame{
			Frame:           f,
			Mode:            mode,
			TrainSlotsUsed:  trainUsed,
			SelectedSNRDB:   channel.LinearToDB(sel),
			OptimalSNRDB:    channel.LinearToDB(opt),
			LossDB:          loss,
			BlockedClusters: blockedClusters,
		})

		ch.Drift(driftSrc, drift)
	}

	n := float64(len(stats.Frames))
	stats.MeanTrainSlots = sumSlots / n
	stats.MeanLossDB = sumLoss / n
	if sumGenie > 0 {
		stats.Efficiency = sumBits / sumGenie
	}
	return stats, nil
}

// trackStep sounds the current pair and its spatial neighborhood (TX
// neighbors with the held RX beam, RX neighbors with the held TX beam)
// within the slot budget and returns the best measured pair, its
// measured SNR estimate, and the slots consumed.
func trackStep(env *align.Env, current align.Pair, budget int) (align.Pair, float64, int) {
	candidates := []align.Pair{current}
	for _, t := range env.TXBook.Neighbors(current.TX) {
		candidates = append(candidates, align.Pair{TX: t, RX: current.RX})
	}
	for _, r := range env.RXBook.Neighbors(current.RX) {
		candidates = append(candidates, align.Pair{TX: current.TX, RX: r})
	}
	best, bestEst := current, math.Inf(-1)
	used := 0
	for _, p := range candidates {
		if used == budget {
			break
		}
		m := env.MeasurePair(p)
		used++
		if est := m.SNREstimate(); est > bestEst {
			best, bestEst = p, est
		}
	}
	return best, bestEst, used
}
