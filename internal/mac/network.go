package mac

import (
	"context"
	"fmt"
	"math"

	"mmwalign/internal/channel"
	"mmwalign/internal/rng"
)

// NetworkConfig parameterizes the multi-user cell simulation: one base
// station serving NumUEs mobiles, each behind an independent channel.
// Every superframe begins with per-UE beam training (TrainSlotsPerUE
// measurement slots each) and ends with a shared data phase whose slots
// a scheduler divides among the users. The simulation quantifies the
// cell-level consequence of alignment quality: training overhead scales
// with the user count, so efficient alignment directly buys cell
// capacity — the argument of the paper's introduction.
type NetworkConfig struct {
	// Link is the per-user radio configuration.
	Link LinkConfig
	// NumUEs is the number of mobiles (default 4).
	NumUEs int
	// Superframes is the simulated horizon (default 10).
	Superframes int
	// TrainSlotsPerUE is the alignment budget per user per superframe
	// (default 32).
	TrainSlotsPerUE int
	// DataSlots is the shared data-phase length per superframe
	// (default 512).
	DataSlots int
	// Scheduler picks the data-phase discipline: "round-robin" (equal
	// share, default) or "max-rate" (all slots to the best user).
	Scheduler string
	// DriftSigmaDeg is per-superframe angular drift (default 1).
	DriftSigmaDeg float64
	// Seed drives all randomness.
	Seed int64
}

func (c NetworkConfig) withDefaults() NetworkConfig {
	c.Link = c.Link.withDefaults()
	if c.NumUEs == 0 {
		c.NumUEs = 4
	}
	if c.Superframes == 0 {
		c.Superframes = 10
	}
	if c.TrainSlotsPerUE == 0 {
		c.TrainSlotsPerUE = 32
	}
	if c.DataSlots == 0 {
		c.DataSlots = 512
	}
	if c.Scheduler == "" {
		c.Scheduler = "round-robin"
	}
	if c.DriftSigmaDeg == 0 {
		c.DriftSigmaDeg = 1
	}
	return c
}

// UEStat summarizes one user's run.
type UEStat struct {
	// UE is the user index.
	UE int
	// MeanSNRDB is the mean true SNR (dB) of the user's selected pairs.
	MeanSNRDB float64
	// MeanLossDB is the user's mean alignment loss.
	MeanLossDB float64
	// Bits is the user's accumulated data-phase throughput
	// (bits/s/Hz × slots).
	Bits float64
	// SlotsServed counts the data slots the scheduler granted.
	SlotsServed int
}

// NetworkStats aggregates a multi-user run.
type NetworkStats struct {
	// PerUE holds each user's summary.
	PerUE []UEStat
	// SumBits is the cell throughput.
	SumBits float64
	// GenieBits is the cell throughput of a genie with perfect beams and
	// zero training overhead under round-robin scheduling.
	GenieBits float64
	// Efficiency is SumBits/GenieBits.
	Efficiency float64
	// Fairness is Jain's index over per-user bits (1 = perfectly fair).
	Fairness float64
}

// RunNetwork executes the multi-user simulation.
func RunNetwork(cfg NetworkConfig) (NetworkStats, error) {
	cfg = cfg.withDefaults()
	switch cfg.Scheduler {
	case "round-robin", "max-rate":
	default:
		return NetworkStats{}, fmt.Errorf("mac: unknown scheduler %q", cfg.Scheduler)
	}
	root := rng.New(cfg.Seed)
	tx, rx, _, _ := cfg.Link.books()
	gamma := channel.DBToLinear(cfg.Link.GammaDB)
	drift := cfg.DriftSigmaDeg * math.Pi / 180

	// Independent channel per user.
	channels := make([]*channel.Channel, cfg.NumUEs)
	for u := range channels {
		ch, err := cfg.Link.newChannel(root.SplitIndexed("channel", u), tx, rx)
		if err != nil {
			return NetworkStats{}, fmt.Errorf("mac: UE %d channel: %w", u, err)
		}
		channels[u] = ch
	}
	driftSrc := root.Split("drift")

	stats := NetworkStats{PerUE: make([]UEStat, cfg.NumUEs)}
	for u := range stats.PerUE {
		stats.PerUE[u].UE = u
	}
	var sumGenie float64
	snrSum := make([]float64, cfg.NumUEs)
	lossSum := make([]float64, cfg.NumUEs)

	for f := 0; f < cfg.Superframes; f++ {
		// Training phase: every UE aligns on its own channel.
		selSNR := make([]float64, cfg.NumUEs)
		optSNR := make([]float64, cfg.NumUEs)
		for u := 0; u < cfg.NumUEs; u++ {
			tr, _, err := alignOnce(context.Background(), cfg.Link, channels[u], gamma,
				root.SplitIndexed(fmt.Sprintf("noise-%d", u), f),
				root.SplitIndexed(fmt.Sprintf("strategy-%d", u), f),
				cfg.TrainSlotsPerUE)
			if err != nil {
				return NetworkStats{}, fmt.Errorf("mac: UE %d frame %d: %w", u, f, err)
			}
			selSNR[u] = tr.BestTrueSNR
			optSNR[u] = tr.OptSNR
			snrSum[u] += channel.LinearToDB(tr.BestTrueSNR)
			lossSum[u] += tr.FinalLossDB()
		}

		// Data phase: scheduler splits DataSlots.
		share := make([]int, cfg.NumUEs)
		switch cfg.Scheduler {
		case "round-robin":
			base := cfg.DataSlots / cfg.NumUEs
			rem := cfg.DataSlots % cfg.NumUEs
			for u := range share {
				share[u] = base
				if u < rem {
					share[u]++
				}
			}
		case "max-rate":
			best := 0
			for u := 1; u < cfg.NumUEs; u++ {
				if selSNR[u] > selSNR[best] {
					best = u
				}
			}
			share[best] = cfg.DataSlots
		}
		for u := 0; u < cfg.NumUEs; u++ {
			stats.PerUE[u].Bits += float64(share[u]) * math.Log2(1+selSNR[u])
			stats.PerUE[u].SlotsServed += share[u]
		}

		// Genie reference: perfect beams, no training overhead, fair
		// split of the whole superframe.
		total := cfg.DataSlots + cfg.NumUEs*cfg.TrainSlotsPerUE
		for u := 0; u < cfg.NumUEs; u++ {
			sumGenie += float64(total) / float64(cfg.NumUEs) * math.Log2(1+optSNR[u])
		}

		for u := 0; u < cfg.NumUEs; u++ {
			channels[u].Drift(driftSrc, drift)
		}
	}

	var sum, sumSq float64
	for u := range stats.PerUE {
		stats.PerUE[u].MeanSNRDB = snrSum[u] / float64(cfg.Superframes)
		stats.PerUE[u].MeanLossDB = lossSum[u] / float64(cfg.Superframes)
		stats.SumBits += stats.PerUE[u].Bits
		sum += stats.PerUE[u].Bits
		sumSq += stats.PerUE[u].Bits * stats.PerUE[u].Bits
	}
	stats.GenieBits = sumGenie
	if sumGenie > 0 {
		stats.Efficiency = stats.SumBits / sumGenie
	}
	if sumSq > 0 {
		stats.Fairness = sum * sum / (float64(cfg.NumUEs) * sumSq)
	}
	return stats, nil
}
