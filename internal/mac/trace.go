package mac

import (
	"math"

	"mmwalign/internal/align"
	"mmwalign/internal/meas"
)

// TraceAlignment replays a completed alignment run as the control-frame
// exchange a BS and UE would perform on the air: one beacon, a
// train-request per TX slot, a measurement-report per sounding, and a
// closing beam-feedback with the selected pair. The result is the
// marshaled frame sequence, ready to feed a radio prototype, a packet
// trace, or a protocol-conformance check.
//
// bs and ue are the node addresses; downlink frames (beacon, train
// requests) go bs→ue and uplink frames (reports, feedback) ue→bs.
func TraceAlignment(superframeID uint32, bs, ue uint16, trainSlots, dataSlots, txBeams int, ms []meas.Measurement, best align.Pair, bestSNRdB float64) [][]byte {
	var frames [][]byte
	var seqDown, seqUp uint16

	frames = append(frames, Beacon{
		Header:       Header{Seq: seqDown, Src: bs, Dst: ue},
		SuperframeID: superframeID,
		TrainSlots:   clampUint16(trainSlots),
		DataSlots:    clampUint16(dataSlots),
		TXBeams:      clampUint16(txBeams),
	}.Marshal())
	seqDown++

	slot := -1
	lastTX := -2 // impossible beam so the first measurement opens a slot
	for _, m := range ms {
		if m.TXBeam != lastTX {
			slot++
			lastTX = m.TXBeam
			frames = append(frames, TrainRequest{
				Header:       Header{Seq: seqDown, Src: bs, Dst: ue},
				TXBeam:       clampUint16(m.TXBeam),
				SlotIndex:    clampUint16(slot),
				Measurements: countSlotMeasurements(ms, m.TXBeam, slot),
			}.Marshal())
			seqDown++
		}
		rx := m.RXBeam
		if rx < 0 {
			rx = math.MaxUint16 // sector sounding marker on the wire
		}
		frames = append(frames, MeasurementReport{
			Header: Header{Seq: seqUp, Src: ue, Dst: bs},
			TXBeam: clampUint16(m.TXBeam),
			RXBeam: clampUint16(rx),
			Energy: m.Energy,
		}.Marshal())
		seqUp++
	}

	frames = append(frames, BeamFeedback{
		Header:     Header{Seq: seqUp, Src: ue, Dst: bs},
		BestTXBeam: clampUint16(best.TX),
		BestRXBeam: clampUint16(best.RX),
		SNRCentiDB: int32(math.Round(bestSNRdB * 100)),
	}.Marshal())
	return frames
}

// countSlotMeasurements counts the run of measurements with the given TX
// beam starting at the slot's first occurrence; capped at 255 by the
// wire format.
func countSlotMeasurements(ms []meas.Measurement, txBeam, slot int) uint8 {
	count, cur, last := 0, -1, -2
	for _, m := range ms {
		if m.TXBeam != last {
			cur++
			last = m.TXBeam
		}
		if cur == slot && m.TXBeam == txBeam {
			count++
		}
	}
	if count > 255 {
		count = 255
	}
	return uint8(count)
}

func clampUint16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint16 {
		return math.MaxUint16
	}
	return uint16(v)
}
