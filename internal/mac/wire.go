package mac

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file implements the over-the-air control frames of the beam
// alignment protocol in the style of IEEE 802.15.3c's beamforming
// signaling, which the paper names as the carrier for its feedback
// ("RX can also transmit some feedback messages as specified in IEEE
// 802.15.3c, e.g. its best receiving direction, and the quality of the
// best beam pair"). Frames marshal to a compact big-endian wire format
// so a MAC simulation — or a real radio prototype — can exchange them
// as byte slices.

// FrameType discriminates the control frames.
type FrameType uint8

// Frame types. Values start at 1 so a zeroed buffer cannot decode as a
// valid frame.
const (
	// FrameBeacon announces a superframe: its training/data split and
	// the TX codebook size, so the receiver can size its search.
	FrameBeacon FrameType = iota + 1
	// FrameTrainRequest announces one TX training slot: the TX beam the
	// transmitter will dwell on and how many RX measurements fit.
	FrameTrainRequest
	// FrameMeasurementReport carries one RX measurement result back.
	FrameMeasurementReport
	// FrameBeamFeedback reports the receiver's current best beam pair
	// and its quality (the paper's Eq. 30 result).
	FrameBeamFeedback
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameBeacon:
		return "beacon"
	case FrameTrainRequest:
		return "train-request"
	case FrameMeasurementReport:
		return "measurement-report"
	case FrameBeamFeedback:
		return "beam-feedback"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// Wire format constants.
const (
	headerLen            = 7
	beaconLen            = headerLen + 10
	trainRequestLen      = headerLen + 5
	measurementReportLen = headerLen + 12
	beamFeedbackLen      = headerLen + 8
)

// Decoding errors.
var (
	// ErrShortFrame is returned when a buffer is too small for its
	// declared frame type.
	ErrShortFrame = errors.New("mac: short frame")
	// ErrUnknownFrameType is returned for an unrecognized discriminator.
	ErrUnknownFrameType = errors.New("mac: unknown frame type")
)

// Header is common to all control frames.
type Header struct {
	// Type discriminates the frame.
	Type FrameType
	// Seq is a per-sender sequence number.
	Seq uint16
	// Src and Dst are short node identifiers (BS/UE addresses).
	Src, Dst uint16
}

func (h Header) put(b []byte) {
	b[0] = byte(h.Type)
	binary.BigEndian.PutUint16(b[1:], h.Seq)
	binary.BigEndian.PutUint16(b[3:], h.Src)
	binary.BigEndian.PutUint16(b[5:], h.Dst)
}

func getHeader(b []byte) (Header, error) {
	if len(b) < headerLen {
		return Header{}, fmt.Errorf("%w: %d bytes, need %d for a header", ErrShortFrame, len(b), headerLen)
	}
	return Header{
		Type: FrameType(b[0]),
		Seq:  binary.BigEndian.Uint16(b[1:]),
		Src:  binary.BigEndian.Uint16(b[3:]),
		Dst:  binary.BigEndian.Uint16(b[5:]),
	}, nil
}

// Beacon announces a superframe.
type Beacon struct {
	Header
	// SuperframeID numbers the superframe.
	SuperframeID uint32
	// TrainSlots and DataSlots give the airtime split.
	TrainSlots, DataSlots uint16
	// TXBeams is card(U), letting the receiver bound its search space.
	TXBeams uint16
}

// Marshal encodes the beacon.
func (f Beacon) Marshal() []byte {
	f.Type = FrameBeacon
	b := make([]byte, beaconLen)
	f.Header.put(b)
	binary.BigEndian.PutUint32(b[headerLen:], f.SuperframeID)
	binary.BigEndian.PutUint16(b[headerLen+4:], f.TrainSlots)
	binary.BigEndian.PutUint16(b[headerLen+6:], f.DataSlots)
	binary.BigEndian.PutUint16(b[headerLen+8:], f.TXBeams)
	return b
}

// TrainRequest announces one TX training slot.
type TrainRequest struct {
	Header
	// TXBeam is the codebook beam the transmitter dwells on.
	TXBeam uint16
	// SlotIndex is the TX-slot index i.
	SlotIndex uint16
	// Measurements is J, the RX measurement count for this slot.
	Measurements uint8
}

// Marshal encodes the request.
func (f TrainRequest) Marshal() []byte {
	f.Type = FrameTrainRequest
	b := make([]byte, trainRequestLen)
	f.Header.put(b)
	binary.BigEndian.PutUint16(b[headerLen:], f.TXBeam)
	binary.BigEndian.PutUint16(b[headerLen+2:], f.SlotIndex)
	b[headerLen+4] = f.Measurements
	return b
}

// MeasurementReport carries one RX measurement back to the transmitter.
type MeasurementReport struct {
	Header
	// TXBeam and RXBeam identify the sounded pair.
	TXBeam, RXBeam uint16
	// Energy is the measured matched-filter energy |z|².
	Energy float64
}

// Marshal encodes the report. The energy travels as an IEEE-754 double.
func (f MeasurementReport) Marshal() []byte {
	f.Type = FrameMeasurementReport
	b := make([]byte, measurementReportLen)
	f.Header.put(b)
	binary.BigEndian.PutUint16(b[headerLen:], f.TXBeam)
	binary.BigEndian.PutUint16(b[headerLen+2:], f.RXBeam)
	binary.BigEndian.PutUint64(b[headerLen+4:], math.Float64bits(f.Energy))
	return b
}

// BeamFeedback reports the receiver's best pair so far.
type BeamFeedback struct {
	Header
	// BestTXBeam and BestRXBeam are the winning pair (Eq. 30).
	BestTXBeam, BestRXBeam uint16
	// SNRCentiDB is the measured SNR in hundredths of a dB; the fixed
	// point keeps the frame compact and the precision far below any
	// measurement noise floor.
	SNRCentiDB int32
}

// Marshal encodes the feedback.
func (f BeamFeedback) Marshal() []byte {
	f.Type = FrameBeamFeedback
	b := make([]byte, beamFeedbackLen)
	f.Header.put(b)
	binary.BigEndian.PutUint16(b[headerLen:], f.BestTXBeam)
	binary.BigEndian.PutUint16(b[headerLen+2:], f.BestRXBeam)
	binary.BigEndian.PutUint32(b[headerLen+4:], uint32(f.SNRCentiDB))
	return b
}

// Decode parses any control frame, returning one of *Beacon,
// *TrainRequest, *MeasurementReport or *BeamFeedback.
func Decode(b []byte) (any, error) {
	h, err := getHeader(b)
	if err != nil {
		return nil, err
	}
	need := 0
	switch h.Type {
	case FrameBeacon:
		need = beaconLen
	case FrameTrainRequest:
		need = trainRequestLen
	case FrameMeasurementReport:
		need = measurementReportLen
	case FrameBeamFeedback:
		need = beamFeedbackLen
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownFrameType, h.Type)
	}
	if len(b) < need {
		return nil, fmt.Errorf("%w: %d bytes, need %d for %v", ErrShortFrame, len(b), need, h.Type)
	}
	switch h.Type {
	case FrameBeacon:
		return &Beacon{
			Header:       h,
			SuperframeID: binary.BigEndian.Uint32(b[headerLen:]),
			TrainSlots:   binary.BigEndian.Uint16(b[headerLen+4:]),
			DataSlots:    binary.BigEndian.Uint16(b[headerLen+6:]),
			TXBeams:      binary.BigEndian.Uint16(b[headerLen+8:]),
		}, nil
	case FrameTrainRequest:
		return &TrainRequest{
			Header:       h,
			TXBeam:       binary.BigEndian.Uint16(b[headerLen:]),
			SlotIndex:    binary.BigEndian.Uint16(b[headerLen+2:]),
			Measurements: b[headerLen+4],
		}, nil
	case FrameMeasurementReport:
		return &MeasurementReport{
			Header: h,
			TXBeam: binary.BigEndian.Uint16(b[headerLen:]),
			RXBeam: binary.BigEndian.Uint16(b[headerLen+2:]),
			Energy: math.Float64frombits(binary.BigEndian.Uint64(b[headerLen+4:])),
		}, nil
	default: // FrameBeamFeedback, by the switch above
		return &BeamFeedback{
			Header:     h,
			BestTXBeam: binary.BigEndian.Uint16(b[headerLen:]),
			BestRXBeam: binary.BigEndian.Uint16(b[headerLen+2:]),
			SNRCentiDB: int32(binary.BigEndian.Uint32(b[headerLen+4:])),
		}, nil
	}
}
