package mac

import (
	"context"
	"fmt"
	"math"

	"mmwalign/internal/channel"
	"mmwalign/internal/rng"
)

// CellSearchConfig parameterizes the directional initial-access
// simulation: a mobile at the origin scans NumBS candidate base
// stations placed uniformly at random within Radius meters, spending
// BudgetPerBS measurement slots of beam alignment on each reachable one,
// then associates with the base station offering the strongest measured
// beam pair.
type CellSearchConfig struct {
	// Link is the radio configuration shared by all BS links.
	Link LinkConfig
	// NumBS is the number of candidate base stations (default 3).
	NumBS int
	// Radius bounds BS placement distance in meters (default 200).
	Radius float64
	// MinDistance keeps base stations out of the near field (default 10).
	MinDistance float64
	// BudgetPerBS is the alignment budget spent per reachable BS
	// (default 64).
	BudgetPerBS int
	// Budget is the link budget converting path loss into γ.
	Budget channel.LinkBudget
	// PathLoss holds the LOS/NLOS/outage model (defaults to 28 GHz NYC).
	PathLoss channel.PathLossParams
	// Seed drives all randomness.
	Seed int64
}

func (c CellSearchConfig) withDefaults() CellSearchConfig {
	c.Link = c.Link.withDefaults()
	if c.NumBS == 0 {
		c.NumBS = 3
	}
	if c.Radius == 0 {
		c.Radius = 200
	}
	if c.MinDistance == 0 {
		c.MinDistance = 10
	}
	if c.BudgetPerBS == 0 {
		c.BudgetPerBS = 64
	}
	if c.Budget == (channel.LinkBudget{}) {
		c.Budget = channel.LinkBudget{TXPowerDBm: 30, BandwidthHz: 1e9, NoiseFigureDB: 7}
	}
	if c.PathLoss == (channel.PathLossParams{}) {
		c.PathLoss = channel.DefaultPathLoss28()
	}
	return c
}

// BSOutcome records the mobile's view of one candidate base station.
type BSOutcome struct {
	// Index identifies the BS.
	Index int
	// DistanceM is the BS distance in meters.
	DistanceM float64
	// State is the macroscopic link state drawn from the path loss model.
	State channel.LinkState
	// GammaDB is the pre-beamforming SNR after path loss (−Inf in
	// outage).
	GammaDB float64
	// MeasuredSNRDB is the measured SNR (dB) of the best pair found
	// during alignment (−Inf if unreachable).
	MeasuredSNRDB float64
	// TrueSNRDB is the ground-truth SNR (dB) of that pair.
	TrueSNRDB float64
	// SlotsSpent counts the measurement slots spent on this BS.
	SlotsSpent int
}

// CellSearchResult is the outcome of one directional cell search.
type CellSearchResult struct {
	// PerBS holds each candidate's outcome.
	PerBS []BSOutcome
	// Associated is the index of the chosen BS, or -1 if every candidate
	// was in outage (initial access failed).
	Associated int
	// AssociatedSNRDB is the true post-beamforming SNR at the chosen BS.
	AssociatedSNRDB float64
	// TotalSlots is the total search duration in measurement slots.
	TotalSlots int
	// FoundBestBS reports whether the mobile associated with the BS
	// offering the genuinely highest optimal SNR among reachable ones.
	FoundBestBS bool
}

// RunCellSearch executes one directional cell search.
func RunCellSearch(cfg CellSearchConfig) (CellSearchResult, error) {
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	placeSrc := root.Split("placement")
	tx, rx, _, _ := cfg.Link.books()

	result := CellSearchResult{Associated: -1}
	bestMeasured := math.Inf(-1)
	bestOptimal := math.Inf(-1)
	bestOptimalIdx := -1

	for b := 0; b < cfg.NumBS; b++ {
		// Uniform placement over the disc between MinDistance and Radius.
		d := math.Sqrt(placeSrc.Uniform(cfg.MinDistance*cfg.MinDistance/(cfg.Radius*cfg.Radius), 1)) * cfg.Radius
		state := cfg.PathLoss.DrawState(placeSrc, d)
		out := BSOutcome{
			Index:         b,
			DistanceM:     d,
			State:         state,
			GammaDB:       math.Inf(-1),
			MeasuredSNRDB: math.Inf(-1),
			TrueSNRDB:     math.Inf(-1),
		}
		if state == channel.StateOutage {
			result.PerBS = append(result.PerBS, out)
			continue
		}
		pl := cfg.PathLoss.PathLossDB(placeSrc, d, state)
		gamma := cfg.Budget.SNRLinear(pl)
		if gamma <= 0 {
			out.State = channel.StateOutage
			result.PerBS = append(result.PerBS, out)
			continue
		}
		out.GammaDB = channel.LinearToDB(gamma)

		ch, err := cfg.Link.newChannel(root.SplitIndexed("channel", b), tx, rx)
		if err != nil {
			return CellSearchResult{}, fmt.Errorf("mac: cell search BS %d: %w", b, err)
		}
		tr, _, err := alignOnce(context.Background(), cfg.Link, ch, gamma,
			root.SplitIndexed("noise", b), root.SplitIndexed("strategy", b), cfg.BudgetPerBS)
		if err != nil {
			return CellSearchResult{}, fmt.Errorf("mac: cell search BS %d: %w", b, err)
		}
		out.SlotsSpent = len(tr.LossDB)
		out.TrueSNRDB = channel.LinearToDB(tr.BestTrueSNR)
		// The mobile ranks base stations by what it measured, not by the
		// ground truth it cannot see.
		out.MeasuredSNRDB = channel.LinearToDB(tr.BestMeasuredSNR)
		result.PerBS = append(result.PerBS, out)
		result.TotalSlots += out.SlotsSpent

		if tr.BestMeasuredSNR > bestMeasured {
			bestMeasured = tr.BestMeasuredSNR
			result.Associated = b
			result.AssociatedSNRDB = out.TrueSNRDB
		}
		if tr.OptSNR > bestOptimal {
			bestOptimal = tr.OptSNR
			bestOptimalIdx = b
		}
	}
	result.FoundBestBS = result.Associated >= 0 && result.Associated == bestOptimalIdx
	return result, nil
}
