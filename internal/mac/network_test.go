package mac

import (
	"math"
	"testing"
)

func tinyNetwork() NetworkConfig {
	return NetworkConfig{
		Link:            smallLink(),
		NumUEs:          3,
		Superframes:     4,
		TrainSlotsPerUE: 16,
		DataSlots:       90,
		Seed:            1,
	}
}

func TestRunNetworkBasics(t *testing.T) {
	stats, err := RunNetwork(tinyNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerUE) != 3 {
		t.Fatalf("PerUE = %d", len(stats.PerUE))
	}
	if stats.Efficiency <= 0 || stats.Efficiency > 1 {
		t.Errorf("efficiency = %g", stats.Efficiency)
	}
	if stats.Fairness <= 0 || stats.Fairness > 1+1e-12 {
		t.Errorf("fairness = %g", stats.Fairness)
	}
	var sum float64
	totalSlots := 0
	for _, ue := range stats.PerUE {
		if ue.Bits < 0 {
			t.Errorf("UE %d negative throughput", ue.UE)
		}
		if ue.MeanLossDB < 0 {
			t.Errorf("UE %d negative loss", ue.UE)
		}
		sum += ue.Bits
		totalSlots += ue.SlotsServed
	}
	if math.Abs(sum-stats.SumBits) > 1e-9 {
		t.Errorf("SumBits %g != Σ per-UE %g", stats.SumBits, sum)
	}
	if want := 4 * 90; totalSlots != want {
		t.Errorf("served %d data slots, want %d", totalSlots, want)
	}
}

func TestRunNetworkRoundRobinIsFair(t *testing.T) {
	cfg := tinyNetwork()
	cfg.Scheduler = "round-robin"
	stats, err := RunNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Equal slot shares: every UE serves the same count (±rounding).
	min, max := stats.PerUE[0].SlotsServed, stats.PerUE[0].SlotsServed
	for _, ue := range stats.PerUE[1:] {
		if ue.SlotsServed < min {
			min = ue.SlotsServed
		}
		if ue.SlotsServed > max {
			max = ue.SlotsServed
		}
	}
	if max-min > cfg.Superframes {
		t.Errorf("round-robin slot spread %d..%d too wide", min, max)
	}
}

func TestRunNetworkMaxRateConcentrates(t *testing.T) {
	cfg := tinyNetwork()
	cfg.Scheduler = "max-rate"
	stats, err := RunNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All data slots of each frame go to one user; fairness must be
	// below round-robin's.
	rrCfg := tinyNetwork()
	rrCfg.Scheduler = "round-robin"
	rr, err := RunNetwork(rrCfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fairness > rr.Fairness+1e-9 {
		t.Errorf("max-rate fairness %g not below round-robin %g", stats.Fairness, rr.Fairness)
	}
	total := 0
	for _, ue := range stats.PerUE {
		total += ue.SlotsServed
	}
	if want := cfg.Superframes * cfg.DataSlots; total != want {
		t.Errorf("served %d slots, want %d", total, want)
	}
}

func TestRunNetworkMaxRateSumThroughputAtLeastRoundRobin(t *testing.T) {
	// Giving every slot to the best user cannot reduce cell sum
	// throughput relative to an equal split of the same slots.
	mr := tinyNetwork()
	mr.Scheduler = "max-rate"
	a, err := RunNetwork(mr)
	if err != nil {
		t.Fatal(err)
	}
	rr := tinyNetwork()
	rr.Scheduler = "round-robin"
	b, err := RunNetwork(rr)
	if err != nil {
		t.Fatal(err)
	}
	if a.SumBits+1e-9 < b.SumBits {
		t.Errorf("max-rate sum %g below round-robin %g", a.SumBits, b.SumBits)
	}
}

func TestRunNetworkRejectsUnknownScheduler(t *testing.T) {
	cfg := tinyNetwork()
	cfg.Scheduler = "lottery"
	if _, err := RunNetwork(cfg); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestRunNetworkDeterministic(t *testing.T) {
	a, err := RunNetwork(tinyNetwork())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNetwork(tinyNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if a.SumBits != b.SumBits || a.Fairness != b.Fairness {
		t.Error("same seed produced different network results")
	}
}

func TestRunNetworkMoreUsersMoreOverhead(t *testing.T) {
	// With fixed data slots, doubling the user count doubles training
	// overhead, so efficiency must not improve.
	small := tinyNetwork()
	small.NumUEs = 2
	big := tinyNetwork()
	big.NumUEs = 6
	a, err := RunNetwork(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNetwork(big)
	if err != nil {
		t.Fatal(err)
	}
	if b.Efficiency > a.Efficiency+0.1 {
		t.Errorf("6-UE efficiency %g implausibly above 2-UE %g", b.Efficiency, a.Efficiency)
	}
}
