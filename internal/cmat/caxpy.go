package cmat

// caxpyIntoGo is the portable reference for the GEMM inner-loop kernel
// dst[j] += a·x[j]. It is the exact expression Go's complex128 multiply
// lowers to — (aRe·xRe − aIm·xIm, aRe·xIm + aIm·xRe) added
// componentwise — so vectorizing over the real/imaginary lanes (not
// over j) preserves each dst[j]'s accumulation order exactly: one term
// per call, components summed independently, ascending-j iteration
// untouched.
func caxpyIntoGo(dst, x []complex128, a complex128) {
	aRe, aIm := real(a), imag(a)
	_ = dst[:len(x)]
	for j, xv := range x {
		xRe, xIm := real(xv), imag(xv)
		d := dst[j]
		dst[j] = complex(real(d)+(aRe*xRe-aIm*xIm), imag(d)+(aRe*xIm+aIm*xRe))
	}
}
