//go:build amd64 && !purego

package cmat

// SSE2 kernel for the fused Jacobi rotation sweep (jacobi_amd64.s).
// SSE2 is part of the amd64 baseline, so no feature detection is
// needed. The packed ops are IEEE-exact per lane and amd64 Go never
// auto-fuses multiply-adds, so the kernel is bitwise identical to the
// portable Go form in jacobi.go — pinned by
// TestJacobiApplyMatchesGoBitwise.

//go:noescape
func jacobiApply(wd, vd []complex128, p, q, n int, coef *jacobiCoefs)
