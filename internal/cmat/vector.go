package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Vector is a dense complex column vector.
type Vector []complex128

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("cmat: negative vector length %d", n))
	}
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w. Panics if lengths differ.
func (v Vector) Add(w Vector) Vector {
	checkSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. Panics if lengths differ.
func (v Vector) Sub(w Vector) Vector {
	checkSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v.
func (v Vector) Scale(a complex128) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// Dot returns the Hermitian inner product <v, w> = vᴴw.
// Panics if lengths differ.
func (v Vector) Dot(w Vector) complex128 {
	checkSameLen(v, w)
	var s complex128
	for i := range v {
		s += cmplx.Conj(v[i]) * w[i]
	}
	return s
}

// Norm returns the Euclidean norm ‖v‖₂.
func (v Vector) Norm() float64 {
	var s float64
	for i := range v {
		re, im := real(v[i]), imag(v[i])
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// Normalize returns v/‖v‖₂. A zero vector is returned unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v.Clone()
	}
	return v.Scale(complex(1/n, 0))
}

// AddScaledInPlace adds alpha*w to v in place. Panics if lengths
// differ. The allocation-free counterpart of v.Add(w.Scale(alpha)).
func (v Vector) AddScaledInPlace(alpha complex128, w Vector) {
	checkSameLen(v, w)
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Zero sets every entry of v to zero in place.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Conj returns the element-wise complex conjugate of v.
func (v Vector) Conj() Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = cmplx.Conj(v[i])
	}
	return out
}

// Outer returns the rank-one matrix v wᴴ.
func (v Vector) Outer(w Vector) *Matrix {
	m := New(len(v), len(w))
	for i := range v {
		for j := range w {
			m.Set(i, j, v[i]*cmplx.Conj(w[j]))
		}
	}
	return m
}

// MaxAbsIndex returns the index of the entry with the largest modulus,
// or -1 for an empty vector.
func (v Vector) MaxAbsIndex() int {
	best, idx := -1.0, -1
	for i := range v {
		if a := cmplx.Abs(v[i]); a > best {
			best, idx = a, i
		}
	}
	return idx
}

// ApproxEqual reports whether v and w have the same length and all
// entries within tol of each other in modulus.
func (v Vector) ApproxEqual(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if cmplx.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

func checkSameLen(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("cmat: vector length mismatch %d vs %d", len(v), len(w)))
	}
}
