package cmat

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestLUSolveRandomSystems(t *testing.T) {
	r := rand.New(rand.NewSource(80))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(12)
		a := randMat(r, n, n).Add(Identity(n).Scale(2))
		want := randVec(r, n)
		f, err := LU(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Solve(a.MulVec(want))
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(want, 1e-8*(1+want.Norm())) {
			t.Fatalf("n=%d: LU solve failed", n)
		}
	}
}

func TestLUSolveNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row exchange.
	a := FromRows([][]complex128{
		{0, 1},
		{1, 1},
	})
	f, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{2 + 1i, -3}
	got, err := f.Solve(a.MulVec(want))
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-12) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLUSingular(t *testing.T) {
	if _, err := LU(New(3, 3)); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	// Rank-1 matrix.
	v := Vector{1, 2, 3}
	if _, err := LU(v.Outer(v)); !errors.Is(err, ErrSingular) {
		t.Errorf("rank-1: err = %v, want ErrSingular", err)
	}
}

func TestLUSolveRHSLengthMismatch(t *testing.T) {
	f, err := LU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(Vector{1}); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestDetKnownValues(t *testing.T) {
	tests := []struct {
		name string
		m    *Matrix
		want complex128
	}{
		{"identity", Identity(4), 1},
		{"diag", Diag([]complex128{2, 3i, -1}), 2 * 3i * -1},
		{"swap rows", FromRows([][]complex128{{0, 1}, {1, 0}}), -1},
		{"singular", New(2, 2), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Det(tt.m); cmplx.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Det = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDetMultiplicative(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	a := randMat(r, 5, 5)
	b := randMat(r, 5, 5)
	left := Det(a.Mul(b))
	right := Det(a) * Det(b)
	if cmplx.Abs(left-right) > 1e-8*(1+cmplx.Abs(left)) {
		t.Errorf("det(AB)=%v, det(A)det(B)=%v", left, right)
	}
}

func TestDetMatchesEigenvaluesForHermitian(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	h := randHermitian(r, 6)
	e, err := EigHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	prod := 1.0
	for _, v := range e.Values {
		prod *= v
	}
	if got := Det(h); math.Abs(real(got)-prod) > 1e-8*(1+math.Abs(prod)) || math.Abs(imag(got)) > 1e-8*(1+math.Abs(prod)) {
		t.Errorf("Det = %v, eigenvalue product = %g", got, prod)
	}
}

func TestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	a := randMat(r, 6, 6).Add(Identity(6).Scale(3))
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).ApproxEqual(Identity(6), 1e-9) {
		t.Error("A·A⁻¹ != I")
	}
	if !inv.Mul(a).ApproxEqual(Identity(6), 1e-9) {
		t.Error("A⁻¹·A != I")
	}
}

func TestInverseSingular(t *testing.T) {
	if _, err := Inverse(New(2, 2)); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestInverseMatchesSolve(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	a := randMat(r, 5, 5).Add(Identity(5).Scale(2))
	b := randVec(r, 5)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	x1 := inv.MulVec(b)
	x2, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x1.ApproxEqual(x2, 1e-8*(1+x2.Norm())) {
		t.Error("inverse-based solve disagrees with QR solve")
	}
}
