package cmat

// jacobiCoefs carries the real-expanded coefficients of one complex
// Jacobi rotation into the fused sweep kernel. The row/column-mirror
// update uses a = s·e^{iφ}, b = c·e^{iφ}; the eigenvector update uses
// the conjugate phase: a' = s·e^{−iφ}, b' = c·e^{−iφ}. One struct
// pointer keeps the kernel ABI to a single argument.
type jacobiCoefs struct {
	c, s       float64
	spRe, spIm float64 // s·e^{iφ}
	cpRe, cpIm float64 // c·e^{iφ}
	scRe, scIm float64 // s·e^{−iφ}
	ccRe, ccIm float64 // c·e^{−iφ}
}

// jacobiApplyGo is the portable fused rotation kernel and the reference
// semantics for the assembly version: the assembly must produce
// bitwise-identical results for all finite inputs (its SIMD form
// computes x − y as x + (−y) and negation as a sign-bit flip, both
// IEEE-exact identities).
//
// The row pass rewrites the pivot-row pair (w rows p and q) for every
// column k ∉ {p, q} and mirrors the conjugates into the pivot columns
// at wd[k·n+p], wd[k·n+q] — the mirror stores land in rows k ∉ {p, q},
// never at an entry a later iteration reads, so the per-k store order
// is free of cross-iteration aliasing. The v pass applies the rotation
// to the eigenvector accumulator, which is stored TRANSPOSED (row r of
// vd is eigenvector r), so it walks the two contiguous rows p and q.
func jacobiApplyGo(wd, vd []complex128, p, q, n int, coef *jacobiCoefs) {
	c, s := coef.c, coef.s
	spRe, spIm := coef.spRe, coef.spIm
	cpRe, cpIm := coef.cpRe, coef.cpIm
	rowP := wd[p*n : p*n+n : p*n+n]
	rowQ := wd[q*n : q*n+n : q*n+n]
	kp, kq := p, q
	for k := 0; k < n; k++ {
		if k != p && k != q {
			wpk, wqk := rowP[k], rowQ[k]
			wpRe, wpIm := real(wpk), imag(wpk)
			wqRe, wqIm := real(wqk), imag(wqk)
			bpRe := c*wpRe - (spRe*wqRe - spIm*wqIm)
			bpIm := c*wpIm - (spRe*wqIm + spIm*wqRe)
			bqRe := s*wpRe + (cpRe*wqRe - cpIm*wqIm)
			bqIm := s*wpIm + (cpRe*wqIm + cpIm*wqRe)
			rowP[k] = complex(bpRe, bpIm)
			rowQ[k] = complex(bqRe, bqIm)
			wd[kp] = complex(bpRe, -bpIm)
			wd[kq] = complex(bqRe, -bqIm)
		}
		kp += n
		kq += n
	}

	scRe, scIm := coef.scRe, coef.scIm
	ccRe, ccIm := coef.ccRe, coef.ccIm
	up := vd[p*n : p*n+n : p*n+n]
	uq := vd[q*n : q*n+n : q*n+n]
	for k := 0; k < n; k++ {
		vkp, vkq := up[k], uq[k]
		vpRe, vpIm := real(vkp), imag(vkp)
		vqRe, vqIm := real(vkq), imag(vkq)
		up[k] = complex(c*vpRe-(scRe*vqRe-scIm*vqIm), c*vpIm-(scRe*vqIm+scIm*vqRe))
		uq[k] = complex(s*vpRe+(ccRe*vqRe-ccIm*vqIm), s*vpIm+(ccRe*vqIm+ccIm*vqRe))
	}
}
