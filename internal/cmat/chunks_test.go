package cmat

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// Adversarial (rows, workers) pairs for the chunking property tests:
// rows slightly above workers is where the old ceil-div split collapsed
// to half-idle fan-outs (33 rows / 32 procs → 2-row chunks, 17 workers).
func chunkCases() [][2]int {
	cases := [][2]int{
		{0, 1}, {1, 1}, {1, 8}, {2, 8},
		{32, 32}, {33, 32}, {34, 32}, {47, 32}, {63, 32}, {64, 32}, {65, 32},
		{33, 16}, {31, 32}, {1000, 7}, {1000, 32}, {97, 96}, {129, 128},
		{56, 8}, {64, 8}, {100, 3},
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		rows := rng.Intn(512)
		workers := 1 + rng.Intn(128)
		cases = append(cases, [2]int{rows, workers})
	}
	return cases
}

// TestRowChunksBalancedDisjointCover checks the three properties the
// GEMM fan-out depends on: chunks exactly tile [0, rows) with no
// overlap (the bitwise contract), no chunk is empty, and chunk sizes
// differ by at most one row (the rebalance fix).
func TestRowChunksBalancedDisjointCover(t *testing.T) {
	for _, tc := range chunkCases() {
		rows, workers := tc[0], tc[1]
		chunks := rowChunks(rows, workers)
		if rows == 0 {
			if len(chunks) != 0 {
				t.Fatalf("rowChunks(%d, %d): want no chunks, got %v", rows, workers, chunks)
			}
			continue
		}
		want := workers
		if want > rows {
			want = rows
		}
		if len(chunks) != want {
			t.Fatalf("rowChunks(%d, %d): got %d chunks, want %d", rows, workers, len(chunks), want)
		}
		next := 0
		minSize, maxSize := rows+1, 0
		for _, ch := range chunks {
			lo, hi := ch[0], ch[1]
			if lo != next {
				t.Fatalf("rowChunks(%d, %d): chunk starts at %d, want %d (gap or overlap)", rows, workers, lo, next)
			}
			size := hi - lo
			if size < 1 {
				t.Fatalf("rowChunks(%d, %d): empty chunk [%d,%d)", rows, workers, lo, hi)
			}
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			next = hi
		}
		if next != rows {
			t.Fatalf("rowChunks(%d, %d): chunks end at %d, want %d", rows, workers, next, rows)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("rowChunks(%d, %d): chunk sizes range %d..%d, want spread ≤ 1", rows, workers, minSize, maxSize)
		}
	}
}

// TestParallelRowsCoversEveryRowOnce drives the real fan-out under a
// forced GOMAXPROCS and checks every row is visited exactly once —
// the disjointness that makes parallel GEMM results bitwise identical
// to serial ones.
func TestParallelRowsCoversEveryRowOnce(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(32))
	for _, rows := range []int{1, 2, 31, 32, 33, 47, 64, 65, 97, 1000} {
		var mu sync.Mutex
		visits := make([]int, rows)
		parallelRows(rows, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				visits[i]++
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("rows=%d: row %d visited %d times, want exactly once", rows, i, v)
			}
		}
	}
}
