//go:build !purego

#include "textflag.h"

// SSE2 paired diagonal-weighted Hermitian dot:
//   s0 = Σ_j d[j]·(a[j]·conj(b0[j])),  s1 = Σ_j d[j]·(a[j]·conj(b1[j]))
// Same bitwise contract as the other kernels in this package: per-lane
// IEEE ops matching the Go expression in cdot.go exactly. conj is a
// sign flip of the imaginary lane; each complex multiply follows the
// (xRe·yRe − xIm·yIm, xRe·yIm + xIm·yRe) lowering with the subtraction
// rewritten as x + (−y) via a sign-flip mask; each sum accumulates in
// ascending j into one packed [re, im] register per output entry.

DATA cdsignlow<>+0(SB)/8, $0x8000000000000000
DATA cdsignlow<>+8(SB)/8, $0x0000000000000000
GLOBL cdsignlow<>(SB), RODATA|NOPTR, $16

DATA cdsignhigh<>+0(SB)/8, $0x0000000000000000
DATA cdsignhigh<>+8(SB)/8, $0x8000000000000000
GLOBL cdsignhigh<>(SB), RODATA|NOPTR, $16

// func cdotDiagHerm2(a, d, b0, b1 []complex128) (s0, s1 complex128)
TEXT ·cdotDiagHerm2(SB), NOSPLIT, $0-128
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ d_base+24(FP), BX
	MOVQ b0_base+48(FP), R8
	MOVQ b1_base+72(FP), R9
	MOVUPD cdsignhigh<>(SB), X8
	MOVUPD cdsignlow<>(SB), X15
	XORPS X6, X6           // s0
	XORPS X7, X7           // s1

	TESTQ CX, CX
	JZ    done

loop:
	MOVUPD (SI), X0        // av
	MOVAPD X0, X1
	UNPCKLPD X1, X1        // [aRe, aRe]
	UNPCKHPD X0, X0        // [aIm, aIm]
	MOVUPD (BX), X2        // dv
	MOVAPD X2, X3
	UNPCKLPD X3, X3        // [dRe, dRe]
	UNPCKHPD X2, X2        // [dIm, dIm]

	// t = av·conj(b0[j])
	MOVUPD (R8), X4
	XORPD  X8, X4          // conj: [bRe, −bIm]
	MOVAPD X4, X5
	SHUFPD $1, X5, X5      // [−bIm, bRe]
	MULPD  X1, X4          // [aRe·bRe, aRe·(−bIm)]
	MULPD  X0, X5          // [aIm·(−bIm), aIm·bRe]
	XORPD  X15, X5
	ADDPD  X5, X4          // t
	// term = dv·t
	MOVAPD X4, X5
	SHUFPD $1, X5, X5      // [tIm, tRe]
	MULPD  X3, X4          // [dRe·tRe, dRe·tIm]
	MULPD  X2, X5          // [dIm·tIm, dIm·tRe]
	XORPD  X15, X5
	ADDPD  X5, X4          // term
	ADDPD  X4, X6          // s0 += term

	// t = av·conj(b1[j])
	MOVUPD (R9), X4
	XORPD  X8, X4
	MOVAPD X4, X5
	SHUFPD $1, X5, X5
	MULPD  X1, X4
	MULPD  X0, X5
	XORPD  X15, X5
	ADDPD  X5, X4
	// term = dv·t
	MOVAPD X4, X5
	SHUFPD $1, X5, X5
	MULPD  X3, X4
	MULPD  X2, X5
	XORPD  X15, X5
	ADDPD  X5, X4
	ADDPD  X4, X7          // s1 += term

	ADDQ $16, SI
	ADDQ $16, BX
	ADDQ $16, R8
	ADDQ $16, R9
	DECQ CX
	JNZ  loop

done:
	MOVUPD X6, s0_real+96(FP)
	MOVUPD X7, s1_real+112(FP)
	RET
