package cmat

import (
	"math/rand"
	"runtime"
	"testing"
)

// mulRef is the scalar reference MulInto replaces: one MulVecInto per
// column of b. The batched kernel's contract is bitwise equality with
// this path, not approximate equality.
func mulRef(a, b *Matrix) *Matrix {
	out := New(a.Rows(), b.Cols())
	col := NewVector(b.Rows())
	res := NewVector(a.Rows())
	for j := 0; j < b.Cols(); j++ {
		for i := 0; i < b.Rows(); i++ {
			col[i] = b.At(i, j)
		}
		a.MulVecInto(res, col)
		for i := 0; i < a.Rows(); i++ {
			out.Set(i, j, res[i])
		}
	}
	return out
}

func requireBitEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: entry (%d,%d) = %v, want %v (bitwise)", name, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulIntoMatchesMulVecBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, shape := range [][3]int{{1, 1, 1}, {3, 5, 4}, {17, 9, 31}, {56, 56, 56}, {129, 64, 200}} {
		a := randMat(r, shape[0], shape[1])
		b := randMat(r, shape[1], shape[2])
		got := New(shape[0], shape[2])
		got.MulInto(a, b)
		requireBitEqual(t, "MulInto", got, mulRef(a, b))
	}
}

func TestMulIntoParallelMatchesSerialBitwise(t *testing.T) {
	// Force the goroutine fan-out even on single-CPU runners: the
	// parallel path must be bitwise identical to the serial one for any
	// worker count.
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	r := rand.New(rand.NewSource(12))
	// 48·48·64 multiply-adds exceed gemmParallelOps with ≥32 rows, so
	// this shape takes the parallel path.
	a := randMat(r, 48, 48)
	b := randMat(r, 48, 64)
	if !gemmParallel(48, 48*48*64) {
		t.Fatal("fixture does not reach the parallel path; thresholds changed?")
	}
	got := New(48, 64)
	got.MulInto(a, b)
	requireBitEqual(t, "parallel MulInto", got, mulRef(a, b))

	herm := New(48, 48)
	herm.MulHermInto(a, a)
	ref := New(48, 48)
	mulHermIntoRows(ref, a, a, 0, 48)
	requireBitEqual(t, "parallel MulHermInto", herm, ref)
}

func TestMulHermIntoMatchesDotReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randMat(r, 7, 11)
	b := randMat(r, 5, 11)
	got := New(7, 5)
	got.MulHermInto(a, b)
	// Reference: dst[i][k] = <conj-free row dot> = conj(b-row) paired
	// with a-row in ascending j — exactly Vector.Dot(brow, arow)
	// conjugate-swapped, written as an explicit ordered loop.
	want := New(7, 5)
	for i := 0; i < 7; i++ {
		for k := 0; k < 5; k++ {
			var s complex128
			for j := 0; j < 11; j++ {
				s += a.At(i, j) * conj(b.At(k, j))
			}
			want.Set(i, k, s)
		}
	}
	requireBitEqual(t, "MulHermInto", got, want)
}

func TestMulDiagHermIntoMatchesRankOneAccumulation(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	const dim, l = 9, 13
	vm := randMat(r, dim, l)
	d := make([]complex128, l)
	for j := range d {
		d[j] = complex(r.NormFloat64(), 0)
	}
	got := New(dim, dim)
	got.MulDiagHermInto(vm, d, vm)

	// Reference: the outer-product accumulation the solver used before
	// batching — ref += d[j]·(col_j·col_jᴴ) in ascending j, with the
	// same d·(a·conj(b)) grouping.
	ref := New(dim, dim)
	outer := New(dim, dim)
	for j := 0; j < l; j++ {
		c := vm.Col(j)
		outer.SetOuter(c, c)
		ref.AddInPlace(d[j], outer)
	}
	requireBitEqual(t, "MulDiagHermInto", got, ref)
}

func TestColumnDotsIntoMatchesVectorDot(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	a := randMat(r, 12, 7)
	b := randMat(r, 12, 7)
	got := make([]complex128, 7)
	ColumnDotsInto(got, a, b)
	for j := 0; j < 7; j++ {
		if want := a.Col(j).Dot(b.Col(j)); got[j] != want {
			t.Fatalf("column %d: %v, want %v (bitwise)", j, got[j], want)
		}
	}
}

func TestGEMMShapeAndAliasPanics(t *testing.T) {
	a := New(3, 4)
	b := New(4, 2)
	dst := New(3, 2)
	cases := []struct {
		name string
		f    func()
	}{
		{"MulInto shape", func() { New(2, 2).MulInto(a, b) }},
		{"MulInto alias", func() { sq := New(3, 3); sq.MulInto(sq, New(3, 3)) }},
		{"MulHermInto shape", func() { dst.MulHermInto(a, New(5, 9)) }},
		{"MulHermInto dst alias", func() { sq := New(3, 3); sq.MulHermInto(sq, sq) }},
		{"MulDiagHermInto diag len", func() { New(3, 3).MulDiagHermInto(a, make([]complex128, 2), a) }},
		{"ColumnDotsInto short dst", func() { ColumnDotsInto(make([]complex128, 3), a, a) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
