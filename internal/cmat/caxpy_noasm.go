//go:build !amd64 || purego

package cmat

func caxpyInto(dst, x []complex128, a complex128) {
	caxpyIntoGo(dst, x, a)
}
