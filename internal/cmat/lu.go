package cmat

import (
	"fmt"
	"math/cmplx"
)

// LUResult holds an LU factorization with partial pivoting:
// P·A = L·U, where P is the permutation encoded by Perm (row i of P·A is
// row Perm[i] of A), L is unit lower triangular and U upper triangular.
// L and U are packed into a single matrix (L's unit diagonal implicit).
type LUResult struct {
	lu   *Matrix
	Perm []int
	// swaps counts row exchanges (determinant sign).
	swaps int
}

// LU computes the factorization. Returns ErrSingular (wrapped) when a
// pivot column is exactly zero. Panics if a is not square.
func LU(a *Matrix) (*LUResult, error) {
	a.checkSquare()
	n := a.Rows()
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	res := &LUResult{lu: lu, Perm: perm}

	for col := 0; col < n; col++ {
		// Partial pivot: largest modulus at or below the diagonal.
		piv, pivAbs := col, cmplx.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := cmplx.Abs(lu.At(r, col)); a > pivAbs {
				piv, pivAbs = r, a
			}
		}
		if pivAbs == 0 {
			return nil, fmt.Errorf("lu: zero pivot in column %d: %w", col, ErrSingular)
		}
		if piv != col {
			for j := 0; j < n; j++ {
				v := lu.At(col, j)
				lu.Set(col, j, lu.At(piv, j))
				lu.Set(piv, j, v)
			}
			perm[col], perm[piv] = perm[piv], perm[col]
			res.swaps++
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := lu.At(r, col) * inv
			lu.Set(r, col, factor)
			for j := col + 1; j < n; j++ {
				lu.Set(r, j, lu.At(r, j)-factor*lu.At(col, j))
			}
		}
	}
	return res, nil
}

// Solve solves A·x = b using the factorization.
func (f *LUResult) Solve(b Vector) (Vector, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("lu: rhs length %d, want %d", len(b), n)
	}
	// Forward substitution on L·y = P·b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[f.Perm[i]]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * y[j]
		}
		y[i] = s
	}
	// Back substitution on U·x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		piv := f.lu.At(i, i)
		if piv == 0 {
			return nil, fmt.Errorf("lu: zero diagonal at %d: %w", i, ErrSingular)
		}
		x[i] = s / piv
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LUResult) Det() complex128 {
	det := complex(1, 0)
	if f.swaps%2 == 1 {
		det = -det
	}
	n := f.lu.Rows()
	for i := 0; i < n; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// Det returns the determinant of a square matrix (0 for singular input).
func Det(a *Matrix) complex128 {
	f, err := LU(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// Inverse returns A⁻¹ via LU factorization. Returns ErrSingular
// (wrapped) for singular input. Panics if a is not square.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	out := New(n, n)
	e := make(Vector, n)
	for col := 0; col < n; col++ {
		for i := range e {
			e[i] = 0
		}
		e[col] = 1
		x, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		out.SetCol(col, x)
	}
	return out, nil
}
