//go:build amd64 && !purego

package cmat

// SSE2 kernel for the paired diagonal-weighted Hermitian dot
// (cdot_amd64.s). Bitwise identical to cdotDiagHerm2Go — pinned by
// TestCdotDiagHerm2MatchesGoBitwise.

//go:noescape
func cdotDiagHerm2(a, d, b0, b1 []complex128) (s0, s1 complex128)
