package cmat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) Hermitian positive definite.
var ErrNotPositiveDefinite = errors.New("cmat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with a = L·Lᴴ for a
// Hermitian positive-definite matrix. Only the lower triangle of a is
// read. Panics if a is not square.
func Cholesky(a *Matrix) (*Matrix, error) {
	a.checkSquare()
	n := a.Rows()
	l := New(n, n)
	for j := 0; j < n; j++ {
		// Diagonal entry.
		d := real(a.At(j, j))
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= real(v)*real(v) + imag(v)*imag(v)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("cholesky pivot %d is %g: %w", j, d, ErrNotPositiveDefinite)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, complex(ljj, 0))
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * cmplx.Conj(l.At(j, k))
			}
			l.Set(i, j, s/complex(ljj, 0))
		}
	}
	return l, nil
}

// PSDSqrt returns a Hermitian square root S of a PSD matrix a, i.e.
// a = S·Sᴴ, computed via the eigendecomposition with negative rounding
// noise clamped to zero. Unlike Cholesky it accepts singular input, which
// is the common case for low-rank spatial covariance matrices.
func PSDSqrt(a *Matrix) (*Matrix, error) {
	e, err := EigHermitian(a)
	if err != nil {
		return nil, fmt.Errorf("psd square root: %w", err)
	}
	n := a.Rows()
	out := New(n, n)
	for j := 0; j < n; j++ {
		lambda := e.Values[j]
		if lambda <= 0 {
			continue
		}
		v := e.Vectors.Col(j)
		out.AddInPlace(complex(math.Sqrt(lambda), 0), v.Outer(v))
	}
	return out, nil
}

// ProjectPSD returns the projection of the Hermitian matrix a onto the
// PSD cone: negative eigenvalues are clamped to zero.
func ProjectPSD(a *Matrix) (*Matrix, error) {
	e, err := EigHermitian(a)
	if err != nil {
		return nil, fmt.Errorf("psd projection: %w", err)
	}
	n := a.Rows()
	out := New(n, n)
	for j := 0; j < n; j++ {
		if e.Values[j] <= 0 {
			continue
		}
		v := e.Vectors.Col(j)
		out.AddInPlace(complex(e.Values[j], 0), v.Outer(v))
	}
	return out, nil
}

// EigenSoftThresholdPSD applies the proximal operator of tau·‖·‖_* over
// the PSD cone to a Hermitian matrix: eigenvalues are shifted down by tau
// and clamped at zero. For PSD-constrained nuclear-norm problems this is
// the exact prox (eigenvalues play the role of singular values).
func EigenSoftThresholdPSD(a *Matrix, tau float64) (*Matrix, error) {
	out := New(a.Rows(), a.Cols())
	if err := EigenSoftThresholdPSDInto(NewEigenWorkspace(a.Rows()), out, a, tau); err != nil {
		return nil, err
	}
	return out, nil
}

// EigenSoftThresholdPSDInto is the allocation-free variant of
// EigenSoftThresholdPSD: the eigendecomposition runs in ews and the
// thresholded reconstruction overwrites dst. dst may alias a (the
// decomposition copies a into workspace storage first) but must not
// alias ews buffers. Identical numerics to EigenSoftThresholdPSD.
func EigenSoftThresholdPSDInto(ews *EigenWorkspace, dst, a *Matrix, tau float64) error {
	e, err := ews.EigHermitian(a)
	if err != nil {
		return fmt.Errorf("eigen soft-threshold: %w", err)
	}
	n := a.Rows()
	dst.Zero()
	for j := 0; j < n; j++ {
		lambda := e.Values[j] - tau
		if lambda <= 0 {
			continue
		}
		dst.AddScaledOuterCol(complex(lambda, 0), e.Vectors, j)
	}
	return nil
}
