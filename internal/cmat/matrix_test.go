package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randMat(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, complex(r.NormFloat64(), r.NormFloat64()))
		}
	}
	return m
}

// randHermitian returns a random Hermitian matrix.
func randHermitian(r *rand.Rand, n int) *Matrix {
	return randMat(r, n, n).Hermitianize()
}

// randPSD returns a random Hermitian PSD matrix of the given rank.
func randPSD(r *rand.Rand, n, rank int) *Matrix {
	m := New(n, n)
	for k := 0; k < rank; k++ {
		v := randVec(r, n)
		m.AddInPlace(1, v.Outer(v))
	}
	return m.Hermitianize()
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randMat(r, 4, 6)
	if got := Identity(4).Mul(a); !got.ApproxEqual(a, 1e-14) {
		t.Error("I·A != A")
	}
	if got := a.Mul(Identity(6)); !got.ApproxEqual(a, 1e-14) {
		t.Error("A·I != A")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Errorf("shape = %dx%d", m.Rows(), m.Cols())
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

func TestMulAssociativity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b, c := randMat(r, 3, 5), randMat(r, 5, 4), randMat(r, 4, 2)
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	if !left.ApproxEqual(right, 1e-11) {
		t.Error("(AB)C != A(BC)")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randMat(r, 5, 3)
	v := randVec(r, 3)
	col := New(3, 1)
	col.SetCol(0, v)
	want := a.Mul(col).Col(0)
	if got := a.MulVec(v); !got.ApproxEqual(want, 1e-12) {
		t.Error("MulVec disagrees with Mul on a column matrix")
	}
}

func TestConjTransposeInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randMat(r, 4, 7)
	if !a.ConjTranspose().ConjTranspose().ApproxEqual(a, 0) {
		t.Error("(Aᴴ)ᴴ != A")
	}
}

func TestConjTransposeProduct(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a, b := randMat(r, 3, 4), randMat(r, 4, 5)
	left := a.Mul(b).ConjTranspose()
	right := b.ConjTranspose().Mul(a.ConjTranspose())
	if !left.ApproxEqual(right, 1e-12) {
		t.Error("(AB)ᴴ != BᴴAᴴ")
	}
}

func TestTraceCyclic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a, b := randMat(r, 4, 6), randMat(r, 6, 4)
	tr1 := a.Mul(b).Trace()
	tr2 := b.Mul(a).Trace()
	if cmplx.Abs(tr1-tr2) > 1e-11 {
		t.Errorf("tr(AB)=%v, tr(BA)=%v", tr1, tr2)
	}
}

func TestHermitianizeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randMat(r, 6, 6)
	h := a.Hermitianize()
	if !h.IsHermitian(1e-14) {
		t.Error("Hermitianize result is not Hermitian")
	}
	// Hermitianize must be idempotent.
	if !h.Hermitianize().ApproxEqual(h, 1e-14) {
		t.Error("Hermitianize is not idempotent")
	}
	// A Hermitian matrix must be a fixed point.
	if !h.Hermitianize().ApproxEqual(h, 0) {
		t.Error("Hermitian input was modified")
	}
}

func TestQuadFormRealForHermitian(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 25; i++ {
		n := 1 + r.Intn(8)
		h := randHermitian(r, n)
		v := randVec(r, n)
		got := h.QuadForm(v)
		// Cross-check against explicit vᴴ·(H·v).
		want := real(v.Dot(h.MulVec(v)))
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("QuadForm = %g, want %g", got, want)
		}
	}
}

func TestQuadFormPSDNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 25; i++ {
		n := 2 + r.Intn(8)
		p := randPSD(r, n, 1+r.Intn(n))
		v := randVec(r, n)
		if q := p.QuadForm(v); q < -1e-9 {
			t.Fatalf("PSD quadratic form is negative: %g", q)
		}
	}
}

func TestFrobeniusNormUnitaryInvariance(t *testing.T) {
	// The Frobenius norm must be invariant under multiplication by the
	// eigenvector matrix of a Hermitian matrix (which is unitary).
	r := rand.New(rand.NewSource(11))
	h := randHermitian(r, 6)
	e, err := EigHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	a := randMat(r, 6, 6)
	if got, want := e.Vectors.Mul(a).FrobeniusNorm(), a.FrobeniusNorm(); math.Abs(got-want) > 1e-10 {
		t.Errorf("‖UA‖=%g, ‖A‖=%g", got, want)
	}
}

func TestRowColRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	a := randMat(r, 5, 4)
	for j := 0; j < 4; j++ {
		col := a.Col(j)
		b := a.Clone()
		b.SetCol(j, col)
		if !b.ApproxEqual(a, 0) {
			t.Fatalf("SetCol(Col) changed the matrix at column %d", j)
		}
	}
	for i := 0; i < 5; i++ {
		row := a.Row(i)
		for j := 0; j < 4; j++ {
			if row[j] != a.At(i, j) {
				t.Fatalf("Row(%d)[%d] mismatch", i, j)
			}
		}
	}
}

func TestAddInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randMat(r, 3, 3)
	b := randMat(r, 3, 3)
	want := a.Add(b.Scale(2 + 1i))
	got := a.Clone()
	got.AddInPlace(2+1i, b)
	if !got.ApproxEqual(want, 1e-14) {
		t.Error("AddInPlace disagrees with Add/Scale")
	}
}

func TestOffDiagNorm(t *testing.T) {
	m := FromRows([][]complex128{{5, 3}, {4i, -2}})
	want := math.Sqrt(9 + 16)
	if got := m.OffDiagNorm(); math.Abs(got-want) > 1e-14 {
		t.Errorf("OffDiagNorm = %g, want %g", got, want)
	}
	if d := Diag([]complex128{1, 2, 3}).OffDiagNorm(); d != 0 {
		t.Errorf("diagonal matrix OffDiagNorm = %g, want 0", d)
	}
}

func TestShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Add mismatch", func() { a.Add(b) }},
		{"Mul mismatch", func() { a.Mul(a) }},
		{"Trace non-square", func() { a.Trace() }},
		{"At out of range", func() { a.At(2, 0) }},
		{"Set out of range", func() { a.Set(0, 3, 1) }},
		{"MulVec mismatch", func() { a.MulVec(NewVector(2)) }},
		{"QuadForm non-square", func() { a.QuadForm(NewVector(3)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestDiagAndTrace(t *testing.T) {
	d := Diag([]complex128{1, 2i, -3})
	if got := d.Trace(); got != complex(-2, 2) {
		t.Errorf("Trace = %v, want (-2+2i)", got)
	}
}

func TestMatrixStringSmoke(t *testing.T) {
	s := FromRows([][]complex128{{1, 2}}).String()
	if s == "" {
		t.Error("String returned empty output")
	}
}
