//go:build !amd64 || purego

package cmat

func cdotDiagHerm2(a, d, b0, b1 []complex128) (s0, s1 complex128) {
	return cdotDiagHerm2Go(a, d, b0, b1)
}
