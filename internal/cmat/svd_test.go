package cmat

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func svdReconstruct(r SVDResult, rows, cols int) *Matrix {
	out := New(rows, cols)
	for j := range r.S {
		if r.S[j] == 0 {
			continue
		}
		out.AddInPlace(complex(r.S[j], 0), r.U.Col(j).Outer(r.V.Col(j)))
	}
	return out
}

func TestSVDReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	shapes := [][2]int{{1, 1}, {3, 3}, {5, 2}, {2, 5}, {8, 8}, {10, 4}, {4, 10}}
	for _, sh := range shapes {
		a := randMat(r, sh[0], sh[1])
		res, err := SVD(a)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		rec := svdReconstruct(res, sh[0], sh[1])
		if !rec.ApproxEqual(a, 1e-9*(1+a.FrobeniusNorm())) {
			t.Errorf("shape %v: UΣVᴴ != A (err %g)", sh, rec.Sub(a).FrobeniusNorm())
		}
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	a := randMat(r, 7, 4)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if g := res.U.ConjTranspose().Mul(res.U); !g.ApproxEqual(Identity(4), 1e-9) {
		t.Error("UᴴU != I")
	}
	if g := res.V.ConjTranspose().Mul(res.V); !g.ApproxEqual(Identity(4), 1e-9) {
		t.Error("VᴴV != I")
	}
}

func TestSVDSingularValuesSortedNonNegative(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	a := randMat(r, 6, 9)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(res.S))) {
		t.Errorf("singular values not descending: %v", res.S)
	}
	for _, s := range res.S {
		if s < 0 {
			t.Errorf("negative singular value %g", s)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: exactly one nonzero singular value.
	u := Vector{1, 2i, -1}.Normalize()
	v := Vector{1, 1}.Normalize()
	a := u.Outer(v).Scale(3)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S[0]-3) > 1e-10 {
		t.Errorf("σ₀ = %g, want 3", res.S[0])
	}
	if res.S[1] > 1e-9 {
		t.Errorf("σ₁ = %g, want ~0", res.S[1])
	}
	// Even for zero singular values the factors must stay orthonormal.
	if g := res.U.ConjTranspose().Mul(res.U); !g.ApproxEqual(Identity(2), 1e-9) {
		t.Error("UᴴU != I on rank-deficient input")
	}
	rec := svdReconstruct(res, 3, 2)
	if !rec.ApproxEqual(a, 1e-9) {
		t.Error("rank-1 reconstruction failed")
	}
}

func TestSVDFrobeniusIdentity(t *testing.T) {
	// ‖A‖_F² = Σ σᵢ².
	r := rand.New(rand.NewSource(33))
	a := randMat(r, 5, 8)
	res, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	var s2 float64
	for _, s := range res.S {
		s2 += s * s
	}
	f := a.FrobeniusNorm()
	if math.Abs(s2-f*f) > 1e-8*(1+f*f) {
		t.Errorf("Σσ² = %g, ‖A‖² = %g", s2, f*f)
	}
}

func TestNuclearNormPSDEqualsTrace(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	p := randPSD(r, 6, 2)
	nn, err := NuclearNorm(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr := real(p.Trace()); math.Abs(nn-tr) > 1e-8*(1+tr) {
		t.Errorf("nuclear norm %g != trace %g for PSD", nn, tr)
	}
}

func TestRank(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	tests := []struct {
		name string
		m    *Matrix
		want int
	}{
		{"zero", New(4, 4), 0},
		{"identity", Identity(5), 5},
		{"rank2 psd", randPSD(r, 8, 2), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Rank(tt.m, 1e-9)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Rank = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestSingularValueThreshold(t *testing.T) {
	// Diagonal test case with known singular values 5, 2, 0.5.
	a := Diag([]complex128{5, 2, 0.5})
	got, err := SingularValueThreshold(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Diag([]complex128{4, 1, 0})
	if !got.ApproxEqual(want, 1e-10) {
		t.Errorf("SVT = %v, want %v", got, want)
	}
}

func TestSingularValueThresholdShrinksNuclearNorm(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	a := randMat(r, 6, 5)
	before, err := NuclearNorm(a)
	if err != nil {
		t.Fatal(err)
	}
	th, err := SingularValueThreshold(a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NuclearNorm(th)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Errorf("SVT increased nuclear norm: %g -> %g", before, after)
	}
}

func TestSVDEmpty(t *testing.T) {
	res, err := SVD(New(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) != 0 {
		t.Errorf("expected no singular values, got %v", res.S)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for i := 0; i < 10; i++ {
		n := 1 + r.Intn(10)
		// Guaranteed positive-definite: full-rank PSD + I.
		p := randPSD(r, n, n).Add(Identity(n))
		l, err := Cholesky(p)
		if err != nil {
			t.Fatal(err)
		}
		if !l.Mul(l.ConjTranspose()).ApproxEqual(p, 1e-9*(1+p.FrobeniusNorm())) {
			t.Fatal("LLᴴ != A")
		}
		// L must be lower triangular.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if l.At(a, b) != 0 {
					t.Fatalf("L[%d][%d] = %v above diagonal", a, b, l.At(a, b))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := Diag([]complex128{1, -1})
	if _, err := Cholesky(m); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestPSDSqrtRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(38))
	// Works on singular PSD matrices, unlike Cholesky.
	p := randPSD(r, 7, 2)
	s, err := PSDSqrt(p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Mul(s.ConjTranspose()).ApproxEqual(p, 1e-9*(1+p.FrobeniusNorm())) {
		t.Error("SSᴴ != A")
	}
	if !s.IsHermitian(1e-10) {
		t.Error("PSDSqrt result is not Hermitian")
	}
}

func TestProjectPSD(t *testing.T) {
	m := Diag([]complex128{2, -3, 0.5})
	p, err := ProjectPSD(m)
	if err != nil {
		t.Fatal(err)
	}
	want := Diag([]complex128{2, 0, 0.5})
	if !p.ApproxEqual(want, 1e-10) {
		t.Errorf("ProjectPSD = %v, want %v", p, want)
	}
}

func TestProjectPSDIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(39))
	h := randHermitian(r, 8)
	p1, err := ProjectPSD(h)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProjectPSD(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.ApproxEqual(p1, 1e-8*(1+p1.FrobeniusNorm())) {
		t.Error("projection is not idempotent")
	}
}

func TestEigenSoftThresholdPSD(t *testing.T) {
	m := Diag([]complex128{5, 1, 0.2})
	got, err := EigenSoftThresholdPSD(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := Diag([]complex128{4.5, 0.5, 0})
	if !got.ApproxEqual(want, 1e-10) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEigenSoftThresholdReducesRank(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	// Dominant rank-1 component plus small noise; thresholding should
	// recover something close to rank 1.
	v := randVec(r, 8).Normalize()
	q := v.Outer(v).Scale(10).Add(randPSD(r, 8, 8).Scale(complex(0.01, 0))).Hermitianize()
	th, err := EigenSoftThresholdPSD(q, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rank, err := Rank(th, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 {
		t.Errorf("thresholded rank = %d, want 1", rank)
	}
}
