package cmat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular system.
var ErrSingular = errors.New("cmat: singular system")

// QRResult holds a thin QR factorization A = Q·R with Q (Rows×Cols)
// having orthonormal columns and R (Cols×Cols) upper triangular.
type QRResult struct {
	Q *Matrix
	R *Matrix
}

// QR computes a thin QR factorization by modified Gram-Schmidt with
// one round of reorthogonalization, which is numerically adequate for
// the moderately sized, well-scaled systems in this library.
// Requires Rows ≥ Cols.
func QR(a *Matrix) (QRResult, error) {
	rows, cols := a.Rows(), a.Cols()
	if rows < cols {
		return QRResult{}, fmt.Errorf("qr: need rows ≥ cols, got %dx%d", rows, cols)
	}
	q := a.Clone()
	r := New(cols, cols)
	for j := 0; j < cols; j++ {
		v := q.Col(j)
		// Two passes of Gram-Schmidt against previous columns.
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				qk := q.Col(k)
				proj := qk.Dot(v)
				r.AddAt(k, j, proj)
				v = v.Sub(qk.Scale(proj))
			}
		}
		nrm := v.Norm()
		r.Set(j, j, complex(nrm, 0))
		if nrm < 1e-300 {
			// Rank-deficient column: use any orthogonal completion so Q
			// stays orthonormal; R records the zero pivot.
			var basis []Vector
			for k := 0; k < j; k++ {
				basis = append(basis, q.Col(k))
			}
			v = orthoComplete(rows, basis)
		} else {
			v = v.Scale(complex(1/nrm, 0))
		}
		q.SetCol(j, v)
	}
	return QRResult{Q: q, R: r}, nil
}

// Solve solves the square linear system a·x = b via QR factorization.
// Returns ErrSingular (wrapped) when a pivot is numerically zero.
func Solve(a *Matrix, b Vector) (Vector, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("solve: matrix %dx%d is not square", a.Rows(), a.Cols())
	}
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("solve: dimension mismatch %dx%d vs rhs %d", a.Rows(), a.Cols(), len(b))
	}
	return SolveLS(a, b)
}

// SolveLS solves the least-squares problem min ‖a·x − b‖₂ for a with
// Rows ≥ Cols via thin QR: x = R⁻¹ Qᴴ b.
func SolveLS(a *Matrix, b Vector) (Vector, error) {
	if a.Rows() != len(b) {
		return nil, fmt.Errorf("solvels: dimension mismatch %dx%d vs rhs %d", a.Rows(), a.Cols(), len(b))
	}
	qr, err := QR(a)
	if err != nil {
		return nil, err
	}
	cols := a.Cols()
	// y = Qᴴ b
	y := qr.Q.ConjTranspose().MulVec(b)
	// Back substitution on R x = y.
	x := make(Vector, cols)
	for i := cols - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < cols; j++ {
			s -= qr.R.At(i, j) * x[j]
		}
		piv := qr.R.At(i, i)
		if cmplx.Abs(piv) < 1e-300 {
			return nil, fmt.Errorf("solvels: zero pivot at %d: %w", i, ErrSingular)
		}
		x[i] = s / piv
	}
	return x, nil
}

// InverseHermitianPSD inverts a Hermitian positive-definite matrix via
// its eigendecomposition, regularizing eigenvalues below eps to eps (a
// pseudo-inverse with a floor). Useful for whitening with estimated,
// possibly rank-deficient covariances.
func InverseHermitianPSD(a *Matrix, eps float64) (*Matrix, error) {
	e, err := EigHermitian(a)
	if err != nil {
		return nil, fmt.Errorf("psd inverse: %w", err)
	}
	n := a.Rows()
	out := New(n, n)
	for j := 0; j < n; j++ {
		lambda := math.Max(e.Values[j], eps)
		if lambda <= 0 {
			return nil, fmt.Errorf("psd inverse: eigenvalue %g with eps %g: %w", e.Values[j], eps, ErrSingular)
		}
		v := e.Vectors.Col(j)
		out.AddInPlace(complex(1/lambda, 0), v.Outer(v))
	}
	return out, nil
}
