//go:build !purego

#include "textflag.h"

// SSE2 fused Jacobi rotation kernel. Bitwise contract: every lane op
// below is an IEEE-754 operation on the same operands, in the same
// order, as the portable Go kernel jacobiApplyGo in jacobi.go. The only
// rewrites are the two exact identities
//   x - y == x + (-y)
//   -x    == x XOR signbit
// so the results match the Go form bit for bit for all finite inputs
// (and all infinities; only NaN payload propagation may differ, and a
// NaN working matrix never converges, so no NaN reaches accepted
// output). SSE2 only — MOVDDUP/ADDSUBPD are SSE3 and are avoided.
// Both passes are unrolled 2×: the unroll only re-orders address
// arithmetic, never the per-element FP sequence.

// signlow flips the sign of the low lane (real part): used to turn
// packed [aIm·wqIm, aIm·wqRe] into [-aIm·wqIm, aIm·wqRe] so one ADDPD
// yields (aRe·wqRe − aIm·wqIm, aRe·wqIm + aIm·wqRe).
DATA signlow<>+0(SB)/8, $0x8000000000000000
DATA signlow<>+8(SB)/8, $0x0000000000000000
GLOBL signlow<>(SB), RODATA|NOPTR, $16

// signhigh flips the sign of the high lane (imaginary part): complex
// conjugation for the column mirror stores.
DATA signhigh<>+0(SB)/8, $0x0000000000000000
DATA signhigh<>+8(SB)/8, $0x8000000000000000
GLOBL signhigh<>(SB), RODATA|NOPTR, $16

// ROWFP computes bp/bq for one rotation element: on entry X0 = w[p][k],
// X1 = w[q][k]; on exit X5 = bp, X0 = bq (coefficient registers
// X9-X15 per the broadcast block below).
#define ROWFP \
	MOVAPD X1, X2          \ // wq copy
	SHUFPD $1, X2, X2      \ // [wqIm, wqRe]
	MOVAPD X1, X3          \
	MULPD  X11, X3         \ // [spRe·wqRe, spRe·wqIm]
	MOVAPD X2, X4          \
	MULPD  X12, X4         \ // [spIm·wqIm, spIm·wqRe]
	XORPD  X15, X4         \ // [-spIm·wqIm, spIm·wqRe]
	ADDPD  X4, X3          \ // sp·wq
	MOVAPD X0, X5          \
	MULPD  X9, X5          \ // c·wp
	SUBPD  X3, X5          \ // bp
	MULPD  X13, X1         \ // [cpRe·wqRe, cpRe·wqIm]
	MULPD  X14, X2         \ // [cpIm·wqIm, cpIm·wqRe]
	XORPD  X15, X2         \
	ADDPD  X2, X1          \ // cp·wq
	MULPD  X10, X0         \ // s·wp
	ADDPD  X1, X0            // bq

// VFP computes the eigenvector update for one element: on entry X0 =
// up[k], X1 = uq[k]; on exit X5 = up', X0 = uq' (v-pass coefficients
// in X11-X14).
#define VFP \
	MOVAPD X1, X2          \
	SHUFPD $1, X2, X2      \
	MOVAPD X1, X3          \
	MULPD  X11, X3         \
	MOVAPD X2, X4          \
	MULPD  X12, X4         \
	XORPD  X15, X4         \
	ADDPD  X4, X3          \ // sc·vq
	MOVAPD X0, X5          \
	MULPD  X9, X5          \
	SUBPD  X3, X5          \ // up' = c·vp − sc·vq
	MULPD  X13, X1         \
	MULPD  X14, X2         \
	XORPD  X15, X2         \
	ADDPD  X2, X1          \ // cc·vq
	MULPD  X10, X0         \
	ADDPD  X1, X0            // uq' = s·vp + cc·vq

// func jacobiApply(wd, vd []complex128, p, q, n int, coef *jacobiCoefs)
//
// Row pass, k in [0, n) \ {p, q}:
//   bp = c·w[p][k] − (spRe + i·spIm)·w[q][k]
//   bq = s·w[p][k] + (cpRe + i·cpIm)·w[q][k]
//   w[p][k] = bp; w[q][k] = bq; w[k][p] = conj(bp); w[k][q] = conj(bq)
// V pass over the transposed accumulator rows up = vd[p·n:], uq = vd[q·n:]:
//   up[k]' = c·up[k] − (scRe + i·scIm)·uq[k]
//   uq[k]' = s·up[k] + (ccRe + i·ccIm)·uq[k]
TEXT ·jacobiApply(SB), NOSPLIT, $0-80
	MOVQ wd_base+0(FP), BX
	MOVQ p+48(FP), R11
	MOVQ q+56(FP), R12
	MOVQ n+64(FP), R13
	MOVQ coef+72(FP), AX

	// Row-base pointers: SI = &w[p][0], DI = &w[q][0].
	MOVQ R11, R10
	IMULQ R13, R10
	SHLQ $4, R10
	LEAQ (BX)(R10*1), SI
	MOVQ R12, R10
	IMULQ R13, R10
	SHLQ $4, R10
	LEAQ (BX)(R10*1), DI
	// Mirror-column pointers: R8 = &w[0][p], R9 = &w[0][q].
	MOVQ R11, R10
	SHLQ $4, R10
	LEAQ (BX)(R10*1), R8
	MOVQ R12, R10
	SHLQ $4, R10
	LEAQ (BX)(R10*1), R9
	// DX = row stride in bytes; loop indices scaled ×2 so (base)(CX*8)
	// addresses complex128 element k.
	MOVQ R13, DX
	SHLQ $4, DX
	SHLQ $1, R11
	SHLQ $1, R12
	MOVQ R13, R14
	SHLQ $1, R14
	// Mirror-store prefetch distance: 8 rows ahead. The mirror walk
	// touches a fresh cache line every iteration (stride = one matrix
	// row), which is what binds this loop once w outgrows L1; PREFETCHT0
	// never faults, so running past the array end is safe.
	MOVQ DX, R15
	SHLQ $3, R15

	// Broadcast row-pass coefficients.
	MOVSD 0(AX), X9        // c
	UNPCKLPD X9, X9
	MOVSD 8(AX), X10       // s
	UNPCKLPD X10, X10
	MOVSD 16(AX), X11      // spRe
	UNPCKLPD X11, X11
	MOVSD 24(AX), X12      // spIm
	UNPCKLPD X12, X12
	MOVSD 32(AX), X13      // cpRe
	UNPCKLPD X13, X13
	MOVSD 40(AX), X14      // cpIm
	UNPCKLPD X14, X14
	MOVUPD signlow<>(SB), X15
	MOVUPD signhigh<>(SB), X8

	// AX, BX are free until the v pass: AX = pair-loop bound, BX = 2·DX.
	LEAQ -2(R14), AX
	LEAQ (DX)(DX*1), BX

	XORQ CX, CX
	CMPQ CX, AX
	JGE  rowtail
rowpair:
	// Element 0: index CX, mirrors (R8), (R9).
	CMPQ CX, R11
	JEQ  rskip0
	CMPQ CX, R12
	JEQ  rskip0
	MOVUPD (SI)(CX*8), X0
	MOVUPD (DI)(CX*8), X1
	ROWFP
	MOVUPD X5, (SI)(CX*8)
	MOVUPD X0, (DI)(CX*8)
	XORPD  X8, X5
	XORPD  X8, X0
	MOVUPD X5, (R8)
	MOVUPD X0, (R9)
	PREFETCHT0 (R8)(R15*1)
	PREFETCHT0 (R9)(R15*1)
rskip0:
	// Element 1: index CX+2, mirrors (R8)(DX*1), (R9)(DX*1).
	LEAQ 2(CX), R10
	CMPQ R10, R11
	JEQ  rskip1
	CMPQ R10, R12
	JEQ  rskip1
	MOVUPD 16(SI)(CX*8), X0
	MOVUPD 16(DI)(CX*8), X1
	ROWFP
	MOVUPD X5, 16(SI)(CX*8)
	MOVUPD X0, 16(DI)(CX*8)
	XORPD  X8, X5
	XORPD  X8, X0
	MOVUPD X5, (R8)(DX*1)
	MOVUPD X0, (R9)(DX*1)
	LEAQ (R8)(R15*1), R10
	PREFETCHT0 (R10)(DX*1)
	LEAQ (R9)(R15*1), R10
	PREFETCHT0 (R10)(DX*1)
rskip1:
	ADDQ BX, R8
	ADDQ BX, R9
	ADDQ $4, CX
	CMPQ CX, AX
	JLT  rowpair

rowtail:
	CMPQ CX, R14
	JGE  rowdone
	CMPQ CX, R11
	JEQ  rowdone
	CMPQ CX, R12
	JEQ  rowdone
	MOVUPD (SI)(CX*8), X0
	MOVUPD (DI)(CX*8), X1
	ROWFP
	MOVUPD X5, (SI)(CX*8)
	MOVUPD X0, (DI)(CX*8)
	XORPD  X8, X5
	XORPD  X8, X0
	MOVUPD X5, (R8)
	MOVUPD X0, (R9)
rowdone:

	// V pass: two contiguous rows of the transposed accumulator.
	MOVQ vd_base+24(FP), BX
	MOVQ coef+72(FP), AX
	MOVQ R11, R10          // p·2
	IMULQ R13, R10
	SHLQ $3, R10           // p·n·16
	LEAQ (BX)(R10*1), SI
	MOVQ R12, R10          // q·2
	IMULQ R13, R10
	SHLQ $3, R10
	LEAQ (BX)(R10*1), DI

	// Broadcast v-pass coefficients (c, s, masks persist).
	MOVSD 48(AX), X11      // scRe
	UNPCKLPD X11, X11
	MOVSD 56(AX), X12      // scIm
	UNPCKLPD X12, X12
	MOVSD 64(AX), X13      // ccRe
	UNPCKLPD X13, X13
	MOVSD 72(AX), X14      // ccIm
	UNPCKLPD X14, X14

	LEAQ -2(R14), AX
	XORQ CX, CX
	CMPQ CX, AX
	JGE  vtail
vpair:
	MOVUPD (SI)(CX*8), X0
	MOVUPD (DI)(CX*8), X1
	VFP
	MOVUPD X5, (SI)(CX*8)
	MOVUPD X0, (DI)(CX*8)

	MOVUPD 16(SI)(CX*8), X0
	MOVUPD 16(DI)(CX*8), X1
	VFP
	MOVUPD X5, 16(SI)(CX*8)
	MOVUPD X0, 16(DI)(CX*8)

	ADDQ $4, CX
	CMPQ CX, AX
	JLT  vpair
vtail:
	CMPQ CX, R14
	JGE  vdone
	MOVUPD (SI)(CX*8), X0
	MOVUPD (DI)(CX*8), X1
	VFP
	MOVUPD X5, (SI)(CX*8)
	MOVUPD X0, (DI)(CX*8)
vdone:
	RET
