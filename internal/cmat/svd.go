package cmat

import (
	"fmt"
	"math"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᴴ.
// U is Rows×k and V is Cols×k with k = min(Rows, Cols); S is sorted in
// descending order.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVD computes the thin singular value decomposition of a general complex
// matrix via the Hermitian eigendecomposition of its Gram matrix. For the
// wide case (rows < cols) the Gram matrix A·Aᴴ is used so the eigenproblem
// stays at min-dimension size.
//
// Singular vectors for numerically zero singular values are completed by
// Gram-Schmidt against the computed ones so U and V always have k
// orthonormal columns.
func SVD(a *Matrix) (SVDResult, error) {
	rows, cols := a.Rows(), a.Cols()
	if rows == 0 || cols == 0 {
		return SVDResult{U: New(rows, 0), S: nil, V: New(cols, 0)}, nil
	}
	if rows < cols {
		// A = U S Vᴴ  ⇔  Aᴴ = V S Uᴴ.
		r, err := SVD(a.ConjTranspose())
		if err != nil {
			return SVDResult{}, err
		}
		return SVDResult{U: r.V, S: r.S, V: r.U}, nil
	}

	gram := a.ConjTranspose().Mul(a) // cols×cols, Hermitian PSD
	eig, err := EigHermitian(gram)
	if err != nil {
		return SVDResult{}, fmt.Errorf("svd of %dx%d matrix: %w", rows, cols, err)
	}

	k := cols
	s := make([]float64, k)
	for i, lambda := range eig.Values {
		if lambda < 0 {
			lambda = 0 // rounding may drive tiny eigenvalues negative
		}
		s[i] = math.Sqrt(lambda)
	}

	v := eig.Vectors
	u := New(rows, k)
	// Numerical rank cutoff relative to the largest singular value.
	cutoff := 0.0
	if k > 0 {
		cutoff = s[0] * 1e-12
	}
	var filled []Vector
	for j := 0; j < k; j++ {
		if s[j] > cutoff && s[j] > 0 {
			col := a.MulVec(v.Col(j)).Scale(complex(1/s[j], 0))
			u.SetCol(j, col)
			filled = append(filled, col)
		}
	}
	// Complete the null-space columns of U orthonormally.
	for j := 0; j < k; j++ {
		if s[j] > cutoff && s[j] > 0 {
			continue
		}
		col := orthoComplete(rows, filled)
		u.SetCol(j, col)
		filled = append(filled, col)
	}
	return SVDResult{U: u, S: s, V: v}, nil
}

// orthoComplete returns a unit vector of length n orthogonal to every
// vector in basis, found by Gram-Schmidt over deterministic trial vectors.
func orthoComplete(n int, basis []Vector) Vector {
	for trial := 0; trial < n+len(basis)+1; trial++ {
		cand := make(Vector, n)
		// Deterministic trial vectors: standard basis first, then a
		// dense fallback pattern.
		if trial < n {
			cand[trial] = 1
		} else {
			for i := range cand {
				cand[i] = complex(math.Cos(float64((trial+1)*(i+1))), math.Sin(float64(trial+i)))
			}
		}
		for _, b := range basis {
			cand = cand.Sub(b.Scale(b.Dot(cand)))
		}
		if cand.Norm() > 1e-6 {
			return cand.Normalize()
		}
	}
	// Unreachable for len(basis) < n; return a valid unit vector anyway.
	out := make(Vector, n)
	if n > 0 {
		out[0] = 1
	}
	return out
}

// NuclearNorm returns the sum of singular values of a.
func NuclearNorm(a *Matrix) (float64, error) {
	r, err := SVD(a)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range r.S {
		s += v
	}
	return s, nil
}

// Rank returns the number of singular values above tol·σ_max. Hermitian
// input is detected and handled through the eigendecomposition directly,
// which preserves full precision; general matrices go through the
// Gram-based SVD, whose small singular values are only accurate to about
// the square root of machine precision — use tol ≥ 1e-7 there.
func Rank(a *Matrix, tol float64) (int, error) {
	var sv []float64
	if a.Rows() == a.Cols() && a.IsHermitian(1e-12*math.Max(a.MaxAbs(), 1)) {
		e, err := EigHermitian(a)
		if err != nil {
			return 0, err
		}
		sv = make([]float64, len(e.Values))
		for i, v := range e.Values {
			sv[i] = math.Abs(v)
		}
	} else {
		r, err := SVD(a)
		if err != nil {
			return 0, err
		}
		sv = r.S
	}
	var max float64
	for _, v := range sv {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 0, nil
	}
	cut := tol * max
	n := 0
	for _, v := range sv {
		if v > cut {
			n++
		}
	}
	return n, nil
}

// SingularValueThreshold applies the soft-thresholding operator
// D_tau(A) = U·diag(max(S−tau, 0))·Vᴴ, the proximal operator of the
// nuclear norm. Used by the SVT matrix-completion solver.
func SingularValueThreshold(a *Matrix, tau float64) (*Matrix, error) {
	r, err := SVD(a)
	if err != nil {
		return nil, err
	}
	k := len(r.S)
	out := New(a.Rows(), a.Cols())
	for j := 0; j < k; j++ {
		sv := r.S[j] - tau
		if sv <= 0 {
			continue
		}
		uj, vj := r.U.Col(j), r.V.Col(j)
		out.AddInPlace(complex(sv, 0), uj.Outer(vj))
	}
	return out, nil
}
