package cmat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// ErrNoConvergence is returned when an iterative decomposition fails to
// reach its tolerance within the sweep budget.
var ErrNoConvergence = errors.New("cmat: iteration did not converge")

// Eigen holds the eigendecomposition A = V·diag(Values)·Vᴴ of a Hermitian
// matrix. Values are sorted in descending order; column i of Vectors is
// the unit eigenvector for Values[i].
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Hermitian Jacobi
// converges quadratically; well-conditioned inputs need ~6-10 sweeps even
// at n=256, so 64 sweeps only trips on non-Hermitian garbage input.
const maxJacobiSweeps = 64

// EigHermitian computes the full eigendecomposition of the Hermitian
// matrix a using the cyclic complex Jacobi method. Only the Hermitian
// part of a is used (the input is symmetrized first, which also absorbs
// small rounding asymmetries). Panics if a is not square.
//
// The returned Eigen owns freshly allocated storage. Callers that
// decompose matrices of the same size repeatedly should reuse an
// EigenWorkspace instead.
func EigHermitian(a *Matrix) (Eigen, error) {
	return NewEigenWorkspace(a.Rows()).EigHermitian(a)
}

// EigenWorkspace holds the scratch buffers of a Hermitian Jacobi
// eigendecomposition so repeated decompositions of same-sized matrices
// allocate nothing. It is the allocation-free substrate of the covest
// proximal solver, whose every iteration runs one decomposition.
//
// A workspace is not safe for concurrent use, and the Eigen returned by
// its EigHermitian method aliases workspace storage: it is overwritten
// by the next call. Callers that need the results to outlive the next
// decomposition must copy them out.
type EigenWorkspace struct {
	n          int
	w *Matrix // working copy, reduced to diagonal by rotations
	// v accumulates the rotations TRANSPOSED: row r of v is the
	// (unsorted) eigenvector r. The rotation mixes eigenvector entries
	// pairwise, so in transposed storage the update walks two
	// contiguous rows instead of two stride-n columns — same per-entry
	// arithmetic in the same order (bitwise identical values), but
	// cache-friendly: at n=64 the strided walk hit a 1 KiB stride that
	// collapsed onto four L1 sets. The final permutation copy
	// transposes back into column-eigenvector layout.
	v *Matrix
	vals       []float64
	idx        []int
	sorter     eigenSorter
	sortedVals []float64
	sortedVecs *Matrix
}

// eigenSorter orders the index permutation by descending eigenvalue. It
// implements sort.Interface so the per-decomposition sort allocates
// nothing (sort.Slice would allocate its closure and swapper on every
// call); sort.Sort and sort.Slice share one pdqsort implementation, so
// the permutation — including its treatment of equal eigenvalues — is
// unchanged.
type eigenSorter struct {
	vals []float64
	idx  []int
}

func (s *eigenSorter) Len() int           { return len(s.idx) }
func (s *eigenSorter) Less(i, j int) bool { return s.vals[s.idx[i]] > s.vals[s.idx[j]] }
func (s *eigenSorter) Swap(i, j int)      { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }

// NewEigenWorkspace returns a workspace pre-sized for n×n inputs. The
// workspace transparently resizes if handed a different dimension.
func NewEigenWorkspace(n int) *EigenWorkspace {
	ws := &EigenWorkspace{}
	ws.resize(n)
	return ws
}

func (ws *EigenWorkspace) resize(n int) {
	ws.n = n
	ws.w = New(n, n)
	ws.v = New(n, n)
	ws.vals = make([]float64, n)
	ws.idx = make([]int, n)
	ws.sorter = eigenSorter{vals: ws.vals, idx: ws.idx}
	ws.sortedVals = make([]float64, n)
	ws.sortedVecs = New(n, n)
}

// EigHermitian computes the full eigendecomposition of the Hermitian
// matrix a into the workspace buffers. Identical numerics to the
// package-level EigHermitian; the returned Eigen aliases workspace
// storage and is invalidated by the next call. Panics if a is not
// square.
func (ws *EigenWorkspace) EigHermitian(a *Matrix) (Eigen, error) {
	a.checkSquare()
	n := a.Rows()
	if n != ws.n {
		ws.resize(n)
	}
	w, v := ws.w, ws.v
	w.HermitianizeFrom(a)
	v.SetIdentity()

	if n <= 1 {
		if n == 1 {
			ws.sortedVals[0] = real(w.At(0, 0))
		}
		copyMatrix(ws.sortedVecs, v)
		return Eigen{Values: ws.sortedVals, Vectors: ws.sortedVecs}, nil
	}

	// tol scales with the magnitude of the matrix so near-zero inputs
	// terminate immediately.
	tol := 1e-13 * math.Max(w.FrobeniusNorm(), 1e-300)
	// Rotations with off-diagonal mass below skipBelow cannot push the
	// total off-diagonal norm above tol, so they are safely skipped.
	skipBelow := tol / float64(n*n)
	converged := false
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		if w.OffDiagNorm() <= tol {
			converged = true
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q, skipBelow)
			}
		}
	}
	if !converged && w.OffDiagNorm() > tol {
		return Eigen{}, fmt.Errorf("hermitian eigendecomposition (n=%d): %w", n, ErrNoConvergence)
	}

	vals := ws.vals
	for i := 0; i < n; i++ {
		vals[i] = real(w.At(i, i))
	}
	// Sort eigenpairs descending by eigenvalue.
	idx := ws.idx
	for i := range idx {
		idx[i] = i
	}
	sort.Sort(&ws.sorter)
	sortedVals, sortedVecs := ws.sortedVals, ws.sortedVecs
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		vrow := v.data[oldCol*n : oldCol*n+n]
		for r := 0; r < n; r++ {
			sortedVecs.data[r*n+newCol] = vrow[r]
		}
	}
	return Eigen{Values: sortedVals, Vectors: sortedVecs}, nil
}

func copyMatrix(dst, src *Matrix) {
	copy(dst.data, src.data)
}

// jacobiRotate applies one complex Jacobi rotation annihilating the (p,q)
// entry of the Hermitian working matrix w, accumulating the rotation into
// the eigenvector matrix v.
//
// The rotation is the composition of a phase that makes w[p][q] real and
// a real Givens rotation: with w[p][q] = β·e^{iφ}, τ = (w_qq − w_pp)/(2β),
// t = sign(τ)/(|τ|+√(1+τ²)), c = 1/√(1+t²), s = t·c, the 2×2 block of the
// unitary W is [[c, s],[−s·e^{−iφ}, c·e^{−iφ}]] and w ← Wᴴ·w·W.
func jacobiRotate(w, v *Matrix, p, q int, skipBelow float64) {
	n := w.rows
	wd, vd := w.data, v.data
	apq := wd[p*n+q]
	beta := cmplx.Abs(apq)
	if beta <= skipBelow {
		return
	}
	// e^{iφ}, divided componentwise: the denominator is the real scalar
	// β, so runtime complex division (Smith's algorithm) reduces to two
	// real divides.
	phase := complex(real(apq)/beta, imag(apq)/beta)
	app := real(wd[p*n+p])
	aqq := real(wd[q*n+q])

	tau := (aqq - app) / (2 * beta)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	cc := complex(c, 0)
	ss := complex(s, 0)
	// Column-p multiplier for the q component carries the phase.
	sPhaseConj := ss * cmplx.Conj(phase) // s·e^{−iφ}
	cPhaseConj := cc * cmplx.Conj(phase) // c·e^{−iφ}

	// w ← Wᴴ·w·W. The working matrix is exactly Hermitian throughout
	// (the initial symmetrization pairs entries bitwise and every
	// rotation preserves the pairing), so the updated columns p and q
	// are entrywise conjugates of the updated rows: compute the rows
	// once and mirror them, instead of running the column update as a
	// second full pass. conj(a·b) = conj(a)·conj(b) holds bitwise for
	// IEEE complex arithmetic, so this produces the same values as the
	// two-pass w·W then Wᴴ·w update it replaces.
	sPhase := ss * phase
	cPhase := cc * phase
	rowP := wd[p*n : p*n+n : p*n+n]
	rowQ := wd[q*n : q*n+n : q*n+n]
	// Save the 2x2 pivot block before the row pass overwrites it.
	wpp, wpq := rowP[p], rowP[q]
	wqp, wqq := rowQ[p], rowQ[q]
	// Hot loop: this rotation dominates the cost of every covariance
	// estimation. The multipliers c and s are real, so the complex
	// products cc·wpk and ss·wpk are expanded into their real and
	// imaginary parts with the zero-imaginary cross terms dropped —
	// c·re(w) instead of c·re(w) − 0·im(w) — which halves the multiply
	// count of those products. The row sweep, column mirrors, and the
	// eigenvector update (v ← v·W in transposed storage) all run in one
	// fused kernel call (SSE2 assembly on amd64, portable Go elsewhere
	// — see jacobi.go): one coefficient broadcast per rotation instead
	// of per stretch. Column mirrors land at wd[k·n+p], wd[k·n+q] with
	// k ∉ {p, q}, never at a row entry a later iteration reads, and the
	// v array is disjoint from w, so fusing changes no memory ordering
	// the arithmetic can observe.
	coef := jacobiCoefs{c: c, s: s,
		spRe: real(sPhase), spIm: imag(sPhase),
		cpRe: real(cPhase), cpIm: imag(cPhase),
		scRe: real(sPhaseConj), scIm: imag(sPhaseConj),
		ccRe: real(cPhaseConj), ccIm: imag(cPhaseConj)}
	jacobiApply(wd, vd, p, q, n, &coef)
	// 2x2 pivot block: replicate the two-pass arithmetic exactly
	// ((w·W) restricted to the block, then Wᴴ·(w·W)).
	app2 := cc*wpp - sPhaseConj*wpq
	aqp2 := cc*wqp - sPhaseConj*wqq
	apq2 := ss*wpp + cPhaseConj*wpq
	aqq2 := ss*wqp + cPhaseConj*wqq
	// Clean the annihilated pair and enforce real diagonal to stop
	// rounding drift from accumulating over sweeps.
	rowP[p] = complex(real(cc*app2-sPhase*aqp2), 0)
	rowQ[q] = complex(real(ss*apq2+cPhase*aqq2), 0)
	rowP[q] = 0
	rowQ[p] = 0
}

// TopEigenvector returns the eigenvector associated with the largest
// eigenvalue of the Hermitian matrix a, along with that eigenvalue.
func TopEigenvector(a *Matrix) (Vector, float64, error) {
	e, err := EigHermitian(a)
	if err != nil {
		return nil, 0, err
	}
	if len(e.Values) == 0 {
		return Vector{}, 0, nil
	}
	return e.Vectors.Col(0), e.Values[0], nil
}

// PowerIterationTop approximates the dominant eigenpair of a Hermitian
// PSD matrix with at most iters power iterations starting from v0 (or a
// deterministic dense start when v0 is nil). It is much cheaper than a
// full Jacobi decomposition when only the top direction is needed.
func PowerIterationTop(a *Matrix, v0 Vector, iters int, tol float64) (Vector, float64) {
	a.checkSquare()
	n := a.Rows()
	v := v0
	if len(v) != n || v.Norm() == 0 {
		v = make(Vector, n)
		for i := range v {
			// Deterministic spread-out start vector.
			v[i] = complex(1+float64(i%7)/7, float64(i%3)/3)
		}
	}
	v = v.Normalize()
	lambda := 0.0
	for it := 0; it < iters; it++ {
		w := a.MulVec(v)
		nw := w.Norm()
		if nw == 0 {
			return v, 0
		}
		next := w.Scale(complex(1/nw, 0))
		newLambda := a.QuadForm(next)
		if math.Abs(newLambda-lambda) <= tol*math.Max(1, math.Abs(newLambda)) {
			return next, newLambda
		}
		v, lambda = next, newLambda
	}
	return v, lambda
}
