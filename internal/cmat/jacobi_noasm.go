//go:build !amd64 || purego

package cmat

func jacobiApply(wd, vd []complex128, p, q, n int, coef *jacobiCoefs) {
	jacobiApplyGo(wd, vd, p, q, n, coef)
}
