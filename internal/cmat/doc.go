// Package cmat implements dense complex linear algebra for the beam
// alignment library: vectors, matrices, Hermitian eigendecomposition
// (cyclic Jacobi), singular value decomposition, Cholesky and QR
// factorizations, and the positive-semidefinite-cone operators
// (projection, spectral soft-thresholding) required by the
// nuclear-norm-regularized covariance estimator.
//
// The package is self-contained (standard library only) and tuned for the
// moderate problem sizes of mmWave beam alignment (matrices up to a few
// hundred rows). All algorithms are deterministic.
//
// Conventions:
//   - Matrices are dense, row-major, zero-indexed.
//   - "Hermitian" routines only read the upper triangle unless stated
//     otherwise; callers are expected to hand in numerically Hermitian
//     input (see Hermitianize).
//   - Methods that cannot fail mutate or return values directly; methods
//     with preconditions on shape panic with a descriptive message, since
//     shape mismatches are programmer errors, while numerical failures
//     (e.g. non-positive-definite input to Cholesky) return errors.
package cmat
