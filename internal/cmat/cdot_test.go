package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestCdotDiagHerm2MatchesGoBitwise pins the active cdotDiagHerm2
// kernel (SSE2 assembly on amd64) against the portable Go reference,
// and the Go reference against the literal single-entry expression.
func TestCdotDiagHerm2MatchesGoBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	randVal := func() complex128 {
		scale := math.Pow(10, float64(rng.Intn(40)-20))
		return complex(rng.NormFloat64()*scale, rng.NormFloat64()*scale)
	}
	for _, n := range []int{0, 1, 2, 3, 7, 31, 56, 64} {
		for trial := 0; trial < 20; trial++ {
			a := make([]complex128, n)
			d := make([]complex128, n)
			b0 := make([]complex128, n)
			b1 := make([]complex128, n)
			for i := 0; i < n; i++ {
				a[i], d[i], b0[i], b1[i] = randVal(), randVal(), randVal(), randVal()
			}
			want0, want1 := cdotDiagHerm2Go(a, d, b0, b1)
			// The Go reference must itself match the literal per-entry
			// loop it abbreviates.
			var lit0, lit1 complex128
			for j := range a {
				lit0 += d[j] * (a[j] * cmplx.Conj(b0[j]))
				lit1 += d[j] * (a[j] * cmplx.Conj(b1[j]))
			}
			if !bitEqualComplex(want0, lit0) || !bitEqualComplex(want1, lit1) {
				t.Fatalf("n=%d: Go reference diverges from literal loop", n)
			}
			got0, got1 := cdotDiagHerm2(a, d, b0, b1)
			if !bitEqualComplex(got0, want0) || !bitEqualComplex(got1, want1) {
				t.Fatalf("n=%d trial %d: kernel (%v, %v), Go reference (%v, %v)",
					n, trial, got0, got1, want0, want1)
			}
		}
	}
}

// TestMulDiagHermIntoOddColumns exercises the paired kernel's odd-tail
// path against the pre-pairing reference implementation.
func TestMulDiagHermIntoOddColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {5, 4}, {7, 9}, {8, 8}} {
		rows, inner := dims[0], dims[1]
		a := New(rows, inner)
		b := New(rows, inner)
		d := make([]complex128, inner)
		for i := range a.data {
			a.data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			b.data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for i := range d {
			d[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := New(rows, rows)
		got.MulDiagHermInto(a, d, b)
		want := New(rows, rows)
		for i := 0; i < rows; i++ {
			for k := 0; k < rows; k++ {
				var s complex128
				for j := 0; j < inner; j++ {
					s += d[j] * (a.data[i*inner+j] * cmplx.Conj(b.data[k*inner+j]))
				}
				want.data[i*rows+k] = s
			}
		}
		for i := range got.data {
			if !bitEqualComplex(got.data[i], want.data[i]) {
				t.Fatalf("rows=%d inner=%d: entry %d = %v, want %v", rows, inner, i, got.data[i], want.data[i])
			}
		}
	}
}
