package cmat

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestQRReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	shapes := [][2]int{{1, 1}, {4, 4}, {7, 3}, {10, 10}}
	for _, sh := range shapes {
		a := randMat(r, sh[0], sh[1])
		res, err := QR(a)
		if err != nil {
			t.Fatalf("%v: %v", sh, err)
		}
		if !res.Q.Mul(res.R).ApproxEqual(a, 1e-10*(1+a.FrobeniusNorm())) {
			t.Errorf("shape %v: QR != A", sh)
		}
		if g := res.Q.ConjTranspose().Mul(res.Q); !g.ApproxEqual(Identity(sh[1]), 1e-10) {
			t.Errorf("shape %v: QᴴQ != I", sh)
		}
		// R upper triangular.
		for i := 0; i < sh[1]; i++ {
			for j := 0; j < i; j++ {
				if cmplx.Abs(res.R.At(i, j)) > 1e-12 {
					t.Errorf("shape %v: R[%d][%d] below diagonal nonzero", sh, i, j)
				}
			}
		}
	}
}

func TestQRWideRejected(t *testing.T) {
	if _, err := QR(New(2, 5)); err == nil {
		t.Error("expected error for wide matrix")
	}
}

func TestQRRankDeficientKeepsOrthonormalQ(t *testing.T) {
	// Two identical columns.
	a := New(4, 2)
	v := Vector{1, 2, 3, 4}
	a.SetCol(0, v)
	a.SetCol(1, v)
	res, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if g := res.Q.ConjTranspose().Mul(res.Q); !g.ApproxEqual(Identity(2), 1e-9) {
		t.Error("QᴴQ != I on rank-deficient input")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]complex128{
		{2, 1},
		{1, 3},
	})
	want := Vector{1 + 1i, -2}
	b := a.MulVec(want)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-10) {
		t.Errorf("Solve = %v, want %v", got, want)
	}
}

func TestSolveRandomSystems(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 20; i++ {
		n := 1 + r.Intn(12)
		a := randMat(r, n, n).Add(Identity(n).Scale(3)) // well-conditioned
		want := randVec(r, n)
		got, err := Solve(a, a.MulVec(want))
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(want, 1e-8*(1+want.Norm())) {
			t.Fatalf("n=%d: solve residual too large", n)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := New(2, 2) // zero matrix
	if _, err := Solve(a, Vector{1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(New(2, 3), Vector{1, 1}); err == nil {
		t.Error("expected error for non-square matrix")
	}
	if _, err := Solve(New(2, 2), Vector{1}); err == nil {
		t.Error("expected error for rhs length mismatch")
	}
}

func TestSolveLSOverdetermined(t *testing.T) {
	// Exactly consistent overdetermined system recovers x.
	r := rand.New(rand.NewSource(52))
	a := randMat(r, 9, 4)
	want := randVec(r, 4)
	got, err := SolveLS(a, a.MulVec(want))
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-8*(1+want.Norm())) {
		t.Error("least squares failed on consistent system")
	}
}

func TestSolveLSResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space.
	r := rand.New(rand.NewSource(53))
	a := randMat(r, 8, 3)
	b := randVec(r, 8)
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := b.Sub(a.MulVec(x))
	proj := a.ConjTranspose().MulVec(res)
	if proj.Norm() > 1e-8*(1+b.Norm()) {
		t.Errorf("Aᴴ(b-Ax) norm = %g, want ~0", proj.Norm())
	}
}

func TestInverseHermitianPSD(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	p := randPSD(r, 6, 6).Add(Identity(6)) // positive definite
	inv, err := InverseHermitianPSD(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Mul(inv).ApproxEqual(Identity(6), 1e-8) {
		t.Error("A·A⁻¹ != I")
	}
}

func TestInverseHermitianPSDFloor(t *testing.T) {
	// Singular input with eps floor yields a bounded pseudo-inverse.
	p := Diag([]complex128{2, 0})
	inv, err := InverseHermitianPSD(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := real(inv.At(1, 1)); math.Abs(got-2) > 1e-10 {
		t.Errorf("floored inverse entry = %g, want 2 (=1/eps)", got)
	}
	if got := real(inv.At(0, 0)); math.Abs(got-0.5) > 1e-10 {
		t.Errorf("inverse entry = %g, want 0.5", got)
	}
}
