package cmat

import (
	"fmt"
	"math/cmplx"
	"runtime"
	"sync"
)

// Batched GEMM kernels. Every kernel in this file shares one contract:
// each output entry is a single ordered sum — terms accumulate in
// ascending inner-index order into one scalar — so the results are
// bitwise identical to the per-vector forms they replace (MulVecInto
// followed by Dot, or a sequence of rank-one AddInPlace updates). Cache
// blocking and row parallelism only change which entry is computed
// when, never the accumulation order within an entry, which is what
// lets the solver batch its hot path without perturbing a single bit
// of the figure pipeline.

const (
	// gemmColBlock is the column-tile width: inner loops touch at most
	// this many output (and right-operand) columns at a time so the
	// active tile stays resident in L1 across the whole inner-index
	// sweep.
	gemmColBlock = 128
	// gemmParallelRows is the minimum number of output rows before a
	// kernel considers fanning out across goroutines. 32 rows keeps the
	// solver's steady-state subspace (≈ the observation window, 48–96)
	// and every 64-antenna codebook scoring pass on the parallel path.
	gemmParallelRows = 32
	// gemmParallelOps is the minimum number of multiply-adds before the
	// fan-out pays for the goroutine handoff.
	gemmParallelOps = 1 << 17
)

// gemmParallel reports whether a kernel with the given output rows and
// multiply-add count should fan out across goroutines. Kept separate
// from parallelRows so the serial path can call its row kernel directly
// — building the parallel closure only when it will actually be used
// keeps small GEMMs allocation-free.
func gemmParallel(rows, ops int) bool {
	return rows >= gemmParallelRows && ops >= gemmParallelOps && runtime.GOMAXPROCS(0) >= 2
}

// rowChunks splits [0, rows) into at most workers contiguous chunks
// whose sizes differ by at most one row: the first rows%workers chunks
// carry one extra row. The old ceil-div split degenerated when rows was
// slightly above workers (33 rows / 32 procs → seventeen 2-row chunks,
// nearly half the workers idle); the balanced split keeps every worker
// loaded. Chunks stay contiguous and disjoint, so which chunk a row
// lands in cannot affect the bits that row produces.
func rowChunks(rows, workers int) [][2]int {
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		return nil
	}
	base, rem := rows/workers, rows%workers
	chunks := make([][2]int, workers)
	lo := 0
	for c := range chunks {
		hi := lo + base
		if c < rem {
			hi++
		}
		chunks[c] = [2]int{lo, hi}
		lo = hi
	}
	return chunks
}

// parallelRows splits [0, rows) into contiguous chunks and runs body on
// each concurrently. Output rows are disjoint across chunks, so the
// result is bitwise independent of the worker count. Callers gate on
// gemmParallel and run body(0, rows) inline below the thresholds.
func parallelRows(rows int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	for _, ch := range rowChunks(rows, runtime.GOMAXPROCS(0)) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(ch[0], ch[1])
	}
	wg.Wait()
}

// MulInto writes the product a·b into dst. Panics on shape mismatch or
// when dst aliases a or b. Each dst entry accumulates its terms in
// ascending k order, making the result bitwise identical to calling
// MulVecInto once per column of b; unlike Mul, zero entries of a are
// not skipped, so signed zeros and NaNs propagate exactly as the
// per-column form would.
func (dst *Matrix) MulInto(a, b *Matrix) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("cmat: MulInto shape mismatch %dx%d = %dx%d · %dx%d",
			dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	if dst == a || dst == b {
		panic("cmat: MulInto dst must not alias an operand")
	}
	if gemmParallel(dst.rows, dst.rows*a.cols*b.cols) {
		parallelRows(dst.rows, func(lo, hi int) { mulIntoRows(dst, a, b, lo, hi) })
		return
	}
	mulIntoRows(dst, a, b, 0, dst.rows)
}

func mulIntoRows(dst, a, b *Matrix, lo, hi int) {
	inner, cols := a.cols, b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*inner : (i+1)*inner]
		orow := dst.data[i*cols : (i+1)*cols]
		for j := range orow {
			orow[j] = 0
		}
		for j0 := 0; j0 < cols; j0 += gemmColBlock {
			j1 := j0 + gemmColBlock
			if j1 > cols {
				j1 = cols
			}
			otile := orow[j0:j1]
			for k, av := range arow {
				btile := b.data[k*cols+j0 : k*cols+j1]
				caxpyInto(otile, btile, av)
			}
		}
	}
}

// MulHermInto writes a·bᴴ into dst: dst[i][k] = Σ_j a[i][j]·conj(b[k][j]),
// accumulated in ascending j. Both operands are read along rows, so the
// kernel streams contiguous memory even though it implements a
// conjugate-transposed product. a may alias b (the Gram-matrix case);
// dst must alias neither. Panics on shape mismatch.
func (dst *Matrix) MulHermInto(a, b *Matrix) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("cmat: MulHermInto shape mismatch %dx%d = %dx%d · (%dx%d)ᴴ",
			dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	if dst == a || dst == b {
		panic("cmat: MulHermInto dst must not alias an operand")
	}
	if gemmParallel(dst.rows, dst.rows*a.cols*dst.cols) {
		parallelRows(dst.rows, func(lo, hi int) { mulHermIntoRows(dst, a, b, lo, hi) })
		return
	}
	mulHermIntoRows(dst, a, b, 0, dst.rows)
}

func mulHermIntoRows(dst, a, b *Matrix, lo, hi int) {
	inner := a.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*inner : (i+1)*inner]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k := range orow {
			brow := b.data[k*inner : (k+1)*inner]
			var s complex128
			for j, av := range arow {
				s += av * cmplx.Conj(brow[j])
			}
			orow[k] = s
		}
	}
}

// MulDiagHermInto writes a·diag(d)·bᴴ into dst with the grouping
// dst[i][k] = Σ_j d[j]·(a[i][j]·conj(b[k][j])), accumulated in ascending
// j. The per-term grouping d·(a·conj(b)) matches a sequence of rank-one
// updates AddInPlace(d[j], col_j·col_jᴴ) bit for bit — the kernel is the
// batched replacement for a cached-outer-product gradient assembly. a
// may alias b; dst must alias neither. Panics on shape mismatch or when
// len(d) differs from the inner dimension.
func (dst *Matrix) MulDiagHermInto(a *Matrix, d []complex128, b *Matrix) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("cmat: MulDiagHermInto shape mismatch %dx%d = %dx%d · diag(%d) · (%dx%d)ᴴ",
			dst.rows, dst.cols, a.rows, a.cols, len(d), b.rows, b.cols))
	}
	if len(d) != a.cols {
		panic(fmt.Sprintf("cmat: MulDiagHermInto diagonal length %d, want %d", len(d), a.cols))
	}
	if dst == a || dst == b {
		panic("cmat: MulDiagHermInto dst must not alias an operand")
	}
	if gemmParallel(dst.rows, dst.rows*a.cols*dst.cols) {
		parallelRows(dst.rows, func(lo, hi int) { mulDiagHermIntoRows(dst, a, d, b, lo, hi) })
		return
	}
	mulDiagHermIntoRows(dst, a, d, b, 0, dst.rows)
}

func mulDiagHermIntoRows(dst, a *Matrix, d []complex128, b *Matrix, lo, hi int) {
	inner := a.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*inner : (i+1)*inner]
		orow := dst.data[i*dst.cols : (i+1)*dst.cols]
		// Pair output entries so the kernel runs two independent
		// accumulation chains; each entry's ordered ascending-j sum is
		// unchanged (see cdot.go).
		k := 0
		for ; k+1 < len(orow); k += 2 {
			b0 := b.data[k*inner : (k+1)*inner]
			b1 := b.data[(k+1)*inner : (k+2)*inner]
			orow[k], orow[k+1] = cdotDiagHerm2(arow, d, b0, b1)
		}
		if k < len(orow) {
			brow := b.data[k*inner : (k+1)*inner]
			var s complex128
			for j, av := range arow {
				s += d[j] * (av * cmplx.Conj(brow[j]))
			}
			orow[k] = s
		}
	}
}

// ColumnDotsInto writes the columnwise Hermitian inner products
// dst[j] = Σ_i conj(a[i][j])·b[i][j] — the diagonal of aᴴ·b. The sum
// runs in ascending i per column, so dst[j] is bitwise identical to
// a.Col(j).Dot(b.Col(j)); the loop nest is row-major (i outer) so both
// matrices stream contiguously. Panics on shape mismatch or when dst is
// shorter than the column count.
func ColumnDotsInto(dst []complex128, a, b *Matrix) {
	a.checkSameShape(b)
	if len(dst) < a.cols {
		panic(fmt.Sprintf("cmat: ColumnDotsInto dst length %d, want %d", len(dst), a.cols))
	}
	dst = dst[:a.cols]
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		brow := b.data[i*b.cols : (i+1)*b.cols]
		for j, av := range arow {
			dst[j] += cmplx.Conj(av) * brow[j]
		}
	}
}
