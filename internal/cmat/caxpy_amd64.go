//go:build amd64 && !purego

package cmat

// SSE2 kernel for the complex axpy inner loop (caxpy_amd64.s). Bitwise
// identical to caxpyIntoGo — pinned by TestCaxpyMatchesGoBitwise.

//go:noescape
func caxpyInto(dst, x []complex128, a complex128)
