//go:build !purego

#include "textflag.h"

// SSE2 complex axpy: dst[j] += a·x[j]. Same bitwise contract as the
// Jacobi kernel (see jacobi_amd64.s): per-lane IEEE ops matching the Go
// expression exactly, with x − y rewritten as x + (−y) via a sign-flip
// mask. Vectorization is across the real/imag lanes of ONE element, so
// the ascending-j term order of every dst entry is untouched.

DATA caxsignlow<>+0(SB)/8, $0x8000000000000000
DATA caxsignlow<>+8(SB)/8, $0x0000000000000000
GLOBL caxsignlow<>(SB), RODATA|NOPTR, $16

// func caxpyInto(dst, x []complex128, a complex128)
TEXT ·caxpyInto(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ x_base+24(FP), SI
	MOVQ x_len+32(FP), CX
	MOVSD a_real+48(FP), X9
	UNPCKLPD X9, X9        // [aRe, aRe]
	MOVSD a_imag+56(FP), X10
	UNPCKLPD X10, X10      // [aIm, aIm]
	MOVUPD caxsignlow<>(SB), X15

	MOVQ CX, DX
	SHRQ $1, DX            // pairs
	JZ   tail

pairloop:
	MOVUPD (SI), X0        // x0
	MOVAPD X0, X1
	SHUFPD $1, X1, X1      // [x0Im, x0Re]
	MULPD  X9, X0          // [aRe·x0Re, aRe·x0Im]
	MULPD  X10, X1         // [aIm·x0Im, aIm·x0Re]
	XORPD  X15, X1
	ADDPD  X1, X0          // a·x0
	MOVUPD (DI), X2
	ADDPD  X0, X2          // dst0 + a·x0
	MOVUPD X2, (DI)

	MOVUPD 16(SI), X3      // x1
	MOVAPD X3, X4
	SHUFPD $1, X4, X4
	MULPD  X9, X3
	MULPD  X10, X4
	XORPD  X15, X4
	ADDPD  X4, X3          // a·x1
	MOVUPD 16(DI), X5
	ADDPD  X3, X5
	MOVUPD X5, 16(DI)

	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  pairloop

tail:
	ANDQ $1, CX
	JZ   done
	MOVUPD (SI), X0
	MOVAPD X0, X1
	SHUFPD $1, X1, X1
	MULPD  X9, X0
	MULPD  X10, X1
	XORPD  X15, X1
	ADDPD  X1, X0
	MOVUPD (DI), X2
	ADDPD  X0, X2
	MOVUPD X2, (DI)

done:
	RET
