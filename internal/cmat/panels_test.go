package cmat

import (
	"math/rand"
	"runtime"
	"testing"
)

func randomPanelSet(rng *rand.Rand, count, rows, inner, cols, hermCols int) ([]Panel, []Panel) {
	herm := hermCols >= 0
	batch := make([]Panel, count)
	single := make([]Panel, count)
	for p := 0; p < count; p++ {
		var a, b *Matrix
		if herm {
			a = New(rows, inner)
			b = New(cols, inner)
		} else {
			a = New(rows, inner)
			b = New(inner, cols)
		}
		for _, m := range []*Matrix{a, b} {
			for i := range m.data {
				m.data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		batch[p] = Panel{Dst: New(rows, cols), A: a, B: b}
		single[p] = Panel{Dst: New(rows, cols), A: a, B: b}
	}
	return batch, single
}

// TestMulIntoPanelsMatchesPerPanel pins the batched entry point against
// per-panel MulInto calls, bit for bit, across shapes on both sides of
// the parallel threshold. GOMAXPROCS is forced up so the virtual-stack
// parallel path actually runs on single-CPU machines.
func TestMulIntoPanelsMatchesPerPanel(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(41))
	for _, tc := range [][4]int{
		{1, 3, 4, 5},
		{2, 5, 7, 3},
		{3, 2, 9, 2},   // rows·panels < gemmParallelRows: serial path
		{7, 16, 48, 64},
		{4, 33, 64, 48}, // panels·rows = 132 ≥ 32 and ops ≥ 2^17: parallel path
	} {
		count, rows, inner, cols := tc[0], tc[1], tc[2], tc[3]
		batch, single := randomPanelSet(rng, count, rows, inner, cols, -1)
		MulIntoPanels(batch)
		for p := range single {
			single[p].Dst.MulInto(single[p].A, single[p].B)
			for i := range single[p].Dst.data {
				if !bitEqualComplex(batch[p].Dst.data[i], single[p].Dst.data[i]) {
					t.Fatalf("panels %dx(%d,%d,%d): panel %d entry %d = %v, want %v",
						count, rows, inner, cols, p, i, batch[p].Dst.data[i], single[p].Dst.data[i])
				}
			}
		}
	}
	MulIntoPanels(nil) // empty batch is a no-op
}

// TestMulHermIntoPanelsMatchesPerPanel is the a·bᴴ counterpart,
// including a Gram panel where a aliases b.
func TestMulHermIntoPanelsMatchesPerPanel(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(43))
	for _, tc := range [][4]int{
		{1, 3, 5, 4},
		{3, 6, 9, 6},
		{4, 33, 64, 48},
	} {
		count, rows, inner, cols := tc[0], tc[1], tc[2], tc[3]
		batch, single := randomPanelSet(rng, count, rows, inner, cols, cols)
		MulHermIntoPanels(batch)
		for p := range single {
			single[p].Dst.MulHermInto(single[p].A, single[p].B)
			for i := range single[p].Dst.data {
				if !bitEqualComplex(batch[p].Dst.data[i], single[p].Dst.data[i]) {
					t.Fatalf("herm panels %dx(%d,%d,%d): panel %d entry %d mismatch",
						count, rows, inner, cols, p, i)
				}
			}
		}
	}
	// Gram case: a aliases b within a panel.
	a := New(34, 40)
	for i := range a.data {
		a.data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	got := New(34, 34)
	MulHermIntoPanels([]Panel{{Dst: got, A: a, B: a}})
	want := New(34, 34)
	want.MulHermInto(a, a)
	for i := range want.data {
		if !bitEqualComplex(got.data[i], want.data[i]) {
			t.Fatalf("gram panel entry %d mismatch", i)
		}
	}
}

// TestPanelsShapeValidation checks that per-panel and cross-panel shape
// violations panic with attribution instead of corrupting memory.
func TestPanelsShapeValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	a, b, dst := New(3, 4), New(4, 5), New(3, 5)
	mustPanic("bad inner", func() {
		MulIntoPanels([]Panel{{Dst: dst, A: a, B: New(3, 5)}})
	})
	mustPanic("dst aliases a", func() {
		sq := New(4, 4)
		MulIntoPanels([]Panel{{Dst: sq, A: sq, B: New(4, 4)}})
	})
	mustPanic("cross-panel disagreement", func() {
		MulIntoPanels([]Panel{
			{Dst: dst, A: a, B: b},
			{Dst: New(2, 5), A: New(2, 4), B: b},
		})
	})
	mustPanic("herm bad dst cols", func() {
		MulHermIntoPanels([]Panel{{Dst: New(3, 4), A: a, B: New(5, 4)}})
	})
}
