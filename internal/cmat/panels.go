package cmat

import "fmt"

// Panel is one (dst, a, b) product of a multi-panel batch: dst = a·b for
// MulIntoPanels, dst = a·bᴴ for MulHermIntoPanels. Panels in one batch
// must share a common shape — the batch is executed as a single virtual
// GEMM whose row space is the panels stacked vertically.
type Panel struct {
	Dst, A, B *Matrix
}

// MulIntoPanels computes dst = a·b for every panel as one batched
// kernel. All panels must share the same (dst, a, b) shapes; the batch
// is treated as a single tall GEMM of len(panels)·rows output rows, so
// one parallel fan-out covers the whole group even when the individual
// products sit below the per-call parallel threshold — the point of
// cross-cell batching.
//
// Bitwise contract: every output row is produced by the same row kernel
// MulInto uses, reading only that panel's operands, so each panel's dst
// is bitwise identical to calling panel.Dst.MulInto(panel.A, panel.B)
// on its own. Which panel a row belongs to only affects when the row is
// computed, never its bits. Panics on any per-panel shape mismatch or
// aliasing violation, and on shape disagreement across panels.
func MulIntoPanels(panels []Panel) {
	if len(panels) == 0 {
		return
	}
	rows, inner, cols := checkPanels(panels, false)
	if gemmParallel(len(panels)*rows, len(panels)*rows*inner*cols) {
		parallelRows(len(panels)*rows, func(lo, hi int) {
			panelRows(panels, rows, lo, hi, func(p Panel, llo, lhi int) {
				mulIntoRows(p.Dst, p.A, p.B, llo, lhi)
			})
		})
		return
	}
	for _, p := range panels {
		mulIntoRows(p.Dst, p.A, p.B, 0, rows)
	}
}

// MulHermIntoPanels computes dst = a·bᴴ for every panel as one batched
// kernel, with the same shape, aliasing, and bitwise contract as
// MulIntoPanels relative to MulHermInto (a may alias b within a panel,
// the Gram case).
func MulHermIntoPanels(panels []Panel) {
	if len(panels) == 0 {
		return
	}
	rows, inner, cols := checkPanels(panels, true)
	if gemmParallel(len(panels)*rows, len(panels)*rows*inner*cols) {
		parallelRows(len(panels)*rows, func(lo, hi int) {
			panelRows(panels, rows, lo, hi, func(p Panel, llo, lhi int) {
				mulHermIntoRows(p.Dst, p.A, p.B, llo, lhi)
			})
		})
		return
	}
	for _, p := range panels {
		mulHermIntoRows(p.Dst, p.A, p.B, 0, rows)
	}
}

// checkPanels validates every panel exactly as the corresponding
// single-product entry point would, plus shape agreement across the
// batch, and returns the common (rows, inner, cols) of the output space.
// herm selects the a·bᴴ shape rules (shared inner = a.cols = b.cols,
// dst.cols = b.rows) over the a·b rules (a.cols = b.rows).
func checkPanels(panels []Panel, herm bool) (rows, inner, cols int) {
	for i, p := range panels {
		if herm {
			if p.A.cols != p.B.cols || p.Dst.rows != p.A.rows || p.Dst.cols != p.B.rows {
				panic(fmt.Sprintf("cmat: MulHermIntoPanels panel %d shape mismatch %dx%d = %dx%d · (%dx%d)ᴴ",
					i, p.Dst.rows, p.Dst.cols, p.A.rows, p.A.cols, p.B.rows, p.B.cols))
			}
		} else {
			if p.A.cols != p.B.rows || p.Dst.rows != p.A.rows || p.Dst.cols != p.B.cols {
				panic(fmt.Sprintf("cmat: MulIntoPanels panel %d shape mismatch %dx%d = %dx%d · %dx%d",
					i, p.Dst.rows, p.Dst.cols, p.A.rows, p.A.cols, p.B.rows, p.B.cols))
			}
		}
		if p.Dst == p.A || p.Dst == p.B {
			panic(fmt.Sprintf("cmat: panel %d dst must not alias an operand", i))
		}
		if i == 0 {
			rows, inner, cols = p.Dst.rows, p.A.cols, p.Dst.cols
			continue
		}
		if p.Dst.rows != rows || p.A.cols != inner || p.Dst.cols != cols {
			panic(fmt.Sprintf("cmat: panel %d shape %dx%d (inner %d) disagrees with panel 0 shape %dx%d (inner %d)",
				i, p.Dst.rows, p.Dst.cols, p.A.cols, rows, cols, inner))
		}
	}
	return rows, inner, cols
}

// panelRows maps the global row range [lo, hi) of the virtually stacked
// batch onto per-panel local row ranges and invokes row for each
// contiguous run. Global row g lives in panel g/rows at local row
// g%rows.
func panelRows(panels []Panel, rows, lo, hi int, row func(p Panel, llo, lhi int)) {
	for g := lo; g < hi; {
		pi := g / rows
		llo := g - pi*rows
		lhi := rows
		if hi-pi*rows < rows {
			lhi = hi - pi*rows
		}
		row(panels[pi], llo, lhi)
		g = pi*rows + lhi
	}
}
