package cmat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// reconstruct rebuilds V·diag(vals)·Vᴴ from an eigendecomposition.
func reconstruct(e Eigen) *Matrix {
	n := len(e.Values)
	out := New(n, n)
	for j := 0; j < n; j++ {
		v := e.Vectors.Col(j)
		out.AddInPlace(complex(e.Values[j], 0), v.Outer(v))
	}
	return out
}

func TestEigHermitianReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		h := randHermitian(r, n)
		e, err := EigHermitian(h)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := reconstruct(e)
		if !rec.ApproxEqual(h, 1e-9*(1+h.FrobeniusNorm())) {
			t.Errorf("n=%d: VΛVᴴ != A (err %g)", n, rec.Sub(h).FrobeniusNorm())
		}
	}
}

func TestEigHermitianOrthonormalVectors(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	h := randHermitian(r, 12)
	e, err := EigHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	gram := e.Vectors.ConjTranspose().Mul(e.Vectors)
	if !gram.ApproxEqual(Identity(12), 1e-10) {
		t.Error("eigenvectors are not orthonormal")
	}
}

func TestEigHermitianSortedDescending(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	h := randHermitian(r, 10)
	e, err := EigHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(e.Values))) {
		t.Errorf("eigenvalues not descending: %v", e.Values)
	}
}

func TestEigHermitianKnownDiagonal(t *testing.T) {
	h := Diag([]complex128{3, -1, 7})
	e, err := EigHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 3, -1}
	for i := range want {
		if math.Abs(e.Values[i]-want[i]) > 1e-12 {
			t.Errorf("value[%d] = %g, want %g", i, e.Values[i], want[i])
		}
	}
}

func TestEigHermitianKnown2x2(t *testing.T) {
	// [[2, i],[-i, 2]] has eigenvalues 3 and 1.
	h := FromRows([][]complex128{{2, 1i}, {-1i, 2}})
	e, err := EigHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
		t.Errorf("values = %v, want [3 1]", e.Values)
	}
	// Verify the eigenvector equation A v = λ v.
	for j := 0; j < 2; j++ {
		v := e.Vectors.Col(j)
		lhs := h.MulVec(v)
		rhs := v.Scale(complex(e.Values[j], 0))
		if !lhs.ApproxEqual(rhs, 1e-12) {
			t.Errorf("Av != λv for eigenpair %d", j)
		}
	}
}

func TestEigHermitianTraceInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 10; i++ {
		n := 2 + r.Intn(14)
		h := randHermitian(r, n)
		e, err := EigHermitian(h)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range e.Values {
			sum += v
		}
		if math.Abs(sum-real(h.Trace())) > 1e-9*(1+math.Abs(sum)) {
			t.Fatalf("n=%d: eigenvalue sum %g != trace %g", n, sum, real(h.Trace()))
		}
	}
}

func TestEigHermitianPSDRank(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	n, rank := 10, 3
	p := randPSD(r, n, rank)
	e, err := EigHermitian(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rank; i++ {
		if e.Values[i] <= 1e-9 {
			t.Errorf("eigenvalue %d = %g should be positive", i, e.Values[i])
		}
	}
	for i := rank; i < n; i++ {
		if math.Abs(e.Values[i]) > 1e-8*e.Values[0] {
			t.Errorf("eigenvalue %d = %g should be ~0 for rank-%d matrix", i, e.Values[i], rank)
		}
	}
}

func TestEigHermitianZeroAndEmpty(t *testing.T) {
	e, err := EigHermitian(New(0, 0))
	if err != nil || len(e.Values) != 0 {
		t.Errorf("empty: %v %v", e.Values, err)
	}
	e, err = EigHermitian(New(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v != 0 {
			t.Errorf("zero matrix eigenvalue %g", v)
		}
	}
}

func TestTopEigenvector(t *testing.T) {
	// Rank-1 PSD: Q = u uᴴ — the top eigenvector must align with u.
	u := Vector{1, 1i, -1}.Normalize()
	q := u.Outer(u)
	v, lambda, err := TopEigenvector(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-1) > 1e-10 {
		t.Errorf("top eigenvalue = %g, want 1", lambda)
	}
	// Alignment up to a global phase: |<u,v>| ≈ 1.
	if a := math.Abs(realAbs(u.Dot(v))); math.Abs(a-1) > 1e-10 {
		t.Errorf("|<u,v>| = %g, want 1", a)
	}
}

func realAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

func TestPowerIterationMatchesJacobi(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	for i := 0; i < 10; i++ {
		n := 3 + r.Intn(12)
		p := randPSD(r, n, 1+r.Intn(3))
		_, wantLambda, err := TopEigenvector(p)
		if err != nil {
			t.Fatal(err)
		}
		_, gotLambda := PowerIterationTop(p, nil, 500, 1e-12)
		if math.Abs(gotLambda-wantLambda) > 1e-6*(1+wantLambda) {
			t.Fatalf("power iteration λ=%g, jacobi λ=%g", gotLambda, wantLambda)
		}
	}
}

func TestPowerIterationZeroMatrix(t *testing.T) {
	_, lambda := PowerIterationTop(New(4, 4), nil, 10, 1e-9)
	if lambda != 0 {
		t.Errorf("λ = %g, want 0", lambda)
	}
}

func TestEigHermitianLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large eigendecomposition in -short mode")
	}
	r := rand.New(rand.NewSource(26))
	h := randHermitian(r, 64)
	e, err := EigHermitian(h)
	if err != nil {
		t.Fatal(err)
	}
	if !reconstruct(e).ApproxEqual(h, 1e-8*(1+h.FrobeniusNorm())) {
		t.Error("64x64 reconstruction failed")
	}
}
