package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense complex matrix stored in row-major order.
type Matrix struct {
	rows, cols int
	data       []complex128
}

// New returns a zero rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("cmat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from a slice of rows. All rows must have the
// same length. The input is copied.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("cmat: ragged rows: row %d has %d entries, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []complex128) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) complex128 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v complex128) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

// AddAt adds v to the (i, j) entry in place.
func (m *Matrix) AddAt(i, j int, v complex128) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] += v
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) Vector {
	m.checkIndex(i, 0)
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	m.checkIndex(0, j)
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetCol overwrites column j with v. Panics if len(v) != Rows().
func (m *Matrix) SetCol(j int, v Vector) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("cmat: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of b. Panics on shape
// mismatch. The allocation-free counterpart of b.Clone().
func (m *Matrix) CopyFrom(b *Matrix) {
	m.checkSameShape(b)
	copy(m.data, b.data)
}

// Zero sets every entry of m to zero in place.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// SetIdentity overwrites the square matrix m with the identity in
// place. Panics if m is not square.
func (m *Matrix) SetIdentity() {
	m.checkSquare()
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 1
	}
}

// SubInto overwrites m with a - b. Panics on shape mismatch. m may
// alias a or b.
func (m *Matrix) SubInto(a, b *Matrix) {
	m.checkSameShape(a)
	m.checkSameShape(b)
	for i := range m.data {
		m.data[i] = a.data[i] - b.data[i]
	}
}

// AddScaledInto overwrites m with a + alpha*b. Panics on shape
// mismatch. m may alias a or b. The allocation-free counterpart of
// a.Clone() followed by AddInPlace(alpha, b).
func (m *Matrix) AddScaledInto(a *Matrix, alpha complex128, b *Matrix) {
	m.checkSameShape(a)
	m.checkSameShape(b)
	for i := range m.data {
		m.data[i] = a.data[i] + alpha*b.data[i]
	}
}

// Add returns m + b. Panics on shape mismatch.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.checkSameShape(b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out
}

// Sub returns m - b. Panics on shape mismatch.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.checkSameShape(b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out
}

// Scale returns a*m.
func (m *Matrix) Scale(a complex128) *Matrix {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = a * m.data[i]
	}
	return out
}

// AddInPlace adds a*b to m in place. Panics on shape mismatch.
func (m *Matrix) AddInPlace(a complex128, b *Matrix) {
	m.checkSameShape(b)
	for i := range m.data {
		m.data[i] += a * b.data[i]
	}
}

// AddScaledOuter adds alpha·v·vᴴ to the square matrix m in place.
// Panics on shape mismatch. The allocation-free counterpart of
// AddInPlace(alpha, v.Outer(v)).
func (m *Matrix) AddScaledOuter(alpha complex128, v Vector) {
	if m.rows != m.cols || m.rows != len(v) {
		panic(fmt.Sprintf("cmat: AddScaledOuter shape mismatch %dx%d with vector %d", m.rows, m.cols, len(v)))
	}
	n := m.rows
	for i := 0; i < n; i++ {
		vi := v[i]
		row := m.data[i*n : i*n+n : i*n+n]
		for j := 0; j < n; j++ {
			row[j] += alpha * (vi * cmplx.Conj(v[j]))
		}
	}
}

// AddScaledOuterCol adds alpha·c·cᴴ to m in place, where c is column
// col of vm — the same update as AddScaledOuter(alpha, vm.Col(col))
// without materializing the column.
func (m *Matrix) AddScaledOuterCol(alpha complex128, vm *Matrix, col int) {
	if m.rows != m.cols || m.rows != vm.rows {
		panic(fmt.Sprintf("cmat: AddScaledOuterCol shape mismatch %dx%d with %dx%d column", m.rows, m.cols, vm.rows, vm.cols))
	}
	vm.checkIndex(0, col)
	n := m.rows
	for i := 0; i < n; i++ {
		vi := vm.data[i*vm.cols+col]
		row := m.data[i*n : i*n+n : i*n+n]
		for j := 0; j < n; j++ {
			row[j] += alpha * (vi * cmplx.Conj(vm.data[j*vm.cols+col]))
		}
	}
}

// SetOuter overwrites m with the rank-one matrix v·wᴴ. Panics on shape
// mismatch. The allocation-free counterpart of v.Outer(w).
func (m *Matrix) SetOuter(v, w Vector) {
	if m.rows != len(v) || m.cols != len(w) {
		panic(fmt.Sprintf("cmat: SetOuter shape mismatch %dx%d with vectors %d, %d", m.rows, m.cols, len(v), len(w)))
	}
	for i := range v {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j := range w {
			row[j] = v[i] * cmplx.Conj(w[j])
		}
	}
}

// Mul returns the matrix product m·b. Panics if m.Cols() != b.Rows().
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("cmat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns m·v. Panics if m.Cols() != len(v).
func (m *Matrix) MulVec(v Vector) Vector {
	out := make(Vector, m.rows)
	m.MulVecInto(out, v)
	return out
}

// MulVecInto writes m·v into dst. Panics on shape mismatch. dst must
// not alias v.
func (m *Matrix) MulVecInto(dst, v Vector) {
	if m.cols != len(v) || m.rows != len(dst) {
		panic(fmt.Sprintf("cmat: MulVecInto shape mismatch %dx%d · %d -> %d", m.rows, m.cols, len(v), len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s complex128
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
}

// ConjTranspose returns the Hermitian transpose mᴴ.
func (m *Matrix) ConjTranspose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = cmplx.Conj(m.data[i*m.cols+j])
		}
	}
	return out
}

// Transpose returns the plain transpose mᵀ (no conjugation).
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Trace returns the sum of diagonal entries. Panics if m is not square.
func (m *Matrix) Trace() complex128 {
	m.checkSquare()
	var s complex128
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		re, im := real(v), imag(v)
		s += re*re + im*im
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest entry modulus, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var best float64
	for _, v := range m.data {
		if a := cmplx.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// OffDiagNorm returns the Frobenius norm of the off-diagonal part.
// Panics if m is not square.
func (m *Matrix) OffDiagNorm() float64 {
	m.checkSquare()
	var s float64
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if i == j {
				continue
			}
			v := m.data[i*m.cols+j]
			re, im := real(v), imag(v)
			s += re*re + im*im
		}
	}
	return math.Sqrt(s)
}

// IsHermitian reports whether ‖m - mᴴ‖_max ≤ tol. Panics if m is not square.
func (m *Matrix) IsHermitian(tol float64) bool {
	m.checkSquare()
	for i := 0; i < m.rows; i++ {
		for j := i; j < m.cols; j++ {
			if cmplx.Abs(m.data[i*m.cols+j]-cmplx.Conj(m.data[j*m.cols+i])) > tol {
				return false
			}
		}
	}
	return true
}

// Hermitianize returns (m + mᴴ)/2, the nearest Hermitian matrix in
// Frobenius norm. Panics if m is not square.
func (m *Matrix) Hermitianize() *Matrix {
	m.checkSquare()
	out := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[i*m.cols+j] = (m.data[i*m.cols+j] + cmplx.Conj(m.data[j*m.cols+i])) / 2
		}
	}
	return out
}

// HermitianizeInPlace replaces m with (m + mᴴ)/2 in place, producing
// entries bitwise identical to Hermitianize. Panics if m is not square.
func (m *Matrix) HermitianizeInPlace() {
	m.checkSquare()
	n := m.rows
	for i := 0; i < n; i++ {
		m.data[i*n+i] = (m.data[i*n+i] + cmplx.Conj(m.data[i*n+i])) / 2
		for j := i + 1; j < n; j++ {
			h := (m.data[i*n+j] + cmplx.Conj(m.data[j*n+i])) / 2
			m.data[i*n+j] = h
			m.data[j*n+i] = cmplx.Conj(h)
		}
	}
}

// HermitianizeFrom overwrites m with (a + aᴴ)/2, the allocation-free
// counterpart of a.Hermitianize(). m may alias a. Panics on shape
// mismatch or if a is not square.
func (m *Matrix) HermitianizeFrom(a *Matrix) {
	a.checkSquare()
	m.checkSameShape(a)
	if m == a {
		m.HermitianizeInPlace()
		return
	}
	n := m.rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.data[i*n+j] = (a.data[i*n+j] + cmplx.Conj(a.data[j*n+i])) / 2
		}
	}
}

// QuadForm returns the real part of vᴴ·m·v. For Hermitian m the quadratic
// form is exactly real; the imaginary residue from rounding is discarded.
// Panics on shape mismatch.
func (m *Matrix) QuadForm(v Vector) float64 {
	if m.rows != m.cols || m.cols != len(v) {
		panic(fmt.Sprintf("cmat: QuadForm shape mismatch %dx%d with vector %d", m.rows, m.cols, len(v)))
	}
	var s complex128
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var t complex128
		for j, rv := range row {
			t += rv * v[j]
		}
		s += cmplx.Conj(v[i]) * t
	}
	return real(s)
}

// ApproxEqual reports whether m and b share a shape and agree entrywise
// within tol in modulus.
func (m *Matrix) ApproxEqual(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if cmplx.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// Equal reports whether m and b share a shape and agree entrywise
// bitwise (exact float equality; NaN entries compare unequal). It is
// the check used by determinism tests, where "close" is not enough.
func (m *Matrix) Equal(b *Matrix) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != b.data[i] {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; not intended for parsing.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%.4g%+.4gi", real(m.At(i, j)), imag(m.At(i, j)))
		}
	}
	sb.WriteString("]")
	return sb.String()
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("cmat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

func (m *Matrix) checkSameShape(b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("cmat: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

func (m *Matrix) checkSquare() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("cmat: matrix %dx%d is not square", m.rows, m.cols))
	}
}
