package cmat

import "math/cmplx"

// cdotDiagHerm2Go is the portable reference for the diagonal-weighted
// Hermitian dot pair: s0 = Σ_j d[j]·(a[j]·conj(b0[j])) and likewise s1
// over b1, each accumulated in ascending j — exactly the per-entry
// expression of the MulDiagHermInto contract. Pairing two output
// entries per pass gives the kernel two independent accumulation
// chains (the ordered sum per entry is untouched), which is what lets
// the SIMD form hide the add-latency the single-chain loop was bound
// by.
func cdotDiagHerm2Go(a, d, b0, b1 []complex128) (s0, s1 complex128) {
	for j, av := range a {
		dv := d[j]
		s0 += dv * (av * cmplx.Conj(b0[j]))
		s1 += dv * (av * cmplx.Conj(b1[j]))
	}
	return s0, s1
}
