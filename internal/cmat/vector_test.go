package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return v
}

func TestNewVector(t *testing.T) {
	v := NewVector(5)
	if len(v) != 5 {
		t.Fatalf("len = %d, want 5", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %v, want 0", i, x)
		}
	}
}

func TestNewVectorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative length")
		}
	}()
	NewVector(-1)
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1 + 2i, 3}
	w := Vector{2 - 1i, -3}
	got := v.Add(w)
	want := Vector{3 + 1i, 0}
	if !got.ApproxEqual(want, 0) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if diff := v.Add(w).Sub(w); !diff.ApproxEqual(v, 1e-15) {
		t.Errorf("(v+w)-w = %v, want %v", diff, v)
	}
}

func TestVectorAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestVectorDotConjugateLinearity(t *testing.T) {
	v := Vector{1 + 1i, 2}
	w := Vector{0 + 1i, 1}
	// <v, w> should conjugate the left argument.
	got := v.Dot(w)
	want := cmplx.Conj(1+1i)*(0+1i) + 2*1
	if cmplx.Abs(got-want) > 1e-15 {
		t.Errorf("Dot = %v, want %v", got, want)
	}
}

func TestVectorNorm(t *testing.T) {
	v := Vector{3, 4i}
	if got := v.Norm(); math.Abs(got-5) > 1e-15 {
		t.Errorf("Norm = %g, want 5", got)
	}
}

func TestVectorNormalize(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		v := randVec(r, 1+r.Intn(16))
		u := v.Normalize()
		if math.Abs(u.Norm()-1) > 1e-12 {
			t.Fatalf("normalized norm = %g", u.Norm())
		}
	}
	zero := NewVector(3)
	if got := zero.Normalize(); got.Norm() != 0 {
		t.Errorf("Normalize(0) changed the zero vector: %v", got)
	}
}

func TestVectorDotPropertyNormConsistency(t *testing.T) {
	// Property: <v,v> is real, non-negative, and equals ‖v‖².
	f := func(re, im []float64) bool {
		n := len(re)
		if len(im) < n {
			n = len(im)
		}
		v := make(Vector, n)
		for i := 0; i < n; i++ {
			v[i] = complex(clampF(re[i]), clampF(im[i]))
		}
		d := v.Dot(v)
		nrm := v.Norm()
		return math.Abs(imag(d)) <= 1e-9*(1+real(d)) &&
			real(d) >= 0 &&
			math.Abs(real(d)-nrm*nrm) <= 1e-9*(1+real(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// clampF maps arbitrary float64 quick-check inputs into a sane range so
// properties are not dominated by Inf/NaN/overflow artifacts.
func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestVectorOuter(t *testing.T) {
	v := Vector{1, 2i}
	w := Vector{1 + 1i}
	m := v.Outer(w)
	if m.Rows() != 2 || m.Cols() != 1 {
		t.Fatalf("shape = %dx%d, want 2x1", m.Rows(), m.Cols())
	}
	if got, want := m.At(0, 0), 1*cmplx.Conj(1+1i); cmplx.Abs(got-want) > 1e-15 {
		t.Errorf("m[0,0] = %v, want %v", got, want)
	}
	if got, want := m.At(1, 0), 2i*cmplx.Conj(1+1i); cmplx.Abs(got-want) > 1e-15 {
		t.Errorf("m[1,0] = %v, want %v", got, want)
	}
}

func TestVectorMaxAbsIndex(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want int
	}{
		{"empty", Vector{}, -1},
		{"single", Vector{5}, 0},
		{"middle", Vector{1, 10i, 2}, 1},
		{"ties pick first", Vector{3, 3}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.MaxAbsIndex(); got != tt.want {
				t.Errorf("MaxAbsIndex = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases the original storage")
	}
}

func TestVectorConj(t *testing.T) {
	v := Vector{1 + 2i, -3i}
	got := v.Conj()
	want := Vector{1 - 2i, 3i}
	if !got.ApproxEqual(want, 0) {
		t.Errorf("Conj = %v, want %v", got, want)
	}
}
