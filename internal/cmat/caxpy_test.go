package cmat

import (
	"math"
	"math/rand"
	"testing"
)

// TestCaxpyMatchesGoBitwise pins the active caxpyInto kernel (SSE2
// assembly on amd64) against the portable Go reference, including odd
// lengths that exercise the unroll tail.
func TestCaxpyMatchesGoBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	randVal := func() complex128 {
		scale := math.Pow(10, float64(rng.Intn(40)-20))
		return complex(rng.NormFloat64()*scale, rng.NormFloat64()*scale)
	}
	for _, n := range []int{0, 1, 2, 3, 7, 8, 15, 64, 127, 128} {
		for trial := 0; trial < 20; trial++ {
			x := make([]complex128, n)
			dst := make([]complex128, n)
			for i := range x {
				x[i] = randVal()
				dst[i] = randVal()
			}
			a := randVal()
			want := append([]complex128(nil), dst...)
			caxpyIntoGo(want, x, a)
			caxpyInto(dst, x, a)
			for i := range dst {
				if !bitEqualComplex(dst[i], want[i]) {
					t.Fatalf("n=%d trial %d: dst[%d] = %v, Go reference %v", n, trial, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestMulIntoMatchesPerTermLoop pins that the caxpy-kernel GEMM inner
// loop is bitwise identical to the literal per-term accumulation it
// replaced.
func TestMulIntoMatchesPerTermLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {33, 17, 129}, {56, 64, 56}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(k, n)
		for i := range a.data {
			a.data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for i := range b.data {
			b.data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := New(m, n)
		got.MulInto(a, b)
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s complex128
				for kk := 0; kk < k; kk++ {
					s += a.data[i*k+kk] * b.data[kk*n+j]
				}
				want.data[i*n+j] = s
			}
		}
		// The blocked kernel accumulates per entry in ascending k with a
		// memory accumulator — same order as the reference triple loop.
		for i := range got.data {
			if !bitEqualComplex(got.data[i], want.data[i]) {
				t.Fatalf("%dx%dx%d: entry %d = %v, want %v", m, k, n, i, got.data[i], want.data[i])
			}
		}
	}
}
