package cmat

import (
	"math"
	"math/rand"
	"testing"
)

// TestJacobiApplyMatchesGoBitwise pins the bitwise contract between the
// active jacobiApply kernel (SSE2 assembly on amd64) and the portable
// Go reference implementation. On platforms where the active kernel IS
// the Go reference the test is a tautology; on amd64 it is the proof
// that the assembly's x+(−y) / sign-flip rewrites change no bits.
func TestJacobiApplyMatchesGoBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randVal := func() complex128 {
		// Mix magnitudes so denormal-adjacent and large values both appear.
		scale := math.Pow(10, float64(rng.Intn(40)-20))
		return complex(rng.NormFloat64()*scale, rng.NormFloat64()*scale)
	}
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(31)
		p := rng.Intn(n - 1)
		q := p + 1 + rng.Intn(n-p-1)
		wd := make([]complex128, n*n)
		vd := make([]complex128, n*n)
		for i := range wd {
			wd[i] = randVal()
			vd[i] = randVal()
		}
		coef := &jacobiCoefs{
			c: rng.Float64(), s: rng.NormFloat64(),
			spRe: rng.NormFloat64(), spIm: rng.NormFloat64(),
			cpRe: rng.NormFloat64(), cpIm: rng.NormFloat64(),
			scRe: rng.NormFloat64(), scIm: rng.NormFloat64(),
			ccRe: rng.NormFloat64(), ccIm: rng.NormFloat64(),
		}
		wantWd := append([]complex128(nil), wd...)
		wantVd := append([]complex128(nil), vd...)
		jacobiApplyGo(wantWd, wantVd, p, q, n, coef)
		jacobiApply(wd, vd, p, q, n, coef)
		for i := range wd {
			if !bitEqualComplex(wd[i], wantWd[i]) {
				t.Fatalf("trial %d (n=%d p=%d q=%d): wd[%d] = %v, Go reference %v",
					trial, n, p, q, i, wd[i], wantWd[i])
			}
			if !bitEqualComplex(vd[i], wantVd[i]) {
				t.Fatalf("trial %d (n=%d p=%d q=%d): vd[%d] = %v, Go reference %v",
					trial, n, p, q, i, vd[i], wantVd[i])
			}
		}
	}
}

func bitEqualComplex(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

// TestJacobiApplyAdjacentPivots covers the boundary pivots (0,1) and
// (n-2,n-1) where the row pass has maximal skip interaction.
func TestJacobiApplyAdjacentPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 4, 8} {
		for _, pq := range [][2]int{{0, 1}, {n - 2, n - 1}, {0, n - 1}} {
			p, q := pq[0], pq[1]
			if p < 0 || p >= q {
				continue
			}
			wd := make([]complex128, n*n)
			vd := make([]complex128, n*n)
			for i := range wd {
				wd[i] = complex(rng.NormFloat64(), rng.NormFloat64())
				vd[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			coef := &jacobiCoefs{c: 0.8, s: 0.6, spRe: 0.1, spIm: -0.2,
				cpRe: 0.3, cpIm: 0.4, scRe: -0.5, scIm: 0.6, ccRe: 0.7, ccIm: -0.8}
			wantWd := append([]complex128(nil), wd...)
			wantVd := append([]complex128(nil), vd...)
			jacobiApplyGo(wantWd, wantVd, p, q, n, coef)
			jacobiApply(wd, vd, p, q, n, coef)
			for i := range wd {
				if !bitEqualComplex(wd[i], wantWd[i]) || !bitEqualComplex(vd[i], wantVd[i]) {
					t.Fatalf("n=%d p=%d q=%d: mismatch at %d", n, p, q, i)
				}
			}
		}
	}
}
