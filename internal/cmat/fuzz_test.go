package cmat

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzHermitian derives a deterministic Hermitian test matrix from fuzz
// inputs: dimension from n, entries from seed, overall magnitude from
// scale (spanning tiny to large matrices so tolerance scaling is
// exercised too).
func fuzzHermitian(seed int64, n uint8, scale float64) *Matrix {
	dim := 1 + int(n)%16
	r := rand.New(rand.NewSource(seed))
	h := randHermitian(r, dim)
	if !math.IsInf(scale, 0) && !math.IsNaN(scale) && scale != 0 {
		h = h.Scale(complex(scale, 0))
	}
	return h.Hermitianize()
}

// FuzzEigHermitian asserts the eigensolver contract on arbitrary
// Hermitian inputs: A = V·diag(λ)·Vᴴ within tolerance, eigenvalues
// sorted descending, eigenvectors orthonormal, and the workspace path
// bitwise identical to the package-level entry point.
func FuzzEigHermitian(f *testing.F) {
	f.Add(int64(1), uint8(4), 1.0)
	f.Add(int64(7), uint8(0), 1e-8)
	f.Add(int64(42), uint8(15), 1e6)
	f.Add(int64(-3), uint8(63), -2.5)
	f.Add(int64(99), uint8(8), 0.0)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, scale float64) {
		h := fuzzHermitian(seed, n, scale)
		dim := h.Rows()
		e, err := EigHermitian(h)
		if err != nil {
			t.Fatalf("dim=%d scale=%g: %v", dim, scale, err)
		}
		for i := 1; i < dim; i++ {
			if e.Values[i] > e.Values[i-1] {
				t.Fatalf("eigenvalues not descending at %d: %v", i, e.Values)
			}
		}
		norm := h.FrobeniusNorm()
		tol := 1e-9 * (1 + norm)
		if rec := reconstruct(e); !rec.ApproxEqual(h, tol) {
			t.Errorf("dim=%d: reconstruction error %g exceeds %g",
				dim, rec.Sub(h).FrobeniusNorm(), tol)
		}
		gram := e.Vectors.ConjTranspose().Mul(e.Vectors)
		if !gram.ApproxEqual(Identity(dim), 1e-9) {
			t.Errorf("dim=%d: eigenvectors not orthonormal", dim)
		}
		// The workspace entry point must agree bitwise with the
		// package-level one — the solver hot path depends on it.
		ws := NewEigenWorkspace(dim)
		we, err := ws.EigHermitian(h)
		if err != nil {
			t.Fatalf("workspace path failed where fresh path succeeded: %v", err)
		}
		for i := range e.Values {
			if e.Values[i] != we.Values[i] {
				t.Fatalf("workspace eigenvalue %d differs bitwise: %v vs %v", i, e.Values[i], we.Values[i])
			}
		}
		if !e.Vectors.Equal(we.Vectors) {
			t.Fatal("workspace eigenvectors differ bitwise from fresh path")
		}
	})
}

// FuzzEigenSoftThresholdPSD asserts the prox contract: the output is
// PSD, its spectrum is the soft-thresholded input spectrum, and the
// allocation-free Into variant matches the allocating one bitwise —
// including when dst aliases the input.
func FuzzEigenSoftThresholdPSD(f *testing.F) {
	f.Add(int64(1), uint8(4), 1.0, 0.5)
	f.Add(int64(2), uint8(7), -1.0, 0.0)
	f.Add(int64(5), uint8(11), 100.0, 7.5)
	f.Add(int64(8), uint8(2), 1e-6, 1e-9)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, scale, tau float64) {
		if math.IsNaN(tau) || math.IsInf(tau, 0) {
			return
		}
		tau = math.Abs(tau)
		h := fuzzHermitian(seed, n, scale)
		dim := h.Rows()
		out, err := EigenSoftThresholdPSD(h, tau)
		if err != nil {
			t.Fatalf("dim=%d tau=%g: %v", dim, tau, err)
		}
		norm := h.FrobeniusNorm()
		tol := 1e-8 * (1 + norm)
		oe, err := EigHermitian(out)
		if err != nil {
			t.Fatal(err)
		}
		for i, lambda := range oe.Values {
			if lambda < -tol {
				t.Errorf("output eigenvalue %d = %g is negative beyond tolerance", i, lambda)
			}
		}
		// Spectrum mapping: λ_out,i = max(λ_in,i − tau, 0) pairwise in
		// sorted order (soft-threshold is order-preserving).
		ie, err := EigHermitian(h)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ie.Values {
			want := math.Max(ie.Values[i]-tau, 0)
			if math.Abs(oe.Values[i]-want) > tol {
				t.Errorf("eigenvalue %d: got %g, want max(%g-%g,0)=%g",
					i, oe.Values[i], ie.Values[i], tau, want)
			}
		}
		// Into variant, dst aliasing the input, must match bitwise.
		alias := h.Clone()
		if err := EigenSoftThresholdPSDInto(NewEigenWorkspace(dim), alias, alias, tau); err != nil {
			t.Fatal(err)
		}
		if !alias.Equal(out) {
			t.Error("aliased Into variant differs bitwise from allocating variant")
		}
	})
}

// TestEigenWorkspaceReuse pins the workspace reuse contract: one
// workspace decomposing a stream of different matrices — including a
// dimension change mid-stream — produces bitwise the same results as a
// fresh decomposition per matrix.
func TestEigenWorkspaceReuse(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	ws := NewEigenWorkspace(4)
	for trial := 0; trial < 20; trial++ {
		dim := 1 + r.Intn(12)
		h := randHermitian(r, dim)
		fresh, err := EigHermitian(h)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := ws.EigHermitian(h)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fresh.Values {
			if fresh.Values[i] != reused.Values[i] {
				t.Fatalf("trial %d dim %d: eigenvalue %d differs bitwise", trial, dim, i)
			}
		}
		if !fresh.Vectors.Equal(reused.Vectors) {
			t.Fatalf("trial %d dim %d: eigenvectors differ bitwise", trial, dim)
		}
	}
}

// TestEigHermitianInputSymmetrizationInvariance checks that the solver
// sees only the Hermitian part of its input: decomposing a and its
// explicit symmetrization (a+aᴴ)/2 must agree bitwise.
func TestEigHermitianInputSymmetrizationInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	for _, n := range []int{2, 5, 9} {
		a := randMat(r, n, n) // deliberately non-Hermitian
		e1, err := EigHermitian(a)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := EigHermitian(a.Hermitianize())
		if err != nil {
			t.Fatal(err)
		}
		for i := range e1.Values {
			if e1.Values[i] != e2.Values[i] {
				t.Fatalf("n=%d: eigenvalue %d differs between a and herm(a)", n, i)
			}
		}
		if !e1.Vectors.Equal(e2.Vectors) {
			t.Fatalf("n=%d: eigenvectors differ between a and herm(a)", n)
		}
	}
}
