package aoa

import (
	"math"
	"testing"

	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// plantedCovariance builds Q = Σ_i p_i·a(d_i)·a(d_i)ᴴ + σ²·I.
func plantedCovariance(ar antenna.Array, dirs []antenna.Direction, powers []float64, noise float64) *cmat.Matrix {
	n := ar.Elements()
	q := cmat.New(n, n)
	for i, d := range dirs {
		a := ar.Steering(d)
		q.AddInPlace(complex(powers[i], 0), a.Outer(a))
	}
	for i := 0; i < n; i++ {
		q.AddAt(i, i, complex(noise, 0))
	}
	return q.Hermitianize()
}

func TestEstimateValidation(t *testing.T) {
	ar := antenna.NewULA(8)
	q := cmat.Identity(8)
	if _, _, err := Estimate(ar, cmat.Identity(4), Config{Sources: 1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, _, err := Estimate(ar, q, Config{Sources: 0}); err == nil {
		t.Error("zero sources accepted")
	}
	if _, _, err := Estimate(ar, q, Config{Sources: 8}); err == nil {
		t.Error("sources = n accepted")
	}
}

func TestEstimateRecoversSingleAngle(t *testing.T) {
	ar := antenna.NewULA(16)
	truth := antenna.Direction{Az: 0.35}
	q := plantedCovariance(ar, []antenna.Direction{truth}, []float64{10}, 0.01)
	_, peaks, err := Estimate(ar, q, Config{Sources: 1, GridAz: 360, GridEl: 1, ElSpan: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 1 {
		t.Fatalf("got %d peaks", len(peaks))
	}
	if math.Abs(peaks[0].Az-truth.Az) > 0.02 {
		t.Errorf("estimated az %g, want %g", peaks[0].Az, truth.Az)
	}
}

func TestEstimateResolvesTwoAngles(t *testing.T) {
	ar := antenna.NewULA(32)
	d1 := antenna.Direction{Az: -0.4}
	d2 := antenna.Direction{Az: 0.25}
	q := plantedCovariance(ar, []antenna.Direction{d1, d2}, []float64{5, 5}, 0.01)
	_, peaks, err := Estimate(ar, q, Config{Sources: 2, GridAz: 720, GridEl: 1, ElSpan: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 2 {
		t.Fatalf("got %d peaks", len(peaks))
	}
	found1, found2 := false, false
	for _, p := range peaks {
		if math.Abs(p.Az-d1.Az) < 0.03 {
			found1 = true
		}
		if math.Abs(p.Az-d2.Az) < 0.03 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Errorf("peaks %v do not match planted angles %g, %g", peaks, d1.Az, d2.Az)
	}
}

func TestEstimateUPAAzimuthElevation(t *testing.T) {
	ar := antenna.NewUPA(8, 8)
	truth := antenna.Direction{Az: 0.3, El: -0.2}
	q := plantedCovariance(ar, []antenna.Direction{truth}, []float64{20}, 0.01)
	_, peaks, err := Estimate(ar, q, Config{Sources: 1, GridAz: 180, GridEl: 90})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(peaks[0].Az-truth.Az) > 0.05 || math.Abs(peaks[0].El-truth.El) > 0.05 {
		t.Errorf("estimated (%g, %g), want (%g, %g)",
			peaks[0].Az, peaks[0].El, truth.Az, truth.El)
	}
}

func TestEstimateFinerThanCodebook(t *testing.T) {
	// The point of MUSIC here: angle estimates finer than the 8-beam
	// codebook grid. Plant an off-grid angle and verify MUSIC lands
	// within a fraction of the codebook spacing.
	ar := antenna.NewULA(16)
	truth := antenna.Direction{Az: 0.123}
	q := plantedCovariance(ar, []antenna.Direction{truth}, []float64{10}, 0.01)
	_, peaks, err := Estimate(ar, q, Config{Sources: 1, GridAz: 720, GridEl: 1, ElSpan: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	codebookSpacing := math.Pi / 8
	if math.Abs(peaks[0].Az-truth.Az) > codebookSpacing/8 {
		t.Errorf("MUSIC error %g not finer than codebook spacing %g",
			math.Abs(peaks[0].Az-truth.Az), codebookSpacing)
	}
}

func TestEstimateFromEstimatedChannelCovariance(t *testing.T) {
	// End to end: NYC channel → true RX covariance → MUSIC peak should
	// land near the strongest cluster's AoA.
	tx, rx := antenna.NewUPA(4, 4), antenna.NewUPA(8, 8)
	p := channel.DefaultNYC28()
	p.MaxClusters = 1
	ch, err := channel.NewNYCMultipath(rng.New(50), tx, rx, p)
	if err != nil {
		t.Fatal(err)
	}
	q := ch.RXCovarianceIsotropic()
	_, peaks, err := Estimate(rx, q, Config{Sources: 2, GridAz: 120, GridEl: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Strongest subpath AoA.
	best := 0
	for i, path := range ch.Paths {
		if path.Power > ch.Paths[best].Power {
			best = i
		}
	}
	want := ch.Paths[best].AoA
	// Any returned peak within the cluster's angular neighborhood works
	// (the cluster has ~15° spread).
	tol := 25 * math.Pi / 180
	ok := false
	for _, pk := range peaks {
		if math.Abs(pk.Az-want.Az) < tol && math.Abs(pk.El-want.El) < tol {
			ok = true
		}
	}
	if !ok {
		t.Errorf("no MUSIC peak near dominant AoA (%g, %g); peaks %v", want.Az, want.El, peaks)
	}
}

func TestSpectrumShape(t *testing.T) {
	ar := antenna.NewULA(8)
	q := plantedCovariance(ar, []antenna.Direction{{Az: 0}}, []float64{1}, 0.1)
	spec, _, err := Estimate(ar, q, Config{Sources: 1, GridAz: 64, GridEl: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 64*4 {
		t.Fatalf("spectrum length %d", len(spec))
	}
	for _, sp := range spec {
		if sp.Power < 0 {
			t.Fatal("negative pseudospectrum value")
		}
	}
}
