// Package aoa implements subspace-based angle-of-arrival estimation
// (MUSIC) on top of the library's covariance estimates. Where the
// alignment core ranks codebook beams by the quadratic form vᴴQ̂v, MUSIC
// extracts the underlying propagation directions themselves: it splits
// the covariance eigenspace into signal and noise subspaces and scores
// each candidate direction by how orthogonal its steering vector is to
// the noise subspace. The resulting angle estimates are finer than the
// codebook grid and feed beyond-codebook steering, diagnostics, and the
// localization use cases of the mmWave literature (e.g. Deng & Sayeed,
// reference [6] of the paper).
package aoa

import (
	"fmt"
	"math"
	"sort"

	"mmwalign/internal/antenna"
	"mmwalign/internal/cmat"
)

// SpectrumPoint is one sample of the MUSIC pseudospectrum.
type SpectrumPoint struct {
	// Dir is the candidate direction.
	Dir antenna.Direction
	// Power is the pseudospectrum value 1/‖Eₙᴴa(Dir)‖²; larger means
	// closer to a true arrival direction.
	Power float64
}

// Config parameterizes a MUSIC estimate.
type Config struct {
	// Sources is the assumed signal-subspace dimension (number of
	// dominant arrival directions). Required, ≥ 1.
	Sources int
	// GridAz and GridEl set the search-grid resolution (default 90×45
	// over the span below).
	GridAz, GridEl int
	// AzSpan and ElSpan bound the search (default π and π/2, centered
	// on boresight).
	AzSpan, ElSpan float64
}

func (c Config) withDefaults() Config {
	if c.GridAz == 0 {
		c.GridAz = 90
	}
	if c.GridEl == 0 {
		c.GridEl = 45
	}
	if c.AzSpan == 0 {
		c.AzSpan = math.Pi
	}
	if c.ElSpan == 0 {
		c.ElSpan = math.Pi / 2
	}
	return c
}

// Estimate runs MUSIC on the Hermitian covariance q over the array ar
// and returns the pseudospectrum (row-major over the el×az grid) plus
// the Sources strongest local peaks, strongest first.
func Estimate(ar antenna.Array, q *cmat.Matrix, cfg Config) ([]SpectrumPoint, []antenna.Direction, error) {
	cfg = cfg.withDefaults()
	n := ar.Elements()
	if q.Rows() != n || q.Cols() != n {
		return nil, nil, fmt.Errorf("aoa: covariance is %dx%d for an %d-element array", q.Rows(), q.Cols(), n)
	}
	if cfg.Sources < 1 || cfg.Sources >= n {
		return nil, nil, fmt.Errorf("aoa: sources %d must be in [1, %d)", cfg.Sources, n)
	}

	eig, err := cmat.EigHermitian(q)
	if err != nil {
		return nil, nil, fmt.Errorf("aoa: eigendecomposition: %w", err)
	}
	// Noise subspace: eigenvectors beyond the assumed signal dimension.
	noiseDim := n - cfg.Sources
	noise := make([]cmat.Vector, noiseDim)
	for k := 0; k < noiseDim; k++ {
		noise[k] = eig.Vectors.Col(cfg.Sources + k)
	}

	spectrum := make([]SpectrumPoint, 0, cfg.GridAz*cfg.GridEl)
	for e := 0; e < cfg.GridEl; e++ {
		el := gridAngle(e, cfg.GridEl, cfg.ElSpan)
		for a := 0; a < cfg.GridAz; a++ {
			az := gridAngle(a, cfg.GridAz, cfg.AzSpan)
			d := antenna.Direction{Az: az, El: el}
			s := ar.Steering(d)
			var proj float64
			for _, en := range noise {
				ip := en.Dot(s)
				proj += real(ip)*real(ip) + imag(ip)*imag(ip)
			}
			power := math.Inf(1)
			if proj > 1e-15 {
				power = 1 / proj
			}
			spectrum = append(spectrum, SpectrumPoint{Dir: d, Power: power})
		}
	}

	peaks := findPeaks(spectrum, cfg.GridAz, cfg.GridEl, cfg.Sources)
	return spectrum, peaks, nil
}

// gridAngle places sample i of n at the cell center of a zero-centered
// span.
func gridAngle(i, n int, span float64) float64 {
	if n == 1 {
		return 0
	}
	cell := span / float64(n)
	return -span/2 + cell*(float64(i)+0.5)
}

// findPeaks returns up to k local maxima of the gridded spectrum
// (4-neighborhood), strongest first; if fewer strict local maxima exist
// the globally strongest remaining points fill in.
func findPeaks(spec []SpectrumPoint, nAz, nEl, k int) []antenna.Direction {
	type cand struct {
		idx   int
		power float64
		local bool
	}
	var cands []cand
	at := func(a, e int) float64 { return spec[e*nAz+a].Power }
	for e := 0; e < nEl; e++ {
		for a := 0; a < nAz; a++ {
			p := at(a, e)
			local := true
			if a > 0 && at(a-1, e) >= p {
				local = false
			}
			if a < nAz-1 && at(a+1, e) > p {
				local = false
			}
			if e > 0 && at(a, e-1) >= p {
				local = false
			}
			if e < nEl-1 && at(a, e+1) > p {
				local = false
			}
			cands = append(cands, cand{idx: e*nAz + a, power: p, local: local})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].local != cands[j].local {
			return cands[i].local
		}
		if cands[i].power != cands[j].power {
			return cands[i].power > cands[j].power
		}
		return cands[i].idx < cands[j].idx
	})
	out := make([]antenna.Direction, 0, k)
	for _, c := range cands {
		if len(out) == k {
			break
		}
		out = append(out, spec[c.idx].Dir)
	}
	return out
}
