package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ManifestSchema identifies the run-manifest JSON layout; bump the
// suffix on breaking changes so downstream tooling can dispatch.
const ManifestSchema = "mmwalign/run-manifest/v1"

// Manifest is the machine-readable audit record of one figure run,
// written next to each CSV by cmd/figgen and exposed on the public
// FigureResult. Two manifests for the same (figure, seed, config) are
// diffable: everything except timings, version, and created_at is
// deterministic.
type Manifest struct {
	// Schema is ManifestSchema.
	Schema string `json:"schema"`
	// Figure is the figure identifier ("fig5".."fig8").
	Figure string `json:"figure"`
	// Title restates what the figure plots.
	Title string `json:"title,omitempty"`
	// Seed is the run's random seed — with Config, it fully determines
	// the CSV.
	Seed int64 `json:"seed"`
	// GoVersion is the toolchain that produced the run.
	GoVersion string `json:"go_version"`
	// Version identifies the source tree (git describe or module build
	// info); filled by the CLI, empty for library runs.
	Version string `json:"version,omitempty"`
	// CreatedAt is the RFC 3339 UTC timestamp; filled by the CLI.
	CreatedAt string `json:"created_at,omitempty"`
	// Config is the fully defaulted experiment.Config as JSON.
	Config json.RawMessage `json:"config,omitempty"`
	// Instrumented reports whether a recorder was installed: phase
	// timings, counters and solver aggregates are only populated when
	// true.
	Instrumented bool `json:"instrumented"`
	// ElapsedNS is the figure's wall-clock generation time.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Phases holds the per-phase wall-clock breakdown (sorted by name).
	Phases []PhaseStat `json:"phases,omitempty"`
	// Counters holds the event counters (measurements, fallbacks, …).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Solver aggregates covest.Stats across every estimation of the run.
	Solver SolverStats `json:"solver"`
	// Resume records checkpoint/resume evidence: how much of the run
	// was satisfied from a journal instead of recomputed. Nil when the
	// run carried no journal.
	Resume *ResumeSummary `json:"resume,omitempty"`
	// Retries records the per-cell retry engine's work. Nil when
	// retries were not configured.
	Retries *RetrySummary `json:"retries,omitempty"`
	// Failures summarizes drops excluded under the error budget; nil
	// when every drop succeeded.
	Failures *FailureSummary `json:"failures,omitempty"`
	// Shard records multi-process sharded-sweep evidence — which worker
	// computed what, how many cells were stolen from dead workers, and
	// how many duplicates the merge resolved. Nil for single-process
	// runs.
	Shard *ShardSummary `json:"shard,omitempty"`
}

// ShardSummary is the manifest evidence of a sharded (multi-process)
// sweep: the merged figure's bytes are identical to a single-process
// run — that is the shard engine's contract — so this summary is what
// distinguishes them, and what the chaos CI greps to prove a kill
// actually exercised the steal path.
type ShardSummary struct {
	// Dir is the shared shard directory the workers coordinated through.
	Dir string `json:"dir,omitempty"`
	// TotalCells is drops × schemes for the run.
	TotalCells int `json:"total_cells"`
	// MergedCells is how many distinct cells the merge recovered from
	// the worker journals (equals TotalCells for a complete run).
	MergedCells int `json:"merged_cells"`
	// DuplicateCells counts cells recorded by more than one worker — a
	// lease stolen after the original owner had already journaled, or a
	// kill window between journal fsync and done-marking. Duplicates
	// resolve last-write-wins and are byte-identical (cells are pure in
	// seed, drop, scheme).
	DuplicateCells int `json:"duplicate_cells"`
	// StolenCells counts lease steals: cells a worker reclaimed from a
	// stale (dead or wedged) owner. Nonzero after a mid-sweep kill.
	StolenCells int `json:"stolen_cells"`
	// Workers lists per-worker evidence, sorted by worker ID.
	Workers []ShardWorker `json:"workers,omitempty"`
}

// ShardWorker is one worker's contribution to a sharded sweep.
type ShardWorker struct {
	// Worker is the worker ID (journal and summary file basename).
	Worker string `json:"worker"`
	// JournaledCells is how many distinct cells the worker's journal
	// holds.
	JournaledCells int `json:"journaled_cells"`
	// ComputedCells and StolenCells are the worker's self-reported
	// tallies (zero when the worker died before writing its summary).
	ComputedCells int `json:"computed_cells"`
	StolenCells   int `json:"stolen_cells"`
	// FailedCells counts cells the worker attempted and could not
	// complete.
	FailedCells int `json:"failed_cells"`
	// Reported is false for a worker that never wrote its final summary
	// — the signature of a killed worker.
	Reported bool `json:"reported"`
}

// ResumeSummary is the manifest evidence of a checkpointed run: with
// it, an auditor can tell a fresh figure from one stitched across
// interruptions (the bytes are identical either way — that is the
// journal's contract).
type ResumeSummary struct {
	// Journal is the checkpoint file path.
	Journal string `json:"journal,omitempty"`
	// ConfigHash is the canonical config hash the journal was matched
	// against before any cell was skipped.
	ConfigHash string `json:"config_hash,omitempty"`
	// SkippedCells is how many (drop, scheme) cells were satisfied from
	// the journal; RecordedCells how many this run appended.
	SkippedCells  int `json:"skipped_cells"`
	RecordedCells int `json:"recorded_cells"`
	// TotalCells is drops × schemes for the run.
	TotalCells int `json:"total_cells"`
}

// RetrySummary is the manifest evidence of the per-cell retry engine.
type RetrySummary struct {
	// MaxRetries is the configured per-cell retry budget.
	MaxRetries int `json:"max_retries"`
	// Attempts is the number of re-runs performed (beyond each cell's
	// first attempt).
	Attempts int64 `json:"attempts"`
	// RecoveredCells counts cells that failed at least once and then
	// succeeded — transient failures the retry engine absorbed before
	// they could consume the MaxFailedDrops budget.
	RecoveredCells int64 `json:"recovered_cells"`
	// ExhaustedCells counts cells that burned every retry and still
	// failed — permanent failures.
	ExhaustedCells int64 `json:"exhausted_cells"`
}

// FailureSummary is the manifest form of experiment.FailureReport.
type FailureSummary struct {
	// FailedDrops is the number of distinct excluded drops.
	FailedDrops int `json:"failed_drops"`
	// TotalDrops is the configured drop count.
	TotalDrops int `json:"total_drops"`
	// Cells lists each failed (drop, scheme) cell with its error text.
	Cells []FailureCell `json:"cells,omitempty"`
}

// FailureCell is one failed (drop, scheme) cell.
type FailureCell struct {
	Drop   int    `json:"drop"`
	Scheme string `json:"scheme"`
	// Attempts is how many times the cell ran before the failure stuck
	// (1 + retries burned; 0 in manifests from engines without the
	// retry layer).
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error"`
}

// Validate checks the manifest's structural invariants — the contract
// the CI smoke step and the figgen self-check enforce before a
// manifest is trusted.
func (m *Manifest) Validate() error {
	if m == nil {
		return fmt.Errorf("obs: nil manifest")
	}
	if m.Schema != ManifestSchema {
		return fmt.Errorf("obs: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Figure == "" {
		return fmt.Errorf("obs: manifest has no figure identifier")
	}
	if m.GoVersion == "" {
		return fmt.Errorf("obs: manifest has no go_version")
	}
	if m.ElapsedNS < 0 {
		return fmt.Errorf("obs: negative elapsed_ns %d", m.ElapsedNS)
	}
	if len(m.Config) > 0 && !json.Valid(m.Config) {
		return fmt.Errorf("obs: manifest config is not valid JSON")
	}
	if m.Instrumented && len(m.Phases) == 0 && (m.Resume == nil || m.Resume.SkippedCells == 0) {
		// Phases are recorded per computed cell, so a run whose journal
		// replayed every cell (a complete resume, or a figure generated
		// from a fully merged shard directory) legitimately has none.
		return fmt.Errorf("obs: instrumented manifest has no phase timings and no replayed cells")
	}
	for _, p := range m.Phases {
		if p.Name == "" {
			return fmt.Errorf("obs: manifest phase with empty name")
		}
		if p.Count < 0 || p.TotalNS < 0 {
			return fmt.Errorf("obs: phase %q has negative count/time (%d, %d)", p.Name, p.Count, p.TotalNS)
		}
	}
	for name, v := range m.Counters {
		if v < 0 {
			return fmt.Errorf("obs: counter %q is negative (%d)", name, v)
		}
	}
	s := m.Solver
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"estimations", s.Estimations}, {"iters", s.Iters},
		{"eigen_decomps", s.EigenDecomps}, {"objective_evals", s.ObjectiveEvals},
		{"gradient_evals", s.GradientEvals}, {"backtracks", s.Backtracks},
		{"restarts", s.Restarts}, {"recovered", s.Recovered}, {"degraded", s.Degraded},
	} {
		if c.v < 0 {
			return fmt.Errorf("obs: solver aggregate %s is negative (%d)", c.name, c.v)
		}
	}
	if r := m.Resume; r != nil {
		if r.SkippedCells < 0 || r.RecordedCells < 0 || r.TotalCells <= 0 {
			return fmt.Errorf("obs: resume summary has negative or empty counts (%+v)", r)
		}
		if r.SkippedCells > r.TotalCells {
			return fmt.Errorf("obs: resume summary skipped %d of %d cells", r.SkippedCells, r.TotalCells)
		}
		if r.RecordedCells > r.TotalCells {
			return fmt.Errorf("obs: resume summary recorded %d of %d cells", r.RecordedCells, r.TotalCells)
		}
	}
	if rt := m.Retries; rt != nil {
		if rt.MaxRetries < 0 || rt.Attempts < 0 || rt.RecoveredCells < 0 || rt.ExhaustedCells < 0 {
			return fmt.Errorf("obs: retry summary has negative counts (%+v)", rt)
		}
		if rt.RecoveredCells+rt.ExhaustedCells > rt.Attempts {
			return fmt.Errorf("obs: retry summary outcomes (%d recovered + %d exhausted) exceed %d attempts",
				rt.RecoveredCells, rt.ExhaustedCells, rt.Attempts)
		}
	}
	if f := m.Failures; f != nil {
		if f.FailedDrops <= 0 || f.FailedDrops > f.TotalDrops {
			return fmt.Errorf("obs: failure summary %d of %d drops is inconsistent", f.FailedDrops, f.TotalDrops)
		}
		for _, c := range f.Cells {
			if c.Scheme == "" || c.Error == "" {
				return fmt.Errorf("obs: failure cell (drop %d) missing scheme or error", c.Drop)
			}
		}
	}
	if sh := m.Shard; sh != nil {
		if sh.TotalCells <= 0 {
			return fmt.Errorf("obs: shard summary has no cells (%+v)", sh)
		}
		if sh.MergedCells < 0 || sh.MergedCells > sh.TotalCells {
			return fmt.Errorf("obs: shard summary merged %d of %d cells", sh.MergedCells, sh.TotalCells)
		}
		if sh.DuplicateCells < 0 || sh.StolenCells < 0 {
			return fmt.Errorf("obs: shard summary has negative steal/duplicate counts (%+v)", sh)
		}
		journaled := 0
		for _, w := range sh.Workers {
			if w.Worker == "" {
				return fmt.Errorf("obs: shard worker with empty ID")
			}
			if w.JournaledCells < 0 || w.ComputedCells < 0 || w.StolenCells < 0 || w.FailedCells < 0 {
				return fmt.Errorf("obs: shard worker %s has negative counts (%+v)", w.Worker, w)
			}
			journaled += w.JournaledCells
		}
		if len(sh.Workers) > 0 && journaled != sh.MergedCells+sh.DuplicateCells {
			return fmt.Errorf("obs: shard summary journaled cells (%d) do not account for merged %d + duplicates %d",
				journaled, sh.MergedCells, sh.DuplicateCells)
		}
	}
	return nil
}

// WriteJSON validates the manifest and emits it as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ParseManifest decodes and validates a manifest document.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
