// Package obs is the observability layer of the reproduction: phase
// timers, counters, solver-statistic aggregation, live progress
// reporting, and the machine-readable run manifest that makes every
// regenerated figure auditable.
//
// The layer is strictly passive — it observes wall-clock time and
// counters but never feeds anything back into the numerics, so figure
// CSVs are byte-identical with instrumentation enabled or disabled
// (enforced by test). It is also nil-tolerant end to end: every method
// on a nil *Recorder, nil *Phase, nil *Counter, or zero Span is a
// no-op, so instrumented code paths carry no conditionals and near-zero
// overhead when no recorder is installed.
//
// A Recorder travels via context (Into/From), following the same
// cooperative pattern as cancellation: the experiment engine, the
// alignment strategies, and the covariance-solver call sites all pick
// it up from the context they already receive.
package obs

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase accumulates wall-clock time and an invocation count for one
// named phase of a run (e.g. "channel", "sounding", "estimation").
// Accumulation is atomic, so concurrent drop workers share one Phase.
type Phase struct {
	name  string
	ns    atomic.Int64
	count atomic.Int64
}

// Start opens a span on the phase. Safe on a nil Phase (returns a
// no-op span).
func (p *Phase) Start() Span {
	if p == nil {
		return Span{}
	}
	return Span{p: p, t0: time.Now()}
}

// AddNS folds an externally measured duration into the phase.
func (p *Phase) AddNS(ns int64) {
	if p == nil {
		return
	}
	p.ns.Add(ns)
	p.count.Add(1)
}

// Span is one timed interval of a phase; End folds the elapsed time
// into the parent phase. The zero Span is a no-op.
type Span struct {
	p  *Phase
	t0 time.Time
}

// End closes the span, accumulating its duration.
func (s Span) End() {
	if s.p == nil {
		return
	}
	s.p.AddNS(time.Since(s.t0).Nanoseconds())
}

// Counter is a named atomic event counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Safe on a nil Counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// SolveSample is one covariance-solve's worth of covest.Stats, already
// flattened so this package does not depend on the solver.
type SolveSample struct {
	// Iters, EigenDecomps, ObjectiveEvals, GradientEvals and Backtracks
	// mirror the covest.Stats counters of one Estimate call.
	Iters, EigenDecomps, ObjectiveEvals, GradientEvals, Backtracks int
	// Restarts is the number of divergence-forced momentum restarts.
	Restarts int
	// Rank and SubspaceDim describe the returned estimate.
	Rank, SubspaceDim int
	// Recovered marks a solve that fell back to a finite iterate after
	// a guardrail fired; Degraded marks any guardrail termination.
	Recovered, Degraded bool
}

// SolverStats aggregates every SolveSample of a run — the
// solver-side half of the run manifest.
type SolverStats struct {
	// Estimations is the number of covariance solves.
	Estimations int64 `json:"estimations"`
	// Iters is the total number of proximal steps across all solves.
	Iters int64 `json:"iters"`
	// EigenDecomps, ObjectiveEvals, GradientEvals and Backtracks total
	// the per-solve cost counters.
	EigenDecomps   int64 `json:"eigen_decomps"`
	ObjectiveEvals int64 `json:"objective_evals"`
	GradientEvals  int64 `json:"gradient_evals"`
	Backtracks     int64 `json:"backtracks"`
	// Restarts totals divergence-forced momentum restarts.
	Restarts int64 `json:"restarts"`
	// Recovered and Degraded count solves that ended through a
	// guardrail (recovered to a finite iterate / any degraded stop).
	Recovered int64 `json:"recovered"`
	Degraded  int64 `json:"degraded"`
	// MaxRank and MaxSubspaceDim are the largest estimate rank and
	// working-subspace dimension seen.
	MaxRank        int `json:"max_rank"`
	MaxSubspaceDim int `json:"max_subspace_dim"`
}

// PhaseStat is the snapshot of one phase for reports and manifests.
type PhaseStat struct {
	// Name is the phase name.
	Name string `json:"name"`
	// Count is the number of spans folded in.
	Count int64 `json:"count"`
	// TotalNS is the accumulated wall-clock time in nanoseconds.
	TotalNS int64 `json:"total_ns"`
}

// Progress is one live progress event of a figure run.
type Progress struct {
	// Done and Total count (drop, scheme) cells.
	Done, Total int64
	// Failed counts cells that ended in error so far.
	Failed int64
	// Elapsed is the wall-clock time since StartRun.
	Elapsed time.Duration
}

// ETA extrapolates the remaining wall-clock time from the completion
// fraction (0 when nothing has completed yet). The extrapolation is
// computed in float64 and clamped to MaxInt64: a day-scale Elapsed with
// one cell done out of millions can exceed what time.Duration holds,
// and a float→int64 conversion that overflows is implementation-defined
// in Go (historically surfacing as a negative ETA).
func (p Progress) ETA() time.Duration {
	if p.Done <= 0 || p.Total <= p.Done {
		return 0
	}
	per := float64(p.Elapsed) / float64(p.Done)
	eta := per * float64(p.Total-p.Done)
	if eta >= float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(eta)
}

// Recorder collects phases, counters, solver aggregates and progress
// for one run. All methods are safe for concurrent use and safe on a
// nil receiver (no-ops), which is how "instrumentation disabled" is
// expressed: code records unconditionally, a nil recorder makes it
// free.
type Recorder struct {
	mu       sync.Mutex
	start    time.Time
	phases   map[string]*Phase
	counters map[string]*Counter
	solver   SolverStats

	total, done, failed atomic.Int64

	progressMu sync.Mutex
	progress   func(Progress)
}

// New creates an empty recorder; the run clock starts now and is reset
// by StartRun.
func New() *Recorder {
	return &Recorder{
		start:    time.Now(),
		phases:   make(map[string]*Phase),
		counters: make(map[string]*Counter),
	}
}

// Phase returns the named phase, creating it on first use. Returns nil
// (a valid no-op phase) on a nil recorder.
func (r *Recorder) Phase(name string) *Phase {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.phases[name]
	if !ok {
		p = &Phase{name: name}
		r.phases[name] = p
	}
	return p
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op counter) on a nil recorder.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// AddSolve folds one covariance-solve's statistics into the aggregate.
func (r *Recorder) AddSolve(s SolveSample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := &r.solver
	agg.Estimations++
	agg.Iters += int64(s.Iters)
	agg.EigenDecomps += int64(s.EigenDecomps)
	agg.ObjectiveEvals += int64(s.ObjectiveEvals)
	agg.GradientEvals += int64(s.GradientEvals)
	agg.Backtracks += int64(s.Backtracks)
	agg.Restarts += int64(s.Restarts)
	if s.Recovered {
		agg.Recovered++
	}
	if s.Degraded {
		agg.Degraded++
	}
	if s.Rank > agg.MaxRank {
		agg.MaxRank = s.Rank
	}
	if s.SubspaceDim > agg.MaxSubspaceDim {
		agg.MaxSubspaceDim = s.SubspaceDim
	}
}

// SetProgress installs the live progress sink (may be nil to remove).
// The sink is called from worker goroutines and must be safe for
// concurrent use; ProgressPrinter returns a suitable one.
func (r *Recorder) SetProgress(fn func(Progress)) {
	if r == nil {
		return
	}
	r.progressMu.Lock()
	r.progress = fn
	r.progressMu.Unlock()
}

// StartRun resets the run clock and announces the total cell count of
// the upcoming run ((drops × schemes) for a figure).
func (r *Recorder) StartRun(totalCells int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.start = time.Now()
	r.mu.Unlock()
	r.total.Store(int64(totalCells))
	r.done.Store(0)
	r.failed.Store(0)
}

// CellDone records the completion of one (drop, scheme) cell and emits
// a progress event to the installed sink.
func (r *Recorder) CellDone(failed bool) {
	if r == nil {
		return
	}
	done := r.done.Add(1)
	if failed {
		r.failed.Add(1)
	}
	r.progressMu.Lock()
	fn := r.progress
	r.progressMu.Unlock()
	if fn == nil {
		return
	}
	r.mu.Lock()
	start := r.start
	r.mu.Unlock()
	fn(Progress{
		Done:    done,
		Total:   r.total.Load(),
		Failed:  r.failed.Load(),
		Elapsed: time.Since(start),
	})
}

// Snapshot captures the recorder's current state: elapsed run time,
// per-phase timings (sorted by name for deterministic output),
// counters, and the solver aggregate. Safe on a nil recorder (zero
// snapshot) and safe to call while the run is still in flight.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		ElapsedNS: time.Since(r.start).Nanoseconds(),
		Solver:    r.solver,
	}
	for name, p := range r.phases {
		snap.Phases = append(snap.Phases, PhaseStat{Name: name, Count: p.count.Load(), TotalNS: p.ns.Load()})
	}
	sort.Slice(snap.Phases, func(i, j int) bool { return snap.Phases[i].Name < snap.Phases[j].Name })
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	return snap
}

// Snapshot is a point-in-time copy of a Recorder's state — the
// instrumentation half of a run manifest.
type Snapshot struct {
	// ElapsedNS is the wall-clock time since StartRun in nanoseconds.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Phases holds the per-phase timings, sorted by name.
	Phases []PhaseStat `json:"phases,omitempty"`
	// Counters holds every event counter.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Solver is the aggregated covariance-solver cost.
	Solver SolverStats `json:"solver"`
}

// WriteText renders the snapshot as an expvar-style summary for
// terminal inspection (counters and phases sorted by name).
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "elapsed: %v\n", time.Duration(s.ElapsedNS)); err != nil {
		return err
	}
	for _, p := range s.Phases {
		avg := time.Duration(0)
		if p.Count > 0 {
			avg = time.Duration(p.TotalNS / p.Count)
		}
		if _, err := fmt.Fprintf(w, "phase %-12s %8d spans  total %12v  avg %10v\n",
			p.Name, p.Count, time.Duration(p.TotalNS), avg); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "counter %-19s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	if s.Solver.Estimations > 0 {
		if _, err := fmt.Fprintf(w, "solver: %d estimations, %d iters, %d eigendecomps, %d backtracks, %d recovered\n",
			s.Solver.Estimations, s.Solver.Iters, s.Solver.EigenDecomps, s.Solver.Backtracks, s.Solver.Recovered); err != nil {
			return err
		}
	}
	return nil
}

// ProgressPrinter returns a concurrency-safe progress sink that writes
// one-line updates ("label: 37/300 cells (12%), 1 failed, 4.0s
// elapsed, eta 28s") to w, throttled to at most one line per
// minInterval except for the final event.
func ProgressPrinter(w io.Writer, label string, minInterval time.Duration) func(Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if p.Done < p.Total && now.Sub(last) < minInterval {
			return
		}
		last = now
		pct := 0.0
		if p.Total > 0 {
			pct = 100 * float64(p.Done) / float64(p.Total)
		}
		line := fmt.Sprintf("%s: %d/%d cells (%.0f%%)", label, p.Done, p.Total, pct)
		if p.Failed > 0 {
			line += fmt.Sprintf(", %d failed", p.Failed)
		}
		line += fmt.Sprintf(", %v elapsed", p.Elapsed.Round(100*time.Millisecond))
		if eta := p.ETA(); eta > 0 {
			line += fmt.Sprintf(", eta %v", eta.Round(time.Second))
		}
		fmt.Fprintln(w, line)
	}
}

// published guards expvar registration, which panics on duplicates.
// Each name maps to an atomic pointer holding the recorder currently
// backing the expvar; re-publishing swaps the pointer instead of
// re-registering.
var published sync.Map

// Publish registers the recorder's live snapshot under the given expvar
// name. expvar's registry is append-only, so the name is registered at
// most once; a later Publish under the same name rebinds the expvar to
// the new recorder (last publish wins). Rebinding matters for
// long-running processes that construct more than one recorder per name
// — a serving process recycled across tests, or a server rebuilt after
// a config reload — where pinning the first recorder forever would
// freeze the exported stats.
func Publish(name string, r *Recorder) {
	if r == nil {
		return
	}
	slot, loaded := published.LoadOrStore(name, &atomic.Pointer[Recorder]{})
	ptr := slot.(*atomic.Pointer[Recorder])
	ptr.Store(r)
	if loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return ptr.Load().Snapshot() }))
}

// ctxKey is the private context key for the recorder.
type ctxKey struct{}

// Into returns a context carrying the recorder (ctx unchanged when r is
// nil).
func Into(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the recorder from the context, or nil when none is
// installed — the nil recorder being the free, disabled instrumentation
// path.
func From(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
