package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsFree(t *testing.T) {
	// Every instrumentation call must be a no-op on the disabled path:
	// nil recorder, nil phase, nil counter, zero span.
	var r *Recorder
	p := r.Phase("estimation")
	if p != nil {
		t.Fatalf("nil recorder returned non-nil phase %v", p)
	}
	sp := p.Start()
	sp.End()
	p.AddNS(5)
	c := r.Counter("events")
	c.Add(3)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	r.AddSolve(SolveSample{Iters: 10})
	r.StartRun(100)
	r.CellDone(true)
	r.SetProgress(func(Progress) { t.Error("nil recorder emitted progress") })
	if snap := r.Snapshot(); len(snap.Phases) != 0 || snap.Counters != nil {
		t.Errorf("nil recorder snapshot non-empty: %+v", snap)
	}
}

func TestRecorderConcurrentAccumulation(t *testing.T) {
	r := New()
	r.StartRun(64)
	var events []Progress
	var mu sync.Mutex
	r.SetProgress(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			phase := r.Phase("sounding")
			cnt := r.Counter("measurements")
			for i := 0; i < 8; i++ {
				sp := phase.Start()
				cnt.Add(1)
				sp.End()
				r.AddSolve(SolveSample{Iters: 2, EigenDecomps: 1, Rank: g + 1, Recovered: i == 0})
				r.CellDone(i%4 == 0)
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot()
	if snap.Counters["measurements"] != 64 {
		t.Errorf("measurements = %d, want 64", snap.Counters["measurements"])
	}
	if len(snap.Phases) != 1 || snap.Phases[0].Name != "sounding" || snap.Phases[0].Count != 64 {
		t.Errorf("phases = %+v, want one sounding phase with 64 spans", snap.Phases)
	}
	if snap.Solver.Estimations != 64 || snap.Solver.Iters != 128 || snap.Solver.Recovered != 8 {
		t.Errorf("solver aggregate = %+v", snap.Solver)
	}
	if snap.Solver.MaxRank != 8 {
		t.Errorf("MaxRank = %d, want 8", snap.Solver.MaxRank)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 64 {
		t.Fatalf("progress events = %d, want 64", len(events))
	}
	final := events[len(events)-1]
	for _, e := range events {
		if e.Done > final.Done {
			final = e
		}
	}
	if final.Done != 64 || final.Total != 64 || final.Failed != 16 {
		t.Errorf("final progress = %+v, want 64/64 with 16 failed", final)
	}
}

func TestProgressETA(t *testing.T) {
	p := Progress{Done: 25, Total: 100, Elapsed: 10 * time.Second}
	if eta := p.ETA(); eta != 30*time.Second {
		t.Errorf("ETA = %v, want 30s", eta)
	}
	if eta := (Progress{Done: 0, Total: 10, Elapsed: time.Second}).ETA(); eta != 0 {
		t.Errorf("ETA with nothing done = %v, want 0", eta)
	}
	if eta := (Progress{Done: 10, Total: 10, Elapsed: time.Second}).ETA(); eta != 0 {
		t.Errorf("ETA when complete = %v, want 0", eta)
	}
}

// TestProgressETAOverflowClamps pins the long-running-sweep regression:
// a day-scale Elapsed with one cell done and a huge remainder used to
// overflow the Duration extrapolation (implementation-defined float→
// int64 conversion, observed as a negative ETA). The clamp must keep
// the estimate at MaxInt64 — "effectively forever", but ordered and
// non-negative.
func TestProgressETAOverflowClamps(t *testing.T) {
	day := 24 * time.Hour
	p := Progress{Done: 1, Total: 1 << 40, Elapsed: day}
	eta := p.ETA()
	if eta < 0 {
		t.Fatalf("ETA overflowed negative: %v", eta)
	}
	if eta != time.Duration(math.MaxInt64) {
		t.Errorf("ETA = %v, want MaxInt64 clamp", eta)
	}
	// Large but representable extrapolations must still be exact: a
	// week-scale run at 10%% done has an in-range ETA.
	p = Progress{Done: 100, Total: 1000, Elapsed: 7 * day}
	if eta := p.ETA(); eta != 63*day {
		t.Errorf("ETA = %v, want %v", eta, 63*day)
	}
}

func TestProgressPrinterThrottlesAndFlushesFinal(t *testing.T) {
	var buf bytes.Buffer
	sink := ProgressPrinter(&buf, "fig5", time.Hour)
	sink(Progress{Done: 1, Total: 4, Elapsed: time.Second})                // first: printed
	sink(Progress{Done: 2, Total: 4, Elapsed: 2 * time.Second})            // throttled
	sink(Progress{Done: 3, Total: 4, Elapsed: 3 * time.Second})            // throttled
	sink(Progress{Done: 4, Total: 4, Failed: 1, Elapsed: 4 * time.Second}) // final: printed
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("printed %d lines, want 2 (first + final):\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], "4/4") || !strings.Contains(lines[1], "1 failed") {
		t.Errorf("final line = %q", lines[1])
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Fatal("empty context carried a recorder")
	}
	if Into(ctx, nil) != ctx {
		t.Error("Into(nil) should return ctx unchanged")
	}
	r := New()
	if got := From(Into(ctx, r)); got != r {
		t.Errorf("From(Into(ctx, r)) = %p, want %p", got, r)
	}
}

func validManifest() *Manifest {
	return &Manifest{
		Schema:       ManifestSchema,
		Figure:       "fig5",
		Seed:         1,
		GoVersion:    "go1.22",
		Config:       json.RawMessage(`{"seed":1}`),
		Instrumented: true,
		ElapsedNS:    12345,
		Phases:       []PhaseStat{{Name: "sounding", Count: 4, TotalNS: 100}},
		Counters:     map[string]int64{"measurements": 4},
		Solver:       SolverStats{Estimations: 2, Iters: 10},
	}
}

func TestManifestValidateAndRoundTrip(t *testing.T) {
	m := validManifest()
	m.Failures = &FailureSummary{FailedDrops: 1, TotalDrops: 3,
		Cells: []FailureCell{{Drop: 2, Scheme: "proposed", Error: "boom", Attempts: 3}}}
	m.Resume = &ResumeSummary{Journal: "fig5.journal", ConfigHash: "abc123",
		SkippedCells: 2, RecordedCells: 4, TotalCells: 6}
	m.Retries = &RetrySummary{MaxRetries: 2, Attempts: 5, RecoveredCells: 3, ExhaustedCells: 1}
	m.Shard = &ShardSummary{Dir: "/tmp/shard", TotalCells: 6, MergedCells: 6, DuplicateCells: 1, StolenCells: 2,
		Workers: []ShardWorker{
			{Worker: "w1", JournaledCells: 4, ComputedCells: 4, StolenCells: 2, Reported: true},
			{Worker: "w2", JournaledCells: 3, ComputedCells: 3, Reported: false},
		}}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ParseManifest(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseManifest: %v", err)
	}
	if back.Figure != "fig5" || back.Counters["measurements"] != 4 ||
		back.Solver.Iters != 10 || back.Failures.FailedDrops != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Resume == nil || back.Resume.SkippedCells != 2 || back.Resume.Journal != "fig5.journal" {
		t.Errorf("resume evidence lost in round trip: %+v", back.Resume)
	}
	if back.Retries == nil || back.Retries.RecoveredCells != 3 || back.Retries.MaxRetries != 2 {
		t.Errorf("retry evidence lost in round trip: %+v", back.Retries)
	}
	if back.Failures.Cells[0].Attempts != 3 {
		t.Errorf("failure cell attempts lost in round trip: %+v", back.Failures.Cells[0])
	}
	if back.Shard == nil || back.Shard.StolenCells != 2 || len(back.Shard.Workers) != 2 ||
		back.Shard.Workers[1].Reported {
		t.Errorf("shard evidence lost in round trip: %+v", back.Shard)
	}
}

func TestManifestValidateRejectsBadDocuments(t *testing.T) {
	cases := map[string]func(*Manifest){
		"wrong schema":               func(m *Manifest) { m.Schema = "nope/v0" },
		"missing figure":             func(m *Manifest) { m.Figure = "" },
		"missing go version":         func(m *Manifest) { m.GoVersion = "" },
		"negative elapsed":           func(m *Manifest) { m.ElapsedNS = -1 },
		"invalid config json":        func(m *Manifest) { m.Config = json.RawMessage(`{`) },
		"instrumented but no phases": func(m *Manifest) { m.Phases = nil },
		"unnamed phase":              func(m *Manifest) { m.Phases[0].Name = "" },
		"negative counter":           func(m *Manifest) { m.Counters["measurements"] = -2 },
		"negative solver":            func(m *Manifest) { m.Solver.Iters = -1 },
		"failures exceed total": func(m *Manifest) {
			m.Failures = &FailureSummary{FailedDrops: 5, TotalDrops: 3}
		},
		"failure cell without error": func(m *Manifest) {
			m.Failures = &FailureSummary{FailedDrops: 1, TotalDrops: 3,
				Cells: []FailureCell{{Drop: 0, Scheme: "scan"}}}
		},
		"resume with zero total": func(m *Manifest) {
			m.Resume = &ResumeSummary{SkippedCells: 1}
		},
		"resume skipped exceeds total": func(m *Manifest) {
			m.Resume = &ResumeSummary{SkippedCells: 7, TotalCells: 6}
		},
		"resume recorded exceeds total": func(m *Manifest) {
			m.Resume = &ResumeSummary{RecordedCells: 7, TotalCells: 6}
		},
		"negative resume counts": func(m *Manifest) {
			m.Resume = &ResumeSummary{SkippedCells: -1, TotalCells: 6}
		},
		"negative retry counts": func(m *Manifest) {
			m.Retries = &RetrySummary{Attempts: -1}
		},
		"retry outcomes exceed attempts": func(m *Manifest) {
			m.Retries = &RetrySummary{Attempts: 2, RecoveredCells: 2, ExhaustedCells: 1}
		},
		"shard with no cells": func(m *Manifest) {
			m.Shard = &ShardSummary{}
		},
		"shard merged exceeds total": func(m *Manifest) {
			m.Shard = &ShardSummary{TotalCells: 4, MergedCells: 5}
		},
		"shard negative steals": func(m *Manifest) {
			m.Shard = &ShardSummary{TotalCells: 4, MergedCells: 4, StolenCells: -1}
		},
		"shard worker without id": func(m *Manifest) {
			m.Shard = &ShardSummary{TotalCells: 4, MergedCells: 4,
				Workers: []ShardWorker{{JournaledCells: 4}}}
		},
		"shard journaled cells unaccounted": func(m *Manifest) {
			m.Shard = &ShardSummary{TotalCells: 4, MergedCells: 4, DuplicateCells: 0,
				Workers: []ShardWorker{{Worker: "w1", JournaledCells: 5, Reported: true}}}
		},
	}
	for name, mutate := range cases {
		m := validManifest()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid manifest", name)
		}
	}
	if err := validManifest().Validate(); err != nil {
		t.Errorf("baseline manifest should validate: %v", err)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := New()
	r.Phase("estimation").AddNS(1000)
	r.Counter("measurements").Add(7)
	r.AddSolve(SolveSample{Iters: 3, EigenDecomps: 4})
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"estimation", "measurements", "1 estimations", "3 iters"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
