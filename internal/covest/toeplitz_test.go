package covest

import (
	"math/cmplx"
	"testing"

	"mmwalign/internal/antenna"
	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// ulaCovariance builds the (Toeplitz) covariance of a ULA with planted
// arrival angles.
func ulaCovariance(n int, azs []float64, power float64) *cmat.Matrix {
	ar := antenna.NewULA(n)
	q := cmat.New(n, n)
	for _, az := range azs {
		a := ar.Steering(antenna.Direction{Az: az})
		q.AddInPlace(complex(power, 0), a.Outer(a))
	}
	return q.Hermitianize()
}

func isToeplitz(m *cmat.Matrix, tol float64) bool {
	n := m.Rows()
	for off := 0; off < n; off++ {
		ref := m.At(0, off)
		for i := 1; i+off < n; i++ {
			if cmplx.Abs(m.At(i, i+off)-ref) > tol {
				return false
			}
		}
	}
	return true
}

func TestULACovarianceIsToeplitz(t *testing.T) {
	// Sanity for the premise: ULA covariances are Toeplitz.
	q := ulaCovariance(8, []float64{0.3, -0.7}, 1)
	if !isToeplitz(q, 1e-10) {
		t.Fatal("ULA covariance is not Toeplitz; premise broken")
	}
}

func TestToeplitzAverageFixedPoint(t *testing.T) {
	q := ulaCovariance(8, []float64{0.2}, 2)
	got, err := ToeplitzAverage(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(q, 1e-10) {
		t.Error("Toeplitz input was modified by the projection")
	}
}

func TestToeplitzAverageProjects(t *testing.T) {
	src := rng.New(500)
	n := 6
	noisy := cmat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			noisy.Set(i, j, src.ComplexNormal(1))
		}
	}
	got, err := ToeplitzAverage(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !isToeplitz(got, 1e-12) {
		t.Error("projection output is not Toeplitz")
	}
	if !got.IsHermitian(1e-12) {
		t.Error("projection output is not Hermitian")
	}
	// Trace is preserved (main diagonal averaging keeps the mean).
	if diff := real(got.Trace()) - real(noisy.Hermitianize().Trace()); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("trace changed by %g", diff)
	}
}

func TestToeplitzAverageRejectsNonSquare(t *testing.T) {
	if _, err := ToeplitzAverage(cmat.New(2, 3)); err == nil {
		t.Error("non-square input accepted")
	}
}

func TestProjectToeplitzPSDDenoises(t *testing.T) {
	// Perturb a true Toeplitz PSD covariance with Hermitian noise; the
	// structured projection must land closer to the truth than the raw
	// perturbed matrix.
	src := rng.New(501)
	n := 12
	truth := ulaCovariance(n, []float64{0.4, -0.3}, 3)
	noisy := truth.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			noisy.AddAt(i, j, src.ComplexNormal(0.3))
		}
	}
	noisy = noisy.Hermitianize()

	proj, err := ProjectToeplitzPSD(noisy, 5)
	if err != nil {
		t.Fatal(err)
	}
	before := noisy.Sub(truth).FrobeniusNorm()
	after := proj.Sub(truth).FrobeniusNorm()
	if after >= before {
		t.Errorf("projection did not denoise: %g -> %g", before, after)
	}
	// Result must be PSD.
	eig, err := cmat.EigHermitian(proj)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eig.Values {
		if v < -1e-9 {
			t.Fatalf("negative eigenvalue %g", v)
		}
	}
}

func TestProjectToeplitzPSDRoundsClamped(t *testing.T) {
	q := ulaCovariance(6, []float64{0.1}, 1)
	if _, err := ProjectToeplitzPSD(q, 0); err != nil {
		t.Fatal(err)
	}
}
