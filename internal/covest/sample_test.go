package covest

import (
	"errors"
	"math"
	"testing"

	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// synthSnapshots draws y = √γ·h + n with h ~ CN(0, Q).
func synthSnapshots(src *rng.Source, q *cmat.Matrix, gamma float64, k int) []cmat.Vector {
	n := q.Rows()
	sqrtQ, err := cmat.PSDSqrt(q)
	if err != nil {
		panic(err)
	}
	ys := make([]cmat.Vector, k)
	for i := range ys {
		w := cmat.Vector(src.ComplexNormalVec(n, 1))
		h := sqrtQ.MulVec(w)
		y := h.Scale(complex(math.Sqrt(gamma), 0))
		for j := range y {
			y[j] += src.ComplexNormal(1)
		}
		ys[i] = y
	}
	return ys
}

func TestSampleCovarianceValidation(t *testing.T) {
	if _, err := SampleCovariance(nil, 1, 0); !errors.Is(err, ErrNoObservations) {
		t.Errorf("err = %v", err)
	}
	y := []cmat.Vector{cmat.NewVector(4)}
	if _, err := SampleCovariance(y, 0, 0); err == nil {
		t.Error("zero gamma accepted")
	}
	if _, err := SampleCovariance(y, 1, 2); err == nil {
		t.Error("shrinkage > 1 accepted")
	}
	mixed := []cmat.Vector{cmat.NewVector(4), cmat.NewVector(5)}
	if _, err := SampleCovariance(mixed, 1, 0); err == nil {
		t.Error("mixed dimensions accepted")
	}
}

func TestSampleCovarianceConvergesToTruth(t *testing.T) {
	src := rng.New(400)
	n := 8
	v := cmat.Vector(src.ComplexNormalVec(n, 1)).Normalize()
	truth := v.Outer(v).Scale(complex(float64(n), 0)).Hermitianize()
	gamma := 2.0
	ys := synthSnapshots(src, truth, gamma, 3000)
	got, err := SampleCovariance(ys, gamma, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel := got.Sub(truth).FrobeniusNorm() / truth.FrobeniusNorm()
	if rel > 0.15 {
		t.Errorf("relative error %g with 3000 snapshots", rel)
	}
}

func TestSampleCovariancePSDHermitian(t *testing.T) {
	src := rng.New(401)
	n := 6
	truth := cmat.Identity(n)
	ys := synthSnapshots(src, truth, 1, 5)
	for _, alpha := range []float64{0, 0.3, 1} {
		got, err := SampleCovariance(ys, 1, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !got.IsHermitian(1e-10) {
			t.Fatalf("alpha=%g: not Hermitian", alpha)
		}
		eig, err := cmat.EigHermitian(got)
		if err != nil {
			t.Fatal(err)
		}
		for _, lam := range eig.Values {
			if lam < -1e-9 {
				t.Fatalf("alpha=%g: negative eigenvalue %g", alpha, lam)
			}
		}
	}
}

func TestSampleCovarianceShrinkagePreservesTrace(t *testing.T) {
	src := rng.New(402)
	n := 6
	v := cmat.Vector(src.ComplexNormalVec(n, 1)).Normalize()
	truth := v.Outer(v).Scale(complex(float64(n), 0)).Hermitianize()
	ys := synthSnapshots(src, truth, 1, 50)
	raw, err := SampleCovariance(ys, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := SampleCovariance(ys, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	trRaw, trShrunk := real(raw.Trace()), real(shrunk.Trace())
	if math.Abs(trRaw-trShrunk) > 1e-9*(1+trRaw) {
		t.Errorf("shrinkage changed trace: %g -> %g", trRaw, trShrunk)
	}
	// Full shrinkage is exactly the scaled identity.
	iso, err := SampleCovariance(ys, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := cmat.Identity(n).Scale(complex(trRaw/float64(n), 0))
	if !iso.ApproxEqual(want, 1e-9*(1+trRaw)) {
		t.Error("alpha=1 is not the scaled identity")
	}
}

func TestSampleCovarianceIdentifiesDirectionFewSnapshots(t *testing.T) {
	// The digital receiver's entire advantage: even a handful of vector
	// snapshots pins the dominant direction.
	src := rng.New(403)
	n := 16
	q, beams, target := rank1Fixture(n)
	ys := synthSnapshots(src, q, 1, 4)
	got, err := SampleCovariance(ys, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	best, bestVal := -1, math.Inf(-1)
	for i, v := range beams {
		if g := got.QuadForm(v); g > bestVal {
			best, bestVal = i, g
		}
	}
	if best != target {
		t.Errorf("best beam %d, want %d", best, target)
	}
}
