package covest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// quickConfig pins the property tests' input stream: testing/quick is
// time-seeded by default, and the SVT residual property is input-
// sensitive (a hard sampling pattern can leave the 200-iteration budget
// short of the zero-matrix residual), which made the suite flaky.
func quickConfig(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(11))}
}

// TestEstimatePSDClosureProperty: for arbitrary (finite, non-negative)
// energies and arbitrary unit beams, the estimator must always return a
// Hermitian PSD matrix and never error — a closure property the
// alignment loop depends on for robustness against adversarial or
// corrupted measurement streams.
func TestEstimatePSDClosureProperty(t *testing.T) {
	const n = 6
	est, err := NewEstimator(n, Options{Gamma: 1, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, energiesRaw []float64) bool {
		src := rng.New(seed)
		if len(energiesRaw) == 0 {
			energiesRaw = []float64{1}
		}
		if len(energiesRaw) > 12 {
			energiesRaw = energiesRaw[:12]
		}
		obs := make([]Observation, len(energiesRaw))
		for i, e := range energiesRaw {
			if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
				e = 1
			}
			e = math.Min(e, 1e6)
			v := cmat.Vector(src.ComplexNormalVec(n, 1)).Normalize()
			obs[i] = Observation{V: v, Energy: e}
		}
		q, _, err := est.Estimate(obs, nil)
		if err != nil {
			return false
		}
		if !q.IsHermitian(1e-8 * (1 + q.MaxAbs())) {
			return false
		}
		eig, err := cmat.EigHermitian(q)
		if err != nil {
			return false
		}
		for _, lam := range eig.Values {
			if lam < -1e-8*(1+math.Abs(eig.Values[0])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(40)); err != nil {
		t.Error(err)
	}
}

// TestCompleteResidualNeverWorsensProperty: the SVT iteration must not
// return a completion whose observed-entry residual exceeds that of the
// zero matrix (its own starting point would achieve that).
func TestCompleteResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		rows, cols := 6, 5
		// Random rank-1 truth.
		u := cmat.Vector(src.ComplexNormalVec(rows, 1))
		v := cmat.Vector(src.ComplexNormalVec(cols, 1))
		truth := u.Outer(v)
		var obs []Entry
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if src.Bernoulli(0.6) {
					obs = append(obs, Entry{Row: i, Col: j, Value: truth.At(i, j)})
				}
			}
		}
		if len(obs) == 0 {
			return true
		}
		x, stats, err := Complete(rows, cols, obs, SVTOptions{MaxIters: 200})
		if err != nil {
			return false
		}
		_ = x
		return stats.Residual <= 1.0+1e-9
	}
	if err := quick.Check(f, quickConfig(25)); err != nil {
		t.Error(err)
	}
}
