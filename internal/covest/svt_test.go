package covest

import (
	"errors"
	"math/rand"
	"testing"

	"mmwalign/internal/cmat"
)

// lowRankMatrix builds a random rank-r rows×cols matrix.
func lowRankMatrix(r *rand.Rand, rows, cols, rank int) *cmat.Matrix {
	m := cmat.New(rows, cols)
	for k := 0; k < rank; k++ {
		u := make(cmat.Vector, rows)
		v := make(cmat.Vector, cols)
		for i := range u {
			u[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		for i := range v {
			v[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		m.AddInPlace(1, u.Outer(v))
	}
	return m
}

// sampleEntries observes each entry independently with probability p.
func sampleEntries(r *rand.Rand, m *cmat.Matrix, p float64) []Entry {
	var out []Entry
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if r.Float64() < p {
				out = append(out, Entry{Row: i, Col: j, Value: m.At(i, j)})
			}
		}
	}
	return out
}

func TestCompleteRecoversLowRank(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	truth := lowRankMatrix(r, 20, 20, 2)
	obs := sampleEntries(r, truth, 0.6)
	got, stats, err := Complete(20, 20, obs, SVTOptions{MaxIters: 600, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Logf("warning: not converged, residual %g after %d iters", stats.Residual, stats.Iters)
	}
	rel := got.Sub(truth).FrobeniusNorm() / truth.FrobeniusNorm()
	if rel > 0.05 {
		t.Errorf("relative recovery error %g, want < 0.05", rel)
	}
}

func TestCompleteMatchesObservedEntries(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	truth := lowRankMatrix(r, 12, 8, 1)
	obs := sampleEntries(r, truth, 0.7)
	got, _, err := Complete(12, 8, obs, SVTOptions{MaxIters: 500, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range obs {
		d := got.At(e.Row, e.Col) - e.Value
		if abs2(d) > 1e-2*(1+abs2(e.Value)) {
			t.Fatalf("entry (%d,%d) off by %v", e.Row, e.Col, d)
		}
	}
}

func TestCompleteValidation(t *testing.T) {
	if _, _, err := Complete(0, 4, []Entry{{}}, SVTOptions{}); err == nil {
		t.Error("expected error for zero rows")
	}
	if _, _, err := Complete(4, 4, nil, SVTOptions{}); !errors.Is(err, ErrNoObservations) {
		t.Errorf("err = %v, want ErrNoObservations", err)
	}
	if _, _, err := Complete(4, 4, []Entry{{Row: 5, Col: 0}}, SVTOptions{}); err == nil {
		t.Error("expected error for out-of-range observation")
	}
}

func TestCompleteAllZeroObservations(t *testing.T) {
	got, stats, err := Complete(5, 5, []Entry{{Row: 1, Col: 2, Value: 0}}, SVTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Error("zero completion should converge immediately")
	}
	if got.FrobeniusNorm() != 0 {
		t.Error("completion of zero observations should be zero")
	}
}

func TestCompleteHermitianPSD(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	// Build a rank-2 PSD truth.
	n := 14
	truth := cmat.New(n, n)
	for k := 0; k < 2; k++ {
		v := make(cmat.Vector, n)
		for i := range v {
			v[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		truth.AddInPlace(1, v.Outer(v))
	}
	truth = truth.Hermitianize()

	// Observe only the upper triangle with moderate density.
	var obs []Entry
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if r.Float64() < 0.55 {
				obs = append(obs, Entry{Row: i, Col: j, Value: truth.At(i, j)})
			}
		}
	}
	got, _, err := CompleteHermitianPSD(n, obs, SVTOptions{MaxIters: 600, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsHermitian(1e-9) {
		t.Error("completion is not Hermitian")
	}
	eig, err := cmat.EigHermitian(got)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eig.Values {
		if v < -1e-8 {
			t.Errorf("negative eigenvalue %g in PSD completion", v)
		}
	}
	rel := got.Sub(truth).FrobeniusNorm() / truth.FrobeniusNorm()
	if rel > 0.15 {
		t.Errorf("relative recovery error %g, want < 0.15", rel)
	}
}

func TestCompleteHermitianPSDDuplicateObservations(t *testing.T) {
	// Supplying both (i,j) and (j,i) must not break the solver.
	n := 6
	truth := cmat.Identity(n)
	var obs []Entry
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			obs = append(obs, Entry{Row: i, Col: j, Value: truth.At(i, j)})
		}
	}
	got, _, err := CompleteHermitianPSD(n, obs, SVTOptions{MaxIters: 400, Tau: 1, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	rel := got.Sub(truth).FrobeniusNorm() / truth.FrobeniusNorm()
	if rel > 0.2 {
		t.Errorf("identity completion error %g", rel)
	}
}

func TestSVTOptionsDefaults(t *testing.T) {
	o := SVTOptions{}.withDefaults(10, 10, 50)
	if o.Tau != 50 {
		t.Errorf("Tau = %g, want 50", o.Tau)
	}
	if o.Step != 1.2*100/50 {
		t.Errorf("Step = %g", o.Step)
	}
	if o.MaxIters != 300 || o.Tol != 1e-4 {
		t.Errorf("defaults = %+v", o)
	}
}
