package covest

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmwalign/internal/cmat"
)

// OMPResult reports a sparse recovery.
type OMPResult struct {
	// Support holds the selected dictionary indices, in selection order.
	Support []int
	// Coef holds the least-squares coefficients for Support.
	Coef cmat.Vector
	// Residual is the final relative residual ‖y − Ax‖/‖y‖.
	Residual float64
}

// OMP runs orthogonal matching pursuit: it greedily selects up to k
// dictionary atoms that best explain y, re-fitting all coefficients by
// least squares after each selection, and stops early once the relative
// residual falls below tol. This is the sparse-recovery workhorse of the
// compressed-sensing mmWave channel estimation literature the paper
// builds on (its references [5]–[7]): with the dictionary set to a grid
// of steering vectors, the support indices are the beamspace directions
// carrying the channel's energy.
func OMP(y cmat.Vector, dict []cmat.Vector, k int, tol float64) (OMPResult, error) {
	if len(dict) == 0 {
		return OMPResult{}, fmt.Errorf("covest: omp needs a non-empty dictionary")
	}
	if k < 1 {
		return OMPResult{}, fmt.Errorf("covest: omp sparsity %d must be ≥1", k)
	}
	n := len(y)
	for i, d := range dict {
		if len(d) != n {
			return OMPResult{}, fmt.Errorf("covest: omp atom %d has length %d, want %d", i, len(d), n)
		}
	}
	if k > len(dict) {
		k = len(dict)
	}
	if k > n {
		k = n
	}
	yNorm := y.Norm()
	if yNorm == 0 {
		return OMPResult{Residual: 0}, nil
	}

	res := OMPResult{Residual: 1}
	residual := y.Clone()
	chosen := make(map[int]bool, k)

	for iter := 0; iter < k; iter++ {
		// Selection: atom with the largest correlation to the residual.
		best, bestCorr := -1, -1.0
		for i, d := range dict {
			if chosen[i] {
				continue
			}
			if c := cmplx.Abs(d.Dot(residual)); c > bestCorr {
				best, bestCorr = i, c
			}
		}
		if best < 0 || bestCorr == 0 {
			break
		}
		chosen[best] = true
		res.Support = append(res.Support, best)

		// Re-fit: least squares over the selected atoms.
		a := cmat.New(n, len(res.Support))
		for j, idx := range res.Support {
			a.SetCol(j, dict[idx])
		}
		coef, err := cmat.SolveLS(a, y)
		if err != nil {
			return OMPResult{}, fmt.Errorf("covest: omp refit with %d atoms: %w", len(res.Support), err)
		}
		res.Coef = coef
		residual = y.Sub(a.MulVec(coef))
		res.Residual = residual.Norm() / yNorm
		if res.Residual <= tol {
			break
		}
	}
	return res, nil
}

// BeamspaceEstimate recovers the k strongest beamspace directions of a
// receive channel from digital vector snapshots: each snapshot is
// decomposed by OMP over the steering dictionary, and per-direction
// energies are averaged across snapshots. The returned covariance
// Q̂ = Σ_d ê_d·a_d·a_dᴴ is the sparse beamspace counterpart of the
// paper's dense nuclear-norm estimate — cheaper, but committed to the
// dictionary grid.
func BeamspaceEstimate(snapshots []cmat.Vector, dict []cmat.Vector, k int, gamma float64) (*cmat.Matrix, error) {
	if len(snapshots) == 0 {
		return nil, ErrNoObservations
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("covest: gamma %g must be positive", gamma)
	}
	n := len(snapshots[0])
	energy := make([]float64, len(dict))
	for _, y := range snapshots {
		r, err := OMP(y, dict, k, 1e-6)
		if err != nil {
			return nil, err
		}
		for j, idx := range r.Support {
			c := r.Coef[j]
			energy[idx] += (real(c)*real(c) + imag(c)*imag(c)) / float64(len(snapshots))
		}
	}
	q := cmat.New(n, n)
	for idx, e := range energy {
		if e == 0 {
			continue
		}
		// Remove the per-direction noise leakage floor and undo the γ
		// scaling so Q̂ lives in channel units.
		scaled := math.Max(e-1, 0) / gamma
		if scaled == 0 {
			continue
		}
		q.AddInPlace(complex(scaled, 0), dict[idx].Outer(dict[idx]))
	}
	return q.Hermitianize(), nil
}
