package covest

import (
	"fmt"
	"math"

	"mmwalign/internal/cmat"
)

// SelectMu chooses the nuclear-norm regularization weight µ from a
// candidate grid by holdout validation: observations are split into
// interleaved train/validation halves, the estimator runs on the train
// half for every candidate, and each estimate is scored by the
// validation half's negative log-likelihood Σ_j [log λ̂_j + w_j/λ̂_j].
// The returned µ minimizes that score; ties go to the larger µ (stronger
// regularization at equal fit).
//
// The split is deterministic (even indices train, odd validate), so the
// selection is reproducible for a given observation sequence. Requires
// at least 4 observations and a non-empty grid.
func SelectMu(n int, obs []Observation, opts Options, grid []float64) (float64, error) {
	if len(grid) == 0 {
		return 0, fmt.Errorf("covest: empty µ grid")
	}
	if len(obs) < 4 {
		return 0, fmt.Errorf("covest: need ≥4 observations to select µ, have %d", len(obs))
	}
	opts = opts.withDefaults()

	var train, valid []Observation
	for i, o := range obs {
		if i%2 == 0 {
			train = append(train, o)
		} else {
			valid = append(valid, o)
		}
	}

	bestMu, bestScore := 0.0, math.Inf(1)
	for _, mu := range grid {
		if mu <= 0 {
			return 0, fmt.Errorf("covest: µ grid entry %g must be positive", mu)
		}
		o := opts
		o.Mu = mu
		est, err := NewEstimator(n, o)
		if err != nil {
			return 0, err
		}
		qhat, _, err := est.Estimate(train, nil)
		if err != nil {
			return 0, fmt.Errorf("covest: µ=%g: %w", mu, err)
		}
		score := validationNLL(qhat, valid, o.Gamma)
		if muImproves(score, bestScore, mu, bestMu) {
			bestMu, bestScore = mu, score
		}
	}
	return bestMu, nil
}

// muImproves decides whether a candidate (mu, score) displaces the
// incumbent: a clearly better validation score always wins, and on
// near-ties the larger µ wins (same fit with a simpler model). The
// near-tie band is relative — 1e-12·max(1, |bestScore|) — because the
// validation NLL is an unnormalized sum that grows linearly with the
// holdout size; an absolute 1e-12 band would make the prefer-larger-µ
// rule unreachable for realistic observation counts.
func muImproves(score, bestScore, mu, bestMu float64) bool {
	if math.IsInf(bestScore, 1) {
		// No incumbent yet: any finite score wins; an infinite score
		// ties and defers to the larger µ, which every positive grid
		// entry satisfies against the zero sentinel.
		return score < bestScore || mu > bestMu
	}
	tol := 1e-12 * math.Max(1, math.Abs(bestScore))
	if score < bestScore-tol {
		return true
	}
	return math.Abs(score-bestScore) <= tol && mu > bestMu
}

// validationNLL scores an estimate against held-out energies with the
// same floored-λ rule the solver optimizes (flooredLambda), so the
// selection scorer and the estimator cannot disagree about degenerate
// estimates.
func validationNLL(q *cmat.Matrix, valid []Observation, gamma float64) float64 {
	var s float64
	for _, o := range valid {
		lambda := flooredLambda(gamma, q.QuadForm(o.V))
		s += math.Log(lambda) + o.Energy/lambda
	}
	return s
}
