package covest

import (
	"fmt"
	"math"

	"mmwalign/internal/cmat"
)

// Entry identifies one observed entry of a partially observed matrix.
type Entry struct {
	// Row and Col locate the entry.
	Row, Col int
	// Value is the observed entry value.
	Value complex128
}

// SVTOptions configures the singular-value-thresholding completion
// solver (Cai, Candès & Shen; the algorithmic family behind the paper's
// matrix-completion references [15]–[18]).
type SVTOptions struct {
	// Tau is the singular-value threshold. Default 5·√(rows·cols).
	Tau float64
	// Step is the gradient step δ on the observed set. Default 1.2×
	// (rows·cols)/|Ω|, the standard SVT choice.
	Step float64
	// MaxIters bounds the iterations. Default 300.
	MaxIters int
	// Tol is the relative residual tolerance on the observed entries.
	// Default 1e-4.
	Tol float64
}

func (o SVTOptions) withDefaults(rows, cols, nObs int) SVTOptions {
	if o.Tau == 0 {
		o.Tau = 5 * math.Sqrt(float64(rows*cols))
	}
	if o.Step == 0 {
		o.Step = 1.2 * float64(rows*cols) / float64(nObs)
	}
	if o.MaxIters == 0 {
		o.MaxIters = 300
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	return o
}

// CompleteStats reports how an SVT run went.
type CompleteStats struct {
	// Iters is the number of iterations performed.
	Iters int
	// Residual is the final relative residual on the observed entries.
	Residual float64
	// Converged records whether the tolerance was met within MaxIters.
	Converged bool
}

// Complete recovers a low-rank rows×cols matrix from the observed
// entries by singular value thresholding:
//
//	X_k = shrink_τ(Y_{k−1});  Y_k = Y_{k−1} + δ·P_Ω(M − X_k).
//
// Returns the completed matrix. Errors on empty or out-of-range
// observations.
func Complete(rows, cols int, observed []Entry, opts SVTOptions) (*cmat.Matrix, CompleteStats, error) {
	if rows <= 0 || cols <= 0 {
		return nil, CompleteStats{}, fmt.Errorf("covest: completion shape %dx%d must be positive", rows, cols)
	}
	if len(observed) == 0 {
		return nil, CompleteStats{}, ErrNoObservations
	}
	var obsNorm float64
	for i, e := range observed {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, CompleteStats{}, fmt.Errorf("covest: observation %d at (%d,%d) outside %dx%d", i, e.Row, e.Col, rows, cols)
		}
		obsNorm += abs2(e.Value)
	}
	obsNorm = math.Sqrt(obsNorm)
	if obsNorm == 0 {
		// All observed entries are zero: the minimum-nuclear-norm
		// completion is the zero matrix.
		return cmat.New(rows, cols), CompleteStats{Converged: true}, nil
	}

	opts = opts.withDefaults(rows, cols, len(observed))
	y := cmat.New(rows, cols)
	for _, e := range observed {
		y.Set(e.Row, e.Col, complex(opts.Step, 0)*e.Value)
	}

	var stats CompleteStats
	var x *cmat.Matrix
	for it := 0; it < opts.MaxIters; it++ {
		var err error
		x, err = cmat.SingularValueThreshold(y, opts.Tau)
		if err != nil {
			return nil, stats, fmt.Errorf("covest: svt iteration %d: %w", it, err)
		}
		var res float64
		for _, e := range observed {
			d := e.Value - x.At(e.Row, e.Col)
			res += abs2(d)
			y.AddAt(e.Row, e.Col, complex(opts.Step, 0)*d)
		}
		stats.Iters = it + 1
		stats.Residual = math.Sqrt(res) / obsNorm
		if stats.Residual <= opts.Tol {
			stats.Converged = true
			break
		}
	}
	return x, stats, nil
}

// CompleteHermitianPSD completes a Hermitian PSD matrix from observed
// entries: observations are mirrored across the diagonal and the SVT
// iterate is projected onto the Hermitian PSD cone each step, which both
// enforces the constraint and accelerates convergence for covariance
// matrices.
func CompleteHermitianPSD(n int, observed []Entry, opts SVTOptions) (*cmat.Matrix, CompleteStats, error) {
	seen := make(map[[2]int]bool, 2*len(observed))
	var sym []Entry
	for _, e := range observed {
		if !seen[[2]int{e.Row, e.Col}] {
			seen[[2]int{e.Row, e.Col}] = true
			sym = append(sym, e)
		}
		if e.Row != e.Col {
			m := Entry{Row: e.Col, Col: e.Row, Value: conj(e.Value)}
			if !seen[[2]int{m.Row, m.Col}] {
				seen[[2]int{m.Row, m.Col}] = true
				sym = append(sym, m)
			}
		}
	}
	x, stats, err := Complete(n, n, sym, opts)
	if err != nil {
		return nil, stats, err
	}
	p, err := cmat.ProjectPSD(x.Hermitianize())
	if err != nil {
		return nil, stats, fmt.Errorf("covest: psd projection of completion: %w", err)
	}
	return p, stats, nil
}

func abs2(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
