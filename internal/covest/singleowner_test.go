package covest

import (
	"math"
	"testing"

	"mmwalign/internal/cmat"
)

// singleOwnerFixture builds a small deterministic estimation problem.
func singleOwnerFixture(t *testing.T) (*Estimator, []Observation) {
	t.Helper()
	est, err := NewEstimator(4, Options{Gamma: 1, MaxIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]Observation, 0, 4)
	for j := 0; j < 4; j++ {
		v := cmat.NewVector(4)
		v[j] = 1
		d := float64(j - 1)
		obs = append(obs, Observation{V: v, Energy: 1 + 5/(1+d*d)})
	}
	return est, obs
}

// TestConcurrentEstimatePanics pins the single-owner contract: entering
// Estimate while another solve owns the workspace must panic rather
// than silently corrupting the shared arenas.
func TestConcurrentEstimatePanics(t *testing.T) {
	est, obs := singleOwnerFixture(t)
	// Simulate a concurrent owner holding the workspace.
	if !est.busy.CompareAndSwap(false, true) {
		t.Fatal("fresh estimator already busy")
	}
	defer est.busy.Store(false)
	defer func() {
		if recover() == nil {
			t.Error("Estimate on a busy estimator did not panic")
		}
	}()
	_, _, _ = est.Estimate(obs, nil)
}

// TestBusyClearedAfterEstimate checks the flag round-trips across both
// success and error paths, so a failed solve does not wedge the
// estimator.
func TestBusyClearedAfterEstimate(t *testing.T) {
	est, obs := singleOwnerFixture(t)
	if _, _, err := est.Estimate(obs, nil); err != nil {
		t.Fatal(err)
	}
	if est.busy.Load() {
		t.Error("busy flag still set after successful Estimate")
	}

	bad := append([]Observation(nil), obs...)
	bad[0].Energy = math.NaN()
	if _, _, err := est.Estimate(bad, nil); err == nil {
		t.Fatal("NaN energy accepted")
	}
	if est.busy.Load() {
		t.Error("busy flag still set after rejected Estimate")
	}
}

// TestResetRestoresVirginState is the satellite regression for pooled
// reuse: after an unrelated solve plus Reset, the estimator must
// produce results bitwise identical to a freshly constructed one.
func TestResetRestoresVirginState(t *testing.T) {
	fresh, obs := singleOwnerFixture(t)
	wantQ, wantStats, err := fresh.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}

	reused, _ := singleOwnerFixture(t)
	// Poison the workspace with a different problem (different energies
	// drive different iterates into every arena), then reset.
	poison := append([]Observation(nil), obs...)
	for i := range poison {
		poison[i].Energy = 1 + float64(3-i)*2.5
	}
	if _, _, err := reused.Estimate(poison, nil); err != nil {
		t.Fatal(err)
	}
	reused.Reset()

	gotQ, gotStats, err := reused.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Errorf("stats after Reset differ:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	for i := 0; i < wantQ.Rows(); i++ {
		for j := 0; j < wantQ.Cols(); j++ {
			if gotQ.At(i, j) != wantQ.At(i, j) {
				t.Fatalf("Q[%d,%d] = %v after Reset, want %v (bitwise)", i, j, gotQ.At(i, j), wantQ.At(i, j))
			}
		}
	}
}

// TestResetZeroesWorkspace inspects the arenas directly: every matrix
// zeroed, the λ memoization cleared — no numeric residue survives a
// Reset even transiently.
func TestResetZeroesWorkspace(t *testing.T) {
	est, obs := singleOwnerFixture(t)
	if _, _, err := est.Estimate(obs, nil); err != nil {
		t.Fatal(err)
	}
	if est.wk == nil {
		t.Fatal("no workspace allocated by Estimate")
	}
	est.Reset()
	wk := est.wk
	if wk.lamFor != nil {
		t.Error("λ memoization tag survived Reset")
	}
	for name, m := range map[string]*cmat.Matrix{
		"grad": wk.grad, "scratch": wk.scratch, "cur": wk.cur,
		"nxt": wk.nxt, "extr": wk.extr, "best": wk.best, "diff": wk.diff,
	} {
		if m == nil {
			continue
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if m.At(i, j) != 0 {
					t.Fatalf("workspace %s[%d,%d] = %v after Reset, want 0", name, i, j, m.At(i, j))
				}
			}
		}
	}
	for i, l := range wk.lambdas {
		if l != 0 {
			t.Errorf("lambdas[%d] = %v after Reset, want 0", i, l)
		}
	}
	for i, c := range wk.coefs {
		if c != 0 {
			t.Errorf("coefs[%d] = %v after Reset, want 0", i, c)
		}
	}
}

// TestResetOnFreshEstimatorIsNoop guards the nil-workspace path.
func TestResetOnFreshEstimatorIsNoop(t *testing.T) {
	est, err := NewEstimator(4, Options{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	est.Reset() // must not panic
}
