// Package covest implements the low-rank covariance estimation at the
// heart of the paper (Sec. IV-A): maximum-likelihood estimation of the
// receive-side spatial covariance Q from noisy beamformed energy
// measurements, with a nuclear-norm penalty enforcing the low-rank
// structure of mmWave channels, solved by proximal gradient descent over
// the PSD cone. A generic singular-value-thresholding (SVT) matrix
// completion solver is included as the underlying matrix-completion
// substrate the paper builds on.
//
// # Measurement model
//
// Each observation j sounds an RX beam v_j and records the energy
// w_j = |z_j|² of the noise-normalized matched-filter output, so that
//
//	z_j ~ CN(0, λ_j(Q)),   λ_j(Q) = γ·v_jᴴ·Q·v_j + 1,
//
// the γ-normalized form of the paper's λ_j(Q) = v_jᴴ(Q + γ⁻¹I)v_j.
// The negative log-likelihood is Σ_j [log λ_j + w_j/λ_j], and the
// estimator solves
//
//	min_{Q ⪰ 0}  Σ_j [log λ_j(Q) + w_j/λ_j(Q)] + µ·‖Q‖_*
//
// (paper Eq. 23). On the PSD cone ‖Q‖_* = tr(Q), and the proximal
// operator is an eigenvalue soft-threshold.
//
// # Subspace reduction
//
// Every iterate of the proximal method lies in the span of the sounded
// beams {v_j} (the gradient is a combination of v_j·v_jᴴ and the prox
// preserves the span), so the solver first builds an orthonormal basis B
// of that span and works with the r×r reduced matrix Q̃ = Bᴴ·Q·B. The
// reduction is exact — objective values and iterates correspond one to
// one — and makes early TX slots (few measurements, small r) far cheaper
// than a full N×N eigendecomposition per step.
package covest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"mmwalign/internal/cmat"
)

// Observation is one energy measurement: the RX beam sounded and the
// observed matched-filter energy |z|².
type Observation struct {
	// V is the unit-norm RX beamforming vector used.
	V cmat.Vector
	// Energy is the observed |z|².
	Energy float64
}

// ObjectiveKind selects the likelihood the estimator optimizes.
type ObjectiveKind int

const (
	// PerMeasurement uses the exact per-measurement Gaussian likelihood
	// Σ_j [log λ_j + w_j/λ_j]. This is the default.
	PerMeasurement ObjectiveKind = iota + 1
	// Aggregate uses the paper's Eq. (18) single-statistic form
	// log(Σ_j λ_j) + (Σ_j w_j)/(Σ_j λ_j), kept for the ablation bench.
	Aggregate
)

// Options configures the estimator. The zero value is usable: defaults
// are filled by NewEstimator.
type Options struct {
	// Gamma is the pre-beamforming SNR E_s/N₀ (linear). Required.
	Gamma float64
	// Mu is the nuclear-norm regularization weight µ. Default 1.
	Mu float64
	// MaxIters bounds the proximal gradient iterations. Default 40.
	MaxIters int
	// Tol is the relative objective-decrease stopping tolerance.
	// Default 1e-5.
	Tol float64
	// InitStep is the initial proximal step size. Default 1.
	InitStep float64
	// Kind selects the likelihood. Default PerMeasurement.
	Kind ObjectiveKind
	// DisableReduction forces the solver to work in the full N×N space.
	// Exists for testing the subspace reduction; production callers
	// should leave it false.
	DisableReduction bool
	// Accelerated switches the proximal solver from plain ISTA with
	// backtracking (the default, monotone) to FISTA with adaptive
	// restart (Nesterov momentum; fewer iterations on ill-conditioned
	// instances at the cost of non-monotone progress).
	Accelerated bool
	// Batcher, when non-nil, routes the solver's per-iteration Q·V
	// product through an external batch scheduler instead of calling
	// cmat.MulInto directly — the seam that lets a multi-cell harness
	// coalesce same-shape GEMMs across concurrently solving estimators.
	// Purely a scheduling hook: implementations must return results
	// bitwise identical to dst.MulInto(a, b), so setting it can never
	// change an estimate.
	Batcher Batcher
}

// Batcher is the cross-estimator GEMM scheduling seam (Options.Batcher).
// MulInto must block until dst holds a·b and must produce exactly the
// bits dst.MulInto(a, b) would; it may execute the product on another
// goroutine (the caller establishes the necessary happens-before by
// blocking) and must propagate any panic of the underlying kernel back
// to the caller.
type Batcher interface {
	MulInto(dst, a, b *cmat.Matrix)
}

func (o Options) withDefaults() Options {
	if o.Mu == 0 {
		o.Mu = 1
	}
	if o.MaxIters == 0 {
		o.MaxIters = 40
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.InitStep == 0 {
		o.InitStep = 1
	}
	if o.Kind == 0 {
		o.Kind = PerMeasurement
	}
	return o
}

// StopReason records why the proximal solver stopped iterating.
type StopReason int

const (
	// StopConverged means the relative objective decrease fell below Tol.
	StopConverged StopReason = iota
	// StopMaxIters means the iteration cap was reached while still
	// making progress.
	StopMaxIters
	// StopNoProgress means backtracking could not find a decreasing step
	// (the ordinary terminal state of the monotone solver at an optimum
	// the tolerance test did not catch).
	StopNoProgress
	// StopStepCollapse means the backtracking step size collapsed below
	// the minimum before a decreasing step was found.
	StopStepCollapse
	// StopNonFinite means a NaN/Inf objective, gradient, or iterate was
	// detected; the solver recovered to its last finite iterate.
	StopNonFinite
	// StopDiverged means the objective ran away from the best value seen
	// repeatedly; the solver recovered to its best finite iterate.
	StopDiverged
	// StopProxFailure means a proximal step's eigendecomposition failed;
	// the solver recovered to its last finite iterate.
	StopProxFailure
	// StopCancelled means the context was cancelled or its deadline
	// passed; the solver returned its best finite iterate so far.
	StopCancelled
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopConverged:
		return "converged"
	case StopMaxIters:
		return "max-iters"
	case StopNoProgress:
		return "no-progress"
	case StopStepCollapse:
		return "step-collapse"
	case StopNonFinite:
		return "non-finite"
	case StopDiverged:
		return "diverged"
	case StopProxFailure:
		return "prox-failure"
	case StopCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// SolveDiagnostics is the typed, inspectable account of how a solve
// terminated. It lets callers distinguish a healthy estimate from one
// produced by a guardrail without parsing errors: the solver never
// returns a non-finite Q̂ — it recovers to the last finite iterate and
// reports what happened here.
type SolveDiagnostics struct {
	// Reason is the terminal state of the iteration.
	Reason StopReason
	// Recovered is true when a non-finite objective, gradient, or
	// iterate was detected at any point and the solver fell back to a
	// finite state (including a reset of a non-finite starting point).
	Recovered bool
	// DivergenceRestarts counts momentum restarts forced by objective
	// runaway (FISTA only).
	DivergenceRestarts int
}

// Degraded reports whether the solve ended through a guardrail rather
// than ordinary convergence, the iteration cap, or a clean line-search
// stall. A degraded-but-finite estimate is still usable; callers that
// need pristine estimates (e.g. the alignment fallback policy) can key
// off this.
func (d SolveDiagnostics) Degraded() bool {
	switch d.Reason {
	case StopNonFinite, StopDiverged, StopProxFailure, StopCancelled:
		return true
	}
	return d.Recovered
}

// Stats reports how an estimation run went. The counters make the
// solver's cost observable: a benchmark that reports them alongside
// wall-clock time can tell an algorithmic speedup (fewer
// eigendecompositions) from a mechanical one (same work, less
// allocation).
type Stats struct {
	// Iters is the number of proximal steps taken.
	Iters int
	// Objective is the final penalized negative log-likelihood.
	Objective float64
	// SubspaceDim is the dimension r of the measurement subspace the
	// solver worked in (equals N when reduction is disabled).
	SubspaceDim int
	// Rank is the rank of the returned estimate.
	Rank int
	// EigenDecomps counts the Hermitian eigendecompositions the solver
	// ran: one per proximal step (including rejected backtracking
	// trials) plus one to lift the reduced estimate.
	EigenDecomps int
	// ObjectiveEvals counts evaluations of the penalized negative
	// log-likelihood.
	ObjectiveEvals int
	// GradientEvals counts gradient evaluations.
	GradientEvals int
	// Backtracks counts rejected backtracking line-search trials; each
	// one costs a full eigendecomposition.
	Backtracks int
	// Diagnostics records how the solve terminated and whether any
	// guardrail fired.
	Diagnostics SolveDiagnostics
}

// Estimator estimates the N×N receive spatial covariance from energy
// observations.
//
// An Estimator owns reusable solver workspaces, so repeated Estimate
// calls (the per-TX-slot cadence of the proposed scheme) allocate only
// for the returned matrix once the subspace dimension stabilizes. The
// workspace makes an Estimator NOT safe for concurrent use; create one
// estimator per goroutine, or lease pooled estimators so each request
// holds exclusive ownership (internal/serve does this). The single-owner
// contract is enforced: concurrent entry into Estimate panics rather
// than silently corrupting the shared arenas.
type Estimator struct {
	n    int
	opts Options
	wk   *solverWork
	// busy is the single-owner debug assertion: set on entry to
	// EstimateContext, cleared on exit. A second concurrent entry means
	// two goroutines share one workspace arena — always a caller bug —
	// and panics immediately instead of corrupting iterates silently.
	busy atomic.Bool
}

// Reset clears all cross-call solver state: the λ memoization tag and
// the workspace iterate/gradient matrices. Every Estimate call fully
// re-initializes the workspace from its inputs, so Reset is not needed
// for correctness between calls on one owner; it exists for pooled
// reuse across owners (a serving session lease), where it guarantees a
// freshly leased estimator cannot observe any numeric residue — not
// even transiently — of the previous owner's solve.
func (e *Estimator) Reset() {
	if e.wk == nil {
		return
	}
	wk := e.wk
	wk.lamFor = nil
	for _, m := range []*cmat.Matrix{wk.grad, wk.scratch, wk.cur, wk.nxt, wk.extr, wk.best, wk.diff} {
		if m != nil {
			m.Zero()
		}
	}
	for i := range wk.lambdas {
		wk.lambdas[i] = 0
	}
	for i := range wk.coefs {
		wk.coefs[i] = 0
	}
}

// solverWork holds the reusable buffers of the proximal solver so
// steady-state iterations allocate nothing. Matrices are sized for the
// current working dimension and reallocated only when it changes (the
// measurement subspace grows over early TX slots, then stabilizes at
// min(J·slots, N)).
//
// The observation directions are packed once per Estimate call into the
// dim×L matrix vmat (column j = reduced beam ṽ_j), so every objective
// and gradient evaluation is a batched kernel: all λ_j come from one
// Q·V GEMM plus columnwise dots, and the gradient assembles as
// V·diag(c)·Vᴴ. Total observation-dependent memory is O(dim·L) — the
// pack and its product buffer — where the old per-observation outer-
// product cache was O(L·dim²) and grew without bound at Window=0.
type solverWork struct {
	dim      int
	eig      *cmat.EigenWorkspace
	grad     *cmat.Matrix  // gradient accumulator
	scratch  *cmat.Matrix  // prox pre-threshold point: base − step·grad
	cur      *cmat.Matrix  // ISTA iterate / FISTA x
	nxt      *cmat.Matrix  // candidate produced by the prox
	extr     *cmat.Matrix  // FISTA extrapolation point y
	best     *cmat.Matrix  // FISTA best-seen iterate
	diff     *cmat.Matrix  // FISTA momentum difference next − x
	liftCol  cmat.Vector   // ambient-dimension column buffer for the lift
	mulBuf   cmat.Vector   // ambient-dimension buffer for warm-start projection
	vs       []cmat.Vector // reduced beams, reused across calls
	energies []float64     // observation energies, reused across calls

	vmat    *cmat.Matrix // packed reduced beams, dim×L, column j = ṽ_j
	qv      *cmat.Matrix // product buffer Q·V, dim×L
	colDots []complex128 // columnwise dots diag(VᴴQV)
	lambdas []float64    // λ_j(Q) for the matrix tagged by lamFor
	coefs   []complex128 // gradient coefficients c_j
	// lamFor tags which matrix wk.lambdas currently describes: the
	// gradient is always evaluated at a point whose objective was just
	// computed, so the λ vector can be reused verbatim instead of
	// re-running the GEMM. Any write to a workspace matrix must clear
	// the tag via noteWrite.
	lamFor *cmat.Matrix
}

// noteWrite invalidates the cached λ vector when the matrix it was
// computed for is about to be overwritten.
func (wk *solverWork) noteWrite(m *cmat.Matrix) {
	if wk.lamFor == m {
		wk.lamFor = nil
	}
}

// work returns the estimator's workspace sized for the given working
// dimension, reallocating the dimension-dependent buffers on change.
func (e *Estimator) work(dim int) *solverWork {
	if e.wk == nil {
		e.wk = &solverWork{
			eig:     cmat.NewEigenWorkspace(dim),
			liftCol: cmat.NewVector(e.n),
			mulBuf:  cmat.NewVector(e.n),
		}
	}
	wk := e.wk
	if wk.dim != dim {
		wk.dim = dim
		wk.grad = cmat.New(dim, dim)
		wk.scratch = cmat.New(dim, dim)
		wk.cur = cmat.New(dim, dim)
		wk.nxt = cmat.New(dim, dim)
		wk.extr = cmat.New(dim, dim)
		wk.best = cmat.New(dim, dim)
		wk.diff = cmat.New(dim, dim)
		wk.vs = nil
		wk.vmat = nil
		wk.qv = nil
	}
	return wk
}

// vsFor returns count reduced-beam buffers of length dim, reusing prior
// allocations where the shapes still match.
func (wk *solverWork) vsFor(count int) []cmat.Vector {
	if cap(wk.vs) < count {
		grown := make([]cmat.Vector, count)
		copy(grown, wk.vs)
		wk.vs = grown
	}
	wk.vs = wk.vs[:count]
	for j := range wk.vs {
		if len(wk.vs[j]) != wk.dim {
			wk.vs[j] = cmat.NewVector(wk.dim)
		}
	}
	return wk.vs
}

// energiesFor returns a float buffer of the given length.
func (wk *solverWork) energiesFor(count int) []float64 {
	if cap(wk.energies) < count {
		wk.energies = make([]float64, count)
	}
	wk.energies = wk.energies[:count]
	return wk.energies
}

// packV packs the reduced beams into the workspace's dim×L matrix
// (column j = ṽ_j) and sizes the per-observation buffers, reusing
// storage across Estimate calls when the shape is unchanged. The λ
// cache is always invalidated: λ depends on the packed directions.
func (wk *solverWork) packV(vs []cmat.Vector) {
	l := len(vs)
	if wk.vmat == nil || wk.vmat.Rows() != wk.dim || wk.vmat.Cols() != l {
		wk.vmat = cmat.New(wk.dim, l)
		wk.qv = cmat.New(wk.dim, l)
	}
	for j, v := range vs {
		wk.vmat.SetCol(j, v)
	}
	if cap(wk.colDots) < l {
		wk.colDots = make([]complex128, l)
		wk.lambdas = make([]float64, l)
		wk.coefs = make([]complex128, l)
	}
	wk.colDots = wk.colDots[:l]
	wk.lambdas = wk.lambdas[:l]
	wk.coefs = wk.coefs[:l]
	wk.lamFor = nil
}

// NewEstimator creates an estimator for an N-antenna receiver. Returns
// an error if n or the configured Gamma is not positive.
func NewEstimator(n int, opts Options) (*Estimator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("covest: antenna count %d must be positive", n)
	}
	opts = opts.withDefaults()
	if opts.Gamma <= 0 {
		return nil, fmt.Errorf("covest: gamma %g must be positive", opts.Gamma)
	}
	return &Estimator{n: n, opts: opts}, nil
}

// ErrNoObservations is returned when Estimate is called with no data.
var ErrNoObservations = errors.New("covest: no observations")

// ObservationError is the typed rejection of an invalid observation —
// a beam of the wrong dimension or a negative/NaN/Inf energy. It
// carries the offending index so fault attribution can point at the
// exact measurement.
type ObservationError struct {
	// Index is the position of the bad observation in the input slice.
	Index int
	// BadEnergy is true when the energy is at fault, false when the
	// beam dimension is.
	BadEnergy bool
	// Dim is the beam dimension found.
	Dim int
	// Energy is the offending energy value.
	Energy float64
	// Want is the expected beam dimension.
	Want int
}

// Error implements error.
func (e *ObservationError) Error() string {
	if e.BadEnergy {
		return fmt.Sprintf("covest: observation %d has invalid energy %g", e.Index, e.Energy)
	}
	return fmt.Sprintf("covest: observation %d has beam dimension %d, want %d", e.Index, e.Dim, e.Want)
}

// Estimate solves the regularized ML problem for Q given the
// observations. warm, if non-nil, seeds the solver with a previous
// estimate (the algorithm carries Q̂ across TX slots); otherwise a
// back-projection initializer is used. Estimate is the non-cancellable
// convenience form of EstimateContext.
func (e *Estimator) Estimate(obs []Observation, warm *cmat.Matrix) (*cmat.Matrix, Stats, error) {
	return e.EstimateContext(context.Background(), obs, warm)
}

// EstimateContext is Estimate with cooperative cancellation: when ctx
// is cancelled or its deadline passes, the solver stops at the next
// iteration boundary and returns its best finite iterate alongside the
// context's error, with Stats.Diagnostics marking the early stop
// (StopCancelled). The returned matrix is valid and PSD whenever it is
// non-nil, even when err is non-nil.
func (e *Estimator) EstimateContext(ctx context.Context, obs []Observation, warm *cmat.Matrix) (*cmat.Matrix, Stats, error) {
	if !e.busy.CompareAndSwap(false, true) {
		panic("covest: concurrent Estimate on a shared Estimator (single-owner workspace)")
	}
	defer e.busy.Store(false)
	if len(obs) == 0 {
		return nil, Stats{}, ErrNoObservations
	}
	for i, o := range obs {
		if len(o.V) != e.n {
			return nil, Stats{}, &ObservationError{Index: i, Dim: len(o.V), Want: e.n}
		}
		if o.Energy < 0 || math.IsNaN(o.Energy) || math.IsInf(o.Energy, 0) {
			return nil, Stats{}, &ObservationError{Index: i, BadEnergy: true, Energy: o.Energy, Want: e.n}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{Diagnostics: SolveDiagnostics{Reason: StopCancelled}}, err
	}

	if e.opts.DisableReduction {
		q, stats, err := e.solve(ctx, obs, warm, nil)
		return q, stats, err
	}

	basis := orthonormalBasis(obs, e.n)
	q, stats, err := e.solve(ctx, obs, warm, basis)
	return q, stats, err
}

// orthonormalBasis builds an orthonormal basis of span{v_j} by modified
// Gram-Schmidt, capped at the ambient dimension n. The projections run
// in place on a single scratch vector per beam; entry values are
// identical to the out-of-place v.Sub(b.Scale(b.Dot(v))) form.
func orthonormalBasis(obs []Observation, n int) []cmat.Vector {
	var basis []cmat.Vector
	for _, o := range obs {
		if len(basis) >= n {
			break
		}
		v := o.V.Clone()
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				v.AddScaledInPlace(-b.Dot(v), b)
			}
		}
		if v.Norm() > 1e-9 {
			basis = append(basis, v.Normalize())
		}
	}
	return basis
}

// solve runs the proximal gradient loop, optionally in the subspace
// spanned by basis (basis == nil means full space). All loop state
// lives in the estimator's reusable workspace; only the returned
// estimate is freshly allocated. On cancellation the best finite
// iterate reached so far is still lifted and returned alongside the
// context error.
func (e *Estimator) solve(ctx context.Context, obs []Observation, warm *cmat.Matrix, basis []cmat.Vector) (*cmat.Matrix, Stats, error) {
	reduced := basis != nil
	dim := e.n
	if reduced {
		dim = len(basis)
	}
	wk := e.work(dim)

	// Reduce beams: ṽ_j = Bᴴ v_j (exact since v_j ∈ span B).
	var vs []cmat.Vector
	ws := wk.energiesFor(len(obs))
	if reduced {
		vs = wk.vsFor(len(obs))
		for j, o := range obs {
			ws[j] = o.Energy
			for i, b := range basis {
				vs[j][i] = b.Dot(o.V)
			}
		}
	} else {
		vs = wk.vsFor(len(obs))
		for j, o := range obs {
			ws[j] = o.Energy
			copy(vs[j], o.V)
		}
	}

	// Pack the observation directions once: every objective and
	// gradient evaluation reuses the dim×L matrix in batched kernels.
	wk.packV(vs)

	e.initialInto(wk.cur, vs, ws, warm, basis, dim, wk)
	stats := Stats{SubspaceDim: dim}
	var q *cmat.Matrix
	var obj float64
	var err error
	if e.opts.Accelerated {
		q, obj, err = e.fistaLoop(ctx, wk, ws, &stats)
	} else {
		q, obj, err = e.istaLoop(ctx, wk, ws, &stats)
	}
	if q == nil {
		return nil, stats, err
	}

	stats.Objective = obj
	// The final eigendecomposition serves double duty: it lifts the
	// reduced estimate back to the ambient space (Q = B·Q̃·Bᴴ) and its
	// eigenvalues give the rank directly — the lift preserves the
	// spectrum because B is orthonormal, so no second decomposition of
	// the full-size matrix is needed.
	stats.EigenDecomps++
	eig, eigErr := wk.eig.EigHermitian(q)
	if eigErr != nil {
		return nil, stats, fmt.Errorf("covest: decomposing estimate: %w", eigErr)
	}
	full := q
	if reduced {
		full = cmat.New(e.n, e.n)
		col := wk.liftCol
		for k := 0; k < dim; k++ {
			if eig.Values[k] <= 0 {
				continue
			}
			// Column k of B·V_eig.
			col.Zero()
			for i, b := range basis {
				col.AddScaledInPlace(eig.Vectors.At(i, k), b)
			}
			full.AddScaledOuter(complex(eig.Values[k], 0), col)
		}
		// The lifted spectrum is the positive part of Q̃'s spectrum.
		stats.Rank = rankOfPSDSpectrum(eig.Values, 1e-8)
	} else {
		stats.Rank = rankOfSpectrum(eig.Values, 1e-8)
	}
	// err carries the context error of a cancelled solve; the estimate
	// itself is still the valid best finite iterate.
	return full.Hermitianize(), stats, err
}

// rankOfPSDSpectrum counts eigenvalues above tol·λ_max among the
// positive ones — the rank of Σ_{λ>0} λ·v·vᴴ.
func rankOfPSDSpectrum(vals []float64, tol float64) int {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 0
	}
	cut := tol * max
	n := 0
	for _, v := range vals {
		if v > cut {
			n++
		}
	}
	return n
}

// rankOfSpectrum counts eigenvalues with |λ| above tol·|λ|_max, the
// numerical rank of a Hermitian matrix from its spectrum.
func rankOfSpectrum(vals []float64, tol float64) int {
	var max float64
	for _, v := range vals {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	cut := tol * max
	n := 0
	for _, v := range vals {
		if math.Abs(v) > cut {
			n++
		}
	}
	return n
}

// istaLoop runs monotone proximal gradient descent (ISTA) with
// backtracking line search on the iterate preloaded in wk.cur. Returns
// the final iterate (a workspace buffer) and objective. Steady-state
// iterations allocate nothing: the gradient, the prox scratch, and the
// candidate all live in the workspace, and accepted candidates are
// adopted by pointer swap.
//
// Guardrails (all O(1) per iteration, piggybacking on values the loop
// already computes): a non-finite starting objective resets the iterate
// to zero; a non-finite gradient or a failed prox eigendecomposition
// stops the loop at the last accepted (finite) iterate; monotone
// acceptance means NaN/Inf candidates are rejected like any
// non-decreasing trial, so the iterate can never go non-finite. A
// cancelled context stops at the next iteration boundary and the
// current iterate is returned with the context's error.
func (e *Estimator) istaLoop(ctx context.Context, wk *solverWork, ws []float64, stats *Stats) (*cmat.Matrix, float64, error) {
	diag := &stats.Diagnostics
	q := wk.cur
	obj := e.objective(q, wk, ws)
	stats.ObjectiveEvals++
	if !isFinite(obj) {
		// A poisoned warm start (or a pathological back-projection) is
		// unrecoverable by descent: restart from the zero matrix, whose
		// objective is always finite for validated observations.
		wk.noteWrite(q)
		q.Zero()
		obj = e.objective(q, wk, ws)
		stats.ObjectiveEvals++
		diag.Recovered = true
	}
	diag.Reason = StopMaxIters
	step := e.opts.InitStep
	for it := 0; it < e.opts.MaxIters; it++ {
		if ctx.Err() != nil {
			diag.Reason = StopCancelled
			return q, obj, ctx.Err()
		}
		if ok := e.gradientInto(wk.grad, q, wk, ws); !ok {
			diag.Reason = StopNonFinite
			diag.Recovered = true
			return q, obj, nil
		}
		stats.GradientEvals++
		improved := false
		sawNonFinite := false
		for try := 0; try < 30; try++ {
			if err := e.proxStepInto(wk, q, step, stats); err != nil {
				diag.Reason = StopProxFailure
				diag.Recovered = true
				return q, obj, nil
			}
			nextObj := e.objective(wk.nxt, wk, ws)
			stats.ObjectiveEvals++
			if !isFinite(nextObj) {
				sawNonFinite = true
			}
			if nextObj <= obj {
				rel := (obj - nextObj) / (math.Abs(obj) + 1)
				q, wk.nxt = wk.nxt, q
				wk.cur = q // keep cur/nxt distinct for the next call
				obj = nextObj
				stats.Iters = it + 1
				improved = true
				step *= 1.2
				if rel < e.opts.Tol {
					diag.Reason = StopConverged
					it = e.opts.MaxIters // converged: exit outer loop
				}
				break
			}
			stats.Backtracks++
			step /= 2
			if step < 1e-12 {
				if diag.Reason != StopConverged {
					diag.Reason = StopStepCollapse
				}
				break
			}
		}
		if !improved {
			switch {
			case sawNonFinite:
				diag.Reason = StopNonFinite
				diag.Recovered = true
			case diag.Reason == StopMaxIters:
				diag.Reason = StopNoProgress
			}
			break
		}
	}
	return q, obj, nil
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// fistaLoop runs FISTA (Nesterov-accelerated proximal gradient) with
// backtracking and adaptive restart: whenever the objective increases,
// the momentum is reset, which recovers monotone behaviour on the
// non-convex part of the likelihood while keeping the acceleration on
// well-behaved stretches.
//
// Guardrails mirror istaLoop's, with two additions the non-monotone
// method needs: a non-finite extrapolated point kills the momentum and
// restarts from the best iterate seen, and repeated objective runaway
// past the best value (divergence, possible here because acceptance is
// not monotone) stops the loop after a bounded number of forced
// restarts. The returned iterate is always the best finite one seen.
func (e *Estimator) fistaLoop(ctx context.Context, wk *solverWork, ws []float64, stats *Stats) (*cmat.Matrix, float64, error) {
	diag := &stats.Diagnostics
	x := wk.cur
	y := wk.extr
	obj := e.objective(x, wk, ws)
	stats.ObjectiveEvals++
	if !isFinite(obj) {
		wk.noteWrite(x)
		x.Zero()
		obj = e.objective(x, wk, ws)
		stats.ObjectiveEvals++
		diag.Recovered = true
	}
	wk.noteWrite(y)
	y.CopyFrom(x)
	best := wk.best
	wk.noteWrite(best)
	best.CopyFrom(x)
	bestObj := obj
	step := e.opts.InitStep
	tMom := 1.0
	// Divergence is declared when an accepted objective exceeds the best
	// seen by this margin; three forced restarts without recovery stop
	// the solve.
	divergeLimit := 1e6 * (math.Abs(bestObj) + 1)
	diag.Reason = StopMaxIters

	for it := 0; it < e.opts.MaxIters; it++ {
		if ctx.Err() != nil {
			diag.Reason = StopCancelled
			return best, bestObj, ctx.Err()
		}
		// The extrapolated point y is fixed for the whole backtracking
		// search, so its objective is loop-invariant: evaluate it once
		// per outer iteration, not once per trial.
		objY := e.objective(y, wk, ws)
		stats.ObjectiveEvals++
		if !isFinite(objY) {
			// Momentum overshot into non-finite territory: restart from
			// the best iterate (whose objective is finite by
			// construction) with the momentum killed.
			tMom = 1
			wk.noteWrite(y)
			y.CopyFrom(best)
			wk.noteWrite(x)
			x.CopyFrom(best)
			obj = bestObj
			step /= 2
			diag.Recovered = true
			if step < 1e-12 {
				diag.Reason = StopStepCollapse
				break
			}
			continue
		}
		if ok := e.gradientInto(wk.grad, y, wk, ws); !ok {
			diag.Reason = StopNonFinite
			diag.Recovered = true
			return best, bestObj, nil
		}
		stats.GradientEvals++
		var nextObj float64
		accepted := false
		sawNonFinite := false
		for try := 0; try < 30; try++ {
			if err := e.proxStepInto(wk, y, step, stats); err != nil {
				diag.Reason = StopProxFailure
				diag.Recovered = true
				return best, bestObj, nil
			}
			candObj := e.objective(wk.nxt, wk, ws)
			stats.ObjectiveEvals++
			if !isFinite(candObj) {
				sawNonFinite = true
			}
			// Backtracking acceptance: sufficient decrease relative to
			// the extrapolated point's majorizer. NaN/Inf candidates
			// fail both comparisons and are backtracked like any
			// rejected trial.
			if candObj <= objY+1e-12 || candObj <= obj {
				nextObj = candObj
				accepted = true
				break
			}
			stats.Backtracks++
			step /= 2
			if step < 1e-12 {
				diag.Reason = StopStepCollapse
				break
			}
		}
		if !accepted {
			switch {
			case sawNonFinite:
				diag.Reason = StopNonFinite
				diag.Recovered = true
			case diag.Reason == StopMaxIters:
				diag.Reason = StopNoProgress
			}
			break
		}
		stats.Iters = it + 1

		if !isFinite(nextObj) || nextObj-bestObj > divergeLimit {
			// Objective runaway: the accepted candidate is far above
			// (or beyond) anything useful. Kill the momentum, shrink
			// the step, and retry from the best iterate; give up after
			// three such restarts.
			diag.DivergenceRestarts++
			tMom = 1
			wk.noteWrite(y)
			y.CopyFrom(best)
			wk.noteWrite(x)
			x.CopyFrom(best)
			obj = bestObj
			step /= 4
			if diag.DivergenceRestarts >= 3 || step < 1e-12 {
				diag.Reason = StopDiverged
				diag.Recovered = true
				break
			}
			continue
		}
		if nextObj > obj {
			// Adaptive restart: kill the momentum and retry from the
			// best point seen.
			tMom = 1
			wk.noteWrite(y)
			y.CopyFrom(best)
			wk.noteWrite(x)
			x.CopyFrom(best)
			obj = bestObj
			continue
		}
		rel := (obj - nextObj) / (math.Abs(obj) + 1)
		tNext := (1 + math.Sqrt(1+4*tMom*tMom)) / 2
		momentum := complex((tMom-1)/tNext, 0)
		// y = next + momentum·(next − x), then adopt the candidate as
		// the new iterate by pointer swap (its old storage becomes the
		// next prox target).
		wk.noteWrite(wk.diff)
		wk.diff.SubInto(wk.nxt, x)
		wk.noteWrite(y)
		y.AddScaledInto(wk.nxt, momentum, wk.diff)
		x, wk.nxt = wk.nxt, x
		wk.cur = x // keep cur/nxt distinct for the next call
		obj, tMom = nextObj, tNext
		if obj < bestObj {
			wk.noteWrite(best)
			best.CopyFrom(x)
			bestObj = obj
		}
		if rel < e.opts.Tol {
			diag.Reason = StopConverged
			break
		}
	}
	return best, bestObj, nil
}

// proxStepInto applies one proximal gradient step from base with the
// given step size, prox_{step·µ‖·‖_*,⪰0}(base − step·wk.grad), writing
// the candidate into wk.nxt. The pre-threshold point lives in
// wk.scratch and the eigendecomposition runs in the shared workspace,
// so the step allocates nothing.
func (e *Estimator) proxStepInto(wk *solverWork, base *cmat.Matrix, step float64, stats *Stats) error {
	wk.noteWrite(wk.scratch)
	wk.scratch.AddScaledInto(base, complex(-step, 0), wk.grad)
	wk.scratch.HermitianizeInPlace()
	stats.EigenDecomps++
	wk.noteWrite(wk.nxt)
	if err := cmat.EigenSoftThresholdPSDInto(wk.eig, wk.nxt, wk.scratch, step*e.opts.Mu); err != nil {
		return fmt.Errorf("covest: prox step: %w", err)
	}
	return nil
}

// initialInto builds the starting iterate into dst: the warm start
// projected into the working space when available, otherwise a
// back-projection of the excess energies Σ_j max(w_j−1, 0)/γ · v_j·v_jᴴ / J.
func (e *Estimator) initialInto(dst *cmat.Matrix, vs []cmat.Vector, ws []float64, warm *cmat.Matrix, basis []cmat.Vector, dim int, wk *solverWork) {
	if warm != nil && warm.Rows() == e.n {
		if basis == nil {
			dst.HermitianizeFrom(warm)
			return
		}
		for j := 0; j < dim; j++ {
			// Hoist warm·b_j out of the row loop; entry values match the
			// per-entry basis[i].Dot(warm.MulVec(basis[j])) form.
			warm.MulVecInto(wk.mulBuf, basis[j])
			for i := 0; i < dim; i++ {
				dst.Set(i, j, basis[i].Dot(wk.mulBuf))
			}
		}
		dst.HermitianizeInPlace()
		return
	}
	dst.Zero()
	for j, v := range vs {
		excess := math.Max(ws[j]-1, 0) / e.opts.Gamma
		if excess == 0 {
			continue
		}
		dst.AddScaledOuter(complex(excess/float64(len(vs)), 0), v)
	}
	dst.HermitianizeInPlace()
}

// lambdaFloor is the shared guardrail under every λ evaluation: λ is
// floored slightly above zero so a transiently indefinite iterate
// cannot produce log of a non-positive number. The solver's objective,
// its gradient, and the µ-selection validation scorer all go through
// flooredLambda so the guardrail cannot drift between them.
const lambdaFloor = 1e-9

// flooredLambda returns λ = γ·quad + 1 floored at lambdaFloor, where
// quad is the quadratic form vᴴQv.
func flooredLambda(gamma, quad float64) float64 {
	l := gamma*quad + 1
	if l < lambdaFloor {
		return lambdaFloor
	}
	return l
}

// lambdasFor returns λ_j(Q) for every packed observation direction,
// evaluated in one batch: Q·V with a single GEMM, then columnwise dots
// ṽ_jᴴ(Q·ṽ_j). Per column the accumulation order matches the scalar
// QuadForm exactly, so each λ_j is bitwise identical to the
// per-observation evaluation it replaces. The result is memoized for
// the matrix it was computed on (cleared by noteWrite), which lets the
// gradient reuse the λ vector its caller just computed for the
// objective at the same point.
func (e *Estimator) lambdasFor(q *cmat.Matrix, wk *solverWork) []float64 {
	if wk.lamFor == q {
		return wk.lambdas
	}
	if e.opts.Batcher != nil {
		e.opts.Batcher.MulInto(wk.qv, q, wk.vmat)
	} else {
		wk.qv.MulInto(q, wk.vmat)
	}
	cmat.ColumnDotsInto(wk.colDots, wk.vmat, wk.qv)
	for j, d := range wk.colDots {
		wk.lambdas[j] = flooredLambda(e.opts.Gamma, real(d))
	}
	wk.lamFor = q
	return wk.lambdas
}

// objective evaluates the penalized negative log-likelihood using the
// batched λ kernel.
func (e *Estimator) objective(q *cmat.Matrix, wk *solverWork, ws []float64) float64 {
	ls := e.lambdasFor(q, wk)
	var f float64
	switch e.opts.Kind {
	case Aggregate:
		var s, w float64
		for j, l := range ls {
			s += l
			w += ws[j]
		}
		f = math.Log(s) + w/s
	default:
		for j, l := range ls {
			f += math.Log(l) + ws[j]/l
		}
	}
	// ‖Q‖_* = tr(Q) on the PSD cone; iterates stay PSD after the prox.
	return f + e.opts.Mu*real(q.Trace())
}

// gradientInto writes ∇f(Q) into g (without the penalty term, which is
// handled by the proximal operator), assembled as the batched product
// V·diag(c)·Vᴴ — per entry an ordered sum of c_j·(ṽ_j·ṽ_jᴴ) terms,
// bitwise identical to the rank-one accumulation it replaces. It
// reports false when any coefficient is NaN/Inf — the O(1) guardrail
// (per coefficient already being computed) that keeps a poisoned
// gradient from ever reaching the prox step.
func (e *Estimator) gradientInto(g, q *cmat.Matrix, wk *solverWork, ws []float64) bool {
	ls := e.lambdasFor(q, wk)
	switch e.opts.Kind {
	case Aggregate:
		var s, w float64
		for j, l := range ls {
			s += l
			w += ws[j]
		}
		coef := (1/s - w/(s*s)) * e.opts.Gamma
		if !isFinite(coef) {
			return false
		}
		for j := range wk.coefs {
			wk.coefs[j] = complex(coef, 0)
		}
	default:
		for j, l := range ls {
			coef := (1/l - ws[j]/(l*l)) * e.opts.Gamma
			if !isFinite(coef) {
				return false
			}
			wk.coefs[j] = complex(coef, 0)
		}
	}
	wk.noteWrite(g)
	g.MulDiagHermInto(wk.vmat, wk.coefs, wk.vmat)
	return true
}
