// Package covest implements the low-rank covariance estimation at the
// heart of the paper (Sec. IV-A): maximum-likelihood estimation of the
// receive-side spatial covariance Q from noisy beamformed energy
// measurements, with a nuclear-norm penalty enforcing the low-rank
// structure of mmWave channels, solved by proximal gradient descent over
// the PSD cone. A generic singular-value-thresholding (SVT) matrix
// completion solver is included as the underlying matrix-completion
// substrate the paper builds on.
//
// # Measurement model
//
// Each observation j sounds an RX beam v_j and records the energy
// w_j = |z_j|² of the noise-normalized matched-filter output, so that
//
//	z_j ~ CN(0, λ_j(Q)),   λ_j(Q) = γ·v_jᴴ·Q·v_j + 1,
//
// the γ-normalized form of the paper's λ_j(Q) = v_jᴴ(Q + γ⁻¹I)v_j.
// The negative log-likelihood is Σ_j [log λ_j + w_j/λ_j], and the
// estimator solves
//
//	min_{Q ⪰ 0}  Σ_j [log λ_j(Q) + w_j/λ_j(Q)] + µ·‖Q‖_*
//
// (paper Eq. 23). On the PSD cone ‖Q‖_* = tr(Q), and the proximal
// operator is an eigenvalue soft-threshold.
//
// # Subspace reduction
//
// Every iterate of the proximal method lies in the span of the sounded
// beams {v_j} (the gradient is a combination of v_j·v_jᴴ and the prox
// preserves the span), so the solver first builds an orthonormal basis B
// of that span and works with the r×r reduced matrix Q̃ = Bᴴ·Q·B. The
// reduction is exact — objective values and iterates correspond one to
// one — and makes early TX slots (few measurements, small r) far cheaper
// than a full N×N eigendecomposition per step.
package covest

import (
	"errors"
	"fmt"
	"math"

	"mmwalign/internal/cmat"
)

// Observation is one energy measurement: the RX beam sounded and the
// observed matched-filter energy |z|².
type Observation struct {
	// V is the unit-norm RX beamforming vector used.
	V cmat.Vector
	// Energy is the observed |z|².
	Energy float64
}

// ObjectiveKind selects the likelihood the estimator optimizes.
type ObjectiveKind int

const (
	// PerMeasurement uses the exact per-measurement Gaussian likelihood
	// Σ_j [log λ_j + w_j/λ_j]. This is the default.
	PerMeasurement ObjectiveKind = iota + 1
	// Aggregate uses the paper's Eq. (18) single-statistic form
	// log(Σ_j λ_j) + (Σ_j w_j)/(Σ_j λ_j), kept for the ablation bench.
	Aggregate
)

// Options configures the estimator. The zero value is usable: defaults
// are filled by NewEstimator.
type Options struct {
	// Gamma is the pre-beamforming SNR E_s/N₀ (linear). Required.
	Gamma float64
	// Mu is the nuclear-norm regularization weight µ. Default 1.
	Mu float64
	// MaxIters bounds the proximal gradient iterations. Default 40.
	MaxIters int
	// Tol is the relative objective-decrease stopping tolerance.
	// Default 1e-5.
	Tol float64
	// InitStep is the initial proximal step size. Default 1.
	InitStep float64
	// Kind selects the likelihood. Default PerMeasurement.
	Kind ObjectiveKind
	// DisableReduction forces the solver to work in the full N×N space.
	// Exists for testing the subspace reduction; production callers
	// should leave it false.
	DisableReduction bool
	// Accelerated switches the proximal solver from plain ISTA with
	// backtracking (the default, monotone) to FISTA with adaptive
	// restart (Nesterov momentum; fewer iterations on ill-conditioned
	// instances at the cost of non-monotone progress).
	Accelerated bool
}

func (o Options) withDefaults() Options {
	if o.Mu == 0 {
		o.Mu = 1
	}
	if o.MaxIters == 0 {
		o.MaxIters = 40
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.InitStep == 0 {
		o.InitStep = 1
	}
	if o.Kind == 0 {
		o.Kind = PerMeasurement
	}
	return o
}

// Stats reports how an estimation run went.
type Stats struct {
	// Iters is the number of proximal steps taken.
	Iters int
	// Objective is the final penalized negative log-likelihood.
	Objective float64
	// SubspaceDim is the dimension r of the measurement subspace the
	// solver worked in (equals N when reduction is disabled).
	SubspaceDim int
	// Rank is the rank of the returned estimate.
	Rank int
}

// Estimator estimates the N×N receive spatial covariance from energy
// observations.
type Estimator struct {
	n    int
	opts Options
}

// NewEstimator creates an estimator for an N-antenna receiver. Returns
// an error if n or the configured Gamma is not positive.
func NewEstimator(n int, opts Options) (*Estimator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("covest: antenna count %d must be positive", n)
	}
	opts = opts.withDefaults()
	if opts.Gamma <= 0 {
		return nil, fmt.Errorf("covest: gamma %g must be positive", opts.Gamma)
	}
	return &Estimator{n: n, opts: opts}, nil
}

// ErrNoObservations is returned when Estimate is called with no data.
var ErrNoObservations = errors.New("covest: no observations")

// Estimate solves the regularized ML problem for Q given the
// observations. warm, if non-nil, seeds the solver with a previous
// estimate (the algorithm carries Q̂ across TX slots); otherwise a
// back-projection initializer is used.
func (e *Estimator) Estimate(obs []Observation, warm *cmat.Matrix) (*cmat.Matrix, Stats, error) {
	if len(obs) == 0 {
		return nil, Stats{}, ErrNoObservations
	}
	for i, o := range obs {
		if len(o.V) != e.n {
			return nil, Stats{}, fmt.Errorf("covest: observation %d has beam dimension %d, want %d", i, len(o.V), e.n)
		}
		if o.Energy < 0 || math.IsNaN(o.Energy) {
			return nil, Stats{}, fmt.Errorf("covest: observation %d has invalid energy %g", i, o.Energy)
		}
	}

	if e.opts.DisableReduction {
		q, stats, err := e.solve(obs, warm, nil)
		return q, stats, err
	}

	basis := orthonormalBasis(obs, e.n)
	q, stats, err := e.solve(obs, warm, basis)
	return q, stats, err
}

// orthonormalBasis builds an orthonormal basis of span{v_j} by modified
// Gram-Schmidt, capped at the ambient dimension n.
func orthonormalBasis(obs []Observation, n int) []cmat.Vector {
	var basis []cmat.Vector
	for _, o := range obs {
		if len(basis) >= n {
			break
		}
		v := o.V.Clone()
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				v = v.Sub(b.Scale(b.Dot(v)))
			}
		}
		if v.Norm() > 1e-9 {
			basis = append(basis, v.Normalize())
		}
	}
	return basis
}

// solve runs the proximal gradient loop, optionally in the subspace
// spanned by basis (basis == nil means full space).
func (e *Estimator) solve(obs []Observation, warm *cmat.Matrix, basis []cmat.Vector) (*cmat.Matrix, Stats, error) {
	reduced := basis != nil
	dim := e.n
	if reduced {
		dim = len(basis)
	}

	// Reduce beams: ṽ_j = Bᴴ v_j (exact since v_j ∈ span B).
	vs := make([]cmat.Vector, len(obs))
	ws := make([]float64, len(obs))
	for j, o := range obs {
		ws[j] = o.Energy
		if reduced {
			r := make(cmat.Vector, dim)
			for i, b := range basis {
				r[i] = b.Dot(o.V)
			}
			vs[j] = r
		} else {
			vs[j] = o.V
		}
	}

	// Precompute the rank-one terms v_j·v_jᴴ once: they are reused by
	// every gradient evaluation.
	outers := make([]*cmat.Matrix, len(vs))
	for j, v := range vs {
		outers[j] = v.Outer(v)
	}

	q := e.initial(vs, ws, warm, basis, dim)
	stats := Stats{SubspaceDim: dim}
	var obj float64
	var err error
	if e.opts.Accelerated {
		q, obj, err = e.fistaLoop(q, vs, ws, outers, &stats)
	} else {
		q, obj, err = e.istaLoop(q, vs, ws, outers, &stats)
	}
	if err != nil {
		return nil, stats, err
	}

	stats.Objective = obj
	full := q
	if reduced {
		// Lift back: Q = B·Q̃·Bᴴ.
		full = cmat.New(e.n, e.n)
		eig, err := cmat.EigHermitian(q)
		if err != nil {
			return nil, stats, fmt.Errorf("covest: lifting estimate: %w", err)
		}
		for k := 0; k < dim; k++ {
			if eig.Values[k] <= 0 {
				continue
			}
			// Column k of B·V_eig.
			col := cmat.NewVector(e.n)
			for i, b := range basis {
				col = col.Add(b.Scale(eig.Vectors.At(i, k)))
			}
			full.AddInPlace(complex(eig.Values[k], 0), col.Outer(col))
		}
	}
	rank, err := cmat.Rank(full, 1e-8)
	if err != nil {
		return nil, stats, fmt.Errorf("covest: rank of estimate: %w", err)
	}
	stats.Rank = rank
	return full.Hermitianize(), stats, nil
}

// istaLoop runs monotone proximal gradient descent (ISTA) with
// backtracking line search. Returns the final iterate and objective.
func (e *Estimator) istaLoop(q *cmat.Matrix, vs []cmat.Vector, ws []float64, outers []*cmat.Matrix, stats *Stats) (*cmat.Matrix, float64, error) {
	obj := e.objective(q, vs, ws)
	step := e.opts.InitStep
	for it := 0; it < e.opts.MaxIters; it++ {
		grad := e.gradient(q, vs, ws, outers)
		improved := false
		for try := 0; try < 30; try++ {
			next, err := e.proxStep(q, grad, step)
			if err != nil {
				return nil, 0, err
			}
			nextObj := e.objective(next, vs, ws)
			if nextObj <= obj {
				rel := (obj - nextObj) / (math.Abs(obj) + 1)
				q, obj = next, nextObj
				stats.Iters = it + 1
				improved = true
				step *= 1.2
				if rel < e.opts.Tol {
					it = e.opts.MaxIters // converged: exit outer loop
				}
				break
			}
			step /= 2
			if step < 1e-12 {
				break
			}
		}
		if !improved {
			break
		}
	}
	return q, obj, nil
}

// fistaLoop runs FISTA (Nesterov-accelerated proximal gradient) with
// backtracking and adaptive restart: whenever the objective increases,
// the momentum is reset, which recovers monotone behaviour on the
// non-convex part of the likelihood while keeping the acceleration on
// well-behaved stretches.
func (e *Estimator) fistaLoop(q *cmat.Matrix, vs []cmat.Vector, ws []float64, outers []*cmat.Matrix, stats *Stats) (*cmat.Matrix, float64, error) {
	x := q
	y := q.Clone()
	obj := e.objective(x, vs, ws)
	bestQ, bestObj := x, obj
	step := e.opts.InitStep
	tMom := 1.0

	for it := 0; it < e.opts.MaxIters; it++ {
		grad := e.gradient(y, vs, ws, outers)
		var next *cmat.Matrix
		var nextObj float64
		accepted := false
		for try := 0; try < 30; try++ {
			cand, err := e.proxStep(y, grad, step)
			if err != nil {
				return nil, 0, err
			}
			candObj := e.objective(cand, vs, ws)
			// Backtracking acceptance: sufficient decrease relative to
			// the extrapolated point's majorizer.
			if candObj <= e.objective(y, vs, ws)+1e-12 || candObj <= obj {
				next, nextObj = cand, candObj
				accepted = true
				break
			}
			step /= 2
			if step < 1e-12 {
				break
			}
		}
		if !accepted {
			break
		}
		stats.Iters = it + 1

		if nextObj > obj {
			// Adaptive restart: kill the momentum and retry from the
			// best point seen.
			tMom = 1
			y = bestQ.Clone()
			x, obj = bestQ, bestObj
			continue
		}
		rel := (obj - nextObj) / (math.Abs(obj) + 1)
		tNext := (1 + math.Sqrt(1+4*tMom*tMom)) / 2
		momentum := complex((tMom-1)/tNext, 0)
		y = next.Clone()
		y.AddInPlace(momentum, next.Sub(x))
		x, obj, tMom = next, nextObj, tNext
		if obj < bestObj {
			bestQ, bestObj = x, obj
		}
		if rel < e.opts.Tol {
			break
		}
	}
	return bestQ, bestObj, nil
}

// proxStep applies one proximal gradient step from base with the given
// step size: prox_{step·µ‖·‖_*,⪰0}(base − step·grad).
func (e *Estimator) proxStep(base, grad *cmat.Matrix, step float64) (*cmat.Matrix, error) {
	cand := base.Clone()
	cand.AddInPlace(complex(-step, 0), grad)
	next, err := cmat.EigenSoftThresholdPSD(cand.Hermitianize(), step*e.opts.Mu)
	if err != nil {
		return nil, fmt.Errorf("covest: prox step: %w", err)
	}
	return next, nil
}

// initial builds the starting iterate: the warm start projected into the
// working space when available, otherwise a back-projection of the
// excess energies Σ_j max(w_j−1, 0)/γ · v_j·v_jᴴ / J.
func (e *Estimator) initial(vs []cmat.Vector, ws []float64, warm *cmat.Matrix, basis []cmat.Vector, dim int) *cmat.Matrix {
	if warm != nil && warm.Rows() == e.n {
		if basis == nil {
			return warm.Hermitianize()
		}
		red := cmat.New(dim, dim)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				red.Set(i, j, basis[i].Dot(warm.MulVec(basis[j])))
			}
		}
		return red.Hermitianize()
	}
	q := cmat.New(dim, dim)
	for j, v := range vs {
		excess := math.Max(ws[j]-1, 0) / e.opts.Gamma
		if excess == 0 {
			continue
		}
		q.AddInPlace(complex(excess/float64(len(vs)), 0), v.Outer(v))
	}
	return q.Hermitianize()
}

// lambda returns λ_j(Q) = γ·v_jᴴQv_j + 1, floored slightly above zero so
// a transiently indefinite iterate cannot produce log of a non-positive
// number.
func (e *Estimator) lambda(q *cmat.Matrix, v cmat.Vector) float64 {
	l := e.opts.Gamma*q.QuadForm(v) + 1
	if l < 1e-9 {
		return 1e-9
	}
	return l
}

// objective evaluates the penalized negative log-likelihood.
func (e *Estimator) objective(q *cmat.Matrix, vs []cmat.Vector, ws []float64) float64 {
	var f float64
	switch e.opts.Kind {
	case Aggregate:
		var s, w float64
		for j, v := range vs {
			s += e.lambda(q, v)
			w += ws[j]
		}
		f = math.Log(s) + w/s
	default:
		for j, v := range vs {
			l := e.lambda(q, v)
			f += math.Log(l) + ws[j]/l
		}
	}
	// ‖Q‖_* = tr(Q) on the PSD cone; iterates stay PSD after the prox.
	return f + e.opts.Mu*real(q.Trace())
}

// gradient returns ∇f(Q) (without the penalty term, which is handled by
// the proximal operator). outers caches v_j·v_jᴴ.
func (e *Estimator) gradient(q *cmat.Matrix, vs []cmat.Vector, ws []float64, outers []*cmat.Matrix) *cmat.Matrix {
	n := q.Rows()
	g := cmat.New(n, n)
	switch e.opts.Kind {
	case Aggregate:
		var s, w float64
		for j, v := range vs {
			s += e.lambda(q, v)
			w += ws[j]
		}
		coef := (1/s - w/(s*s)) * e.opts.Gamma
		for j := range vs {
			g.AddInPlace(complex(coef, 0), outers[j])
		}
	default:
		for j, v := range vs {
			l := e.lambda(q, v)
			coef := (1/l - ws[j]/(l*l)) * e.opts.Gamma
			g.AddInPlace(complex(coef, 0), outers[j])
		}
	}
	return g
}
