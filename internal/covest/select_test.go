package covest

import (
	"math"
	"testing"

	"mmwalign/internal/rng"
)

func TestSelectMuValidation(t *testing.T) {
	obs := make([]Observation, 8)
	for i := range obs {
		obs[i] = Observation{V: unitVec(4, i%4), Energy: 1}
	}
	opts := Options{Gamma: 1}
	if _, err := SelectMu(4, obs[:3], opts, []float64{1}); err == nil {
		t.Error("accepted <4 observations")
	}
	if _, err := SelectMu(4, obs, opts, nil); err == nil {
		t.Error("accepted empty grid")
	}
	if _, err := SelectMu(4, obs, opts, []float64{-1}); err == nil {
		t.Error("accepted negative µ")
	}
}

func unitVec(n, i int) []complex128 {
	v := make([]complex128, n)
	v[i] = 1
	return v
}

func TestSelectMuReturnsGridMember(t *testing.T) {
	n := 16
	q, beams, _ := rank1Fixture(n)
	src := rng.New(300)
	var obs []Observation
	for rep := 0; rep < 3; rep++ {
		obs = append(obs, synthObservations(src, q, beams, 1.0)...)
	}
	grid := []float64{0.3, 1, 3}
	mu, err := SelectMu(n, obs, Options{Gamma: 1, MaxIters: 20}, grid)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range grid {
		if mu == g {
			found = true
		}
	}
	if !found {
		t.Errorf("selected µ=%g not in grid %v", mu, grid)
	}
}

func TestSelectMuDeterministic(t *testing.T) {
	n := 16
	q, beams, _ := rank1Fixture(n)
	src := rng.New(301)
	obs := synthObservations(src, q, beams, 1.0)
	grid := []float64{0.5, 2}
	a, err := SelectMu(n, obs, Options{Gamma: 1, MaxIters: 15}, grid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectMu(n, obs, Options{Gamma: 1, MaxIters: 15}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("selection not deterministic: %g vs %g", a, b)
	}
}

func TestSelectMuEstimateQuality(t *testing.T) {
	// The selected µ must identify the planted direction at least as
	// well as the worst candidate: run the full estimator with the
	// chosen µ and confirm it finds the target.
	n := 16
	q, beams, target := rank1Fixture(n)
	src := rng.New(302)
	var obs []Observation
	for rep := 0; rep < 5; rep++ {
		obs = append(obs, synthObservations(src, q, beams, 1.0)...)
	}
	mu, err := SelectMu(n, obs, Options{Gamma: 1, MaxIters: 25}, []float64{0.1, 0.5, 1, 3, 10})
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(n, Options{Gamma: 1, Mu: mu})
	if err != nil {
		t.Fatal(err)
	}
	qhat, _, err := est.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	best, bestVal := -1, math.Inf(-1)
	for i, v := range beams {
		if g := qhat.QuadForm(v); g > bestVal {
			best, bestVal = i, g
		}
	}
	if best != target {
		t.Errorf("µ=%g estimate picked beam %d, want %d", mu, best, target)
	}
}

func TestValidationNLLPrefersTrueCovariance(t *testing.T) {
	// Scoring sanity: the true Q must score no worse than a zero matrix
	// on data generated from Q (in expectation; use many observations).
	n := 16
	q, beams, _ := rank1Fixture(n)
	src := rng.New(303)
	var obs []Observation
	for rep := 0; rep < 20; rep++ {
		obs = append(obs, synthObservations(src, q, beams, 1.0)...)
	}
	zero := q.Scale(0)
	if tn, zn := validationNLL(q, obs, 1), validationNLL(zero, obs, 1); tn >= zn {
		t.Errorf("true Q scored %g, zero scored %g; true should win", tn, zn)
	}
}

func TestMuImprovesRelativeTieBreak(t *testing.T) {
	// The near-tie band must scale with the score magnitude: an
	// unnormalized NLL of ~1e6 differs between equivalent fits by far
	// more than an absolute 1e-12, which made the prefer-larger-µ rule
	// unreachable before the fix.
	base := 1.0e6
	cases := []struct {
		name                 string
		score, best, mu, bmu float64
		want                 bool
	}{
		{"clear win", base - 1, base, 0.1, 1, true},
		{"clear loss", base + 1, base, 10, 1, false},
		{"near-tie larger mu wins", base + 1e-8, base, 10, 1, true},
		{"near-tie smaller mu loses", base - 1e-8, base, 0.1, 1, false},
		{"exact tie larger mu wins", base, base, 10, 1, true},
		{"exact tie smaller mu loses", base, base, 0.1, 1, false},
		{"first candidate vs +Inf sentinel", base, math.Inf(1), 0.1, 0, true},
		{"infinite score still beats sentinel on mu", math.Inf(1), math.Inf(1), 0.1, 0, true},
		{"small scores keep absolute band tie", 1e-13, 0.0, 10, 1, true},
		{"small scores outside band lose", 2e-12, 0.0, 10, 1, false},
	}
	for _, c := range cases {
		if got := muImproves(c.score, c.best, c.mu, c.bmu); got != c.want {
			t.Errorf("%s: muImproves(%g, %g, %g, %g) = %v, want %v",
				c.name, c.score, c.best, c.mu, c.bmu, got, c.want)
		}
	}
}

func TestSelectMuTieBreakPrefersLargerMuAtScale(t *testing.T) {
	// Two grid entries that produce identical estimates (duplicated µ)
	// must resolve to the larger value even when the validation NLL is
	// large, which the old absolute 1e-12 threshold could not do.
	n := 4
	obs := make([]Observation, 40)
	for i := range obs {
		// Large energies inflate the NLL so |bestScore| >> 1.
		obs[i] = Observation{V: unitVec(n, i%n), Energy: 1e7}
	}
	mu, err := SelectMu(n, obs, Options{Gamma: 1}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if mu != 2 {
		t.Fatalf("SelectMu = %g, want 2", mu)
	}
}
