package covest

import (
	"math"
	"testing"

	"mmwalign/internal/rng"
)

func TestSelectMuValidation(t *testing.T) {
	obs := make([]Observation, 8)
	for i := range obs {
		obs[i] = Observation{V: unitVec(4, i%4), Energy: 1}
	}
	opts := Options{Gamma: 1}
	if _, err := SelectMu(4, obs[:3], opts, []float64{1}); err == nil {
		t.Error("accepted <4 observations")
	}
	if _, err := SelectMu(4, obs, opts, nil); err == nil {
		t.Error("accepted empty grid")
	}
	if _, err := SelectMu(4, obs, opts, []float64{-1}); err == nil {
		t.Error("accepted negative µ")
	}
}

func unitVec(n, i int) []complex128 {
	v := make([]complex128, n)
	v[i] = 1
	return v
}

func TestSelectMuReturnsGridMember(t *testing.T) {
	n := 16
	q, beams, _ := rank1Fixture(n)
	src := rng.New(300)
	var obs []Observation
	for rep := 0; rep < 3; rep++ {
		obs = append(obs, synthObservations(src, q, beams, 1.0)...)
	}
	grid := []float64{0.3, 1, 3}
	mu, err := SelectMu(n, obs, Options{Gamma: 1, MaxIters: 20}, grid)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range grid {
		if mu == g {
			found = true
		}
	}
	if !found {
		t.Errorf("selected µ=%g not in grid %v", mu, grid)
	}
}

func TestSelectMuDeterministic(t *testing.T) {
	n := 16
	q, beams, _ := rank1Fixture(n)
	src := rng.New(301)
	obs := synthObservations(src, q, beams, 1.0)
	grid := []float64{0.5, 2}
	a, err := SelectMu(n, obs, Options{Gamma: 1, MaxIters: 15}, grid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectMu(n, obs, Options{Gamma: 1, MaxIters: 15}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("selection not deterministic: %g vs %g", a, b)
	}
}

func TestSelectMuEstimateQuality(t *testing.T) {
	// The selected µ must identify the planted direction at least as
	// well as the worst candidate: run the full estimator with the
	// chosen µ and confirm it finds the target.
	n := 16
	q, beams, target := rank1Fixture(n)
	src := rng.New(302)
	var obs []Observation
	for rep := 0; rep < 5; rep++ {
		obs = append(obs, synthObservations(src, q, beams, 1.0)...)
	}
	mu, err := SelectMu(n, obs, Options{Gamma: 1, MaxIters: 25}, []float64{0.1, 0.5, 1, 3, 10})
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(n, Options{Gamma: 1, Mu: mu})
	if err != nil {
		t.Fatal(err)
	}
	qhat, _, err := est.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	best, bestVal := -1, math.Inf(-1)
	for i, v := range beams {
		if g := qhat.QuadForm(v); g > bestVal {
			best, bestVal = i, g
		}
	}
	if best != target {
		t.Errorf("µ=%g estimate picked beam %d, want %d", mu, best, target)
	}
}

func TestValidationNLLPrefersTrueCovariance(t *testing.T) {
	// Scoring sanity: the true Q must score no worse than a zero matrix
	// on data generated from Q (in expectation; use many observations).
	n := 16
	q, beams, _ := rank1Fixture(n)
	src := rng.New(303)
	var obs []Observation
	for rep := 0; rep < 20; rep++ {
		obs = append(obs, synthObservations(src, q, beams, 1.0)...)
	}
	zero := q.Scale(0)
	if tn, zn := validationNLL(q, obs, 1), validationNLL(zero, obs, 1); tn >= zn {
		t.Errorf("true Q scored %g, zero scored %g; true should win", tn, zn)
	}
}
