package covest

import (
	"fmt"

	"mmwalign/internal/cmat"
)

// SampleCovariance estimates the receive spatial covariance from
// full-vector (digital beamforming) snapshots y_k = √γ·H·u + n by the
// debiased, shrunk sample covariance
//
//	R̂ = (1/K)·Σ_k y_k·y_kᴴ − I            (noise floor removed)
//	Q̂ = (1−α)·P⁺(R̂)/γ + α·(tr(R̂)/(γN))·I  (shrinkage toward scaled identity)
//
// where P⁺ projects onto the PSD cone. Shrinkage weight α in [0, 1]
// stabilizes small-sample estimates; α = 0 is the raw debiased sample
// covariance. This is the estimator a fully-digital receiver would use —
// the upper-bound comparator for the paper's energy-only analog
// estimator.
func SampleCovariance(ys []cmat.Vector, gamma, alpha float64) (*cmat.Matrix, error) {
	if len(ys) == 0 {
		return nil, ErrNoObservations
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("covest: gamma %g must be positive", gamma)
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("covest: shrinkage %g must be in [0,1]", alpha)
	}
	n := len(ys[0])
	acc := cmat.New(n, n)
	for i, y := range ys {
		if len(y) != n {
			return nil, fmt.Errorf("covest: snapshot %d has dimension %d, want %d", i, len(y), n)
		}
		acc.AddInPlace(complex(1/float64(len(ys)), 0), y.Outer(y))
	}
	// Remove the unit noise floor.
	for i := 0; i < n; i++ {
		acc.AddAt(i, i, -1)
	}
	proj, err := cmat.ProjectPSD(acc.Hermitianize())
	if err != nil {
		return nil, fmt.Errorf("covest: sample covariance projection: %w", err)
	}
	q := proj.Scale(complex((1-alpha)/gamma, 0))
	if alpha > 0 {
		tr := real(proj.Trace())
		iso := alpha * tr / (gamma * float64(n))
		for i := 0; i < n; i++ {
			q.AddAt(i, i, complex(iso, 0))
		}
	}
	return q.Hermitianize(), nil
}
