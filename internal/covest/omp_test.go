package covest

import (
	"math"
	"testing"

	"mmwalign/internal/antenna"
	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// steeringDict builds a ULA steering dictionary over a uniform azimuth
// grid.
func steeringDict(n, atoms int) []cmat.Vector {
	ar := antenna.NewULA(n)
	dict := make([]cmat.Vector, atoms)
	for i := range dict {
		az := -math.Pi/2 + math.Pi*(float64(i)+0.5)/float64(atoms)
		dict[i] = ar.Steering(antenna.Direction{Az: az})
	}
	return dict
}

func TestOMPValidation(t *testing.T) {
	y := cmat.Vector{1, 2}
	if _, err := OMP(y, nil, 1, 0); err == nil {
		t.Error("empty dictionary accepted")
	}
	if _, err := OMP(y, []cmat.Vector{{1, 0}}, 0, 0); err == nil {
		t.Error("zero sparsity accepted")
	}
	if _, err := OMP(y, []cmat.Vector{{1}}, 1, 0); err == nil {
		t.Error("atom length mismatch accepted")
	}
}

func TestOMPZeroSignal(t *testing.T) {
	r, err := OMP(cmat.NewVector(4), steeringDict(4, 8), 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Support) != 0 || r.Residual != 0 {
		t.Errorf("zero signal: %+v", r)
	}
}

func TestOMPRecoversPlantedSupport(t *testing.T) {
	n := 16
	dict := steeringDict(n, 32)
	// y = 3·a₅ + (1+2i)·a₂₀ exactly.
	y := dict[5].Scale(3).Add(dict[20].Scale(1 + 2i))
	r, err := OMP(y, dict, 4, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, s := range r.Support {
		found[s] = true
	}
	if !found[5] || !found[20] {
		t.Errorf("support %v misses planted atoms {5, 20}", r.Support)
	}
	if r.Residual > 1e-6 {
		t.Errorf("residual %g on noiseless input", r.Residual)
	}
	// Coefficients of the planted atoms must match.
	for j, idx := range r.Support {
		var want complex128
		switch idx {
		case 5:
			want = 3
		case 20:
			want = 1 + 2i
		default:
			continue
		}
		got := r.Coef[j]
		if d := got - want; real(d)*real(d)+imag(d)*imag(d) > 1e-8 {
			t.Errorf("coef[%d] = %v, want %v", idx, got, want)
		}
	}
}

func TestOMPNoisyRecovery(t *testing.T) {
	src := rng.New(600)
	n := 16
	dict := steeringDict(n, 32)
	y := dict[7].Scale(5)
	for i := range y {
		y[i] += src.ComplexNormal(0.01)
	}
	r, err := OMP(y, dict, 1, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Support) != 1 || r.Support[0] != 7 {
		t.Errorf("support = %v, want [7]", r.Support)
	}
}

func TestOMPSparsityClamped(t *testing.T) {
	n := 4
	dict := steeringDict(n, 6)
	y := dict[0].Scale(1)
	r, err := OMP(y, dict, 100, 0) // k > n and tol 0: runs to the clamp
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Support) > n {
		t.Errorf("support size %d exceeds dimension %d", len(r.Support), n)
	}
}

func TestOMPResidualMonotone(t *testing.T) {
	// Each added atom cannot increase the LS residual: check by running
	// with growing k on the same signal.
	src := rng.New(601)
	n := 12
	dict := steeringDict(n, 24)
	y := cmat.Vector(src.ComplexNormalVec(n, 1))
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		r, err := OMP(y, dict, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Residual > prev+1e-9 {
			t.Fatalf("residual grew from %g to %g at k=%d", prev, r.Residual, k)
		}
		prev = r.Residual
	}
}

func TestBeamspaceEstimateFindsDirection(t *testing.T) {
	src := rng.New(602)
	n := 16
	dict := steeringDict(n, 32)
	// Channel: one path exactly on dictionary atom 11.
	target := 11
	gamma := 4.0
	var snaps []cmat.Vector
	for s := 0; s < 6; s++ {
		g := src.ComplexNormal(1) * complex(math.Sqrt(float64(n)), 0)
		y := dict[target].Scale(complex(math.Sqrt(gamma), 0) * g)
		for i := range y {
			y[i] += src.ComplexNormal(1)
		}
		snaps = append(snaps, y)
	}
	q, err := BeamspaceEstimate(snaps, dict, 2, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsHermitian(1e-9) {
		t.Error("estimate not Hermitian")
	}
	// The quadratic form must peak at (or adjacent to) the target atom.
	best, bestVal := -1, math.Inf(-1)
	for i, d := range dict {
		if v := q.QuadForm(d); v > bestVal {
			best, bestVal = i, v
		}
	}
	if best != target && best != target-1 && best != target+1 {
		t.Errorf("beamspace peak at atom %d, want ~%d", best, target)
	}
}

func TestBeamspaceEstimateValidation(t *testing.T) {
	dict := steeringDict(4, 8)
	if _, err := BeamspaceEstimate(nil, dict, 1, 1); err == nil {
		t.Error("empty snapshots accepted")
	}
	if _, err := BeamspaceEstimate([]cmat.Vector{cmat.NewVector(4)}, dict, 1, 0); err == nil {
		t.Error("zero gamma accepted")
	}
}
