package covest

import (
	"errors"
	"math"
	"testing"

	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// synthObservations draws energy measurements from the true model:
// z ~ CN(0, γ·vᴴQv + 1), w = |z|².
func synthObservations(src *rng.Source, q *cmat.Matrix, beams []cmat.Vector, gamma float64) []Observation {
	obs := make([]Observation, len(beams))
	for j, v := range beams {
		lambda := gamma*q.QuadForm(v) + 1
		z := src.ComplexNormal(lambda)
		obs[j] = Observation{V: v, Energy: real(z)*real(z) + imag(z)*imag(z)}
	}
	return obs
}

// rank1Fixture builds a rank-1 covariance aligned to a known direction
// plus a codebook of candidate beams.
func rank1Fixture(n int) (*cmat.Matrix, []cmat.Vector, int) {
	ar := antenna.NewULA(n)
	cb := antenna.NewDFTCodebook(ar)
	target := 3
	u := cb.Beam(target).Weights
	q := u.Outer(u).Scale(complex(float64(n), 0)) // tr(Q)=N convention
	var beams []cmat.Vector
	for i := 0; i < cb.Size(); i++ {
		beams = append(beams, cb.Beam(i).Weights)
	}
	return q.Hermitianize(), beams, target
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(0, Options{Gamma: 1}); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewEstimator(4, Options{}); err == nil {
		t.Error("expected error for missing gamma")
	}
	if _, err := NewEstimator(4, Options{Gamma: 1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEstimateInputValidation(t *testing.T) {
	e, err := NewEstimator(4, Options{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Estimate(nil, nil); !errors.Is(err, ErrNoObservations) {
		t.Errorf("err = %v, want ErrNoObservations", err)
	}
	if _, _, err := e.Estimate([]Observation{{V: cmat.NewVector(3), Energy: 1}}, nil); err == nil {
		t.Error("expected error for wrong beam dimension")
	}
	if _, _, err := e.Estimate([]Observation{{V: cmat.NewVector(4), Energy: -1}}, nil); err == nil {
		t.Error("expected error for negative energy")
	}
}

func TestEstimateRecoversDominantDirection(t *testing.T) {
	// The estimator's job in the algorithm: after sounding a subset of
	// beams, vᴴQ̂v must rank the true best beam at (or near) the top.
	n := 16
	q, beams, target := rank1Fixture(n)
	gamma := 1.0
	src := rng.New(200)

	// Average several noisy energy draws per beam to emulate the
	// information content of a few TX slots.
	var obs []Observation
	for rep := 0; rep < 6; rep++ {
		obs = append(obs, synthObservations(src, q, beams, gamma)...)
	}

	e, err := NewEstimator(n, Options{Gamma: gamma, Mu: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	qhat, stats, err := e.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iters == 0 {
		t.Error("solver took no iterations")
	}
	best, bestVal := -1, math.Inf(-1)
	for i, v := range beams {
		if g := qhat.QuadForm(v); g > bestVal {
			best, bestVal = i, g
		}
	}
	if best != target {
		t.Errorf("estimated best beam = %d, want %d", best, target)
	}
}

func TestEstimateLowRankUnderRegularization(t *testing.T) {
	n := 16
	q, beams, _ := rank1Fixture(n)
	src := rng.New(201)
	var obs []Observation
	for rep := 0; rep < 4; rep++ {
		obs = append(obs, synthObservations(src, q, beams, 1.0)...)
	}
	e, err := NewEstimator(n, Options{Gamma: 1, Mu: 2})
	if err != nil {
		t.Fatal(err)
	}
	qhat, stats, err := e.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rank > 4 {
		t.Errorf("estimate rank = %d; regularization should keep it low", stats.Rank)
	}
	if !qhat.IsHermitian(1e-9) {
		t.Error("estimate is not Hermitian")
	}
	// PSD check.
	eig, err := cmat.EigHermitian(qhat)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eig.Values {
		if v < -1e-9 {
			t.Errorf("estimate has negative eigenvalue %g", v)
		}
	}
}

func TestEstimateSubspaceMatchesFull(t *testing.T) {
	// The subspace reduction must be exact: same observations, same
	// options → (numerically) the same estimate with and without it.
	n := 12
	q, beams, _ := rank1Fixture(n)
	src := rng.New(202)
	obs := synthObservations(src, q, beams[:7], 1.0) // few beams → small subspace

	mk := func(disable bool) *cmat.Matrix {
		e, err := NewEstimator(n, Options{Gamma: 1, Mu: 0.5, DisableReduction: disable, MaxIters: 60, Tol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		qhat, stats, err := e.Estimate(obs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if disable && stats.SubspaceDim != n {
			t.Errorf("full solve reports subspace %d, want %d", stats.SubspaceDim, n)
		}
		if !disable && stats.SubspaceDim > 7 {
			t.Errorf("reduced solve reports subspace %d, want ≤7", stats.SubspaceDim)
		}
		return qhat
	}
	qr, qf := mk(false), mk(true)
	diff := qr.Sub(qf).FrobeniusNorm() / (1 + qf.FrobeniusNorm())
	if diff > 0.05 {
		t.Errorf("subspace and full estimates differ by %g (relative)", diff)
	}
}

func TestEstimateWarmStartConverges(t *testing.T) {
	n := 16
	q, beams, target := rank1Fixture(n)
	src := rng.New(203)
	obs := synthObservations(src, q, beams, 1.0)
	e, err := NewEstimator(n, Options{Gamma: 1, Mu: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	q1, _, err := e.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-started second estimate with more data must not be worse at
	// identifying the target direction.
	obs2 := append(obs, synthObservations(src, q, beams, 1.0)...)
	q2, _, err := e.Estimate(obs2, q1)
	if err != nil {
		t.Fatal(err)
	}
	best, bestVal := -1, math.Inf(-1)
	for i, v := range beams {
		if g := q2.QuadForm(v); g > bestVal {
			best, bestVal = i, g
		}
	}
	if best != target {
		t.Errorf("warm-started best beam = %d, want %d", best, target)
	}
}

func TestEstimateAggregateKindRuns(t *testing.T) {
	n := 8
	q, beams, _ := rank1Fixture(n)
	src := rng.New(204)
	obs := synthObservations(src, q, beams, 1.0)
	e, err := NewEstimator(n, Options{Gamma: 1, Kind: Aggregate})
	if err != nil {
		t.Fatal(err)
	}
	qhat, _, err := e.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !qhat.IsHermitian(1e-9) {
		t.Error("aggregate estimate not Hermitian")
	}
}

func TestEstimatePerMeasurementBeatsAggregate(t *testing.T) {
	// Design-choice check (ablation): the per-measurement likelihood
	// identifies the planted direction at least as reliably as the
	// aggregate statistic.
	n := 16
	q, beams, target := rank1Fixture(n)
	gamma := 1.0
	score := func(kind ObjectiveKind) int {
		hits := 0
		for trial := 0; trial < 12; trial++ {
			src := rng.New(int64(300 + trial))
			obs := synthObservations(src, q, beams, gamma)
			e, err := NewEstimator(n, Options{Gamma: gamma, Kind: kind, Mu: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			qhat, _, err := e.Estimate(obs, nil)
			if err != nil {
				t.Fatal(err)
			}
			best, bestVal := -1, math.Inf(-1)
			for i, v := range beams {
				if g := qhat.QuadForm(v); g > bestVal {
					best, bestVal = i, g
				}
			}
			if best == target {
				hits++
			}
		}
		return hits
	}
	pm, ag := score(PerMeasurement), score(Aggregate)
	if pm < ag {
		t.Errorf("per-measurement hits %d < aggregate hits %d", pm, ag)
	}
}

func TestEstimateOnChannelCovariance(t *testing.T) {
	// End-to-end against the channel substrate: estimate the RX
	// covariance of a single-path channel from beamformed energy
	// measurements and verify the top estimated direction is the true
	// AoA's codeword.
	tx, rx := antenna.NewUPA(4, 4), antenna.NewUPA(8, 8)
	ch, err := channel.NewSinglePath(rng.New(205), tx, rx, channel.SinglePathSpec{})
	if err != nil {
		t.Fatal(err)
	}
	cb := antenna.NewGridCodebook(rx, 8, 8, math.Pi, math.Pi/2)
	q := ch.RXCovarianceIsotropic()
	wantBeam, _ := cb.BestQuadForm(q)

	gamma := 0.5
	src := rng.New(206)
	var beams []cmat.Vector
	for i := 0; i < cb.Size(); i++ {
		beams = append(beams, cb.Beam(i).Weights)
	}
	var obs []Observation
	for rep := 0; rep < 4; rep++ {
		obs = append(obs, synthObservations(src, q, beams, gamma)...)
	}
	e, err := NewEstimator(rx.Elements(), Options{Gamma: gamma, Mu: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	qhat, _, err := e.Estimate(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotBeam, _ := cb.BestQuadForm(qhat)
	// Accept the true best or one of its grid neighbors (the noisy
	// estimate may land on an adjacent codeword with near-equal gain).
	ok := gotBeam == wantBeam
	for _, nb := range cb.Neighbors(wantBeam) {
		if gotBeam == nb {
			ok = true
		}
	}
	if !ok {
		t.Errorf("estimated best beam %d not at/adjacent to true best %d", gotBeam, wantBeam)
	}
}

func TestEstimateAcceleratedMatchesISTA(t *testing.T) {
	// FISTA and ISTA solve the same problem; their estimates must agree
	// on what matters — the ranking of candidate beams — and land at
	// comparable objective values.
	n := 16
	q, beams, target := rank1Fixture(n)
	src := rng.New(210)
	var obs []Observation
	for rep := 0; rep < 4; rep++ {
		obs = append(obs, synthObservations(src, q, beams, 1.0)...)
	}
	run := func(accel bool) (*cmat.Matrix, Stats) {
		e, err := NewEstimator(n, Options{Gamma: 1, Mu: 0.5, Accelerated: accel, MaxIters: 80, Tol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		qhat, stats, err := e.Estimate(obs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return qhat, stats
	}
	qi, si := run(false)
	qf, sf := run(true)
	if sf.Iters == 0 {
		t.Fatal("FISTA took no iterations")
	}
	bestOf := func(m *cmat.Matrix) int {
		best, bestVal := -1, math.Inf(-1)
		for i, v := range beams {
			if g := m.QuadForm(v); g > bestVal {
				best, bestVal = i, g
			}
		}
		return best
	}
	if bi, bf := bestOf(qi), bestOf(qf); bi != bf || bi != target {
		t.Errorf("ISTA best=%d, FISTA best=%d, want %d", bi, bf, target)
	}
	if math.Abs(si.Objective-sf.Objective) > 0.05*(1+math.Abs(si.Objective)) {
		t.Errorf("objectives diverge: ISTA %g vs FISTA %g", si.Objective, sf.Objective)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Gamma: 1}.withDefaults()
	if o.Mu != 1 || o.MaxIters != 40 || o.Tol != 1e-5 || o.InitStep != 1 || o.Kind != PerMeasurement {
		t.Errorf("unexpected defaults: %+v", o)
	}
}
