package covest

import (
	"fmt"

	"mmwalign/internal/cmat"
)

// ToeplitzAverage projects a Hermitian matrix onto the set of Hermitian
// Toeplitz matrices by averaging along each diagonal — the least-squares
// projection. The receive covariance of a uniform linear array is
// Toeplitz by spatial stationarity, so imposing the structure denoises
// an estimate without any extra measurements.
func ToeplitzAverage(a *cmat.Matrix) (*cmat.Matrix, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("covest: toeplitz projection needs a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	h := a.Hermitianize()
	out := cmat.New(n, n)
	for off := 0; off < n; off++ {
		var sum complex128
		for i := 0; i+off < n; i++ {
			sum += h.At(i, i+off)
		}
		avg := sum / complex(float64(n-off), 0)
		for i := 0; i+off < n; i++ {
			out.Set(i, i+off, avg)
			if off > 0 {
				out.Set(i+off, i, complex(real(avg), -imag(avg)))
			}
		}
	}
	return out, nil
}

// ProjectToeplitzPSD alternates projections onto the Hermitian Toeplitz
// set and the PSD cone for the given number of rounds (Dykstra-free
// alternating projections; both sets are convex and intersect, so the
// iteration converges to a point near the closest structured PSD
// matrix). The result is returned after a final PSD projection so it is
// always PSD; it is Toeplitz up to the convergence tolerance of the
// alternation.
func ProjectToeplitzPSD(a *cmat.Matrix, rounds int) (*cmat.Matrix, error) {
	if rounds < 1 {
		rounds = 1
	}
	cur := a
	for r := 0; r < rounds; r++ {
		t, err := ToeplitzAverage(cur)
		if err != nil {
			return nil, err
		}
		p, err := cmat.ProjectPSD(t)
		if err != nil {
			return nil, fmt.Errorf("covest: toeplitz-psd round %d: %w", r, err)
		}
		cur = p
	}
	return cur, nil
}
