package covest

// Solver-guardrail tests exercised by the fault-injection CI smoke job
// (go test -run FaultInject -race ./...): every poisoned input or
// destabilized solve must end in a typed rejection or a recovered finite
// estimate — never a panic, never a NaN matrix.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// finiteMatrix reports whether every entry of m is finite.
func finiteMatrix(m *cmat.Matrix) bool {
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			v := m.At(i, j)
			if math.IsNaN(real(v)) || math.IsInf(real(v), 0) ||
				math.IsNaN(imag(v)) || math.IsInf(imag(v), 0) {
				return false
			}
		}
	}
	return true
}

func TestFaultInjectPoisonedObservationsRejected(t *testing.T) {
	e, err := NewEstimator(4, Options{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		energy float64
	}{
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
		{"negative", -2},
	}
	for _, tc := range cases {
		obs := []Observation{
			{V: cmat.NewVector(4), Energy: 1},
			{V: cmat.NewVector(4), Energy: tc.energy},
		}
		_, _, err := e.Estimate(obs, nil)
		var oe *ObservationError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: err = %v, want *ObservationError", tc.name, err)
		}
		if oe.Index != 1 || !oe.BadEnergy {
			t.Errorf("%s: attribution = %+v, want Index=1 BadEnergy=true", tc.name, oe)
		}
	}
}

func TestFaultInjectOutlierEnergiesStayFinite(t *testing.T) {
	// Heavy-tailed interference spikes: finite but absurd energies must
	// yield a finite PSD estimate, with diagnostics telling the caller
	// whether a guardrail fired.
	n := 8
	q, beams, _ := rank1Fixture(n)
	src := rng.New(7001)
	obs := synthObservations(src, q, beams, 1)
	for i := range obs {
		if i%3 == 0 {
			obs[i].Energy *= 1e18
		}
	}
	for _, accelerated := range []bool{false, true} {
		e, err := NewEstimator(n, Options{Gamma: 1, Accelerated: accelerated})
		if err != nil {
			t.Fatal(err)
		}
		qhat, stats, err := e.Estimate(obs, nil)
		if err != nil {
			t.Fatalf("accelerated=%v: estimate errored on finite input: %v", accelerated, err)
		}
		if qhat == nil || !finiteMatrix(qhat) {
			t.Fatalf("accelerated=%v: non-finite estimate from finite (outlier) input", accelerated)
		}
		if !isFinite(stats.Objective) && !stats.Diagnostics.Degraded() {
			t.Errorf("accelerated=%v: non-finite objective without a degradation flag: %+v",
				accelerated, stats.Diagnostics)
		}
	}
}

func TestFaultInjectDivergentSolverRecovers(t *testing.T) {
	// An absurd initial step with FISTA's non-monotone acceptance is the
	// classic divergence recipe; the guardrails must recover to a finite
	// iterate instead of returning runaway values.
	n := 8
	q, beams, _ := rank1Fixture(n)
	src := rng.New(7002)
	obs := synthObservations(src, q, beams, 1)

	e, err := NewEstimator(n, Options{Gamma: 1, Accelerated: true, InitStep: 1e12, MaxIters: 60})
	if err != nil {
		t.Fatal(err)
	}
	qhat, stats, err := e.Estimate(obs, nil)
	if err != nil {
		t.Fatalf("estimate errored: %v", err)
	}
	if qhat == nil || !finiteMatrix(qhat) {
		t.Fatal("divergent solve returned a non-finite estimate")
	}
	if !isFinite(stats.Objective) {
		t.Errorf("final objective %g is not finite", stats.Objective)
	}
	if stats.Diagnostics.Reason == StopDiverged && stats.Diagnostics.DivergenceRestarts == 0 {
		t.Error("StopDiverged reported without any recorded restarts")
	}
}

func TestFaultInjectCancelledBeforeSolve(t *testing.T) {
	n := 8
	q, beams, _ := rank1Fixture(n)
	src := rng.New(7003)
	obs := synthObservations(src, q, beams, 1)

	e, err := NewEstimator(n, Options{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qhat, stats, err := e.EstimateContext(ctx, obs, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if qhat != nil {
		t.Error("pre-solve cancellation should return no estimate")
	}
	if stats.Diagnostics.Reason != StopCancelled {
		t.Errorf("reason = %v, want %v", stats.Diagnostics.Reason, StopCancelled)
	}
}

// countdownCtx reports cancellation only after its Err method has been
// consulted n times — a deterministic way to cancel mid-iteration.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

func (c *countdownCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	if c.remaining <= 0 {
		close(ch)
	}
	return ch
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestFaultInjectMidSolveCancellationReturnsBestIterate(t *testing.T) {
	n := 8
	q, beams, _ := rank1Fixture(n)
	src := rng.New(7004)
	obs := synthObservations(src, q, beams, 1)

	for _, accelerated := range []bool{false, true} {
		e, err := NewEstimator(n, Options{Gamma: 1, Accelerated: accelerated, MaxIters: 50})
		if err != nil {
			t.Fatal(err)
		}
		// Survive the upfront check plus a couple of iterations, then
		// cancel mid-loop.
		ctx := &countdownCtx{Context: context.Background(), remaining: 3}
		qhat, stats, err := e.EstimateContext(ctx, obs, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("accelerated=%v: err = %v, want context.Canceled", accelerated, err)
		}
		if qhat == nil || !finiteMatrix(qhat) {
			t.Fatalf("accelerated=%v: cancelled solve must return its best finite iterate", accelerated)
		}
		if stats.Diagnostics.Reason != StopCancelled {
			t.Errorf("accelerated=%v: reason = %v, want %v", accelerated, stats.Diagnostics.Reason, StopCancelled)
		}
		if !stats.Diagnostics.Degraded() {
			t.Errorf("accelerated=%v: cancelled solve should report Degraded", accelerated)
		}
		if stats.Iters >= 50 {
			t.Errorf("accelerated=%v: cancellation did not stop the loop early (%d iters)", accelerated, stats.Iters)
		}
	}
}

func TestFaultInjectStopReasonStrings(t *testing.T) {
	reasons := []StopReason{
		StopConverged, StopMaxIters, StopNoProgress, StopStepCollapse,
		StopNonFinite, StopDiverged, StopProxFailure, StopCancelled,
	}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := r.String()
		if s == "" || seen[s] {
			t.Errorf("reason %d has empty or duplicate string %q", int(r), s)
		}
		seen[s] = true
	}
	if got := StopReason(99).String(); got != "StopReason(99)" {
		t.Errorf("unknown reason string = %q", got)
	}
}
