package covest

import (
	"math"
	"math/rand"
	"testing"

	"mmwalign/internal/cmat"
)

// The batched solver kernels (lambdasFor, gradientInto) promise bitwise
// equality with the scalar path they replaced: per-observation QuadForm
// for λ and an outers-cache rank-one accumulation for the gradient.
// These tests pin that contract with exact (==) comparisons.

func randBatchFixture(t *testing.T, seed int64, dim, l int) (*Estimator, *solverWork, []cmat.Vector, *cmat.Matrix, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	est, err := NewEstimator(dim, Options{Gamma: 1.7, Mu: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	wk := est.work(dim)
	vs := wk.vsFor(l)
	for j := range vs {
		for i := range vs[j] {
			vs[j][i] = complex(r.NormFloat64(), r.NormFloat64())
		}
	}
	wk.packV(vs)
	raw := cmat.New(dim, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			raw.Set(i, j, complex(r.NormFloat64(), r.NormFloat64()))
		}
	}
	q := raw.Hermitianize()
	ws := make([]float64, l)
	for j := range ws {
		ws[j] = r.Float64() * 3
	}
	return est, wk, vs, q, ws
}

func TestBatchedLambdasMatchScalarBitwise(t *testing.T) {
	for _, dims := range [][2]int{{4, 6}, {17, 23}, {56, 96}} {
		est, wk, vs, q, _ := randBatchFixture(t, int64(dims[0]), dims[0], dims[1])
		ls := est.lambdasFor(q, wk)
		for j, v := range vs {
			want := flooredLambda(est.opts.Gamma, q.QuadForm(v))
			if ls[j] != want {
				t.Fatalf("dim=%d L=%d: λ[%d] = %v, want %v (bitwise)", dims[0], dims[1], j, ls[j], want)
			}
		}
	}
}

func TestBatchedGradientMatchesOutersBitwise(t *testing.T) {
	est, wk, vs, q, ws := randBatchFixture(t, 99, 12, 20)
	if !est.gradientInto(wk.grad, q, wk, ws) {
		t.Fatal("gradientInto reported non-finite coefficients on a finite fixture")
	}

	// Reference: the pre-batching gradient — an outer-product cache
	// accumulated with AddInPlace in ascending observation order.
	dim := 12
	ref := cmat.New(dim, dim)
	outer := cmat.New(dim, dim)
	for j, v := range vs {
		l := flooredLambda(est.opts.Gamma, q.QuadForm(v))
		coef := (1/l - ws[j]/(l*l)) * est.opts.Gamma
		outer.SetOuter(v, v)
		ref.AddInPlace(complex(coef, 0), outer)
	}
	for i := 0; i < dim; i++ {
		for k := 0; k < dim; k++ {
			if wk.grad.At(i, k) != ref.At(i, k) {
				t.Fatalf("gradient (%d,%d) = %v, want %v (bitwise)", i, k, wk.grad.At(i, k), ref.At(i, k))
			}
		}
	}
}

func TestBatchedObjectiveMatchesScalarBitwise(t *testing.T) {
	est, wk, vs, q, ws := randBatchFixture(t, 7, 10, 15)
	got := est.objective(q, wk, ws)
	var want float64
	for j, v := range vs {
		l := flooredLambda(est.opts.Gamma, q.QuadForm(v))
		want += math.Log(l) + ws[j]/l
	}
	want += est.opts.Mu * real(q.Trace())
	if got != want {
		t.Fatalf("objective = %v, want %v (bitwise)", got, want)
	}
}

func TestLambdaCacheInvalidation(t *testing.T) {
	est, wk, _, q, _ := randBatchFixture(t, 31, 8, 12)
	first := est.lambdasFor(q, wk)
	v0 := first[0]
	// Memoized: same matrix pointer returns the cached slice without
	// recomputation.
	if wk.lamFor != q {
		t.Fatal("λ cache not tagged after evaluation")
	}
	// Mutating the matrix must be preceded by noteWrite, which drops the
	// tag; the next evaluation then reflects the new contents.
	wk.noteWrite(q)
	if wk.lamFor != nil {
		t.Fatal("noteWrite did not clear the λ cache tag")
	}
	q.Set(0, 0, q.At(0, 0)+complex(1, 0))
	second := est.lambdasFor(q, wk)
	if second[0] == v0 {
		t.Fatal("λ not recomputed after cache invalidation")
	}
	// Sanity: recomputed value matches the scalar path.
	if want := flooredLambda(est.opts.Gamma, q.QuadForm(wk.vs[0])); second[0] != want {
		t.Fatalf("λ[0] after invalidation = %v, want %v", second[0], want)
	}
}

// TestEstimateNoOutersMemory pins the tentpole's memory claim: the
// workspace no longer carries L dense dim×dim outer products, only the
// dim×L packed matrix and its product buffer.
func TestEstimateWorkspaceCarriesPackedVOnly(t *testing.T) {
	est, err := NewEstimator(16, Options{Gamma: 1, Mu: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	obs := make([]Observation, 40)
	for i := range obs {
		v := cmat.NewVector(16)
		for j := range v {
			v[j] = complex(r.NormFloat64(), r.NormFloat64())
		}
		obs[i] = Observation{V: v, Energy: r.Float64()}
	}
	if _, _, err := est.Estimate(obs, nil); err != nil {
		t.Fatal(err)
	}
	wk := est.wk
	if wk.vmat == nil || wk.qv == nil {
		t.Fatal("packed V buffers missing after a solve")
	}
	if wk.vmat.Cols() != wk.qv.Cols() {
		t.Fatalf("vmat %d cols, qv %d cols", wk.vmat.Cols(), wk.qv.Cols())
	}
	if wk.vmat.Rows() != wk.dim {
		t.Fatalf("vmat rows %d, want working dim %d", wk.vmat.Rows(), wk.dim)
	}
}
