package experiment

// Checkpoint/resume and retry-engine tests exercised by the CI resume
// smoke job: a run killed mid-flight resumes from its journal into a
// figure byte-identical to an uninterrupted run (at any worker count,
// under -race), transient faults are absorbed by retries without
// touching the MaxFailedDrops budget, and the manifest carries the
// resume/retry evidence for both.

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mmwalign/internal/align"
	"mmwalign/internal/faultinject"
	"mmwalign/internal/journal"
	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
)

// identicalSeries compares two figure series bit-for-bit: a resumed run
// must reproduce not approximately but exactly.
func identicalSeries(t *testing.T, got, want []metrics.Series) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("series count %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Name != w.Name {
			t.Fatalf("series %d name %q, want %q", i, g.Name, w.Name)
		}
		for _, pair := range []struct {
			label string
			g, w  []float64
		}{{"X", g.X, w.X}, {"Y", g.Y, w.Y}, {"YErr", g.YErr, w.YErr}} {
			if len(pair.g) != len(pair.w) {
				t.Fatalf("series %s %s length %d, want %d", g.Name, pair.label, len(pair.g), len(pair.w))
			}
			for j := range pair.w {
				if math.Float64bits(pair.g[j]) != math.Float64bits(pair.w[j]) {
					t.Fatalf("series %s %s[%d] = %v (bits %x), want %v (bits %x): resume is not bit-identical",
						g.Name, pair.label, j, pair.g[j], math.Float64bits(pair.g[j]), pair.w[j], math.Float64bits(pair.w[j]))
				}
			}
		}
	}
}

// openTestJournal creates or resumes a journal for fig5 at cfg.
func openTestJournal(t *testing.T, path string, cfg Config, resume bool) *journal.Journal {
	t.Helper()
	h, err := JournalHeader(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var jnl *journal.Journal
	if resume {
		jnl, err = journal.Open(path, h)
	} else {
		jnl, err = journal.Create(path, h)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl.Close() })
	return jnl
}

func TestCheckpointResumeBitIdentity(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(map[int]string{1: "workers=1", 8: "workers=8"}[workers], func(t *testing.T) {
			cfg := tinyConfig(false)
			cfg.Workers = workers

			// Ground truth: one uninterrupted run, no journal.
			clean, err := SearchEffectiveness(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Crash: drop 1 panics, strict mode, journal armed. The run
			// fails, but every cell that completed first is on disk.
			path := filepath.Join(t.TempDir(), "fig5.journal")
			crashed := cfg
			crashed.WrapSounder = panicOnDrop(1)
			crashed.Journal = openTestJournal(t, path, cfg, false)
			if _, err := SearchEffectiveness(crashed); err == nil {
				t.Fatal("injected panic did not fail the strict run")
			}
			crashed.Journal.Close()

			recorded := crashed.Journal.Len()
			if recorded == 0 {
				t.Fatal("crashed run journaled nothing; resume would restart from scratch")
			}
			if recorded >= cfg.Drops*len(cfg.Schemes) {
				t.Fatalf("crashed run journaled all %d cells including the panicked drop", recorded)
			}

			// Resume without the fault. Instrument so the manifest carries
			// the resume evidence.
			resumed := cfg
			resumed.Journal = openTestJournal(t, path, cfg, true)
			rec := obs.New()
			fig, err := SearchEffectivenessContext(obs.Into(context.Background(), rec), resumed)
			if err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			identicalSeries(t, fig.Series, clean.Series)

			if fig.Manifest == nil || fig.Manifest.Resume == nil {
				t.Fatal("resumed run manifest lacks resume evidence")
			}
			res := fig.Manifest.Resume
			if res.SkippedCells != recorded {
				t.Errorf("manifest says %d skipped cells, journal held %d", res.SkippedCells, recorded)
			}
			if res.TotalCells != cfg.Drops*len(cfg.Schemes) {
				t.Errorf("manifest total cells = %d, want %d", res.TotalCells, cfg.Drops*len(cfg.Schemes))
			}
			if res.SkippedCells+res.RecordedCells != res.TotalCells {
				t.Errorf("skipped %d + recorded %d != total %d", res.SkippedCells, res.RecordedCells, res.TotalCells)
			}
			if err := fig.Manifest.Validate(); err != nil {
				t.Errorf("resumed manifest invalid: %v", err)
			}
		})
	}
}

func TestCheckpointCancelMidRunThenResume(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.Workers = 2

	clean, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel after the second completed cell via the progress hook —
	// the same path a SIGINT takes through the CLIs.
	path := filepath.Join(t.TempDir(), "fig5.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := obs.New()
	rec.SetProgress(func(p obs.Progress) {
		if p.Done >= 2 {
			cancel()
		}
	})
	interrupted := cfg
	interrupted.Journal = openTestJournal(t, path, cfg, false)
	if _, err := SearchEffectivenessContext(obs.Into(ctx, rec), interrupted); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	interrupted.Journal.Close()

	resumed := cfg
	resumed.Journal = openTestJournal(t, path, cfg, true)
	fig, err := SearchEffectiveness(resumed)
	if err != nil {
		t.Fatalf("resume after cancellation failed: %v", err)
	}
	identicalSeries(t, fig.Series, clean.Series)
}

func TestCheckpointRefusesChangedConfig(t *testing.T) {
	cfg := tinyConfig(false)
	path := filepath.Join(t.TempDir(), "fig5.journal")
	openTestJournal(t, path, cfg, false).Close()

	drifted := cfg
	drifted.GammaDB = 3 // changes figure numbers → changes the hash
	h, err := JournalHeader(5, drifted)
	if err != nil {
		t.Fatal(err)
	}
	var me *journal.MismatchError
	if _, err := journal.Open(path, h); !errors.As(err, &me) || me.Field != "config_hash" {
		t.Fatalf("drifted config resume returned %v, want *MismatchError on config_hash", err)
	}

	// Runtime-only knobs must NOT invalidate a journal: resuming with a
	// different worker count or retry budget is the whole point.
	tuned := cfg
	tuned.Workers = 7
	tuned.MaxFailedDrops = 3
	tuned.MaxRetries = 2
	tuned.RetryBackoff = 1
	if got, want := tuned.CanonicalHash(), cfg.CanonicalHash(); got != want {
		t.Error("runtime knobs changed the canonical config hash")
	}
	if cfg.CanonicalHash() == drifted.CanonicalHash() {
		t.Error("figure-affecting change left the canonical hash untouched")
	}
}

func TestRetryRecoversTransientFaultWithoutBudget(t *testing.T) {
	cfg := tinyConfig(false)

	clean, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Every cell's first attempt panics; the second runs untouched.
	// MaxFailedDrops stays 0 (strict): success proves retries absorbed
	// the faults without consuming the failure budget.
	faulted := cfg
	faulted.WrapSounder = faultinject.WrapTransient(1, faultinject.TransientPanic)
	faulted.MaxRetries = 1
	rec := obs.New()
	fig, err := SearchEffectivenessContext(obs.Into(context.Background(), rec), faulted)
	if err != nil {
		t.Fatalf("transient faults defeated the retry engine: %v", err)
	}
	if fig.Failures != nil {
		t.Fatalf("recovered cells still reported as failures: %+v", fig.Failures)
	}
	// Retried cells are pure functions of (seed, drop, scheme): the
	// figure must match the unfaulted run exactly.
	identicalSeries(t, fig.Series, clean.Series)

	if fig.Manifest == nil || fig.Manifest.Retries == nil {
		t.Fatal("manifest lacks retry evidence")
	}
	rt := fig.Manifest.Retries
	wantCells := int64(cfg.Drops * len(cfg.Schemes))
	if rt.MaxRetries != 1 || rt.RecoveredCells != wantCells || rt.ExhaustedCells != 0 {
		t.Errorf("retry evidence = %+v, want all %d cells recovered with none exhausted", rt, wantCells)
	}
	if rt.Attempts < wantCells {
		t.Errorf("retry attempts = %d, want at least %d", rt.Attempts, wantCells)
	}
	if err := fig.Manifest.Validate(); err != nil {
		t.Errorf("manifest with retry evidence invalid: %v", err)
	}
}

func TestRetryRecoversNaNModeFault(t *testing.T) {
	cfg := tinyConfig(false)
	faulted := cfg
	faulted.WrapSounder = faultinject.WrapTransient(1, faultinject.TransientNaN)
	faulted.MaxRetries = 1
	fig, err := SearchEffectiveness(faulted)
	if err != nil {
		// NaN poisoning degrades rather than fails on some strategies;
		// either a clean success or a retried success is acceptable, an
		// error is not.
		t.Fatalf("NaN-mode transient fault failed the run: %v", err)
	}
	for _, s := range fig.Series {
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestRetryExhaustedReportsAttempts(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.WrapSounder = panicOnDrop(0) // permanent: every attempt panics
	cfg.MaxRetries = 2

	_, err := SearchEffectiveness(cfg)
	if err == nil {
		t.Fatal("permanent fault survived strict mode")
	}
	if !strings.Contains(err.Error(), "2 retries burned over 3 attempts") {
		t.Errorf("error lacks retry attribution: %v", err)
	}

	// Under budget, the failure report itself carries the attempt count.
	cfg.MaxFailedDrops = 1
	fig, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Failures == nil || len(fig.Failures.Failures) == 0 {
		t.Fatal("budgeted permanent failure left no report")
	}
	for _, f := range fig.Failures.Failures {
		if f.Attempts != 3 {
			t.Errorf("cell (%d,%s) reports %d attempts, want 3 (1 + 2 retries)", f.Drop, f.Scheme, f.Attempts)
		}
	}
	if fig.Manifest == nil || fig.Manifest.Retries == nil {
		t.Fatal("manifest lacks retry evidence for exhausted cells")
	}
	if fig.Manifest.Retries.ExhaustedCells != int64(len(fig.Failures.Failures)) {
		t.Errorf("manifest exhausted cells = %d, failure report lists %d",
			fig.Manifest.Retries.ExhaustedCells, len(fig.Failures.Failures))
	}
	if err := fig.Manifest.Validate(); err != nil {
		t.Errorf("manifest invalid: %v", err)
	}
}

func TestTrajectoryCodecRoundTripIsBitExact(t *testing.T) {
	tr := align.Trajectory{
		Scheme:          "proposed",
		OptPair:         align.Pair{TX: 3, RX: 41},
		OptSNR:          1.2345678901234567e-3,
		LossDB:          []float64{math.Inf(1), math.Inf(1), 7.062999999999999, 0, math.SmallestNonzeroFloat64, -0.0},
		BestPair:        align.Pair{TX: 9, RX: 2},
		BestMeasuredSNR: math.MaxFloat64,
		BestTrueSNR:     math.Nextafter(1, 2),
	}
	data, err := encodeTrajectory(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeTrajectory(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != tr.Scheme || got.OptPair != tr.OptPair || got.BestPair != tr.BestPair {
		t.Errorf("identity fields mangled: %+v", got)
	}
	for _, pair := range []struct{ g, w float64 }{
		{got.OptSNR, tr.OptSNR},
		{got.BestMeasuredSNR, tr.BestMeasuredSNR},
		{got.BestTrueSNR, tr.BestTrueSNR},
	} {
		if math.Float64bits(pair.g) != math.Float64bits(pair.w) {
			t.Errorf("scalar %v (bits %x) != %v (bits %x)", pair.g, math.Float64bits(pair.g), pair.w, math.Float64bits(pair.w))
		}
	}
	if len(got.LossDB) != len(tr.LossDB) {
		t.Fatalf("LossDB length %d, want %d", len(got.LossDB), len(tr.LossDB))
	}
	for i := range tr.LossDB {
		if math.Float64bits(got.LossDB[i]) != math.Float64bits(tr.LossDB[i]) {
			t.Errorf("LossDB[%d] bits %x, want %x (value %v)", i, math.Float64bits(got.LossDB[i]), math.Float64bits(tr.LossDB[i]), tr.LossDB[i])
		}
	}
}

func TestRetryDelayCapped(t *testing.T) {
	if d := retryDelay(0, 5); d != 0 {
		t.Errorf("zero base gave %v", d)
	}
	base := retryDelay(1, 0)
	if base != 1 {
		t.Errorf("first retry delay = %v, want base", base)
	}
	if d := retryDelay(1, 40); d > 100 {
		t.Errorf("delay %v exceeds 100x cap", d)
	}
	if d1, d2 := retryDelay(1, 1), retryDelay(1, 2); d2 != 2*d1 {
		t.Errorf("delays not doubling: %v then %v", d1, d2)
	}
}

func TestRetryDelayOverflow(t *testing.T) {
	const maxDelay = time.Duration(math.MaxInt64)
	cases := []struct {
		name    string
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{"doubling-0", time.Millisecond, 0, time.Millisecond},
		{"doubling-1", time.Millisecond, 1, 2 * time.Millisecond},
		{"doubling-5", time.Millisecond, 5, 32 * time.Millisecond},
		{"small-base-5s-cap", time.Second, 30, 5 * time.Second},
		// 2^63·base overflows int64 for any positive base: the shift
		// count must be bounded, not wrapped through the sign bit.
		{"attempt-63", time.Nanosecond, 63, 100 * time.Nanosecond},
		{"attempt-64", time.Nanosecond, 64, 100 * time.Nanosecond},
		{"attempt-1000", time.Nanosecond, 1000, 100 * time.Nanosecond},
		// 100·base wraps int64 when base > MaxInt64/100; the cap must
		// saturate instead of going negative.
		{"base-near-max", maxDelay - 1, 0, maxDelay - 1},
		{"base-near-max-retry", maxDelay - 1, 5, maxDelay},
		{"base-near-max-attempt-63", maxDelay - 1, 63, maxDelay},
		{"base-just-over-cap-limit", maxDelay/100 + 1, 10, maxDelay},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := retryDelay(tc.base, tc.attempt)
			if got < 0 {
				t.Fatalf("retryDelay(%v, %d) = %v, negative (overflow)", tc.base, tc.attempt, got)
			}
			if got != tc.want {
				t.Errorf("retryDelay(%v, %d) = %v, want %v", tc.base, tc.attempt, got, tc.want)
			}
		})
	}
}
