package experiment

// Engine-level fault-tolerance tests exercised by the fault-injection
// CI smoke job (go test -run FaultInject -race ./...): worker panics
// become attributed errors, the error budget turns failed drops into
// first-class partial results, cancellation drains cleanly without
// leaking goroutines, and all of it stays deterministic across worker
// counts.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"mmwalign/internal/cmat"
	"mmwalign/internal/faultinject"
	"mmwalign/internal/meas"
)

// panicProber crashes on the first pair measurement — the stand-in for
// a latent shape or index bug inside one drop's linear algebra.
type panicProber struct {
	meas.Prober
}

func (p *panicProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	panic("faultinject: deliberate measurement panic")
}

// panicOnDrop wraps the sounder of a single drop with panicProber.
func panicOnDrop(target int) func(drop int, scheme string, p meas.Prober) meas.Prober {
	return func(drop int, scheme string, p meas.Prober) meas.Prober {
		if drop == target {
			return &panicProber{Prober: p}
		}
		return p
	}
}

func TestFaultInjectPanicIsolatedUnderBudget(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.WrapSounder = panicOnDrop(1)
	cfg.MaxFailedDrops = 1

	fig, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatalf("a budgeted panic must not fail the figure: %v", err)
	}
	if fig.Failures == nil {
		t.Fatal("figure carries no failure report")
	}
	if fig.Failures.FailedDrops != 1 || fig.Failures.TotalDrops != cfg.Drops {
		t.Fatalf("report = %+v, want 1 of %d drops failed", fig.Failures, cfg.Drops)
	}
	var pe *PanicError
	if !errors.As(fig.Failures.Err(), &pe) {
		t.Fatalf("joined failures lack a *PanicError: %v", fig.Failures.Err())
	}
	if pe.Drop != 1 || len(pe.Stack) == 0 {
		t.Errorf("panic attribution = drop %d, stack %d bytes; want drop 1 with a stack", pe.Drop, len(pe.Stack))
	}
	// The failed drop is excluded for every scheme.
	for _, f := range fig.Failures.Failures {
		if f.Drop != 1 {
			t.Errorf("unexpected failed cell %+v", f)
		}
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if math.IsNaN(y) {
				t.Errorf("series %s point %d is NaN after exclusion", s.Name, i)
			}
		}
	}
}

func TestFaultInjectPanicOverBudgetFailsWithAttribution(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.WrapSounder = panicOnDrop(0)
	// MaxFailedDrops defaults to 0: strict mode.

	_, err := SearchEffectiveness(cfg)
	if err == nil {
		t.Fatal("strict mode swallowed a panicked drop")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error chain lacks the *PanicError: %v", err)
	}
	if pe.Drop != 0 {
		t.Errorf("panic attributed to drop %d, want 0", pe.Drop)
	}
}

func TestFaultInjectInjectedFaultsDegradeNotCrash(t *testing.T) {
	// Poisoned energies, erasures, and blockage on every cell: strategies
	// must degrade (estimator fallback to scan order) rather than fail,
	// so the figure completes with zero failed drops even in strict mode.
	cfg := tinyConfig(false)
	cfg.WrapSounder = faultinject.Wrap(faultinject.Config{
		Seed:       5,
		PNaN:       0.05,
		PInf:       0.03,
		POutlier:   0.1,
		PDrop:      0.1,
		BlockAfter: 16,
	})

	fig, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatalf("fault injection crashed the engine: %v", err)
	}
	if fig.Failures != nil {
		t.Fatalf("graceful degradation should leave no failed drops, got %+v", fig.Failures)
	}
	if len(fig.Series) != len(cfg.Schemes) {
		t.Fatalf("series count = %d, want %d", len(fig.Series), len(cfg.Schemes))
	}
}

func TestFaultInjectWorkerCountInvariance(t *testing.T) {
	// Determinism under injection AND failure: the figure and its
	// failure report must be bit-identical regardless of worker count.
	run := func(workers int) Figure {
		cfg := tinyConfig(false)
		cfg.Workers = workers
		cfg.MaxFailedDrops = 1
		faulty := faultinject.Wrap(faultinject.Config{Seed: 5, PNaN: 0.05, POutlier: 0.1, PDrop: 0.1})
		cfg.WrapSounder = func(drop int, scheme string, p meas.Prober) meas.Prober {
			if drop == 2 {
				return &panicProber{Prober: p}
			}
			return faulty(drop, scheme, p)
		}
		fig, err := SearchEffectiveness(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fig
	}
	a, b := run(1), run(8)
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series count differs: %d vs %d", len(a.Series), len(b.Series))
	}
	for si := range a.Series {
		for i := range a.Series[si].Y {
			if a.Series[si].Y[i] != b.Series[si].Y[i] || a.Series[si].YErr[i] != b.Series[si].YErr[i] {
				t.Fatalf("series %s point %d differs across worker counts", a.Series[si].Name, i)
			}
		}
	}
	if a.Failures == nil || b.Failures == nil {
		t.Fatal("both runs should report the panicked drop")
	}
	if a.Failures.FailedDrops != b.Failures.FailedDrops || len(a.Failures.Failures) != len(b.Failures.Failures) {
		t.Fatalf("failure reports differ: %+v vs %+v", a.Failures, b.Failures)
	}
	for i := range a.Failures.Failures {
		fa, fb := a.Failures.Failures[i], b.Failures.Failures[i]
		if fa.Drop != fb.Drop || fa.Scheme != fb.Scheme {
			t.Fatalf("failure %d coordinates differ: (%d,%s) vs (%d,%s)", i, fa.Drop, fa.Scheme, fb.Drop, fb.Scheme)
		}
	}
}

func TestFaultInjectCancellationDrainsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := tinyConfig(false)
	cfg.Drops = 24 // long enough that cancellation lands mid-run
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := SearchEffectivenessContext(ctx, cfg)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled experiment did not return")
	}

	// Workers must have drained: allow the runtime a moment to retire
	// finished goroutines, then require the count back at baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after cancellation", before, after)
	}
}

func TestFaultInjectPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SearchEffectivenessContext(ctx, tinyConfig(false)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := GenerateContext(ctx, 7, tinyConfig(false)); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateContext err = %v, want context.Canceled", err)
	}
}
