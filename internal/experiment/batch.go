package experiment

import (
	"sync"

	"mmwalign/internal/cmat"
	"mmwalign/internal/obs"
)

// Cross-cell GEMM batching. With CrossCellBatch enabled, every
// concurrently running "proposed"/"two-sided" cell routes its
// per-iteration Q·V product (the solver's hottest GEMM) through one
// shared scheduler instead of calling cmat.MulInto directly. The
// scheduler drains whatever requests are queued at that instant, groups
// them by matrix shape, and executes each group as a single virtual
// tall GEMM (cmat.MulIntoPanels) — one parallel fan-out amortized
// across cells whose individual products sit below the per-call
// parallel threshold.
//
// Fidelity: batching is pure scheduling. MulIntoPanels produces each
// panel's dst with the same row kernel and the same per-entry
// accumulation order as MulInto, so a batched solve is bitwise
// identical to an unbatched one — which is why CrossCellBatch is a
// runtime-only knob zeroed in CanonicalHash, like Workers.

// gemmRequest is one cell's pending product. done receives the
// recovered panic value of the executing kernel (nil on success)
// exactly once.
type gemmRequest struct {
	panel cmat.Panel
	done  chan any
}

// gemmShape is the grouping key: panels executed together must agree on
// every dimension, and the per-panel validation inside MulIntoPanels
// then cannot trip on a well-formed group member because of a
// malformed one.
type gemmShape struct {
	dstRows, dstCols, aRows, aCols, bRows, bCols int
}

func shapeOf(p cmat.Panel) gemmShape {
	return gemmShape{
		dstRows: p.Dst.Rows(), dstCols: p.Dst.Cols(),
		aRows: p.A.Rows(), aCols: p.A.Cols(),
		bRows: p.B.Rows(), bCols: p.B.Cols(),
	}
}

// gemmBatcher implements covest.Batcher over a single dispatcher
// goroutine. Requesters block on their done channel, so the dispatcher
// owns every enqueued panel's memory for the duration of the group
// execute — the channel handoff is the happens-before edge in both
// directions.
type gemmBatcher struct {
	reqs     chan gemmRequest
	wg       sync.WaitGroup
	requests *obs.Counter
	groups   *obs.Counter
	batched  *obs.Counter // requests that shared a group with at least one other
}

// newGemmBatcher starts the dispatcher. rec's counters make the
// coalescing observable in the manifest: batch_gemm_requests,
// batch_gemm_groups, batch_gemm_coalesced.
func newGemmBatcher(rec *obs.Recorder) *gemmBatcher {
	g := &gemmBatcher{
		reqs:     make(chan gemmRequest, 64),
		requests: rec.Counter("batch_gemm_requests"),
		groups:   rec.Counter("batch_gemm_groups"),
		batched:  rec.Counter("batch_gemm_coalesced"),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

// MulInto implements covest.Batcher: enqueue, wait, re-panic any kernel
// panic in the caller's goroutine so cell panic attribution (drop,
// scheme) is preserved.
func (g *gemmBatcher) MulInto(dst, a, b *cmat.Matrix) {
	done := make(chan any, 1)
	g.reqs <- gemmRequest{panel: cmat.Panel{Dst: dst, A: a, B: b}, done: done}
	if v := <-done; v != nil {
		panic(v)
	}
}

// stop drains the dispatcher. Callers must guarantee no MulInto is in
// flight or forthcoming (the run's worker WaitGroup does).
func (g *gemmBatcher) stop() {
	close(g.reqs)
	g.wg.Wait()
}

// run is the dispatcher loop: block for one request, opportunistically
// drain everything else already queued, execute by shape group. The
// dispatcher never blocks on a requester, so requesters blocking on it
// cannot deadlock.
func (g *gemmBatcher) run() {
	defer g.wg.Done()
	var pending []gemmRequest
	for req := range g.reqs {
		pending = append(pending[:0], req)
	drain:
		for {
			select {
			case more, ok := <-g.reqs:
				if !ok {
					break drain
				}
				pending = append(pending, more)
			default:
				break drain
			}
		}
		g.execute(pending)
	}
}

// execute groups the drained requests by shape (preserving arrival
// order within a group) and runs each group as one panel batch. A
// kernel panic is fanned out to every member of its group — the group
// shares one execution, so it shares the failure — and each affected
// cell turns it into its own attributed *PanicError.
func (g *gemmBatcher) execute(pending []gemmRequest) {
	g.requests.Add(int64(len(pending)))
	byShape := make(map[gemmShape][]gemmRequest, 1)
	var order []gemmShape
	for _, r := range pending {
		s := shapeOf(r.panel)
		if _, seen := byShape[s]; !seen {
			order = append(order, s)
		}
		byShape[s] = append(byShape[s], r)
	}
	for _, s := range order {
		group := byShape[s]
		g.groups.Add(1)
		if len(group) > 1 {
			g.batched.Add(int64(len(group)))
		}
		panels := make([]cmat.Panel, len(group))
		for i, r := range group {
			panels[i] = r.panel
		}
		v := runPanels(panels)
		for _, r := range group {
			r.done <- v
		}
	}
}

// runPanels executes one shape group, converting a kernel panic into a
// value instead of unwinding the dispatcher.
func runPanels(panels []cmat.Panel) (v any) {
	defer func() { v = recover() }()
	cmat.MulIntoPanels(panels)
	return nil
}
