package experiment

// Observability-layer tests at the engine seam: instrumentation must be
// numerics-neutral (byte-identical CSV with the recorder installed or
// absent, at any worker count), the run manifest must validate and
// carry real phase/solver data, and progress events must tally with the
// failure report. The CI race step on this package runs these at
// Workers>1 with -race, which is the concurrency proof.

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
)

// csvBytes renders a figure the way cmd/figgen persists it.
func csvBytes(t *testing.T, fig Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := metrics.WriteCSV(&buf, fig.XLabel, fig.Series); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.Bytes()
}

func TestInstrumentationIsNumericsNeutral(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.Workers = 8

	plain, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatalf("uninstrumented run: %v", err)
	}

	rec := obs.New()
	var mu sync.Mutex
	var events []obs.Progress
	rec.SetProgress(func(p obs.Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	instr, err := SearchEffectivenessContext(obs.Into(context.Background(), rec), cfg)
	if err != nil {
		t.Fatalf("instrumented run: %v", err)
	}

	if !bytes.Equal(csvBytes(t, plain), csvBytes(t, instr)) {
		t.Error("CSV differs between instrumented and uninstrumented runs")
	}

	mu.Lock()
	got := len(events)
	mu.Unlock()
	want := cfg.Drops * len(cfg.Schemes)
	if got != want {
		t.Errorf("progress events = %d, want %d (drops × schemes)", got, want)
	}
}

func TestManifestCarriesRunEvidence(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.Workers = 4

	rec := obs.New()
	fig, err := SearchEffectivenessContext(obs.Into(context.Background(), rec), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	m := fig.Manifest
	if m == nil {
		t.Fatal("figure has no manifest")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if !m.Instrumented {
		t.Error("manifest not marked instrumented")
	}
	if m.Figure != fig.ID || m.Seed != cfg.Seed {
		t.Errorf("manifest identity = (%s, %d), want (%s, %d)", m.Figure, m.Seed, fig.ID, cfg.Seed)
	}
	if len(m.Config) == 0 {
		t.Error("manifest carries no config")
	}
	phases := make(map[string]obs.PhaseStat, len(m.Phases))
	for _, p := range m.Phases {
		phases[p.Name] = p
	}
	for _, name := range []string{"channel", "sounding", "oracle", "estimation", "selection"} {
		if phases[name].Count == 0 {
			t.Errorf("phase %q recorded no spans (phases: %+v)", name, m.Phases)
		}
	}
	if m.Solver.Estimations == 0 || m.Solver.Iters == 0 {
		t.Errorf("solver aggregate empty: %+v", m.Solver)
	}
	if m.Counters["measurements"] == 0 || m.Counters["alignment_runs"] == 0 {
		t.Errorf("counters empty: %+v", m.Counters)
	}
	if m.Failures != nil {
		t.Errorf("clean run reported failures: %+v", m.Failures)
	}
}

func TestManifestWithoutRecorderIsStillValid(t *testing.T) {
	fig, err := SearchEffectiveness(tinyConfig(false))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	m := fig.Manifest
	if m == nil {
		t.Fatal("uninstrumented figure has no manifest")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Instrumented || len(m.Phases) != 0 {
		t.Errorf("uninstrumented manifest carries instrumentation: %+v", m)
	}
}

func TestManifestSummarizesInjectedFailures(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.WrapSounder = panicOnDrop(1)
	cfg.MaxFailedDrops = 1

	rec := obs.New()
	fig, err := SearchEffectivenessContext(obs.Into(context.Background(), rec), cfg)
	if err != nil {
		t.Fatalf("budgeted failure must not fail the figure: %v", err)
	}
	m := fig.Manifest
	if m == nil || m.Failures == nil {
		t.Fatal("manifest lacks the failure summary")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Failures.FailedDrops != 1 || m.Failures.TotalDrops != cfg.Drops {
		t.Errorf("failure summary = %+v, want 1 of %d", m.Failures, cfg.Drops)
	}
	for _, c := range m.Failures.Cells {
		if c.Drop != 1 || c.Scheme == "" || c.Error == "" {
			t.Errorf("malformed failure cell %+v", c)
		}
	}
}

func TestCostEfficiencyAttachesManifest(t *testing.T) {
	rec := obs.New()
	fig, err := CostEfficiencyContext(obs.Into(context.Background(), rec), tinyConfig(false))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if fig.Manifest == nil {
		t.Fatal("cost-efficiency figure has no manifest")
	}
	if err := fig.Manifest.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if fig.Manifest.Figure != fig.ID {
		t.Errorf("manifest figure = %s, want %s", fig.Manifest.Figure, fig.ID)
	}
}
