package experiment

import (
	"context"
	"encoding/json"
	"math"

	"mmwalign/internal/rng"
)

// CellBudget returns the per-cell measurement budget a figure sweep
// uses: ceil(max search rate × total codebook pairs) after defaults.
// Shard workers compute cells through this budget so their journal
// payloads are bit-identical to the ones an in-process sweep records.
func (c Config) CellBudget() int {
	c = c.WithDefaults()
	maxRate := c.SearchRates[len(c.SearchRates)-1]
	return int(math.Ceil(maxRate * float64(c.totalPairs())))
}

// ComputeCell runs exactly one (drop, scheme) cell of the given figure
// — defaults applied, Multipath forced by the figure number, the sweep
// budget, the retry engine, panic recovery — and returns the journal
// payload its trajectory encodes to, plus the attempt count. Cells are
// pure functions of (seed, drop, scheme), so the payload is
// byte-identical to what an uninterrupted in-process sweep would
// journal for the same cell: the foundation of the shard engine's
// byte-identity guarantee.
func ComputeCell(ctx context.Context, figure int, cfg Config, drop int, scheme string) (json.RawMessage, int, error) {
	rc, _, err := ConfigForFigure(figure, cfg)
	if err != nil {
		return nil, 0, err
	}
	root := rng.New(rc.Seed)
	c := runCellWithRetry(ctx, rc, root, drop, scheme, rc.CellBudget(), &runStats{})
	if c.err != nil {
		return nil, c.attempts, c.err
	}
	payload, err := encodeTrajectory(c.tr)
	if err != nil {
		return nil, c.attempts, err
	}
	return payload, c.attempts, nil
}
