package experiment

import (
	"context"
	"math"
	"testing"

	"mmwalign/internal/align"
)

// tinyConfig keeps experiment tests fast: 2x2/4x4 arrays, 8x16 books
// (T = 128), few drops.
func tinyConfig(multipath bool) Config {
	return Config{
		Seed:  42,
		Drops: 3,
		TXx:   2, TXz: 2, RXx: 4, RXz: 4,
		TXBookAz: 4, TXBookEl: 2, RXBookAz: 4, RXBookEl: 4,
		GammaDB:     0,
		Snapshots:   4,
		J:           4,
		Multipath:   multipath,
		SearchRates: []float64{0.1, 0.2, 0.3},
		TargetsDB:   []float64{1, 3},
		Schemes:     []string{"random", "proposed"},
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Drops != 100 || c.TXx != 4 || c.RXx != 8 || c.J != 8 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if len(c.SearchRates) == 0 || len(c.TargetsDB) == 0 || len(c.Schemes) != 3 {
		t.Errorf("sweep defaults missing: %+v", c)
	}
	if got := c.totalPairs(); got != 16*64 {
		t.Errorf("totalPairs = %d, want 1024", got)
	}
}

func TestSearchEffectivenessShape(t *testing.T) {
	fig, err := SearchEffectiveness(tinyConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig5" {
		t.Errorf("ID = %q, want fig5", fig.ID)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(s.X) != 3 {
			t.Fatalf("series %s has %d points, want 3", s.Name, len(s.X))
		}
		for i, y := range s.Y {
			if y < 0 || math.IsNaN(y) {
				t.Errorf("series %s point %d invalid loss %g", s.Name, i, y)
			}
		}
	}
}

func TestSearchEffectivenessMultipathID(t *testing.T) {
	fig, err := SearchEffectiveness(tinyConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig6" {
		t.Errorf("ID = %q, want fig6", fig.ID)
	}
}

func TestCostEfficiencyShape(t *testing.T) {
	fig, err := CostEfficiency(tinyConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig7" {
		t.Errorf("ID = %q, want fig7", fig.ID)
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %s has %d targets", s.Name, len(s.Y))
		}
		for i, y := range s.Y {
			if y <= 0 || y > 1 {
				t.Errorf("series %s target %d rate %g outside (0,1]", s.Name, i, y)
			}
		}
		// A looser target can never require more measurements.
		if s.Y[1] > s.Y[0]+1e-12 {
			t.Errorf("series %s: rate for 3dB (%g) exceeds rate for 1dB (%g)", s.Name, s.Y[1], s.Y[0])
		}
	}
}

func TestGenerateDispatch(t *testing.T) {
	cfg := tinyConfig(false)
	ids := map[int]string{5: "fig5", 6: "fig6", 7: "fig7", 8: "fig8"}
	for figNum, wantID := range ids {
		fig, err := Generate(figNum, cfg)
		if err != nil {
			t.Fatalf("fig %d: %v", figNum, err)
		}
		if fig.ID != wantID {
			t.Errorf("Generate(%d).ID = %q, want %q", figNum, fig.ID, wantID)
		}
	}
	if _, err := Generate(4, cfg); err == nil {
		t.Error("Generate(4) should fail")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := tinyConfig(false)
	a, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for i := range a.Series[si].Y {
			if a.Series[si].Y[i] != b.Series[si].Y[i] {
				t.Fatalf("series %s point %d differs across identical runs", a.Series[si].Name, i)
			}
		}
	}
}

// TestWorkerCountInvariance pins the concurrency contract of the drop
// runner: rng splits are pure functions of (seed, name) and results are
// buffered and visited in order, so the trajectories must be
// bit-identical — not merely close — regardless of how many workers
// execute them.
func TestWorkerCountInvariance(t *testing.T) {
	collect := func(workers int) []align.Trajectory {
		cfg := tinyConfig(false)
		cfg.Workers = workers
		var trs []align.Trajectory
		_, _, err := trajectories(context.Background(), cfg, 32, func(scheme string, drop int, tr align.Trajectory) {
			trs = append(trs, tr)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return trs
	}
	serial := collect(1)
	parallel := collect(8)
	if len(serial) != len(parallel) {
		t.Fatalf("trajectory count differs: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Scheme != b.Scheme || a.OptPair != b.OptPair || a.BestPair != b.BestPair {
			t.Fatalf("trajectory %d identity differs: %+v vs %+v", i, a, b)
		}
		if a.OptSNR != b.OptSNR || a.BestMeasuredSNR != b.BestMeasuredSNR || a.BestTrueSNR != b.BestTrueSNR {
			t.Fatalf("trajectory %d SNR fields differ bitwise", i)
		}
		if len(a.LossDB) != len(b.LossDB) {
			t.Fatalf("trajectory %d loss length differs: %d vs %d", i, len(a.LossDB), len(b.LossDB))
		}
		for l := range a.LossDB {
			if a.LossDB[l] != b.LossDB[l] {
				t.Fatalf("trajectory %d (%s) loss[%d] differs bitwise: %v vs %v",
					i, a.Scheme, l, a.LossDB[l], b.LossDB[l])
			}
		}
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.Schemes = []string{"psychic"}
	if _, err := SearchEffectiveness(cfg); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestHierarchicalSchemeSupported(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.Schemes = []string{"hierarchical"}
	fig, err := SearchEffectiveness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || fig.Series[0].Name != "hierarchical" {
		t.Errorf("unexpected series: %+v", fig.Series)
	}
}

// TestProposedBeatsBaselinesIntegration is the reproduction's headline
// integration check: at the paper's full problem size (4×4/8×8 arrays,
// T = 1024 pairs) the proposed scheme's mean loss at a moderate search
// rate must beat Random and Scan on both channel types — the Fig. 5/6
// ordering. The advantage is specific to large beam spaces: on tiny
// codebooks (T ≈ 100) random sampling covers the space quickly and
// adaptivity has no room to pay off, which is exactly the paper's
// motivation for studying large arrays.
func TestProposedBeatsBaselinesIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in -short mode")
	}
	for _, multipath := range []bool{false, true} {
		cfg := Config{
			Seed:        42,
			Drops:       16,
			Multipath:   multipath,
			SearchRates: []float64{0.25},
			Schemes:     []string{"random", "scan", "proposed"},
		}
		fig, err := SearchEffectiveness(cfg)
		if err != nil {
			t.Fatal(err)
		}
		get := func(name string) float64 {
			for _, s := range fig.Series {
				if s.Name == name {
					return s.At(0.25)
				}
			}
			t.Fatalf("series %s missing", name)
			return 0
		}
		prop, random, scan := get("proposed"), get("random"), get("scan")
		if prop > random || prop > scan {
			t.Errorf("multipath=%v: proposed %.2f dB not best (random %.2f, scan %.2f)",
				multipath, prop, random, scan)
		}
	}
}
