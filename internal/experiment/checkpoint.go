package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"mmwalign/internal/align"
	"mmwalign/internal/journal"
)

// CanonicalHash returns the canonical hash of everything in the config
// that determines figure output: the fully defaulted config with the
// runtime-only knobs zeroed (Workers, CrossCellBatch, MaxFailedDrops,
// MaxRetries, RetryBackoff — none of which can change a successfully
// computed cell). Two configs with equal hashes produce bit-identical cells, so
// the hash is the resume-safety check a journal header carries.
// WrapSounder is excluded from the config JSON entirely; an injection
// hook that alters measurements makes a journal as stale as a config
// change, which resume tooling cannot detect — don't checkpoint
// injected runs you intend to resume cleanly.
func (c Config) CanonicalHash() string {
	c = c.WithDefaults()
	c.Workers = 0
	c.CrossCellBatch = false
	c.MaxFailedDrops = 0
	c.MaxRetries = 0
	c.RetryBackoff = 0
	c.Journal = nil
	data, err := json.Marshal(c)
	if err != nil {
		// Config is a plain data struct; Marshal cannot fail on it. Keep
		// the path total anyway.
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ConfigForFigure resolves the figure-specific config exactly as
// GenerateContext would run it (Multipath forced by the figure number,
// all defaults applied) plus the figure identifier. Checkpoint tooling
// uses it to compute the journal header — hash, figure, shape — before
// the run starts.
func ConfigForFigure(figure int, cfg Config) (Config, string, error) {
	switch figure {
	case 5:
		cfg.Multipath = false
	case 6:
		cfg.Multipath = true
	case 7:
		cfg.Multipath = false
	case 8:
		cfg.Multipath = true
	default:
		return Config{}, "", fmt.Errorf("experiment: the paper has figures 5-8, not %d", figure)
	}
	return cfg.WithDefaults(), fmt.Sprintf("fig%d", figure), nil
}

// JournalHeader builds the journal header for resuming the given
// figure run: canonical config hash, figure identity, and the run
// shape for inspection tooling.
func JournalHeader(figure int, cfg Config) (journal.Header, error) {
	rc, figID, err := ConfigForFigure(figure, cfg)
	if err != nil {
		return journal.Header{}, err
	}
	return journal.Header{
		Figure:     figID,
		ConfigHash: rc.CanonicalHash(),
		Version:    VersionString(),
		Seed:       rc.Seed,
		Drops:      rc.Drops,
		Schemes:    append([]string(nil), rc.Schemes...),
	}, nil
}

// trajRecord is the journal payload of one completed cell. Every
// float64 is stored as its IEEE-754 bit pattern (a uint64 survives a
// JSON round trip exactly, a decimal float need not), which is what
// makes a resumed run byte-identical to an uninterrupted one — and
// what lets ±Inf sentinels in LossDB (no pair sounded yet) round-trip
// at all, since encoding/json rejects them as numbers.
type trajRecord struct {
	Scheme       string   `json:"scheme"`
	OptTX        int      `json:"opt_tx"`
	OptRX        int      `json:"opt_rx"`
	OptSNRBits   uint64   `json:"opt_snr_bits"`
	LossDBBits   []uint64 `json:"loss_db_bits"`
	BestTX       int      `json:"best_tx"`
	BestRX       int      `json:"best_rx"`
	BestMeasBits uint64   `json:"best_meas_bits"`
	BestTrueBits uint64   `json:"best_true_bits"`
}

// encodeTrajectory serializes a trajectory for the journal.
func encodeTrajectory(tr align.Trajectory) (json.RawMessage, error) {
	rec := trajRecord{
		Scheme:       tr.Scheme,
		OptTX:        tr.OptPair.TX,
		OptRX:        tr.OptPair.RX,
		OptSNRBits:   math.Float64bits(tr.OptSNR),
		LossDBBits:   make([]uint64, len(tr.LossDB)),
		BestTX:       tr.BestPair.TX,
		BestRX:       tr.BestPair.RX,
		BestMeasBits: math.Float64bits(tr.BestMeasuredSNR),
		BestTrueBits: math.Float64bits(tr.BestTrueSNR),
	}
	for i, l := range tr.LossDB {
		rec.LossDBBits[i] = math.Float64bits(l)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("experiment: encoding trajectory: %w", err)
	}
	return data, nil
}

// decodeTrajectory reverses encodeTrajectory, restoring every float
// bit-for-bit.
func decodeTrajectory(data json.RawMessage) (align.Trajectory, error) {
	var rec trajRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return align.Trajectory{}, fmt.Errorf("experiment: decoding journaled trajectory: %w", err)
	}
	tr := align.Trajectory{
		Scheme:          rec.Scheme,
		OptPair:         align.Pair{TX: rec.OptTX, RX: rec.OptRX},
		OptSNR:          math.Float64frombits(rec.OptSNRBits),
		LossDB:          make([]float64, len(rec.LossDBBits)),
		BestPair:        align.Pair{TX: rec.BestTX, RX: rec.BestRX},
		BestMeasuredSNR: math.Float64frombits(rec.BestMeasBits),
		BestTrueSNR:     math.Float64frombits(rec.BestTrueBits),
	}
	for i, b := range rec.LossDBBits {
		tr.LossDB[i] = math.Float64frombits(b)
	}
	return tr, nil
}
