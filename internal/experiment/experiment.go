// Package experiment is the benchmark harness that regenerates every
// result figure of the paper:
//
//   - Fig. 5: SNR loss vs search rate, single-path channel.
//   - Fig. 6: SNR loss vs search rate, NYC multipath channel.
//   - Fig. 7: required search rate vs target loss, single-path channel.
//   - Fig. 8: required search rate vs target loss, NYC multipath channel.
//
// Each generator sweeps simulation drops (independent channel
// realizations), runs every configured scheme on identical channels with
// identical measurement-noise streams, and aggregates the paper's
// metrics: SNR loss of the selected pair (Eq. 31) and search rate L/T
// (Eq. 32). Determinism: a Config fully determines the output.
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"mmwalign/internal/align"
	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
	"mmwalign/internal/metrics"
	"mmwalign/internal/rng"
)

// Config parameterizes a figure regeneration. Zero fields take the
// paper-matched defaults (see WithDefaults).
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Drops is the number of independent channel realizations.
	Drops int
	// TXx, TXz are the TX UPA dimensions (paper: 4×4).
	TXx, TXz int
	// RXx, RXz are the RX UPA dimensions (paper: 8×8).
	RXx, RXz int
	// TXBookAz, TXBookEl shape the TX codebook grid (card(U) = product).
	TXBookAz, TXBookEl int
	// RXBookAz, RXBookEl shape the RX codebook grid (card(V) = product).
	RXBookAz, RXBookEl int
	// GammaDB is the pre-beamforming SNR E_s/N₀ in dB.
	GammaDB float64
	// Snapshots is the number of fading+noise snapshots per measurement.
	Snapshots int
	// J is the proposed scheme's measurements per TX slot.
	J int
	// Window bounds the estimation history of the proposed scheme.
	Window int
	// Mu is the nuclear-norm regularization weight.
	Mu float64
	// EstimatorIters bounds proximal iterations per estimation.
	EstimatorIters int
	// Multipath selects the NYC clustered channel instead of single-path.
	Multipath bool
	// SearchRates are the L/T points of the effectiveness sweep.
	SearchRates []float64
	// TargetsDB are the target losses of the cost-efficiency sweep.
	TargetsDB []float64
	// Schemes are the strategy names to compare. Known names:
	// "random", "scan", "exhaustive", "proposed", "hierarchical".
	Schemes []string
	// EstimatorKind selects the likelihood (ablation); zero means
	// covest.PerMeasurement.
	EstimatorKind covest.ObjectiveKind
	// Workers bounds the concurrent drops (0 = GOMAXPROCS). Results are
	// independent of the worker count.
	Workers int
	// PhaseBits applies b-bit phase-shifter quantization to both
	// codebooks (0 = ideal continuous phases).
	PhaseBits int
}

// WithDefaults returns a copy with zero fields replaced by the defaults
// used throughout the reproduction: 4×4/8×8 arrays, 16/64-beam books
// (T = 1024 pairs), γ = 0 dB, 4 snapshots, J = 8, 100 drops, the paper's
// three schemes, and sweeps matching the figures.
func (c Config) WithDefaults() Config {
	if c.Drops == 0 {
		c.Drops = 100
	}
	if c.TXx == 0 {
		c.TXx = 4
	}
	if c.TXz == 0 {
		c.TXz = 4
	}
	if c.RXx == 0 {
		c.RXx = 8
	}
	if c.RXz == 0 {
		c.RXz = 8
	}
	if c.TXBookAz == 0 {
		c.TXBookAz = 4
	}
	if c.TXBookEl == 0 {
		c.TXBookEl = 4
	}
	if c.RXBookAz == 0 {
		c.RXBookAz = 8
	}
	if c.RXBookEl == 0 {
		c.RXBookEl = 8
	}
	if c.Snapshots == 0 {
		c.Snapshots = 4
	}
	if c.J == 0 {
		c.J = 8
	}
	if c.Window == 0 {
		c.Window = 96
	}
	if c.Mu == 0 {
		c.Mu = 1
	}
	if c.EstimatorIters == 0 {
		c.EstimatorIters = 25
	}
	if c.SearchRates == nil {
		c.SearchRates = []float64{0.03, 0.06, 0.10, 0.15, 0.20, 0.25, 0.30}
	}
	if c.TargetsDB == nil {
		c.TargetsDB = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	}
	if c.Schemes == nil {
		c.Schemes = []string{"random", "scan", "proposed"}
	}
	return c
}

// Figure is one regenerated paper figure.
type Figure struct {
	// ID is the figure identifier, e.g. "fig5".
	ID string
	// Title restates what the paper plots.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds one curve per scheme.
	Series []metrics.Series
}

// buildEnv creates the per-drop, per-scheme environment. All schemes of
// a drop share the channel realization and the measurement-noise seed so
// differences come only from their pair-selection policies.
func buildEnv(cfg Config, root *rng.Source, drop int, scheme string) (*align.Env, error) {
	tx := antenna.NewUPA(cfg.TXx, cfg.TXz)
	rx := antenna.NewUPA(cfg.RXx, cfg.RXz)

	chSrc := root.SplitIndexed("channel", drop)
	var (
		ch  *channel.Channel
		err error
	)
	if cfg.Multipath {
		ch, err = channel.NewNYCMultipath(chSrc, tx, rx, channel.DefaultNYC28())
	} else {
		ch, err = channel.NewSinglePath(chSrc, tx, rx, channel.SinglePathSpec{})
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: drop %d channel: %w", drop, err)
	}

	sounder, err := meas.NewSounder(ch, channel.DBToLinear(cfg.GammaDB), root.SplitIndexed("noise", drop))
	if err != nil {
		return nil, fmt.Errorf("experiment: drop %d sounder: %w", drop, err)
	}
	sounder.SetSnapshots(cfg.Snapshots)

	txBook := antenna.NewGridCodebook(tx, cfg.TXBookAz, cfg.TXBookEl, math.Pi, math.Pi/2)
	rxBook := antenna.NewGridCodebook(rx, cfg.RXBookAz, cfg.RXBookEl, math.Pi, math.Pi/2)
	if cfg.PhaseBits > 0 {
		txBook = antenna.QuantizedCodebook(txBook, cfg.PhaseBits)
		rxBook = antenna.QuantizedCodebook(rxBook, cfg.PhaseBits)
	}
	return &align.Env{
		TXBook:  txBook,
		RXBook:  rxBook,
		Sounder: sounder,
		Src:     root.SplitIndexed("strategy-"+scheme, drop),
	}, nil
}

// makeStrategy instantiates a scheme by name for the given environment.
func makeStrategy(cfg Config, name string, env *align.Env) (align.Strategy, error) {
	switch name {
	case "random":
		return align.RandomStrategy{}, nil
	case "scan":
		return align.ScanStrategy{}, nil
	case "exhaustive":
		return align.ExhaustiveStrategy{}, nil
	case "proposed":
		return align.NewProposed(align.ProposedConfig{
			J:      cfg.J,
			Window: cfg.Window,
			Estimator: covest.Options{
				Gamma:    channel.DBToLinear(cfg.GammaDB),
				Mu:       cfg.Mu,
				MaxIters: cfg.EstimatorIters,
				Kind:     cfg.EstimatorKind,
			},
		}), nil
	case "two-sided":
		return align.NewTwoSided(align.ProposedConfig{
			J:      cfg.J,
			Window: cfg.Window,
			Estimator: covest.Options{
				Gamma:    channel.DBToLinear(cfg.GammaDB),
				Mu:       cfg.Mu,
				MaxIters: cfg.EstimatorIters,
				Kind:     cfg.EstimatorKind,
			},
		}), nil
	case "hierarchical":
		return align.NewHierarchical(antenna.NewHierCodebook(env.RXBook, 2, 2)), nil
	case "local-refine":
		return align.NewLocalRefine(), nil
	case "digital":
		return align.NewDigital(), nil
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q", name)
	}
}

// trajectories runs every configured scheme on every drop with the given
// measurement budget and feeds each per-drop trajectory to visit, in
// deterministic (drop-major, scheme order) sequence.
//
// Drops execute concurrently on a bounded worker pool: rng splits are
// pure functions of (seed, name), so each (drop, scheme) cell is an
// isolated computation and the parallel schedule cannot change any
// result. Results are buffered and visited in order, making the output
// bit-identical to a sequential run.
func trajectories(cfg Config, budget int, visit func(scheme string, drop int, tr align.Trajectory)) error {
	root := rng.New(cfg.Seed)

	type cell struct {
		tr  align.Trajectory
		err error
	}
	results := make([][]cell, cfg.Drops)
	for d := range results {
		results[d] = make([]cell, len(cfg.Schemes))
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for drop := 0; drop < cfg.Drops; drop++ {
		for si, scheme := range cfg.Schemes {
			drop, si, scheme := drop, si, scheme
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				env, err := buildEnv(cfg, root, drop, scheme)
				if err != nil {
					results[drop][si] = cell{err: err}
					return
				}
				strat, err := makeStrategy(cfg, scheme, env)
				if err != nil {
					results[drop][si] = cell{err: err}
					return
				}
				tr, err := align.Evaluate(env, strat, budget)
				if err != nil {
					results[drop][si] = cell{err: fmt.Errorf("experiment: drop %d scheme %s: %w", drop, scheme, err)}
					return
				}
				results[drop][si] = cell{tr: tr}
			}()
		}
	}
	wg.Wait()

	for drop := 0; drop < cfg.Drops; drop++ {
		for si, scheme := range cfg.Schemes {
			c := results[drop][si]
			if c.err != nil {
				return c.err
			}
			visit(scheme, drop, c.tr)
		}
	}
	return nil
}

// totalPairs returns T for the configured codebooks.
func (c Config) totalPairs() int {
	return c.TXBookAz * c.TXBookEl * c.RXBookAz * c.RXBookEl
}

// SearchEffectiveness regenerates Fig. 5 (single-path) or Fig. 6
// (multipath): mean SNR loss of the selected pair at each search rate.
func SearchEffectiveness(cfg Config) (Figure, error) {
	cfg = cfg.WithDefaults()
	t := cfg.totalPairs()
	maxRate := cfg.SearchRates[len(cfg.SearchRates)-1]
	budget := int(math.Ceil(maxRate * float64(t)))

	accs := make(map[string][]metrics.Accumulator, len(cfg.Schemes))
	for _, s := range cfg.Schemes {
		accs[s] = make([]metrics.Accumulator, len(cfg.SearchRates))
	}
	err := trajectories(cfg, budget, func(scheme string, _ int, tr align.Trajectory) {
		for i, rate := range cfg.SearchRates {
			l := int(math.Ceil(rate * float64(t)))
			if l < 1 {
				l = 1
			}
			if l > len(tr.LossDB) {
				l = len(tr.LossDB)
			}
			accs[scheme][i].AddFinite(tr.LossDB[l-1])
		}
	})
	if err != nil {
		return Figure{}, err
	}

	fig := Figure{
		Title:  "Search effectiveness: SNR loss vs search rate",
		XLabel: "search rate (L/T)",
		YLabel: "SNR loss (dB)",
	}
	if cfg.Multipath {
		fig.ID, fig.Title = "fig6", fig.Title+" — NYC multipath channel"
	} else {
		fig.ID, fig.Title = "fig5", fig.Title+" — single-path channel"
	}
	for _, scheme := range cfg.Schemes {
		s := metrics.Series{Name: scheme}
		for i, rate := range cfg.SearchRates {
			s.X = append(s.X, rate)
			s.Y = append(s.Y, accs[scheme][i].Mean())
			s.YErr = append(s.YErr, accs[scheme][i].CI95())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// CostEfficiency regenerates Fig. 7 (single-path) or Fig. 8 (multipath):
// the mean search rate each scheme needs before the loss of its current
// best pair first drops to the target. Runs that never reach a target
// within the sweep budget are counted at the full budget (a conservative
// lower bound, noted in EXPERIMENTS.md).
func CostEfficiency(cfg Config) (Figure, error) {
	cfg = cfg.WithDefaults()
	t := cfg.totalPairs()
	maxRate := cfg.SearchRates[len(cfg.SearchRates)-1]
	budget := int(math.Ceil(maxRate * float64(t)))

	accs := make(map[string][]metrics.Accumulator, len(cfg.Schemes))
	for _, s := range cfg.Schemes {
		accs[s] = make([]metrics.Accumulator, len(cfg.TargetsDB))
	}
	err := trajectories(cfg, budget, func(scheme string, _ int, tr align.Trajectory) {
		for i, target := range cfg.TargetsDB {
			l := tr.FirstWithin(target)
			if l < 0 {
				l = len(tr.LossDB) // censored at the sweep budget
			}
			accs[scheme][i].Add(float64(l) / float64(t))
		}
	})
	if err != nil {
		return Figure{}, err
	}

	fig := Figure{
		Title:  "Cost efficiency: required search rate vs target loss",
		XLabel: "target loss (dB)",
		YLabel: "required search rate (L/T)",
	}
	if cfg.Multipath {
		fig.ID, fig.Title = "fig8", fig.Title+" — NYC multipath channel"
	} else {
		fig.ID, fig.Title = "fig7", fig.Title+" — single-path channel"
	}
	for _, scheme := range cfg.Schemes {
		s := metrics.Series{Name: scheme}
		for i, target := range cfg.TargetsDB {
			s.X = append(s.X, target)
			s.Y = append(s.Y, accs[scheme][i].Mean())
			s.YErr = append(s.YErr, accs[scheme][i].CI95())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Generate regenerates a figure by paper number (5–8).
func Generate(figure int, cfg Config) (Figure, error) {
	switch figure {
	case 5:
		cfg.Multipath = false
		return SearchEffectiveness(cfg)
	case 6:
		cfg.Multipath = true
		return SearchEffectiveness(cfg)
	case 7:
		cfg.Multipath = false
		return CostEfficiency(cfg)
	case 8:
		cfg.Multipath = true
		return CostEfficiency(cfg)
	default:
		return Figure{}, fmt.Errorf("experiment: the paper has figures 5-8, not %d", figure)
	}
}
