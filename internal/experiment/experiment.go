// Package experiment is the benchmark harness that regenerates every
// result figure of the paper:
//
//   - Fig. 5: SNR loss vs search rate, single-path channel.
//   - Fig. 6: SNR loss vs search rate, NYC multipath channel.
//   - Fig. 7: required search rate vs target loss, single-path channel.
//   - Fig. 8: required search rate vs target loss, NYC multipath channel.
//
// Each generator sweeps simulation drops (independent channel
// realizations), runs every configured scheme on identical channels with
// identical measurement-noise streams, and aggregates the paper's
// metrics: SNR loss of the selected pair (Eq. 31) and search rate L/T
// (Eq. 32). Determinism: a Config fully determines the output.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mmwalign/internal/align"
	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/covest"
	"mmwalign/internal/journal"
	"mmwalign/internal/meas"
	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
	"mmwalign/internal/rng"
)

// Config parameterizes a figure regeneration. Zero fields take the
// paper-matched defaults (see WithDefaults). The JSON tags define the
// config block of the run manifest (obs.Manifest): everything that
// determines the output is serialized, runtime-only hooks are not.
type Config struct {
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// Drops is the number of independent channel realizations.
	Drops int `json:"drops"`
	// TXx, TXz are the TX UPA dimensions (paper: 4×4).
	TXx int `json:"tx_x"`
	TXz int `json:"tx_z"`
	// RXx, RXz are the RX UPA dimensions (paper: 8×8).
	RXx int `json:"rx_x"`
	RXz int `json:"rx_z"`
	// TXBookAz, TXBookEl shape the TX codebook grid (card(U) = product).
	TXBookAz int `json:"tx_book_az"`
	TXBookEl int `json:"tx_book_el"`
	// RXBookAz, RXBookEl shape the RX codebook grid (card(V) = product).
	RXBookAz int `json:"rx_book_az"`
	RXBookEl int `json:"rx_book_el"`
	// GammaDB is the pre-beamforming SNR E_s/N₀ in dB.
	GammaDB float64 `json:"gamma_db"`
	// Snapshots is the number of fading+noise snapshots per measurement.
	Snapshots int `json:"snapshots"`
	// J is the proposed scheme's measurements per TX slot.
	J int `json:"j"`
	// Window bounds the estimation history of the proposed scheme.
	Window int `json:"window"`
	// Mu is the nuclear-norm regularization weight.
	Mu float64 `json:"mu"`
	// EstimatorIters bounds proximal iterations per estimation.
	EstimatorIters int `json:"estimator_iters"`
	// Multipath selects the NYC clustered channel instead of single-path.
	Multipath bool `json:"multipath"`
	// SearchRates are the L/T points of the effectiveness sweep.
	SearchRates []float64 `json:"search_rates"`
	// TargetsDB are the target losses of the cost-efficiency sweep.
	TargetsDB []float64 `json:"targets_db"`
	// Schemes are the strategy names to compare. Known names:
	// "random", "scan", "exhaustive", "proposed", "hierarchical".
	Schemes []string `json:"schemes"`
	// EstimatorKind selects the likelihood (ablation); zero means
	// covest.PerMeasurement.
	EstimatorKind covest.ObjectiveKind `json:"estimator_kind"`
	// Workers bounds the concurrent drops (0 = GOMAXPROCS). Results are
	// independent of the worker count.
	Workers int `json:"workers"`
	// CrossCellBatch routes the estimator's per-iteration Q·V products
	// of concurrently running "proposed"/"two-sided" cells through one
	// cross-cell batch scheduler, which coalesces same-shape products
	// into single virtual tall GEMMs (see batch.go). Pure scheduling:
	// results are bitwise identical with the knob on or off, at any
	// worker count, so it is zeroed in CanonicalHash like Workers.
	CrossCellBatch bool `json:"cross_cell_batch"`
	// PhaseBits applies b-bit phase-shifter quantization to both
	// codebooks (0 = ideal continuous phases).
	PhaseBits int `json:"phase_bits"`
	// MaxFailedDrops is the error budget: how many drops may fail
	// (worker panic, estimator failure, invalid measurements) while
	// still producing a figure. A failed drop is excluded from the
	// aggregation of every scheme — keeping the per-scheme means
	// comparable — and recorded in the figure's FailureReport. The
	// default 0 is strict: any failure aborts the figure with every
	// collected failure joined into the returned error. A cell that
	// succeeds within MaxRetries never reaches this budget.
	MaxFailedDrops int `json:"max_failed_drops"`
	// MaxRetries re-runs a failed (drop, scheme) cell up to this many
	// extra times before the failure counts against MaxFailedDrops.
	// Cell computations are pure functions of (seed, drop, scheme), so
	// a retry that succeeds produces exactly the result the first
	// attempt would have — retries only help against transient faults
	// (an injected hiccup, a resource blip), and a deterministic bug
	// burns all attempts and reports how many (DropFailure.Attempts).
	MaxRetries int `json:"max_retries"`
	// RetryBackoff is the delay before the first retry, doubling per
	// subsequent attempt and capped at 100× the base (or at 5s when no
	// base is set but retries are). Zero means retry immediately.
	RetryBackoff time.Duration `json:"retry_backoff_ns"`
	// Journal, when non-nil, is the crash-safe checkpoint of the run:
	// cells already on record are skipped (their journaled trajectories
	// are bit-exact, so the figure is byte-identical to an
	// uninterrupted run) and every newly completed cell is appended and
	// fsynced as it finishes. Failed cells are never journaled — a
	// resume retries them. The caller owns opening (with the canonical
	// config-hash check) and closing the journal.
	Journal *journal.Journal `json:"-"`
	// WrapSounder, when non-nil, wraps each (drop, scheme) cell's
	// sounder before the strategies run — the seam used by the
	// fault-injection harness and instrumentation. The wrapper must be
	// deterministic in (drop, scheme) for the worker-count invariance
	// guarantee to hold.
	WrapSounder func(drop int, scheme string, p meas.Prober) meas.Prober `json:"-"`

	// batcher is the live cross-cell GEMM scheduler of the current run,
	// installed by trajectories when CrossCellBatch is set. Runtime
	// state, never serialized; it rides the by-value Config copies down
	// to makeStrategy, which hands it to the estimator options.
	batcher *gemmBatcher
}

// WithDefaults returns a copy with zero fields replaced by the defaults
// used throughout the reproduction: 4×4/8×8 arrays, 16/64-beam books
// (T = 1024 pairs), γ = 0 dB, 4 snapshots, J = 8, 100 drops, the paper's
// three schemes, and sweeps matching the figures.
func (c Config) WithDefaults() Config {
	if c.Drops == 0 {
		c.Drops = 100
	}
	if c.TXx == 0 {
		c.TXx = 4
	}
	if c.TXz == 0 {
		c.TXz = 4
	}
	if c.RXx == 0 {
		c.RXx = 8
	}
	if c.RXz == 0 {
		c.RXz = 8
	}
	if c.TXBookAz == 0 {
		c.TXBookAz = 4
	}
	if c.TXBookEl == 0 {
		c.TXBookEl = 4
	}
	if c.RXBookAz == 0 {
		c.RXBookAz = 8
	}
	if c.RXBookEl == 0 {
		c.RXBookEl = 8
	}
	if c.Snapshots == 0 {
		c.Snapshots = 4
	}
	if c.J == 0 {
		c.J = 8
	}
	if c.Window == 0 {
		c.Window = 96
	}
	if c.Mu == 0 {
		c.Mu = 1
	}
	if c.EstimatorIters == 0 {
		c.EstimatorIters = 25
	}
	if c.SearchRates == nil {
		c.SearchRates = []float64{0.03, 0.06, 0.10, 0.15, 0.20, 0.25, 0.30}
	}
	if c.TargetsDB == nil {
		c.TargetsDB = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	}
	if c.Schemes == nil {
		c.Schemes = []string{"random", "scan", "proposed"}
	}
	return c
}

// Figure is one regenerated paper figure.
type Figure struct {
	// ID is the figure identifier, e.g. "fig5".
	ID string
	// Title restates what the paper plots.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds one curve per scheme.
	Series []metrics.Series
	// Failures reports drops excluded under the error budget
	// (Config.MaxFailedDrops). Nil when every drop succeeded; when
	// non-nil the Series aggregate only the surviving drops, making
	// partial results first-class rather than silent.
	Failures *FailureReport
	// Manifest is the machine-readable audit record of the run: config,
	// seed, per-phase timings, solver-stat aggregates, and the failure
	// summary. Always attached; timing/counter detail is present only
	// when an obs.Recorder travelled in the generation context.
	Manifest *obs.Manifest
}

// DropFailure is one failed (drop, scheme) cell with full attribution.
type DropFailure struct {
	// Drop is the channel-realization index that failed.
	Drop int
	// Scheme is the strategy that failed on it.
	Scheme string
	// Attempts is how many times the cell was run before giving up
	// (1 + retries burned): it distinguishes a permanent failure that
	// exhausted Config.MaxRetries from a first-attempt failure with no
	// retry budget.
	Attempts int
	// Err is the attributed failure of the final attempt (a
	// *PanicError for recovered panics).
	Err error
}

// FailureReport accounts for every drop excluded from a figure. The
// listing is deterministic: failures appear in drop-major, scheme
// order regardless of the worker count.
type FailureReport struct {
	// Failures lists each failed (drop, scheme) cell.
	Failures []DropFailure
	// FailedDrops is the number of distinct drops excluded (a drop with
	// several failing schemes counts once).
	FailedDrops int
	// TotalDrops is the configured drop count.
	TotalDrops int
}

// Err joins every recorded failure into one inspectable error (nil when
// the report is empty). Cells that burned retries say so — an
// over-budget error distinguishes "failed once, no retries configured"
// from "failed persistently through N retries".
func (r *FailureReport) Err() error {
	if r == nil || len(r.Failures) == 0 {
		return nil
	}
	errs := make([]error, len(r.Failures))
	for i, f := range r.Failures {
		if f.Attempts > 1 {
			errs[i] = fmt.Errorf("%w (persistent: %d retries burned over %d attempts)", f.Err, f.Attempts-1, f.Attempts)
		} else {
			errs[i] = f.Err
		}
	}
	return errors.Join(errs...)
}

// PanicError is a worker panic recovered into an attributed error: the
// drop and scheme that crashed, the panic value, and the goroutine
// stack at the point of the panic. It preserves failure isolation — a
// shape or index bug in one drop's linear algebra becomes one failed
// cell instead of a process crash.
type PanicError struct {
	// Drop and Scheme attribute the cell that panicked.
	Drop int
	// Scheme is the strategy name.
	Scheme string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment: drop %d scheme %s panicked: %v\n%s", e.Drop, e.Scheme, e.Value, e.Stack)
}

// buildEnv creates the per-drop, per-scheme environment. All schemes of
// a drop share the channel realization and the measurement-noise seed so
// differences come only from their pair-selection policies. A non-nil
// recorder observes channel-generation time and wraps the sounder with
// measurement timing; instrumentation never alters the random streams.
func buildEnv(cfg Config, root *rng.Source, drop int, scheme string, rec *obs.Recorder) (*align.Env, error) {
	tx := antenna.NewUPA(cfg.TXx, cfg.TXz)
	rx := antenna.NewUPA(cfg.RXx, cfg.RXz)

	chSrc := root.SplitIndexed("channel", drop)
	var (
		ch  *channel.Channel
		err error
	)
	chSpan := rec.Phase("channel").Start()
	if cfg.Multipath {
		ch, err = channel.NewNYCMultipath(chSrc, tx, rx, channel.DefaultNYC28())
	} else {
		ch, err = channel.NewSinglePath(chSrc, tx, rx, channel.SinglePathSpec{})
	}
	chSpan.End()
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}

	sounder, err := meas.NewSounder(ch, channel.DBToLinear(cfg.GammaDB), root.SplitIndexed("noise", drop))
	if err != nil {
		return nil, fmt.Errorf("sounder: %w", err)
	}
	sounder.SetSnapshots(cfg.Snapshots)
	var prober meas.Prober = sounder
	if cfg.WrapSounder != nil {
		prober = cfg.WrapSounder(drop, scheme, prober)
	}
	if rec != nil {
		// Outermost wrapper: sounding time includes any injected-fault
		// work, and the count covers exactly what strategies observe.
		prober = &obsProber{Prober: prober, phase: rec.Phase("sounding"), count: rec.Counter("measurements")}
	}

	txBook := antenna.NewGridCodebook(tx, cfg.TXBookAz, cfg.TXBookEl, math.Pi, math.Pi/2)
	rxBook := antenna.NewGridCodebook(rx, cfg.RXBookAz, cfg.RXBookEl, math.Pi, math.Pi/2)
	if cfg.PhaseBits > 0 {
		txBook = antenna.QuantizedCodebook(txBook, cfg.PhaseBits)
		rxBook = antenna.QuantizedCodebook(rxBook, cfg.PhaseBits)
	}
	return &align.Env{
		TXBook:  txBook,
		RXBook:  rxBook,
		Sounder: prober,
		Src:     root.SplitIndexed("strategy-"+scheme, drop),
	}, nil
}

// estimatorBatcher returns the run's live batch scheduler as the
// estimator's covest.Batcher seam, or a true nil interface when
// batching is off — assigning the nil *gemmBatcher directly would
// produce a typed-nil interface the estimator reads as "batching on".
func (c Config) estimatorBatcher() covest.Batcher {
	if c.batcher == nil {
		return nil
	}
	return c.batcher
}

// makeStrategy instantiates a scheme by name for the given environment.
func makeStrategy(cfg Config, name string, env *align.Env) (align.Strategy, error) {
	switch name {
	case "random":
		return align.RandomStrategy{}, nil
	case "scan":
		return align.ScanStrategy{}, nil
	case "exhaustive":
		return align.ExhaustiveStrategy{}, nil
	case "proposed":
		return align.NewProposed(align.ProposedConfig{
			J:      cfg.J,
			Window: cfg.Window,
			Estimator: covest.Options{
				Gamma:    channel.DBToLinear(cfg.GammaDB),
				Mu:       cfg.Mu,
				MaxIters: cfg.EstimatorIters,
				Kind:     cfg.EstimatorKind,
				Batcher:  cfg.estimatorBatcher(),
			},
		}), nil
	case "two-sided":
		return align.NewTwoSided(align.ProposedConfig{
			J:      cfg.J,
			Window: cfg.Window,
			Estimator: covest.Options{
				Gamma:    channel.DBToLinear(cfg.GammaDB),
				Mu:       cfg.Mu,
				MaxIters: cfg.EstimatorIters,
				Kind:     cfg.EstimatorKind,
				Batcher:  cfg.estimatorBatcher(),
			},
		}), nil
	case "hierarchical":
		return align.NewHierarchical(antenna.NewHierCodebook(env.RXBook, 2, 2)), nil
	case "local-refine":
		return align.NewLocalRefine(), nil
	case "digital":
		return align.NewDigital(), nil
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q", name)
	}
}

// cell is one (drop, scheme) result slot.
type cell struct {
	tr  align.Trajectory
	err error
	// attempts is how many times the cell ran (0 for a resume-skip:
	// the work happened in a previous process).
	attempts int
	// resumed marks a cell satisfied from the journal.
	resumed bool
}

// runCell executes one (drop, scheme) computation and attributes any
// failure with its coordinates. Cancellation errors pass through
// unwrapped so callers can match errors.Is(err, context.Canceled).
func runCell(ctx context.Context, cfg Config, root *rng.Source, drop int, scheme string, budget int) cell {
	attr := func(err error) cell {
		if ctx.Err() != nil {
			return cell{err: ctx.Err()}
		}
		return cell{err: fmt.Errorf("experiment: drop %d scheme %s: %w", drop, scheme, err)}
	}
	if err := ctx.Err(); err != nil {
		return cell{err: err}
	}
	env, err := buildEnv(cfg, root, drop, scheme, obs.From(ctx))
	if err != nil {
		return attr(err)
	}
	strat, err := makeStrategy(cfg, scheme, env)
	if err != nil {
		return attr(err)
	}
	tr, err := align.EvaluateContext(ctx, env, strat, budget)
	if err != nil {
		return attr(err)
	}
	return cell{tr: tr}
}

// runCellAttempt is one recovered attempt of a cell: a panic anywhere
// in the computation becomes an attributed *PanicError instead of
// crossing the retry loop, so a panicking first attempt is as
// retryable as an erroring one.
func runCellAttempt(ctx context.Context, cfg Config, root *rng.Source, drop int, scheme string, budget int) (c cell) {
	defer func() {
		if r := recover(); r != nil {
			c = cell{err: &PanicError{Drop: drop, Scheme: scheme, Value: r, Stack: debug.Stack()}}
		}
	}()
	return runCell(ctx, cfg, root, drop, scheme, budget)
}

// retryDelay returns the capped exponential backoff before retry
// number attempt (0-based): base, 2·base, 4·base, … capped at 100×
// base, or at 5s when retries are configured with no base. Every step
// is overflow-guarded: 100·base can wrap int64 for a pathological
// base, and doubling past attempt 62 shifts through the sign bit —
// both used to surface as negative (i.e. zero) delays, so the cap is
// computed saturating and the exponent is bounded before any multiply.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	const maxDelay = time.Duration(math.MaxInt64)
	cap := maxDelay
	if base <= maxDelay/100 {
		cap = 100 * base
	}
	if cap > 5*time.Second && base <= 5*time.Second {
		cap = 5 * time.Second
	}
	// 2^attempt·base with attempt ≥ 63 exceeds int64 for any positive
	// base; saturate at the cap without shifting at all.
	if attempt >= 63 {
		return cap
	}
	d := base
	for i := 0; i < attempt; i++ {
		if d > cap/2 {
			// The next doubling would pass the cap (or wrap); the
			// backoff has saturated.
			return cap
		}
		d *= 2
	}
	if d > cap {
		return cap
	}
	return d
}

// runCellWithRetry runs a cell through the retry engine: up to
// cfg.MaxRetries re-runs after a failed attempt, with capped
// exponential backoff between attempts. Cancellation is never retried
// (the run is shutting down), and a success after retries is
// indistinguishable from a first-attempt success in the results —
// cells are deterministic in (seed, drop, scheme) — so retries cannot
// perturb figure bytes, only rescue transiently failed cells from the
// MaxFailedDrops budget.
func runCellWithRetry(ctx context.Context, cfg Config, root *rng.Source, drop int, scheme string, budget int, st *runStats) cell {
	rec := obs.From(ctx)
	var c cell
	for attempt := 0; ; attempt++ {
		c = runCellAttempt(ctx, cfg, root, drop, scheme, budget)
		c.attempts = attempt + 1
		if c.err == nil {
			if attempt > 0 {
				st.retryRecovered.Add(1)
				rec.Counter("retry_recovered_cells").Add(1)
			}
			return c
		}
		if ctx.Err() != nil || attempt >= cfg.MaxRetries {
			if attempt > 0 && ctx.Err() == nil {
				st.retryExhausted.Add(1)
				rec.Counter("retry_exhausted_cells").Add(1)
			}
			return c
		}
		st.retryAttempts.Add(1)
		rec.Counter("retry_attempts").Add(1)
		if delay := retryDelay(cfg.RetryBackoff, attempt); delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return cell{err: ctx.Err(), attempts: attempt + 1}
			case <-t.C:
			}
		}
	}
}

// runStats tallies the robustness machinery of one run — resume skips
// and retry outcomes — for the manifest's Resume/Retries evidence.
// Atomic because drop workers update it concurrently.
type runStats struct {
	resumedCells   atomic.Int64
	retryAttempts  atomic.Int64
	retryRecovered atomic.Int64
	retryExhausted atomic.Int64
}

// trajectories runs every configured scheme on every drop with the given
// measurement budget and feeds each per-drop trajectory to visit, in
// deterministic (drop-major, scheme order) sequence.
//
// Drops execute concurrently on a bounded worker pool: rng splits are
// pure functions of (seed, name), so each (drop, scheme) cell is an
// isolated computation and the parallel schedule cannot change any
// result. Results are buffered and visited in order, making the output
// bit-identical to a sequential run (WrapSounder hooks must themselves
// be deterministic in (drop, scheme) to preserve this).
//
// Failure isolation: a panic in any cell is recovered into an
// attributed *PanicError, and every cell error is collected — never
// just the first. A failed cell is re-run up to Config.MaxRetries
// times (with capped exponential backoff) before it counts. Under the
// error budget (Config.MaxFailedDrops) failed drops are skipped for
// all schemes (keeping the per-scheme aggregates comparable) and
// reported; over budget, the joined errors are returned. Cancelling
// ctx stops spawning, drains the running workers, and returns the
// context's error — with every finished cell already fsynced to
// Config.Journal when one is attached, which is what makes the
// interruption resumable.
func trajectories(ctx context.Context, cfg Config, budget int, visit func(scheme string, drop int, tr align.Trajectory)) (*FailureReport, *runStats, error) {
	root := rng.New(cfg.Seed)
	rec := obs.From(ctx)
	rec.StartRun(cfg.Drops * len(cfg.Schemes))
	st := &runStats{}

	results := make([][]cell, cfg.Drops)
	for d := range results {
		results[d] = make([]cell, len(cfg.Schemes))
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CrossCellBatch {
		// One scheduler for the whole run; stopped only after every
		// worker has drained, so no MulInto can race the close.
		cfg.batcher = newGemmBatcher(rec)
		defer cfg.batcher.stop()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	// The first journal-write error aborts checkpointing credibility
	// for the whole run, so it is surfaced as a run error after the
	// workers drain rather than silently degrading durability.
	var journalErr atomic.Pointer[error]
spawn:
	for drop := 0; drop < cfg.Drops; drop++ {
		for si, scheme := range cfg.Schemes {
			drop, si, scheme := drop, si, scheme
			if cfg.Journal != nil {
				if payload, ok := cfg.Journal.Lookup(drop, scheme); ok {
					// Resume skip: the journaled trajectory is bit-exact,
					// so consuming it is indistinguishable from re-running
					// the cell. A payload that fails to decode is treated
					// as not-completed and recomputed — the journal's CRC
					// already vouched for the bytes, so this only fires
					// across an engine codec change.
					tr, err := decodeTrajectory(payload)
					if err == nil {
						results[drop][si] = cell{tr: tr, resumed: true}
						st.resumedCells.Add(1)
						rec.Counter("resume_skipped_cells").Add(1)
						rec.CellDone(false)
						continue
					}
					rec.Counter("resume_decode_failures").Add(1)
				}
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				break spawn
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						results[drop][si] = cell{err: &PanicError{Drop: drop, Scheme: scheme, Value: r, Stack: debug.Stack()}}
					}
					// Progress is emitted on every completion — including
					// recovered panics — so live failure counts match the
					// eventual FailureReport.
					rec.CellDone(results[drop][si].err != nil)
				}()
				c := runCellWithRetry(ctx, cfg, root, drop, scheme, budget, st)
				results[drop][si] = c
				if c.err == nil && cfg.Journal != nil {
					// Record-then-fsync before the slot is observable as
					// done: once CellDone fires, a crash cannot lose the
					// cell.
					payload, err := encodeTrajectory(c.tr)
					if err == nil {
						err = cfg.Journal.Record(drop, scheme, payload)
					}
					if err != nil {
						journalErr.CompareAndSwap(nil, &err)
					} else {
						rec.Counter("journal_cells_recorded").Add(1)
					}
				}
			}()
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	if errp := journalErr.Load(); errp != nil {
		return nil, st, fmt.Errorf("experiment: checkpoint journal write failed (results would not be resumable): %w", *errp)
	}

	// Collect every failure with attribution; a drop is excluded for all
	// schemes as soon as any of its cells failed, so the surviving
	// aggregates stay comparable across schemes.
	failedDrop := make([]bool, cfg.Drops)
	var failures []DropFailure
	for drop := 0; drop < cfg.Drops; drop++ {
		for si, scheme := range cfg.Schemes {
			if c := results[drop][si]; c.err != nil {
				failedDrop[drop] = true
				failures = append(failures, DropFailure{Drop: drop, Scheme: scheme, Attempts: c.attempts, Err: c.err})
			}
		}
	}
	var report *FailureReport
	if len(failures) > 0 {
		report = &FailureReport{Failures: failures, TotalDrops: cfg.Drops}
		for _, failed := range failedDrop {
			if failed {
				report.FailedDrops++
			}
		}
		if report.FailedDrops > cfg.MaxFailedDrops {
			return report, st, fmt.Errorf("experiment: %d of %d drops failed (error budget %d, %d retries per cell): %w",
				report.FailedDrops, cfg.Drops, cfg.MaxFailedDrops, cfg.MaxRetries, report.Err())
		}
		if report.FailedDrops == cfg.Drops {
			return report, st, fmt.Errorf("experiment: all %d drops failed: %w", cfg.Drops, report.Err())
		}
	}

	for drop := 0; drop < cfg.Drops; drop++ {
		if failedDrop[drop] {
			continue
		}
		for si, scheme := range cfg.Schemes {
			visit(scheme, drop, results[drop][si].tr)
		}
	}
	return report, st, nil
}

// totalPairs returns T for the configured codebooks.
func (c Config) totalPairs() int {
	return c.TXBookAz * c.TXBookEl * c.RXBookAz * c.RXBookEl
}

// SearchEffectiveness regenerates Fig. 5 (single-path) or Fig. 6
// (multipath): mean SNR loss of the selected pair at each search rate.
// It is the non-cancellable convenience form of
// SearchEffectivenessContext.
func SearchEffectiveness(cfg Config) (Figure, error) {
	return SearchEffectivenessContext(context.Background(), cfg)
}

// SearchEffectivenessContext is SearchEffectiveness with cooperative
// cancellation and first-class partial results: failed drops within the
// error budget are excluded and reported in Figure.Failures.
func SearchEffectivenessContext(ctx context.Context, cfg Config) (Figure, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := cfg.totalPairs()
	maxRate := cfg.SearchRates[len(cfg.SearchRates)-1]
	budget := int(math.Ceil(maxRate * float64(t)))

	accs := make(map[string][]metrics.Accumulator, len(cfg.Schemes))
	for _, s := range cfg.Schemes {
		accs[s] = make([]metrics.Accumulator, len(cfg.SearchRates))
	}
	report, stats, err := trajectories(ctx, cfg, budget, func(scheme string, _ int, tr align.Trajectory) {
		for i, rate := range cfg.SearchRates {
			l := int(math.Ceil(rate * float64(t)))
			if l < 1 {
				l = 1
			}
			if l > len(tr.LossDB) {
				l = len(tr.LossDB)
			}
			accs[scheme][i].AddFinite(tr.LossDB[l-1])
		}
	})
	if err != nil {
		return Figure{}, err
	}

	fig := Figure{
		Title:    "Search effectiveness: SNR loss vs search rate",
		XLabel:   "search rate (L/T)",
		YLabel:   "SNR loss (dB)",
		Failures: report,
	}
	if cfg.Multipath {
		fig.ID, fig.Title = "fig6", fig.Title+" — NYC multipath channel"
	} else {
		fig.ID, fig.Title = "fig5", fig.Title+" — single-path channel"
	}
	for _, scheme := range cfg.Schemes {
		s := metrics.Series{Name: scheme}
		for i, rate := range cfg.SearchRates {
			s.X = append(s.X, rate)
			s.Y = append(s.Y, accs[scheme][i].Mean())
			s.YErr = append(s.YErr, accs[scheme][i].CI95())
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Manifest = buildManifest(cfg, &fig, obs.From(ctx), time.Since(start), stats)
	return fig, nil
}

// CostEfficiency regenerates Fig. 7 (single-path) or Fig. 8 (multipath):
// the mean search rate each scheme needs before the loss of its current
// best pair first drops to the target. Runs that never reach a target
// within the sweep budget are counted at the full budget (a conservative
// lower bound, noted in EXPERIMENTS.md). It is the non-cancellable
// convenience form of CostEfficiencyContext.
func CostEfficiency(cfg Config) (Figure, error) {
	return CostEfficiencyContext(context.Background(), cfg)
}

// CostEfficiencyContext is CostEfficiency with cooperative cancellation
// and first-class partial results: failed drops within the error budget
// are excluded and reported in Figure.Failures.
func CostEfficiencyContext(ctx context.Context, cfg Config) (Figure, error) {
	cfg = cfg.WithDefaults()
	start := time.Now()
	t := cfg.totalPairs()
	maxRate := cfg.SearchRates[len(cfg.SearchRates)-1]
	budget := int(math.Ceil(maxRate * float64(t)))

	accs := make(map[string][]metrics.Accumulator, len(cfg.Schemes))
	for _, s := range cfg.Schemes {
		accs[s] = make([]metrics.Accumulator, len(cfg.TargetsDB))
	}
	report, stats, err := trajectories(ctx, cfg, budget, func(scheme string, _ int, tr align.Trajectory) {
		for i, target := range cfg.TargetsDB {
			l := tr.FirstWithin(target)
			if l < 0 {
				l = len(tr.LossDB) // censored at the sweep budget
			}
			accs[scheme][i].Add(float64(l) / float64(t))
		}
	})
	if err != nil {
		return Figure{}, err
	}

	fig := Figure{
		Title:    "Cost efficiency: required search rate vs target loss",
		XLabel:   "target loss (dB)",
		YLabel:   "required search rate (L/T)",
		Failures: report,
	}
	if cfg.Multipath {
		fig.ID, fig.Title = "fig8", fig.Title+" — NYC multipath channel"
	} else {
		fig.ID, fig.Title = "fig7", fig.Title+" — single-path channel"
	}
	for _, scheme := range cfg.Schemes {
		s := metrics.Series{Name: scheme}
		for i, target := range cfg.TargetsDB {
			s.X = append(s.X, target)
			s.Y = append(s.Y, accs[scheme][i].Mean())
			s.YErr = append(s.YErr, accs[scheme][i].CI95())
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Manifest = buildManifest(cfg, &fig, obs.From(ctx), time.Since(start), stats)
	return fig, nil
}

// Generate regenerates a figure by paper number (5–8). It is the
// non-cancellable convenience form of GenerateContext.
func Generate(figure int, cfg Config) (Figure, error) {
	return GenerateContext(context.Background(), figure, cfg)
}

// GenerateContext regenerates a figure by paper number (5–8) with
// cooperative cancellation: cancelling ctx stops spawning new drops,
// drains the in-flight workers, and returns the context's error.
func GenerateContext(ctx context.Context, figure int, cfg Config) (Figure, error) {
	switch figure {
	case 5:
		cfg.Multipath = false
		return SearchEffectivenessContext(ctx, cfg)
	case 6:
		cfg.Multipath = true
		return SearchEffectivenessContext(ctx, cfg)
	case 7:
		cfg.Multipath = false
		return CostEfficiencyContext(ctx, cfg)
	case 8:
		cfg.Multipath = true
		return CostEfficiencyContext(ctx, cfg)
	default:
		return Figure{}, fmt.Errorf("experiment: the paper has figures 5-8, not %d", figure)
	}
}
