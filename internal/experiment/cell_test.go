package experiment

import (
	"context"
	"path/filepath"
	"testing"
)

// TestComputeCellMatchesSweepPayloads is the shard engine's foundation:
// a cell computed in isolation through ComputeCell must journal the
// exact bytes an in-process sweep records for the same (drop, scheme) —
// otherwise a merged sharded run could not be byte-identical to a
// single-process one.
func TestComputeCellMatchesSweepPayloads(t *testing.T) {
	cfg := tinyConfig(false)
	path := filepath.Join(t.TempDir(), "fig5.journal")
	jcfg := cfg
	jcfg.Journal = openTestJournal(t, path, cfg, false)
	if _, err := Generate(5, jcfg); err != nil {
		t.Fatal(err)
	}

	rc, _, err := ConfigForFigure(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for drop := 0; drop < rc.Drops; drop++ {
		for _, scheme := range rc.Schemes {
			want, ok := jcfg.Journal.Lookup(drop, scheme)
			if !ok {
				t.Fatalf("sweep did not journal cell (%d, %s)", drop, scheme)
			}
			got, attempts, err := ComputeCell(context.Background(), 5, cfg, drop, scheme)
			if err != nil {
				t.Fatalf("ComputeCell(%d, %s): %v", drop, scheme, err)
			}
			if attempts != 1 {
				t.Errorf("ComputeCell(%d, %s) attempts = %d, want 1", drop, scheme, attempts)
			}
			if string(got) != string(want) {
				t.Errorf("ComputeCell(%d, %s) payload differs from sweep journal:\n got %s\nwant %s", drop, scheme, got, want)
			}
		}
	}
}

func TestComputeCellRejectsUnknownFigure(t *testing.T) {
	if _, _, err := ComputeCell(context.Background(), 4, tinyConfig(false), 0, "random"); err == nil {
		t.Error("figure 4 accepted")
	}
}

func TestCellBudgetMatchesSweep(t *testing.T) {
	cfg := tinyConfig(false)
	// tinyConfig: books 4×2 TX, 4×4 RX → T = 128; max rate 0.3 → ceil(38.4) = 39.
	if got := cfg.CellBudget(); got != 39 {
		t.Errorf("CellBudget = %d, want 39", got)
	}
}
