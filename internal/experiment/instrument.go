package experiment

import (
	"encoding/json"
	"runtime"
	"runtime/debug"
	"time"

	"mmwalign/internal/cmat"
	"mmwalign/internal/meas"
	"mmwalign/internal/obs"
)

// obsProber times pair measurements and counts them. It is purely
// observational — measurements pass through untouched — so wrapping it
// around any deterministic prober preserves the engine's worker-count
// invariance and the byte-identity of figure CSVs.
type obsProber struct {
	meas.Prober
	phase *obs.Phase
	count *obs.Counter
}

// Measure implements meas.Prober with sounding-phase timing.
func (p *obsProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	sp := p.phase.Start()
	m := p.Prober.Measure(txBeam, rxBeam, u, v)
	sp.End()
	p.count.Add(1)
	return m
}

// buildManifest assembles the run manifest for a completed figure:
// the fully defaulted config and seed always; phase timings, counters
// and solver aggregates when a recorder observed the run; resume and
// retry evidence when the robustness layers were engaged. The CLI
// layer stamps Version/CreatedAt before persisting.
func buildManifest(cfg Config, fig *Figure, rec *obs.Recorder, elapsed time.Duration, stats *runStats) *obs.Manifest {
	m := &obs.Manifest{
		Schema:    obs.ManifestSchema,
		Figure:    fig.ID,
		Title:     fig.Title,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
		ElapsedNS: elapsed.Nanoseconds(),
	}
	if cfgJSON, err := json.Marshal(cfg); err == nil {
		m.Config = cfgJSON
	}
	if rec != nil {
		snap := rec.Snapshot()
		m.Instrumented = true
		m.Phases = snap.Phases
		m.Counters = snap.Counters
		m.Solver = snap.Solver
	}
	if cfg.Journal != nil {
		h := cfg.Journal.Header()
		m.Resume = &obs.ResumeSummary{
			Journal:      cfg.Journal.Path(),
			ConfigHash:   h.ConfigHash,
			TotalCells:   cfg.Drops * len(cfg.Schemes),
			SkippedCells: int(stats.resumedCells.Load()),
		}
		// Distinct cells on record minus the skips is what this run
		// contributed (last-write-wins dedup makes Len distinct).
		if n := cfg.Journal.Len() - m.Resume.SkippedCells; n > 0 {
			m.Resume.RecordedCells = n
		}
	}
	if cfg.MaxRetries > 0 {
		m.Retries = &obs.RetrySummary{
			MaxRetries:     cfg.MaxRetries,
			Attempts:       stats.retryAttempts.Load(),
			RecoveredCells: stats.retryRecovered.Load(),
			ExhaustedCells: stats.retryExhausted.Load(),
		}
	}
	if fig.Failures != nil {
		fs := &obs.FailureSummary{
			FailedDrops: fig.Failures.FailedDrops,
			TotalDrops:  fig.Failures.TotalDrops,
		}
		for _, f := range fig.Failures.Failures {
			errText := "unknown failure"
			if f.Err != nil {
				errText = f.Err.Error()
			}
			fs.Cells = append(fs.Cells, obs.FailureCell{Drop: f.Drop, Scheme: f.Scheme, Attempts: f.Attempts, Error: errText})
		}
		m.Failures = fs
	}
	return m
}

// VersionString identifies the source tree for manifest stamping: the
// module version/VCS revision from build info when present. Returns ""
// when nothing is known (e.g. a test binary); the CLIs fall back to
// git describe in that case.
func VersionString() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "-dirty"
		}
		return rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return ""
}
