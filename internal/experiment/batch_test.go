package experiment

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"mmwalign/internal/align"
	"mmwalign/internal/cmat"
)

// collectTrajectories runs the tiny fig5 workload and returns every
// trajectory in deterministic visit order.
func collectTrajectories(t *testing.T, cfg Config) []align.Trajectory {
	t.Helper()
	var trs []align.Trajectory
	_, _, err := trajectories(context.Background(), cfg, 32, func(scheme string, drop int, tr align.Trajectory) {
		trs = append(trs, tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	return trs
}

func requireBitIdentical(t *testing.T, label string, a, b []align.Trajectory) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: trajectory count differs: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Scheme != y.Scheme || x.OptPair != y.OptPair || x.BestPair != y.BestPair {
			t.Fatalf("%s: trajectory %d identity differs", label, i)
		}
		if x.OptSNR != y.OptSNR || x.BestMeasuredSNR != y.BestMeasuredSNR || x.BestTrueSNR != y.BestTrueSNR {
			t.Fatalf("%s: trajectory %d SNR fields differ bitwise", label, i)
		}
		if len(x.LossDB) != len(y.LossDB) {
			t.Fatalf("%s: trajectory %d loss length differs", label, i)
		}
		for l := range x.LossDB {
			if x.LossDB[l] != y.LossDB[l] {
				t.Fatalf("%s: trajectory %d (%s) loss[%d] differs bitwise: %v vs %v",
					label, i, x.Scheme, l, x.LossDB[l], y.LossDB[l])
			}
		}
	}
}

// TestCrossCellBatchBitIdentical is the fidelity gate of the batch
// engine: routing the estimator GEMMs through the cross-cell scheduler
// must not move a single bit of any trajectory, unbatched vs batched,
// at one worker and at eight. The estimator-heavy "proposed" scheme is
// in the tiny config, so the batched path is genuinely exercised.
func TestCrossCellBatchBitIdentical(t *testing.T) {
	base := tinyConfig(false)
	base.Workers = 1
	unbatched := collectTrajectories(t, base)

	batched1 := base
	batched1.CrossCellBatch = true
	requireBitIdentical(t, "batch on, workers=1", unbatched, collectTrajectories(t, batched1))

	batched8 := base
	batched8.CrossCellBatch = true
	batched8.Workers = 8
	requireBitIdentical(t, "batch on, workers=8", unbatched, collectTrajectories(t, batched8))
}

// TestCrossCellBatchExcludedFromHash pins the knob's runtime-only
// status: like Workers, it cannot change output bits, so it must not
// invalidate a resume journal.
func TestCrossCellBatchExcludedFromHash(t *testing.T) {
	a := tinyConfig(false)
	b := a
	b.CrossCellBatch = true
	b.Workers = 8
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("CrossCellBatch/Workers changed the canonical hash")
	}
}

// TestGemmBatcherCoalescesConcurrentRequests drives the scheduler
// directly: many goroutines issuing same- and mixed-shape products must
// each get exactly the bits a direct MulInto produces.
func TestGemmBatcherCoalescesConcurrentRequests(t *testing.T) {
	g := newGemmBatcher(nil)
	defer g.stop()
	randMat := func(rng *rand.Rand, r, c int) *cmat.Matrix {
		m := cmat.New(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
		}
		return m
	}
	type job struct{ dst, a, b, want *cmat.Matrix }
	var jobs []job
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 24; i++ {
		// Two shape classes interleaved, so groups form and split.
		dim, l := 6, 9
		if i%3 == 0 {
			dim, l = 8, 5
		}
		a := randMat(rng, dim, dim)
		b := randMat(rng, dim, l)
		want := cmat.New(dim, l)
		want.MulInto(a, b)
		jobs = append(jobs, job{dst: cmat.New(dim, l), a: a, b: b, want: want})
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			g.MulInto(j.dst, j.a, j.b)
		}(j)
	}
	wg.Wait()
	for i, j := range jobs {
		if !j.dst.Equal(j.want) {
			t.Fatalf("job %d: batched product differs from direct MulInto", i)
		}
	}
}

// TestGemmBatcherPropagatesKernelPanic checks that a shape-mismatch
// panic inside the batched kernel resurfaces in the requesting
// goroutine (where cell attribution lives) without wedging the
// dispatcher for subsequent well-formed requests.
func TestGemmBatcherPropagatesKernelPanic(t *testing.T) {
	g := newGemmBatcher(nil)
	defer g.stop()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("shape-mismatch panic did not propagate to the requester")
			}
		}()
		g.MulInto(cmat.New(2, 2), cmat.New(2, 3), cmat.New(5, 2))
	}()
	// The dispatcher must still serve after the failed group.
	a, b := cmat.New(2, 2), cmat.New(2, 2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 2)
	dst := cmat.New(2, 2)
	g.MulInto(dst, a, b)
	want := cmat.New(2, 2)
	want.MulInto(a, b)
	if !dst.Equal(want) {
		t.Fatal("dispatcher wedged after a panicking group")
	}
}
