//go:build !race

package antenna

const raceEnabled = false
