package antenna

import (
	"fmt"
	"math"

	"mmwalign/internal/cmat"
)

// Beam is one entry of a beamforming codebook: a unit-norm weight vector
// together with the steering direction it was synthesized for and its
// grid coordinates (used for spatial adjacency).
type Beam struct {
	// Index is the position of the beam in its codebook.
	Index int
	// Weights is the unit-norm analog beamforming vector.
	Weights cmat.Vector
	// Dir is the nominal steering direction.
	Dir Direction
	// GridAz and GridEl locate the beam on the codebook's angular grid.
	GridAz, GridEl int
}

// Codebook is a finite set of selectable beams — the set U (or V) of the
// paper — laid out on an azimuth×elevation grid so that "spatially
// adjacent" is well defined.
type Codebook struct {
	beams  []Beam
	nAz    int
	nEl    int
	array  Array
	labels string
}

// NewGridCodebook builds a codebook of nAz×nEl steering beams that
// uniformly tile azimuth ∈ [−azSpan/2, +azSpan/2] and elevation ∈
// [−elSpan/2, +elSpan/2] (spans in radians, grid points at cell centers).
// Panics if nAz or nEl is not positive.
func NewGridCodebook(ar Array, nAz, nEl int, azSpan, elSpan float64) *Codebook {
	if nAz <= 0 || nEl <= 0 {
		panic(fmt.Sprintf("antenna: codebook grid %dx%d must be positive", nAz, nEl))
	}
	cb := &Codebook{
		nAz:    nAz,
		nEl:    nEl,
		array:  ar,
		labels: fmt.Sprintf("grid-%dx%d over %s", nAz, nEl, ar),
	}
	for e := 0; e < nEl; e++ {
		for a := 0; a < nAz; a++ {
			dir := Direction{
				Az: gridAngle(a, nAz, azSpan),
				El: gridAngle(e, nEl, elSpan),
			}
			cb.beams = append(cb.beams, Beam{
				Index:   len(cb.beams),
				Weights: ar.Steering(dir),
				Dir:     dir,
				GridAz:  a,
				GridEl:  e,
			})
		}
	}
	return cb
}

// gridAngle places grid index i of n cells at the cell center of a span
// centered on zero.
func gridAngle(i, n int, span float64) float64 {
	if n == 1 {
		return 0
	}
	cell := span / float64(n)
	return -span/2 + cell*(float64(i)+0.5)
}

// NewDFTCodebook builds the classic DFT codebook for a ULA: n beams whose
// spatial frequencies uniformly tile [−π, π). DFT beams are mutually
// orthogonal and cover the whole visible region.
func NewDFTCodebook(a ULA) *Codebook {
	cb := &Codebook{nAz: a.N, nEl: 1, array: a, labels: fmt.Sprintf("dft-%d over %s", a.N, a)}
	for k := 0; k < a.N; k++ {
		// Spatial frequency 2π·d·sin(az) = 2π·k/N − π  (wrapped).
		f := 2*math.Pi*float64(k)/float64(a.N) - math.Pi
		sinAz := f / (2 * math.Pi * a.Spacing)
		if sinAz > 1 {
			sinAz = 1
		}
		if sinAz < -1 {
			sinAz = -1
		}
		dir := Direction{Az: math.Asin(sinAz)}
		cb.beams = append(cb.beams, Beam{
			Index:   k,
			Weights: a.Steering(dir),
			Dir:     dir,
			GridAz:  k,
			GridEl:  0,
		})
	}
	return cb
}

// Size returns the number of beams, card(U) in the paper's notation.
func (c *Codebook) Size() int { return len(c.beams) }

// Beam returns the i-th beam. Panics if i is out of range.
func (c *Codebook) Beam(i int) Beam {
	if i < 0 || i >= len(c.beams) {
		panic(fmt.Sprintf("antenna: beam index %d out of range [0,%d)", i, len(c.beams)))
	}
	return c.beams[i]
}

// Beams returns a copy of the beam list.
func (c *Codebook) Beams() []Beam {
	out := make([]Beam, len(c.beams))
	copy(out, c.beams)
	return out
}

// Array returns the geometry the codebook was built for.
func (c *Codebook) Array() Array { return c.array }

// GridShape returns the azimuth×elevation grid dimensions.
func (c *Codebook) GridShape() (nAz, nEl int) { return c.nAz, c.nEl }

// Neighbors returns the indices of beams spatially adjacent to beam i on
// the angular grid (4-connectivity; no wrap-around). This defines the
// order constraint used by the Scan baseline.
func (c *Codebook) Neighbors(i int) []int {
	b := c.Beam(i)
	var out []int
	type step struct{ da, de int }
	for _, s := range []step{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		a, e := b.GridAz+s.da, b.GridEl+s.de
		if a < 0 || a >= c.nAz || e < 0 || e >= c.nEl {
			continue
		}
		out = append(out, e*c.nAz+a)
	}
	return out
}

// SnakeOrder returns all beam indices in boustrophedon (snake) order over
// the grid: left-to-right on even elevation rows, right-to-left on odd
// rows. Every consecutive pair in the result is spatially adjacent, which
// makes it the canonical raster for the Scan baseline.
func (c *Codebook) SnakeOrder() []int {
	out := make([]int, 0, len(c.beams))
	for e := 0; e < c.nEl; e++ {
		if e%2 == 0 {
			for a := 0; a < c.nAz; a++ {
				out = append(out, e*c.nAz+a)
			}
		} else {
			for a := c.nAz - 1; a >= 0; a-- {
				out = append(out, e*c.nAz+a)
			}
		}
	}
	return out
}

// BestQuadForm returns the beam index maximizing the quadratic form
// wᴴ·Q·w over the codebook, together with the achieved value. This is the
// eigen-beam selection rule of the paper (Eq. 26) restricted to the
// codebook. Panics if Q's dimension differs from the array size.
func (c *Codebook) BestQuadForm(q *cmat.Matrix) (int, float64) {
	best, bestVal := -1, math.Inf(-1)
	for i := range c.beams {
		v := q.QuadForm(c.beams[i].Weights)
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best, bestVal
}

// TopKQuadForm returns the indices of the k beams with the largest
// quadratic form wᴴ·Q·w, in descending order. If k exceeds the codebook
// size the whole codebook is returned. Used for the "pick the (J−1)
// largest vᴴQ̂v directions" rule (Sec. IV-B2).
func (c *Codebook) TopKQuadForm(q *cmat.Matrix, k int) []int {
	type scored struct {
		idx int
		val float64
	}
	scoredBeams := make([]scored, len(c.beams))
	for i := range c.beams {
		scoredBeams[i] = scored{i, q.QuadForm(c.beams[i].Weights)}
	}
	// Partial selection sort: k is small (J−1 ≈ a handful).
	if k > len(scoredBeams) {
		k = len(scoredBeams)
	}
	out := make([]int, 0, k)
	for n := 0; n < k; n++ {
		best := n
		for i := n + 1; i < len(scoredBeams); i++ {
			if scoredBeams[i].val > scoredBeams[best].val {
				best = i
			}
		}
		scoredBeams[n], scoredBeams[best] = scoredBeams[best], scoredBeams[n]
		out = append(out, scoredBeams[n].idx)
	}
	return out
}

// String describes the codebook.
func (c *Codebook) String() string { return c.labels }
