package antenna

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mmwalign/internal/cmat"
)

// Beam is one entry of a beamforming codebook: a unit-norm weight vector
// together with the steering direction it was synthesized for and its
// grid coordinates (used for spatial adjacency).
type Beam struct {
	// Index is the position of the beam in its codebook.
	Index int
	// Weights is the unit-norm analog beamforming vector.
	Weights cmat.Vector
	// Dir is the nominal steering direction.
	Dir Direction
	// GridAz and GridEl locate the beam on the codebook's angular grid.
	GridAz, GridEl int
}

// Codebook is a finite set of selectable beams — the set U (or V) of the
// paper — laid out on an azimuth×elevation grid so that "spatially
// adjacent" is well defined.
type Codebook struct {
	beams  []Beam
	nAz    int
	nEl    int
	array  Array
	labels string

	// packOnce guards the lazy dim×M packed-weights matrix used by the
	// batched scorers. Beams are immutable after construction, so the
	// cache is built at most once and is safe under concurrent scoring.
	packOnce sync.Once
	packed   *cmat.Matrix
	// scorePool recycles per-call GEMM workspaces so concurrent scorers
	// (one per experiment worker) never contend on shared buffers.
	scorePool sync.Pool
}

// NewGridCodebook builds a codebook of nAz×nEl steering beams that
// uniformly tile azimuth ∈ [−azSpan/2, +azSpan/2] and elevation ∈
// [−elSpan/2, +elSpan/2] (spans in radians, grid points at cell centers).
// Panics if nAz or nEl is not positive.
func NewGridCodebook(ar Array, nAz, nEl int, azSpan, elSpan float64) *Codebook {
	if nAz <= 0 || nEl <= 0 {
		panic(fmt.Sprintf("antenna: codebook grid %dx%d must be positive", nAz, nEl))
	}
	cb := &Codebook{
		nAz:    nAz,
		nEl:    nEl,
		array:  ar,
		labels: fmt.Sprintf("grid-%dx%d over %s", nAz, nEl, ar),
	}
	for e := 0; e < nEl; e++ {
		for a := 0; a < nAz; a++ {
			dir := Direction{
				Az: gridAngle(a, nAz, azSpan),
				El: gridAngle(e, nEl, elSpan),
			}
			cb.beams = append(cb.beams, Beam{
				Index:   len(cb.beams),
				Weights: ar.Steering(dir),
				Dir:     dir,
				GridAz:  a,
				GridEl:  e,
			})
		}
	}
	return cb
}

// gridAngle places grid index i of n cells at the cell center of a span
// centered on zero.
func gridAngle(i, n int, span float64) float64 {
	if n == 1 {
		return 0
	}
	cell := span / float64(n)
	return -span/2 + cell*(float64(i)+0.5)
}

// NewDFTCodebook builds the classic DFT codebook for a ULA: n beams whose
// spatial frequencies uniformly tile [−π, π). DFT beams are mutually
// orthogonal and cover the whole visible region.
func NewDFTCodebook(a ULA) *Codebook {
	cb := &Codebook{nAz: a.N, nEl: 1, array: a, labels: fmt.Sprintf("dft-%d over %s", a.N, a)}
	for k := 0; k < a.N; k++ {
		// Spatial frequency 2π·d·sin(az) = 2π·k/N − π  (wrapped).
		f := 2*math.Pi*float64(k)/float64(a.N) - math.Pi
		sinAz := f / (2 * math.Pi * a.Spacing)
		if sinAz > 1 {
			sinAz = 1
		}
		if sinAz < -1 {
			sinAz = -1
		}
		dir := Direction{Az: math.Asin(sinAz)}
		cb.beams = append(cb.beams, Beam{
			Index:   k,
			Weights: a.Steering(dir),
			Dir:     dir,
			GridAz:  k,
			GridEl:  0,
		})
	}
	return cb
}

// Size returns the number of beams, card(U) in the paper's notation.
func (c *Codebook) Size() int { return len(c.beams) }

// Beam returns the i-th beam. Panics if i is out of range.
func (c *Codebook) Beam(i int) Beam {
	if i < 0 || i >= len(c.beams) {
		panic(fmt.Sprintf("antenna: beam index %d out of range [0,%d)", i, len(c.beams)))
	}
	return c.beams[i]
}

// Beams returns a copy of the beam list.
func (c *Codebook) Beams() []Beam {
	out := make([]Beam, len(c.beams))
	copy(out, c.beams)
	return out
}

// Array returns the geometry the codebook was built for.
func (c *Codebook) Array() Array { return c.array }

// GridShape returns the azimuth×elevation grid dimensions.
func (c *Codebook) GridShape() (nAz, nEl int) { return c.nAz, c.nEl }

// Neighbors returns the indices of beams spatially adjacent to beam i on
// the angular grid (4-connectivity; no wrap-around). This defines the
// order constraint used by the Scan baseline.
func (c *Codebook) Neighbors(i int) []int {
	b := c.Beam(i)
	var out []int
	type step struct{ da, de int }
	for _, s := range []step{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		a, e := b.GridAz+s.da, b.GridEl+s.de
		if a < 0 || a >= c.nAz || e < 0 || e >= c.nEl {
			continue
		}
		out = append(out, e*c.nAz+a)
	}
	return out
}

// SnakeOrder returns all beam indices in boustrophedon (snake) order over
// the grid: left-to-right on even elevation rows, right-to-left on odd
// rows. Every consecutive pair in the result is spatially adjacent, which
// makes it the canonical raster for the Scan baseline.
func (c *Codebook) SnakeOrder() []int {
	out := make([]int, 0, len(c.beams))
	for e := 0; e < c.nEl; e++ {
		if e%2 == 0 {
			for a := 0; a < c.nAz; a++ {
				out = append(out, e*c.nAz+a)
			}
		} else {
			for a := c.nAz - 1; a >= 0; a-- {
				out = append(out, e*c.nAz+a)
			}
		}
	}
	return out
}

// scoreSpace is a pooled workspace for one batched scoring pass: the
// Q·W product buffer, the columnwise-dot accumulator, and a scratch
// score vector for the selection methods.
//
// A scoreSpace is single-owner between getScoreSpace and putScoreSpace;
// the leased flag is the debug assertion enforcing that (a double put
// would let two scoring passes share one buffer and corrupt each
// other's scores silently).
type scoreSpace struct {
	qw     *cmat.Matrix
	dots   []complex128
	scores []float64
	leased bool
}

// packedWeights returns the dim×M matrix whose column i is beam i's
// weight vector, building it on first use. Scoring the whole codebook
// then becomes one GEMM against this matrix instead of M separate
// quadratic forms.
func (c *Codebook) packedWeights() *cmat.Matrix {
	c.packOnce.Do(func() {
		dim := 0
		if len(c.beams) > 0 {
			dim = len(c.beams[0].Weights)
		}
		w := cmat.New(dim, len(c.beams))
		for i := range c.beams {
			w.SetCol(i, c.beams[i].Weights)
		}
		c.packed = w
	})
	return c.packed
}

// getScoreSpace fetches a workspace sized for this codebook from the
// pool, allocating on first use or when the pool is empty.
func (c *Codebook) getScoreSpace() *scoreSpace {
	ws, _ := c.scorePool.Get().(*scoreSpace)
	if ws == nil {
		w := c.packedWeights()
		ws = &scoreSpace{
			qw:     cmat.New(w.Rows(), w.Cols()),
			dots:   make([]complex128, w.Cols()),
			scores: make([]float64, w.Cols()),
		}
	}
	if ws.leased {
		panic("antenna: pooled scoreSpace fetched while still leased")
	}
	ws.leased = true
	return ws
}

// putScoreSpace returns a workspace to the pool, asserting single
// ownership: returning the same workspace twice would hand one buffer
// to two concurrent scoring passes. Callers defer this so the workspace
// is recycled (not leaked) even when a scoring pass panics on a
// dimension mismatch.
func (c *Codebook) putScoreSpace(ws *scoreSpace) {
	if !ws.leased {
		panic("antenna: pooled scoreSpace returned twice")
	}
	ws.leased = false
	c.scorePool.Put(ws)
}

// scoresInto computes every beam's quadratic form against q into dst
// using ws as scratch. dst must have length Size().
func (c *Codebook) scoresInto(q *cmat.Matrix, ws *scoreSpace, dst []float64) {
	w := c.packedWeights()
	if q.Rows() != w.Rows() || q.Cols() != w.Rows() {
		panic(fmt.Sprintf("antenna: codebook scoring matrix %dx%d, want %dx%d", q.Rows(), q.Cols(), w.Rows(), w.Rows()))
	}
	ws.qw.MulInto(q, w)
	cmat.ColumnDotsInto(ws.dots, w, ws.qw)
	for i, d := range ws.dots {
		dst[i] = real(d)
	}
}

// QuadFormScoresInto writes wᵢᴴ·Q·wᵢ for every beam i into dst, which
// must have length Size(), and returns dst. One Q·W GEMM plus a
// columnwise dot replaces Size() separate QuadForm calls; each score is
// bitwise identical to q.QuadForm(c.Beam(i).Weights) because both paths
// accumulate the same products in the same order. Panics if Q's
// dimension differs from the array size. Safe for concurrent use.
func (c *Codebook) QuadFormScoresInto(q *cmat.Matrix, dst []float64) []float64 {
	if len(dst) != len(c.beams) {
		panic(fmt.Sprintf("antenna: QuadFormScoresInto dst length %d, want %d", len(dst), len(c.beams)))
	}
	if len(c.beams) == 0 {
		return dst
	}
	ws := c.getScoreSpace()
	defer c.putScoreSpace(ws)
	c.scoresInto(q, ws, dst)
	return dst
}

// BestQuadForm returns the beam index maximizing the quadratic form
// wᴴ·Q·w over the codebook, together with the achieved value; the
// lowest index wins exact ties. This is the eigen-beam selection rule
// of the paper (Eq. 26) restricted to the codebook. Panics if Q's
// dimension differs from the array size.
func (c *Codebook) BestQuadForm(q *cmat.Matrix) (int, float64) {
	if len(c.beams) == 0 {
		return -1, math.Inf(-1)
	}
	ws := c.getScoreSpace()
	defer c.putScoreSpace(ws)
	c.scoresInto(q, ws, ws.scores)
	best, bestVal := -1, math.Inf(-1)
	for i, v := range ws.scores {
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best, bestVal
}

// topKScanCutoff is the largest k served by the repeated-scan path in
// TopKQuadFormInto; beyond it one full sort is cheaper than k passes.
const topKScanCutoff = 8

// TopKQuadForm returns the indices of the k beams with the largest
// quadratic form wᴴ·Q·w, in descending order. If k exceeds the codebook
// size the whole codebook is returned. Used for the "pick the (J−1)
// largest vᴴQ̂v directions" rule (Sec. IV-B2).
func (c *Codebook) TopKQuadForm(q *cmat.Matrix, k int) []int {
	return c.TopKQuadFormInto(q, k, nil)
}

// TopKQuadFormInto is TopKQuadForm with a caller-supplied result buffer:
// dst is truncated and appended to, so a buffer reused across calls
// makes repeated ranking allocation-free on the small-k path. Ordering
// is total and path-independent — scores descend, exact ties break
// toward the lower beam index, and NaN scores rank below every finite
// score — whether the small-k scan or the sort path serves the request.
func (c *Codebook) TopKQuadFormInto(q *cmat.Matrix, k int, dst []int) []int {
	if k > len(c.beams) {
		k = len(c.beams)
	}
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	ws := c.getScoreSpace()
	defer c.putScoreSpace(ws)
	c.scoresInto(q, ws, ws.scores)
	scores := ws.scores
	// Replace NaN with −Inf so both selection paths compare under the
	// same strict weak ordering.
	for i, v := range scores {
		if math.IsNaN(v) {
			scores[i] = math.Inf(-1)
		}
	}
	if k <= topKScanCutoff {
		// Partial selection by repeated scan: k is small (J−1 ≈ a
		// handful), so k linear passes beat sorting all M scores.
		for n := 0; n < k; n++ {
			best := -1
			for i, v := range scores {
				if best >= 0 && v <= scores[best] {
					continue
				}
				taken := false
				for _, t := range dst {
					if t == i {
						taken = true
						break
					}
				}
				if !taken {
					best = i
				}
			}
			dst = append(dst, best)
		}
		return dst
	}
	for i := range scores {
		dst = append(dst, i)
	}
	sort.Slice(dst, func(a, b int) bool {
		if scores[dst[a]] != scores[dst[b]] {
			return scores[dst[a]] > scores[dst[b]]
		}
		return dst[a] < dst[b]
	})
	dst = dst[:k]
	return dst
}

// String describes the codebook.
func (c *Codebook) String() string { return c.labels }
