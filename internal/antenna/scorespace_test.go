package antenna

import (
	"math"
	"testing"

	"mmwalign/internal/cmat"
)

// The scoreSpace single-owner assertions guard the pooled GEMM scratch
// behind QuadFormScoresInto/BestQuadForm/TopKQuadForm: a double put (or
// a put-then-reuse) would hand one buffer to two concurrent scoring
// passes and corrupt scores silently. These tests pin the panics.

func TestScoreSpaceDoublePutPanics(t *testing.T) {
	cb := NewGridCodebook(NewUPA(2, 2), 2, 2, math.Pi, math.Pi/2)
	ws := cb.getScoreSpace()
	cb.putScoreSpace(ws)
	defer func() {
		if recover() == nil {
			t.Error("second putScoreSpace did not panic")
		}
	}()
	cb.putScoreSpace(ws)
}

func TestScoreSpaceLeaseFlagLifecycle(t *testing.T) {
	cb := NewGridCodebook(NewUPA(2, 2), 2, 2, math.Pi, math.Pi/2)
	ws := cb.getScoreSpace()
	if !ws.leased {
		t.Error("getScoreSpace did not mark the workspace leased")
	}
	cb.putScoreSpace(ws)
	if ws.leased {
		t.Error("putScoreSpace did not clear the lease flag")
	}
}

func TestScoreSpaceRecycledOnPanicPath(t *testing.T) {
	// The scoring methods defer putScoreSpace, so a dimension-mismatch
	// panic must still recycle (not leak) the workspace: a subsequent
	// well-formed call reuses the pool without tripping the lease
	// assertion.
	cb := NewGridCodebook(NewUPA(2, 2), 2, 2, math.Pi, math.Pi/2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mismatched Q did not panic")
			}
		}()
		dst := make([]float64, cb.Size())
		// 3×3 Q against a 4-antenna codebook panics inside the scoring
		// pass — after the workspace has been leased.
		cb.QuadFormScoresInto(cmat.New(3, 3), dst)
	}()

	// A full scoring pass after the panic must work and leave the pool
	// healthy (no stuck leases).
	q := cb.Beam(0).Weights.Outer(cb.Beam(0).Weights).Hermitianize()
	dst := make([]float64, cb.Size())
	cb.QuadFormScoresInto(q, dst)
	if best, _ := cb.BestQuadForm(q); best != 0 {
		t.Errorf("BestQuadForm = %d, want 0 (rank-one Q on beam 0)", best)
	}
}
