package antenna

import (
	"math"

	"mmwalign/internal/cmat"
)

// PatternPoint is one sample of a beam pattern cut.
type PatternPoint struct {
	// Az is the azimuth of the sample in radians.
	Az float64
	// GainDB is the beamforming power gain toward (Az, elevation of the
	// cut) in dB relative to an isotropic unit-norm combiner.
	GainDB float64
}

// PatternCut samples the power pattern of weight vector w on array ar
// along an azimuth sweep [−π/2, π/2] at fixed elevation el, with n
// uniformly spaced samples. Panics if n < 2 (delegated bounds come from
// the gain evaluation).
func PatternCut(ar Array, w cmat.Vector, el float64, n int) []PatternPoint {
	if n < 2 {
		n = 2
	}
	out := make([]PatternPoint, n)
	for i := 0; i < n; i++ {
		az := -math.Pi/2 + math.Pi*float64(i)/float64(n-1)
		g := Gain(ar, w, Direction{Az: az, El: el})
		gdB := math.Inf(-1)
		if g > 0 {
			gdB = 10 * math.Log10(g)
		}
		out[i] = PatternPoint{Az: az, GainDB: gdB}
	}
	return out
}

// HalfPowerBeamwidth returns the −3 dB main-lobe width (radians) of the
// azimuth cut of w at elevation el, measured around the pattern peak.
// Returns 0 if the pattern has no identifiable peak.
func HalfPowerBeamwidth(ar Array, w cmat.Vector, el float64) float64 {
	const samples = 2048
	cut := PatternCut(ar, w, el, samples)
	peak, peakIdx := math.Inf(-1), -1
	for i, p := range cut {
		if p.GainDB > peak {
			peak, peakIdx = p.GainDB, i
		}
	}
	if peakIdx < 0 || math.IsInf(peak, -1) {
		return 0
	}
	threshold := peak - 3
	lo, hi := peakIdx, peakIdx
	for lo > 0 && cut[lo-1].GainDB >= threshold {
		lo--
	}
	for hi < len(cut)-1 && cut[hi+1].GainDB >= threshold {
		hi++
	}
	return cut[hi].Az - cut[lo].Az
}

// PeakSidelobeDB returns the highest pattern level outside the main lobe
// relative to the peak, in dB (a negative number; more negative is
// better). The main lobe is delimited by the first nulls (local minima
// at least 20 dB below peak) on each side of the peak; if no such null
// exists the function returns 0 (lobe fills the cut).
func PeakSidelobeDB(ar Array, w cmat.Vector, el float64) float64 {
	const samples = 2048
	cut := PatternCut(ar, w, el, samples)
	peak, peakIdx := math.Inf(-1), -1
	for i, p := range cut {
		if p.GainDB > peak {
			peak, peakIdx = p.GainDB, i
		}
	}
	if peakIdx < 0 {
		return 0
	}
	nullDepth := peak - 20
	left := -1
	for i := peakIdx; i > 0; i-- {
		if cut[i].GainDB <= nullDepth {
			left = i
			break
		}
	}
	right := -1
	for i := peakIdx; i < len(cut); i++ {
		if cut[i].GainDB <= nullDepth {
			right = i
			break
		}
	}
	if left < 0 && right < 0 {
		return 0
	}
	side := math.Inf(-1)
	for i, p := range cut {
		if (left >= 0 && i <= left) || (right >= 0 && i >= right) {
			if p.GainDB > side {
				side = p.GainDB
			}
		}
	}
	if math.IsInf(side, -1) {
		return 0
	}
	return side - peak
}

// CoverageStats summarizes how well a codebook covers the angular space.
type CoverageStats struct {
	// WorstGainDB is the minimum over sampled directions of the best
	// codeword gain — the worst-case loss a user in an unlucky direction
	// pays relative to a perfectly steered beam (0 dB).
	WorstGainDB float64
	// MeanGainDB is the mean over directions of the best codeword gain.
	MeanGainDB float64
}

// Coverage evaluates codebook coverage over an nAz×nEl sample grid of
// the codebook's nominal angular span. For every sampled direction it
// takes the best codeword's gain relative to the matched-beam gain
// (unit, by the unit-norm convention).
func Coverage(cb *Codebook, nAz, nEl int) CoverageStats {
	if nAz < 2 {
		nAz = 2
	}
	if nEl < 1 {
		nEl = 1
	}
	ar := cb.Array()
	worst := math.Inf(1)
	var sum float64
	var count int
	for e := 0; e < nEl; e++ {
		el := 0.0
		if nEl > 1 {
			el = -math.Pi/4 + math.Pi/2*float64(e)/float64(nEl-1)
		}
		for a := 0; a < nAz; a++ {
			az := -math.Pi/2 + math.Pi*float64(a)/float64(nAz-1)
			d := Direction{Az: az, El: el}
			best := 0.0
			for _, beam := range cb.Beams() {
				if g := Gain(ar, beam.Weights, d); g > best {
					best = g
				}
			}
			bestDB := math.Inf(-1)
			if best > 0 {
				bestDB = 10 * math.Log10(best)
			}
			if bestDB < worst {
				worst = bestDB
			}
			sum += bestDB
			count++
		}
	}
	return CoverageStats{WorstGainDB: worst, MeanGainDB: sum / float64(count)}
}
