package antenna

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"mmwalign/internal/cmat"
)

func TestULASteeringUnitNorm(t *testing.T) {
	a := NewULA(16)
	for _, az := range []float64{-1.2, -0.5, 0, 0.3, 1.4} {
		v := a.Steering(Direction{Az: az})
		if math.Abs(v.Norm()-1) > 1e-12 {
			t.Errorf("az=%g: ‖a‖ = %g, want 1", az, v.Norm())
		}
		if len(v) != 16 {
			t.Fatalf("len = %d", len(v))
		}
	}
}

func TestULABoresightAllEqualPhase(t *testing.T) {
	a := NewULA(8)
	v := a.Steering(Direction{})
	for i := 1; i < len(v); i++ {
		if cmplx.Abs(v[i]-v[0]) > 1e-14 {
			t.Fatalf("boresight element %d differs: %v vs %v", i, v[i], v[0])
		}
	}
}

func TestULASteeringPhaseProgression(t *testing.T) {
	a := NewULA(4)
	az := 0.7
	v := a.Steering(Direction{Az: az})
	wantStep := 2 * math.Pi * 0.5 * math.Sin(az)
	for i := 1; i < len(v); i++ {
		step := cmplx.Phase(v[i] / v[i-1])
		if math.Abs(angleDiff(step, wantStep)) > 1e-12 {
			t.Fatalf("phase step %g, want %g", step, wantStep)
		}
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b+3*math.Pi, 2*math.Pi) - math.Pi
	return d
}

func TestUPASteeringUnitNormProperty(t *testing.T) {
	a := NewUPA(4, 4)
	f := func(az, el float64) bool {
		az = math.Mod(az, math.Pi/2)
		el = math.Mod(el, math.Pi/4)
		if math.IsNaN(az) || math.IsNaN(el) {
			return true
		}
		v := a.Steering(Direction{Az: az, El: el})
		return math.Abs(v.Norm()-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUPAElements(t *testing.T) {
	if got := NewUPA(4, 8).Elements(); got != 32 {
		t.Errorf("Elements = %d, want 32", got)
	}
}

func TestUPAMatchesULAForSingleRow(t *testing.T) {
	// A 1-row UPA is a ULA at zero elevation.
	upa := NewUPA(8, 1)
	ula := NewULA(8)
	for _, az := range []float64{-0.8, 0, 0.6} {
		u := upa.Steering(Direction{Az: az})
		l := ula.Steering(Direction{Az: az})
		if !u.ApproxEqual(l, 1e-12) {
			t.Errorf("az=%g: UPA row != ULA", az)
		}
	}
}

func TestGainMaximalAtMatchedDirection(t *testing.T) {
	a := NewUPA(4, 4)
	target := Direction{Az: 0.4, El: -0.1}
	w := a.Steering(target)
	gMatch := Gain(a, w, target)
	if math.Abs(gMatch-1) > 1e-12 {
		t.Errorf("matched gain = %g, want 1", gMatch)
	}
	// Any other direction must not beat the matched one.
	for _, d := range []Direction{{0, 0}, {0.9, 0}, {0.4, 0.5}, {-0.4, -0.1}} {
		if g := Gain(a, w, d); g > gMatch+1e-12 {
			t.Errorf("gain toward %+v = %g exceeds matched gain", d, g)
		}
	}
}

func TestGainDecaysOffBeam(t *testing.T) {
	a := NewULA(16)
	w := a.Steering(Direction{Az: 0})
	// Far off the main lobe the gain of a 16-element ULA should be well
	// below half power.
	if g := Gain(a, w, Direction{Az: 0.8}); g > 0.2 {
		t.Errorf("off-beam gain = %g, want < 0.2", g)
	}
}

func TestSteeringVectorsDistinguishDirections(t *testing.T) {
	a := NewUPA(8, 8)
	v1 := a.Steering(Direction{Az: 0.2})
	v2 := a.Steering(Direction{Az: -0.2})
	if v1.ApproxEqual(v2, 1e-6) {
		t.Error("distinct directions produced identical steering vectors")
	}
}

func TestStringSmoke(t *testing.T) {
	if NewULA(4).String() == "" || NewUPA(2, 3).String() == "" {
		t.Error("empty String() output")
	}
}

// Steering vectors of a λ/2 ULA sampled at DFT angles must be mutually
// orthogonal — the fundamental property the DFT codebook relies on.
func TestDFTAngleOrthogonality(t *testing.T) {
	n := 8
	a := NewULA(n)
	vecs := make([]cmat.Vector, n)
	for k := 0; k < n; k++ {
		sinAz := (2*float64(k)/float64(n) - 1)
		vecs[k] = a.Steering(Direction{Az: math.Asin(sinAz)})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ip := cmplx.Abs(vecs[i].Dot(vecs[j])); ip > 1e-10 {
				t.Errorf("beams %d,%d inner product %g, want 0", i, j, ip)
			}
		}
	}
}
