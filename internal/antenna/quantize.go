package antenna

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmwalign/internal/cmat"
)

// QuantizeWeights applies the analog phase-shifter hardware constraint
// to a beamforming vector: every element is forced to constant modulus
// 1/√N (phase shifters cannot attenuate) with its phase rounded to the
// nearest of 2^bits uniformly spaced levels. Zero elements keep phase 0.
// Panics if bits < 1 (a programmer error; 1-bit shifters are the
// hardware floor).
func QuantizeWeights(w cmat.Vector, bits int) cmat.Vector {
	if bits < 1 {
		panic(fmt.Sprintf("antenna: phase shifter bits %d must be ≥1", bits))
	}
	n := len(w)
	if n == 0 {
		return cmat.Vector{}
	}
	levels := float64(int(1) << uint(bits))
	step := 2 * math.Pi / levels
	mag := 1 / math.Sqrt(float64(n))
	out := make(cmat.Vector, n)
	for i, v := range w {
		phase := cmplx.Phase(v) // 0 for v == 0
		q := math.Round(phase/step) * step
		out[i] = cmplx.Rect(mag, q)
	}
	return out
}

// QuantizedCodebook returns a copy of cb with every codeword passed
// through b-bit phase quantization — the codebook an actual analog
// front end can realize.
func QuantizedCodebook(cb *Codebook, bits int) *Codebook {
	out := &Codebook{
		nAz:    cb.nAz,
		nEl:    cb.nEl,
		array:  cb.array,
		labels: fmt.Sprintf("%s (quantized %d-bit)", cb.labels, bits),
	}
	for _, b := range cb.beams {
		nb := b
		nb.Weights = QuantizeWeights(b.Weights, bits)
		out.beams = append(out.beams, nb)
	}
	return out
}

// QuantizationLossDB returns the beamforming gain loss (dB) of b-bit
// phase quantization for a steering beam toward d on array ar: the gain
// of the quantized beam relative to the ideal continuous-phase beam.
func QuantizationLossDB(ar Array, d Direction, bits int) float64 {
	w := ar.Steering(d)
	q := QuantizeWeights(w, bits)
	ideal := Gain(ar, w, d)
	got := Gain(ar, q, d)
	if got <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(ideal/got)
}
