package antenna

import (
	"math"
	"math/cmplx"
	"testing"

	"mmwalign/internal/cmat"
)

func TestQuantizeWeightsConstantModulus(t *testing.T) {
	a := NewUPA(4, 4)
	w := a.Steering(Direction{Az: 0.37, El: -0.11})
	for _, bits := range []int{1, 2, 3, 6} {
		q := QuantizeWeights(w, bits)
		want := 1 / math.Sqrt(16)
		for i, v := range q {
			if math.Abs(cmplx.Abs(v)-want) > 1e-12 {
				t.Fatalf("bits=%d element %d modulus %g, want %g", bits, i, cmplx.Abs(v), want)
			}
		}
		if n := q.Norm(); math.Abs(n-1) > 1e-12 {
			t.Fatalf("bits=%d norm %g", bits, n)
		}
	}
}

func TestQuantizeWeightsPhaseLevels(t *testing.T) {
	a := NewULA(8)
	w := a.Steering(Direction{Az: 0.5})
	bits := 2
	q := QuantizeWeights(w, bits)
	step := math.Pi / 2 // 2π/2²
	for i, v := range q {
		phase := cmplx.Phase(v)
		ratio := phase / step
		if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
			t.Fatalf("element %d phase %g is not a multiple of %g", i, phase, step)
		}
	}
}

func TestQuantizeWeightsPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QuantizeWeights(cmat.Vector{1, 1, 1, 1}, 0)
}

func TestQuantizationLossShrinksWithBits(t *testing.T) {
	a := NewUPA(8, 8)
	d := Direction{Az: 0.4, El: 0.15}
	prev := math.Inf(1)
	for _, bits := range []int{1, 2, 3, 4} {
		loss := QuantizationLossDB(a, d, bits)
		if loss < 0 {
			t.Fatalf("bits=%d negative loss %g", bits, loss)
		}
		if loss > prev+1e-9 {
			t.Fatalf("loss grew with more bits: %g -> %g", prev, loss)
		}
		prev = loss
	}
	// The standard result: 3-bit quantization costs well under 0.3 dB.
	if l := QuantizationLossDB(a, d, 3); l > 0.3 {
		t.Errorf("3-bit loss %g dB, want < 0.3", l)
	}
	// 1-bit costs a few dB but the beam must survive.
	if l := QuantizationLossDB(a, d, 1); l > 6 {
		t.Errorf("1-bit loss %g dB implausibly large", l)
	}
}

func TestQuantizedCodebook(t *testing.T) {
	cb := testCodebook()
	qcb := QuantizedCodebook(cb, 2)
	if qcb.Size() != cb.Size() {
		t.Fatalf("size %d, want %d", qcb.Size(), cb.Size())
	}
	nAz, nEl := qcb.GridShape()
	wAz, wEl := cb.GridShape()
	if nAz != wAz || nEl != wEl {
		t.Error("grid shape changed")
	}
	for i := 0; i < qcb.Size(); i++ {
		b := qcb.Beam(i)
		if math.Abs(b.Weights.Norm()-1) > 1e-12 {
			t.Fatalf("beam %d norm %g", i, b.Weights.Norm())
		}
		if b.Dir != cb.Beam(i).Dir {
			t.Fatalf("beam %d direction changed", i)
		}
	}
	// Quantized beams still point: matched-direction gain within 1 dB of
	// the ideal codeword.
	for _, i := range []int{0, 7, 15, 31} {
		ideal := Gain(cb.Array(), cb.Beam(i).Weights, cb.Beam(i).Dir)
		got := Gain(cb.Array(), qcb.Beam(i).Weights, qcb.Beam(i).Dir)
		if 10*math.Log10(ideal/got) > 1 {
			t.Errorf("beam %d quantization loss > 1 dB", i)
		}
	}
}
