package antenna

import (
	"math"
	"testing"
)

func TestPatternCutShapeAndPeak(t *testing.T) {
	a := NewULA(16)
	target := Direction{Az: 0.3}
	w := a.Steering(target)
	cut := PatternCut(a, w, 0, 721)
	if len(cut) != 721 {
		t.Fatalf("len = %d", len(cut))
	}
	// Peak must land near the steering azimuth with ~0 dB gain.
	best, bestIdx := math.Inf(-1), -1
	for i, p := range cut {
		if p.GainDB > best {
			best, bestIdx = p.GainDB, i
		}
	}
	if math.Abs(cut[bestIdx].Az-0.3) > 0.02 {
		t.Errorf("peak at az %g, want ~0.3", cut[bestIdx].Az)
	}
	if math.Abs(best) > 0.05 {
		t.Errorf("peak gain %g dB, want ~0", best)
	}
}

func TestPatternCutMinimumSamples(t *testing.T) {
	a := NewULA(4)
	if got := len(PatternCut(a, a.Steering(Direction{}), 0, 0)); got != 2 {
		t.Errorf("len = %d, want clamped 2", got)
	}
}

func TestHalfPowerBeamwidthScalesInverselyWithAperture(t *testing.T) {
	// For a λ/2 ULA the HPBW is ≈ 0.886·2/N radians at boresight.
	for _, n := range []int{8, 16, 32} {
		a := NewULA(n)
		w := a.Steering(Direction{})
		got := HalfPowerBeamwidth(a, w, 0)
		want := 0.886 * 2 / float64(n)
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("N=%d: HPBW = %g rad, want ≈%g", n, got, want)
		}
	}
	// Doubling the array should roughly halve the beamwidth.
	w8 := HalfPowerBeamwidth(NewULA(8), NewULA(8).Steering(Direction{}), 0)
	w16 := HalfPowerBeamwidth(NewULA(16), NewULA(16).Steering(Direction{}), 0)
	if ratio := w8 / w16; ratio < 1.7 || ratio > 2.3 {
		t.Errorf("HPBW ratio 8→16 elements = %g, want ≈2", ratio)
	}
}

func TestPeakSidelobeUniformULA(t *testing.T) {
	// The first sidelobe of a uniformly weighted array is ≈ −13.3 dB.
	a := NewULA(32)
	w := a.Steering(Direction{})
	got := PeakSidelobeDB(a, w, 0)
	if math.Abs(got-(-13.3)) > 1.0 {
		t.Errorf("peak sidelobe = %g dB, want ≈ −13.3", got)
	}
}

func TestCoverageImprovesWithCodebookSize(t *testing.T) {
	ar := NewULA(16)
	small := Coverage(NewGridCodebook(ar, 8, 1, math.Pi, 0), 181, 1)
	large := Coverage(NewGridCodebook(ar, 32, 1, math.Pi, 0), 181, 1)
	if large.WorstGainDB < small.WorstGainDB {
		t.Errorf("denser codebook has worse coverage: %g vs %g dB",
			large.WorstGainDB, small.WorstGainDB)
	}
	if large.MeanGainDB < small.MeanGainDB {
		t.Errorf("denser codebook has worse mean gain: %g vs %g dB",
			large.MeanGainDB, small.MeanGainDB)
	}
}

func TestCoverageBounds(t *testing.T) {
	ar := NewULA(8)
	cb := NewGridCodebook(ar, 16, 1, math.Pi, 0)
	st := Coverage(cb, 91, 1)
	if st.WorstGainDB > 0.01 {
		t.Errorf("worst gain %g dB exceeds matched-beam bound", st.WorstGainDB)
	}
	if st.MeanGainDB < st.WorstGainDB {
		t.Errorf("mean %g below worst %g", st.MeanGainDB, st.WorstGainDB)
	}
	// A 16-beam book on an 8-element array should cover the sweep within
	// a few dB everywhere (beams overlap at roughly their -1 dB points).
	if st.WorstGainDB < -6 {
		t.Errorf("worst-case coverage %g dB is implausibly poor", st.WorstGainDB)
	}
}
