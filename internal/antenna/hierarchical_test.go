package antenna

import (
	"math"
	"testing"
)

func TestHierCodebookLeafCountMatchesFlat(t *testing.T) {
	flat := testCodebook() // 8x4 = 32 beams
	h := NewHierCodebook(flat, 2, 2)
	if got := h.LeafCount(); got != flat.Size() {
		t.Errorf("LeafCount = %d, want %d", got, flat.Size())
	}
}

func TestHierCodebookRootCount(t *testing.T) {
	flat := testCodebook()
	h := NewHierCodebook(flat, 2, 2)
	if len(h.Roots) != 4 {
		t.Errorf("roots = %d, want 4", len(h.Roots))
	}
}

func TestHierCodebookRootsClampedToGrid(t *testing.T) {
	flat := NewGridCodebook(NewULA(4), 4, 1, math.Pi, 0)
	h := NewHierCodebook(flat, 8, 8) // more roots than cells
	if got := h.LeafCount(); got != flat.Size() {
		t.Errorf("LeafCount = %d, want %d", got, flat.Size())
	}
}

func TestHierCodebookWeightsUnitNorm(t *testing.T) {
	h := NewHierCodebook(testCodebook(), 2, 2)
	var walk func(n *HierBeam)
	walk = func(n *HierBeam) {
		if nrm := n.Weights.Norm(); math.Abs(nrm-1) > 1e-10 {
			t.Errorf("sector weight norm = %g", nrm)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range h.Roots {
		walk(r)
	}
}

func TestHierCodebookLeavesMapToFlatBeams(t *testing.T) {
	flat := testCodebook()
	h := NewHierCodebook(flat, 2, 2)
	seen := make(map[int]bool)
	var walk func(n *HierBeam)
	walk = func(n *HierBeam) {
		if len(n.Children) == 0 {
			if n.LeafIndex < 0 || n.LeafIndex >= flat.Size() {
				t.Fatalf("leaf index %d out of range", n.LeafIndex)
			}
			if seen[n.LeafIndex] {
				t.Fatalf("leaf %d appears twice", n.LeafIndex)
			}
			seen[n.LeafIndex] = true
			if !n.Weights.ApproxEqual(flat.Beam(n.LeafIndex).Weights, 1e-10) {
				t.Errorf("leaf %d weights differ from flat codeword", n.LeafIndex)
			}
			return
		}
		if n.LeafIndex != -1 {
			t.Errorf("internal node has leaf index %d", n.LeafIndex)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range h.Roots {
		walk(r)
	}
	if len(seen) != flat.Size() {
		t.Errorf("leaves cover %d of %d flat beams", len(seen), flat.Size())
	}
}

func TestHierCodebookDepth(t *testing.T) {
	flat := testCodebook() // 8x4 grid, 2x2 roots → sectors of 4x2 cells → 3 splits
	h := NewHierCodebook(flat, 2, 2)
	if d := h.Depth(); d != 4 {
		t.Errorf("Depth = %d, want 4 (sector 4x2 → 2x2 → 1x2 → 1x1)", d)
	}
}

func TestHierCodebookSectorContainment(t *testing.T) {
	h := NewHierCodebook(testCodebook(), 2, 2)
	var walk func(n *HierBeam)
	walk = func(n *HierBeam) {
		for _, c := range n.Children {
			if c.AzLo < n.AzLo-1e-12 || c.AzHi > n.AzHi+1e-12 ||
				c.ElLo < n.ElLo-1e-12 || c.ElHi > n.ElHi+1e-12 {
				t.Errorf("child sector [%g,%g]x[%g,%g] escapes parent [%g,%g]x[%g,%g]",
					c.AzLo, c.AzHi, c.ElLo, c.ElHi, n.AzLo, n.AzHi, n.ElLo, n.ElHi)
			}
			walk(c)
		}
	}
	for _, r := range h.Roots {
		walk(r)
	}
}

func TestHierCodebookWideBeamCoversSector(t *testing.T) {
	// The root sector beam should have higher gain toward its own sector
	// center than toward the opposite sector's center.
	flat := testCodebook()
	h := NewHierCodebook(flat, 2, 1)
	left, right := h.Roots[0], h.Roots[1]
	ar := flat.Array()
	gOwn := Gain(ar, left.Weights, left.Center)
	gOther := Gain(ar, left.Weights, right.Center)
	if gOwn <= gOther {
		t.Errorf("sector beam gain own=%g other=%g", gOwn, gOther)
	}
}

func TestHierCodebookPanicsOnBadRoots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHierCodebook(testCodebook(), 0, 1)
}
