package antenna

import (
	"fmt"

	"mmwalign/internal/cmat"
)

// HierBeam is a node in a hierarchical (multi-resolution) codebook: a
// beam covering an angular sector, with children covering sub-sectors.
type HierBeam struct {
	// Weights is the unit-norm composite beamforming vector for the
	// sector.
	Weights cmat.Vector
	// Center is the sector's central direction.
	Center Direction
	// AzLo, AzHi, ElLo, ElHi delimit the covered sector in radians.
	AzLo, AzHi, ElLo, ElHi float64
	// Children are the finer-resolution beams refining this sector;
	// empty at the finest level.
	Children []*HierBeam
	// LeafIndex is the index of the matching beam in the flat codebook
	// when this node is a leaf, else -1.
	LeafIndex int
}

// HierCodebook is a multi-level beam codebook in the style of Hur et al.
// ("adaptive subspace sampling and hierarchical beam codebooks"): level 0
// holds a few wide sector beams; each subsequent level splits every
// sector in two along its wider angular axis until individual codewords
// of the underlying flat codebook are reached.
type HierCodebook struct {
	// Roots are the level-0 sector beams.
	Roots []*HierBeam
	// Flat is the finest-resolution codebook the hierarchy refines into.
	Flat *Codebook
}

// NewHierCodebook builds a hierarchy over the given flat grid codebook
// with the requested branching at the top level (rootsAz×rootsEl wide
// sectors). Wide beams are synthesized as the normalized average of the
// member steering vectors, the standard sector-beam approximation for
// analog arrays. Panics if the root grid is not positive.
func NewHierCodebook(flat *Codebook, rootsAz, rootsEl int) *HierCodebook {
	if rootsAz <= 0 || rootsEl <= 0 {
		panic(fmt.Sprintf("antenna: hierarchical roots %dx%d must be positive", rootsAz, rootsEl))
	}
	nAz, nEl := flat.GridShape()
	if rootsAz > nAz {
		rootsAz = nAz
	}
	if rootsEl > nEl {
		rootsEl = nEl
	}
	h := &HierCodebook{Flat: flat}
	for re := 0; re < rootsEl; re++ {
		for ra := 0; ra < rootsAz; ra++ {
			azLo := ra * nAz / rootsAz
			azHi := (ra + 1) * nAz / rootsAz
			elLo := re * nEl / rootsEl
			elHi := (re + 1) * nEl / rootsEl
			if azHi <= azLo || elHi <= elLo {
				continue
			}
			h.Roots = append(h.Roots, h.buildSector(azLo, azHi, elLo, elHi))
		}
	}
	return h
}

// buildSector constructs the node covering grid cells
// [azLo, azHi)×[elLo, elHi) and recursively splits it.
func (h *HierCodebook) buildSector(azLo, azHi, elLo, elHi int) *HierBeam {
	nAz, _ := h.Flat.GridShape()
	node := &HierBeam{LeafIndex: -1}

	// Composite weights: normalized sum of member steering vectors.
	sum := cmat.NewVector(h.Flat.Array().Elements())
	count := 0
	var azAngles, elAngles []float64
	for e := elLo; e < elHi; e++ {
		for a := azLo; a < azHi; a++ {
			b := h.Flat.Beam(e*nAz + a)
			sum = sum.Add(b.Weights)
			azAngles = append(azAngles, b.Dir.Az)
			elAngles = append(elAngles, b.Dir.El)
			count++
		}
	}
	if count == 0 {
		return node
	}
	node.Weights = sum.Normalize()
	node.AzLo, node.AzHi = minMax(azAngles)
	node.ElLo, node.ElHi = minMax(elAngles)
	node.Center = Direction{Az: (node.AzLo + node.AzHi) / 2, El: (node.ElLo + node.ElHi) / 2}

	if count == 1 {
		node.LeafIndex = elLo*nAz + azLo
		return node
	}
	// Split along the wider grid axis.
	if azHi-azLo >= elHi-elLo {
		mid := (azLo + azHi) / 2
		node.Children = append(node.Children,
			h.buildSector(azLo, mid, elLo, elHi),
			h.buildSector(mid, azHi, elLo, elHi))
	} else {
		mid := (elLo + elHi) / 2
		node.Children = append(node.Children,
			h.buildSector(azLo, azHi, elLo, mid),
			h.buildSector(azLo, azHi, mid, elHi))
	}
	return node
}

// Depth returns the number of levels in the hierarchy (1 for roots that
// are already leaves).
func (h *HierCodebook) Depth() int {
	var walk func(n *HierBeam) int
	walk = func(n *HierBeam) int {
		best := 1
		for _, c := range n.Children {
			if d := 1 + walk(c); d > best {
				best = d
			}
		}
		return best
	}
	depth := 0
	for _, r := range h.Roots {
		if d := walk(r); d > depth {
			depth = d
		}
	}
	return depth
}

// LeafCount returns the number of leaves, which must equal the flat
// codebook size.
func (h *HierCodebook) LeafCount() int {
	var walk func(n *HierBeam) int
	walk = func(n *HierBeam) int {
		if len(n.Children) == 0 {
			return 1
		}
		total := 0
		for _, c := range n.Children {
			total += walk(c)
		}
		return total
	}
	total := 0
	for _, r := range h.Roots {
		total += walk(r)
	}
	return total
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
