//go:build race

package antenna

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool intentionally drops items to widen the interleaving space,
// so allocation-count assertions are not meaningful.
const raceEnabled = true
