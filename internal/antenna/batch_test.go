package antenna

import (
	"math"
	"math/rand"
	"testing"

	"mmwalign/internal/cmat"
)

func randHermQ(seed int64, n int) *cmat.Matrix {
	r := rand.New(rand.NewSource(seed))
	m := cmat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(r.NormFloat64(), r.NormFloat64()))
		}
	}
	return m.Hermitianize()
}

func TestQuadFormScoresMatchScalarBitwise(t *testing.T) {
	cb := testCodebook()
	q := randHermQ(21, cb.Array().Elements())
	scores := make([]float64, cb.Size())
	cb.QuadFormScoresInto(q, scores)
	for i := 0; i < cb.Size(); i++ {
		if want := q.QuadForm(cb.Beam(i).Weights); scores[i] != want {
			t.Fatalf("beam %d: batched score %v, want %v (bitwise)", i, scores[i], want)
		}
	}
}

func TestBestQuadFormMatchesScalarScan(t *testing.T) {
	cb := testCodebook()
	for seed := int64(1); seed <= 5; seed++ {
		q := randHermQ(seed, cb.Array().Elements())
		gotIdx, gotVal := cb.BestQuadForm(q)
		wantIdx, wantVal := -1, math.Inf(-1)
		for i := 0; i < cb.Size(); i++ {
			if v := q.QuadForm(cb.Beam(i).Weights); v > wantVal {
				wantIdx, wantVal = i, v
			}
		}
		if gotIdx != wantIdx || gotVal != wantVal {
			t.Fatalf("seed %d: BestQuadForm = (%d, %v), want (%d, %v)", seed, gotIdx, gotVal, wantIdx, wantVal)
		}
	}
}

// TestTopKPathsAgree pins the path-independence promise: for any k the
// small-k repeated scan and the sort path produce the same ranking, so
// the cutoff is purely a performance knob.
func TestTopKPathsAgree(t *testing.T) {
	cb := testCodebook()
	q := randHermQ(33, cb.Array().Elements())
	full := cb.TopKQuadForm(q, cb.Size()) // sort path (k = 32 > cutoff)
	for k := 1; k <= topKScanCutoff; k++ {
		scan := cb.TopKQuadForm(q, k) // scan path
		for i := range scan {
			if scan[i] != full[i] {
				t.Fatalf("k=%d: scan path %v disagrees with sort-path prefix %v", k, scan, full[:k])
			}
		}
	}
}

func TestTopKTieBreakAndNaN(t *testing.T) {
	cb := testCodebook()
	// A zero matrix scores every beam exactly 0: ties must resolve by
	// ascending beam index on both paths.
	zero := cmat.New(cb.Array().Elements(), cb.Array().Elements())
	for _, k := range []int{3, cb.Size()} {
		got := cb.TopKQuadForm(zero, k)
		for i, idx := range got {
			if idx != i {
				t.Fatalf("k=%d: tie order %v, want ascending indices", k, got)
			}
		}
	}
	// NaN scores must rank below every finite score, not poison the
	// comparison order.
	nan := cmat.New(cb.Array().Elements(), cb.Array().Elements())
	nan.Set(0, 0, complex(math.NaN(), 0))
	ranked := cb.TopKQuadForm(nan, cb.Size())
	if len(ranked) != cb.Size() {
		t.Fatalf("ranked %d beams, want %d", len(ranked), cb.Size())
	}
	seen := make(map[int]bool)
	for _, idx := range ranked {
		if seen[idx] {
			t.Fatalf("duplicate index %d in ranking %v", idx, ranked)
		}
		seen[idx] = true
	}
}

func TestTopKQuadFormIntoReusesBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race (sync.Pool drops items)")
	}
	cb := testCodebook()
	q := randHermQ(44, cb.Array().Elements())
	buf := make([]int, 0, cb.Size())
	// Warm the packed cache and the workspace pool.
	buf = cb.TopKQuadFormInto(q, 4, buf)
	allocs := testing.AllocsPerRun(50, func() {
		buf = cb.TopKQuadFormInto(q, 4, buf)
	})
	if allocs != 0 {
		t.Errorf("small-k TopKQuadFormInto allocates %.1f per call, want 0", allocs)
	}
}

func TestQuadFormScoresConcurrentUse(t *testing.T) {
	cb := testCodebook()
	q := randHermQ(55, cb.Array().Elements())
	want := make([]float64, cb.Size())
	cb.QuadFormScoresInto(q, want)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			dst := make([]float64, cb.Size())
			for rep := 0; rep < 50; rep++ {
				cb.QuadFormScoresInto(q, dst)
				for i := range dst {
					if dst[i] != want[i] {
						done <- errTest(i)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent scoring diverged: %v", err)
		}
	}
}

type errTest int

func (e errTest) Error() string { return "score mismatch at beam " + string(rune('0'+int(e))) }
