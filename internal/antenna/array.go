// Package antenna models the antenna arrays and beamforming codebooks of
// an analog-beamforming mmWave transceiver: uniform linear arrays (ULA),
// uniform planar arrays (UPA), their far-field steering vectors, grid and
// DFT beam codebooks with a spatial-adjacency structure (needed by the
// "Scan" baseline of the paper), and multi-resolution hierarchical
// codebooks used by the hierarchical-search extension.
//
// Angle convention: az is the azimuth angle and el the elevation angle,
// both in radians, with boresight at (0, 0). Element spacing is expressed
// in carrier wavelengths (0.5 = λ/2, the paper's setting).
package antenna

import (
	"fmt"
	"math"
	"math/cmplx"

	"mmwalign/internal/cmat"
)

// Direction is a far-field direction seen from an array.
type Direction struct {
	Az float64 // azimuth, radians
	El float64 // elevation, radians
}

// Array is an antenna array geometry able to produce far-field steering
// vectors.
type Array interface {
	// Elements returns the number of antenna elements.
	Elements() int
	// Steering returns the unit-norm array response for a far-field
	// direction.
	Steering(d Direction) cmat.Vector
	// String describes the geometry.
	String() string
}

// ULA is a uniform linear array along the x-axis.
type ULA struct {
	// N is the number of elements.
	N int
	// Spacing is the inter-element spacing in wavelengths.
	Spacing float64
}

// NewULA returns an N-element λ/2-spaced uniform linear array.
func NewULA(n int) ULA { return ULA{N: n, Spacing: 0.5} }

// Elements implements Array.
func (a ULA) Elements() int { return a.N }

// Steering implements Array. For a ULA only the azimuth matters; the
// elevation scales the effective electrical length via cos(el).
func (a ULA) Steering(d Direction) cmat.Vector {
	v := cmat.NewVector(a.N)
	scale := complex(1/math.Sqrt(float64(a.N)), 0)
	psi := 2 * math.Pi * a.Spacing * math.Sin(d.Az) * math.Cos(d.El)
	for n := 0; n < a.N; n++ {
		v[n] = scale * cmplx.Exp(complex(0, psi*float64(n)))
	}
	return v
}

// String implements Array.
func (a ULA) String() string { return fmt.Sprintf("ULA-%d(d=%.2gλ)", a.N, a.Spacing) }

// UPA is a uniform planar array in the x-z plane with NX columns
// (horizontal) and NZ rows (vertical). The paper uses 4×4 at the
// transmitter and 8×8 at the receiver.
type UPA struct {
	// NX is the number of horizontal elements.
	NX int
	// NZ is the number of vertical elements.
	NZ int
	// Spacing is the inter-element spacing in wavelengths (both axes).
	Spacing float64
}

// NewUPA returns an nx×nz λ/2-spaced uniform planar array.
func NewUPA(nx, nz int) UPA { return UPA{NX: nx, NZ: nz, Spacing: 0.5} }

// Elements implements Array.
func (a UPA) Elements() int { return a.NX * a.NZ }

// Steering implements Array. The response factors into a horizontal ULA
// response (spatial frequency sin(az)·cos(el)) and a vertical one
// (spatial frequency sin(el)); element (x, z) is stored at index
// z·NX + x.
func (a UPA) Steering(d Direction) cmat.Vector {
	m := a.Elements()
	v := cmat.NewVector(m)
	scale := complex(1/math.Sqrt(float64(m)), 0)
	psiX := 2 * math.Pi * a.Spacing * math.Sin(d.Az) * math.Cos(d.El)
	psiZ := 2 * math.Pi * a.Spacing * math.Sin(d.El)
	for z := 0; z < a.NZ; z++ {
		for x := 0; x < a.NX; x++ {
			phase := psiX*float64(x) + psiZ*float64(z)
			v[z*a.NX+x] = scale * cmplx.Exp(complex(0, phase))
		}
	}
	return v
}

// String implements Array.
func (a UPA) String() string { return fmt.Sprintf("UPA-%dx%d(d=%.2gλ)", a.NX, a.NZ, a.Spacing) }

var (
	_ Array = ULA{}
	_ Array = UPA{}
)

// Gain returns the beamforming power gain |a(d)ᴴ·w|² of weight vector w
// toward direction d on array ar. For a unit-norm steering match the
// gain is 1 (array gain is absorbed into the unit-norm convention; the
// channel model re-applies the √(M·N) aperture factor).
func Gain(ar Array, w cmat.Vector, d Direction) float64 {
	s := ar.Steering(d)
	g := s.Dot(w)
	return real(g)*real(g) + imag(g)*imag(g)
}
