package antenna

import (
	"math"
	"testing"

	"mmwalign/internal/cmat"
)

func testCodebook() *Codebook {
	return NewGridCodebook(NewUPA(4, 4), 8, 4, math.Pi, math.Pi/2)
}

func TestGridCodebookSize(t *testing.T) {
	cb := testCodebook()
	if cb.Size() != 32 {
		t.Fatalf("Size = %d, want 32", cb.Size())
	}
	nAz, nEl := cb.GridShape()
	if nAz != 8 || nEl != 4 {
		t.Errorf("grid = %dx%d, want 8x4", nAz, nEl)
	}
}

func TestGridCodebookBeamsUnitNorm(t *testing.T) {
	cb := testCodebook()
	for i := 0; i < cb.Size(); i++ {
		if n := cb.Beam(i).Weights.Norm(); math.Abs(n-1) > 1e-12 {
			t.Errorf("beam %d norm = %g", i, n)
		}
	}
}

func TestGridCodebookAnglesWithinSpan(t *testing.T) {
	cb := testCodebook()
	for _, b := range cb.Beams() {
		if math.Abs(b.Dir.Az) > math.Pi/2 || math.Abs(b.Dir.El) > math.Pi/4 {
			t.Errorf("beam %d direction %+v outside span", b.Index, b.Dir)
		}
	}
}

func TestGridCodebookIndexLayout(t *testing.T) {
	cb := testCodebook()
	nAz, _ := cb.GridShape()
	for _, b := range cb.Beams() {
		if b.Index != b.GridEl*nAz+b.GridAz {
			t.Errorf("beam %d has grid (%d,%d), inconsistent layout", b.Index, b.GridAz, b.GridEl)
		}
	}
}

func TestGridCodebookSingleCell(t *testing.T) {
	cb := NewGridCodebook(NewULA(4), 1, 1, math.Pi, 0)
	if cb.Size() != 1 {
		t.Fatalf("Size = %d", cb.Size())
	}
	if d := cb.Beam(0).Dir; d.Az != 0 || d.El != 0 {
		t.Errorf("single beam at %+v, want boresight", d)
	}
}

func TestGridCodebookPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGridCodebook(NewULA(4), 0, 1, math.Pi, 0)
}

func TestBeamPanicsOutOfRange(t *testing.T) {
	cb := testCodebook()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cb.Beam(cb.Size())
}

func TestNeighbors(t *testing.T) {
	cb := testCodebook() // 8x4 grid
	tests := []struct {
		name  string
		idx   int
		count int
	}{
		{"corner", 0, 2},
		{"edge", 1, 3},
		{"interior", 9, 4},
		{"far corner", cb.Size() - 1, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			nb := cb.Neighbors(tt.idx)
			if len(nb) != tt.count {
				t.Fatalf("|neighbors(%d)| = %d, want %d", tt.idx, len(nb), tt.count)
			}
			// Every neighbor must be one grid step away.
			b := cb.Beam(tt.idx)
			for _, j := range nb {
				n := cb.Beam(j)
				d := abs(n.GridAz-b.GridAz) + abs(n.GridEl-b.GridEl)
				if d != 1 {
					t.Errorf("neighbor %d at manhattan distance %d", j, d)
				}
			}
		})
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestSnakeOrderCoversAllAdjacent(t *testing.T) {
	cb := testCodebook()
	order := cb.SnakeOrder()
	if len(order) != cb.Size() {
		t.Fatalf("snake order covers %d of %d beams", len(order), cb.Size())
	}
	seen := make(map[int]bool)
	for _, i := range order {
		if seen[i] {
			t.Fatalf("beam %d visited twice", i)
		}
		seen[i] = true
	}
	for k := 1; k < len(order); k++ {
		a, b := cb.Beam(order[k-1]), cb.Beam(order[k])
		d := abs(a.GridAz-b.GridAz) + abs(a.GridEl-b.GridEl)
		if d != 1 {
			t.Fatalf("snake step %d→%d is not adjacent (distance %d)", order[k-1], order[k], d)
		}
	}
}

func TestBestQuadFormFindsPlantedDirection(t *testing.T) {
	cb := testCodebook()
	// Plant Q = w wᴴ for codeword 13; BestQuadForm must return 13.
	target := cb.Beam(13).Weights
	q := target.Outer(target)
	idx, val := cb.BestQuadForm(q)
	if idx != 13 {
		t.Errorf("BestQuadForm = %d, want 13", idx)
	}
	if math.Abs(val-1) > 1e-10 {
		t.Errorf("value = %g, want 1", val)
	}
}

func TestTopKQuadFormOrderingAndUniqueness(t *testing.T) {
	cb := testCodebook()
	target := cb.Beam(5).Weights
	q := target.Outer(target)
	top := cb.TopKQuadForm(q, 6)
	if len(top) != 6 {
		t.Fatalf("len = %d, want 6", len(top))
	}
	if top[0] != 5 {
		t.Errorf("top beam = %d, want 5", top[0])
	}
	seen := make(map[int]bool)
	prev := math.Inf(1)
	for _, i := range top {
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
		v := q.QuadForm(cb.Beam(i).Weights)
		if v > prev+1e-12 {
			t.Fatalf("values not descending")
		}
		prev = v
	}
}

func TestTopKQuadFormClampsK(t *testing.T) {
	cb := testCodebook()
	q := cmat.Identity(cb.Array().Elements())
	if got := cb.TopKQuadForm(q, cb.Size()+100); len(got) != cb.Size() {
		t.Errorf("len = %d, want %d", len(got), cb.Size())
	}
}

func TestDFTCodebookOrthogonality(t *testing.T) {
	cb := NewDFTCodebook(NewULA(8))
	if cb.Size() != 8 {
		t.Fatalf("Size = %d, want 8", cb.Size())
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			ip := cb.Beam(i).Weights.Dot(cb.Beam(j).Weights)
			if math.Hypot(real(ip), imag(ip)) > 1e-10 {
				t.Errorf("DFT beams %d,%d not orthogonal", i, j)
			}
		}
	}
}
