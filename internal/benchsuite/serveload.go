package benchsuite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mmwalign/internal/metrics"
	"mmwalign/internal/serve"
)

// The serve workload drives the alignment server end-to-end over real
// HTTP: pooled session lease, covariance estimation, whole-codebook
// scoring, JSON encode — under the same bounded-queue admission control
// cmd/beamserve runs with. It reports wall-clock latency percentiles
// (p50_ns/p95_ns/p99_ns) alongside the usual ns/op, so benchdiff can
// watch tail latency, not just mean throughput.
const (
	// serveLoadBurst is the number of requests issued per benchmark
	// iteration; serveLoadWorkers is the client-side concurrency. The
	// queue depth below is sized so the burst saturates the execution
	// slots without tripping 503 backpressure — this workload measures
	// the served path, not the rejection path.
	serveLoadBurst   = 16
	serveLoadWorkers = 8
)

// serveLoadBody builds the canonical load request: a 4×4 panel with a
// 16-beam codebook and a peaked 12-observation window — small enough to
// keep one request in the low milliseconds, large enough that the
// estimator and scorer dominate over HTTP overhead.
func serveLoadBody() []byte {
	type observation struct {
		Beam   int     `json:"beam"`
		Energy float64 `json:"energy"`
	}
	obs := make([]observation, 0, 12)
	for j := 0; j < 12; j++ {
		d := float64(j - 5)
		obs = append(obs, observation{Beam: j, Energy: 1 + 8/(1+d*d)})
	}
	body, err := json.Marshal(map[string]any{
		"panel_x":      4,
		"panel_z":      4,
		"beams_az":     4,
		"beams_el":     4,
		"max_iters":    10,
		"top_k":        4,
		"observations": obs,
	})
	if err != nil {
		panic(err) // fixture construction is deterministic; cannot fail
	}
	return body
}

// BenchServeLoad measures the alignment server under concurrent load:
// each iteration fires a 16-request burst from 8 client workers at a
// 4-slot server and waits for every response. Reported metrics: the
// client-observed p50_ns/p95_ns/p99_ns request latencies and the
// deterministic best-beam score (fidelity guard — the server must keep
// returning the right beam under concurrency).
func BenchServeLoad(b *testing.B) {
	srv := serve.NewServer(serve.Config{
		MaxConcurrent: 4,
		// Deep enough that a full burst queues instead of bouncing.
		QueueDepth: serveLoadBurst,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := serveLoadBody()
	client := ts.Client()
	url := ts.URL + "/v1/estimate"

	// Warm the pool and capture the fidelity metric outside the timed
	// region.
	first, err := postServeLoad(client, url, body)
	if err != nil {
		b.Fatal(err)
	}
	var resp struct {
		Picks struct {
			Best struct {
				Beam  int     `json:"beam"`
				Score float64 `json:"score"`
			} `json:"best"`
		} `json:"picks"`
	}
	if err := json.Unmarshal(first, &resp); err != nil {
		b.Fatal(err)
	}

	var (
		mu        sync.Mutex
		latencies []float64
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var (
			wg   sync.WaitGroup
			work = make(chan struct{}, serveLoadBurst)
			errs = make(chan error, serveLoadBurst)
		)
		for j := 0; j < serveLoadBurst; j++ {
			work <- struct{}{}
		}
		close(work)
		for w := 0; w < serveLoadWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range work {
					start := time.Now()
					if _, err := postServeLoad(client, url, body); err != nil {
						errs <- err
						return
					}
					elapsed := float64(time.Since(start).Nanoseconds())
					mu.Lock()
					latencies = append(latencies, elapsed)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(metrics.Percentile(latencies, 50), "p50_ns")
	b.ReportMetric(metrics.Percentile(latencies, 95), "p95_ns")
	b.ReportMetric(metrics.Percentile(latencies, 99), "p99_ns")
	b.ReportMetric(resp.Picks.Best.Score, "best_score")
}

// postServeLoad issues one estimate request and returns the body,
// failing on any non-200 status.
func postServeLoad(client *http.Client, url string, body []byte) ([]byte, error) {
	res, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve load: status %d: %s", res.StatusCode, data)
	}
	return data, nil
}
