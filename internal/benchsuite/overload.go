package benchsuite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mmwalign/internal/metrics"
	"mmwalign/internal/serve"
)

// The overload workload is the rejection-path complement of the serve
// workload: four times the server's admission capacity, so a large
// fraction of requests exercise the backpressure machinery (queue-full
// and shed 503s with dynamic Retry-After) instead of the served path.
// The latency percentiles it reports are the overload guarantee under
// regression watch — rejections must stay fast for the tail to stay
// bounded.
const (
	overloadWorkers = 16 // 4x the 2-executing + 2-queued window below
	overloadBurst   = 32
)

// BenchOverloadLoad measures the alignment server past saturation: each
// iteration fires a 32-request burst from 16 client workers at a server
// with 2 execution slots and a 2-deep queue, timing every response —
// success or typed rejection. Reported metrics: p50_ns/p95_ns/p99_ns
// over all responses and the deterministic best-beam score of a served
// request (the resilience layer must not perturb results).
func BenchOverloadLoad(b *testing.B) {
	srv := serve.NewServer(serve.Config{
		MaxConcurrent: 2,
		QueueDepth:    2,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := serveLoadBody()
	client := ts.Client()
	url := ts.URL + "/v1/estimate"

	// Warm the pool and capture the fidelity metric outside the timed
	// region.
	first, err := postServeLoad(client, url, body)
	if err != nil {
		b.Fatal(err)
	}
	var resp struct {
		Picks struct {
			Best struct {
				Score float64 `json:"score"`
			} `json:"best"`
		} `json:"picks"`
	}
	if err := json.Unmarshal(first, &resp); err != nil {
		b.Fatal(err)
	}

	var (
		mu        sync.Mutex
		latencies []float64
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var (
			wg   sync.WaitGroup
			work = make(chan struct{}, overloadBurst)
			errs = make(chan error, overloadBurst)
		)
		for j := 0; j < overloadBurst; j++ {
			work <- struct{}{}
		}
		close(work)
		for w := 0; w < overloadWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range work {
					start := time.Now()
					if err := postOverload(client, url, body); err != nil {
						errs <- err
						return
					}
					elapsed := float64(time.Since(start).Nanoseconds())
					mu.Lock()
					latencies = append(latencies, elapsed)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(metrics.Percentile(latencies, 50), "p50_ns")
	b.ReportMetric(metrics.Percentile(latencies, 95), "p95_ns")
	b.ReportMetric(metrics.Percentile(latencies, 99), "p99_ns")
	b.ReportMetric(resp.Picks.Best.Score, "best_score")
}

// postOverload issues one request past saturation: a 200 and a typed
// backpressure 503 are both expected outcomes, anything else fails.
func postOverload(client *http.Client, url string, body []byte) error {
	res, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		return err
	}
	switch res.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusServiceUnavailable:
		if res.Header.Get("Retry-After") == "" {
			return fmt.Errorf("overload: 503 without Retry-After: %s", data)
		}
		return nil
	default:
		return fmt.Errorf("overload: status %d: %s", res.StatusCode, data)
	}
}
