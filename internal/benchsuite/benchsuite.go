// Package benchsuite defines the canonical benchmark workloads for the
// solver hot path and the figure regenerations, shared between the
// `go test -bench` entry points (bench_test.go) and the cmd/benchdiff
// regression tool. Each workload is a self-contained testing.B function
// that reports allocations and attaches its fidelity metrics (the
// figure benchmarks' loss_dB / rate_at_3dB, the estimator's final
// objective) via b.ReportMetric, so a single definition yields both
// human-readable benchmark output and machine-comparable baselines.
package benchsuite

import (
	"math"
	"testing"

	"mmwalign/internal/antenna"
	"mmwalign/internal/cmat"
	"mmwalign/internal/covest"
	"mmwalign/internal/experiment"
	"mmwalign/internal/rng"
	"mmwalign/internal/scenario"
)

// Workload is one named benchmark: Func drives a testing.B loop,
// reporting allocations and fidelity metrics.
type Workload struct {
	// Name keys the BENCH_<Name>.json baseline file.
	Name string
	// Desc is a one-line description for tool output.
	Desc string
	// Func runs the benchmark body (including fixture setup, excluded
	// from timing via b.ResetTimer).
	Func func(b *testing.B)
}

// All returns every registered workload, hot-path kernels first.
func All() []Workload {
	return []Workload{
		{
			Name: "estimate",
			Desc: "one nuclear-norm ML covariance estimation (64 antennas, 56 observations)",
			Func: BenchEstimate,
		},
		{
			Name: "eigen",
			Desc: "one 64x64 Hermitian Jacobi eigendecomposition",
			Func: BenchEigen,
		},
		{
			Name: "gemm",
			Desc: "one blocked 64x64 x 64x56 complex GEMM + column dots (the solver's Q·V λ-vector kernel)",
			Func: BenchGEMM,
		},
		{
			Name: "codebook",
			Desc: "one whole-codebook GEMM scoring pass (64 beams, 64 antennas) plus Top-8 ranking",
			Func: BenchCodebookScore,
		},
		{
			Name: "serve",
			Desc: "alignment-server load burst (16 requests, 8 clients, 4 slots) with p50/p95/p99 latency",
			Func: BenchServeLoad,
		},
		{
			Name: "overload",
			Desc: "alignment-server rejection path at 4x capacity (32 requests, 16 clients, 2 slots + 2 queued) with p50/p95/p99 latency",
			Func: BenchOverloadLoad,
		},
		{
			Name: "multicell",
			Desc: "Fig. 5 proposed-only regeneration through the cross-cell batched GEMM engine (8 workers)",
			Func: BenchMulticell,
		},
		{
			Name: "scenario",
			Desc: "mobility scenario sweep (2 speeds x 1 UE x 8 superframes, cold and warm proposed) with effective-throughput fidelity",
			Func: BenchScenario,
		},
		{
			Name: "fig5",
			Desc: "Fig. 5 regeneration (SNR loss vs search rate, single-path, reduced drops)",
			Func: figureFunc(5, "loss_dB"),
		},
		{
			Name: "fig6",
			Desc: "Fig. 6 regeneration (SNR loss vs search rate, NYC multipath, reduced drops)",
			Func: figureFunc(6, "loss_dB"),
		},
		{
			Name: "fig7",
			Desc: "Fig. 7 regeneration (required search rate vs target loss, single-path, reduced drops)",
			Func: figureFunc(7, "rate_at_3dB"),
		},
		{
			Name: "fig8",
			Desc: "Fig. 8 regeneration (required search rate vs target loss, NYC multipath, reduced drops)",
			Func: figureFunc(8, "rate_at_3dB"),
		},
	}
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// EstimateFixture builds the canonical estimator workload: a 64-antenna
// receiver sounding 56 codebook beams against a planted rank-one
// covariance, the per-TX-slot problem size of the proposed scheme.
func EstimateFixture() (*covest.Estimator, []covest.Observation) {
	src := rng.New(2)
	rx := antenna.NewUPA(8, 8)
	cb := antenna.NewGridCodebook(rx, 8, 8, math.Pi, math.Pi/2)
	truth := cb.Beam(20).Weights.Outer(cb.Beam(20).Weights).Scale(64).Hermitianize()
	obs := make([]covest.Observation, 0, 56)
	for j := 0; j < 56; j++ {
		v := cb.Beam(j).Weights
		lambda := truth.QuadForm(v) + 1
		z := src.ComplexNormal(lambda)
		obs = append(obs, covest.Observation{V: v, Energy: real(z)*real(z) + imag(z)*imag(z)})
	}
	est, err := covest.NewEstimator(64, covest.Options{Gamma: 1, MaxIters: 25})
	if err != nil {
		panic(err) // fixture construction is deterministic; cannot fail
	}
	return est, obs
}

// BenchEstimate measures one full regularized ML covariance estimation,
// the per-TX-slot cost of the proposed scheme. Reported metrics:
// objective (final penalized NLL), iters, and eig_decomps per call.
func BenchEstimate(b *testing.B) {
	est, obs := EstimateFixture()
	b.ReportAllocs()
	b.ResetTimer()
	var stats covest.Stats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = est.Estimate(obs, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Objective, "objective")
	b.ReportMetric(float64(stats.Iters), "iters")
	if stats.EigenDecomps > 0 {
		b.ReportMetric(float64(stats.EigenDecomps), "eig_decomps")
	}
}

// EigenFixture builds the canonical 64x64 Hermitian eigendecomposition
// input.
func EigenFixture() *cmat.Matrix {
	src := rng.New(1)
	m := cmat.New(64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			m.Set(i, j, src.ComplexNormal(1))
		}
	}
	return m.Hermitianize()
}

// BenchEigen measures the 64x64 Hermitian Jacobi eigendecomposition,
// the inner kernel of every covariance estimation. Reports the top
// eigenvalue as its fidelity metric.
func BenchEigen(b *testing.B) {
	h := EigenFixture()
	ws := cmat.NewEigenWorkspace(64)
	b.ReportAllocs()
	b.ResetTimer()
	var top float64
	for i := 0; i < b.N; i++ {
		e, err := ws.EigHermitian(h)
		if err != nil {
			b.Fatal(err)
		}
		top = e.Values[0]
	}
	b.ReportMetric(top, "top_eig")
}

// GEMMFixture builds the solver's λ-vector kernel input at the canonical
// problem size: a 64x64 Hermitian Q and the 64x56 packed observation
// matrix V.
func GEMMFixture() (q, v *cmat.Matrix) {
	src := rng.New(3)
	q = cmat.New(64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			q.Set(i, j, src.ComplexNormal(1))
		}
	}
	q.HermitianizeInPlace()
	v = cmat.New(64, 56)
	for i := 0; i < 64; i++ {
		for j := 0; j < 56; j++ {
			v.Set(i, j, src.ComplexNormal(1))
		}
	}
	return q, v
}

// BenchGEMM measures one Q·V product plus the column dots that turn it
// into the λ vector — the batched kernel executed once per objective or
// gradient evaluation inside the solver. Reports the checksum Σ_j λ_j
// as its fidelity metric.
func BenchGEMM(b *testing.B) {
	q, v := GEMMFixture()
	qv := cmat.New(64, 56)
	dots := make([]complex128, 56)
	b.ReportAllocs()
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		qv.MulInto(q, v)
		cmat.ColumnDotsInto(dots, v, qv)
		sum = 0
		for _, d := range dots {
			sum += real(d)
		}
	}
	b.ReportMetric(sum, "lambda_sum")
}

// CodebookFixture builds the whole-codebook scoring input: the paper's
// 64-beam RX codebook over an 8x8 UPA and a planted rank-one covariance
// estimate.
func CodebookFixture() (*antenna.Codebook, *cmat.Matrix) {
	rx := antenna.NewUPA(8, 8)
	cb := antenna.NewGridCodebook(rx, 8, 8, math.Pi, math.Pi/2)
	q := cb.Beam(20).Weights.Outer(cb.Beam(20).Weights).Scale(64).Hermitianize()
	return cb, q
}

// BenchCodebookScore measures one batched whole-codebook scoring pass
// followed by a Top-8 ranking — the per-slot beam-selection cost of the
// proposed strategy. Reports the best beam's score as its fidelity
// metric.
func BenchCodebookScore(b *testing.B) {
	cb, q := CodebookFixture()
	scores := make([]float64, cb.Size())
	topk := make([]int, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	var best float64
	for i := 0; i < b.N; i++ {
		cb.QuadFormScoresInto(q, scores)
		topk = cb.TopKQuadFormInto(q, 8, topk)
		best = scores[topk[0]]
	}
	b.ReportMetric(best, "best_score")
}

// MulticellConfig is the cross-cell batching workload: the Fig. 5
// regeneration restricted to the estimator-heavy proposed scheme, run
// on 8 concurrent drop workers with CrossCellBatch enabled so the batch
// scheduler actually coalesces same-shape solver GEMMs across cells.
// Batching is bitwise-neutral, so the loss_dB fidelity metric must
// equal the unbatched figure's.
func MulticellConfig() experiment.Config {
	cfg := FigureConfig(5)
	cfg.Schemes = []string{"proposed"}
	cfg.Workers = 8
	cfg.CrossCellBatch = true
	return cfg
}

// BenchMulticell measures the proposed-only Fig. 5 regeneration through
// the cross-cell batched GEMM engine. Reports the proposed scheme's
// final loss_dB as its fidelity metric.
func BenchMulticell(b *testing.B) {
	b.ReportAllocs()
	var m float64
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Generate(5, MulticellConfig())
		if err != nil {
			b.Fatal(err)
		}
		var ok bool
		m, ok = FigureMetric(fig)
		if !ok {
			b.Fatal(errNoProposedSeries)
		}
	}
	b.ReportMetric(m, "loss_dB")
}

// ScenarioConfig is the reduced mobility workload: one UE per speed at
// 5 and 20 m/s over 8 superframes, running the cold and warm proposed
// schemes — the trajectory engine's hot path (periodic re-alignment,
// oracle scoring, channel evolution) at benchmark size.
func ScenarioConfig() scenario.Config {
	return scenario.Config{
		Seed:      1,
		UEs:       1,
		Frames:    8,
		SpeedsMPS: []float64{5, 20},
		Schemes:   []string{"proposed", "proposed-warm"},
		Workers:   2,
	}
}

// BenchScenario measures the mobility sweep. The sweep is
// deterministic, so the delivered/genie efficiencies of the cold and
// warm proposed schemes at the top speed are exact fidelity metrics.
func BenchScenario(b *testing.B) {
	b.ReportAllocs()
	var res scenario.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = scenario.Run(ScenarioConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	names := map[string]string{"proposed": "eff_cold", "proposed-warm": "eff_warm"}
	for _, s := range res.Speed.Series {
		if metric, ok := names[s.Name]; ok && len(s.Y) > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1], metric)
		}
	}
}

// FigureConfig is the reduced-size figure configuration used by the
// figure benchmarks: the paper's arrays and codebooks with fewer drops.
func FigureConfig(figure int) experiment.Config {
	return experiment.Config{
		Seed:      1,
		Drops:     4,
		Multipath: figure == 6 || figure == 8,
	}
}

// FigureMetric extracts the proposed scheme's value at the last sweep
// point of a figure — the fidelity number guarded by benchdiff and the
// smoke test.
func FigureMetric(fig experiment.Figure) (float64, bool) {
	for _, s := range fig.Series {
		if s.Name == "proposed" && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1], true
		}
	}
	return 0, false
}

// RunFigure regenerates the given paper figure on the reduced benchmark
// configuration and returns its fidelity metric.
func RunFigure(figure int) (float64, error) {
	fig, err := experiment.Generate(figure, FigureConfig(figure))
	if err != nil {
		return 0, err
	}
	m, ok := FigureMetric(fig)
	if !ok {
		return 0, errNoProposedSeries
	}
	return m, nil
}

type figureError string

func (e figureError) Error() string { return string(e) }

const errNoProposedSeries = figureError("benchsuite: figure has no proposed series")

func figureFunc(figure int, metric string) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var m float64
		for i := 0; i < b.N; i++ {
			var err error
			m, err = RunFigure(figure)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(m, metric)
	}
}
