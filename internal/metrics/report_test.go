package metrics

import (
	"math"
	"strings"
	"testing"
)

func sampleSeries() []Series {
	return []Series{
		{Name: "proposed", X: []float64{0.1, 0.2}, Y: []float64{2.5, 1.0}},
		{Name: "random", X: []float64{0.1, 0.2}, Y: []float64{3.5, 2.0}},
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, "rate", sampleSeries()); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), got)
	}
	if lines[0] != "rate,proposed,random" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.1,2.5,3.5" {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestWriteCSVMissingCells(t *testing.T) {
	series := []Series{
		{Name: "a", X: []float64{1}, Y: []float64{10}},
		{Name: "b", X: []float64{2}, Y: []float64{20}},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, "x", series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[1] != "1,10," || lines[2] != "2,,20" {
		t.Errorf("rows = %q", lines[1:])
	}
}

func TestWriteCSVSpecialValues(t *testing.T) {
	series := []Series{{Name: "a", X: []float64{1}, Y: []float64{math.Inf(1)}}}
	var sb strings.Builder
	if err := WriteCSV(&sb, "x", series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "inf") {
		t.Errorf("output %q missing inf", sb.String())
	}
}

func TestWriteCSVRejectsInvalidSeries(t *testing.T) {
	bad := []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}
	var sb strings.Builder
	if err := WriteCSV(&sb, "x", bad); err == nil {
		t.Error("invalid series accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	series := sampleSeries()
	series[0].YErr = []float64{0.1, math.Inf(1)}
	if err := WriteJSON(&sb, "rate", series); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"xLabel": "rate"`, `"proposed"`, `"random"`, `"inf"`, "2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	bad := []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}
	var sb strings.Builder
	if err := WriteJSON(&sb, "x", bad); err == nil {
		t.Error("invalid series accepted")
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	series := sampleSeries()
	series[0].YErr = []float64{0.1, 0.1}
	if err := WriteTable(&sb, "rate", series); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rate", "proposed", "random", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPlotASCII(t *testing.T) {
	var sb strings.Builder
	if err := PlotASCII(&sb, "Fig 5", sampleSeries(), 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig 5") || !strings.Contains(out, "*=proposed") {
		t.Errorf("plot output missing pieces:\n%s", out)
	}
	// Must contain at least one marker of each series.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("plot missing markers:\n%s", out)
	}
}

func TestPlotASCIIEmptyData(t *testing.T) {
	var sb strings.Builder
	err := PlotASCII(&sb, "empty", []Series{{Name: "a", X: []float64{math.NaN()}, Y: []float64{1}}}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no finite data") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestPlotASCIIConstantSeries(t *testing.T) {
	var sb strings.Builder
	series := []Series{{Name: "const", X: []float64{1, 2}, Y: []float64{5, 5}}}
	if err := PlotASCII(&sb, "const", series, 20, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("constant series not plotted")
	}
}

func TestDedupSorted(t *testing.T) {
	got := dedupSorted([]float64{3, 1, 2, 1, 3, 3})
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if dedupSorted(nil) != nil {
		t.Error("dedup of nil should be nil")
	}
}
