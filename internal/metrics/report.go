package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// jsonSeries is the wire form of a Series; non-finite values are
// emitted as strings ("inf", "-inf", "nan") since JSON has no literals
// for them.
type jsonSeries struct {
	Name string `json:"name"`
	X    []any  `json:"x"`
	Y    []any  `json:"y"`
	YErr []any  `json:"yerr,omitempty"`
}

type jsonFigure struct {
	XLabel string       `json:"xLabel"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON emits the series as a single JSON document for downstream
// tooling. Validates every series first.
func WriteJSON(w io.Writer, xLabel string, series []Series) error {
	doc := jsonFigure{XLabel: xLabel}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		js := jsonSeries{Name: s.Name}
		for _, v := range s.X {
			js.X = append(js.X, jsonNumber(v))
		}
		for _, v := range s.Y {
			js.Y = append(js.Y, jsonNumber(v))
		}
		for _, v := range s.YErr {
			js.YErr = append(js.YErr, jsonNumber(v))
		}
		doc.Series = append(doc.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func jsonNumber(v float64) any {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	default:
		return v
	}
}

// WriteCSV emits the series as a wide CSV: the first column is X, one Y
// column per series. Series are sampled at the union of X values; a
// series without a point at some X emits an empty cell. Returns any
// write error.
func WriteCSV(w io.Writer, xLabel string, series []Series) error {
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	// Union of X values, in ascending order, deduplicated with tolerance.
	var xs []float64
	for _, s := range series {
		xs = append(xs, s.X...)
	}
	xs = dedupSorted(xs)

	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{formatFloat(x)}
		for _, s := range series {
			cell := ""
			for i, xv := range s.X {
				if math.Abs(xv-x) < 1e-12 {
					cell = formatFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func dedupSorted(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, x := range sorted[1:] {
		if math.Abs(x-out[len(out)-1]) > 1e-12 {
			out = append(out, x)
		}
	}
	return out
}

func formatFloat(x float64) string {
	if math.IsInf(x, 1) {
		return "inf"
	}
	if math.IsInf(x, -1) {
		return "-inf"
	}
	if math.IsNaN(x) {
		return "nan"
	}
	return fmt.Sprintf("%.6g", x)
}

// WriteTable renders the series as an aligned ASCII table with the same
// layout as WriteCSV.
func WriteTable(w io.Writer, xLabel string, series []Series) error {
	var sb strings.Builder
	cols := []string{xLabel}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	var xs []float64
	for _, s := range series {
		xs = append(xs, s.X...)
	}
	xs = dedupSorted(xs)

	rows := [][]string{cols}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%.4g", x)}
		for _, s := range series {
			cell := "-"
			for i, xv := range s.X {
				if math.Abs(xv-x) < 1e-12 {
					cell = fmt.Sprintf("%.4g", s.Y[i])
					if s.YErr != nil {
						cell += fmt.Sprintf("±%.2g", s.YErr[i])
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], cell)
		}
		sb.WriteString("\n")
		if ri == 0 {
			for _, wd := range widths {
				sb.WriteString(strings.Repeat("-", wd) + "  ")
			}
			sb.WriteString("\n")
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// PlotASCII renders the series as a simple terminal line plot of the
// given width and height in characters. Each series is drawn with its
// own marker; axes are annotated with min/max. Non-finite points are
// skipped.
func PlotASCII(w io.Writer, title string, series []Series, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			xMin, xMax = math.Min(xMin, s.X[i]), math.Max(xMax, s.X[i])
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
		}
	}
	if !finite(xMin) || !finite(yMin) {
		_, err := fmt.Fprintf(w, "%s: no finite data\n", title)
		return err
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			c := int((s.X[i] - xMin) / (xMax - xMin) * float64(width-1))
			r := height - 1 - int((s.Y[i]-yMin)/(yMax-yMin)*float64(height-1))
			grid[r][c] = mk
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&sb, "  [%s]\n", strings.Join(legend, " "))
	fmt.Fprintf(&sb, "  y: %.4g..%.4g\n", yMin, yMax)
	for _, row := range grid {
		fmt.Fprintf(&sb, "  |%s|\n", string(row))
	}
	fmt.Fprintf(&sb, "  x: %.4g..%.4g\n", xMin, xMax)
	_, err := io.WriteString(w, sb.String())
	return err
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
