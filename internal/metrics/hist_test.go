package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 3.5, 9.9} {
		if !h.Add(x) {
			t.Fatalf("Add(%g) rejected", x)
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if c, lo, hi := h.Bin(0); c != 2 || lo != 0 || hi != 2 {
		t.Errorf("bin 0 = (%d, %g, %g)", c, lo, hi)
	}
	if c, _, _ := h.Bin(1); c != 2 {
		t.Errorf("bin 1 count = %d", c)
	}
	if c, _, _ := h.Bin(4); c != 1 {
		t.Errorf("bin 4 count = %d", c)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-5)
	h.Add(99)
	if c, _, _ := h.Bin(0); c != 1 {
		t.Errorf("low clamp count = %d", c)
	}
	if c, _, _ := h.Bin(1); c != 1 {
		t.Errorf("high clamp count = %d", c)
	}
}

func TestHistogramBoundaryValues(t *testing.T) {
	// x == hi lands exactly on len(counts) before clamping; it must count
	// in the last bin, not panic or vanish. x == lo belongs to bin 0, and
	// a value just below lo clamps into bin 0.
	h := NewHistogram(-2, 2, 4)
	h.Add(2)  // exactly hi
	h.Add(-2) // exactly lo
	h.Add(math.Nextafter(-2, -3))
	if c, _, _ := h.Bin(3); c != 1 {
		t.Errorf("count at x=hi bin = %d, want 1", c)
	}
	if c, _, _ := h.Bin(0); c != 2 {
		t.Errorf("count at x=lo bin = %d, want 2", c)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
}

func TestHistogramRejectsNonFinite(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if h.Add(math.NaN()) || h.Add(math.Inf(1)) {
		t.Error("non-finite values accepted")
	}
	if h.Total() != 0 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramWriteASCII(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1.5)
	h.Add(3)
	var sb strings.Builder
	if err := h.WriteASCII(&sb, "test", 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test (n=3)") || !strings.Contains(out, "#") {
		t.Errorf("output:\n%s", out)
	}
}

func TestECDF(t *testing.T) {
	s := ECDF("snr", []float64{3, 1, 2, math.NaN()})
	if len(s.X) != 3 {
		t.Fatalf("len = %d", len(s.X))
	}
	if s.X[0] != 1 || s.X[2] != 3 {
		t.Errorf("X = %v", s.X)
	}
	if math.Abs(s.Y[0]-1.0/3) > 1e-12 || s.Y[2] != 1 {
		t.Errorf("Y = %v", s.Y)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] < s.Y[i-1] {
			t.Fatal("ECDF not monotone")
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	s := ECDF("empty", nil)
	if len(s.X) != 0 || len(s.Y) != 0 {
		t.Errorf("non-empty ECDF from empty input: %+v", s)
	}
}
