package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval; values
// outside the interval are clamped into the edge bins so no observation
// is silently dropped.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
}

// NewHistogram creates a histogram with n bins spanning [lo, hi].
// Panics if n < 1 or hi ≤ lo (programmer errors).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic(fmt.Sprintf("metrics: histogram needs ≥1 bin, got %d", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("metrics: histogram range [%g, %g] is empty", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, n)}
}

// Add folds a value into the histogram. Non-finite values are ignored
// and the method reports whether the value was counted.
func (h *Histogram) Add(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	return true
}

// Total returns the number of counted observations.
func (h *Histogram) Total() int { return h.total }

// Bin returns the count of bin i and its [lo, hi) range.
func (h *Histogram) Bin(i int) (count int, lo, hi float64) {
	width := (h.hi - h.lo) / float64(len(h.counts))
	return h.counts[i], h.lo + float64(i)*width, h.lo + float64(i+1)*width
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// WriteASCII renders the histogram as horizontal bars.
func (h *Histogram) WriteASCII(w io.Writer, title string, width int) error {
	if width < 10 {
		width = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d)\n", title, h.total)
	max := 0
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	for i := range h.counts {
		c, lo, hi := h.Bin(i)
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&sb, "  [%8.2f, %8.2f) %-*s %d\n", lo, hi, width, strings.Repeat("#", bar), c)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ECDF returns the empirical cumulative distribution of xs as a Series:
// X is the sorted sample, Y the cumulative fraction ≤ X. Non-finite
// samples are dropped. Returns an empty series for empty input.
func ECDF(name string, xs []float64) Series {
	var clean []float64
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			clean = append(clean, x)
		}
	}
	sort.Float64s(clean)
	s := Series{Name: name}
	n := float64(len(clean))
	for i, x := range clean {
		s.X = append(s.X, x)
		s.Y = append(s.Y, float64(i+1)/n)
	}
	return s
}
