package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 {
		t.Error("zero-value accumulator not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", a.Mean())
	}
	// Population variance of that classic dataset is 4; sample variance
	// is 32/7.
	if want := 32.0 / 7; math.Abs(a.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %g, want %g", a.Variance(), want)
	}
	if a.CI95() <= 0 {
		t.Error("CI95 should be positive for n>1")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
			a.Add(x)
		}
		if len(clean) == 0 {
			return a.N() == 0
		}
		return math.Abs(a.Mean()-Mean(clean)) <= 1e-6*(1+math.Abs(a.Mean()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddFinite(t *testing.T) {
	var a Accumulator
	if a.AddFinite(math.NaN()) || a.AddFinite(math.Inf(1)) {
		t.Error("AddFinite accepted non-finite values")
	}
	if !a.AddFinite(3) {
		t.Error("AddFinite rejected a finite value")
	}
	if a.N() != 1 {
		t.Errorf("N = %d, want 1", a.N())
	}
}

func TestTQuantile975(t *testing.T) {
	tests := []struct {
		df   int
		want float64
		tol  float64
	}{
		{1, 12.706205, 1e-6},  // n=2
		{4, 2.776445, 1e-6},   // n=5
		{19, 2.093024, 1e-6},  // n=20, the figure default
		{30, 2.042272, 1e-6},  // last table entry
		{31, 2.039513, 1e-4},  // first Cornish–Fisher value
		{120, 1.979930, 1e-4}, // classic table row
		{1 << 20, z975, 1e-4}, // t → z as df → ∞
	}
	for _, tt := range tests {
		if got := TQuantile975(tt.df); math.Abs(got-tt.want) > tt.tol {
			t.Errorf("TQuantile975(%d) = %g, want %g ± %g", tt.df, got, tt.want, tt.tol)
		}
	}
	if got := TQuantile975(0); got != TQuantile975(1) {
		t.Errorf("TQuantile975(0) = %g, want the df=1 value", got)
	}
	// The table→expansion seam must not jump: t is strictly decreasing
	// in df.
	for df := 2; df <= 60; df++ {
		if TQuantile975(df) >= TQuantile975(df-1) {
			t.Errorf("TQuantile975 not decreasing at df=%d", df)
		}
	}
}

func TestCI95UsesStudentT(t *testing.T) {
	// n samples with stddev s → half-width t₀.₉₇₅(n−1)·s/√n.
	build := func(n int) *Accumulator {
		var a Accumulator
		for i := 0; i < n; i++ {
			a.Add(float64(i % 2)) // alternating 0,1 keeps stddev nonzero
		}
		return &a
	}
	for _, n := range []int{2, 5, 20, 2000} {
		a := build(n)
		want := TQuantile975(n-1) * a.StdDev() / math.Sqrt(float64(n))
		if got := a.CI95(); math.Abs(got-want) > 1e-12 {
			t.Errorf("CI95 at n=%d = %g, want %g", n, got, want)
		}
	}
	// n=20 must use t₀.₉₇₅,₁₉ ≈ 2.093, not the normal 1.96 the old
	// implementation hardcoded.
	a := build(20)
	normal := 1.96 * a.StdDev() / math.Sqrt(20)
	if got := a.CI95(); got <= normal {
		t.Errorf("CI95 at n=20 = %g, not wider than normal approximation %g", got, normal)
	}
	// At large n the t interval converges to the normal one.
	big := build(2000)
	zHW := z975 * big.StdDev() / math.Sqrt(2000)
	if got := big.CI95(); math.Abs(got-zHW) > 1e-3*zHW {
		t.Errorf("CI95 at n=2000 = %g, want ≈ %g", got, zHW)
	}
	var one Accumulator
	one.Add(1)
	if one.CI95() != 0 {
		t.Errorf("CI95 with one sample = %g, want 0", one.CI95())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{100, 9},
		{50, 3.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty input should be NaN")
	}
	if got := Median([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Median = %g", got)
	}
	// A singleton sample is every percentile of itself.
	for _, p := range []float64{0, 25, 50, 99, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Errorf("Percentile(singleton, %g) = %g, want 7", p, got)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestStdDevKnown(t *testing.T) {
	if got := StdDev([]float64{1, 1, 1}); got != 0 {
		t.Errorf("StdDev of constants = %g", got)
	}
	if got := StdDev([]float64{0, 2}); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("StdDev = %g, want √2", got)
	}
}

func TestSeriesValidate(t *testing.T) {
	ok := Series{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
	bad := Series{Name: "b", X: []float64{1}, Y: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched series accepted")
	}
	badErr := Series{Name: "c", X: []float64{1}, Y: []float64{1}, YErr: []float64{1, 2}}
	if err := badErr.Validate(); err == nil {
		t.Error("mismatched error bars accepted")
	}
}

func TestSeriesAt(t *testing.T) {
	s := Series{X: []float64{0, 1, 2}, Y: []float64{10, 20, 30}}
	if got := s.At(0.9); got != 20 {
		t.Errorf("At(0.9) = %g, want 20", got)
	}
	if got := s.At(-5); got != 10 {
		t.Errorf("At(-5) = %g, want 10", got)
	}
	if !math.IsNaN((Series{}).At(1)) {
		t.Error("At on empty series should be NaN")
	}
}
