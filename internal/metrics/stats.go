// Package metrics provides the statistics and reporting layer of the
// benchmark harness: streaming mean/variance accumulators, percentiles,
// confidence intervals, labeled XY series, CSV emission and quick ASCII
// tables/plots for terminal inspection of regenerated paper figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance (Welford's method).
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a value into the accumulator. NaN and ±Inf are counted but
// poison the moments, mirroring float semantics; callers filter first if
// they need robustness (see AddFinite).
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddFinite folds x only if it is finite, returning whether it was added.
func (a *Accumulator) AddFinite(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	a.Add(x)
	return true
}

// N returns the number of accumulated values.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the
// mean (0 for n < 2), using the Student-t quantile with n−1 degrees of
// freedom. At the figure defaults (20 drops) the normal approximation
// z≈1.96 understates the half-width by ~7% (t₀.₉₇₅,₁₉ ≈ 2.093); the
// error bars on regenerated figures were systematically too tight.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return TQuantile975(a.n-1) * a.StdDev() / math.Sqrt(float64(a.n))
}

// z975 is the 0.975 quantile of the standard normal distribution.
const z975 = 1.959963984540054

// tTable975 holds the 0.975 Student-t quantiles for 1–30 degrees of
// freedom; tTable975[df-1] is t₀.₉₇₅ with df degrees of freedom.
var tTable975 = [30]float64{
	12.706205, 4.302653, 3.182446, 2.776445, 2.570582,
	2.446912, 2.364624, 2.306004, 2.262157, 2.228139,
	2.200985, 2.178813, 2.160369, 2.144787, 2.131450,
	2.119905, 2.109816, 2.100922, 2.093024, 2.085963,
	2.079614, 2.073873, 2.068658, 2.063899, 2.059539,
	2.055529, 2.051831, 2.048407, 2.045230, 2.042272,
}

// TQuantile975 returns the 0.975 quantile of the Student-t distribution
// with df degrees of freedom — the critical value of a two-sided 95%
// confidence interval. Exact table values cover df ≤ 30; larger df use
// the Cornish–Fisher expansion about the normal quantile, accurate to
// <1e-4 there. df < 1 returns the df=1 value (the widest interval)
// rather than extrapolating below a defined distribution.
func TQuantile975(df int) float64 {
	if df < 1 {
		df = 1
	}
	if df <= len(tTable975) {
		return tTable975[df-1]
	}
	// Cornish–Fisher expansion of the t quantile in powers of 1/df.
	z := z975
	v := float64(df)
	z2 := z * z
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	return z + g1/v + g2/(v*v) + g3/(v*v*v)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean()
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.StdDev()
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. Returns NaN for empty
// input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Series is a labeled XY curve, one per scheme per figure.
type Series struct {
	// Name labels the curve (scheme name).
	Name string
	// X and Y are the curve samples; lengths must match.
	X, Y []float64
	// YErr, when non-nil, holds a per-point error bar (95% CI).
	YErr []float64
}

// Validate checks internal consistency.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("metrics: series %q has %d X but %d Y points", s.Name, len(s.X), len(s.Y))
	}
	if s.YErr != nil && len(s.YErr) != len(s.Y) {
		return fmt.Errorf("metrics: series %q has %d error bars for %d points", s.Name, len(s.YErr), len(s.Y))
	}
	return nil
}

// At returns the Y value at the X closest to x (NaN for empty series).
func (s Series) At(x float64) float64 {
	if len(s.X) == 0 {
		return math.NaN()
	}
	best, bestD := 0, math.Inf(1)
	for i, xv := range s.X {
		if d := math.Abs(xv - x); d < bestD {
			best, bestD = i, d
		}
	}
	return s.Y[best]
}
