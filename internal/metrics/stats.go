// Package metrics provides the statistics and reporting layer of the
// benchmark harness: streaming mean/variance accumulators, percentiles,
// confidence intervals, labeled XY series, CSV emission and quick ASCII
// tables/plots for terminal inspection of regenerated paper figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance (Welford's method).
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a value into the accumulator. NaN and ±Inf are counted but
// poison the moments, mirroring float semantics; callers filter first if
// they need robustness (see AddFinite).
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddFinite folds x only if it is finite, returning whether it was added.
func (a *Accumulator) AddFinite(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	a.Add(x)
	return true
}

// N returns the number of accumulated values.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (0 for n < 2).
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean()
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.StdDev()
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. Returns NaN for empty
// input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Series is a labeled XY curve, one per scheme per figure.
type Series struct {
	// Name labels the curve (scheme name).
	Name string
	// X and Y are the curve samples; lengths must match.
	X, Y []float64
	// YErr, when non-nil, holds a per-point error bar (95% CI).
	YErr []float64
}

// Validate checks internal consistency.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("metrics: series %q has %d X but %d Y points", s.Name, len(s.X), len(s.Y))
	}
	if s.YErr != nil && len(s.YErr) != len(s.Y) {
		return fmt.Errorf("metrics: series %q has %d error bars for %d points", s.Name, len(s.YErr), len(s.Y))
	}
	return nil
}

// At returns the Y value at the X closest to x (NaN for empty series).
func (s Series) At(x float64) float64 {
	if len(s.X) == 0 {
		return math.NaN()
	}
	best, bestD := 0, math.Inf(1)
	for i, xv := range s.X {
		if d := math.Abs(xv - x); d < bestD {
			best, bestD = i, d
		}
	}
	return s.Y[best]
}
