// Package rng provides the deterministic random variates used throughout
// the beam-alignment simulator: complex circular Gaussians, chi-squared,
// Poisson, exponential, Laplace and lognormal draws, plus splittable
// named sub-streams so that independent parts of an experiment (channel
// generation, fading, measurement noise, strategy randomness) consume
// independent randomness and results stay reproducible when one consumer
// changes how much randomness it draws.
package rng

import (
	"hash/fnv"
	"math"
	"math/cmplx"
	"math/rand"
)

// Source is a deterministic random stream. The zero value is not usable;
// construct with New or Split.
type Source struct {
	r    *rand.Rand
	seed int64
}

// New returns a stream seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Split derives an independent child stream identified by name.
//
// The split is a PURE function of (parent seed, name): it neither
// consumes parent randomness nor depends on how often or in what order
// other splits were taken. This has two load-bearing consequences:
// repeated Split calls with the same name return identical streams
// (which is how every scheme in an experiment drop sees the same
// channel realization), and splits may be taken concurrently from
// multiple goroutines without synchronization or nondeterminism.
func (s *Source) Split(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(mix(s.seed, h.Sum64()))
}

// SplitIndexed derives an independent child stream for the i-th element
// of a family (e.g. one stream per simulation drop). Pure in the same
// sense as Split.
func (s *Source) SplitIndexed(name string, i int) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	_, _ = h.Write([]byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)})
	return New(mix(s.seed, h.Sum64()))
}

// mix combines a parent seed with a name hash through a splitmix64
// finalizer so child seeds are well spread even for adjacent inputs.
func mix(seed int64, h uint64) int64 {
	z := uint64(seed) ^ h
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0, n). Panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Normal returns a standard normal draw.
func (s *Source) Normal() float64 { return s.r.NormFloat64() }

// NormalScaled returns a N(mu, sigma²) draw.
func (s *Source) NormalScaled(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// ComplexNormal returns a circularly-symmetric complex Gaussian draw with
// E|z|² = variance (i.e. CN(0, variance)).
func (s *Source) ComplexNormal(variance float64) complex128 {
	sd := math.Sqrt(variance / 2)
	return complex(sd*s.r.NormFloat64(), sd*s.r.NormFloat64())
}

// ComplexNormalVec fills a length-n vector with iid CN(0, variance)
// entries.
func (s *Source) ComplexNormalVec(n int, variance float64) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = s.ComplexNormal(variance)
	}
	return v
}

// UnitPhase returns e^{iθ} with θ uniform on [0, 2π).
func (s *Source) UnitPhase() complex128 {
	return cmplx.Exp(complex(0, 2*math.Pi*s.r.Float64()))
}

// ChiSquared returns a chi-squared draw with k degrees of freedom
// (sum of k squared standard normals). Panics if k <= 0.
func (s *Source) ChiSquared(k int) float64 {
	if k <= 0 {
		panic("rng: chi-squared needs k > 0")
	}
	var sum float64
	for i := 0; i < k; i++ {
		x := s.r.NormFloat64()
		sum += x * x
	}
	return sum
}

// Exponential returns an Exp(rate) draw with mean 1/rate. Panics if
// rate <= 0.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: exponential needs rate > 0")
	}
	return s.r.ExpFloat64() / rate
}

// Poisson returns a Poisson(lambda) draw. Uses Knuth's product method,
// which is exact and fast for the small rates used by the cluster-count
// model. Panics if lambda < 0.
func (s *Source) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("rng: poisson needs lambda >= 0")
	}
	if lambda == 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation for large rates; adequate for simulation
		// parameters far outside the paper's regime.
		v := s.NormalScaled(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Laplace returns a Laplace(0, b) draw (variance 2b²). Used for subpath
// angular offsets around a cluster center, per the 3GPP/NYC cluster
// models. Panics if b <= 0.
func (s *Source) Laplace(b float64) float64 {
	if b <= 0 {
		panic("rng: laplace needs b > 0")
	}
	u := s.r.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// Lognormal returns exp(N(mu, sigma²)).
func (s *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(s.NormalScaled(mu, sigma))
}

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	return s.r.Float64() < p
}
