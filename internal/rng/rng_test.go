package rng

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	mk := func() (*Source, *Source) {
		p := New(7)
		return p.Split("channel"), p.Split("noise")
	}
	c1, n1 := mk()
	c2, n2 := mk()
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() || n1.Float64() != n2.Float64() {
			t.Fatal("split streams are not reproducible")
		}
	}
	// Streams with different names must differ.
	p := New(7)
	x, y := p.Split("a"), p.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if x.Float64() == y.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("sibling splits produced %d/100 identical draws", same)
	}
}

func TestSplitIsPure(t *testing.T) {
	// Same (seed, name) must give the same stream regardless of parent
	// consumption or sibling splits taken in between.
	p1 := New(9)
	a := p1.Split("channel")

	p2 := New(9)
	p2.Float64() // consume parent entropy
	_ = p2.Split("something-else")
	b := p2.Split("channel")

	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split is not a pure function of (seed, name)")
		}
	}
}

func TestSplitRepeatableWithinParent(t *testing.T) {
	p := New(10)
	a, b := p.Split("x"), p.Split("x")
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("two Split calls with the same name diverged")
		}
	}
}

func TestSplitIndexedDistinct(t *testing.T) {
	p := New(3)
	a := p.SplitIndexed("drop", 0)
	p2 := New(3)
	b := p2.SplitIndexed("drop", 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("indexed splits produced %d/100 identical draws", same)
	}
}

func TestComplexNormalMoments(t *testing.T) {
	s := New(11)
	const n = 200000
	variance := 3.0
	var sum complex128
	var pow float64
	for i := 0; i < n; i++ {
		z := s.ComplexNormal(variance)
		sum += z
		pow += real(z)*real(z) + imag(z)*imag(z)
	}
	mean := cmplx.Abs(sum) / n
	if mean > 0.02 {
		t.Errorf("mean modulus = %g, want ~0", mean)
	}
	if got := pow / n; math.Abs(got-variance) > 0.05 {
		t.Errorf("E|z|² = %g, want %g", got, variance)
	}
}

func TestComplexNormalVec(t *testing.T) {
	s := New(12)
	v := s.ComplexNormalVec(16, 1)
	if len(v) != 16 {
		t.Fatalf("len = %d", len(v))
	}
	allZero := true
	for _, z := range v {
		if z != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("vector is all zeros")
	}
}

func TestUnitPhaseOnCircle(t *testing.T) {
	s := New(13)
	for i := 0; i < 100; i++ {
		z := s.UnitPhase()
		if math.Abs(cmplx.Abs(z)-1) > 1e-12 {
			t.Fatalf("|z| = %g, want 1", cmplx.Abs(z))
		}
	}
}

func TestChiSquaredMoments(t *testing.T) {
	s := New(14)
	const n = 100000
	k := 2
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.ChiSquared(k)
		if x < 0 {
			t.Fatal("negative chi-squared draw")
		}
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-float64(k)) > 0.05 {
		t.Errorf("mean = %g, want %d", mean, k)
	}
	if math.Abs(variance-2*float64(k)) > 0.2 {
		t.Errorf("var = %g, want %d", variance, 2*k)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(15)
	const n = 100000
	rate := 2.5
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(rate)
	}
	if got, want := sum/n, 1/rate; math.Abs(got-want) > 0.01 {
		t.Errorf("mean = %g, want %g", got, want)
	}
}

func TestPoissonMoments(t *testing.T) {
	s := New(16)
	const n = 100000
	lambda := 1.8 // the NYC cluster-count rate
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		k := s.Poisson(lambda)
		if k < 0 {
			t.Fatal("negative poisson draw")
		}
		f := float64(k)
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-lambda) > 0.03 {
		t.Errorf("mean = %g, want %g", mean, lambda)
	}
	if math.Abs(variance-lambda) > 0.06 {
		t.Errorf("var = %g, want %g", variance, lambda)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	s := New(17)
	if got := s.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	// Large-rate branch: mean should be near lambda.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(s.Poisson(100))
	}
	if got := sum / n; math.Abs(got-100) > 1 {
		t.Errorf("Poisson(100) mean = %g", got)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(18)
	const n = 200000
	b := 1.5
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.Laplace(b)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %g, want 0", mean)
	}
	if want := 2 * b * b; math.Abs(variance-want) > 0.1 {
		t.Errorf("var = %g, want %g", variance, want)
	}
}

func TestLognormalMedian(t *testing.T) {
	s := New(19)
	const n = 100001
	mu := 0.7
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = s.Lognormal(mu, 0.5)
	}
	// Median of lognormal is e^mu; use a quickselect-free approach: count
	// how many draws fall below e^mu — should be about half.
	below := 0
	for _, d := range draws {
		if d < math.Exp(mu) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below median = %g, want 0.5", frac)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(20)
	lo, hi := -3.0, 5.0
	for i := 0; i < 1000; i++ {
		x := s.Uniform(lo, hi)
		if x < lo || x >= hi {
			t.Fatalf("draw %g outside [%g, %g)", x, lo, hi)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(21)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestPanicsOnInvalidParameters(t *testing.T) {
	s := New(22)
	cases := []struct {
		name string
		fn   func()
	}{
		{"chi-squared k=0", func() { s.ChiSquared(0) }},
		{"exponential rate=0", func() { s.Exponential(0) }},
		{"poisson negative", func() { s.Poisson(-1) }},
		{"laplace b=0", func() { s.Laplace(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
