package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen throws arbitrary bytes at the journal reader. The contract
// under test: Open and Inspect never panic, and every rejection is one
// of the typed errors (or a plain I/O wrap) — arbitrary corruption must
// not be silently accepted as a valid non-empty journal.
func FuzzOpen(f *testing.F) {
	// Seed with a valid journal, then mutated variants the fuzzer can
	// splice from.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.journal")
	j, err := Create(seedPath, testHeader())
	if err != nil {
		f.Fatal(err)
	}
	j.Record(0, "random", json.RawMessage(`{"opt_snr_bits":4602678819172646912}`))
	j.Record(1, "proposed", json.RawMessage(`{"opt_snr_bits":0}`))
	j.Close()
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("deadbeef not-json\n"))
	f.Add([]byte("00000000 {\"kind\":\"header\"}\n"))
	f.Add(append(append([]byte(nil), valid...), "0badc0de {\"kind\":\"cell\""...))
	f.Add([]byte("zzzzzzzz {}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}

		// Inspect must never panic and never modify the file.
		if _, _, _, err := Inspect(path); err != nil {
			var me *MismatchError
			var ce *ChecksumError
			var cr *CorruptError
			if !errors.As(err, &me) && !errors.As(err, &ce) && !errors.As(err, &cr) {
				t.Fatalf("Inspect returned untyped error %T: %v", err, err)
			}
		}

		jnl, err := Open(path, testHeader())
		if err != nil {
			var me *MismatchError
			var ce *ChecksumError
			var cr *CorruptError
			if !errors.As(err, &me) && !errors.As(err, &ce) && !errors.As(err, &cr) {
				t.Fatalf("Open returned untyped error %T: %v", err, err)
			}
			return
		}
		// Whatever survived the reader must still be a journal we can
		// append to and re-open: the truncate-and-continue path has to
		// leave a clean line boundary behind.
		if err := jnl.Record(99, "fuzz", json.RawMessage(`{}`)); err != nil {
			t.Fatalf("Record after fuzzed Open: %v", err)
		}
		jnl.Close()
		re, err := Open(path, testHeader())
		if err != nil {
			t.Fatalf("reopen after fuzzed truncate-and-append: %v", err)
		}
		if _, ok := re.Lookup(99, "fuzz"); !ok {
			t.Fatal("appended record lost after reopen")
		}
		re.Close()
	})
}
