// Package journal is the crash-safe run checkpoint of the experiment
// engine: an append-only JSONL file of completed (drop, scheme) cell
// results that lets a multi-hour figure sweep survive a crash, an
// OOM-kill, or a Ctrl-C and resume exactly where it stopped.
//
// Durability model: one record per line, each line carrying its own
// CRC32 so partial writes are detectable, and the file is fsynced
// after every cell record — a record that Record has returned for is on
// disk. The reader tolerates exactly one torn final line (the one a
// crash mid-write produces): it truncates the file back to the last
// intact record and continues. Anything else — a checksum mismatch on
// an interior line, garbage where a record should be, a header for a
// different configuration — is corruption or misuse and surfaces as a
// typed error, never a panic (fuzz-backed).
//
// The journal itself is payload-agnostic: cells carry opaque JSON and
// the header carries a caller-computed canonical config hash, so this
// package depends only on the standard library and the experiment
// engine owns the trajectory codec and hash definition.
//
// File format (one record per line):
//
//	crc32hex SP json LF
//
// where crc32hex is the 8-hex-digit IEEE CRC32 of the json bytes. The
// first record is the header; every following record is a cell.
// Duplicate (drop, scheme) cells are legal (a rewritten checkpoint, a
// re-run cell) and resolve last-write-wins, deterministically.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// Schema identifies the journal file layout; bump the suffix on
// breaking changes so old checkpoints are rejected instead of
// misread.
const Schema = "mmwalign/journal/v1"

// Header is the journal's first record: everything needed to decide
// whether resuming from this file is safe.
type Header struct {
	// Schema is the journal format identifier (Schema).
	Schema string `json:"schema"`
	// Figure is the figure the run regenerates ("fig5".."fig8"); a
	// journal never resumes across figures even when their configs
	// hash identically (fig5 and fig7 share a config but aggregate
	// differently).
	Figure string `json:"figure"`
	// ConfigHash is the canonical hash of the fully defaulted
	// experiment configuration (experiment.Config.CanonicalHash). A
	// resume with a different hash is refused with *MismatchError.
	ConfigHash string `json:"config_hash"`
	// Version identifies the engine that wrote the journal
	// (experiment.VersionString); informational — results are
	// config-determined, so a version drift warns but does not refuse.
	Version string `json:"version,omitempty"`
	// Seed and Drops restate the run shape for inspection tooling.
	Seed  int64 `json:"seed"`
	Drops int   `json:"drops"`
	// Schemes lists the configured strategy names.
	Schemes []string `json:"schemes,omitempty"`
	// CreatedAt is the RFC 3339 UTC creation timestamp (informational).
	CreatedAt string `json:"created_at,omitempty"`
}

// CellKey identifies one (drop, scheme) cell.
type CellKey struct {
	// Drop is the channel-realization index.
	Drop int `json:"drop"`
	// Scheme is the strategy name.
	Scheme string `json:"scheme"`
}

// cellRecord is the on-disk form of one completed cell.
type cellRecord struct {
	Drop    int             `json:"drop"`
	Scheme  string          `json:"scheme"`
	Payload json.RawMessage `json:"payload"`
}

// record is the line-level envelope distinguishing header from cell
// lines.
type record struct {
	Kind   string      `json:"kind"` // "header" | "cell"
	Header *Header     `json:"header,omitempty"`
	Cell   *cellRecord `json:"cell,omitempty"`
}

// MismatchError reports a journal whose header does not match the run
// attempting to resume from it — a changed config, a different figure,
// or an unknown schema. Resuming would silently mix results from two
// different experiments, so the reader refuses.
type MismatchError struct {
	// Field names what differed ("schema", "figure", "config_hash").
	Field string
	// Want and Got are the expected and on-disk values.
	Want, Got string
}

// Error implements error.
func (e *MismatchError) Error() string {
	return fmt.Sprintf("journal: %s mismatch: journal has %q, run expects %q — refusing to resume across a changed configuration", e.Field, e.Got, e.Want)
}

// ChecksumError reports an interior record whose CRC32 does not match
// its payload: on-disk corruption, not a torn tail.
type ChecksumError struct {
	// Line is the 1-based line number of the corrupt record.
	Line int
	// Want and Got are the recorded and recomputed CRC32 values.
	Want, Got uint32
}

// Error implements error.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("journal: line %d checksum mismatch (recorded %08x, computed %08x): journal is corrupt", e.Line, e.Want, e.Got)
}

// CorruptError reports a structurally invalid journal: an unparseable
// interior line, a missing or malformed header, or a record of an
// unknown kind.
type CorruptError struct {
	// Line is the 1-based line number (0 when the file as a whole is
	// malformed, e.g. empty).
	Line int
	// Reason describes what was wrong.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("journal: line %d: %s", e.Line, e.Reason)
	}
	return fmt.Sprintf("journal: %s", e.Reason)
}

// Journal is an open checkpoint: the loaded set of completed cells plus
// an append handle for recording new ones. All methods are safe for
// concurrent use by the experiment engine's drop workers.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	header  Header
	cells   map[CellKey]json.RawMessage
	closed  bool
	release func() // owner lock release; nil after Close
}

// crcTable is the IEEE polynomial every record checksum uses.
var crcTable = crc32.IEEETable

// encodeLine renders one record as its durable line form.
func encodeLine(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, crcTable))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// Create starts a fresh journal at path (truncating any existing
// file), writes the header record, and syncs it to disk. The journal's
// owner lock is acquired first: a second process holding the same path
// open gets *LockedError instead of truncating a live journal.
func Create(path string, h Header) (*Journal, error) {
	h.Schema = Schema
	release, err := acquireOwnerLock(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		release()
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	j := &Journal{f: f, path: path, header: h, cells: make(map[CellKey]json.RawMessage), release: release}
	line, err := encodeLine(record{Kind: "header", Header: &h})
	if err != nil {
		f.Close()
		release()
		return nil, err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		release()
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		release()
		return nil, fmt.Errorf("journal: syncing header: %w", err)
	}
	return j, nil
}

// Open loads an existing journal for resumption. The journal's owner
// lock is acquired first (*LockedError when another live process holds
// it; a dead holder's lock is taken over). The on-disk header must
// match want on schema, figure, and config hash (*MismatchError
// otherwise); completed cells are loaded last-write-wins; a torn final
// line is truncated away so the journal is immediately appendable. Any
// interior corruption surfaces as *ChecksumError or *CorruptError.
func Open(path string, want Header) (*Journal, error) {
	release, err := acquireOwnerLock(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		release()
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	h, cells, _, goodEnd, err := readAll(f)
	if err != nil {
		f.Close()
		release()
		return nil, err
	}
	if h.Figure != want.Figure {
		f.Close()
		release()
		return nil, &MismatchError{Field: "figure", Want: want.Figure, Got: h.Figure}
	}
	if h.ConfigHash != want.ConfigHash {
		f.Close()
		release()
		return nil, &MismatchError{Field: "config_hash", Want: want.ConfigHash, Got: h.ConfigHash}
	}
	// Drop the torn tail (if any) so appended records start on a clean
	// line boundary.
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		release()
		return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		release()
		return nil, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	return &Journal{f: f, path: path, header: *h, cells: cells, release: release}, nil
}

// CellStat describes one completed cell as seen by Inspect: its key
// plus how many records the journal holds for it (more than one means
// the cell was re-run — a resumed retry or a stolen shard lease — and
// resolved last-write-wins).
type CellStat struct {
	CellKey
	// Records is the number of journal lines recorded for this cell.
	Records int
}

// Inspect reads a journal without a configuration to validate against:
// the header, the completed cells with their record counts (sorted
// drop-major), and whether a torn tail was dropped. Used by the
// checkpoint-inspect tooling to decide whether a resume is safe before
// committing to one. The file is not modified and the owner lock is
// not taken, so a live run can be inspected.
func Inspect(path string) (Header, []CellStat, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, false, fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()
	h, cells, counts, goodEnd, err := readAll(f)
	if err != nil {
		return Header{}, nil, false, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return Header{}, nil, false, fmt.Errorf("journal: sizing %s: %w", path, err)
	}
	stats := make([]CellStat, 0, len(cells))
	for k := range cells {
		stats = append(stats, CellStat{CellKey: k, Records: counts[k]})
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Drop != stats[j].Drop {
			return stats[i].Drop < stats[j].Drop
		}
		return stats[i].Scheme < stats[j].Scheme
	})
	return *h, stats, goodEnd < size, nil
}

// Load reads a journal's header and completed cells without taking the
// owner lock or modifying the file — the shard merge step's read path,
// safe to run against a worker journal whose owner is still alive. The
// returned map resolves duplicates last-write-wins; torn reports
// whether a torn final line was skipped.
func Load(path string) (Header, map[CellKey]json.RawMessage, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, false, fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()
	h, cells, _, goodEnd, err := readAll(f)
	if err != nil {
		return Header{}, nil, false, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return Header{}, nil, false, fmt.Errorf("journal: sizing %s: %w", path, err)
	}
	return *h, cells, goodEnd < size, nil
}

// readAll parses the journal from the start of r: header, cells
// (last-write-wins) with per-cell record counts, and the byte offset
// just past the last intact record. A torn final line — no trailing
// newline, or a final line whose CRC or JSON does not check out — is
// tolerated by reporting a goodEnd before it; every interior defect is
// a typed error.
func readAll(r io.ReadSeeker) (*Header, map[CellKey]json.RawMessage, map[CellKey]int, int64, error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, nil, nil, 0, fmt.Errorf("journal: seeking start: %w", err)
	}
	br := bufio.NewReader(r)
	var (
		header  *Header
		cells   = make(map[CellKey]json.RawMessage)
		counts  = make(map[CellKey]int)
		goodEnd int64
		lineNo  int
	)
	for {
		line, err := br.ReadBytes('\n')
		lineNo++
		torn := false
		if err == io.EOF {
			if len(line) == 0 {
				break
			}
			torn = true // no trailing newline: a crash mid-write
		} else if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("journal: reading line %d: %w", lineNo, err)
		}
		rec, perr := parseLine(line, lineNo)
		if perr != nil {
			if torn {
				// The torn final line is expected damage: drop it.
				break
			}
			// A complete (newline-terminated) final line may still be
			// torn mid-line by a crash that happened to land a stray
			// newline; only a checksum/parse failure on the very last
			// line is forgivable. Peek: if more input follows, the
			// defect is interior and fatal.
			if _, peekErr := br.Peek(1); peekErr == io.EOF {
				break
			}
			return nil, nil, nil, 0, perr
		}
		if torn {
			// Even a record that parses and checksums but lacks its
			// newline is dropped (goodEnd stays before it): truncating
			// to the previous line boundary and re-running one cell is
			// strictly safer than appending onto an unterminated line.
			break
		}
		switch rec.Kind {
		case "header":
			if header != nil {
				return nil, nil, nil, 0, &CorruptError{Line: lineNo, Reason: "duplicate header record"}
			}
			if lineNo != 1 {
				return nil, nil, nil, 0, &CorruptError{Line: lineNo, Reason: "header record after cell records"}
			}
			if rec.Header == nil {
				return nil, nil, nil, 0, &CorruptError{Line: lineNo, Reason: "header record without header body"}
			}
			if rec.Header.Schema != Schema {
				return nil, nil, nil, 0, &MismatchError{Field: "schema", Want: Schema, Got: rec.Header.Schema}
			}
			header = rec.Header
		case "cell":
			if header == nil {
				return nil, nil, nil, 0, &CorruptError{Line: lineNo, Reason: "cell record before header"}
			}
			if rec.Cell == nil {
				return nil, nil, nil, 0, &CorruptError{Line: lineNo, Reason: "cell record without cell body"}
			}
			if rec.Cell.Drop < 0 || rec.Cell.Scheme == "" {
				return nil, nil, nil, 0, &CorruptError{Line: lineNo, Reason: "cell record with invalid coordinates"}
			}
			// Last-write-wins: a later record for the same cell
			// supersedes the earlier one, deterministically (file order).
			key := CellKey{Drop: rec.Cell.Drop, Scheme: rec.Cell.Scheme}
			cells[key] = rec.Cell.Payload
			counts[key]++
		default:
			return nil, nil, nil, 0, &CorruptError{Line: lineNo, Reason: fmt.Sprintf("unknown record kind %q", rec.Kind)}
		}
		goodEnd += int64(len(line))
	}
	if header == nil {
		return nil, nil, nil, 0, &CorruptError{Reason: "no header record (empty or torn-at-birth journal)"}
	}
	return header, cells, counts, goodEnd, nil
}

// parseLine validates one "crc32hex SP json" line.
func parseLine(line []byte, lineNo int) (record, error) {
	// Strip the trailing newline if present (torn lines lack it).
	line = bytes.TrimSuffix(line, []byte("\n"))
	if len(line) < 10 || line[8] != ' ' {
		return record{}, &CorruptError{Line: lineNo, Reason: "line too short for a crc-prefixed record"}
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return record{}, &CorruptError{Line: lineNo, Reason: "malformed crc prefix"}
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return record{}, &ChecksumError{Line: lineNo, Want: want, Got: got}
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, &CorruptError{Line: lineNo, Reason: fmt.Sprintf("record is not valid JSON: %v", err)}
	}
	return rec, nil
}

// Header returns the journal's header record.
func (j *Journal) Header() Header {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.header
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct completed cells on record.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// Lookup returns the recorded payload of a completed cell, or false
// when the cell has not completed — the resume-skip query.
func (j *Journal) Lookup(drop int, scheme string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.cells[CellKey{Drop: drop, Scheme: scheme}]
	return p, ok
}

// Record appends one completed cell and fsyncs before returning: once
// Record returns nil, the cell survives any crash. Safe for concurrent
// use; concurrent records serialize on the journal lock so lines never
// interleave.
func (j *Journal) Record(drop int, scheme string, payload json.RawMessage) error {
	if drop < 0 || scheme == "" {
		return fmt.Errorf("journal: invalid cell coordinates (drop %d, scheme %q)", drop, scheme)
	}
	line, err := encodeLine(record{Kind: "cell", Cell: &cellRecord{Drop: drop, Scheme: scheme, Payload: payload}})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: record on closed journal %s", j.path)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: appending cell (drop %d, scheme %s): %w", drop, scheme, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing cell (drop %d, scheme %s): %w", drop, scheme, err)
	}
	j.cells[CellKey{Drop: drop, Scheme: scheme}] = payload
	return nil
}

// Close releases the file handle and the owner lock. Records are
// already durable (each Record fsyncs), so Close never loses data; it
// is idempotent (the lock is released exactly once, so a double Close
// cannot delete a successor's lock).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.f.Close()
	if j.release != nil {
		j.release()
		j.release = nil
	}
	return err
}
