package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSecondOpenerGetsLockedError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	defer j.Close()

	var le *LockedError
	if _, err := Open(path, testHeader()); !errors.As(err, &le) {
		t.Fatalf("second Open returned %v, want *LockedError", err)
	}
	if le.HolderPID != os.Getpid() {
		t.Errorf("LockedError.HolderPID = %d, want own pid %d", le.HolderPID, os.Getpid())
	}
	if le.Path != path {
		t.Errorf("LockedError.Path = %q, want %q", le.Path, path)
	}
	if _, err := Create(path, testHeader()); !errors.As(err, &le) {
		t.Errorf("second Create returned %v, want *LockedError", err)
	}
}

func TestCloseReleasesLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(lockPath(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("lock file survived Close: stat err = %v", err)
	}
	r, err := Open(path, testHeader())
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	r.Close()
	// Double Close must not delete a successor's lock.
	r2, err := Open(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(lockPath(path)); err != nil {
		t.Error("double Close of the previous owner removed the successor's lock")
	}
}

func TestStaleLockTakenOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	mustCreate(t, path, testHeader()).Close()

	host, _ := os.Hostname()
	// A lock held by a same-host PID that no longer exists is stale.
	// PIDs are allocated upward and wrap at kernel.pid_max (≥ 32768,
	// typically 4194304); math.MaxInt32 exceeds any valid PID.
	stale, _ := json.Marshal(lockInfo{PID: 1<<31 - 1, Host: host})
	if err := os.WriteFile(lockPath(path), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, testHeader())
	if err != nil {
		t.Fatalf("stale same-host lock not taken over: %v", err)
	}
	j.Close()

	// An unparseable lock was not written by this protocol: debris,
	// taken over.
	if err := os.WriteFile(lockPath(path), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err = Open(path, testHeader())
	if err != nil {
		t.Fatalf("garbage lock not taken over: %v", err)
	}
	j.Close()
}

func TestForeignHostLockRespected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	mustCreate(t, path, testHeader()).Close()

	// A lock from another host cannot be liveness-probed, so it is
	// honored even when its PID happens to be dead here.
	foreign, _ := json.Marshal(lockInfo{PID: 1<<31 - 1, Host: "some-other-host"})
	if err := os.WriteFile(lockPath(path), foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	var le *LockedError
	if _, err := Open(path, testHeader()); !errors.As(err, &le) {
		t.Fatalf("foreign-host lock returned %v, want *LockedError", err)
	}
	if le.HolderHost != "some-other-host" {
		t.Errorf("LockedError.HolderHost = %q", le.HolderHost)
	}
}

func TestLoadIgnoresLockAndDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	j.Record(0, "random", json.RawMessage(`{"v":0}`))
	j.Record(0, "random", json.RawMessage(`{"v":1}`))
	j.Record(2, "proposed", json.RawMessage(`{"v":2}`))

	// Load must work while the owner still holds the lock (the shard
	// merge reads live worker journals) and must not modify the file.
	h, cells, torn, err := Load(path)
	if err != nil {
		t.Fatalf("Load under a live lock: %v", err)
	}
	if torn {
		t.Error("intact journal reported torn")
	}
	if h.Figure != "fig5" {
		t.Errorf("Load header figure = %q", h.Figure)
	}
	if len(cells) != 2 {
		t.Fatalf("Load cells = %d, want 2", len(cells))
	}
	if string(cells[CellKey{0, "random"}]) != `{"v":1}` {
		t.Errorf("duplicate not resolved last-write-wins: %s", cells[CellKey{0, "random"}])
	}
	j.Close()

	// Torn tails are reported, not repaired.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("deadbeef {\"kind\":\"cell\"")
	f.Close()
	before, _ := os.ReadFile(path)
	_, _, torn, err = Load(path)
	if err != nil || !torn {
		t.Errorf("Load(torn) = torn=%v err=%v, want torn=true err=nil", torn, err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Error("Load modified the journal file")
	}
}
