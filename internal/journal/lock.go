package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync/atomic"
	"syscall"
)

// LockedError reports a journal whose owner lock is held by another
// live process: appending from two processes would interleave records
// inside fsync batches and corrupt the file, so the second opener is
// refused with the holder's identity instead of silently sharing the
// append handle.
type LockedError struct {
	// Path is the journal path the lock protects.
	Path string
	// HolderPID is the process currently holding the lock.
	HolderPID int
	// HolderHost is the hostname recorded by the holder (empty in locks
	// written by engines that predate the field).
	HolderHost string
}

// Error implements error.
func (e *LockedError) Error() string {
	host := e.HolderHost
	if host == "" {
		host = "unknown host"
	}
	return fmt.Sprintf("journal: %s is owned by pid %d on %s — a journal accepts appends from one process at a time (stale locks of dead processes are taken over automatically)", e.Path, e.HolderPID, host)
}

// lockInfo is the content of an owner lock file.
type lockInfo struct {
	PID  int    `json:"pid"`
	Host string `json:"host,omitempty"`
}

// lockPath returns the owner lock-file path for a journal.
func lockPath(path string) string { return path + ".lock" }

// pidAlive reports whether a process with the given PID exists on this
// host. EPERM means "exists but not ours", which is alive.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

// acquireOwnerLock takes the advisory single-writer lock for the
// journal at path. The lock is a sibling file created atomically
// (write-temp-then-link, so a reader never sees a torn lock) holding
// the owner's PID and host. A lock whose holder is provably gone — a
// dead PID on the same host — is stale and taken over; a live holder
// yields *LockedError.
var lockTmpSeq atomic.Int64

func acquireOwnerLock(path string) (release func(), err error) {
	lp := lockPath(path)
	host, _ := os.Hostname()
	data, err := json.Marshal(lockInfo{PID: os.Getpid(), Host: host})
	if err != nil {
		return nil, fmt.Errorf("journal: encoding owner lock: %w", err)
	}
	// The sequence suffix keeps temp names unique when two goroutines in
	// one process race for locks (PID alone would collide and let one
	// unlink the temp out from under the other).
	tmp := fmt.Sprintf("%s.tmp.%d.%d", lp, os.Getpid(), lockTmpSeq.Add(1))
	// Two takeover attempts bound the loop: the first EEXIST may be a
	// stale lock we remove; a second EEXIST means a live contender won
	// the re-acquisition race and holds a fresh lock.
	for attempt := 0; attempt < 2; attempt++ {
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return nil, fmt.Errorf("journal: writing owner lock: %w", err)
		}
		linkErr := os.Link(tmp, lp)
		os.Remove(tmp)
		if linkErr == nil {
			return func() { os.Remove(lp) }, nil
		}
		if !errors.Is(linkErr, fs.ErrExist) {
			return nil, fmt.Errorf("journal: acquiring owner lock %s: %w", lp, linkErr)
		}
		holder, readErr := readLockInfo(lp)
		switch {
		case errors.Is(readErr, fs.ErrNotExist):
			// The holder released between Link and ReadFile; retry.
			continue
		case readErr != nil:
			// A lock that cannot be parsed was not written by this
			// protocol (links are atomic); treat it as debris and take
			// over.
		case holder.Host == host && !pidAlive(holder.PID):
			// Stale: the owning process died on this host. Take over.
		default:
			return nil, &LockedError{Path: path, HolderPID: holder.PID, HolderHost: holder.Host}
		}
		os.Remove(lp)
	}
	holder, _ := readLockInfo(lp)
	return nil, &LockedError{Path: path, HolderPID: holder.PID, HolderHost: holder.Host}
}

// readLockInfo parses an owner lock file.
func readLockInfo(lp string) (lockInfo, error) {
	data, err := os.ReadFile(lp)
	if err != nil {
		return lockInfo{}, err
	}
	var li lockInfo
	if err := json.Unmarshal(data, &li); err != nil {
		return lockInfo{}, fmt.Errorf("journal: parsing owner lock %s: %w", lp, err)
	}
	return li, nil
}
