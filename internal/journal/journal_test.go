package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testHeader() Header {
	return Header{
		Figure:     "fig5",
		ConfigHash: "deadbeef",
		Version:    "test-engine",
		Seed:       42,
		Drops:      3,
		Schemes:    []string{"random", "proposed"},
	}
}

func mustCreate(t *testing.T, path string, h Header) *Journal {
	t.Helper()
	j, err := Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	payloads := map[CellKey]string{
		{0, "random"}:   `{"x":1}`,
		{0, "proposed"}: `{"x":2}`,
		{2, "random"}:   `{"x":3}`,
	}
	for k, p := range payloads {
		if err := j.Record(k.Drop, k.Scheme, json.RawMessage(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(payloads) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(payloads))
	}
	if got := r.Header(); got.Figure != "fig5" || got.ConfigHash != "deadbeef" || got.Seed != 42 {
		t.Fatalf("header round-trip mangled: %+v", got)
	}
	for k, want := range payloads {
		got, ok := r.Lookup(k.Drop, k.Scheme)
		if !ok || string(got) != want {
			t.Errorf("Lookup(%d,%s) = %q,%v; want %q", k.Drop, k.Scheme, got, ok, want)
		}
	}
	if _, ok := r.Lookup(1, "random"); ok {
		t.Error("Lookup of unrecorded cell reported completion")
	}
}

func TestDuplicateCellLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	for i := 0; i < 3; i++ {
		if err := j.Record(1, "random", json.RawMessage(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	r, err := Open(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("Len = %d after duplicate records, want 1", r.Len())
	}
	got, _ := r.Lookup(1, "random")
	if string(got) != `{"v":2}` {
		t.Errorf("duplicate resolution = %s, want last write {\"v\":2}", got)
	}
}

func TestTornTailTruncateAndContinue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	if err := j.Record(0, "random", json.RawMessage(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, tail := range map[string]string{
		"half-record":      `0badc0de {"kind":"cell","cell":{"drop":1,"sch`,
		"garbage":          "\x00\x01\x02partial",
		"crc-only":         "deadbeef",
		"valid-no-newline": "", // filled below: a full record missing its \n
	} {
		t.Run(name, func(t *testing.T) {
			data := append(append([]byte(nil), intact...), tail...)
			if name == "valid-no-newline" {
				line, err := encodeLine(record{Kind: "cell", Cell: &cellRecord{Drop: 1, Scheme: "random", Payload: json.RawMessage(`{}`)}})
				if err != nil {
					t.Fatal(err)
				}
				data = append(append([]byte(nil), intact...), line[:len(line)-1]...)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(path, testHeader())
			if err != nil {
				t.Fatalf("torn tail not tolerated: %v", err)
			}
			if r.Len() != 1 {
				t.Fatalf("Len = %d after torn tail, want the 1 intact cell", r.Len())
			}
			// The journal must be immediately appendable: the torn line was
			// truncated away, so a new record lands on a clean boundary.
			if err := r.Record(2, "proposed", json.RawMessage(`{"resumed":true}`)); err != nil {
				t.Fatal(err)
			}
			r.Close()
			r2, err := Open(path, testHeader())
			if err != nil {
				t.Fatalf("reopen after truncate-and-append: %v", err)
			}
			defer r2.Close()
			if r2.Len() != 2 {
				t.Fatalf("Len = %d after append over torn tail, want 2", r2.Len())
			}
		})
	}
}

func TestInteriorChecksumMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	j.Record(0, "random", json.RawMessage(`{"a":1}`))
	j.Record(1, "random", json.RawMessage(`{"b":2}`))
	j.Close()
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a payload byte of the middle record (line 2) without touching
	// its CRC prefix.
	corrupted := []byte(lines[1])
	corrupted[len(corrupted)-3] ^= 0x01
	lines[1] = string(corrupted)
	os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644)

	_, err := Open(path, testHeader())
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("interior corruption returned %v, want *ChecksumError", err)
	}
	if ce.Line != 2 {
		t.Errorf("ChecksumError.Line = %d, want 2", ce.Line)
	}
}

func TestConfigHashMismatchRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	mustCreate(t, path, testHeader()).Close()

	want := testHeader()
	want.ConfigHash = "0ther"
	_, err := Open(path, want)
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("config drift returned %v, want *MismatchError", err)
	}
	if me.Field != "config_hash" {
		t.Errorf("mismatch field = %q, want config_hash", me.Field)
	}

	want = testHeader()
	want.Figure = "fig7"
	if _, err := Open(path, want); !errors.As(err, &me) || me.Field != "figure" {
		t.Errorf("figure drift returned %v, want *MismatchError on figure", err)
	}
}

func TestInteriorGarbageRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	j.Record(0, "random", json.RawMessage(`{}`))
	j.Close()
	data, _ := os.ReadFile(path)
	// Insert a garbage line between header and the cell record.
	lines := strings.SplitAfter(string(data), "\n")
	mangled := lines[0] + "not a record at all\n" + strings.Join(lines[1:], "")
	os.WriteFile(path, []byte(mangled), 0o644)

	_, err := Open(path, testHeader())
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("interior garbage returned %v, want *CorruptError", err)
	}
}

func TestMissingOrForeignHeaderRejected(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty.journal")
	os.WriteFile(empty, nil, 0o644)
	var ce *CorruptError
	if _, err := Open(empty, testHeader()); !errors.As(err, &ce) {
		t.Errorf("empty journal returned %v, want *CorruptError", err)
	}

	// A header from a future/foreign schema must be refused, not misread.
	foreign := filepath.Join(dir, "foreign.journal")
	h := testHeader()
	j := mustCreate(t, foreign, h)
	j.Close()
	data, _ := os.ReadFile(foreign)
	swapped := strings.Replace(string(data), Schema, "mmwalign/journal/v999", 1)
	// CRC covers the payload, so recompute the line properly instead of
	// hand-editing: rewrite through encodeLine.
	hh := h
	hh.Schema = "mmwalign/journal/v999"
	line, err := encodeLine(record{Kind: "header", Header: &hh})
	if err != nil {
		t.Fatal(err)
	}
	_ = swapped
	os.WriteFile(foreign, line, 0o644)
	var me *MismatchError
	if _, err := Open(foreign, testHeader()); !errors.As(err, &me) || me.Field != "schema" {
		t.Errorf("foreign schema returned %v, want *MismatchError on schema", err)
	}
}

func TestConcurrentRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	var wg sync.WaitGroup
	for d := 0; d < 16; d++ {
		for _, s := range []string{"random", "proposed"} {
			d, s := d, s
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := j.Record(d, s, json.RawMessage(fmt.Sprintf(`{"d":%d,"s":%q}`, d, s))); err != nil {
					t.Error(err)
				}
			}()
		}
	}
	wg.Wait()
	j.Close()
	r, err := Open(path, testHeader())
	if err != nil {
		t.Fatalf("concurrent records interleaved into corruption: %v", err)
	}
	defer r.Close()
	if r.Len() != 32 {
		t.Fatalf("Len = %d, want 32", r.Len())
	}
}

func TestInspect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j := mustCreate(t, path, testHeader())
	j.Record(1, "proposed", json.RawMessage(`{}`))
	j.Record(0, "random", json.RawMessage(`{}`))
	j.Record(1, "proposed", json.RawMessage(`{"rerun":true}`)) // duplicate: counted, resolved last-write-wins
	j.Close()

	h, cells, torn, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("intact journal reported a torn tail")
	}
	if h.Figure != "fig5" || h.Drops != 3 {
		t.Errorf("inspect header = %+v", h)
	}
	// Stats come back sorted drop-major, carrying record counts.
	want := []CellStat{
		{CellKey: CellKey{0, "random"}, Records: 1},
		{CellKey: CellKey{1, "proposed"}, Records: 2},
	}
	if len(cells) != 2 || cells[0] != want[0] || cells[1] != want[1] {
		t.Errorf("inspect cells = %v, want %v", cells, want)
	}

	// A torn tail is reported but does not fail inspection, and the file
	// is left unmodified (Inspect is read-only).
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("deadbeef {\"kind\":\"cell\"")
	f.Close()
	before, _ := os.ReadFile(path)
	_, _, torn, err = Inspect(path)
	if err != nil || !torn {
		t.Errorf("Inspect(torn) = torn=%v err=%v, want torn=true err=nil", torn, err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Error("Inspect modified the journal file")
	}
}

func TestRecordValidatesCoordinates(t *testing.T) {
	j := mustCreate(t, filepath.Join(t.TempDir(), "run.journal"), testHeader())
	defer j.Close()
	if err := j.Record(-1, "random", nil); err == nil {
		t.Error("negative drop accepted")
	}
	if err := j.Record(0, "", nil); err == nil {
		t.Error("empty scheme accepted")
	}
}

func TestRecordOnClosedJournalFails(t *testing.T) {
	j := mustCreate(t, filepath.Join(t.TempDir(), "run.journal"), testHeader())
	j.Close()
	if err := j.Record(0, "random", json.RawMessage(`{}`)); err == nil {
		t.Error("record on closed journal succeeded")
	}
	if err := j.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
