// Package align implements the beam-alignment core of the paper: the
// measurement-budgeted search for a high-gain TX/RX beam pair over
// analog beamforming codebooks. It provides the paper's proposed
// learning-based strategy (Algorithm 1) alongside the Random and Scan
// baselines of Sec. V, an exhaustive oracle, a hierarchical-codebook
// strategy as an extension, and the trajectory runner that records the
// SNR loss of the best pair found after every measurement — the raw
// material for the paper's search-effectiveness (Fig. 5/6) and
// cost-efficiency (Fig. 7/8) results.
package align

import (
	"context"
	"fmt"
	"math"

	"mmwalign/internal/antenna"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// Pair identifies a TX/RX beam pair by codebook indices.
type Pair struct {
	// TX and RX are beam indices into the respective codebooks.
	TX, RX int
}

// Env bundles everything a strategy may use during a run: the two
// codebooks (the sets U and V), the sounder that takes measurements, and
// a private randomness stream. Strategies must obtain channel information
// exclusively through Env.Sounder measurements.
type Env struct {
	// TXBook and RXBook are the selectable beam sets.
	TXBook, RXBook *antenna.Codebook
	// Sounder performs pair measurements. In production this is a
	// *meas.Sounder; the interface seam exists so fault-injection and
	// instrumentation wrappers can interpose on every measurement.
	Sounder meas.Prober
	// Src is the strategy's private randomness.
	Src *rng.Source
}

// TotalPairs returns T = card(U)·card(V).
func (e *Env) TotalPairs() int { return e.TXBook.Size() * e.RXBook.Size() }

// MeasurePair sounds the pair p once.
func (e *Env) MeasurePair(p Pair) meas.Measurement {
	return e.Sounder.Measure(p.TX, p.RX,
		e.TXBook.Beam(p.TX).Weights, e.RXBook.Beam(p.RX).Weights)
}

// Strategy is a beam-alignment scheme: given an environment and a
// measurement budget it decides which pairs to sound and in what order.
// Implementations must never sound the same pair twice (the paper's
// no-repetition rule) and must take exactly min(budget, T) measurements.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Run executes the search and returns the measurements in the order
	// they were taken.
	Run(env *Env, budget int) ([]meas.Measurement, error)
}

// ContextStrategy is implemented by strategies that support cooperative
// cancellation. RunContext behaves like Run but stops cleanly (returning
// the context's error and the measurements taken so far discarded) when
// ctx is cancelled or its deadline passes. All built-in strategies
// implement it; EvaluateContext uses it when available.
type ContextStrategy interface {
	Strategy
	// RunContext is Run with cooperative cancellation.
	RunContext(ctx context.Context, env *Env, budget int) ([]meas.Measurement, error)
}

// runStrategy dispatches to RunContext when the strategy supports it,
// falling back to a plain Run bracketed by context checks otherwise.
func runStrategy(ctx context.Context, env *Env, s Strategy, budget int) ([]meas.Measurement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cs, ok := s.(ContextStrategy); ok {
		return cs.RunContext(ctx, env, budget)
	}
	ms, err := s.Run(env, budget)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ms, nil
}

// Oracle computes the ground-truth optimal pair (u_opt, v_opt) of
// Eq. (2): the codebook pair maximizing the true expected SNR. It is
// used only for evaluation.
func Oracle(env *Env) (Pair, float64) {
	best := Pair{TX: -1, RX: -1}
	bestSNR := math.Inf(-1)
	for t := 0; t < env.TXBook.Size(); t++ {
		u := env.TXBook.Beam(t).Weights
		for r := 0; r < env.RXBook.Size(); r++ {
			v := env.RXBook.Beam(r).Weights
			if snr := env.Sounder.TrueSNR(u, v); snr > bestSNR {
				best, bestSNR = Pair{TX: t, RX: r}, snr
			}
		}
	}
	return best, bestSNR
}

// TrueSNROf returns the ground-truth expected SNR of a pair.
func TrueSNROf(env *Env, p Pair) float64 {
	return env.Sounder.TrueSNR(env.TXBook.Beam(p.TX).Weights, env.RXBook.Beam(p.RX).Weights)
}

// clampBudget applies the budget ≤ T rule shared by all strategies.
func clampBudget(env *Env, budget int) (int, error) {
	if budget <= 0 {
		return 0, fmt.Errorf("align: budget %d must be positive", budget)
	}
	if t := env.TotalPairs(); budget > t {
		return t, nil
	}
	return budget, nil
}

// scanRemaining spends the rest of a strategy's budget sounding
// not-yet-measured pairs in snake-raster (scan) order. It is the shared
// graceful-degradation mode of the learning-based strategies: when the
// covariance estimator fails mid-trajectory (poisoned measurements, a
// degenerate solve), the search falls back to the paper's Scan policy
// rather than erroring the whole drop — mirroring the observation that
// at 100% search rate every scheme reduces to the exhaustive scan.
// Measurements are appended to out; pairs in measured are skipped and
// newly sounded pairs are recorded there. Cancellation is honoured
// between measurements.
func scanRemaining(ctx context.Context, env *Env, measured map[Pair]bool, out []meas.Measurement, budget int) ([]meas.Measurement, error) {
	txOrder := env.TXBook.SnakeOrder()
	rxOrder := env.RXBook.SnakeOrder()
	nRX := len(rxOrder)
	for ti, tx := range txOrder {
		for k := 0; k < nRX; k++ {
			if len(out) >= budget {
				return out, nil
			}
			ri := k
			// Boustrophedon: reverse the RX sweep on odd TX steps so
			// consecutive pairs stay spatially adjacent.
			if ti%2 == 1 {
				ri = nRX - 1 - ri
			}
			p := Pair{TX: tx, RX: rxOrder[ri]}
			if measured[p] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return out, err
			}
			measured[p] = true
			out = append(out, env.MeasurePair(p))
		}
	}
	return out, nil
}
