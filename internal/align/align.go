// Package align implements the beam-alignment core of the paper: the
// measurement-budgeted search for a high-gain TX/RX beam pair over
// analog beamforming codebooks. It provides the paper's proposed
// learning-based strategy (Algorithm 1) alongside the Random and Scan
// baselines of Sec. V, an exhaustive oracle, a hierarchical-codebook
// strategy as an extension, and the trajectory runner that records the
// SNR loss of the best pair found after every measurement — the raw
// material for the paper's search-effectiveness (Fig. 5/6) and
// cost-efficiency (Fig. 7/8) results.
package align

import (
	"fmt"
	"math"

	"mmwalign/internal/antenna"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// Pair identifies a TX/RX beam pair by codebook indices.
type Pair struct {
	// TX and RX are beam indices into the respective codebooks.
	TX, RX int
}

// Env bundles everything a strategy may use during a run: the two
// codebooks (the sets U and V), the sounder that takes measurements, and
// a private randomness stream. Strategies must obtain channel information
// exclusively through Env.Sounder measurements.
type Env struct {
	// TXBook and RXBook are the selectable beam sets.
	TXBook, RXBook *antenna.Codebook
	// Sounder performs pair measurements.
	Sounder *meas.Sounder
	// Src is the strategy's private randomness.
	Src *rng.Source
}

// TotalPairs returns T = card(U)·card(V).
func (e *Env) TotalPairs() int { return e.TXBook.Size() * e.RXBook.Size() }

// MeasurePair sounds the pair p once.
func (e *Env) MeasurePair(p Pair) meas.Measurement {
	return e.Sounder.Measure(p.TX, p.RX,
		e.TXBook.Beam(p.TX).Weights, e.RXBook.Beam(p.RX).Weights)
}

// Strategy is a beam-alignment scheme: given an environment and a
// measurement budget it decides which pairs to sound and in what order.
// Implementations must never sound the same pair twice (the paper's
// no-repetition rule) and must take exactly min(budget, T) measurements.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Run executes the search and returns the measurements in the order
	// they were taken.
	Run(env *Env, budget int) ([]meas.Measurement, error)
}

// Oracle computes the ground-truth optimal pair (u_opt, v_opt) of
// Eq. (2): the codebook pair maximizing the true expected SNR. It is
// used only for evaluation.
func Oracle(env *Env) (Pair, float64) {
	best := Pair{TX: -1, RX: -1}
	bestSNR := math.Inf(-1)
	for t := 0; t < env.TXBook.Size(); t++ {
		u := env.TXBook.Beam(t).Weights
		for r := 0; r < env.RXBook.Size(); r++ {
			v := env.RXBook.Beam(r).Weights
			if snr := env.Sounder.TrueSNR(u, v); snr > bestSNR {
				best, bestSNR = Pair{TX: t, RX: r}, snr
			}
		}
	}
	return best, bestSNR
}

// TrueSNROf returns the ground-truth expected SNR of a pair.
func TrueSNROf(env *Env, p Pair) float64 {
	return env.Sounder.TrueSNR(env.TXBook.Beam(p.TX).Weights, env.RXBook.Beam(p.RX).Weights)
}

// clampBudget applies the budget ≤ T rule shared by all strategies.
func clampBudget(env *Env, budget int) (int, error) {
	if budget <= 0 {
		return 0, fmt.Errorf("align: budget %d must be positive", budget)
	}
	if t := env.TotalPairs(); budget > t {
		return t, nil
	}
	return budget, nil
}
