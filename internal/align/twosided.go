package align

import (
	"context"
	"errors"
	"fmt"

	"mmwalign/internal/cmat"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
	runobs "mmwalign/internal/obs"
)

// TwoSidedStrategy extends the paper's Algorithm 1 in the direction its
// Sec. IV-B1 hints at ("RX can transmit feedback messages … so that TX
// can know what is the best beam direction for itself so far"): instead
// of visiting TX beams uniformly at random, the transmitter exploits the
// receiver's feedback to revisit promising TX beams.
//
// TX slots alternate between exploration — the least-visited TX beam,
// chosen at random among ties — and exploitation — the TX beam with the
// highest mean measured energy so far that still has unmeasured RX
// pairs. The RX side runs exactly the covariance-estimation machinery of
// the proposed scheme. This is the "both ends adapt" design the paper
// leaves as future work, included here for the extension benches.
type TwoSidedStrategy struct {
	cfg ProposedConfig
}

// NewTwoSided creates the strategy; cfg carries the same knobs as the
// proposed scheme.
func NewTwoSided(cfg ProposedConfig) *TwoSidedStrategy {
	return &TwoSidedStrategy{cfg: cfg.withDefaults()}
}

// Name implements Strategy.
func (s *TwoSidedStrategy) Name() string { return "two-sided" }

// Run implements Strategy.
func (s *TwoSidedStrategy) Run(env *Env, budget int) ([]meas.Measurement, error) {
	return s.RunContext(context.Background(), env, budget)
}

// RunContext implements ContextStrategy with the same cancellation and
// graceful-degradation semantics as the proposed scheme: cancellation
// stops at the next boundary, estimator failure degrades to scan-order
// selection for the remaining budget.
func (s *TwoSidedStrategy) RunContext(ctx context.Context, env *Env, budget int) ([]meas.Measurement, error) {
	budget, err := clampBudget(env, budget)
	if err != nil {
		return nil, err
	}
	rec := runobs.From(ctx)
	estPhase := rec.Phase("estimation")
	selPhase := rec.Phase("selection")

	opts := s.cfg.Estimator
	if opts.Gamma == 0 {
		opts.Gamma = env.Sounder.Gamma()
	}
	est, err := covest.NewEstimator(env.RXBook.Array().Elements(), opts)
	if err != nil {
		return nil, fmt.Errorf("align: two-sided: %w", err)
	}

	nTX, nRX := env.TXBook.Size(), env.RXBook.Size()
	measured := make(map[Pair]bool, budget)
	visits := make([]int, nTX)
	energySum := make([]float64, nTX)
	energyCount := make([]int, nTX)

	var out []meas.Measurement
	var obs []covest.Observation
	var qhat *cmat.Matrix
	// Reuse the proposed scheme's RX selection logic.
	rxSel := &ProposedStrategy{cfg: s.cfg}
	scr := &selectScratch{}

	take := func(p Pair) {
		m := env.MeasurePair(p)
		measured[p] = true
		out = append(out, m)
		obs = append(obs, covest.Observation{V: env.RXBook.Beam(p.RX).Weights, Energy: m.Energy})
		energySum[p.TX] += m.Energy
		energyCount[p.TX]++
	}

	slot := 0
	for len(out) < budget {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tx := s.pickTX(env, slot, visits, energySum, energyCount, measured, nRX)
		if tx < 0 {
			break // every pair measured
		}
		slot++
		visits[tx]++

		avail := rxSel.unmeasuredRX(measured, tx, nRX)
		if len(avail) == 0 {
			continue
		}
		want := s.cfg.J - 1
		if want < 1 {
			want = 1
		}
		taken := 0
		selSpan := selPhase.Start()
		sel := rxSel.selectBeams(env, qhat, avail, want, scr)
		selSpan.End()
		for _, rx := range sel {
			if len(out) == budget {
				return out, nil
			}
			take(Pair{TX: tx, RX: rx})
			taken++
		}

		// Re-estimate only when the slot contributed meaningfully new
		// data: exploitation slots on nearly-exhausted TX beams can be
		// tiny, and re-solving after one or two measurements would
		// multiply the estimation cost for no information gain.
		if taken*2 >= s.cfg.J || qhat == nil {
			win := obs
			if s.cfg.Window > 0 && len(obs) > s.cfg.Window {
				win = obs[len(obs)-s.cfg.Window:]
			}
			estSpan := estPhase.Start()
			q, stats, estErr := est.EstimateContext(ctx, win, qhat)
			estSpan.End()
			rec.AddSolve(solveSample(stats))
			switch {
			case estErr == nil && isFiniteObjective(stats):
				qhat = q
			case errors.Is(estErr, context.Canceled) || errors.Is(estErr, context.DeadlineExceeded):
				return nil, estErr
			case errors.Is(estErr, cmat.ErrNoConvergence):
				// keep previous estimate
				rec.Counter("estimator_stale_keeps").Add(1)
			default:
				// Degenerate solve or estimator failure: scan out the
				// remaining budget instead of erroring the drop.
				rec.Counter("estimator_fallbacks").Add(1)
				return scanRemaining(ctx, env, measured, out, budget)
			}
		}

		if len(out) == budget {
			return out, nil
		}
		avail = rxSel.unmeasuredRX(measured, tx, nRX)
		if len(avail) == 0 {
			continue
		}
		selSpan = selPhase.Start()
		last := rxSel.selectBeams(env, qhat, avail, 1, scr)[0]
		selSpan.End()
		take(Pair{TX: tx, RX: last})
	}
	return out, nil
}

// pickTX alternates exploration (least-visited, random tie-break) and
// exploitation (best mean measured energy), skipping TX beams with no
// unmeasured RX pairs. Returns -1 when nothing is measurable.
func (s *TwoSidedStrategy) pickTX(env *Env, slot int, visits []int, energySum []float64, energyCount []int, measured map[Pair]bool, nRX int) int {
	hasUnmeasured := func(tx int) bool {
		for rx := 0; rx < nRX; rx++ {
			if !measured[Pair{TX: tx, RX: rx}] {
				return true
			}
		}
		return false
	}

	explore := slot%2 == 0
	if !explore {
		best, bestMean := -1, -1.0
		for tx := range visits {
			if energyCount[tx] == 0 || !hasUnmeasured(tx) {
				continue
			}
			if mean := energySum[tx] / float64(energyCount[tx]); mean > bestMean {
				best, bestMean = tx, mean
			}
		}
		if best >= 0 {
			return best
		}
		// No measured-and-available beam yet: fall through to explore.
	}

	minVisits := -1
	var candidates []int
	for tx := range visits {
		if !hasUnmeasured(tx) {
			continue
		}
		switch {
		case minVisits < 0 || visits[tx] < minVisits:
			minVisits = visits[tx]
			candidates = candidates[:0]
			candidates = append(candidates, tx)
		case visits[tx] == minVisits:
			candidates = append(candidates, tx)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[env.Src.Intn(len(candidates))]
}

var _ ContextStrategy = (*TwoSidedStrategy)(nil)
