package align

import (
	"fmt"

	"mmwalign/internal/cmat"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
)

// DigitalStrategy is the fully-digital-receiver reference: for every
// visited TX beam the receiver takes a few full-vector snapshots (one
// RF chain per antenna, so each snapshot observes all N elements at
// once), forms a shrunk sample covariance, steers to the best RX
// codeword under it, and confirms that pair with one regular beamformed
// measurement so its quality is reported through the same measured-SNR
// channel as every other scheme.
//
// Slot accounting: each vector snapshot and the confirmation sounding
// all cost one measurement slot. The digital architecture's advantage —
// N observations per slot instead of 1 — is exactly what the comparison
// benches quantify against the paper's analog scheme; its price
// (N RF chains and ADCs at mmWave rates) is the reason the paper
// targets analog beamforming in the first place.
type DigitalStrategy struct {
	// SnapshotsPerTX is the number of vector snapshots per TX beam
	// (default 3).
	SnapshotsPerTX int
	// Shrinkage is the sample-covariance shrinkage weight α (default
	// 0.1).
	Shrinkage float64
}

// NewDigital creates the strategy with defaults.
func NewDigital() *DigitalStrategy {
	return &DigitalStrategy{SnapshotsPerTX: 3, Shrinkage: 0.1}
}

// Name implements Strategy.
func (s *DigitalStrategy) Name() string { return "digital" }

// Run implements Strategy.
func (s *DigitalStrategy) Run(env *Env, budget int) ([]meas.Measurement, error) {
	budget, err := clampBudget(env, budget)
	if err != nil {
		return nil, err
	}
	snaps := s.SnapshotsPerTX
	if snaps < 1 {
		snaps = 3
	}
	alpha := s.Shrinkage
	if alpha < 0 || alpha > 1 {
		alpha = 0.1
	}

	measured := make(map[Pair]bool, budget)
	var out []meas.Measurement
	var ranked []int // reused ranking buffer across TX slots
	txOrder := env.Src.Perm(env.TXBook.Size())
	slot := 0
	slots := 0 // total slot budget consumed (snapshots + soundings)

	for slots < budget {
		tx := txOrder[slot%len(txOrder)]
		slot++
		u := env.TXBook.Beam(tx).Weights

		// Vector snapshots for this TX beam.
		var ys []cmat.Vector
		for k := 0; k < snaps && slots < budget; k++ {
			vm := env.Sounder.MeasureVector(tx, u)
			ys = append(ys, vm.Y)
			slots++
			// Snapshot slots appear in the record as sector-style
			// non-pair measurements so trajectory audits see the cost.
			out = append(out, meas.Measurement{TXBeam: tx, RXBeam: SectorBeam, U: u, Energy: vectorEnergy(vm.Y)})
		}
		if slots >= budget || len(ys) == 0 {
			break
		}

		qhat, err := covest.SampleCovariance(ys, env.Sounder.Gamma(), alpha)
		if err != nil {
			return nil, fmt.Errorf("align: digital: %w", err)
		}

		// Confirmation sounding on the best unmeasured codeword.
		best, found := -1, false
		ranked = env.RXBook.TopKQuadFormInto(qhat, env.RXBook.Size(), ranked)
		for _, idx := range ranked {
			if !measured[Pair{TX: tx, RX: idx}] {
				best, found = idx, true
				break
			}
		}
		if !found {
			continue
		}
		m := env.MeasurePair(Pair{TX: tx, RX: best})
		measured[Pair{TX: tx, RX: best}] = true
		out = append(out, m)
		slots++

		if slot > env.TXBook.Size()*env.RXBook.Size() {
			break // defensive bound
		}
	}
	return out, nil
}

func vectorEnergy(y cmat.Vector) float64 {
	var e float64
	for _, v := range y {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

var _ Strategy = (*DigitalStrategy)(nil)
