package align

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mmwalign/internal/cmat"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
	runobs "mmwalign/internal/obs"
)

// WarmState carries the covariance estimate Q̂ across alignments of the
// same link. A strategy configured with a WarmState seeds its first
// estimation from the previous alignment's final Q̂ instead of starting
// blind, and writes its own final estimate back when it finishes —
// tracking-aware behavior for mobility scenarios where the channel at
// realignment k+1 is a perturbation of the channel at realignment k.
// The zero value is a valid cold start. A WarmState ties its strategy
// to one link: strategies sharing a WarmState must not run
// concurrently.
type WarmState struct {
	// Q is the carried-over estimate; nil until the first alignment
	// completes with a usable estimate.
	Q *cmat.Matrix
}

// ProposedConfig configures the paper's learning-based strategy.
type ProposedConfig struct {
	// J is the number of RX measurements per TX slot (the paper's J).
	// Default 8.
	J int
	// Estimator configures the covariance estimator. Gamma is filled
	// from the sounder when zero.
	Estimator covest.Options
	// Window bounds how many recent observations feed each estimation
	// (0 = use the full history). A bounded window keeps per-slot cost
	// flat over long searches.
	Window int
	// AutoMuGrid, when non-empty, selects the regularization weight µ
	// by holdout validation (covest.SelectMu) once enough measurements
	// have accumulated, overriding Estimator.Mu. Adds one estimation per
	// grid entry at selection time.
	AutoMuGrid []float64
	// Warm, when non-nil, carries Q̂ across successive alignments of the
	// same link (see WarmState). nil keeps the strategy stateless.
	Warm *WarmState
}

func (c ProposedConfig) withDefaults() ProposedConfig {
	if c.J == 0 {
		c.J = 8
	}
	return c
}

// ProposedStrategy is Algorithm 1 of the paper. Per TX slot i (TX beam
// chosen randomly without pair repetition):
//
//  1. The receiver picks the J−1 RX beams with the largest vᴴQ̂v under
//     the covariance estimate Q̂ carried over from the previous slot
//     (randomly for the very first slot) and measures them.
//  2. It re-estimates Q̂ from the accumulated energy measurements via the
//     nuclear-norm-regularized ML of Sec. IV-A.
//  3. The J-th measurement is taken on the best remaining beam under the
//     fresh estimate (eigen-beamforming restricted to the codebook,
//     Eq. 26).
//
// The final answer (extracted by the caller from the measurement record)
// is the pair with the best measured SNR, Eq. (30).
type ProposedStrategy struct {
	cfg ProposedConfig
	// name overrides the reported scheme name when non-empty (the
	// warm-start variant constructed by ForScheme reports
	// "proposed-warm" so figures can show both behaviors side by side).
	name string
}

// NewProposed creates the strategy with the given configuration.
func NewProposed(cfg ProposedConfig) *ProposedStrategy {
	return &ProposedStrategy{cfg: cfg.withDefaults()}
}

// Name implements Strategy.
func (s *ProposedStrategy) Name() string {
	if s.name != "" {
		return s.name
	}
	return "proposed"
}

// Run implements Strategy.
func (s *ProposedStrategy) Run(env *Env, budget int) ([]meas.Measurement, error) {
	return s.RunContext(context.Background(), env, budget)
}

// RunContext implements ContextStrategy. Cancellation stops the search
// at the next measurement or estimation boundary with the context's
// error. Estimator failures do NOT fail the run: when the covariance
// estimate becomes unavailable mid-trajectory (poisoned measurement
// energies, a degenerate solve), the remaining budget degrades to
// scan-order pair selection — the paper's Scan policy, which every
// scheme reduces to at 100% search rate — so one bad measurement stream
// costs estimation quality, never the whole drop.
func (s *ProposedStrategy) RunContext(ctx context.Context, env *Env, budget int) ([]meas.Measurement, error) {
	budget, err := clampBudget(env, budget)
	if err != nil {
		return nil, err
	}
	// Instrumentation is purely observational: spans and counters never
	// touch env.Src or the measurement stream, so an instrumented run is
	// numerically identical to an uninstrumented one.
	rec := runobs.From(ctx)
	estPhase := rec.Phase("estimation")
	selPhase := rec.Phase("selection")

	opts := s.cfg.Estimator
	if opts.Gamma == 0 {
		opts.Gamma = env.Sounder.Gamma()
	}
	est, err := covest.NewEstimator(env.RXBook.Array().Elements(), opts)
	if err != nil {
		return nil, fmt.Errorf("align: proposed: %w", err)
	}
	muSelected := len(s.cfg.AutoMuGrid) == 0

	nRX := env.RXBook.Size()
	measured := make(map[Pair]bool, budget)
	scr := &selectScratch{}
	var out []meas.Measurement
	var obs []covest.Observation
	var qhat *cmat.Matrix
	if s.cfg.Warm != nil {
		// Seed from the previous alignment's estimate (nil on a cold
		// start) and carry whatever this run learned back out on every
		// exit path — including graceful scan degradation, where the
		// last good estimate is still the best knowledge of the link.
		qhat = s.cfg.Warm.Q
		defer func() {
			if qhat != nil && qhat != s.cfg.Warm.Q {
				s.cfg.Warm.Q = qhat.Clone()
			}
		}()
	}

	// Random TX visiting order, cycled if the budget outlasts one pass.
	txOrder := env.Src.Perm(env.TXBook.Size())
	slot := 0

	take := func(p Pair) {
		m := env.MeasurePair(p)
		measured[p] = true
		out = append(out, m)
		obs = append(obs, covest.Observation{V: env.RXBook.Beam(p.RX).Weights, Energy: m.Energy})
	}

	for len(out) < budget {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tx := txOrder[slot%len(txOrder)]
		slot++
		avail := s.unmeasuredRX(measured, tx, nRX)
		if len(avail) == 0 {
			if slot > len(txOrder)*nRX {
				break // everything measured
			}
			continue
		}

		// Phase 1: first J−1 measurements of the slot.
		want := s.cfg.J - 1
		if want < 1 {
			want = 1
		}
		selSpan := selPhase.Start()
		sel := s.selectBeams(env, qhat, avail, want, scr)
		selSpan.End()
		for _, rx := range sel {
			if len(out) == budget {
				return out, nil
			}
			take(Pair{TX: tx, RX: rx})
		}

		// Phase 2: estimate Q̂ from the (windowed) history.
		win := obs
		if s.cfg.Window > 0 && len(obs) > s.cfg.Window {
			win = obs[len(obs)-s.cfg.Window:]
		}
		// One-shot µ selection once enough data has accumulated. The
		// holdout runs on the same bounded window the estimator sees —
		// scoring µ on history the estimator will never be shown would
		// tune the regularizer for a different problem.
		if !muSelected && len(obs) >= 4*s.cfg.J {
			muSpan := estPhase.Start()
			mu, muErr := covest.SelectMu(env.RXBook.Array().Elements(), win, opts, s.cfg.AutoMuGrid)
			muSpan.End()
			if muErr == nil {
				rec.Counter("mu_selections").Add(1)
				opts.Mu = mu
				if est2, e2 := covest.NewEstimator(env.RXBook.Array().Elements(), opts); e2 == nil {
					est = est2
				}
			} else {
				// On selection failure keep the configured µ; the search
				// continues with its default regularization.
				rec.Counter("mu_select_failures").Add(1)
			}
			muSelected = true
		}
		estSpan := estPhase.Start()
		q, stats, estErr := est.EstimateContext(ctx, win, qhat)
		estSpan.End()
		rec.AddSolve(solveSample(stats))
		switch {
		case estErr == nil && isFiniteObjective(stats):
			qhat = q
		case estErr == nil:
			// The solver returned but its state is degenerate (non-finite
			// objective): abandon estimation for this drop and scan out
			// the remaining budget.
			rec.Counter("estimator_fallbacks").Add(1)
			return scanRemaining(ctx, env, measured, out, budget)
		case errors.Is(estErr, context.Canceled) || errors.Is(estErr, context.DeadlineExceeded):
			return nil, estErr
		case errors.Is(estErr, cmat.ErrNoConvergence):
			// Keep the previous estimate; the search degrades gracefully
			// to its earlier knowledge rather than failing the run.
			rec.Counter("estimator_stale_keeps").Add(1)
		default:
			// Estimator failure (e.g. poisoned energies in the history):
			// the estimation pipeline is unusable for the rest of this
			// drop, so fall back to scan-order selection instead of
			// erroring the run.
			rec.Counter("estimator_fallbacks").Add(1)
			return scanRemaining(ctx, env, measured, out, budget)
		}

		// Phase 3: J-th measurement on the best remaining beam under the
		// fresh estimate.
		if len(out) == budget {
			return out, nil
		}
		avail = s.unmeasuredRX(measured, tx, nRX)
		if len(avail) == 0 {
			continue
		}
		selSpan = selPhase.Start()
		sel = s.selectBeams(env, qhat, avail, 1, scr)
		selSpan.End()
		take(Pair{TX: tx, RX: sel[0]})
	}
	return out, nil
}

// isFiniteObjective reports whether a completed solve left a finite
// objective — the O(1) degeneracy check on a fresh estimate.
func isFiniteObjective(stats covest.Stats) bool {
	return !math.IsNaN(stats.Objective) && !math.IsInf(stats.Objective, 0)
}

// unmeasuredRX lists RX beams not yet paired with tx.
func (s *ProposedStrategy) unmeasuredRX(measured map[Pair]bool, tx, nRX int) []int {
	var out []int
	for rx := 0; rx < nRX; rx++ {
		if !measured[Pair{TX: tx, RX: rx}] {
			out = append(out, rx)
		}
	}
	return out
}

// scoredBeam pairs a codebook index with its quadratic-form score for
// the partial selection sort in selectBeams.
type scoredBeam struct {
	idx int
	val float64
}

// selectScratch carries the reusable buffers for one run's selectBeams
// calls: the whole-codebook score vector and the candidate list. It
// lives in RunContext rather than on the strategy so ProposedStrategy
// stays stateless and safe to share across concurrent experiment cells.
type selectScratch struct {
	all    []float64
	scored []scoredBeam
}

// selectBeams picks k beams from avail: the top positive scorers under
// vᴴQ̂v when an informative estimate exists, with random exploration
// otherwise. Beams the estimate assigns (numerically) zero energy are
// never preferred by index order — an all-zero Q̂ (common in early slots,
// when the regularizer has thresholded everything away) must behave like
// the paper's "random for the very first TX slot" rule, not like a
// deterministic sweep of beam 0, 1, 2, …. Scoring batches the whole
// codebook through one GEMM (Codebook.QuadFormScoresInto), which is
// bitwise identical to the per-beam QuadForm it replaces; the selection
// logic below is untouched so fixed-seed trajectories do not move.
func (s *ProposedStrategy) selectBeams(env *Env, qhat *cmat.Matrix, avail []int, k int, scr *selectScratch) []int {
	if k > len(avail) {
		k = len(avail)
	}
	randomPick := func(from []int, n int) []int {
		picked := env.Src.Perm(len(from))[:n]
		out := make([]int, n)
		for i, p := range picked {
			out[i] = from[p]
		}
		return out
	}
	if qhat == nil {
		return randomPick(avail, k)
	}
	if scr == nil {
		scr = &selectScratch{}
	}

	if cap(scr.all) < env.RXBook.Size() {
		scr.all = make([]float64, env.RXBook.Size())
	}
	all := scr.all[:env.RXBook.Size()]
	env.RXBook.QuadFormScoresInto(qhat, all)

	scores := scr.scored[:0]
	var maxScore float64
	for _, idx := range avail {
		v := all[idx]
		scores = append(scores, scoredBeam{idx, v})
		if v > maxScore {
			maxScore = v
		}
	}
	scr.scored = scores
	if maxScore <= 0 {
		return randomPick(avail, k)
	}
	// Partial selection sort for the top-k positive scorers.
	floor := 1e-9 * maxScore
	out := make([]int, 0, k)
	for n := 0; n < k; n++ {
		best := n
		for i := n + 1; i < len(scores); i++ {
			if scores[i].val > scores[best].val {
				best = i
			}
		}
		scores[n], scores[best] = scores[best], scores[n]
		if scores[n].val <= floor {
			break // remaining beams carry no estimated energy
		}
		out = append(out, scores[n].idx)
	}
	if len(out) < k {
		// Fill the remainder with random exploration over the rest.
		taken := make(map[int]bool, len(out))
		for _, idx := range out {
			taken[idx] = true
		}
		var rest []int
		for _, sc := range scores {
			if !taken[sc.idx] {
				rest = append(rest, sc.idx)
			}
		}
		out = append(out, randomPick(rest, k-len(out))...)
	}
	return out
}

var _ ContextStrategy = (*ProposedStrategy)(nil)
