package align

import (
	"testing"
)

func TestDigitalName(t *testing.T) {
	if got := NewDigital().Name(); got != "digital" {
		t.Errorf("Name = %q", got)
	}
}

func TestDigitalRespectsBudget(t *testing.T) {
	for _, budget := range []int{1, 4, 17, 64} {
		env := testEnv(t, 70, 1, false)
		ms, err := NewDigital().Run(env, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) > budget {
			t.Fatalf("budget %d: consumed %d slots", budget, len(ms))
		}
	}
}

func TestDigitalMixesSnapshotsAndSoundings(t *testing.T) {
	env := testEnv(t, 71, 1, false)
	ms, err := NewDigital().Run(env, 16) // 4 TX beams × (3 snapshots + 1 sounding)
	if err != nil {
		t.Fatal(err)
	}
	snapshots, soundings := 0, 0
	for _, m := range ms {
		if m.RXBeam == SectorBeam {
			snapshots++
		} else {
			soundings++
		}
	}
	if snapshots != 12 || soundings != 4 {
		t.Errorf("snapshots=%d soundings=%d, want 12/4", snapshots, soundings)
	}
}

func TestDigitalFindsPlantedPair(t *testing.T) {
	env, want := plantedEnv(t, 72, 100)
	env.Sounder.SetSnapshots(8)
	tr, err := Evaluate(env, NewDigital(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BestPair != want {
		t.Errorf("best pair %+v, want %+v (loss %.2f)", tr.BestPair, want, tr.FinalLossDB())
	}
}

func TestDigitalBeatsAnalogProposedAtLowBudget(t *testing.T) {
	// With N observations per snapshot the digital reference should
	// dominate the analog proposed scheme at tight budgets, averaged
	// over drops — the hardware-cost story of the paper's Sec. III.
	if testing.Short() {
		t.Skip("statistical comparison in -short mode")
	}
	var digSum, propSum float64
	const drops = 6
	for d := int64(0); d < drops; d++ {
		envA := testEnv(t, 200+d, 1, false)
		trA, err := Evaluate(envA, NewDigital(), 24)
		if err != nil {
			t.Fatal(err)
		}
		envB := testEnv(t, 200+d, 1, false)
		trB, err := Evaluate(envB, NewProposed(ProposedConfig{J: 4}), 24)
		if err != nil {
			t.Fatal(err)
		}
		digSum += trA.FinalLossDB()
		propSum += trB.FinalLossDB()
	}
	if digSum/drops > propSum/drops+1 {
		t.Errorf("digital mean loss %.2f dB worse than analog proposed %.2f dB",
			digSum/drops, propSum/drops)
	}
}

func TestDigitalCustomConfig(t *testing.T) {
	env := testEnv(t, 73, 1, false)
	s := &DigitalStrategy{SnapshotsPerTX: 1, Shrinkage: 0.5}
	ms, err := s.Run(env, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Error("no measurements taken")
	}
}

func TestDigitalInvalidConfigDefaults(t *testing.T) {
	env := testEnv(t, 74, 1, false)
	s := &DigitalStrategy{SnapshotsPerTX: -1, Shrinkage: 7}
	if _, err := s.Run(env, 8); err != nil {
		t.Fatal(err)
	}
}
