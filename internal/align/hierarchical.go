package align

import (
	"mmwalign/internal/antenna"
	"mmwalign/internal/meas"
)

// SectorBeam is the RXBeam marker for measurements taken with composite
// sector codewords during a hierarchical descent; such measurements are
// not codebook pairs and cannot be selected as the final answer, but
// they consume measurement budget like any other sounding.
const SectorBeam = -1

// HierarchicalStrategy is the multi-resolution search extension (in the
// style of Hur et al., reference [11] of the paper): for each randomly
// chosen TX beam, the receiver descends a binary hierarchy of sector
// beams — sounding both children of the current sector and following the
// stronger response — until it reaches a leaf of the flat RX codebook,
// which it sounds as a regular pair. Descents cost O(log card(V))
// soundings per TX beam instead of J, but wide sector beams have lower
// gain and are more error-prone at low SNR, which is the trade-off the
// comparison benches quantify.
type HierarchicalStrategy struct {
	hier *antenna.HierCodebook
}

// NewHierarchical creates the strategy over the given RX hierarchy. The
// hierarchy's flat codebook must be the environment's RX codebook.
func NewHierarchical(h *antenna.HierCodebook) *HierarchicalStrategy {
	return &HierarchicalStrategy{hier: h}
}

// Name implements Strategy.
func (s *HierarchicalStrategy) Name() string { return "hierarchical" }

// Run implements Strategy.
func (s *HierarchicalStrategy) Run(env *Env, budget int) ([]meas.Measurement, error) {
	budget, err := clampBudget(env, budget)
	if err != nil {
		return nil, err
	}
	measured := make(map[Pair]bool)
	var out []meas.Measurement
	txOrder := env.Src.Perm(env.TXBook.Size())
	slot := 0

	for len(out) < budget {
		tx := txOrder[slot%len(txOrder)]
		slot++
		u := env.TXBook.Beam(tx).Weights

		// Descend: choose the best root, then the best child at every
		// level. Sector soundings carry RXBeam = SectorBeam.
		nodes := s.hier.Roots
		var current *antenna.HierBeam
		for len(nodes) > 0 && len(out) < budget {
			best, bestEnergy := -1, -1.0
			for i, n := range nodes {
				if len(out) == budget {
					break
				}
				rxMark := SectorBeam
				if n.LeafIndex >= 0 {
					rxMark = n.LeafIndex
					if measured[Pair{TX: tx, RX: rxMark}] {
						continue // no pair repetition
					}
				}
				m := env.Sounder.Measure(tx, rxMark, u, n.Weights)
				if rxMark >= 0 {
					measured[Pair{TX: tx, RX: rxMark}] = true
				}
				out = append(out, m)
				if m.Energy > bestEnergy {
					best, bestEnergy = i, m.Energy
				}
			}
			if best < 0 {
				break
			}
			current = nodes[best]
			nodes = current.Children
		}
		if slot > env.TXBook.Size()*4 && len(out) == 0 {
			break // defensive: nothing measurable
		}
	}
	if len(out) > budget {
		out = out[:budget]
	}
	return out, nil
}

var _ Strategy = (*HierarchicalStrategy)(nil)
