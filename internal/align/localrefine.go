package align

import (
	"sort"

	"mmwalign/internal/meas"
)

// LocalRefineStrategy implements a numerical divide-and-conquer search
// in the style of B. Li et al. (reference [13] of the paper): spend part
// of the budget probing random pairs to localize promising regions of
// the joint beam grid, then hill-climb — repeatedly sounding the
// unmeasured spatial neighbors of the best pairs measured so far. It is
// the "optimize R(u,v) as a black-box function" alternative to the
// paper's model-based approach and serves as an additional comparison
// point in the benches.
type LocalRefineStrategy struct {
	// ExploreFrac is the fraction of the budget spent on the random
	// probing phase (default 1/4).
	ExploreFrac float64
}

// NewLocalRefine creates the strategy with the default exploration
// fraction.
func NewLocalRefine() *LocalRefineStrategy {
	return &LocalRefineStrategy{ExploreFrac: 0.25}
}

// Name implements Strategy.
func (s *LocalRefineStrategy) Name() string { return "local-refine" }

// Run implements Strategy.
func (s *LocalRefineStrategy) Run(env *Env, budget int) ([]meas.Measurement, error) {
	budget, err := clampBudget(env, budget)
	if err != nil {
		return nil, err
	}
	frac := s.ExploreFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.25
	}
	explore := int(frac * float64(budget))
	if explore < 1 {
		explore = 1
	}

	nRX := env.RXBook.Size()
	t := env.TotalPairs()
	measured := make(map[Pair]bool, budget)
	var out []meas.Measurement

	take := func(p Pair) meas.Measurement {
		m := env.MeasurePair(p)
		measured[p] = true
		out = append(out, m)
		return m
	}

	// Phase 1: random probing.
	perm := env.Src.Perm(t)
	for _, k := range perm {
		if len(out) >= explore {
			break
		}
		take(Pair{TX: k / nRX, RX: k % nRX})
	}

	// Phase 2: hill-climb from the best measured pairs. Keep the
	// measurement record sorted by energy (descending) lazily: each
	// round, walk the current ranking and sound the first unmeasured
	// neighbor found.
	randFill := explore // position in perm for random fallback
	for len(out) < budget {
		ranked := make([]meas.Measurement, len(out))
		copy(ranked, out)
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].Energy > ranked[j].Energy })

		next, ok := s.firstUnmeasuredNeighbor(env, ranked, measured)
		if !ok {
			// Every neighbor of every measured pair is exhausted: fall
			// back to random unmeasured pairs.
			for randFill < t {
				k := perm[randFill]
				randFill++
				p := Pair{TX: k / nRX, RX: k % nRX}
				if !measured[p] {
					next, ok = p, true
					break
				}
			}
			if !ok {
				break // everything measured
			}
		}
		take(next)
	}
	return out, nil
}

// firstUnmeasuredNeighbor scans the energy-ranked measurements and
// returns the first unmeasured grid neighbor (one step in TX or RX).
func (s *LocalRefineStrategy) firstUnmeasuredNeighbor(env *Env, ranked []meas.Measurement, measured map[Pair]bool) (Pair, bool) {
	for _, m := range ranked {
		if m.TXBeam < 0 || m.RXBeam < 0 {
			continue
		}
		for _, txn := range env.TXBook.Neighbors(m.TXBeam) {
			if p := (Pair{TX: txn, RX: m.RXBeam}); !measured[p] {
				return p, true
			}
		}
		for _, rxn := range env.RXBook.Neighbors(m.RXBeam) {
			if p := (Pair{TX: m.TXBeam, RX: rxn}); !measured[p] {
				return p, true
			}
		}
	}
	return Pair{}, false
}

var _ Strategy = (*LocalRefineStrategy)(nil)
