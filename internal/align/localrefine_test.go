package align

import (
	"testing"
)

func TestLocalRefineName(t *testing.T) {
	if got := NewLocalRefine().Name(); got != "local-refine" {
		t.Errorf("Name = %q", got)
	}
}

func TestLocalRefineRespectsBudgetAndNoRepeats(t *testing.T) {
	for _, budget := range []int{1, 5, 40, 128, 1000} {
		env := testEnv(t, 40, 1, false)
		ms, err := NewLocalRefine().Run(env, budget)
		if err != nil {
			t.Fatal(err)
		}
		want := budget
		if want > env.TotalPairs() {
			want = env.TotalPairs()
		}
		if len(ms) != want {
			t.Fatalf("budget %d: took %d measurements, want %d", budget, len(ms), want)
		}
		seen := make(map[Pair]bool)
		for _, m := range ms {
			p := Pair{TX: m.TXBeam, RX: m.RXBeam}
			if seen[p] {
				t.Fatalf("pair %+v re-measured", p)
			}
			seen[p] = true
		}
	}
}

func TestLocalRefineConcentratesNearBestPair(t *testing.T) {
	// On a planted, near-noiseless channel the refinement phase must
	// cluster measurements around the optimal pair: the selected pair
	// should be exactly the planted one with a modest budget.
	env, want := plantedEnv(t, 41, 100)
	env.Sounder.SetSnapshots(16)
	tr, err := Evaluate(env, NewLocalRefine(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BestPair != want {
		t.Errorf("best pair %+v, want %+v (loss %.2f dB)", tr.BestPair, want, tr.FinalLossDB())
	}
}

func TestLocalRefineInvalidExploreFracDefaults(t *testing.T) {
	env := testEnv(t, 42, 1, false)
	s := &LocalRefineStrategy{ExploreFrac: 2.5}
	ms, err := s.Run(env, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 20 {
		t.Errorf("took %d measurements", len(ms))
	}
}

func TestLocalRefineBeatsRandomOnPlantedChannel(t *testing.T) {
	// Hill climbing should reach the planted optimum with fewer
	// measurements than random sampling needs on average. Compare
	// first-passage to 0.01 dB across a few seeds.
	var refineSum, randomSum int
	const runs = 5
	for seed := int64(0); seed < runs; seed++ {
		envA, _ := plantedEnv(t, 50+seed, 100)
		envA.Sounder.SetSnapshots(16)
		trA, err := Evaluate(envA, NewLocalRefine(), 100)
		if err != nil {
			t.Fatal(err)
		}
		envB, _ := plantedEnv(t, 50+seed, 100)
		envB.Sounder.SetSnapshots(16)
		trB, err := Evaluate(envB, RandomStrategy{}, 100)
		if err != nil {
			t.Fatal(err)
		}
		fa, fb := trA.FirstWithin(0.01), trB.FirstWithin(0.01)
		if fa < 0 {
			fa = 101
		}
		if fb < 0 {
			fb = 101
		}
		refineSum += fa
		randomSum += fb
	}
	if refineSum > randomSum {
		t.Errorf("local refine mean first-passage %d > random %d", refineSum/runs, randomSum/runs)
	}
}
