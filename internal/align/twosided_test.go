package align

import (
	"testing"
)

func TestTwoSidedName(t *testing.T) {
	if got := NewTwoSided(ProposedConfig{}).Name(); got != "two-sided" {
		t.Errorf("Name = %q", got)
	}
}

func TestTwoSidedExploresAllTXBeamsEventually(t *testing.T) {
	// With a full budget, every TX beam must be visited (exploration
	// slots guarantee coverage).
	env := testEnv(t, 30, 1, false)
	ms, err := NewTwoSided(ProposedConfig{J: 4}).Run(env, env.TotalPairs())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, m := range ms {
		seen[m.TXBeam] = true
	}
	if len(seen) != env.TXBook.Size() {
		t.Errorf("visited %d of %d TX beams", len(seen), env.TXBook.Size())
	}
}

func TestTwoSidedRevisitsStrongTXBeam(t *testing.T) {
	// On a planted channel with one dominant TX direction and plenty of
	// budget, exploitation slots must concentrate on that TX beam: it
	// should collect at least as many measurements as the average beam.
	env, want := plantedEnv(t, 31, 100)
	env.Sounder.SetSnapshots(8)
	ms, err := NewTwoSided(ProposedConfig{J: 4}).Run(env, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, m := range ms {
		counts[m.TXBeam]++
	}
	avg := float64(len(ms)) / float64(env.TXBook.Size())
	if float64(counts[want.TX]) < avg {
		t.Errorf("dominant TX beam %d measured %d times, below average %.1f",
			want.TX, counts[want.TX], avg)
	}
}

func TestTwoSidedFindsPlantedPair(t *testing.T) {
	env, want := plantedEnv(t, 32, 100)
	env.Sounder.SetSnapshots(16)
	tr, err := Evaluate(env, NewTwoSided(ProposedConfig{J: 4}), 48)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BestPair != want {
		t.Errorf("best pair %+v, want %+v (loss %.2f dB)", tr.BestPair, want, tr.FinalLossDB())
	}
	if tr.FinalLossDB() > 0.01 {
		t.Errorf("loss = %g dB", tr.FinalLossDB())
	}
}

func TestTwoSidedComparableToProposedOnAverage(t *testing.T) {
	// The extension should not be systematically worse than the base
	// scheme at a moderate budget (it exists because TX feedback can
	// only add information). Allow generous slack: this is a sanity
	// check, not a benchmark.
	if testing.Short() {
		t.Skip("statistical comparison in -short mode")
	}
	var propSum, twoSum float64
	const drops = 8
	for d := int64(0); d < drops; d++ {
		envA := testEnv(t, 100+d, 1, false)
		trA, err := Evaluate(envA, NewProposed(ProposedConfig{J: 4}), 40)
		if err != nil {
			t.Fatal(err)
		}
		envB := testEnv(t, 100+d, 1, false)
		trB, err := Evaluate(envB, NewTwoSided(ProposedConfig{J: 4}), 40)
		if err != nil {
			t.Fatal(err)
		}
		propSum += trA.FinalLossDB()
		twoSum += trB.FinalLossDB()
	}
	if twoSum/drops > propSum/drops+6 {
		t.Errorf("two-sided mean loss %.2f dB far above proposed %.2f dB",
			twoSum/drops, propSum/drops)
	}
}
