package align

import (
	"mmwalign/internal/covest"
	"mmwalign/internal/obs"
)

// solveSample flattens one covest.Stats into the observability layer's
// solver sample, so the run manifest can aggregate proximal iterations,
// eigendecomposition counts, divergence restarts and guardrail
// recoveries across every estimation of a run.
func solveSample(st covest.Stats) obs.SolveSample {
	return obs.SolveSample{
		Iters:          st.Iters,
		EigenDecomps:   st.EigenDecomps,
		ObjectiveEvals: st.ObjectiveEvals,
		GradientEvals:  st.GradientEvals,
		Backtracks:     st.Backtracks,
		Restarts:       st.Diagnostics.DivergenceRestarts,
		Rank:           st.Rank,
		SubspaceDim:    st.SubspaceDim,
		Recovered:      st.Diagnostics.Recovered,
		Degraded:       st.Diagnostics.Degraded(),
	}
}
