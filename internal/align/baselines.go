package align

import (
	"context"

	"mmwalign/internal/meas"
)

// RandomStrategy sounds uniformly random beam pairs without repetition —
// the "Random" baseline of Sec. V.
type RandomStrategy struct{}

// Name implements Strategy.
func (RandomStrategy) Name() string { return "random" }

// Run implements Strategy.
func (s RandomStrategy) Run(env *Env, budget int) ([]meas.Measurement, error) {
	return s.RunContext(context.Background(), env, budget)
}

// RunContext implements ContextStrategy.
func (RandomStrategy) RunContext(ctx context.Context, env *Env, budget int) ([]meas.Measurement, error) {
	budget, err := clampBudget(env, budget)
	if err != nil {
		return nil, err
	}
	t := env.TotalPairs()
	perm := env.Src.Perm(t)
	out := make([]meas.Measurement, 0, budget)
	nRX := env.RXBook.Size()
	for _, k := range perm[:budget] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := Pair{TX: k / nRX, RX: k % nRX}
		out = append(out, env.MeasurePair(p))
	}
	return out, nil
}

// ScanStrategy starts from a random beam pair and sounds pairs in
// spatially adjacent order — the "Scan" baseline of Sec. V. The scan
// follows a boustrophedon raster over the joint (TX, RX) beam-pair grid:
// the RX beam snakes through its codebook grid, and each time the RX
// raster is exhausted the TX beam advances one step along its own snake
// order, so consecutive measurements always differ by one spatially
// adjacent beam step at exactly one end.
type ScanStrategy struct{}

// Name implements Strategy.
func (ScanStrategy) Name() string { return "scan" }

// Run implements Strategy.
func (s ScanStrategy) Run(env *Env, budget int) ([]meas.Measurement, error) {
	return s.RunContext(context.Background(), env, budget)
}

// RunContext implements ContextStrategy.
func (ScanStrategy) RunContext(ctx context.Context, env *Env, budget int) ([]meas.Measurement, error) {
	budget, err := clampBudget(env, budget)
	if err != nil {
		return nil, err
	}
	txOrder := env.TXBook.SnakeOrder()
	rxOrder := env.RXBook.SnakeOrder()
	nTX, nRX := len(txOrder), len(rxOrder)

	// Random starting pair, expressed as a position in the joint raster.
	start := env.Src.Intn(nTX * nRX)
	out := make([]meas.Measurement, 0, budget)
	for k := 0; k < budget; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pos := (start + k) % (nTX * nRX)
		ti := pos / nRX
		ri := pos % nRX
		// Reverse the RX sweep on odd TX steps so the first RX beam of a
		// new TX slot is spatially adjacent to the last one measured.
		if ti%2 == 1 {
			ri = nRX - 1 - ri
		}
		p := Pair{TX: txOrder[ti], RX: rxOrder[ri]}
		out = append(out, env.MeasurePair(p))
	}
	return out, nil
}

// ExhaustiveStrategy sounds every pair in raster order — the paper's
// exhaustive scan, which all schemes reduce to at 100% search rate.
type ExhaustiveStrategy struct{}

// Name implements Strategy.
func (ExhaustiveStrategy) Name() string { return "exhaustive" }

// Run implements Strategy. The budget still applies: with budget < T it
// is a deterministic partial raster from the first beam pair.
func (s ExhaustiveStrategy) Run(env *Env, budget int) ([]meas.Measurement, error) {
	return s.RunContext(context.Background(), env, budget)
}

// RunContext implements ContextStrategy.
func (ExhaustiveStrategy) RunContext(ctx context.Context, env *Env, budget int) ([]meas.Measurement, error) {
	budget, err := clampBudget(env, budget)
	if err != nil {
		return nil, err
	}
	txOrder := env.TXBook.SnakeOrder()
	rxOrder := env.RXBook.SnakeOrder()
	out := make([]meas.Measurement, 0, budget)
	for _, ti := range txOrder {
		for _, ri := range rxOrder {
			if len(out) == budget {
				return out, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out = append(out, env.MeasurePair(Pair{TX: ti, RX: ri}))
		}
	}
	return out, nil
}

var (
	_ ContextStrategy = RandomStrategy{}
	_ ContextStrategy = ScanStrategy{}
	_ ContextStrategy = ExhaustiveStrategy{}
)
