package align

import (
	"context"
	"math"
	"testing"

	"mmwalign/internal/cmat"
	"mmwalign/internal/meas"
	runobs "mmwalign/internal/obs"
)

// poisonProber corrupts the energy of exactly one measurement (by take
// order) and delegates everything else to the wrapped sounder. A NaN
// energy is rejected by the covariance estimator with ObservationError,
// so any estimation or µ-selection whose input window still contains the
// poisoned observation fails loudly.
type poisonProber struct {
	meas.Prober
	poisonIdx int
	n         int
}

func (p *poisonProber) Measure(tx, rx int, u, v cmat.Vector) meas.Measurement {
	m := p.Prober.Measure(tx, rx, u, v)
	if p.n == p.poisonIdx {
		m.Energy = math.NaN()
	}
	p.n++
	return m
}

// TestProposedWindowedMuSelection is the regression test for the
// Window+AutoMuGrid interaction: µ-selection must run on the same
// bounded window the estimator sees, not the full history. The first
// measurement is poisoned; with Window=6 every estimation window has
// slid past it by the time estimation starts (J−1=7 measurements), so
// both the per-slot estimates and the one-shot µ-selection must succeed.
// Before the fix SelectMu received the full history — poisoned
// observation included — and always failed at realistic windows.
func TestProposedWindowedMuSelection(t *testing.T) {
	env := testEnv(t, 7, 1, false)
	env.Sounder = &poisonProber{Prober: env.Sounder}

	s := NewProposed(ProposedConfig{
		J:          8,
		Window:     6,
		AutoMuGrid: []float64{0.5, 2},
	})
	rec := runobs.New()
	ctx := runobs.Into(context.Background(), rec)

	// µ-selection fires at the first estimation boundary with ≥4·J=32
	// accumulated measurements: slot 5, after 39 takes. Budget 48 leaves
	// headroom past that point.
	ms, err := s.RunContext(ctx, env, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 48 {
		t.Fatalf("took %d measurements, want 48", len(ms))
	}

	if got := rec.Counter("mu_selections").Value(); got != 1 {
		t.Errorf("mu_selections = %d, want 1 (windowed selection must succeed)", got)
	}
	if got := rec.Counter("mu_select_failures").Value(); got != 0 {
		t.Errorf("mu_select_failures = %d, want 0: selection saw observations outside the window", got)
	}
	// Guard the test's own premise: the per-slot estimator, which runs on
	// the same window, must never have tripped over the poisoned
	// observation either.
	if got := rec.Counter("estimator_fallbacks").Value(); got != 0 {
		t.Errorf("estimator_fallbacks = %d, want 0: estimation window leaked the poisoned observation", got)
	}
}

// TestProposedFullHistoryHitsPoison pins the counter contract from the
// other side: with an unbounded window (Window=0) the poisoned first
// measurement stays in every estimation input, so the strategy must
// degrade to scan-order selection (estimator_fallbacks) instead of
// erroring the run, and µ-selection is never reached.
func TestProposedFullHistoryHitsPoison(t *testing.T) {
	env := testEnv(t, 7, 1, false)
	env.Sounder = &poisonProber{Prober: env.Sounder}

	s := NewProposed(ProposedConfig{
		J:          8,
		AutoMuGrid: []float64{0.5, 2},
	})
	rec := runobs.New()
	ctx := runobs.Into(context.Background(), rec)

	ms, err := s.RunContext(ctx, env, 48)
	if err != nil {
		t.Fatalf("poisoned history must degrade, not fail: %v", err)
	}
	if len(ms) != 48 {
		t.Fatalf("took %d measurements, want 48", len(ms))
	}
	if got := rec.Counter("estimator_fallbacks").Value(); got == 0 {
		t.Error("estimator_fallbacks = 0, want ≥1: full-history estimation should hit the poisoned observation")
	}
	if got := rec.Counter("mu_selections").Value(); got != 0 {
		t.Errorf("mu_selections = %d, want 0: run degrades before the selection threshold", got)
	}
}
