package align

import (
	"context"
	"fmt"
	"math"

	"mmwalign/internal/obs"
)

// Trajectory records how the quality of the best pair found evolves as a
// strategy spends its measurement budget. LossDB[l] is the paper's SNR
// loss metric (Eq. 31, reported as a non-negative dB degradation) of the
// best-measured pair after l+1 measurements; positions before any
// codebook pair has been sounded hold +Inf.
type Trajectory struct {
	// Scheme is the strategy name.
	Scheme string
	// OptPair and OptSNR are the oracle optimum (Eq. 2).
	OptPair Pair
	// OptSNR is the true expected SNR of the optimal pair.
	OptSNR float64
	// LossDB[l] is the SNR loss after l+1 measurements.
	LossDB []float64
	// BestPair is the pair the strategy would report at the end of the
	// run (argmax of measured SNR, Eq. 30).
	BestPair Pair
	// BestMeasuredSNR is the measured SNR estimate that made BestPair
	// win — the quantity a receiver can actually report to the MAC.
	BestMeasuredSNR float64
	// BestTrueSNR is the ground-truth SNR of BestPair.
	BestTrueSNR float64
}

// SearchRate converts a measurement count into the paper's search-rate
// metric L/T for this trajectory's environment size.
func (tr Trajectory) SearchRate(l int, totalPairs int) float64 {
	return float64(l) / float64(totalPairs)
}

// FinalLossDB returns the loss after the full budget, or +Inf for an
// empty trajectory.
func (tr Trajectory) FinalLossDB() float64 {
	if len(tr.LossDB) == 0 {
		return math.Inf(1)
	}
	return tr.LossDB[len(tr.LossDB)-1]
}

// FirstWithin returns the smallest measurement count whose loss is at or
// below target (dB), or -1 if the trajectory never reaches it. This is
// the first-passage statistic behind the cost-efficiency figures.
func (tr Trajectory) FirstWithin(targetDB float64) int {
	for l, loss := range tr.LossDB {
		if loss <= targetDB {
			return l + 1
		}
	}
	return -1
}

// Evaluate runs a strategy once and scores its trajectory against the
// oracle optimum. The strategy selects its answer from measured SNR
// estimates only; the oracle and true SNRs are used purely for scoring.
// Evaluate is the non-cancellable convenience form of EvaluateContext.
func Evaluate(env *Env, s Strategy, budget int) (Trajectory, error) {
	return EvaluateContext(context.Background(), env, s, budget)
}

// EvaluateContext is Evaluate with cooperative cancellation: the run
// stops cleanly at the next measurement or estimation boundary when ctx
// is cancelled or its deadline passes, returning the context's error.
func EvaluateContext(ctx context.Context, env *Env, s Strategy, budget int) (Trajectory, error) {
	rec := obs.From(ctx)
	oracleSpan := rec.Phase("oracle").Start()
	optPair, optSNR := Oracle(env)
	oracleSpan.End()
	ms, err := runStrategy(ctx, env, s, budget)
	if err != nil {
		if ctx.Err() != nil {
			// Cancellation is not a strategy failure: surface the bare
			// context error so callers can match errors.Is(err,
			// context.Canceled) across every layer.
			return Trajectory{}, err
		}
		return Trajectory{}, fmt.Errorf("align: %s run: %w", s.Name(), err)
	}

	tr := Trajectory{
		Scheme:  s.Name(),
		OptPair: optPair,
		OptSNR:  optSNR,
		LossDB:  make([]float64, 0, len(ms)),
	}
	bestEst := math.Inf(-1)
	haveBest := false
	for _, m := range ms {
		// Sector soundings (hierarchical descent) occupy budget but are
		// not selectable pairs.
		if m.TXBeam >= 0 && m.RXBeam >= 0 {
			if est := m.SNREstimate(); est > bestEst || !haveBest {
				bestEst = est
				tr.BestPair = Pair{TX: m.TXBeam, RX: m.RXBeam}
				tr.BestMeasuredSNR = est
				tr.BestTrueSNR = TrueSNROf(env, tr.BestPair)
				haveBest = true
			}
		}
		if !haveBest {
			tr.LossDB = append(tr.LossDB, math.Inf(1))
			continue
		}
		tr.LossDB = append(tr.LossDB, lossDB(tr.BestTrueSNR, optSNR))
	}
	if !haveBest {
		return tr, fmt.Errorf("align: %s measured no codebook pairs", s.Name())
	}
	rec.Counter("alignment_runs").Add(1)
	rec.Counter("pairs_measured").Add(int64(len(ms)))
	return tr, nil
}

// lossDB computes the non-negative SNR degradation of snr vs opt in dB.
func lossDB(snr, opt float64) float64 {
	if snr <= 0 {
		return math.Inf(1)
	}
	l := 10 * math.Log10(opt/snr)
	if l < 0 {
		return 0 // the "best" pair can only tie the oracle, but guard rounding
	}
	return l
}
