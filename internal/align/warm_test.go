package align

import (
	"testing"

	"mmwalign/internal/antenna"
)

// The warm-start variant must carry its covariance estimate across
// successive Run calls: nil before the first alignment, populated
// after, and the stored matrix must be an independent copy so later
// runs cannot corrupt an estimate a caller is still reading.
func TestProposedWarmCarriesEstimate(t *testing.T) {
	env := testEnv(t, 11, 1, false)
	st, err := ForScheme("proposed-warm", env.RXBook, SchemeSpec{J: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "proposed-warm" {
		t.Fatalf("Name() = %q, want proposed-warm", st.Name())
	}
	ps, ok := st.(*ProposedStrategy)
	if !ok {
		t.Fatalf("proposed-warm is %T, want *ProposedStrategy", st)
	}
	if ps.cfg.Warm == nil {
		t.Fatal("proposed-warm constructed without a WarmState")
	}
	if ps.cfg.Warm.Q != nil {
		t.Fatal("WarmState.Q non-nil before any alignment")
	}

	ms, err := st.Run(env, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 48 {
		t.Fatalf("first run took %d measurements, want 48", len(ms))
	}
	q1 := ps.cfg.Warm.Q
	if q1 == nil {
		t.Fatal("WarmState.Q still nil after a full alignment")
	}

	// A second alignment on the same link must seed from q1 and store a
	// fresh copy, never mutate q1 in place.
	q1Copy := q1.Clone()
	if _, err := st.Run(env, 48); err != nil {
		t.Fatal(err)
	}
	q2 := ps.cfg.Warm.Q
	if q2 == nil {
		t.Fatal("WarmState.Q nil after second alignment")
	}
	if q2 == q1 {
		t.Fatal("second alignment did not refresh WarmState.Q")
	}
	for i := 0; i < q1.Rows(); i++ {
		for j := 0; j < q1.Cols(); j++ {
			if q1.At(i, j) != q1Copy.At(i, j) {
				t.Fatalf("first estimate mutated at (%d,%d) by second run", i, j)
			}
		}
	}
}

// Cold proposed must stay stateless: no WarmState, identical fixed-seed
// trajectories before and after the warm variant was introduced.
func TestProposedColdStaysStateless(t *testing.T) {
	env := testEnv(t, 12, 1, false)
	st, err := ForScheme("proposed", env.RXBook, SchemeSpec{J: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "proposed" {
		t.Fatalf("Name() = %q, want proposed", st.Name())
	}
	if ps := st.(*ProposedStrategy); ps.cfg.Warm != nil {
		t.Fatal("cold proposed carries a WarmState")
	}
}

// Every published scheme name must construct.
func TestForSchemeCoversAllNames(t *testing.T) {
	rx := antenna.NewGridCodebook(antenna.NewUPA(4, 4), 4, 4, 3.14, 1.57)
	for _, name := range SchemeNames() {
		if _, err := ForScheme(name, rx, SchemeSpec{}); err != nil {
			t.Errorf("ForScheme(%q): %v", name, err)
		}
	}
}
