package align

import (
	"math"
	"testing"
	"testing/quick"

	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// testEnvQuick builds a small single-path environment without a
// *testing.T, for use inside quick.Check properties. Panics on
// construction failure (quick reports it as a test failure).
func testEnvQuick(seed int64) *Env {
	tx := antenna.NewUPA(2, 2)
	rx := antenna.NewUPA(4, 4)
	src := rng.New(seed)
	ch, err := channel.NewSinglePath(src.Split("channel"), tx, rx, channel.SinglePathSpec{})
	if err != nil {
		panic(err)
	}
	sounder, err := meas.NewSounder(ch, 1, src.Split("noise"))
	if err != nil {
		panic(err)
	}
	return &Env{
		TXBook:  antenna.NewGridCodebook(tx, 4, 2, math.Pi, math.Pi/2),
		RXBook:  antenna.NewGridCodebook(rx, 4, 4, math.Pi, math.Pi/2),
		Sounder: sounder,
		Src:     src.Split("strategy"),
	}
}

// estOptsQuick keeps the proposed scheme cheap inside property sweeps.
func estOptsQuick() covest.Options {
	return covest.Options{Gamma: 1, MaxIters: 6}
}

// TestStrategyInvariantsProperty checks, across random seeds and
// budgets, the contracts every strategy owes the runner: measurement
// count ≤ min(budget, T), no repeated codebook pairs, and all reported
// beam indices within codebook range.
func TestStrategyInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	f := func(seed int64, budgetRaw uint8) bool {
		budget := int(budgetRaw)%96 + 1
		env := testEnvQuick(seed)
		for _, s := range []Strategy{
			RandomStrategy{},
			ScanStrategy{},
			NewProposed(ProposedConfig{J: 4, Estimator: estOptsQuick()}),
			NewLocalRefine(),
		} {
			ms, err := s.Run(env, budget)
			if err != nil {
				return false
			}
			if len(ms) > budget {
				return false
			}
			seen := make(map[Pair]bool)
			for _, m := range ms {
				if m.RXBeam == SectorBeam {
					continue
				}
				if m.TXBeam < 0 || m.TXBeam >= env.TXBook.Size() ||
					m.RXBeam < 0 || m.RXBeam >= env.RXBook.Size() {
					return false
				}
				p := Pair{TX: m.TXBeam, RX: m.RXBeam}
				if seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestEvaluateLossBoundsProperty: losses are never negative and the
// reported best pair's true SNR never exceeds the oracle's.
func TestEvaluateLossBoundsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep in -short mode")
	}
	f := func(seed int64) bool {
		env := testEnvQuick(seed)
		tr, err := Evaluate(env, RandomStrategy{}, 30)
		if err != nil {
			return false
		}
		if tr.BestTrueSNR > tr.OptSNR+1e-9 {
			return false
		}
		for _, l := range tr.LossDB {
			if l < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
