package align

import (
	"math"
	"testing"

	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/covest"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

// testEnv builds a small environment: TX 2x2 UPA with an 8-beam book,
// RX 4x4 UPA with a 16-beam book (T = 128 pairs).
func testEnv(t *testing.T, seed int64, gamma float64, multipath bool) *Env {
	t.Helper()
	tx := antenna.NewUPA(2, 2)
	rx := antenna.NewUPA(4, 4)
	src := rng.New(seed)
	var (
		ch  *channel.Channel
		err error
	)
	if multipath {
		p := channel.DefaultNYC28()
		p.SubpathsPerCluster = 10
		ch, err = channel.NewNYCMultipath(src.Split("channel"), tx, rx, p)
	} else {
		ch, err = channel.NewSinglePath(src.Split("channel"), tx, rx, channel.SinglePathSpec{})
	}
	if err != nil {
		t.Fatal(err)
	}
	sounder, err := meas.NewSounder(ch, gamma, src.Split("noise"))
	if err != nil {
		t.Fatal(err)
	}
	return &Env{
		TXBook:  antenna.NewGridCodebook(tx, 4, 2, math.Pi, math.Pi/2),
		RXBook:  antenna.NewGridCodebook(rx, 4, 4, math.Pi, math.Pi/2),
		Sounder: sounder,
		Src:     src.Split("strategy"),
	}
}

func allStrategies(env *Env) []Strategy {
	return []Strategy{
		RandomStrategy{},
		ScanStrategy{},
		ExhaustiveStrategy{},
		NewProposed(ProposedConfig{J: 4}),
		NewTwoSided(ProposedConfig{J: 4}),
		NewLocalRefine(),
		NewHierarchical(antenna.NewHierCodebook(env.RXBook, 2, 2)),
	}
}

func TestTotalPairs(t *testing.T) {
	env := testEnv(t, 1, 1, false)
	if got := env.TotalPairs(); got != 8*16 {
		t.Fatalf("TotalPairs = %d, want 128", got)
	}
}

func TestStrategiesRespectBudget(t *testing.T) {
	for _, budget := range []int{1, 7, 32, 128, 500} {
		env := testEnv(t, 2, 1, false)
		for _, s := range allStrategies(env) {
			ms, err := s.Run(env, budget)
			if err != nil {
				t.Fatalf("%s budget=%d: %v", s.Name(), budget, err)
			}
			want := budget
			if want > env.TotalPairs() {
				want = env.TotalPairs()
			}
			// The hierarchical strategy may finish early if every leaf
			// pair is measured; it must never exceed the budget.
			if s.Name() == "hierarchical" {
				if len(ms) > want {
					t.Errorf("%s budget=%d took %d measurements", s.Name(), budget, len(ms))
				}
				continue
			}
			if len(ms) != want {
				t.Errorf("%s budget=%d took %d measurements, want %d", s.Name(), budget, len(ms), want)
			}
		}
	}
}

func TestStrategiesRejectNonPositiveBudget(t *testing.T) {
	env := testEnv(t, 3, 1, false)
	for _, s := range allStrategies(env) {
		if _, err := s.Run(env, 0); err == nil {
			t.Errorf("%s accepted zero budget", s.Name())
		}
	}
}

func TestNoPairRepetition(t *testing.T) {
	env := testEnv(t, 4, 1, false)
	for _, s := range allStrategies(env) {
		seen := make(map[Pair]bool)
		ms, err := s.Run(env, env.TotalPairs())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, m := range ms {
			if m.RXBeam < 0 {
				continue // sector sounding, not a pair
			}
			p := Pair{TX: m.TXBeam, RX: m.RXBeam}
			if seen[p] {
				t.Fatalf("%s re-measured pair %+v", s.Name(), p)
			}
			seen[p] = true
		}
	}
}

func TestExhaustiveCoversEverything(t *testing.T) {
	env := testEnv(t, 5, 1, false)
	ms, err := ExhaustiveStrategy{}.Run(env, env.TotalPairs())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Pair]bool)
	for _, m := range ms {
		seen[Pair{TX: m.TXBeam, RX: m.RXBeam}] = true
	}
	if len(seen) != env.TotalPairs() {
		t.Errorf("exhaustive covered %d of %d pairs", len(seen), env.TotalPairs())
	}
}

func TestRandomCoversEverythingAtFullBudget(t *testing.T) {
	env := testEnv(t, 6, 1, false)
	ms, err := RandomStrategy{}.Run(env, env.TotalPairs())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Pair]bool)
	for _, m := range ms {
		seen[Pair{TX: m.TXBeam, RX: m.RXBeam}] = true
	}
	if len(seen) != env.TotalPairs() {
		t.Errorf("random covered %d of %d pairs", len(seen), env.TotalPairs())
	}
}

func TestScanAdjacency(t *testing.T) {
	env := testEnv(t, 7, 1, false)
	ms, err := ScanStrategy{}.Run(env, 64)
	if err != nil {
		t.Fatal(err)
	}
	manhattan := func(cb *antenna.Codebook, a, b int) int {
		ba, bb := cb.Beam(a), cb.Beam(b)
		return iabs(ba.GridAz-bb.GridAz) + iabs(ba.GridEl-bb.GridEl)
	}
	for k := 1; k < len(ms); k++ {
		prev, cur := ms[k-1], ms[k]
		dTX := manhattan(env.TXBook, prev.TXBeam, cur.TXBeam)
		dRX := manhattan(env.RXBook, prev.RXBeam, cur.RXBeam)
		// One end moves by one adjacent step, the other stays (except at
		// the raster wrap point, where both may jump once).
		if dTX+dRX > 1 {
			// Allow a single wrap discontinuity per run.
			if k > 1 {
				t.Logf("scan step %d jumped dTX=%d dRX=%d (wrap allowed once)", k, dTX, dRX)
			}
		}
	}
}

func TestScanStepsAreAdjacentWithinRaster(t *testing.T) {
	// Force start at a known position by trying seeds until the raster
	// start is 0; then every consecutive step must be strictly adjacent.
	env := testEnv(t, 8, 1, false)
	ms, err := ScanStrategy{}.Run(env, env.TotalPairs())
	if err != nil {
		t.Fatal(err)
	}
	// Count non-adjacent steps: exactly the single wrap-around is allowed.
	jumps := 0
	manhattan := func(cb *antenna.Codebook, a, b int) int {
		ba, bb := cb.Beam(a), cb.Beam(b)
		return iabs(ba.GridAz-bb.GridAz) + iabs(ba.GridEl-bb.GridEl)
	}
	for k := 1; k < len(ms); k++ {
		d := manhattan(env.TXBook, ms[k-1].TXBeam, ms[k].TXBeam) +
			manhattan(env.RXBook, ms[k-1].RXBeam, ms[k].RXBeam)
		if d != 1 {
			jumps++
		}
	}
	if jumps > 1 {
		t.Errorf("scan made %d non-adjacent steps, want ≤1 (the wrap)", jumps)
	}
}

func iabs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestOracleFindsPlantedPair(t *testing.T) {
	// Build a channel whose single path is exactly aligned with known
	// codewords; the oracle must select that pair.
	tx := antenna.NewUPA(2, 2)
	rx := antenna.NewUPA(4, 4)
	txBook := antenna.NewGridCodebook(tx, 4, 2, math.Pi, math.Pi/2)
	rxBook := antenna.NewGridCodebook(rx, 4, 4, math.Pi, math.Pi/2)
	wantTX, wantRX := 5, 9
	ch, err := channel.New(tx, rx, []channel.Path{{
		Power: 1,
		AoD:   txBook.Beam(wantTX).Dir,
		AoA:   rxBook.Beam(wantRX).Dir,
	}})
	if err != nil {
		t.Fatal(err)
	}
	sounder, err := meas.NewSounder(ch, 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{TXBook: txBook, RXBook: rxBook, Sounder: sounder, Src: rng.New(10)}
	p, snr := Oracle(env)
	if p.TX != wantTX || p.RX != wantRX {
		t.Errorf("Oracle = %+v, want {%d %d}", p, wantTX, wantRX)
	}
	if want := 1.0 * 4 * 16; math.Abs(snr-want)/want > 1e-9 {
		t.Errorf("Oracle SNR = %g, want %g", snr, want)
	}
}

func TestEvaluateTrajectoryShape(t *testing.T) {
	env := testEnv(t, 11, 10, false)
	tr, err := Evaluate(env, RandomStrategy{}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.LossDB) != 40 {
		t.Fatalf("trajectory length %d, want 40", len(tr.LossDB))
	}
	if tr.Scheme != "random" {
		t.Errorf("scheme = %q", tr.Scheme)
	}
	if tr.OptSNR <= 0 {
		t.Errorf("OptSNR = %g", tr.OptSNR)
	}
	for l, loss := range tr.LossDB {
		if loss < 0 {
			t.Fatalf("negative loss %g at %d", loss, l)
		}
	}
	if math.IsInf(tr.FinalLossDB(), 1) {
		t.Error("final loss is +Inf after 40 pair measurements")
	}
	if tr.BestTrueSNR <= 0 || tr.BestTrueSNR > tr.OptSNR+1e-9 {
		t.Errorf("BestTrueSNR = %g vs opt %g", tr.BestTrueSNR, tr.OptSNR)
	}
}

// plantedEnv builds an environment whose single path is exactly aligned
// with known codewords, so the optimal pair is separated from the
// runner-up by a wide margin and noisy selection cannot flip it.
func plantedEnv(t *testing.T, seed int64, gamma float64) (*Env, Pair) {
	t.Helper()
	tx := antenna.NewUPA(2, 2)
	rx := antenna.NewUPA(4, 4)
	txBook := antenna.NewGridCodebook(tx, 4, 2, math.Pi, math.Pi/2)
	rxBook := antenna.NewGridCodebook(rx, 4, 4, math.Pi, math.Pi/2)
	want := Pair{TX: 5, RX: 9}
	ch, err := channel.New(tx, rx, []channel.Path{{
		Power: 1,
		AoD:   txBook.Beam(want.TX).Dir,
		AoA:   rxBook.Beam(want.RX).Dir,
	}})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed)
	sounder, err := meas.NewSounder(ch, gamma, src.Split("noise"))
	if err != nil {
		t.Fatal(err)
	}
	return &Env{TXBook: txBook, RXBook: rxBook, Sounder: sounder, Src: src.Split("strategy")}, want
}

func TestEvaluateFullBudgetZeroLossHighSNR(t *testing.T) {
	// At 100% search rate with high measurement SNR and fading averaged
	// out, every scheme reduces to the exhaustive scan and must find the
	// (well-separated) optimal pair — the paper's limiting claim.
	for _, name := range []string{"random", "scan", "exhaustive", "proposed"} {
		env, _ := plantedEnv(t, 12, 1000)
		env.Sounder.SetSnapshots(32)
		var s Strategy
		switch name {
		case "random":
			s = RandomStrategy{}
		case "scan":
			s = ScanStrategy{}
		case "exhaustive":
			s = ExhaustiveStrategy{}
		case "proposed":
			s = NewProposed(ProposedConfig{J: 4})
		}
		tr, err := Evaluate(env, s, env.TotalPairs())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.FinalLossDB() > 0.01 {
			t.Errorf("%s final loss at 100%% rate = %g dB, want ~0", name, tr.FinalLossDB())
		}
	}
}

func TestFirstWithin(t *testing.T) {
	tr := Trajectory{LossDB: []float64{math.Inf(1), 5, 3, 3, 0.5}}
	tests := []struct {
		target float64
		want   int
	}{
		{6, 2},
		{3, 3},
		{1, 5},
		{0.1, -1},
	}
	for _, tt := range tests {
		if got := tr.FirstWithin(tt.target); got != tt.want {
			t.Errorf("FirstWithin(%g) = %d, want %d", tt.target, got, tt.want)
		}
	}
}

func TestSearchRate(t *testing.T) {
	tr := Trajectory{}
	if got := tr.SearchRate(32, 128); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("SearchRate = %g, want 0.25", got)
	}
}

func TestProposedUsesConfiguredJ(t *testing.T) {
	// With J=4 and a fresh environment, the first slot must sound one TX
	// beam exactly 4 times (3 random + 1 estimated).
	env := testEnv(t, 13, 1, false)
	s := NewProposed(ProposedConfig{J: 4})
	ms, err := s.Run(env, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 8 {
		t.Fatalf("took %d measurements", len(ms))
	}
	first := ms[0].TXBeam
	for i := 1; i < 4; i++ {
		if ms[i].TXBeam != first {
			t.Errorf("measurement %d switched TX beam mid-slot", i)
		}
	}
	if ms[4].TXBeam == first {
		t.Error("slot 2 did not switch TX beam")
	}
}

func TestProposedWindowLimitsHistory(t *testing.T) {
	env := testEnv(t, 14, 1, false)
	s := NewProposed(ProposedConfig{J: 4, Window: 8})
	if _, err := s.Run(env, 40); err != nil {
		t.Fatal(err)
	}
}

func TestProposedMultipathRuns(t *testing.T) {
	env := testEnv(t, 15, 1, true)
	tr, err := Evaluate(env, NewProposed(ProposedConfig{J: 4}), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.LossDB) != 32 {
		t.Errorf("trajectory length %d", len(tr.LossDB))
	}
}

func TestHierarchicalFindsGoodPairCleanChannel(t *testing.T) {
	// With essentially noiseless soundings the hierarchical descent must
	// land within a few dB of optimal using far fewer than T soundings.
	env := testEnv(t, 16, 1e6, false)
	env.Sounder.SetSnapshots(64)
	h := NewHierarchical(antenna.NewHierCodebook(env.RXBook, 2, 2))
	tr, err := Evaluate(env, h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.FinalLossDB() > 3 {
		t.Errorf("hierarchical loss = %g dB on clean channel", tr.FinalLossDB())
	}
}

func TestEvaluatePropagatesStrategyErrors(t *testing.T) {
	env := testEnv(t, 17, 1, false)
	if _, err := Evaluate(env, RandomStrategy{}, 0); err == nil {
		t.Error("expected error for zero budget")
	}
}

func TestProposedAutoMu(t *testing.T) {
	env := testEnv(t, 19, 1, false)
	s := NewProposed(ProposedConfig{
		J:          4,
		AutoMuGrid: []float64{0.3, 1, 3},
	})
	ms, err := s.Run(env, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 40 {
		t.Errorf("took %d measurements", len(ms))
	}
}

func TestProposedEstimatorOptionsHonored(t *testing.T) {
	env := testEnv(t, 18, 1, false)
	s := NewProposed(ProposedConfig{
		J:         4,
		Estimator: covest.Options{Gamma: 1, Mu: 5, MaxIters: 5},
	})
	if _, err := s.Run(env, 16); err != nil {
		t.Fatal(err)
	}
}
