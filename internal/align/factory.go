package align

import (
	"fmt"

	"mmwalign/internal/antenna"
	"mmwalign/internal/covest"
)

// SchemeSpec bundles the tunable knobs of the built-in strategies for
// construction by name. The zero value selects the reproduction's
// defaults everywhere; fields irrelevant to a given scheme are ignored
// (e.g. J for the Scan baseline).
type SchemeSpec struct {
	// J is the number of RX measurements per TX slot (proposed and
	// two-sided). Default 8.
	J int
	// Mu is the nuclear-norm regularization weight. Default 1.
	Mu float64
	// Window bounds the estimation history. Default 96.
	Window int
	// MaxIters bounds the proximal solver iterations. Default 25.
	MaxIters int
	// Gamma is the pre-beamforming SNR (linear) handed to the estimator.
	// When 0 the strategy fills it from the sounder at run time.
	Gamma float64
	// AutoMuGrid, when non-empty, enables holdout µ selection over the
	// grid (proposed and two-sided).
	AutoMuGrid []float64
}

func (s SchemeSpec) withDefaults() SchemeSpec {
	if s.J == 0 {
		s.J = 8
	}
	if s.Mu == 0 {
		s.Mu = 1
	}
	if s.Window == 0 {
		s.Window = 96
	}
	if s.MaxIters == 0 {
		s.MaxIters = 25
	}
	return s
}

// ForScheme constructs a built-in strategy by name. rxBook is the RX
// codebook the environment will run with (needed by the hierarchical
// descent, ignored by the others). This is the single construction
// switch shared by the public API and the serving layer, so a scheme
// name means the same strategy everywhere.
func ForScheme(name string, rxBook *antenna.Codebook, spec SchemeSpec) (Strategy, error) {
	switch name {
	case "random":
		return RandomStrategy{}, nil
	case "scan":
		return ScanStrategy{}, nil
	case "exhaustive":
		return ExhaustiveStrategy{}, nil
	case "proposed", "proposed-warm", "two-sided":
		spec = spec.withDefaults()
		cfg := ProposedConfig{
			J:          spec.J,
			Window:     spec.Window,
			AutoMuGrid: spec.AutoMuGrid,
			Estimator: covest.Options{
				Gamma:    spec.Gamma,
				Mu:       spec.Mu,
				MaxIters: spec.MaxIters,
			},
		}
		if name == "two-sided" {
			return NewTwoSided(cfg), nil
		}
		if name == "proposed-warm" {
			// A fresh WarmState per construction: the returned strategy
			// is stateful (it carries Q̂ across runs) and therefore owned
			// by one link — callers running cells concurrently must
			// construct one per cell, which every engine in this repo
			// already does.
			cfg.Warm = &WarmState{}
			st := NewProposed(cfg)
			st.name = "proposed-warm"
			return st, nil
		}
		return NewProposed(cfg), nil
	case "hierarchical":
		return NewHierarchical(antenna.NewHierCodebook(rxBook, 2, 2)), nil
	case "local-refine":
		return NewLocalRefine(), nil
	case "digital":
		return NewDigital(), nil
	default:
		return nil, fmt.Errorf("align: unknown scheme %q", name)
	}
}

// SchemeNames lists every name ForScheme accepts, in presentation
// order.
func SchemeNames() []string {
	return []string{"proposed", "proposed-warm", "random", "scan", "exhaustive", "hierarchical", "two-sided", "local-refine", "digital"}
}
