package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mmwalign/internal/experiment"
	"mmwalign/internal/journal"
	"mmwalign/internal/metrics"
)

// tinyConfig is a grid small enough for -race chaos runs: 3 drops × 2
// schemes = 6 cells.
func tinyConfig() experiment.Config {
	return experiment.Config{
		Seed:  42,
		Drops: 3,
		TXx:   2, TXz: 2, RXx: 4, RXz: 4,
		TXBookAz: 4, TXBookEl: 2, RXBookAz: 4, RXBookEl: 4,
		Snapshots:   4,
		J:           4,
		SearchRates: []float64{0.1, 0.2, 0.3},
		TargetsDB:   []float64{1, 3},
		Schemes:     []string{"random", "proposed"},
	}
}

// figureCSV renders a figure's CSV bytes — the byte-identity unit of
// comparison.
func figureCSV(t *testing.T, fig experiment.Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := metrics.WriteCSV(&buf, fig.XLabel, fig.Series); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mergedFigure merges dir and regenerates the figure from the merged
// journal, returning the figure and the merge result.
func mergedFigure(t *testing.T, dir string, figure int, cfg experiment.Config) (experiment.Figure, *MergeResult) {
	t.Helper()
	res, err := Merge(dir, figure, cfg)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	hdr, err := experiment.JournalHeader(figure, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := journal.Open(res.JournalPath, hdr)
	if err != nil {
		t.Fatalf("opening merged journal: %v", err)
	}
	defer jnl.Close()
	mcfg := cfg
	mcfg.Journal = jnl
	fig, err := experiment.Generate(figure, mcfg)
	if err != nil {
		t.Fatalf("generating from merged journal: %v", err)
	}
	return fig, res
}

func TestSingleWorkerByteIdentity(t *testing.T) {
	cfg := tinyConfig()
	clean, err := experiment.Generate(5, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	w := &Worker{Dir: dir, ID: "w1", Figure: 5, Config: cfg, TTL: 2 * time.Second}
	sum, err := w.Run(context.Background())
	if err != nil {
		t.Fatalf("worker run: %v", err)
	}
	if !sum.Complete || sum.ComputedCells != 6 || sum.StolenCells != 0 {
		t.Fatalf("summary = %+v, want 6 computed, 0 stolen, complete", sum)
	}

	fig, res := mergedFigure(t, dir, 5, cfg)
	if !bytes.Equal(figureCSV(t, fig), figureCSV(t, clean)) {
		t.Error("single-worker sharded CSV differs from single-process run")
	}
	s := res.Summary
	if s.TotalCells != 6 || s.MergedCells != 6 || s.DuplicateCells != 0 || s.StolenCells != 0 {
		t.Errorf("merge summary = %+v", s)
	}
	if len(s.Workers) != 1 || !s.Workers[0].Reported || s.Workers[0].JournaledCells != 6 {
		t.Errorf("worker evidence = %+v", s.Workers)
	}
	// The merged manifest path: figure runs fed a journal carry resume
	// evidence; the shard summary is attached by the CLI layer.
	if fig.Manifest == nil || fig.Manifest.Resume == nil || fig.Manifest.Resume.SkippedCells != 6 {
		t.Errorf("merged run did not resume-skip every cell: %+v", fig.Manifest.Resume)
	}
}

func TestThreeWorkersConcurrentByteIdentity(t *testing.T) {
	cfg := tinyConfig()
	cfg.Drops = 4 // 8 cells across 3 workers
	clean, err := experiment.Generate(6, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	type out struct {
		sum *WorkerSummary
		err error
	}
	results := make(chan out, 3)
	for _, id := range []string{"w1", "w2", "w3"} {
		w := &Worker{Dir: dir, ID: id, Figure: 6, Config: cfg, TTL: 2 * time.Second}
		go func() {
			sum, err := w.Run(context.Background())
			results <- out{sum, err}
		}()
	}
	computed := 0
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("worker: %v", r.err)
		}
		if !r.sum.Complete {
			t.Errorf("worker %s exited incomplete: %+v", r.sum.Worker, r.sum)
		}
		computed += r.sum.ComputedCells
	}
	if computed < 8 {
		t.Fatalf("workers computed %d cells, want >= 8", computed)
	}

	fig, res := mergedFigure(t, dir, 6, cfg)
	if !bytes.Equal(figureCSV(t, fig), figureCSV(t, clean)) {
		t.Error("3-worker sharded CSV differs from single-process run")
	}
	if res.Summary.MergedCells != 8 {
		t.Errorf("merged %d cells, want 8", res.Summary.MergedCells)
	}
	// Any duplicates must have been byte-identical or Merge would have
	// refused; the accounting ties out either way.
	if computed != res.Summary.MergedCells+res.Summary.DuplicateCells {
		t.Errorf("computed %d != merged %d + duplicates %d",
			computed, res.Summary.MergedCells, res.Summary.DuplicateCells)
	}
}

// TestKilledWorkerCellsStolenByteIdentity is the in-repo chaos proof:
// a "killed" worker is simulated by running a MaxCells-limited victim
// and then reconstructing, by hand, the exact on-disk states a SIGKILL
// leaves behind — both kill windows — before survivors sweep the rest.
//
//	window 1: killed mid-compute  → claimed lease, stale mtime, no record
//	window 2: killed after Record → journaled cell, lease claimed + stale
//
// Survivors must steal both leases, the window-2 cell must surface as
// a byte-identical duplicate at merge, and the merged CSV must equal
// the single-process run byte for byte.
func TestKilledWorkerCellsStolenByteIdentity(t *testing.T) {
	cfg := tinyConfig()
	clean, err := experiment.Generate(5, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	victim := &Worker{Dir: dir, ID: "victim", Figure: 5, Config: cfg, TTL: 300 * time.Millisecond, MaxCells: 3}
	vsum, err := victim.Run(context.Background())
	if err != nil {
		t.Fatalf("victim run: %v", err)
	}
	if vsum.Complete || vsum.ComputedCells != 3 {
		t.Fatalf("victim summary = %+v, want 3 computed, incomplete", vsum)
	}
	// A killed worker never writes its summary.
	if err := os.Remove(filepath.Join(dir, "workers", "victim.summary.json")); err != nil {
		t.Fatal(err)
	}

	// Window 2: one of the victim's journaled cells loses its done
	// marker — as if the kill landed between the journal fsync and the
	// rename. Its lease is claimed and stale.
	hdr, err := ReadDirHeader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var window2 journal.CellKey
	found := false
	_, cells, _, err := journal.Load(filepath.Join(dir, "journals", "victim.journal"))
	if err != nil {
		t.Fatal(err)
	}
	for key := range cells {
		window2, found = key, true
		break
	}
	if !found {
		t.Fatal("victim journaled no cells")
	}
	stale := time.Now().Add(-time.Minute)
	claimed, _ := json.Marshal(leaseInfo{Worker: "victim", PID: 999999, State: leaseClaimed})
	if err := os.WriteFile(leasePath(dir, window2), claimed, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(leasePath(dir, window2), stale, stale); err != nil {
		t.Fatal(err)
	}

	// Window 1: a pending cell carries the victim's claimed, stale
	// lease and no journal record — as if the kill landed mid-compute.
	var window1 journal.CellKey
	found = false
	for _, c := range grid(hdr.Drops, hdr.Schemes) {
		if _, ok := cells[c]; !ok {
			if li := readLease(leasePath(dir, c)); li.State != leaseDone {
				window1, found = c, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no pending cell left for the window-1 lease")
	}
	if err := os.WriteFile(leasePath(dir, window1), claimed, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(leasePath(dir, window1), stale, stale); err != nil {
		t.Fatal(err)
	}

	// Two survivors sweep concurrently with a short TTL.
	type out struct {
		sum *WorkerSummary
		err error
	}
	results := make(chan out, 2)
	for _, id := range []string{"s1", "s2"} {
		w := &Worker{Dir: dir, ID: id, Figure: 5, Config: cfg, TTL: 300 * time.Millisecond}
		go func() {
			sum, err := w.Run(context.Background())
			results <- out{sum, err}
		}()
	}
	stolen := 0
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("survivor: %v", r.err)
		}
		if !r.sum.Complete {
			t.Errorf("survivor %s exited incomplete: %+v", r.sum.Worker, r.sum)
		}
		stolen += r.sum.StolenCells
	}
	if stolen < 2 {
		t.Errorf("survivors stole %d leases, want >= 2 (both kill windows)", stolen)
	}

	fig, res := mergedFigure(t, dir, 5, cfg)
	if !bytes.Equal(figureCSV(t, fig), figureCSV(t, clean)) {
		t.Error("post-kill merged CSV differs from single-process run")
	}
	s := res.Summary
	if s.MergedCells != 6 {
		t.Errorf("merged %d of 6 cells", s.MergedCells)
	}
	if s.StolenCells < 2 {
		t.Errorf("merge summary stolen = %d, want >= 2", s.StolenCells)
	}
	if s.DuplicateCells < 1 {
		t.Errorf("merge summary duplicates = %d, want >= 1 (the window-2 recompute)", s.DuplicateCells)
	}
	reported := map[string]bool{}
	for _, w := range s.Workers {
		reported[w.Worker] = w.Reported
	}
	if reported["victim"] {
		t.Error("killed victim shows Reported=true")
	}
	if !reported["s1"] || !reported["s2"] {
		t.Errorf("survivors not reported: %+v", s.Workers)
	}
}

// TestWorkerRestartResumesOwnJournal: a worker that dies after
// journaling and restarts under the same ID re-marks its own cells
// done instead of recomputing them.
func TestWorkerRestartResumesOwnJournal(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	first := &Worker{Dir: dir, ID: "w1", Figure: 5, Config: cfg, TTL: time.Second, MaxCells: 2}
	if _, err := first.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Strip the done markers, as a kill between Record and markDone
	// would for every in-flight cell.
	leases, err := filepath.Glob(filepath.Join(dir, "leases", "*.lease"))
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range leases {
		if err := os.Remove(lp); err != nil {
			t.Fatal(err)
		}
	}

	second := &Worker{Dir: dir, ID: "w1", Figure: 5, Config: cfg, TTL: time.Second}
	sum, err := second.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.ResumedCells != 2 {
		t.Errorf("resumed %d cells, want 2", sum.ResumedCells)
	}
	if !sum.Complete || sum.ComputedCells != 4 {
		t.Errorf("summary = %+v, want 4 computed, complete", sum)
	}
}

func TestInitDirRefusesForeignRun(t *testing.T) {
	dir := t.TempDir()
	if _, err := InitDir(dir, 5, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	other := tinyConfig()
	other.Seed = 99
	if _, err := InitDir(dir, 5, other); err == nil {
		t.Error("InitDir accepted a different config in the same directory")
	}
	if _, err := InitDir(dir, 7, tinyConfig()); err == nil {
		t.Error("InitDir accepted a different figure in the same directory")
	}
	if _, err := InitDir(dir, 5, tinyConfig()); err != nil {
		t.Errorf("InitDir refused the matching run: %v", err)
	}
}

func TestWorkerRejectsBadID(t *testing.T) {
	for _, id := range []string{"", "a/b", "..", ".hidden", "x y", "too" + string(make([]byte, 80))} {
		w := &Worker{Dir: t.TempDir(), ID: id, Figure: 5, Config: tinyConfig()}
		if _, err := w.Run(context.Background()); err == nil {
			t.Errorf("ID %q accepted", id)
		}
	}
}

func TestDuplicateWorkerIDRefused(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	if _, err := InitDir(dir, 5, cfg); err != nil {
		t.Fatal(err)
	}
	// Hold the journal lock as a live first instance would.
	hdr, err := experiment.JournalHeader(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := journal.Create(filepath.Join(dir, "journals", "w1.journal"), hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()

	w := &Worker{Dir: dir, ID: "w1", Figure: 5, Config: cfg, TTL: time.Second}
	var le *journal.LockedError
	if _, err := w.Run(context.Background()); err == nil {
		t.Error("second live worker under the same ID accepted")
	} else if !errors.As(err, &le) {
		t.Errorf("duplicate-ID error = %v, want *journal.LockedError", err)
	}
}

func TestMergeRefusesByteDifferingDuplicates(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	if _, err := InitDir(dir, 5, cfg); err != nil {
		t.Fatal(err)
	}
	hdr, err := experiment.JournalHeader(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, payload := range []string{`{"v":1}`, `{"v":2}`} {
		jnl, err := journal.Create(filepath.Join(dir, "journals", []string{"a", "b"}[i]+".journal"), hdr)
		if err != nil {
			t.Fatal(err)
		}
		if err := jnl.Record(0, "random", json.RawMessage(payload)); err != nil {
			t.Fatal(err)
		}
		jnl.Close()
	}
	if _, err := Merge(dir, 5, cfg); err == nil {
		t.Error("Merge accepted byte-differing duplicate payloads")
	}
}

func TestMergeRefusesForeignConfig(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	w := &Worker{Dir: dir, ID: "w1", Figure: 5, Config: cfg, TTL: time.Second, MaxCells: 1}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 1234
	if _, err := Merge(dir, 5, other); err == nil {
		t.Error("Merge accepted a mismatched config")
	}
	if _, err := Merge(dir, 6, cfg); err == nil {
		t.Error("Merge accepted a mismatched figure")
	}
}
