// Package shard is the crash-safe multi-process sweep coordinator: N
// figgen worker processes share one directory, claim (drop, scheme)
// cells through crash-tolerant lease files, append completions to
// per-worker journals (each protected by the journal's single-writer
// owner lock), and a merge step folds the shard journals into one
// figure whose CSV and trajectory bytes are identical to an
// uninterrupted single-process run.
//
// The byte-identity guarantee rests on one property the experiment
// engine already proves in its own tests: a cell is a pure function of
// (seed, drop, scheme). Leases are therefore work-avoidance, not
// correctness — a lost, stolen, or double-claimed lease at worst makes
// two workers compute the same cell, and the duplicates are
// byte-identical, so last-write-wins merging cannot perturb the
// figure.
//
// Shared-directory protocol (all files under the shard dir):
//
//	shard.json                    run identity: figure + canonical config hash
//	leases/<drop>.<scheme>.lease  claim state machine (see below)
//	journals/<worker>.journal     per-worker completion journal (locked)
//	workers/<worker>.summary.json final per-worker tally (absent ⇒ killed)
//
// Lease state machine per cell:
//
//	absent ──O_CREATE|O_EXCL──▶ claimed ──temp+rename──▶ done
//	                              │ ▲
//	             mtime older than TTL (holder dead or wedged)
//	                              ▼ │
//	                     removed + re-claimed by a stealer
//
// A claimed lease is kept alive by its holder refreshing the file
// mtime (heartbeat) every TTL/3; a SIGKILLed worker stops heartbeating
// and its leases go stale after TTL, at which point survivors steal
// them. Exactly one stealer wins the O_EXCL re-claim; the remove/
// re-create window can, rarely, let two workers compute the same cell
// — accepted per the purity argument above. Done-marking happens only
// after the cell is fsynced to the worker's journal, so a done lease
// always has journal bytes behind it; the converse kill window
// (journaled but not done-marked) surfaces as a stolen, recomputed,
// byte-identical duplicate that the merge resolves and counts.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mmwalign/internal/experiment"
	"mmwalign/internal/journal"
)

// DirSchema identifies the shard-directory layout; bump on breaking
// changes so stale directories are refused instead of misread.
const DirSchema = "mmwalign/shard/v1"

// DirHeader is the shard directory's identity record (shard.json): the
// first worker writes it, every later worker and the merge validate
// against it, so two differently-configured runs can never share a
// directory unnoticed.
type DirHeader struct {
	// Schema is DirSchema.
	Schema string `json:"schema"`
	// Figure is the figure identifier ("fig5".."fig8").
	Figure string `json:"figure"`
	// ConfigHash is the canonical experiment config hash every worker
	// must match (experiment.Config.CanonicalHash).
	ConfigHash string `json:"config_hash"`
	// Seed, Drops and Schemes restate the run shape for inspection.
	Seed    int64    `json:"seed"`
	Drops   int      `json:"drops"`
	Schemes []string `json:"schemes,omitempty"`
	// CreatedAt is the RFC 3339 UTC creation timestamp (informational).
	CreatedAt string `json:"created_at,omitempty"`
}

// WorkerSummary is one worker's final self-report
// (workers/<id>.summary.json), written atomically on clean exit. A
// worker that was killed never writes one — its absence is the
// manifest's evidence of the kill.
type WorkerSummary struct {
	// Worker is the worker ID; PID the process that ran it.
	Worker string `json:"worker"`
	PID    int    `json:"pid"`
	// ComputedCells is how many cells this worker computed and
	// journaled; StolenCells how many of those were reclaimed from a
	// stale lease; ResumedCells how many were already in its own
	// journal at startup (a restarted worker).
	ComputedCells int `json:"computed_cells"`
	StolenCells   int `json:"stolen_cells"`
	ResumedCells  int `json:"resumed_cells"`
	// FailedCells counts cells the worker attempted and could not
	// complete (at most 1: a post-retry failure aborts the worker,
	// since cells are deterministic and every other worker would fail
	// the same way).
	FailedCells int `json:"failed_cells"`
	// Complete reports whether the worker observed every cell of the
	// grid done before exiting (false for a MaxCells-limited run).
	Complete bool `json:"complete"`
	// FinishedAt is the RFC 3339 UTC exit timestamp.
	FinishedAt string `json:"finished_at,omitempty"`
}

// Worker is one shard worker process's view of the run.
type Worker struct {
	// Dir is the shared shard directory (created if absent).
	Dir string
	// ID names this worker: its journal and summary file basenames.
	// Must be a portable filename fragment (letters, digits, ., _, -).
	ID string
	// Figure is the paper figure number (5–8).
	Figure int
	// Config is the experiment configuration; every worker of a shard
	// must use configs with equal canonical hashes.
	Config experiment.Config
	// TTL is the lease time-to-live: a claimed lease whose mtime is
	// older than TTL is stale and may be stolen. Holders heartbeat at
	// TTL/3. Zero defaults to 10s — set it well above the worst
	// per-cell compute time divided by 3, or livelock-free but wasteful
	// duplicate computation ensues.
	TTL time.Duration
	// MaxCells, when positive, stops the worker after computing that
	// many cells (it exits without waiting for the grid to finish) —
	// an operational knob for bounded work stints and the chaos tests'
	// victim control.
	MaxCells int
	// Log, when non-nil, receives human-readable progress notes.
	Log io.Writer
}

// leaseState is the state field of a lease file.
const (
	leaseClaimed = "claimed"
	leaseDone    = "done"
)

// leaseInfo is the content of a lease file.
type leaseInfo struct {
	Worker string `json:"worker"`
	PID    int    `json:"pid"`
	Host   string `json:"host,omitempty"`
	State  string `json:"state"`
}

// claimStatus is the outcome of one claim attempt.
type claimStatus int

const (
	claimAcquired claimStatus = iota // this worker now holds the lease
	claimDone                        // the cell is already done
	claimHeld                        // another live worker holds a fresh lease
)

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, "shard[%s]: "+format+"\n", append([]any{w.ID}, args...)...)
	}
}

// validID reports whether id is safe as a filename fragment.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return id[0] != '.'
}

// tmpSeq disambiguates temp-file names within one process: PID alone
// collides when two workers share a process (as the tests' goroutine
// workers do), and a collision lets one writer unlink the temp file
// out from under the other.
var tmpSeq atomic.Int64

// writeFileAtomic writes data at path via a temp file and rename, so
// readers never observe a torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpSeq.Add(1))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// createExclusive links data into place at path only if nothing exists
// there yet; fs.ErrExist reports a loser of the creation race.
func createExclusive(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpSeq.Add(1))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	linkErr := os.Link(tmp, path)
	os.Remove(tmp)
	return linkErr
}

// InitDir ensures the shard directory exists with the protocol layout
// and a shard.json matching the (figure, config) identity; the first
// caller creates it, later callers validate against it. Mismatched
// identity is an error — a shard directory belongs to exactly one run.
func InitDir(dir string, figure int, cfg experiment.Config) (*DirHeader, error) {
	rc, figID, err := experiment.ConfigForFigure(figure, cfg)
	if err != nil {
		return nil, err
	}
	for _, sub := range []string{"", "leases", "journals", "workers"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("shard: creating %s: %w", filepath.Join(dir, sub), err)
		}
	}
	want := DirHeader{
		Schema:     DirSchema,
		Figure:     figID,
		ConfigHash: rc.CanonicalHash(),
		Seed:       rc.Seed,
		Drops:      rc.Drops,
		Schemes:    append([]string(nil), rc.Schemes...),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
	}
	hp := filepath.Join(dir, "shard.json")
	data, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("shard: encoding header: %w", err)
	}
	switch err := createExclusive(hp, data); {
	case err == nil:
		return &want, nil
	case errors.Is(err, fs.ErrExist):
		got, err := ReadDirHeader(dir)
		if err != nil {
			return nil, err
		}
		if got.Schema != DirSchema {
			return nil, fmt.Errorf("shard: %s has schema %q, want %q", hp, got.Schema, DirSchema)
		}
		if got.Figure != want.Figure || got.ConfigHash != want.ConfigHash {
			return nil, fmt.Errorf("shard: directory %s belongs to %s/%.12s…, this run is %s/%.12s… — one shard directory per run",
				dir, got.Figure, got.ConfigHash, want.Figure, want.ConfigHash)
		}
		return got, nil
	default:
		return nil, fmt.Errorf("shard: writing %s: %w", hp, err)
	}
}

// ReadDirHeader loads and parses a shard directory's shard.json.
func ReadDirHeader(dir string) (*DirHeader, error) {
	hp := filepath.Join(dir, "shard.json")
	data, err := os.ReadFile(hp)
	if err != nil {
		return nil, fmt.Errorf("shard: reading %s: %w", hp, err)
	}
	var h DirHeader
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("shard: parsing %s: %w", hp, err)
	}
	return &h, nil
}

// leasePath returns the lease file of one cell.
func leasePath(dir string, c journal.CellKey) string {
	return filepath.Join(dir, "leases", fmt.Sprintf("%d.%s.lease", c.Drop, c.Scheme))
}

// readLease parses a lease file. A lease that cannot be read or parsed
// (claim-write in flight, debris) reports an empty leaseInfo and no
// error with ok=false semantics folded into State == "".
func readLease(path string) leaseInfo {
	data, err := os.ReadFile(path)
	if err != nil {
		return leaseInfo{}
	}
	var li leaseInfo
	if json.Unmarshal(data, &li) != nil {
		return leaseInfo{}
	}
	return li
}

// tryClaim attempts to take the lease for cell c: fresh claim on an
// absent lease, steal on a stale one. stolen reports a steal.
func (w *Worker) tryClaim(c journal.CellKey) (status claimStatus, stolen bool, err error) {
	lp := leasePath(w.Dir, c)
	host, _ := os.Hostname()
	content, merr := json.Marshal(leaseInfo{Worker: w.ID, PID: os.Getpid(), Host: host, State: leaseClaimed})
	if merr != nil {
		return 0, false, fmt.Errorf("shard: encoding lease: %w", merr)
	}
	for attempt := 0; attempt < 2; attempt++ {
		switch err := createExclusive(lp, content); {
		case err == nil:
			return claimAcquired, attempt > 0, nil
		case !errors.Is(err, fs.ErrExist):
			return 0, false, fmt.Errorf("shard: claiming %s: %w", lp, err)
		}
		li := readLease(lp)
		if li.State == leaseDone {
			return claimDone, false, nil
		}
		st, statErr := os.Stat(lp)
		if statErr != nil {
			// The lease vanished between create and stat: its holder
			// released (compute failure) or a stealer is mid-swap. Retry
			// the claim.
			continue
		}
		if time.Since(st.ModTime()) <= w.TTL {
			return claimHeld, false, nil
		}
		// Stale: the holder stopped heartbeating TTL ago — dead or
		// wedged. Remove and re-claim; O_EXCL arbitration means exactly
		// one stealer wins the re-create, and the rare remove/re-create
		// interleaving that double-computes a cell is harmless (cells
		// are pure, duplicates merge byte-identically).
		w.logf("stealing stale lease for drop %d scheme %s (held by %s pid %d, idle %s)",
			c.Drop, c.Scheme, li.Worker, li.PID, time.Since(st.ModTime()).Round(time.Millisecond))
		os.Remove(lp)
	}
	return claimHeld, false, nil
}

// markDone atomically flips a cell's lease to the done state. Called
// only after the cell is fsynced to the worker's journal; rename makes
// it total — it also creates the marker when the lease was removed or
// never existed (a restarted worker re-marking its journaled cells).
func (w *Worker) markDone(c journal.CellKey) error {
	host, _ := os.Hostname()
	data, err := json.Marshal(leaseInfo{Worker: w.ID, PID: os.Getpid(), Host: host, State: leaseDone})
	if err != nil {
		return fmt.Errorf("shard: encoding done marker: %w", err)
	}
	if err := writeFileAtomic(leasePath(w.Dir, c), data); err != nil {
		return fmt.Errorf("shard: marking drop %d scheme %s done: %w", c.Drop, c.Scheme, err)
	}
	return nil
}

// heartbeats keeps the worker's held leases fresh: a background
// goroutine refreshing each held lease's mtime every TTL/3, so only a
// dead (or fully wedged) process lets its leases go stale.
type heartbeats struct {
	mu   sync.Mutex
	held map[string]struct{}
}

func (h *heartbeats) add(path string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.held[path] = struct{}{}
}

func (h *heartbeats) remove(path string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.held, path)
}

func (h *heartbeats) beat() {
	h.mu.Lock()
	paths := make([]string, 0, len(h.held))
	for p := range h.held {
		paths = append(paths, p)
	}
	h.mu.Unlock()
	now := time.Now()
	for _, p := range paths {
		// A failed Chtimes (lease stolen out from under a wedged compute)
		// is not an error here: the steal already has a byte-identical
		// recompute in flight.
		os.Chtimes(p, now, now)
	}
}

// grid returns every cell of the run in deterministic drop-major
// order.
func grid(drops int, schemes []string) []journal.CellKey {
	cells := make([]journal.CellKey, 0, drops*len(schemes))
	for d := 0; d < drops; d++ {
		for _, s := range schemes {
			cells = append(cells, journal.CellKey{Drop: d, Scheme: s})
		}
	}
	return cells
}

// idOffset rotates each worker's scan start so N workers racing over
// the same grid mostly claim disjoint cells instead of contending on
// cell 0.
func idOffset(id string, n int) int {
	if n == 0 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h % uint32(n))
}

// Run executes this worker's share of the sweep: claim, compute,
// journal, done-mark, steal stale leases, until every cell of the grid
// is done (or MaxCells is reached). It returns the worker's summary,
// also persisted to workers/<ID>.summary.json. A post-retry cell
// failure aborts the run: cells are deterministic, so every worker
// would fail the same cell the same way and retrying across processes
// cannot help.
func (w *Worker) Run(ctx context.Context) (*WorkerSummary, error) {
	if !validID(w.ID) {
		return nil, fmt.Errorf("shard: worker ID %q must be a portable filename fragment (letters, digits, '.', '_', '-')", w.ID)
	}
	ttl := w.TTL
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	w.TTL = ttl
	hdr, err := InitDir(w.Dir, w.Figure, w.Config)
	if err != nil {
		return nil, err
	}

	jhdr, err := experiment.JournalHeader(w.Figure, w.Config)
	if err != nil {
		return nil, err
	}
	jpath := filepath.Join(w.Dir, "journals", w.ID+".journal")
	var jnl *journal.Journal
	if _, statErr := os.Stat(jpath); statErr == nil {
		// A restarted worker resumes its own journal; the owner lock
		// refuses the same ID running twice concurrently, and takes over
		// from a dead predecessor.
		jnl, err = journal.Open(jpath, jhdr)
	} else if errors.Is(statErr, fs.ErrNotExist) {
		jhdr.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		jnl, err = journal.Create(jpath, jhdr)
	} else {
		return nil, fmt.Errorf("shard: stat %s: %w", jpath, statErr)
	}
	if err != nil {
		return nil, err
	}
	defer jnl.Close()

	cells := grid(hdr.Drops, hdr.Schemes)
	sum := &WorkerSummary{Worker: w.ID, PID: os.Getpid()}

	// Re-mark every cell already in our journal: a predecessor killed
	// between Record and markDone left a journaled cell behind a
	// claimed lease, and re-marking is how its bytes get counted
	// instead of stolen and recomputed.
	for _, c := range cells {
		if _, ok := jnl.Lookup(c.Drop, c.Scheme); ok {
			if err := w.markDone(c); err != nil {
				return nil, err
			}
			sum.ResumedCells++
		}
	}
	if sum.ResumedCells > 0 {
		w.logf("resumed: %d cells already journaled", sum.ResumedCells)
	}

	hb := &heartbeats{held: make(map[string]struct{})}
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				hb.beat()
			}
		}
	}()
	defer func() {
		close(hbStop)
		hbWG.Wait()
	}()

	computeWorkers := w.Config.Workers
	if computeWorkers <= 0 {
		computeWorkers = runtime.GOMAXPROCS(0)
	}
	offset := idOffset(w.ID, len(cells))
	poll := ttl / 4
	if poll > 500*time.Millisecond {
		poll = 500 * time.Millisecond
	}
	if poll <= 0 {
		poll = time.Millisecond
	}

	done := make(map[journal.CellKey]bool, len(cells))
	claims := 0 // cells claimed by this process, MaxCells' budget basis
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// One round: claim every cell we can and compute the claims on a
		// bounded pool. Rounds repeat until the whole grid is done —
		// a worker exits only when no cell remains, so survivors outlive
		// a killed peer's TTL and steal its cells.
		var (
			wg       sync.WaitGroup
			sem      = make(chan struct{}, computeWorkers)
			mu       sync.Mutex // guards sum counters and firstErr
			firstErr error
			pending  int
		)
		roundCtx, cancelRound := context.WithCancel(ctx)
		for i := 0; i < len(cells); i++ {
			c := cells[(i+offset)%len(cells)]
			if done[c] {
				continue
			}
			mu.Lock()
			aborted := firstErr != nil
			mu.Unlock()
			if aborted {
				break
			}
			if w.MaxCells > 0 && claims >= w.MaxCells {
				pending++
				continue
			}
			status, stolen, err := w.tryClaim(c)
			if err != nil {
				cancelRound()
				wg.Wait()
				return nil, err
			}
			switch status {
			case claimDone:
				done[c] = true
				continue
			case claimHeld:
				pending++
				continue
			}
			claims++
			lp := leasePath(w.Dir, c)
			hb.add(lp)
			if stolen {
				mu.Lock()
				sum.StolenCells++
				mu.Unlock()
			}
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				payload, _, err := experiment.ComputeCell(roundCtx, w.Figure, w.Config, c.Drop, c.Scheme)
				if err == nil {
					// Record (fsync) strictly before done-marking: a done
					// lease always has journal bytes behind it.
					err = jnl.Record(c.Drop, c.Scheme, payload)
				}
				if err == nil {
					err = w.markDone(c)
				}
				hb.remove(lp)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					// Release the claim so the cell is observably unowned,
					// then abort: deterministic cells fail identically
					// everywhere, so limping on would just spread the
					// failure.
					os.Remove(lp)
					sum.FailedCells++
					if firstErr == nil {
						firstErr = fmt.Errorf("shard: worker %s, drop %d scheme %s: %w", w.ID, c.Drop, c.Scheme, err)
						cancelRound()
					}
					return
				}
				sum.ComputedCells++
			}()
			done[c] = true // claimed by us: either we finish it or we abort the run
		}
		wg.Wait()
		cancelRound()
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if pending == 0 {
			sum.Complete = true
			break
		}
		if w.MaxCells > 0 && claims >= w.MaxCells {
			w.logf("stopping at MaxCells=%d with %d cells still pending", w.MaxCells, pending)
			break
		}
		// Everything left is held by someone else (or freshly failed
		// elsewhere): wait out a poll interval so stale leases can age.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(poll):
		}
	}

	sum.FinishedAt = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("shard: encoding worker summary: %w", err)
	}
	sp := filepath.Join(w.Dir, "workers", w.ID+".summary.json")
	if err := writeFileAtomic(sp, data); err != nil {
		return nil, fmt.Errorf("shard: writing %s: %w", sp, err)
	}
	w.logf("finished: %d computed (%d stolen), %d resumed, complete=%v",
		sum.ComputedCells, sum.StolenCells, sum.ResumedCells, sum.Complete)
	return sum, nil
}
