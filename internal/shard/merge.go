package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mmwalign/internal/experiment"
	"mmwalign/internal/journal"
	"mmwalign/internal/obs"
)

// MergeResult is the outcome of folding a shard directory's worker
// journals into one figure-ready journal.
type MergeResult struct {
	// JournalPath is the merged journal (dir/merged.journal): a normal
	// single-process checkpoint containing every recovered cell, which
	// the experiment engine resume-skips — so the aggregation path of a
	// merged run is byte-for-byte the aggregation path of an
	// uninterrupted one.
	JournalPath string
	// Summary is the shard evidence for the run manifest.
	Summary *obs.ShardSummary
}

// Merge folds every worker journal under dir into dir/merged.journal,
// resolving duplicate cells last-write-wins across journals (sorted
// filename order, then file order within a journal — deterministic).
// Duplicates are required to be byte-identical: cells are pure
// functions of (seed, drop, scheme), so differing bytes for one cell
// mean two workers ran different configurations (or a determinism bug)
// and the merge refuses rather than pick silently.
//
// Merge is read-only toward the worker journals (no owner lock taken),
// so it may run while stragglers are still finishing; an incomplete
// grid simply merges fewer cells and the figure run computes the rest
// in-process.
func Merge(dir string, figure int, cfg experiment.Config) (*MergeResult, error) {
	rc, figID, err := experiment.ConfigForFigure(figure, cfg)
	if err != nil {
		return nil, err
	}
	wantHash := rc.CanonicalHash()

	hdr, err := ReadDirHeader(dir)
	if err != nil {
		return nil, err
	}
	if hdr.Schema != DirSchema {
		return nil, fmt.Errorf("shard: %s has schema %q, want %q", dir, hdr.Schema, DirSchema)
	}
	if hdr.Figure != figID || hdr.ConfigHash != wantHash {
		return nil, fmt.Errorf("shard: directory %s holds %s/%.12s…, merge requested %s/%.12s… — refusing to merge across configurations",
			dir, hdr.Figure, hdr.ConfigHash, figID, wantHash)
	}

	paths, err := filepath.Glob(filepath.Join(dir, "journals", "*.journal"))
	if err != nil {
		return nil, fmt.Errorf("shard: listing journals: %w", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("shard: no worker journals under %s", dir)
	}
	sort.Strings(paths)

	merged := make(map[journal.CellKey]struct {
		payload []byte
		worker  string
	})
	summary := &obs.ShardSummary{
		Dir:        dir,
		TotalCells: hdr.Drops * len(hdr.Schemes),
	}
	journaledTotal := 0
	for _, p := range paths {
		worker := strings.TrimSuffix(filepath.Base(p), ".journal")
		// A torn tail (the killed worker's signature: a record that died
		// mid-write) is dropped by Load, exactly as a resume would drop
		// it — the cell's lease went stale and a survivor recomputed it.
		jh, cells, _, err := journal.Load(p)
		if err != nil {
			return nil, fmt.Errorf("shard: loading %s: %w", p, err)
		}
		if jh.Figure != figID || jh.ConfigHash != wantHash {
			return nil, fmt.Errorf("shard: journal %s holds %s/%.12s…, want %s/%.12s…",
				p, jh.Figure, jh.ConfigHash, figID, wantHash)
		}
		for key, payload := range cells {
			if prev, dup := merged[key]; dup {
				summary.DuplicateCells++
				if !bytes.Equal(prev.payload, payload) {
					return nil, fmt.Errorf("shard: drop %d scheme %s has byte-differing payloads in journals of %s and %s — determinism violation, refusing to merge",
						key.Drop, key.Scheme, prev.worker, worker)
				}
			}
			// Last-write-wins in sorted-journal order; duplicates are
			// byte-identical (just verified), so the winner is academic.
			merged[key] = struct {
				payload []byte
				worker  string
			}{payload, worker}
		}
		ws := obs.ShardWorker{Worker: worker, JournaledCells: len(cells)}
		journaledTotal += len(cells)
		if rep, err := readWorkerSummary(dir, worker); err != nil {
			return nil, err
		} else if rep != nil {
			ws.ComputedCells = rep.ComputedCells
			ws.StolenCells = rep.StolenCells
			ws.FailedCells = rep.FailedCells
			ws.Reported = true
			summary.StolenCells += rep.StolenCells
		}
		summary.Workers = append(summary.Workers, ws)
	}
	summary.MergedCells = len(merged)
	if journaledTotal != summary.MergedCells+summary.DuplicateCells {
		return nil, fmt.Errorf("shard: internal accounting error: %d journaled != %d merged + %d duplicates",
			journaledTotal, summary.MergedCells, summary.DuplicateCells)
	}

	// Write the merged journal in deterministic grid order. It is a
	// plain single-process checkpoint: the figure run opens it with the
	// usual config-hash validation and resume-skips every merged cell.
	jhdr, err := experiment.JournalHeader(figure, cfg)
	if err != nil {
		return nil, err
	}
	jhdr.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	mpath := filepath.Join(dir, "merged.journal")
	os.Remove(mpath) // a re-merge replaces the previous result
	mj, err := journal.Create(mpath, jhdr)
	if err != nil {
		return nil, err
	}
	for _, c := range grid(hdr.Drops, hdr.Schemes) {
		m, ok := merged[c]
		if !ok {
			continue
		}
		if err := mj.Record(c.Drop, c.Scheme, m.payload); err != nil {
			mj.Close()
			return nil, err
		}
	}
	if err := mj.Close(); err != nil {
		return nil, fmt.Errorf("shard: closing %s: %w", mpath, err)
	}
	return &MergeResult{JournalPath: mpath, Summary: summary}, nil
}

// readWorkerSummary loads workers/<id>.summary.json, nil when the
// worker never reported (killed before finishing).
func readWorkerSummary(dir, worker string) (*WorkerSummary, error) {
	data, err := os.ReadFile(filepath.Join(dir, "workers", worker+".summary.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading summary of worker %s: %w", worker, err)
	}
	var s WorkerSummary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("shard: parsing summary of worker %s: %w", worker, err)
	}
	return &s, nil
}
