package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mmwalign/internal/experiment"
	"mmwalign/internal/journal"
)

// TestMergeDuplicateOnlyJournal: a journal whose every cell duplicates
// another journal byte for byte must merge cleanly — byte-identical
// duplicates are the normal signature of a stolen-then-recomputed cell,
// never grounds for refusal. The duplicate copies must all land in the
// DuplicateCells accounting and leave the merged figure untouched.
func TestMergeDuplicateOnlyJournal(t *testing.T) {
	cfg := tinyConfig()
	clean, err := experiment.Generate(5, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	w := &Worker{Dir: dir, ID: "w1", Figure: 5, Config: cfg, TTL: time.Second}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker run: %v", err)
	}
	// A second "worker" whose journal is a byte-for-byte copy of the
	// first: 100% duplicates, 0 fresh cells.
	src, err := os.ReadFile(filepath.Join(dir, "journals", "w1.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journals", "w2.journal"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	fig, res := mergedFigure(t, dir, 5, cfg)
	s := res.Summary
	if s.MergedCells != 6 || s.DuplicateCells != 6 {
		t.Errorf("summary = %+v, want 6 merged + 6 duplicates", s)
	}
	journaled := 0
	for _, ws := range s.Workers {
		journaled += ws.JournaledCells
		if ws.Worker == "w2" {
			if ws.JournaledCells != 6 || ws.Reported {
				t.Errorf("copied journal's worker evidence = %+v, want 6 journaled, unreported", ws)
			}
		}
	}
	if journaled != s.MergedCells+s.DuplicateCells {
		t.Errorf("Σ journaled %d != merged %d + duplicates %d", journaled, s.MergedCells, s.DuplicateCells)
	}
	if !bytes.Equal(figureCSV(t, fig), figureCSV(t, clean)) {
		t.Error("duplicate-only merge changed the figure CSV")
	}
}

// TestMergeEmptyHeaderedJournal: a journal holding a valid header and
// zero cells — a worker killed before its first Record, or one that
// found every lease already taken — must merge without error and count
// zero toward everything.
func TestMergeEmptyHeaderedJournal(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	if _, err := InitDir(dir, 5, cfg); err != nil {
		t.Fatal(err)
	}
	hdr, err := experiment.JournalHeader(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jnl, err := journal.Create(filepath.Join(dir, "journals", "idle.journal"), hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Merge(dir, 5, cfg)
	if err != nil {
		t.Fatalf("Merge refused an empty-but-headered journal: %v", err)
	}
	s := res.Summary
	if s.MergedCells != 0 || s.DuplicateCells != 0 {
		t.Errorf("summary = %+v, want 0 merged, 0 duplicates", s)
	}
	if len(s.Workers) != 1 || s.Workers[0].JournaledCells != 0 || s.Workers[0].Reported {
		t.Errorf("worker evidence = %+v, want one unreported worker with 0 journaled cells", s.Workers)
	}
	// The merged journal itself must be a valid, loadable, cell-free
	// checkpoint — not a missing or torn file.
	_, cells, _, err := journal.Load(res.JournalPath)
	if err != nil {
		t.Fatalf("loading merged journal: %v", err)
	}
	if len(cells) != 0 {
		t.Errorf("merged journal holds %d cells, want 0", len(cells))
	}
}

// TestMergeAccountingInvariant: across a mixed fleet — partial journals
// with overlap, plus an idle empty one — the summary must tie out:
// Σ JournaledCells over workers == MergedCells + DuplicateCells.
func TestMergeAccountingInvariant(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	if _, err := InitDir(dir, 5, cfg); err != nil {
		t.Fatal(err)
	}
	hdr, err := experiment.JournalHeader(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type cell struct {
		drop    int
		scheme  string
		payload string
	}
	// Merge never interprets payloads, so synthetic ones exercise the
	// accounting without the cost of real cells. Cell (1, random) appears
	// in both a and b with identical bytes.
	journals := map[string][]cell{
		"a":    {{0, "random", `{"v":1}`}, {0, "proposed", `{"v":2}`}, {1, "random", `{"v":3}`}},
		"b":    {{1, "random", `{"v":3}`}, {1, "proposed", `{"v":4}`}, {2, "random", `{"v":5}`}},
		"idle": nil,
	}
	for name, cells := range journals {
		jnl, err := journal.Create(filepath.Join(dir, "journals", name+".journal"), hdr)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			if err := jnl.Record(c.drop, c.scheme, json.RawMessage(c.payload)); err != nil {
				t.Fatal(err)
			}
		}
		if err := jnl.Close(); err != nil {
			t.Fatal(err)
		}
	}

	res, err := Merge(dir, 5, cfg)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	s := res.Summary
	if s.MergedCells != 5 || s.DuplicateCells != 1 {
		t.Errorf("summary = %+v, want 5 merged + 1 duplicate", s)
	}
	journaled := 0
	perWorker := map[string]int{}
	for _, ws := range s.Workers {
		journaled += ws.JournaledCells
		perWorker[ws.Worker] = ws.JournaledCells
	}
	if journaled != s.MergedCells+s.DuplicateCells {
		t.Errorf("Σ journaled %d != merged %d + duplicates %d", journaled, s.MergedCells, s.DuplicateCells)
	}
	if perWorker["a"] != 3 || perWorker["b"] != 3 || perWorker["idle"] != 0 {
		t.Errorf("per-worker journaled cells = %v, want a=3 b=3 idle=0", perWorker)
	}
}

// TestMergeDuplicateRefusalIsByteExact pins the refusal boundary from
// both sides in one directory: byte-identical duplicates are accepted
// however many times they recur, and the moment one journal's copy of a
// cell differs by a single byte the merge refuses with the determinism
// diagnostic — it must never silently pick a winner.
func TestMergeDuplicateRefusalIsByteExact(t *testing.T) {
	cfg := tinyConfig()
	dir := t.TempDir()
	if _, err := InitDir(dir, 5, cfg); err != nil {
		t.Fatal(err)
	}
	hdr, err := experiment.JournalHeader(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name, payload string) {
		t.Helper()
		jnl, err := journal.Create(filepath.Join(dir, "journals", name+".journal"), hdr)
		if err != nil {
			t.Fatal(err)
		}
		if err := jnl.Record(0, "random", json.RawMessage(payload)); err != nil {
			t.Fatal(err)
		}
		if err := jnl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("a", `{"v":1}`)
	write("b", `{"v":1}`)
	write("c", `{"v":1}`)

	res, err := Merge(dir, 5, cfg)
	if err != nil {
		t.Fatalf("Merge refused byte-identical triplicate payloads: %v", err)
	}
	if res.Summary.MergedCells != 1 || res.Summary.DuplicateCells != 2 {
		t.Errorf("summary = %+v, want 1 merged + 2 duplicates", res.Summary)
	}

	// One byte of drift in a fourth copy flips the merge to refusal.
	write("d", `{"v":2}`)
	if _, err := Merge(dir, 5, cfg); err == nil {
		t.Error("Merge accepted a byte-differing duplicate payload")
	} else if !strings.Contains(err.Error(), "determinism violation") {
		t.Errorf("refusal error = %v, want the determinism-violation diagnostic", err)
	}
}
