// Package scenario is the mobility and dynamics engine: it moves UEs
// through the channel model along deterministic trajectories
// (waypoint, linear, or random-walk motion), evolves the propagation
// geometry every superframe (bearing rotation from UE kinematics,
// angle drift scaled by distance travelled, Markov cluster blockage),
// re-aligns on a fixed superframe cadence through the align.Strategy
// seam, and scores *effective throughput over time* — the data-phase
// rate actually delivered after paying alignment overhead, misalignment
// loss, and outage — rather than the one-shot SNR loss of the static
// figures.
//
// The engine reuses the experiment substrate end to end: cells are
// (drop, scheme) coordinates on the crash-safe journal (drop enumerates
// speed × UE), rng splits are pure functions of (seed, name) so results
// are invariant to worker count and resumption, and a run emits an
// obs.Manifest with per-frame spans and realign/outage counters.
package scenario

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mmwalign/internal/align"
	"mmwalign/internal/antenna"
	"mmwalign/internal/channel"
	"mmwalign/internal/journal"
	"mmwalign/internal/meas"
	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
	"mmwalign/internal/rng"
)

// Config parameterizes a mobility sweep. Zero fields take the defaults
// of WithDefaults. The JSON tags define the config block of the run
// manifest; runtime-only knobs (Workers, Journal) are excluded from the
// canonical hash.
type Config struct {
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// UEs is the number of independent UE trajectories per speed point.
	UEs int `json:"ues"`
	// Frames is the superframe horizon of each trajectory.
	Frames int `json:"frames"`
	// SlotBudget is the total slots per superframe (training + data).
	SlotBudget int `json:"slot_budget"`
	// AlignSlots is the measurement budget of one re-alignment.
	AlignSlots int `json:"align_slots"`
	// RealignEvery is the re-alignment cadence in superframes (1 =
	// every frame).
	RealignEvery int `json:"realign_every"`
	// SpeedsMPS are the UE speeds swept (m/s).
	SpeedsMPS []float64 `json:"speeds_mps"`
	// FrameDurS is the superframe duration in seconds.
	FrameDurS float64 `json:"frame_dur_s"`
	// Motion selects the trajectory model: "waypoint", "linear" or
	// "random-walk".
	Motion string `json:"motion"`
	// RangeM is the nominal cell range; UEs start on this circle and
	// the path-loss term references it.
	RangeM float64 `json:"range_m"`
	// BSHeightM sets the elevation geometry.
	BSHeightM float64 `json:"bs_height_m"`
	// OutageSNRDB is the misalignment outage threshold: a frame whose
	// held pair falls below it delivers zero data bits.
	OutageSNRDB float64 `json:"outage_snr_db"`
	// DriftSigmaDegPerM is the per-meter-travelled angle random walk
	// (degrees), the channel-aging term on top of deterministic
	// bearing rotation.
	DriftSigmaDegPerM float64 `json:"drift_sigma_deg_per_m"`
	// PBlock and PUnblock are the per-frame cluster blockage transition
	// probabilities; BlockageDB is the blockage depth. NoBlockage
	// disables the process entirely.
	PBlock     float64 `json:"p_block"`
	PUnblock   float64 `json:"p_unblock"`
	BlockageDB float64 `json:"blockage_db"`
	NoBlockage bool    `json:"no_blockage"`
	// TXx..RXBookEl shape the arrays and codebooks as in
	// experiment.Config.
	TXx      int `json:"tx_x"`
	TXz      int `json:"tx_z"`
	RXx      int `json:"rx_x"`
	RXz      int `json:"rx_z"`
	TXBookAz int `json:"tx_book_az"`
	TXBookEl int `json:"tx_book_el"`
	RXBookAz int `json:"rx_book_az"`
	RXBookEl int `json:"rx_book_el"`
	// GammaDB is the pre-beamforming SNR at the nominal range; motion
	// scales it by 20·log10(d/RangeM).
	GammaDB float64 `json:"gamma_db"`
	// Snapshots per measurement.
	Snapshots int `json:"snapshots"`
	// J, Window, Mu, EstimatorIters parameterize the proposed scheme.
	J              int     `json:"j"`
	Window         int     `json:"window"`
	Mu             float64 `json:"mu"`
	EstimatorIters int     `json:"estimator_iters"`
	// Multipath selects the NYC clustered channel.
	Multipath bool `json:"multipath"`
	// Schemes are the strategy names compared (align.ForScheme names).
	Schemes []string `json:"schemes"`
	// Workers bounds concurrent cells (0 = GOMAXPROCS). Results are
	// independent of the worker count.
	Workers int `json:"workers"`
	// Journal, when non-nil, is the crash-safe checkpoint: cells on
	// record are replayed bit-exactly, new cells are appended and
	// fsynced as they finish. The caller owns open/close.
	Journal *journal.Journal `json:"-"`
}

// WithDefaults returns a copy with zero fields replaced by the
// engine's defaults: 4 UEs × 40 frames over speeds {1, 5, 15, 30} m/s,
// 20 ms superframes of 512 slots with a 96-slot re-alignment every 4th
// frame, waypoint motion in a 100 m cell, and the static figures' radio
// defaults.
func (c Config) WithDefaults() Config {
	if c.UEs == 0 {
		c.UEs = 4
	}
	if c.Frames == 0 {
		c.Frames = 40
	}
	if c.SlotBudget == 0 {
		c.SlotBudget = 512
	}
	if c.AlignSlots == 0 {
		c.AlignSlots = 96
	}
	if c.RealignEvery == 0 {
		c.RealignEvery = 4
	}
	if c.SpeedsMPS == nil {
		c.SpeedsMPS = []float64{1, 5, 15, 30}
	}
	if c.FrameDurS == 0 {
		c.FrameDurS = 0.02
	}
	if c.Motion == "" {
		c.Motion = MotionWaypoint
	}
	if c.RangeM == 0 {
		c.RangeM = 100
	}
	if c.BSHeightM == 0 {
		c.BSHeightM = 10
	}
	if c.OutageSNRDB == 0 {
		c.OutageSNRDB = -5
	}
	if c.DriftSigmaDegPerM == 0 {
		c.DriftSigmaDegPerM = 0.5
	}
	if c.PBlock == 0 {
		c.PBlock = 0.05
	}
	if c.PUnblock == 0 {
		c.PUnblock = 0.3
	}
	if c.BlockageDB == 0 {
		c.BlockageDB = 25
	}
	if c.TXx == 0 {
		c.TXx = 4
	}
	if c.TXz == 0 {
		c.TXz = 4
	}
	if c.RXx == 0 {
		c.RXx = 8
	}
	if c.RXz == 0 {
		c.RXz = 8
	}
	if c.TXBookAz == 0 {
		c.TXBookAz = 4
	}
	if c.TXBookEl == 0 {
		c.TXBookEl = 4
	}
	if c.RXBookAz == 0 {
		c.RXBookAz = 8
	}
	if c.RXBookEl == 0 {
		c.RXBookEl = 8
	}
	if c.Snapshots == 0 {
		c.Snapshots = 4
	}
	if c.J == 0 {
		c.J = 8
	}
	if c.Window == 0 {
		c.Window = 96
	}
	if c.Mu == 0 {
		c.Mu = 1
	}
	if c.EstimatorIters == 0 {
		c.EstimatorIters = 25
	}
	if c.Schemes == nil {
		c.Schemes = []string{"proposed", "proposed-warm", "exhaustive", "hierarchical", "two-sided"}
	}
	return c
}

// Drops returns the cell-grid depth: one drop per (speed, UE) point,
// laid out speed-major so drop = speedIdx·UEs + ue.
func (c Config) Drops() int { return len(c.SpeedsMPS) * c.UEs }

// point resolves a drop index back to its (speedIdx, ue) coordinates.
func (c Config) point(drop int) (speedIdx, ue int) {
	return drop / c.UEs, drop % c.UEs
}

// FramePoint records one superframe of a trajectory.
type FramePoint struct {
	// Frame is the superframe index.
	Frame int
	// Realigned marks a frame that ran a full re-alignment.
	Realigned bool
	// TrainSlots is the training cost paid this frame.
	TrainSlots int
	// SelSNRDB and OptSNRDB are true SNRs (dB) of the held pair and
	// the oracle pair on this frame's channel.
	SelSNRDB, OptSNRDB float64
	// Outage marks a frame below the outage threshold (zero data).
	Outage bool
	// DataBits and GenieBits are delivered and genie throughput in
	// bit/s/Hz × slots.
	DataBits, GenieBits float64
	// Blocked counts blocked clusters during the frame.
	Blocked int
}

// Trace is one completed (speed, UE, scheme) trajectory.
type Trace struct {
	// Scheme is the strategy name.
	Scheme string
	// SpeedIdx and UE locate the trajectory on the sweep grid.
	SpeedIdx, UE int
	// Frames holds the per-superframe records.
	Frames []FramePoint
	// Realigns counts full re-alignment frames.
	Realigns int
	// OutageFrames counts frames below the outage threshold.
	OutageFrames int
	// MeanRealignLatency is the mean number of frames from an outage
	// onset until the next re-alignment ran (censored at the horizon);
	// 0 when no outage occurred.
	MeanRealignLatency float64
	// Efficiency is Σ DataBits / Σ GenieBits over the trajectory.
	Efficiency float64
}

// finalize derives the aggregate fields from the frame records. It is
// called both after simulation and after a journal replay, so the
// aggregates never need to be serialized.
func (t *Trace) finalize() {
	t.Realigns, t.OutageFrames = 0, 0
	var sumData, sumGenie float64
	var latencySum float64
	var onsets int
	for i, f := range t.Frames {
		if f.Realigned {
			t.Realigns++
		}
		if f.Outage {
			t.OutageFrames++
			if i == 0 || !t.Frames[i-1].Outage {
				// Outage onset: latency runs to the next realignment,
				// censored at the horizon.
				lat := len(t.Frames) - i
				for j := i + 1; j < len(t.Frames); j++ {
					if t.Frames[j].Realigned {
						lat = j - i
						break
					}
				}
				latencySum += float64(lat)
				onsets++
			}
		}
		sumData += f.DataBits
		sumGenie += f.GenieBits
	}
	if onsets > 0 {
		t.MeanRealignLatency = latencySum / float64(onsets)
	}
	if sumGenie > 0 {
		t.Efficiency = sumData / sumGenie
	}
}

// Figure is one rendered curve set of a scenario run.
type Figure struct {
	// ID identifies the figure ("scenario-time", "scenario-speed").
	ID string
	// Title restates what is plotted.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds one curve per scheme.
	Series []metrics.Series
}

// Result is a completed scenario sweep.
type Result struct {
	// Time is effective throughput vs time at the highest swept speed.
	Time Figure
	// Speed is delivered/genie efficiency vs UE speed.
	Speed Figure
	// Traces holds every trajectory, drop-major then scheme order.
	Traces [][]Trace
	// Manifest is the machine-readable audit record of the run.
	Manifest *obs.Manifest
}

// PanicError is a worker panic recovered into an attributed error.
type PanicError struct {
	// Drop and Scheme attribute the cell that panicked.
	Drop   int
	Scheme string
	// Value is the recovered panic value; Stack the goroutine stack.
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("scenario: drop %d scheme %s panicked: %v\n%s", e.Drop, e.Scheme, e.Value, e.Stack)
}

// runCell simulates one (drop, scheme) trajectory. Every random stream
// is a pure function of (seed, name): channel, motion, drift and
// blockage splits are keyed by drop only, so all schemes of a drop see
// the identical moving channel, and the strategy/noise splits are keyed
// per frame so a cell is reproducible in isolation — the property that
// makes the sweep worker-count invariant and journal-resumable.
func runCell(ctx context.Context, cfg Config, root *rng.Source, drop int, scheme string) (Trace, error) {
	speedIdx, ue := cfg.point(drop)
	speed := cfg.SpeedsMPS[speedIdx]
	rec := obs.From(ctx)

	tx := antenna.NewUPA(cfg.TXx, cfg.TXz)
	rx := antenna.NewUPA(cfg.RXx, cfg.RXz)
	txBook := antenna.NewGridCodebook(tx, cfg.TXBookAz, cfg.TXBookEl, math.Pi, math.Pi/2)
	rxBook := antenna.NewGridCodebook(rx, cfg.RXBookAz, cfg.RXBookEl, math.Pi, math.Pi/2)

	chSrc := root.SplitIndexed("channel", drop)
	var (
		ch  *channel.Channel
		err error
	)
	if cfg.Multipath {
		ch, err = channel.NewNYCMultipath(chSrc, tx, rx, channel.DefaultNYC28())
	} else {
		ch, err = channel.NewSinglePath(chSrc, tx, rx, channel.SinglePathSpec{})
	}
	if err != nil {
		return Trace{}, fmt.Errorf("channel: %w", err)
	}

	var blocker *channel.Blocker
	blockSrc := root.SplitIndexed("blockage", drop)
	if !cfg.NoBlockage {
		groupSize := 1
		if cfg.Multipath {
			groupSize = channel.DefaultNYC28().SubpathsPerCluster
		}
		blocker, err = channel.NewBlocker(ch, groupSize, cfg.PBlock, cfg.PUnblock, cfg.BlockageDB)
		if err != nil {
			return Trace{}, fmt.Errorf("blockage: %w", err)
		}
	}

	motionSrc := root.SplitIndexed("motion", drop)
	driftSrc := root.SplitIndexed("drift", drop)
	mv := newMover(motionSrc, cfg.Motion, cfg.RangeM)

	// One strategy per cell, constructed through the shared factory and
	// reused across the trajectory's re-alignments: stateful variants
	// (proposed-warm) carry their estimate from one alignment to the
	// next, stateless ones are indistinguishable from fresh
	// construction.
	strat, err := align.ForScheme(scheme, rxBook, align.SchemeSpec{
		J:        cfg.J,
		Mu:       cfg.Mu,
		Window:   cfg.Window,
		MaxIters: cfg.EstimatorIters,
	})
	if err != nil {
		return Trace{}, err
	}

	noiseName := fmt.Sprintf("noise-%d", drop)
	stratName := fmt.Sprintf("strategy-%s-%d", scheme, drop)
	framePhase := rec.Phase("frame")
	alignPhase := rec.Phase("alignment")
	realignCtr := rec.Counter("scenario_realigns")
	outageCtr := rec.Counter("scenario_outage_frames")

	trace := Trace{Scheme: scheme, SpeedIdx: speedIdx, UE: ue}
	var current align.Pair
	for f := 0; f < cfg.Frames; f++ {
		if err := ctx.Err(); err != nil {
			return Trace{}, err
		}
		frameSpan := framePhase.Start()
		blocked := 0
		if blocker != nil {
			blocker.Step(blockSrc)
			blocked = blocker.BlockedCount()
		}

		// Distance-dependent link budget around the nominal range.
		d := mv.distance()
		gammaDB := cfg.GammaDB - 20*math.Log10(d/cfg.RangeM)
		sounder, err := meas.NewSounder(ch, channel.DBToLinear(gammaDB), root.SplitIndexed(noiseName, f))
		if err != nil {
			frameSpan.End()
			return Trace{}, fmt.Errorf("frame %d sounder: %w", f, err)
		}
		sounder.SetSnapshots(cfg.Snapshots)
		env := &align.Env{TXBook: txBook, RXBook: rxBook, Sounder: sounder, Src: root.SplitIndexed(stratName, f)}

		realigned := f%cfg.RealignEvery == 0
		trainUsed := 0
		if realigned {
			alignSpan := alignPhase.Start()
			tr, err := align.EvaluateContext(ctx, env, strat, cfg.AlignSlots)
			alignSpan.End()
			if err != nil {
				frameSpan.End()
				return Trace{}, fmt.Errorf("frame %d alignment: %w", f, err)
			}
			current = tr.BestPair
			trainUsed = len(tr.LossDB)
			realignCtr.Add(1)
		}

		sel := align.TrueSNROf(env, current)
		_, opt := align.Oracle(env)
		selDB := channel.LinearToDB(sel)
		outage := selDB < cfg.OutageSNRDB
		dataSlots := cfg.SlotBudget - trainUsed
		if dataSlots < 0 {
			dataSlots = 0
		}
		dataBits := 0.0
		if !outage {
			dataBits = float64(dataSlots) * math.Log2(1+sel)
		} else {
			outageCtr.Add(1)
		}
		trace.Frames = append(trace.Frames, FramePoint{
			Frame:      f,
			Realigned:  realigned,
			TrainSlots: trainUsed,
			SelSNRDB:   selDB,
			OptSNRDB:   channel.LinearToDB(opt),
			Outage:     outage,
			DataBits:   dataBits,
			GenieBits:  float64(cfg.SlotBudget) * math.Log2(1+opt),
			Blocked:    blocked,
		})

		// Advance the UE and evolve the geometry: deterministic bearing
		// rotation from kinematics plus distance-scaled angular drift.
		dist := speed * cfg.FrameDurS
		oldBearing, oldEl := mv.bearing(), elevation(cfg.BSHeightM, mv.distance())
		mv.step(motionSrc, dist)
		dAz := angleDelta(mv.bearing(), oldBearing)
		dEl := elevation(cfg.BSHeightM, mv.distance()) - oldEl
		ch.Rotate(dAz, dEl)
		if sigma := cfg.DriftSigmaDegPerM * math.Pi / 180 * dist; sigma > 0 {
			ch.Drift(driftSrc, sigma)
		}
		frameSpan.End()
	}
	trace.finalize()
	return trace, nil
}

// runStats tallies resume evidence for the manifest.
type runStats struct {
	resumedCells atomic.Int64
}

// runAll executes every (drop, scheme) cell on a bounded worker pool,
// honoring journal resume skips and recording completed cells before
// they are observable as done. Any cell failure aborts the run with an
// attributed error; cancellation drains the in-flight workers and
// returns the context's error with every finished cell already fsynced.
func runAll(ctx context.Context, cfg Config) ([][]Trace, *runStats, error) {
	root := rng.New(cfg.Seed)
	rec := obs.From(ctx)
	drops := cfg.Drops()
	rec.StartRun(drops * len(cfg.Schemes))
	st := &runStats{}

	traces := make([][]Trace, drops)
	errs := make([][]error, drops)
	for d := range traces {
		traces[d] = make([]Trace, len(cfg.Schemes))
		errs[d] = make([]error, len(cfg.Schemes))
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var journalErr atomic.Pointer[error]
spawn:
	for drop := 0; drop < drops; drop++ {
		for si, scheme := range cfg.Schemes {
			drop, si, scheme := drop, si, scheme
			if cfg.Journal != nil {
				if payload, ok := cfg.Journal.Lookup(drop, scheme); ok {
					tr, err := decodeTrace(payload)
					if err == nil {
						traces[drop][si] = tr
						st.resumedCells.Add(1)
						rec.Counter("resume_skipped_cells").Add(1)
						rec.CellDone(false)
						continue
					}
					rec.Counter("resume_decode_failures").Add(1)
				}
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				break spawn
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						errs[drop][si] = &PanicError{Drop: drop, Scheme: scheme, Value: r, Stack: debug.Stack()}
					}
					rec.CellDone(errs[drop][si] != nil)
				}()
				tr, err := runCell(ctx, cfg, root, drop, scheme)
				if err != nil {
					if ctx.Err() != nil {
						errs[drop][si] = ctx.Err()
					} else {
						errs[drop][si] = fmt.Errorf("scenario: drop %d scheme %s: %w", drop, scheme, err)
					}
					return
				}
				traces[drop][si] = tr
				if cfg.Journal != nil {
					payload, err := encodeTrace(tr)
					if err == nil {
						err = cfg.Journal.Record(drop, scheme, payload)
					}
					if err != nil {
						journalErr.CompareAndSwap(nil, &err)
					} else {
						rec.Counter("journal_cells_recorded").Add(1)
					}
				}
			}()
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	if errp := journalErr.Load(); errp != nil {
		return nil, st, fmt.Errorf("scenario: checkpoint journal write failed (results would not be resumable): %w", *errp)
	}
	for drop := 0; drop < drops; drop++ {
		for si := range cfg.Schemes {
			if err := errs[drop][si]; err != nil {
				return nil, st, err
			}
		}
	}
	return traces, st, nil
}

// Run executes the sweep with background context.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the mobility sweep: every scheme rides every
// (speed, UE) trajectory, and the result carries the two scenario
// figures plus the run manifest. Cancelling ctx stops spawning cells,
// drains the in-flight workers, and returns the context's error.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	traces, st, err := runAll(ctx, cfg)
	if err != nil {
		return Result{}, err
	}

	res := Result{Traces: traces}
	res.Time = timeFigure(cfg, traces)
	res.Speed = speedFigure(cfg, traces)
	res.Manifest = buildManifest(cfg, obs.From(ctx), time.Since(start), st)
	return res, nil
}

// validate rejects configurations the engine cannot run.
func (c Config) validate() error {
	if len(c.SpeedsMPS) == 0 || c.UEs < 1 || c.Frames < 1 {
		return fmt.Errorf("scenario: empty sweep (speeds %d, UEs %d, frames %d)", len(c.SpeedsMPS), c.UEs, c.Frames)
	}
	if c.AlignSlots < 1 || c.SlotBudget < c.AlignSlots {
		return fmt.Errorf("scenario: slot budget %d must cover align slots %d", c.SlotBudget, c.AlignSlots)
	}
	if c.RealignEvery < 1 {
		return fmt.Errorf("scenario: realign cadence %d must be positive", c.RealignEvery)
	}
	switch c.Motion {
	case MotionWaypoint, MotionLinear, MotionRandomWalk:
	default:
		return fmt.Errorf("scenario: unknown motion model %q", c.Motion)
	}
	if len(c.Schemes) == 0 {
		return fmt.Errorf("scenario: no schemes configured")
	}
	return nil
}

// timeFigure renders effective throughput (bit/s/Hz delivered per
// slot) against time at the highest swept speed, mean ± CI95 across
// UEs.
func timeFigure(cfg Config, traces [][]Trace) Figure {
	topSpeed := len(cfg.SpeedsMPS) - 1
	fig := Figure{
		ID:     "scenario-time",
		Title:  fmt.Sprintf("Effective throughput over time at %g m/s (%s motion)", cfg.SpeedsMPS[topSpeed], cfg.Motion),
		XLabel: "time (s)",
		YLabel: "effective throughput (bit/s/Hz)",
	}
	for si, scheme := range cfg.Schemes {
		s := metrics.Series{Name: scheme}
		for f := 0; f < cfg.Frames; f++ {
			var acc metrics.Accumulator
			for ue := 0; ue < cfg.UEs; ue++ {
				drop := topSpeed*cfg.UEs + ue
				acc.Add(traces[drop][si].Frames[f].DataBits / float64(cfg.SlotBudget))
			}
			s.X = append(s.X, float64(f)*cfg.FrameDurS)
			s.Y = append(s.Y, acc.Mean())
			s.YErr = append(s.YErr, acc.CI95())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// speedFigure renders delivered/genie efficiency against UE speed,
// mean ± CI95 across UEs.
func speedFigure(cfg Config, traces [][]Trace) Figure {
	fig := Figure{
		ID:     "scenario-speed",
		Title:  fmt.Sprintf("Effective throughput vs UE speed (%s motion)", cfg.Motion),
		XLabel: "UE speed (m/s)",
		YLabel: "throughput fraction of genie",
	}
	for si, scheme := range cfg.Schemes {
		s := metrics.Series{Name: scheme}
		for spi, speed := range cfg.SpeedsMPS {
			var acc metrics.Accumulator
			for ue := 0; ue < cfg.UEs; ue++ {
				drop := spi*cfg.UEs + ue
				acc.Add(traces[drop][si].Efficiency)
			}
			s.X = append(s.X, speed)
			s.Y = append(s.Y, acc.Mean())
			s.YErr = append(s.YErr, acc.CI95())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// buildManifest assembles the run manifest: config and seed always,
// phase/counter detail when a recorder observed the run, resume
// evidence when a journal was attached.
func buildManifest(cfg Config, rec *obs.Recorder, elapsed time.Duration, st *runStats) *obs.Manifest {
	m := &obs.Manifest{
		Schema:    obs.ManifestSchema,
		Figure:    "scenario",
		Title:     "Mobility scenario sweep: effective throughput under motion, drift and blockage",
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
		ElapsedNS: elapsed.Nanoseconds(),
	}
	if cfgJSON, err := jsonMarshalConfig(cfg); err == nil {
		m.Config = cfgJSON
	}
	if rec != nil {
		snap := rec.Snapshot()
		m.Instrumented = true
		m.Phases = snap.Phases
		m.Counters = snap.Counters
		m.Solver = snap.Solver
	}
	if cfg.Journal != nil {
		h := cfg.Journal.Header()
		m.Resume = &obs.ResumeSummary{
			Journal:      cfg.Journal.Path(),
			ConfigHash:   h.ConfigHash,
			TotalCells:   cfg.Drops() * len(cfg.Schemes),
			SkippedCells: int(st.resumedCells.Load()),
		}
		if n := cfg.Journal.Len() - m.Resume.SkippedCells; n > 0 {
			m.Resume.RecordedCells = n
		}
	}
	return m
}
