package scenario

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"time"

	"mmwalign/internal/journal"
	"mmwalign/internal/metrics"
)

// tinyConfig is a sweep small enough for -race test runs: 2 speeds × 2
// UEs × 3 schemes over 6 superframes on 2×2/4×4 arrays (T = 64 pairs).
func tinyConfig() Config {
	return Config{
		Seed:         7,
		UEs:          2,
		Frames:       6,
		SlotBudget:   64,
		AlignSlots:   16,
		RealignEvery: 3,
		SpeedsMPS:    []float64{2, 20},
		TXx:          2, TXz: 2, RXx: 4, RXz: 4,
		TXBookAz: 2, TXBookEl: 2, RXBookAz: 4, RXBookEl: 4,
		Snapshots: 2, J: 4, Window: 32, EstimatorIters: 10,
		Schemes: []string{"proposed", "proposed-warm", "exhaustive"},
	}
}

// renderCSV flattens a result into the byte stream figgen writes, the
// unit the determinism guarantees are stated over.
func renderCSV(t *testing.T, res Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := metrics.WriteCSV(&buf, res.Time.XLabel, res.Time.Series); err != nil {
		t.Fatal(err)
	}
	if err := metrics.WriteCSV(&buf, res.Speed.XLabel, res.Speed.Series); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestScenarioSmoke(t *testing.T) {
	cfg := tinyConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Traces); got != cfg.Drops() {
		t.Fatalf("traces for %d drops, want %d", got, cfg.Drops())
	}
	for drop, row := range res.Traces {
		for si, tr := range row {
			if tr.Scheme != cfg.Schemes[si] {
				t.Fatalf("drop %d slot %d scheme %q, want %q", drop, si, tr.Scheme, cfg.Schemes[si])
			}
			if len(tr.Frames) != cfg.Frames {
				t.Fatalf("drop %d %s: %d frames, want %d", drop, tr.Scheme, len(tr.Frames), cfg.Frames)
			}
			// Cadence: frames 0 and 3 realign under RealignEvery=3.
			if tr.Realigns != 2 {
				t.Errorf("drop %d %s: %d realigns, want 2", drop, tr.Scheme, tr.Realigns)
			}
			if tr.Efficiency < 0 || tr.Efficiency > 1+1e-12 {
				t.Errorf("drop %d %s: efficiency %g outside [0,1]", drop, tr.Scheme, tr.Efficiency)
			}
			for _, f := range tr.Frames {
				if f.Outage && f.DataBits != 0 {
					t.Errorf("drop %d %s frame %d: outage frame delivered %g bits", drop, tr.Scheme, f.Frame, f.DataBits)
				}
				if !f.Realigned && f.TrainSlots != 0 {
					t.Errorf("drop %d %s frame %d: tracking frame paid %d train slots", drop, tr.Scheme, f.Frame, f.TrainSlots)
				}
			}
		}
	}
	if len(res.Time.Series) != len(cfg.Schemes) || len(res.Speed.Series) != len(cfg.Schemes) {
		t.Fatalf("figure series %d/%d, want %d per figure", len(res.Time.Series), len(res.Speed.Series), len(cfg.Schemes))
	}
	for _, s := range res.Time.Series {
		if len(s.X) != cfg.Frames {
			t.Fatalf("time series %s has %d points, want %d", s.Name, len(s.X), cfg.Frames)
		}
	}
	for _, s := range res.Speed.Series {
		if len(s.X) != len(cfg.SpeedsMPS) {
			t.Fatalf("speed series %s has %d points, want %d", s.Name, len(s.X), len(cfg.SpeedsMPS))
		}
	}
	if err := res.Manifest.Validate(); err != nil {
		t.Fatalf("manifest: %v", err)
	}
}

// The sweep must be worker-count invariant: the same config at
// Workers=1 and Workers=8 renders byte-identical CSVs.
func TestScenarioWorkerInvariance(t *testing.T) {
	cfg1 := tinyConfig()
	cfg1.Workers = 1
	res1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := tinyConfig()
	cfg8.Workers = 8
	res8, err := Run(cfg8)
	if err != nil {
		t.Fatal(err)
	}
	b1, b8 := renderCSV(t, res1), renderCSV(t, res8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("Workers=1 and Workers=8 CSVs differ:\n--- w1\n%s\n--- w8\n%s", b1, b8)
	}
}

// All schemes of a drop must experience the identical moving channel:
// the genie (scheme-independent) throughput sequence has to agree
// bitwise across schemes.
func TestScenarioSchemesShareDynamics(t *testing.T) {
	res, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for drop, row := range res.Traces {
		for si := 1; si < len(row); si++ {
			for f := range row[0].Frames {
				a, b := row[0].Frames[f], row[si].Frames[f]
				if math.Float64bits(a.GenieBits) != math.Float64bits(b.GenieBits) {
					t.Fatalf("drop %d frame %d: genie bits differ between %s and %s", drop, f, row[0].Scheme, row[si].Scheme)
				}
				if a.Blocked != b.Blocked {
					t.Fatalf("drop %d frame %d: blockage differs between schemes", drop, f)
				}
			}
		}
	}
}

// The warm variant must behave differently from the cold proposed
// somewhere in the sweep — if the carried estimate never changes a
// decision, the option is dead weight.
func TestScenarioWarmDiffersFromCold(t *testing.T) {
	res, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Traces {
		for f := range row[0].Frames {
			if row[0].Frames[f].SelSNRDB != row[1].Frames[f].SelSNRDB {
				return // diverged: warm state influenced a selection
			}
		}
	}
	t.Fatal("proposed and proposed-warm produced identical traces everywhere")
}

func TestTraceCodecRoundTrip(t *testing.T) {
	tr := Trace{
		Scheme:   "proposed",
		SpeedIdx: 1,
		UE:       3,
		Frames: []FramePoint{
			{Frame: 0, Realigned: true, TrainSlots: 16, SelSNRDB: 3.7, OptSNRDB: 5.1, DataBits: 123.456, GenieBits: 200.5, Blocked: 1},
			{Frame: 1, SelSNRDB: math.Inf(-1), OptSNRDB: 4.9, Outage: true, DataBits: 0, GenieBits: 199.25},
		},
	}
	payload, err := encodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeTrace(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != tr.Scheme || got.SpeedIdx != tr.SpeedIdx || got.UE != tr.UE || len(got.Frames) != len(tr.Frames) {
		t.Fatalf("identity fields mangled: %+v", got)
	}
	for i := range tr.Frames {
		a, b := tr.Frames[i], got.Frames[i]
		if math.Float64bits(a.SelSNRDB) != math.Float64bits(b.SelSNRDB) ||
			math.Float64bits(a.OptSNRDB) != math.Float64bits(b.OptSNRDB) ||
			math.Float64bits(a.DataBits) != math.Float64bits(b.DataBits) ||
			math.Float64bits(a.GenieBits) != math.Float64bits(b.GenieBits) {
			t.Fatalf("frame %d floats not bit-exact: %+v vs %+v", i, a, b)
		}
		if a.Realigned != b.Realigned || a.TrainSlots != b.TrainSlots || a.Outage != b.Outage || a.Blocked != b.Blocked {
			t.Fatalf("frame %d fields mangled: %+v vs %+v", i, a, b)
		}
	}
	if got.OutageFrames != 1 || got.Realigns != 1 {
		t.Fatalf("aggregates not recomputed: %+v", got)
	}
}

func TestCanonicalHashIgnoresRuntimeKnobs(t *testing.T) {
	a := tinyConfig()
	b := tinyConfig()
	b.Workers = 8
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("Workers changed the canonical hash")
	}
	c := tinyConfig()
	c.Seed = 8
	if a.CanonicalHash() == c.CanonicalHash() {
		t.Fatal("Seed did not change the canonical hash")
	}
}

// An interrupted journaled run resumed from its journal must render a
// CSV byte-identical to an uninterrupted run.
func TestScenarioResumeByteIdentity(t *testing.T) {
	baseline, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := renderCSV(t, baseline)

	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.journal")
	j, err := journal.Create(path, JournalHeader(tinyConfig()))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt mid-run: cancel shortly after the sweep starts. Some
	// cells land in the journal, the rest are cut off.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	cfg := tinyConfig()
	cfg.Workers = 2
	cfg.Journal = j
	_, err = RunContext(ctx, cfg)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	interrupted := err != nil
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume from the journal and compare bytes.
	j2, err := journal.Open(path, JournalHeader(tinyConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfg2 := tinyConfig()
	cfg2.Journal = j2
	res, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	got := renderCSV(t, res)
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed CSV differs from uninterrupted run (interrupted=%v):\n--- want\n%s\n--- got\n%s", interrupted, want, got)
	}
	if res.Manifest.Resume == nil {
		t.Fatal("resumed run manifest has no resume summary")
	}
}

// Cancellation must propagate out as context.Canceled with no partial
// result.
func TestScenarioCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, tinyConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := tinyConfig()
	bad.Motion = "teleport"
	if _, err := Run(bad); err == nil {
		t.Fatal("unknown motion model accepted")
	}
	bad2 := tinyConfig()
	bad2.AlignSlots = 100
	bad2.SlotBudget = 50
	if _, err := Run(bad2); err == nil {
		t.Fatal("align slots exceeding slot budget accepted")
	}
}
