package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"mmwalign/internal/journal"
)

// FigureID is the journal figure identity of scenario runs; a scenario
// journal never resumes a static-figure run or vice versa.
const FigureID = "scenario"

// jsonMarshalConfig serializes the config for the manifest block.
func jsonMarshalConfig(c Config) (json.RawMessage, error) {
	return json.Marshal(c)
}

// CanonicalHash returns the canonical hash of everything that
// determines scenario output: the fully defaulted config with the
// runtime-only knobs (Workers, Journal) zeroed. Two configs with equal
// hashes produce bit-identical traces, which is the resume-safety
// check a journal header carries.
func (c Config) CanonicalHash() string {
	c = c.WithDefaults()
	c.Workers = 0
	c.Journal = nil
	data, err := json.Marshal(c)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// JournalHeader builds the journal header for a scenario run: the
// canonical config hash plus the run shape for inspection tooling.
// Version is stamped by the CLI layer.
func JournalHeader(cfg Config) journal.Header {
	rc := cfg.WithDefaults()
	return journal.Header{
		Figure:     FigureID,
		ConfigHash: rc.CanonicalHash(),
		Seed:       rc.Seed,
		Drops:      rc.Drops(),
		Schemes:    append([]string(nil), rc.Schemes...),
	}
}

// frameRecord is the on-disk form of one FramePoint. Every float64 is
// stored as its IEEE-754 bit pattern so a journal replay reproduces the
// trace bit-for-bit — the property the byte-identical resume guarantee
// rests on.
type frameRecord struct {
	Frame      int    `json:"frame"`
	Realigned  bool   `json:"realigned,omitempty"`
	TrainSlots int    `json:"train_slots,omitempty"`
	SelBits    uint64 `json:"sel_bits"`
	OptBits    uint64 `json:"opt_bits"`
	Outage     bool   `json:"outage,omitempty"`
	DataBits   uint64 `json:"data_bits"`
	GenieBits  uint64 `json:"genie_bits"`
	Blocked    int    `json:"blocked,omitempty"`
}

// traceRecord is the journal payload of one completed cell. Only the
// frame records are stored; the aggregates are recomputed on decode.
type traceRecord struct {
	Scheme   string        `json:"scheme"`
	SpeedIdx int           `json:"speed_idx"`
	UE       int           `json:"ue"`
	Frames   []frameRecord `json:"frames"`
}

// encodeTrace serializes a trace for the journal.
func encodeTrace(tr Trace) (json.RawMessage, error) {
	rec := traceRecord{
		Scheme:   tr.Scheme,
		SpeedIdx: tr.SpeedIdx,
		UE:       tr.UE,
		Frames:   make([]frameRecord, len(tr.Frames)),
	}
	for i, f := range tr.Frames {
		rec.Frames[i] = frameRecord{
			Frame:      f.Frame,
			Realigned:  f.Realigned,
			TrainSlots: f.TrainSlots,
			SelBits:    math.Float64bits(f.SelSNRDB),
			OptBits:    math.Float64bits(f.OptSNRDB),
			Outage:     f.Outage,
			DataBits:   math.Float64bits(f.DataBits),
			GenieBits:  math.Float64bits(f.GenieBits),
			Blocked:    f.Blocked,
		}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding trace: %w", err)
	}
	return data, nil
}

// decodeTrace reverses encodeTrace, restoring every float bit-for-bit
// and recomputing the trace aggregates.
func decodeTrace(data json.RawMessage) (Trace, error) {
	var rec traceRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return Trace{}, fmt.Errorf("scenario: decoding journaled trace: %w", err)
	}
	tr := Trace{
		Scheme:   rec.Scheme,
		SpeedIdx: rec.SpeedIdx,
		UE:       rec.UE,
		Frames:   make([]FramePoint, len(rec.Frames)),
	}
	for i, f := range rec.Frames {
		tr.Frames[i] = FramePoint{
			Frame:      f.Frame,
			Realigned:  f.Realigned,
			TrainSlots: f.TrainSlots,
			SelSNRDB:   math.Float64frombits(f.SelBits),
			OptSNRDB:   math.Float64frombits(f.OptBits),
			Outage:     f.Outage,
			DataBits:   math.Float64frombits(f.DataBits),
			GenieBits:  math.Float64frombits(f.GenieBits),
			Blocked:    f.Blocked,
		}
	}
	tr.finalize()
	return tr, nil
}
