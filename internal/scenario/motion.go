package scenario

import (
	"math"

	"mmwalign/internal/rng"
)

// Motion model names accepted by Config.Motion.
const (
	MotionWaypoint   = "waypoint"
	MotionLinear     = "linear"
	MotionRandomWalk = "random-walk"
)

// mover tracks one UE's kinematics in the BS-centered plane (meters,
// BS at the origin). All randomness flows through the motion source
// handed to step, so a mover replayed from the same split produces the
// same trajectory regardless of scheme or worker interleaving.
type mover struct {
	model   string
	rangeM  float64
	x, y    float64 // position
	heading float64 // rad; linear and random-walk
	wx, wy  float64 // current waypoint; waypoint model only
}

// newMover places the UE at the nominal cell range on a random bearing
// and primes the model-specific state.
func newMover(src *rng.Source, model string, rangeM float64) *mover {
	m := &mover{model: model, rangeM: rangeM}
	bearing := src.Uniform(-math.Pi/3, math.Pi/3)
	m.x = rangeM * math.Cos(bearing)
	m.y = rangeM * math.Sin(bearing)
	m.heading = src.Uniform(-math.Pi, math.Pi)
	m.pickWaypoint(src)
	return m
}

// pickWaypoint draws the next destination: uniform over the annulus
// [R/2, 3R/2] within the ±60° service sector.
func (m *mover) pickWaypoint(src *rng.Source) {
	r := src.Uniform(0.5*m.rangeM, 1.5*m.rangeM)
	a := src.Uniform(-math.Pi/3, math.Pi/3)
	m.wx = r * math.Cos(a)
	m.wy = r * math.Sin(a)
}

// step advances the UE by dist meters under its motion model. The
// random draws per call are model-dependent but frame-deterministic:
// waypoint consumes randomness only on arrival, random-walk one normal
// per call, linear none.
func (m *mover) step(src *rng.Source, dist float64) {
	switch m.model {
	case MotionLinear:
		m.x += dist * math.Cos(m.heading)
		m.y += dist * math.Sin(m.heading)
	case MotionRandomWalk:
		m.heading += src.NormalScaled(0, 0.3)
		m.x += dist * math.Cos(m.heading)
		m.y += dist * math.Sin(m.heading)
	default: // waypoint
		for dist > 0 {
			dx, dy := m.wx-m.x, m.wy-m.y
			gap := math.Hypot(dx, dy)
			if gap <= dist {
				// Arrive and spend the leftover distance toward a fresh
				// destination. A degenerate draw onto the current
				// position re-rolls next iteration (measure zero under
				// the continuous waypoint distribution).
				m.x, m.y = m.wx, m.wy
				dist -= gap
				m.pickWaypoint(src)
				continue
			}
			m.x += dist / gap * dx
			m.y += dist / gap * dy
			dist = 0
		}
	}
}

// distance returns the BS→UE range, floored at 1 m so the path-loss
// term stays finite when a trajectory crosses the site.
func (m *mover) distance() float64 {
	d := math.Hypot(m.x, m.y)
	if d < 1 {
		return 1
	}
	return d
}

// bearing returns the BS→UE azimuth.
func (m *mover) bearing() float64 { return math.Atan2(m.y, m.x) }

// elevation returns the depression angle from a BS of the given height
// down to the UE.
func elevation(heightM, distM float64) float64 {
	return math.Atan2(heightM, distM)
}

// angleDelta returns the wrapped difference a-b in (-π, π].
func angleDelta(a, b float64) float64 {
	d := a - b
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
