package channel

import (
	"math"

	"mmwalign/internal/antenna"
	"mmwalign/internal/rng"
)

// NYCParams parameterizes the clustered multipath generator following the
// 28 GHz New York City statistical model of Akdeniz et al. (paper
// reference [3]): a Poisson number of path clusters with at most 2–3
// dominant, heavy-tailed cluster power fractions, and small per-cluster
// angular spreads — the structure that makes the spatial covariance
// low-rank.
type NYCParams struct {
	// ClusterRate is the Poisson rate of the cluster count; the count is
	// max(1, Poisson(ClusterRate)). NYC 28 GHz: 1.8.
	ClusterRate float64
	// PowerTailExp is the exponent r_τ of the cluster power fraction law
	// γ'_k = U_k^{r_τ−1} · 10^{−0.1·Z_k}. NYC 28 GHz: 2.8.
	PowerTailExp float64
	// PowerShadowDB is the per-cluster lognormal shadowing ζ (dB) in the
	// power fraction law. NYC 28 GHz: 4.0.
	PowerShadowDB float64
	// SubpathsPerCluster is the number of Laplacian-spread subpaths
	// synthesized per cluster. The model of [3] uses a dense subpath
	// continuum; 20 subpaths reproduce its covariance accurately.
	SubpathsPerCluster int
	// RMSSpreadAoADeg / RMSSpreadAoDDeg are the median per-cluster rms
	// angular spreads in degrees (horizontal). NYC 28 GHz: 15.5° AoA,
	// 10.2° AoD.
	RMSSpreadAoADeg, RMSSpreadAoDDeg float64
	// RMSSpreadElDeg is the vertical (elevation) rms spread, which the
	// measurements find much smaller. NYC: 6°.
	RMSSpreadElDeg float64
	// SpreadSigma is the lognormal sigma of the per-cluster spread draw
	// around its median.
	SpreadSigma float64
	// AzSpan / ElSpan bound cluster central angles as in SinglePathSpec.
	AzSpan, ElSpan float64
	// MaxClusters caps the cluster count (0 = no cap).
	MaxClusters int
}

// DefaultNYC28 returns the 28 GHz NYC parameter set used in the paper's
// multipath evaluation.
func DefaultNYC28() NYCParams {
	return NYCParams{
		ClusterRate:        1.8,
		PowerTailExp:       2.8,
		PowerShadowDB:      4.0,
		SubpathsPerCluster: 20,
		RMSSpreadAoADeg:    15.5,
		RMSSpreadAoDDeg:    10.2,
		RMSSpreadElDeg:     6.0,
		SpreadSigma:        0.25,
		AzSpan:             math.Pi,
		ElSpan:             math.Pi / 2,
		MaxClusters:        0,
	}
}

// DefaultNYC73 returns a 73 GHz NYC-like parameter set (fewer, narrower
// clusters) for sensitivity studies beyond the paper's headline figures.
func DefaultNYC73() NYCParams {
	p := DefaultNYC28()
	p.ClusterRate = 1.9
	p.RMSSpreadAoADeg = 15.4
	p.RMSSpreadAoDDeg = 10.5
	return p
}

// NewNYCMultipath draws a clustered multipath channel from the NYC
// statistical model. Each cluster contributes SubpathsPerCluster subpaths
// whose angles are Laplacian-distributed around the cluster center with
// the drawn rms spread and whose powers split the cluster power evenly.
func NewNYCMultipath(src *rng.Source, tx, rx antenna.Array, p NYCParams) (*Channel, error) {
	if p.ClusterRate == 0 {
		p = DefaultNYC28()
	}
	if p.AzSpan == 0 {
		p.AzSpan = math.Pi
	}
	if p.ElSpan == 0 {
		p.ElSpan = math.Pi / 2
	}
	if p.SubpathsPerCluster <= 0 {
		p.SubpathsPerCluster = 20
	}

	k := src.Poisson(p.ClusterRate)
	if k < 1 {
		k = 1
	}
	if p.MaxClusters > 0 && k > p.MaxClusters {
		k = p.MaxClusters
	}

	// Cluster power fractions (Akdeniz et al., eq. for γ'_k):
	// γ'_k = U_k^{r_τ−1} · 10^{−0.1·Z_k},  Z_k ~ N(0, ζ²), then normalize.
	fractions := make([]float64, k)
	var total float64
	for i := range fractions {
		u := src.Float64()
		z := src.NormalScaled(0, p.PowerShadowDB)
		fractions[i] = math.Pow(u, p.PowerTailExp-1) * math.Pow(10, -0.1*z)
		total += fractions[i]
	}

	// Per-cluster geometry and subpaths.
	var paths []Path
	for i := 0; i < k; i++ {
		centerAoD := antenna.Direction{
			Az: src.Uniform(-p.AzSpan/2, p.AzSpan/2),
			El: src.Uniform(-p.ElSpan/2, p.ElSpan/2),
		}
		centerAoA := antenna.Direction{
			Az: src.Uniform(-p.AzSpan/2, p.AzSpan/2),
			El: src.Uniform(-p.ElSpan/2, p.ElSpan/2),
		}
		// Lognormal rms spreads around the medians. The Laplace scale b
		// relates to the rms spread σ by σ = b·√2.
		spreadAoA := deg2rad(src.Lognormal(math.Log(p.RMSSpreadAoADeg), p.SpreadSigma))
		spreadAoD := deg2rad(src.Lognormal(math.Log(p.RMSSpreadAoDDeg), p.SpreadSigma))
		spreadEl := deg2rad(src.Lognormal(math.Log(p.RMSSpreadElDeg), p.SpreadSigma))

		clusterPower := fractions[i] / total
		perSub := clusterPower / float64(p.SubpathsPerCluster)
		for s := 0; s < p.SubpathsPerCluster; s++ {
			paths = append(paths, Path{
				Power: perSub,
				AoD: antenna.Direction{
					Az: clampAngle(centerAoD.Az+src.Laplace(spreadAoD/math.Sqrt2), p.AzSpan),
					El: clampAngle(centerAoD.El+src.Laplace(spreadEl/math.Sqrt2), p.ElSpan),
				},
				AoA: antenna.Direction{
					Az: clampAngle(centerAoA.Az+src.Laplace(spreadAoA/math.Sqrt2), p.AzSpan),
					El: clampAngle(centerAoA.El+src.Laplace(spreadEl/math.Sqrt2), p.ElSpan),
				},
			})
		}
	}
	return New(tx, rx, paths)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }

// clampAngle limits an angle to [−span/2, span/2].
func clampAngle(a, span float64) float64 {
	lim := span / 2
	if a > lim {
		return lim
	}
	if a < -lim {
		return -lim
	}
	return a
}
