package channel

import (
	"math"
	"testing"

	"mmwalign/internal/rng"
)

func TestLinkStateString(t *testing.T) {
	tests := []struct {
		s    LinkState
		want string
	}{
		{StateLOS, "LOS"},
		{StateNLOS, "NLOS"},
		{StateOutage, "outage"},
		{LinkState(0), "LinkState(0)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestDrawStateDistanceTrend(t *testing.T) {
	p := DefaultPathLoss28()
	src := rng.New(40)
	count := func(d float64, want LinkState) float64 {
		hits := 0
		const n = 5000
		for i := 0; i < n; i++ {
			if p.DrawState(src, d) == want {
				hits++
			}
		}
		return float64(hits) / n
	}
	// LOS probability must decrease with distance.
	losNear := count(20, StateLOS)
	losFar := count(200, StateLOS)
	if losNear <= losFar {
		t.Errorf("LOS fraction near=%g far=%g; should decrease", losNear, losFar)
	}
	// Outage must grow with distance and be negligible up close.
	outNear := count(20, StateOutage)
	outFar := count(400, StateOutage)
	if outNear > 0.01 {
		t.Errorf("outage at 20m = %g, want ~0", outNear)
	}
	if outFar < outNear {
		t.Errorf("outage near=%g far=%g; should increase", outNear, outFar)
	}
}

func TestPathLossMonotoneInDistance(t *testing.T) {
	p := DefaultPathLoss28()
	// Use the deterministic part by averaging shadowing away.
	src := rng.New(41)
	avg := func(d float64, s LinkState) float64 {
		var sum float64
		const n = 3000
		for i := 0; i < n; i++ {
			sum += p.PathLossDB(src, d, s)
		}
		return sum / n
	}
	if near, far := avg(50, StateNLOS), avg(200, StateNLOS); near >= far {
		t.Errorf("NLOS path loss near=%g far=%g; should increase", near, far)
	}
	if los, nlos := avg(100, StateLOS), avg(100, StateNLOS); los >= nlos {
		t.Errorf("LOS loss %g should be below NLOS loss %g", los, nlos)
	}
}

func TestPathLossOutageInfinite(t *testing.T) {
	p := DefaultPathLoss28()
	if pl := p.PathLossDB(rng.New(42), 100, StateOutage); !math.IsInf(pl, 1) {
		t.Errorf("outage path loss = %g, want +Inf", pl)
	}
}

func TestPathLossClampsShortDistance(t *testing.T) {
	p := DefaultPathLoss28()
	p.SigmaLOS = 0 // deterministic
	src := rng.New(43)
	at0 := p.PathLossDB(src, 0.01, StateLOS)
	at1 := p.PathLossDB(src, 1, StateLOS)
	if at0 != at1 {
		t.Errorf("path loss below 1m (%g) differs from 1m (%g)", at0, at1)
	}
}

func TestLinkBudgetSNR(t *testing.T) {
	b := LinkBudget{TXPowerDBm: 30, BandwidthHz: 1e9, NoiseFigureDB: 7}
	// Noise floor: -174 + 90 + 7 = -77 dBm. With 100 dB path loss the
	// pre-beamforming SNR is 30 - 100 + 77 = 7 dB.
	got := b.SNRLinear(100)
	want := math.Pow(10, 0.7)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("SNR = %g, want %g", got, want)
	}
	if b.SNRLinear(math.Inf(1)) != 0 {
		t.Error("outage SNR should be 0")
	}
}

func TestDBConversions(t *testing.T) {
	if got := DBToLinear(10); math.Abs(got-10) > 1e-12 {
		t.Errorf("DBToLinear(10) = %g", got)
	}
	if got := LinearToDB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("LinearToDB(100) = %g", got)
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
	// Round trip.
	for _, db := range []float64{-30, -3, 0, 12.5} {
		if got := LinearToDB(DBToLinear(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("round trip %g -> %g", db, got)
		}
	}
}
