package channel

import (
	"math"

	"mmwalign/internal/antenna"
	"mmwalign/internal/rng"
)

// SinglePathSpec configures the single-path channel scenario of the
// paper's Fig. 5/7 evaluation: one dominant specular path with a random
// geometry.
type SinglePathSpec struct {
	// AzSpan and ElSpan bound the random angles: azimuths are uniform in
	// [−AzSpan/2, AzSpan/2], elevations in [−ElSpan/2, ElSpan/2]. Zero
	// values default to the hemisphere used by the codebooks (π and π/2).
	AzSpan, ElSpan float64
}

// withDefaults fills zero fields.
func (s SinglePathSpec) withDefaults() SinglePathSpec {
	if s.AzSpan == 0 {
		s.AzSpan = math.Pi
	}
	if s.ElSpan == 0 {
		s.ElSpan = math.Pi / 2
	}
	return s
}

// NewSinglePath draws a single-path channel with uniformly random AoD and
// AoA inside the spec's angular spans.
func NewSinglePath(src *rng.Source, tx, rx antenna.Array, spec SinglePathSpec) (*Channel, error) {
	spec = spec.withDefaults()
	p := Path{
		Power: 1,
		AoD: antenna.Direction{
			Az: src.Uniform(-spec.AzSpan/2, spec.AzSpan/2),
			El: src.Uniform(-spec.ElSpan/2, spec.ElSpan/2),
		},
		AoA: antenna.Direction{
			Az: src.Uniform(-spec.AzSpan/2, spec.AzSpan/2),
			El: src.Uniform(-spec.ElSpan/2, spec.ElSpan/2),
		},
	}
	return New(tx, rx, []Path{p})
}
