// Package channel implements the mmWave propagation models the paper
// evaluates on: a single-path channel and a clustered multipath channel
// with the NYC 28 GHz statistics of Akdeniz et al. (reference [3] of the
// paper), plus the supporting pieces — RX spatial covariance synthesis,
// independent per-measurement Rayleigh fading, Gauss-Markov channel
// aging, and the LOS/NLOS/outage path-loss model used by the MAC-level
// simulations.
//
// The physical model is double-directional:
//
//	H = √(M·N) · Σ_p √(P_p) · g_p · a_rx(AoA_p) · a_tx(AoD_p)ᴴ
//
// with unit-norm steering vectors, mean path power fractions P_p summing
// to 1, and small-scale coefficients g_p ~ CN(0,1) drawn independently
// for every measurement (the paper's assumption under Eq. 11). The
// √(M·N) factor restores the physical aperture gain that the unit-norm
// convention removes.
package channel

import (
	"fmt"
	"math"

	"mmwalign/internal/antenna"
	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

// Path is one propagation path (or subpath) with its mean power
// fraction and departure/arrival directions.
type Path struct {
	// Power is the mean power fraction of the path; all paths of a
	// channel sum to 1.
	Power float64
	// AoD is the angle of departure at the transmitter.
	AoD antenna.Direction
	// AoA is the angle of arrival at the receiver.
	AoA antenna.Direction
}

// Channel is a double-directional mmWave channel between a TX and an RX
// array.
type Channel struct {
	// TX and RX are the array geometries at each end.
	TX, RX antenna.Array
	// Paths are the propagation paths. Their powers sum to 1.
	Paths []Path

	// cached per-path steering vectors
	aTX, aRX []cmat.Vector
	// fading state for correlated evolution (nil until first use)
	gains []complex128
}

// New constructs a channel and precomputes the per-path steering vectors.
// Path powers are normalized to sum to 1. Returns an error if no paths
// are given or the total power is not positive.
func New(tx, rx antenna.Array, paths []Path) (*Channel, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("channel: no paths")
	}
	var total float64
	for _, p := range paths {
		if p.Power < 0 {
			return nil, fmt.Errorf("channel: negative path power %g", p.Power)
		}
		total += p.Power
	}
	if total <= 0 {
		return nil, fmt.Errorf("channel: total path power %g must be positive", total)
	}
	c := &Channel{TX: tx, RX: rx}
	c.Paths = make([]Path, len(paths))
	for i, p := range paths {
		p.Power /= total
		c.Paths[i] = p
		c.aTX = append(c.aTX, tx.Steering(p.AoD))
		c.aRX = append(c.aRX, rx.Steering(p.AoA))
	}
	return c, nil
}

// apertureGain is the √(M·N) factor restoring physical array gain.
func (c *Channel) apertureGain() float64 {
	return math.Sqrt(float64(c.TX.Elements() * c.RX.Elements()))
}

// Sample draws an instantaneous channel matrix H with fresh iid CN(0,1)
// small-scale coefficients — the "independently faded across
// measurements" regime of the paper.
func (c *Channel) Sample(src *rng.Source) *cmat.Matrix {
	h := cmat.New(c.RX.Elements(), c.TX.Elements())
	ap := complex(c.apertureGain(), 0)
	for i, p := range c.Paths {
		g := src.ComplexNormal(1) * complex(math.Sqrt(p.Power), 0) * ap
		h.AddInPlace(g, c.aRX[i].Outer(c.aTX[i]))
	}
	return h
}

// SampleResponse draws vᴴ·H·u for a fresh fading realization without
// forming H: vᴴHu = √(M·N)·Σ_p √(P_p)·g_p·(vᴴa_rx)·(a_txᴴu). It is the
// fast path used by the sounder, O(paths·(M+N)) instead of O(N·M·paths).
// Statistically identical to v.Dot(Sample(src).MulVec(u)).
func (c *Channel) SampleResponse(src *rng.Source, u, v cmat.Vector) complex128 {
	var out complex128
	ap := complex(c.apertureGain(), 0)
	for i, p := range c.Paths {
		g := src.ComplexNormal(1) * complex(math.Sqrt(p.Power), 0)
		out += g * v.Dot(c.aRX[i]) * c.aTX[i].Dot(u)
	}
	return out * ap
}

// ResponseSampler precomputes the deterministic per-path couplings
// √(M·N)·√(P_p)·(vᴴa_rx)·(a_txᴴu) for a fixed beam pair and returns a
// closure drawing iid realizations of vᴴHu. Use when the same pair is
// sounded across several snapshots.
func (c *Channel) ResponseSampler(u, v cmat.Vector) func(*rng.Source) complex128 {
	coef := make([]complex128, len(c.Paths))
	ap := complex(c.apertureGain(), 0)
	for i, p := range c.Paths {
		coef[i] = ap * complex(math.Sqrt(p.Power), 0) * v.Dot(c.aRX[i]) * c.aTX[i].Dot(u)
	}
	return func(src *rng.Source) complex128 {
		var out complex128
		for _, cf := range coef {
			out += src.ComplexNormal(1) * cf
		}
		return out
	}
}

// SampleCorrelated evolves the small-scale coefficients as a Gauss-Markov
// process with correlation rho per call (rho=0 reduces to Sample, rho=1
// freezes the channel). Used by the MAC simulations to model channel
// aging between re-alignment rounds.
func (c *Channel) SampleCorrelated(src *rng.Source, rho float64) *cmat.Matrix {
	if c.gains == nil {
		c.gains = make([]complex128, len(c.Paths))
		for i := range c.gains {
			c.gains[i] = src.ComplexNormal(1)
		}
	} else {
		innov := math.Sqrt(1 - rho*rho)
		for i := range c.gains {
			c.gains[i] = complex(rho, 0)*c.gains[i] + complex(innov, 0)*src.ComplexNormal(1)
		}
	}
	h := cmat.New(c.RX.Elements(), c.TX.Elements())
	ap := complex(c.apertureGain(), 0)
	for i, p := range c.Paths {
		g := c.gains[i] * complex(math.Sqrt(p.Power), 0) * ap
		h.AddInPlace(g, c.aRX[i].Outer(c.aTX[i]))
	}
	return h
}

// MeanPairGain returns the expected beamforming power gain
// E|vᴴ·H·u|² = M·N·Σ_p P_p·|a_tx(AoD_p)ᴴu|²·|vᴴa_rx(AoA_p)|² for unit
// beamforming vectors u (TX) and v (RX). This is the ground-truth metric
// the loss evaluation uses; strategies never see it.
func (c *Channel) MeanPairGain(u, v cmat.Vector) float64 {
	mn := float64(c.TX.Elements() * c.RX.Elements())
	var sum float64
	for i, p := range c.Paths {
		gt := c.aTX[i].Dot(u)
		gr := v.Dot(c.aRX[i])
		sum += p.Power * abs2(gt) * abs2(gr)
	}
	return mn * sum
}

// RXCovariance returns the receive-side spatial covariance conditioned on
// the TX beam u: Q_u = E[(Hu)(Hu)ᴴ] = M·N·Σ_p P_p·|a_txᴴu|²·a_rx·a_rxᴴ.
func (c *Channel) RXCovariance(u cmat.Vector) *cmat.Matrix {
	n := c.RX.Elements()
	mn := float64(c.TX.Elements()) * float64(n)
	q := cmat.New(n, n)
	for i, p := range c.Paths {
		w := mn * p.Power * abs2(c.aTX[i].Dot(u))
		if w == 0 {
			continue
		}
		q.AddInPlace(complex(w, 0), c.aRX[i].Outer(c.aRX[i]))
	}
	return q
}

// RXCovarianceIsotropic returns the receive-side spatial covariance
// averaged over an isotropic random unit-norm TX beam
// (E|a_txᴴu|² = 1/M): Q = N·Σ_p P_p·a_rx·a_rxᴴ. This is the matrix "Q"
// of the paper's system model, whose low rank the estimator exploits.
func (c *Channel) RXCovarianceIsotropic() *cmat.Matrix {
	n := c.RX.Elements()
	q := cmat.New(n, n)
	for i, p := range c.Paths {
		q.AddInPlace(complex(float64(n)*p.Power, 0), c.aRX[i].Outer(c.aRX[i]))
	}
	return q
}

// Drift perturbs every path's arrival and departure angles by a Gaussian
// random walk with standard deviation sigmaRad (radians) per call,
// clamping to the visible hemisphere, and rebuilds the cached steering
// vectors. It models the slow geometric evolution of the channel between
// MAC superframes that forces periodic re-alignment; the spatial
// covariance changes while total power is preserved.
func (c *Channel) Drift(src *rng.Source, sigmaRad float64) {
	clamp := func(a, lim float64) float64 {
		if a > lim {
			return lim
		}
		if a < -lim {
			return -lim
		}
		return a
	}
	for i := range c.Paths {
		p := &c.Paths[i]
		p.AoA.Az = clamp(p.AoA.Az+src.NormalScaled(0, sigmaRad), math.Pi/2)
		p.AoA.El = clamp(p.AoA.El+src.NormalScaled(0, sigmaRad), math.Pi/4)
		p.AoD.Az = clamp(p.AoD.Az+src.NormalScaled(0, sigmaRad), math.Pi/2)
		p.AoD.El = clamp(p.AoD.El+src.NormalScaled(0, sigmaRad), math.Pi/4)
		c.aTX[i] = c.TX.Steering(p.AoD)
		c.aRX[i] = c.RX.Steering(p.AoA)
	}
}

// Rotate applies a deterministic bearing change to every path: dAz and
// dEl (radians) shift the arrival and departure angles in opposite
// senses, modeling the geometric rotation of the BS→UE line as the UE
// moves laterally — when the terminal shifts one way, arrivals swing
// with the bearing while departures swing against it. Angles clamp to
// the same visible-hemisphere limits as Drift and the cached steering
// vectors are rebuilt. Unlike Drift this consumes no randomness: the
// trajectory engine derives (dAz, dEl) from UE kinematics so identical
// motion yields identical channels regardless of scheme or worker
// interleaving.
func (c *Channel) Rotate(dAz, dEl float64) {
	clamp := func(a, lim float64) float64 {
		if a > lim {
			return lim
		}
		if a < -lim {
			return -lim
		}
		return a
	}
	for i := range c.Paths {
		p := &c.Paths[i]
		p.AoA.Az = clamp(p.AoA.Az+dAz, math.Pi/2)
		p.AoA.El = clamp(p.AoA.El+dEl, math.Pi/4)
		p.AoD.Az = clamp(p.AoD.Az-dAz, math.Pi/2)
		p.AoD.El = clamp(p.AoD.El-dEl, math.Pi/4)
		c.aTX[i] = c.TX.Steering(p.AoD)
		c.aRX[i] = c.RX.Steering(p.AoA)
	}
}

// DominantPaths returns the indices of paths carrying at least frac of
// the total power, strongest first. Useful for characterizing how many
// clusters dominate a drop.
func (c *Channel) DominantPaths(frac float64) []int {
	var idx []int
	for i, p := range c.Paths {
		if p.Power >= frac {
			idx = append(idx, i)
		}
	}
	// Insertion sort by descending power; path counts are tiny.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && c.Paths[idx[j]].Power > c.Paths[idx[j-1]].Power; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

func abs2(z complex128) float64 {
	return real(z)*real(z) + imag(z)*imag(z)
}
