package channel

import (
	"math"
	"testing"

	"mmwalign/internal/rng"
)

func multipathFixture(t *testing.T, seed int64) *Channel {
	t.Helper()
	tx, rx := testArrays()
	p := DefaultNYC28()
	p.MaxClusters = 3
	p.SubpathsPerCluster = 5
	ch, err := NewNYCMultipath(rng.New(seed), tx, rx, p)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewBlockerValidation(t *testing.T) {
	ch := multipathFixture(t, 60)
	cases := []struct {
		name      string
		groupSize int
		pb, pu    float64
		att       float64
	}{
		{"zero group", 0, 0.1, 0.1, 20},
		{"bad pBlock", 1, -0.1, 0.1, 20},
		{"bad pUnblock", 1, 0.1, 1.5, 20},
		{"negative attenuation", 1, 0.1, 0.1, -3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewBlocker(ch, tc.groupSize, tc.pb, tc.pu, tc.att); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestBlockerGrouping(t *testing.T) {
	ch := multipathFixture(t, 61)
	b, err := NewBlocker(ch, 5, 0.1, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ch.Paths) / 5; b.Clusters() != want {
		t.Errorf("Clusters = %d, want %d", b.Clusters(), want)
	}
	if b.BlockedCount() != 0 {
		t.Errorf("initial blocked count = %d", b.BlockedCount())
	}
}

func TestForceBlockAttenuatesCluster(t *testing.T) {
	ch := multipathFixture(t, 62)
	before := make([]float64, len(ch.Paths))
	for i, p := range ch.Paths {
		before[i] = p.Power
	}
	b, err := NewBlocker(ch, 5, 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ForceBlock(0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := before[i] * 0.01 // 20 dB
		if math.Abs(ch.Paths[i].Power-want) > 1e-15 {
			t.Errorf("path %d power %g, want %g", i, ch.Paths[i].Power, want)
		}
	}
	// Other clusters untouched.
	for i := 5; i < len(ch.Paths); i++ {
		if ch.Paths[i].Power != before[i] {
			t.Errorf("path %d in unblocked cluster changed", i)
		}
	}
	// Unblocking restores exactly.
	if err := b.ForceBlock(0, false); err != nil {
		t.Fatal(err)
	}
	for i := range ch.Paths {
		if ch.Paths[i].Power != before[i] {
			t.Errorf("path %d not restored", i)
		}
	}
}

func TestForceBlockDegradesBeamGain(t *testing.T) {
	ch := multipathFixture(t, 63)
	b, err := NewBlocker(ch, 5, 0, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Beam at the first cluster's strongest subpath.
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	gBefore := ch.MeanPairGain(u, v)
	if err := b.ForceBlock(0, true); err != nil {
		t.Fatal(err)
	}
	gAfter := ch.MeanPairGain(u, v)
	if gAfter >= gBefore/2 {
		t.Errorf("gain %g -> %g; blockage should slash it", gBefore, gAfter)
	}
}

func TestBlockerStepStationaryFraction(t *testing.T) {
	// With pBlock = pUnblock = 0.5 the stationary blocked fraction is
	// one half; verify over many steps and clusters.
	ch := multipathFixture(t, 64)
	b, err := NewBlocker(ch, 1, 0.5, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(65)
	var sum, n float64
	for step := 0; step < 4000; step++ {
		b.Step(src)
		sum += float64(b.BlockedCount())
		n += float64(b.Clusters())
	}
	frac := sum / n
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("stationary blocked fraction = %g, want 0.5", frac)
	}
}

func TestBlockerNeverStepsWithZeroProb(t *testing.T) {
	ch := multipathFixture(t, 66)
	b, err := NewBlocker(ch, 5, 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(67)
	for i := 0; i < 100; i++ {
		b.Step(src)
	}
	if b.BlockedCount() != 0 {
		t.Errorf("blocked %d clusters with pBlock=0", b.BlockedCount())
	}
}

func TestForceBlockErrorsOutOfRange(t *testing.T) {
	ch := multipathFixture(t, 68)
	b, err := NewBlocker(ch, 5, 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ForceBlock(b.Clusters(), true); err == nil {
		t.Fatal("expected error for out-of-range cluster")
	}
	if err := b.ForceBlock(-1, true); err == nil {
		t.Fatal("expected error for negative cluster")
	}
	if b.BlockedCount() != 0 {
		t.Error("failed ForceBlock mutated blocker state")
	}
}

func TestBlockerSinglePathOutage(t *testing.T) {
	// Blocking the only path of a single-path channel is an outage: the
	// optimal gain collapses by the attenuation depth.
	tx, rx := testArrays()
	ch, err := NewSinglePath(rng.New(69), tx, rx, SinglePathSpec{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBlocker(ch, 1, 0, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	gBefore := ch.MeanPairGain(u, v)
	if err := b.ForceBlock(0, true); err != nil {
		t.Fatal(err)
	}
	gAfter := ch.MeanPairGain(u, v)
	ratioDB := 10 * math.Log10(gBefore/gAfter)
	if math.Abs(ratioDB-25) > 1e-9 {
		t.Errorf("blockage depth = %g dB, want 25", ratioDB)
	}
}
