package channel

import (
	"math"
	"testing"

	"mmwalign/internal/antenna"
	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

func testArrays() (antenna.Array, antenna.Array) {
	return antenna.NewUPA(4, 4), antenna.NewUPA(8, 8)
}

func singlePathFixture(t *testing.T, seed int64) *Channel {
	t.Helper()
	tx, rx := testArrays()
	ch, err := NewSinglePath(rng.New(seed), tx, rx, SinglePathSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewNormalizesPowers(t *testing.T) {
	tx, rx := testArrays()
	ch, err := New(tx, rx, []Path{
		{Power: 2, AoD: antenna.Direction{Az: 0.1}, AoA: antenna.Direction{Az: 0.2}},
		{Power: 6, AoD: antenna.Direction{Az: -0.3}, AoA: antenna.Direction{Az: 0.4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range ch.Paths {
		total += p.Power
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("total power = %g, want 1", total)
	}
	if math.Abs(ch.Paths[1].Power-0.75) > 1e-12 {
		t.Errorf("path 1 power = %g, want 0.75", ch.Paths[1].Power)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	tx, rx := testArrays()
	if _, err := New(tx, rx, nil); err == nil {
		t.Error("expected error for empty path list")
	}
	if _, err := New(tx, rx, []Path{{Power: -1}}); err == nil {
		t.Error("expected error for negative power")
	}
	if _, err := New(tx, rx, []Path{{Power: 0}}); err == nil {
		t.Error("expected error for zero total power")
	}
}

func TestSampleShapeAndVariation(t *testing.T) {
	ch := singlePathFixture(t, 1)
	src := rng.New(2)
	h1 := ch.Sample(src)
	h2 := ch.Sample(src)
	if h1.Rows() != 64 || h1.Cols() != 16 {
		t.Fatalf("H shape = %dx%d, want 64x16", h1.Rows(), h1.Cols())
	}
	if h1.ApproxEqual(h2, 1e-9) {
		t.Error("consecutive samples are identical; fading is not refreshing")
	}
}

func TestSampleMeanPower(t *testing.T) {
	// E‖H‖_F² = M·N for normalized powers and unit-norm steering vectors.
	ch := singlePathFixture(t, 3)
	src := rng.New(4)
	const trials = 2000
	var sum float64
	for i := 0; i < trials; i++ {
		h := ch.Sample(src)
		f := h.FrobeniusNorm()
		sum += f * f
	}
	want := float64(16 * 64)
	got := sum / trials
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("E‖H‖² = %g, want %g ±10%%", got, want)
	}
}

func TestMeanPairGainMatchesEmpirical(t *testing.T) {
	ch := singlePathFixture(t, 5)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	want := ch.MeanPairGain(u, v)

	src := rng.New(6)
	const trials = 4000
	var sum float64
	for i := 0; i < trials; i++ {
		h := ch.Sample(src)
		z := v.Dot(h.MulVec(u))
		sum += real(z)*real(z) + imag(z)*imag(z)
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("empirical gain %g vs analytic %g", got, want)
	}
}

func TestMeanPairGainMaximalAtTruePath(t *testing.T) {
	ch := singlePathFixture(t, 7)
	uStar := ch.TX.Steering(ch.Paths[0].AoD)
	vStar := ch.RX.Steering(ch.Paths[0].AoA)
	best := ch.MeanPairGain(uStar, vStar)
	// The matched single path gives gain M·N.
	if want := float64(16 * 64); math.Abs(best-want)/want > 1e-9 {
		t.Errorf("matched gain = %g, want %g", best, want)
	}
	// Any mismatched pair must be no better.
	for _, az := range []float64{-1, -0.3, 0.4, 1.2} {
		u := ch.TX.Steering(antenna.Direction{Az: az})
		v := ch.RX.Steering(antenna.Direction{Az: -az / 2})
		if g := ch.MeanPairGain(u, v); g > best+1e-9 {
			t.Errorf("pair at az %g beats matched pair: %g > %g", az, g, best)
		}
	}
}

func TestRXCovarianceProperties(t *testing.T) {
	ch := singlePathFixture(t, 8)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	q := ch.RXCovariance(u)
	if !q.IsHermitian(1e-10) {
		t.Error("Q is not Hermitian")
	}
	rank, err := cmat.Rank(q, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 1 {
		t.Errorf("single-path covariance rank = %d, want 1", rank)
	}
	// Q's quadratic form at the true AoA must dominate any other direction.
	vStar := ch.RX.Steering(ch.Paths[0].AoA)
	best := q.QuadForm(vStar)
	for _, az := range []float64{-1.2, -0.4, 0.5, 1.3} {
		v := ch.RX.Steering(antenna.Direction{Az: az})
		if g := q.QuadForm(v); g > best+1e-9 {
			t.Errorf("direction az=%g beats true AoA in Q", az)
		}
	}
}

func TestRXCovarianceMatchesEmpirical(t *testing.T) {
	ch := singlePathFixture(t, 9)
	u := ch.TX.Steering(antenna.Direction{Az: 0.2}) // deliberately mismatched
	want := ch.RXCovariance(u)

	src := rng.New(10)
	n := ch.RX.Elements()
	acc := cmat.New(n, n)
	const trials = 3000
	for i := 0; i < trials; i++ {
		hu := ch.Sample(src).MulVec(u)
		acc.AddInPlace(complex(1.0/trials, 0), hu.Outer(hu))
	}
	if diff := acc.Sub(want).FrobeniusNorm() / (1 + want.FrobeniusNorm()); diff > 0.1 {
		t.Errorf("empirical covariance differs by %g (relative)", diff)
	}
}

func TestRXCovarianceIsotropicTrace(t *testing.T) {
	// tr(Q) = N·Σ P_p = N.
	ch := singlePathFixture(t, 11)
	q := ch.RXCovarianceIsotropic()
	if got, want := real(q.Trace()), float64(64); math.Abs(got-want) > 1e-9 {
		t.Errorf("tr(Q) = %g, want %g", got, want)
	}
}

func TestSampleCorrelatedExtremes(t *testing.T) {
	ch := singlePathFixture(t, 12)
	src := rng.New(13)
	// rho=1 freezes the channel.
	h1 := ch.SampleCorrelated(src, 1)
	h2 := ch.SampleCorrelated(src, 1)
	if !h1.ApproxEqual(h2, 1e-12) {
		t.Error("rho=1 did not freeze the channel")
	}
	// rho=0 refreshes it.
	h3 := ch.SampleCorrelated(src, 0)
	if h1.ApproxEqual(h3, 1e-9) {
		t.Error("rho=0 did not refresh the channel")
	}
}

func TestSampleCorrelatedMixing(t *testing.T) {
	// With rho close to 1 consecutive samples stay close.
	ch := singlePathFixture(t, 14)
	src := rng.New(15)
	h1 := ch.SampleCorrelated(src, 0.99)
	h2 := ch.SampleCorrelated(src, 0.99)
	rel := h1.Sub(h2).FrobeniusNorm() / (1 + h1.FrobeniusNorm())
	if rel > 0.5 {
		t.Errorf("rho=0.99 moved channel by %g (relative)", rel)
	}
}

func TestSampleResponseMatchesFullSample(t *testing.T) {
	// SampleResponse must be statistically identical to forming H and
	// projecting: compare second moments.
	ch := singlePathFixture(t, 20)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(antenna.Direction{Az: 0.3})
	want := ch.MeanPairGain(u, v)
	src := rng.New(21)
	const trials = 4000
	var sum float64
	for i := 0; i < trials; i++ {
		z := ch.SampleResponse(src, u, v)
		sum += real(z)*real(z) + imag(z)*imag(z)
	}
	got := sum / trials
	if math.Abs(got-want)/(want+1e-12) > 0.1 {
		t.Errorf("E|SampleResponse|² = %g, want %g", got, want)
	}
}

func TestResponseSamplerMatchesSampleResponse(t *testing.T) {
	ch := singlePathFixture(t, 22)
	u := ch.TX.Steering(ch.Paths[0].AoD)
	v := ch.RX.Steering(ch.Paths[0].AoA)
	// Same seed must give the identical draw sequence for both paths
	// through the code (they consume randomness identically).
	a, b := rng.New(23), rng.New(23)
	sampler := ch.ResponseSampler(u, v)
	for i := 0; i < 20; i++ {
		z1 := ch.SampleResponse(a, u, v)
		z2 := sampler(b)
		if cmplxAbs(z1-z2) > 1e-12*(1+cmplxAbs(z1)) {
			t.Fatalf("draw %d: %v vs %v", i, z1, z2)
		}
	}
}

func cmplxAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

func TestDriftChangesGeometryPreservesPower(t *testing.T) {
	ch := singlePathFixture(t, 24)
	before := ch.Paths[0]
	u := ch.TX.Steering(before.AoD)
	v := ch.RX.Steering(before.AoA)
	gainBefore := ch.MeanPairGain(u, v)

	src := rng.New(25)
	var total float64
	for i := 0; i < 50; i++ {
		ch.Drift(src, 0.02)
	}
	for _, p := range ch.Paths {
		total += p.Power
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("drift changed total power to %g", total)
	}
	if ch.Paths[0].AoA == before.AoA && ch.Paths[0].AoD == before.AoD {
		t.Error("drift did not move the path")
	}
	// Stale beams must lose gain after substantial drift.
	if gainAfter := ch.MeanPairGain(u, v); gainAfter >= gainBefore {
		t.Errorf("stale beam gain %g did not degrade from %g", gainAfter, gainBefore)
	}
}

func TestDriftClampsToVisibleRegion(t *testing.T) {
	ch := singlePathFixture(t, 26)
	src := rng.New(27)
	for i := 0; i < 200; i++ {
		ch.Drift(src, 0.5)
	}
	for _, p := range ch.Paths {
		if math.Abs(p.AoA.Az) > math.Pi/2 || math.Abs(p.AoA.El) > math.Pi/4 {
			t.Fatalf("AoA %+v escaped clamp", p.AoA)
		}
	}
}

func TestRotateDeterministicAndClamped(t *testing.T) {
	ch := singlePathFixture(t, 30)
	before := ch.Paths[0]
	u := ch.TX.Steering(before.AoD)
	v := ch.RX.Steering(before.AoA)
	gainBefore := ch.MeanPairGain(u, v)

	ch.Rotate(0.05, 0.01)
	p := ch.Paths[0]
	if math.Abs(p.AoA.Az-(before.AoA.Az+0.05)) > 1e-15 || math.Abs(p.AoD.Az-(before.AoD.Az-0.05)) > 1e-15 {
		t.Errorf("azimuth rotation wrong: AoA %v AoD %v from %v/%v", p.AoA, p.AoD, before.AoA, before.AoD)
	}
	if math.Abs(p.AoA.El-(before.AoA.El+0.01)) > 1e-15 || math.Abs(p.AoD.El-(before.AoD.El-0.01)) > 1e-15 {
		t.Errorf("elevation rotation wrong: AoA %v AoD %v", p.AoA, p.AoD)
	}
	// Steering caches must follow the geometry: stale beams lose gain.
	if gainAfter := ch.MeanPairGain(u, v); gainAfter >= gainBefore {
		t.Errorf("stale beam gain %g did not degrade from %g after rotation", gainAfter, gainBefore)
	}
	// Total power is untouched.
	var total float64
	for _, pp := range ch.Paths {
		total += pp.Power
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("rotation changed total power to %g", total)
	}

	// Two channels from the same seed rotated identically stay
	// identical — Rotate consumes no randomness.
	a := singlePathFixture(t, 31)
	b := singlePathFixture(t, 31)
	for i := 0; i < 10; i++ {
		a.Rotate(0.02, -0.005)
		b.Rotate(0.02, -0.005)
	}
	if a.Paths[0] != b.Paths[0] {
		t.Errorf("identical rotations diverged: %+v vs %+v", a.Paths[0], b.Paths[0])
	}

	// Sustained rotation clamps to the visible hemisphere.
	for i := 0; i < 200; i++ {
		a.Rotate(0.5, 0.25)
	}
	pp := a.Paths[0]
	if math.Abs(pp.AoA.Az) > math.Pi/2 || math.Abs(pp.AoA.El) > math.Pi/4 ||
		math.Abs(pp.AoD.Az) > math.Pi/2 || math.Abs(pp.AoD.El) > math.Pi/4 {
		t.Fatalf("rotation escaped clamp: %+v", pp)
	}
}

func TestDominantPaths(t *testing.T) {
	tx, rx := testArrays()
	ch, err := New(tx, rx, []Path{
		{Power: 0.7, AoA: antenna.Direction{Az: 0.1}},
		{Power: 0.05, AoA: antenna.Direction{Az: 0.3}},
		{Power: 0.25, AoA: antenna.Direction{Az: -0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := ch.DominantPaths(0.1)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("DominantPaths = %v, want [0 2]", got)
	}
}
