package channel

import (
	"fmt"
	"math"

	"mmwalign/internal/rng"
)

// LinkState classifies the macroscopic propagation state of a link in
// the NYC model: line-of-sight, non-line-of-sight, or outage (no usable
// signal at all).
type LinkState int

// Link states. Values start at 1 so the zero value is invalid and cannot
// be mistaken for LOS.
const (
	// StateLOS is line of sight.
	StateLOS LinkState = iota + 1
	// StateNLOS is non line of sight.
	StateNLOS
	// StateOutage means no detectable path exists.
	StateOutage
)

// String implements fmt.Stringer.
func (s LinkState) String() string {
	switch s {
	case StateLOS:
		return "LOS"
	case StateNLOS:
		return "NLOS"
	case StateOutage:
		return "outage"
	default:
		return fmt.Sprintf("LinkState(%d)", int(s))
	}
}

// PathLossParams holds the floating-intercept path-loss model
// PL(d)[dB] = α + β·10·log10(d) + ξ, ξ ~ N(0, σ²) of Akdeniz et al.,
// plus the distance-dependent LOS/NLOS/outage state probabilities
// p_out(d) = max(0, 1 − e^{−a_out·d + b_out}),
// p_los(d) = (1 − p_out(d))·e^{−a_los·d}.
type PathLossParams struct {
	// AlphaLOS, BetaLOS, SigmaLOS parameterize the LOS branch.
	AlphaLOS, BetaLOS, SigmaLOS float64
	// AlphaNLOS, BetaNLOS, SigmaNLOS parameterize the NLOS branch.
	AlphaNLOS, BetaNLOS, SigmaNLOS float64
	// AOut, BOut, ALos parameterize the state probabilities.
	AOut, BOut, ALos float64
}

// DefaultPathLoss28 returns the 28 GHz NYC fit.
func DefaultPathLoss28() PathLossParams {
	return PathLossParams{
		AlphaLOS: 61.4, BetaLOS: 2.0, SigmaLOS: 5.8,
		AlphaNLOS: 72.0, BetaNLOS: 2.92, SigmaNLOS: 8.7,
		AOut: 1.0 / 30.0, BOut: 5.2, ALos: 1.0 / 67.1,
	}
}

// DrawState samples the link state at distance d meters.
func (p PathLossParams) DrawState(src *rng.Source, d float64) LinkState {
	pOut := math.Max(0, 1-math.Exp(-p.AOut*d+p.BOut))
	if src.Bernoulli(pOut) {
		return StateOutage
	}
	pLOS := math.Exp(-p.ALos * d)
	if src.Bernoulli(pLOS) {
		return StateLOS
	}
	return StateNLOS
}

// PathLossDB samples the path loss in dB at distance d meters for the
// given state. Outage returns +Inf. Distances below 1 m are clamped to
// 1 m (the model intercept).
func (p PathLossParams) PathLossDB(src *rng.Source, d float64, s LinkState) float64 {
	if d < 1 {
		d = 1
	}
	switch s {
	case StateLOS:
		return p.AlphaLOS + p.BetaLOS*10*math.Log10(d) + src.NormalScaled(0, p.SigmaLOS)
	case StateNLOS:
		return p.AlphaNLOS + p.BetaNLOS*10*math.Log10(d) + src.NormalScaled(0, p.SigmaNLOS)
	default:
		return math.Inf(1)
	}
}

// LinkBudget converts a transmit configuration into the pre-beamforming
// per-measurement SNR γ = E_s/N₀ used by the measurement model.
type LinkBudget struct {
	// TXPowerDBm is the transmit power in dBm. Typical mmWave BS: 30.
	TXPowerDBm float64
	// BandwidthHz is the signal bandwidth. Typical: 1 GHz.
	BandwidthHz float64
	// NoiseFigureDB is the receiver noise figure. Typical: 7.
	NoiseFigureDB float64
}

// thermalNoiseDBmPerHz is kT at 290 K in dBm/Hz.
const thermalNoiseDBmPerHz = -174.0

// SNRLinear returns the pre-beamforming SNR (linear) for a given path
// loss in dB. Infinite path loss (outage) returns 0.
func (b LinkBudget) SNRLinear(pathLossDB float64) float64 {
	if math.IsInf(pathLossDB, 1) {
		return 0
	}
	noiseDBm := thermalNoiseDBmPerHz + 10*math.Log10(b.BandwidthHz) + b.NoiseFigureDB
	snrDB := b.TXPowerDBm - pathLossDB - noiseDBm
	return math.Pow(10, snrDB/10)
}

// DBToLinear converts decibels to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels; zero or negative
// input returns -Inf.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}
