package channel

import (
	"math"
	"testing"

	"mmwalign/internal/cmat"
	"mmwalign/internal/rng"
)

func TestNYCMultipathBasicStructure(t *testing.T) {
	tx, rx := testArrays()
	src := rng.New(30)
	ch, err := NewNYCMultipath(src, tx, rx, DefaultNYC28())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultNYC28()
	if len(ch.Paths)%p.SubpathsPerCluster != 0 {
		t.Errorf("path count %d is not a multiple of subpaths %d", len(ch.Paths), p.SubpathsPerCluster)
	}
	var total float64
	for _, path := range ch.Paths {
		if path.Power < 0 {
			t.Fatal("negative subpath power")
		}
		total += path.Power
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("total power = %g", total)
	}
}

func TestNYCClusterCountDistribution(t *testing.T) {
	// Cluster count = max(1, Poisson(1.8)): mean should be near 1.95,
	// and 1..3 clusters should dominate (the "two to three dominant"
	// observation of the paper).
	tx, rx := testArrays()
	src := rng.New(31)
	p := DefaultNYC28()
	const drops = 2000
	var sum float64
	within3 := 0
	for i := 0; i < drops; i++ {
		ch, err := NewNYCMultipath(src.SplitIndexed("drop", i), tx, rx, p)
		if err != nil {
			t.Fatal(err)
		}
		k := len(ch.Paths) / p.SubpathsPerCluster
		sum += float64(k)
		if k <= 3 {
			within3++
		}
	}
	mean := sum / drops
	if mean < 1.6 || mean > 2.4 {
		t.Errorf("mean cluster count = %g, want ≈1.95", mean)
	}
	if frac := float64(within3) / drops; frac < 0.80 {
		t.Errorf("fraction of drops with ≤3 clusters = %g, want ≥0.80", frac)
	}
}

func TestNYCCovarianceLowRank(t *testing.T) {
	// The headline property the paper exploits: a small number of
	// directions captures ~95% of the RX channel energy. For an 8x8
	// (64-dim) RX array the effective rank of Q must be far below 64.
	tx, rx := testArrays()
	src := rng.New(32)
	const drops = 30
	var dims95 []int
	for i := 0; i < drops; i++ {
		ch, err := NewNYCMultipath(src.SplitIndexed("drop", i), tx, rx, DefaultNYC28())
		if err != nil {
			t.Fatal(err)
		}
		q := ch.RXCovarianceIsotropic()
		e, err := cmat.EigHermitian(q)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, v := range e.Values {
			if v > 0 {
				total += v
			}
		}
		var acc float64
		d := 0
		for _, v := range e.Values {
			if acc >= 0.95*total {
				break
			}
			acc += v
			d++
		}
		dims95 = append(dims95, d)
	}
	var sum int
	for _, d := range dims95 {
		sum += d
	}
	meanDim := float64(sum) / float64(len(dims95))
	// [3] reports ~3 of 16 dimensions for a 4x4 array at 95% energy; for
	// 64 dimensions the low-rank property means a small handful.
	if meanDim > 16 {
		t.Errorf("mean 95%%-energy dimension = %g of 64; channel is not low-rank", meanDim)
	}
}

func TestNYCAngularSpreadSmall(t *testing.T) {
	// Subpaths must concentrate around their cluster centers: the AoA
	// azimuth standard deviation within a cluster should be within a
	// factor of a few of the configured median spread.
	tx, rx := testArrays()
	p := DefaultNYC28()
	p.MaxClusters = 1
	src := rng.New(33)
	ch, err := NewNYCMultipath(src, tx, rx, p)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, path := range ch.Paths {
		mean += path.AoA.Az
	}
	mean /= float64(len(ch.Paths))
	var varAcc float64
	for _, path := range ch.Paths {
		d := path.AoA.Az - mean
		varAcc += d * d
	}
	sd := math.Sqrt(varAcc / float64(len(ch.Paths)))
	median := 15.5 * math.Pi / 180
	if sd > 4*median {
		t.Errorf("cluster azimuth spread %g rad far exceeds median %g", sd, median)
	}
}

func TestNYCMaxClustersCap(t *testing.T) {
	tx, rx := testArrays()
	p := DefaultNYC28()
	p.MaxClusters = 2
	src := rng.New(34)
	for i := 0; i < 50; i++ {
		ch, err := NewNYCMultipath(src.SplitIndexed("drop", i), tx, rx, p)
		if err != nil {
			t.Fatal(err)
		}
		if k := len(ch.Paths) / p.SubpathsPerCluster; k > 2 {
			t.Fatalf("drop %d has %d clusters, cap is 2", i, k)
		}
	}
}

func TestNYCZeroParamsDefaulted(t *testing.T) {
	tx, rx := testArrays()
	ch, err := NewNYCMultipath(rng.New(35), tx, rx, NYCParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Paths) == 0 {
		t.Error("no paths generated from defaulted params")
	}
}

func TestNYCAnglesWithinSpan(t *testing.T) {
	tx, rx := testArrays()
	p := DefaultNYC28()
	src := rng.New(36)
	for i := 0; i < 20; i++ {
		ch, err := NewNYCMultipath(src.SplitIndexed("drop", i), tx, rx, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range ch.Paths {
			if math.Abs(path.AoA.Az) > p.AzSpan/2+1e-12 || math.Abs(path.AoA.El) > p.ElSpan/2+1e-12 {
				t.Fatalf("AoA %+v outside span", path.AoA)
			}
			if math.Abs(path.AoD.Az) > p.AzSpan/2+1e-12 || math.Abs(path.AoD.El) > p.ElSpan/2+1e-12 {
				t.Fatalf("AoD %+v outside span", path.AoD)
			}
		}
	}
}

func TestSinglePathSpecSpans(t *testing.T) {
	tx, rx := testArrays()
	spec := SinglePathSpec{AzSpan: 0.2, ElSpan: 0.1}
	src := rng.New(37)
	for i := 0; i < 50; i++ {
		ch, err := NewSinglePath(src, tx, rx, spec)
		if err != nil {
			t.Fatal(err)
		}
		p := ch.Paths[0]
		if math.Abs(p.AoA.Az) > 0.1 || math.Abs(p.AoA.El) > 0.05 {
			t.Fatalf("AoA %+v outside narrow span", p.AoA)
		}
	}
}

func TestDefaultNYC73Differs(t *testing.T) {
	if DefaultNYC73() == DefaultNYC28() {
		t.Error("73 GHz defaults should differ from 28 GHz")
	}
}
