package channel

import (
	"fmt"
	"math"

	"mmwalign/internal/rng"
)

// Blocker models dynamic link blockage, the signature impairment of the
// mmWave band: path clusters are independently and intermittently
// obstructed (a person, a vehicle, the user's own hand), attenuating the
// cluster by tens of dB. Each cluster's state evolves as a two-state
// Markov chain; stepping the blocker mutates the underlying channel's
// path powers in place, so stale beam pairs lose their gain exactly the
// way a MAC-layer simulation needs them to.
type Blocker struct {
	ch     *Channel
	groups [][]int
	base   []float64
	// blocked[g] is the current state of cluster g.
	blocked []bool

	// pBlock and pUnblock are the per-step transition probabilities
	// unblocked→blocked and blocked→unblocked.
	pBlock, pUnblock float64
	// linearLoss is the power scale applied to blocked clusters.
	linearLoss float64
}

// NewBlocker attaches a blockage process to ch. groupSize is the number
// of consecutive paths forming one physical cluster (the NYC generator's
// SubpathsPerCluster; use 1 to block paths independently). pBlock and
// pUnblock are per-step transition probabilities; attenuationDB is the
// blockage depth (e.g. 20–30 dB for a human body at 28 GHz).
func NewBlocker(ch *Channel, groupSize int, pBlock, pUnblock, attenuationDB float64) (*Blocker, error) {
	if groupSize < 1 {
		return nil, fmt.Errorf("channel: blocker group size %d must be ≥1", groupSize)
	}
	if pBlock < 0 || pBlock > 1 || pUnblock < 0 || pUnblock > 1 {
		return nil, fmt.Errorf("channel: blocker probabilities (%g, %g) must be in [0,1]", pBlock, pUnblock)
	}
	if attenuationDB < 0 {
		return nil, fmt.Errorf("channel: blocker attenuation %g dB must be non-negative", attenuationDB)
	}
	b := &Blocker{
		ch:         ch,
		pBlock:     pBlock,
		pUnblock:   pUnblock,
		linearLoss: math.Pow(10, -attenuationDB/10),
	}
	for start := 0; start < len(ch.Paths); start += groupSize {
		end := start + groupSize
		if end > len(ch.Paths) {
			end = len(ch.Paths)
		}
		group := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			group = append(group, i)
			b.base = append(b.base, ch.Paths[i].Power)
		}
		b.groups = append(b.groups, group)
		b.blocked = append(b.blocked, false)
	}
	return b, nil
}

// Step advances every cluster's blockage chain by one epoch and applies
// the resulting powers to the channel.
func (b *Blocker) Step(src *rng.Source) {
	for g := range b.groups {
		if b.blocked[g] {
			if src.Bernoulli(b.pUnblock) {
				b.blocked[g] = false
			}
		} else {
			if src.Bernoulli(b.pBlock) {
				b.blocked[g] = true
			}
		}
	}
	b.apply()
}

// ForceBlock sets cluster g's state directly (for tests and scripted
// scenarios) and applies it. Returns an error if g is out of range —
// scripted scenarios are caller input, and bad input must not crash a
// simulation that other drops depend on.
func (b *Blocker) ForceBlock(g int, blocked bool) error {
	if g < 0 || g >= len(b.blocked) {
		return fmt.Errorf("channel: blocker cluster %d out of range [0,%d)", g, len(b.blocked))
	}
	b.blocked[g] = blocked
	b.apply()
	return nil
}

// BlockedCount returns how many clusters are currently blocked.
func (b *Blocker) BlockedCount() int {
	n := 0
	for _, bl := range b.blocked {
		if bl {
			n++
		}
	}
	return n
}

// Clusters returns the number of blockage groups.
func (b *Blocker) Clusters() int { return len(b.groups) }

// apply writes the per-path powers implied by the current states.
func (b *Blocker) apply() {
	idx := 0
	for g, group := range b.groups {
		scale := 1.0
		if b.blocked[g] {
			scale = b.linearLoss
		}
		for _, pi := range group {
			b.ch.Paths[pi].Power = b.base[idx] * scale
			idx++
		}
	}
}
