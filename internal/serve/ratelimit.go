package serve

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"mmwalign/internal/obs"
)

// clientIDHeader identifies the caller for per-client rate limiting.
// Multiplexing infrastructure (gateways, SDKs) sets it; direct callers
// fall back to their remote address.
const clientIDHeader = "X-Client-ID"

// maxClientIDLen caps the accepted header length so a hostile client
// cannot make the bucket table's keys arbitrarily large.
const maxClientIDLen = 128

// clientID extracts the rate-limit key of a request: the X-Client-ID
// header when present (truncated to a sane length), else the host half
// of the remote address so one NATed site shares a bucket regardless of
// ephemeral port churn.
func clientID(r *http.Request) string {
	if id := r.Header.Get(clientIDHeader); id != "" {
		if len(id) > maxClientIDLen {
			id = id[:maxClientIDLen]
		}
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// rateLimiter is a per-client token-bucket limiter. Buckets live in an
// LRU-bounded table so identifier churn recycles the oldest buckets
// instead of growing memory without bound; refill is lazy (computed
// from elapsed time at each request), so an idle bucket costs nothing.
// A nil limiter (rate limiting disabled) allows everything.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	now     func() time.Time
	buckets *lruMap // client ID → *tokenBucket
	limited *obs.Counter
}

// tokenBucket is one client's refill state.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter allowing rate requests/second with
// the given burst capacity over at most maxClients tracked buckets.
func newRateLimiter(rate float64, burst int, maxClients int, now func() time.Time, limited *obs.Counter) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: newLRUMap(maxClients),
		limited: limited,
	}
}

// allow spends one token from the client's bucket. When the bucket is
// empty it reports how long the client should wait for the next token
// (the Retry-After hint, at least one second).
func (l *rateLimiter) allow(id string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	var b *tokenBucket
	if v, found := l.buckets.get(id); found {
		b = v.(*tokenBucket)
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		}
		b.last = now
	} else {
		// A fresh (or LRU-evicted-and-returned) client starts with a full
		// burst — eviction under churn therefore errs toward admitting,
		// never toward starving a legitimate client.
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets.put(id, b)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	l.limited.Add(1)
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// clients reports how many buckets are currently tracked (telemetry and
// the LRU-bound regression test).
func (l *rateLimiter) clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buckets.len()
}
