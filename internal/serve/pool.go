// Package serve is the beam-alignment-as-a-service layer: a
// long-running HTTP/JSON server over the paper's alignment pipeline
// (compressive sounding → low-rank Q̂ estimation → beam selection).
//
// The numeric core is built from single-owner state — the covariance
// estimator's workspace arenas (internal/covest) and the codebook
// scoring scratch (internal/antenna) are owned by exactly one goroutine
// at a time. The serving layer bridges that to concurrent requests with
// an explicit session/lease abstraction: a Session bundles one
// estimator, a shared immutable codebook, and per-request scratch; a
// Lease is exclusive ownership of a Session between admission and
// response. Leases are generation-checked — using a Session through a
// released Lease panics instead of silently racing the next request —
// and every lease resets the estimator workspace, so a request can
// never observe numeric residue of the previous owner (enforced by the
// cross-request leakage regression test).
//
// Requests are admitted through a bounded queue: up to MaxConcurrent
// requests run, up to QueueDepth more wait, and everything beyond that
// is rejected with 503 + Retry-After. Per-request deadlines ride the
// standard context plumbing down through covest.EstimateContext and
// align.EvaluateContext. SIGTERM drains gracefully: in-flight requests
// complete, new ones are rejected.
package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mmwalign/internal/antenna"
	"mmwalign/internal/covest"
)

// EstimatorSpec pins down one pooled-session configuration: the RX
// array and codebook geometry plus the estimator options. Sessions are
// pooled per spec, so two requests with the same spec reuse one warm
// workspace while differing specs never share state.
type EstimatorSpec struct {
	// PanelX, PanelZ are the RX UPA dimensions.
	PanelX, PanelZ int
	// BeamsAz, BeamsEl shape the RX codebook grid.
	BeamsAz, BeamsEl int
	// Gamma is the pre-beamforming SNR (linear).
	Gamma float64
	// Mu is the nuclear-norm regularization weight.
	Mu float64
	// MaxIters bounds the proximal solver iterations.
	MaxIters int
	// Accelerated selects FISTA over ISTA.
	Accelerated bool
}

// WithDefaults fills zero fields with the paper's settings (8×8 UPA,
// 8×8 beam grid, 0 dB → γ=1, µ=1, 25 iterations).
func (s EstimatorSpec) WithDefaults() EstimatorSpec {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&s.PanelX, 8)
	def(&s.PanelZ, 8)
	def(&s.BeamsAz, 8)
	def(&s.BeamsEl, 8)
	def(&s.MaxIters, 25)
	if s.Gamma == 0 {
		s.Gamma = 1
	}
	if s.Mu == 0 {
		s.Mu = 1
	}
	return s
}

// Validate rejects specs the session constructor would panic on.
func (s EstimatorSpec) Validate() error {
	if s.PanelX <= 0 || s.PanelZ <= 0 {
		return fmt.Errorf("serve: RX panel %dx%d must be positive", s.PanelX, s.PanelZ)
	}
	if s.BeamsAz <= 0 || s.BeamsEl <= 0 {
		return fmt.Errorf("serve: RX beam grid %dx%d must be positive", s.BeamsAz, s.BeamsEl)
	}
	if s.Gamma <= 0 || math.IsNaN(s.Gamma) || math.IsInf(s.Gamma, 0) {
		return fmt.Errorf("serve: gamma %g must be positive and finite", s.Gamma)
	}
	if s.Mu <= 0 || math.IsNaN(s.Mu) || math.IsInf(s.Mu, 0) {
		return fmt.Errorf("serve: mu %g must be positive and finite", s.Mu)
	}
	if s.MaxIters <= 0 {
		return fmt.Errorf("serve: max iters %d must be positive", s.MaxIters)
	}
	return nil
}

// key canonicalizes the spec for pool lookup.
func (s EstimatorSpec) key() string {
	return fmt.Sprintf("%dx%d/%dx%d/g%v/mu%v/it%d/acc%t",
		s.PanelX, s.PanelZ, s.BeamsAz, s.BeamsEl, s.Gamma, s.Mu, s.MaxIters, s.Accelerated)
}

// bookKey canonicalizes only the geometry half of the spec: codebooks
// are immutable and concurrency-safe, so all sessions whose specs share
// a geometry share one packed codebook.
func (s EstimatorSpec) bookKey() string {
	return fmt.Sprintf("%dx%d/%dx%d", s.PanelX, s.PanelZ, s.BeamsAz, s.BeamsEl)
}

// Session is one warm single-owner workspace: a covariance estimator
// (solver arenas), the shared RX codebook (packed scorer), and the
// per-request selection scratch. A Session is reached only through a
// Lease; its generation counter is the debug assertion that catches
// use-after-release.
type Session struct {
	spec EstimatorSpec
	est  *covest.Estimator
	book *antenna.Codebook

	// obsBuf, topk and scores are the per-request scratch, reset on
	// lease (the serving-layer analogue of align's selectScratch).
	obsBuf []covest.Observation
	topk   []int
	scores []float64

	// gen is bumped on every release; a Lease holds the generation it
	// was issued at, so any access through a released lease mismatches.
	gen atomic.Uint64
	// inUse asserts exclusive ownership between lease and release.
	inUse atomic.Bool
}

// Estimator returns the session's covariance estimator.
func (s *Session) Estimator() *covest.Estimator { return s.est }

// Book returns the shared RX codebook.
func (s *Session) Book() *antenna.Codebook { return s.book }

// reset clears all cross-request state: the estimator workspace arenas
// and the selection scratch. Called on every lease.
func (s *Session) reset() {
	s.est.Reset()
	s.obsBuf = s.obsBuf[:0]
	s.topk = s.topk[:0]
	for i := range s.scores {
		s.scores[i] = 0
	}
}

// Lease is exclusive, generation-checked ownership of a Session. The
// zero Lease is invalid. Exactly one of Release or Discard must be
// called; afterwards every Session() call panics.
type Lease struct {
	s    *Session
	gen  uint64
	pool *Pool
	done bool
}

// Session returns the leased session, asserting the lease is still
// live. A stale access — after Release/Discard, or through a lease
// whose session was re-issued — is always a serving-layer bug and
// panics rather than racing the session's next owner.
func (l *Lease) Session() *Session {
	if l == nil || l.s == nil || l.done {
		panic("serve: use of released session lease")
	}
	if g := l.s.gen.Load(); g != l.gen {
		panic(fmt.Sprintf("serve: stale session lease (issued at generation %d, session now at %d)", l.gen, g))
	}
	return l.s
}

// Release ends the lease and returns the session to the pool for the
// next request. The generation bump invalidates every outstanding
// reference through this lease before the session becomes leasable.
func (l *Lease) Release() {
	s := l.Session()
	l.done = true
	l.pool.active.Add(-1)
	s.gen.Add(1)
	s.inUse.Store(false)
	l.pool.put(s)
}

// Discard ends the lease without pooling the session — the escape
// hatch for a workspace that may be poisoned (a request that panicked
// mid-solve). The session is dropped for the GC; the next lease builds
// a fresh one.
func (l *Lease) Discard() {
	s := l.Session()
	l.done = true
	l.pool.active.Add(-1)
	l.pool.discarded.Add(1)
	s.gen.Add(1)
	s.inUse.Store(false)
}

// Pool hands out session leases, one exclusive owner per session at a
// time. Sessions are recycled through per-spec sync.Pools (so idle
// sessions are GC-reclaimable under memory pressure) while codebooks —
// immutable and internally pooled — are cached permanently per
// geometry.
type Pool struct {
	mu    sync.Mutex
	books map[string]*antenna.Codebook
	free  map[string]*specPool

	created   atomic.Int64
	leases    atomic.Int64
	active    atomic.Int64
	discarded atomic.Int64
}

// specPool recycles sessions of one spec: a deterministic single-slot
// hot cache (the last released session is always the next leased — the
// warm-workspace fast path) in front of a sync.Pool overflow, so burst
// concurrency still recycles while idle excess stays GC-reclaimable.
type specPool struct {
	mu       sync.Mutex
	hot      *Session
	overflow sync.Pool
}

func (f *specPool) get() *Session {
	f.mu.Lock()
	s := f.hot
	f.hot = nil
	f.mu.Unlock()
	if s != nil {
		return s
	}
	s, _ = f.overflow.Get().(*Session)
	return s
}

func (f *specPool) put(s *Session) {
	f.mu.Lock()
	if f.hot == nil {
		f.hot = s
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	f.overflow.Put(s)
}

// NewPool creates an empty session pool.
func NewPool() *Pool {
	return &Pool{
		books: make(map[string]*antenna.Codebook),
		free:  make(map[string]*specPool),
	}
}

// PoolStats is a point-in-time account of pool activity.
type PoolStats struct {
	// Created counts sessions ever constructed.
	Created int64 `json:"created"`
	// Leases counts leases ever issued.
	Leases int64 `json:"leases"`
	// Active is the number of currently leased sessions.
	Active int64 `json:"active"`
	// Discarded counts sessions dropped as potentially poisoned.
	Discarded int64 `json:"discarded"`
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Created:   p.created.Load(),
		Leases:    p.leases.Load(),
		Active:    p.active.Load(),
		Discarded: p.discarded.Load(),
	}
}

// book returns the shared codebook for the spec's geometry, building it
// on first use.
func (p *Pool) book(spec EstimatorSpec) *antenna.Codebook {
	key := spec.bookKey()
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.books[key]
	if !ok {
		rx := antenna.NewUPA(spec.PanelX, spec.PanelZ)
		b = antenna.NewGridCodebook(rx, spec.BeamsAz, spec.BeamsEl, math.Pi, math.Pi/2)
		p.books[key] = b
	}
	return b
}

// freeFor returns the free list recycling sessions of the given spec.
func (p *Pool) freeFor(key string) *specPool {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.free[key]
	if !ok {
		f = &specPool{}
		p.free[key] = f
	}
	return f
}

// Lease acquires exclusive ownership of a session for the spec,
// reusing a pooled one when available. The session is reset before it
// is handed out — estimator arenas zeroed, scratch truncated — so the
// new owner starts from a state indistinguishable from a freshly
// constructed session.
func (p *Pool) Lease(spec EstimatorSpec) (*Lease, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	free := p.freeFor(spec.key())
	s := free.get()
	if s == nil {
		book := p.book(spec)
		n := spec.PanelX * spec.PanelZ
		est, err := covest.NewEstimator(n, covest.Options{
			Gamma:       spec.Gamma,
			Mu:          spec.Mu,
			MaxIters:    spec.MaxIters,
			Accelerated: spec.Accelerated,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: building session estimator: %w", err)
		}
		s = &Session{
			spec:   spec,
			est:    est,
			book:   book,
			scores: make([]float64, book.Size()),
			topk:   make([]int, 0, book.Size()),
		}
		p.created.Add(1)
	}
	if !s.inUse.CompareAndSwap(false, true) {
		panic("serve: pooled session leased while still in use")
	}
	s.reset()
	p.leases.Add(1)
	p.active.Add(1)
	return &Lease{s: s, gen: s.gen.Load(), pool: p}, nil
}

// put returns a released session to its spec's free list.
func (p *Pool) put(s *Session) {
	p.freeFor(s.spec.key()).put(s)
}
