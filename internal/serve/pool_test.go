package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mmwalign/internal/cmat"
	"mmwalign/internal/covest"
)

// smallSpec is the test pool configuration: a 4-antenna ULA-shaped
// panel with a 4-beam codebook and a short solver, so hammer tests stay
// fast under -race.
func smallSpec() EstimatorSpec {
	return EstimatorSpec{PanelX: 4, PanelZ: 1, BeamsAz: 4, BeamsEl: 1, Gamma: 1, Mu: 1, MaxIters: 5}
}

// testObservations builds a deterministic estimation window on the
// session's codebook: a synthetic energy bump centered on beam peak.
func testObservations(s *Session, peak int) []covest.Observation {
	book := s.Book()
	obs := make([]covest.Observation, 0, book.Size())
	for j := 0; j < book.Size(); j++ {
		d := float64(j - peak)
		obs = append(obs, covest.Observation{
			V:      book.Beam(j).Weights,
			Energy: 1 + 6/(1+d*d),
		})
	}
	return obs
}

func TestLeaseExclusiveUnderHammer(t *testing.T) {
	pool := NewPool()
	spec := smallSpec()

	// owners tracks which goroutine currently owns each session; a CAS
	// failure means two leases shared a session. The estimate inside the
	// critical section gives the race detector real memory traffic on
	// the workspace arenas to check.
	var owners sync.Map
	const goroutines = 32
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lease, err := pool.Lease(spec)
				if err != nil {
					t.Errorf("goroutine %d: lease: %v", id, err)
					return
				}
				s := lease.Session()
				slot, _ := owners.LoadOrStore(s, new(atomic.Int64))
				owner := slot.(*atomic.Int64)
				if !owner.CompareAndSwap(0, int64(id)+1) {
					t.Errorf("goroutine %d: session already owned by %d", id, owner.Load()-1)
					lease.Release()
					return
				}
				if _, _, err := s.Estimator().Estimate(testObservations(s, i%4), nil); err != nil {
					t.Errorf("goroutine %d: estimate: %v", id, err)
				}
				if !owner.CompareAndSwap(int64(id)+1, 0) {
					t.Errorf("goroutine %d: lost session ownership mid-lease", id)
				}
				lease.Release()
			}
		}(g)
	}
	wg.Wait()

	stats := pool.Stats()
	if stats.Active != 0 {
		t.Errorf("active sessions after hammer = %d, want 0", stats.Active)
	}
	if want := int64(goroutines * iters); stats.Leases != want {
		t.Errorf("leases = %d, want %d", stats.Leases, want)
	}
	if stats.Created > goroutines {
		t.Errorf("created %d sessions for %d goroutines: pool is not reusing", stats.Created, goroutines)
	}
}

func TestLeaseUseAfterReleasePanics(t *testing.T) {
	pool := NewPool()
	lease, err := pool.Lease(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	defer func() {
		if recover() == nil {
			t.Error("Session() after Release did not panic")
		}
	}()
	lease.Session()
}

func TestLeaseDoubleReleasePanics(t *testing.T) {
	pool := NewPool()
	lease, err := pool.Lease(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	defer func() {
		if recover() == nil {
			t.Error("second Release did not panic")
		}
	}()
	lease.Release()
}

func TestDiscardDropsSession(t *testing.T) {
	pool := NewPool()
	lease, err := pool.Lease(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	poisoned := lease.Session()
	lease.Discard()

	stats := pool.Stats()
	if stats.Discarded != 1 {
		t.Errorf("discarded = %d, want 1", stats.Discarded)
	}

	lease2, err := pool.Lease(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer lease2.Release()
	if lease2.Session() == poisoned {
		t.Error("discarded session was leased again")
	}
	if got := pool.Stats().Created; got != 2 {
		t.Errorf("created = %d, want 2 (discard must force a fresh session)", got)
	}
}

// TestCrossRequestStateLeakage is the satellite-4 regression: a session
// that just solved a completely different problem must produce results
// byte-identical to a never-used session. The first lease runs a
// "poisoning" estimate (different peak, different energies); the second
// lease must not observe any residue of it.
func TestCrossRequestStateLeakage(t *testing.T) {
	spec := smallSpec()

	estimate := func(pool *Pool, peak int) (*cmat.Matrix, covest.Stats) {
		lease, err := pool.Lease(spec)
		if err != nil {
			t.Fatal(err)
		}
		defer lease.Release()
		s := lease.Session()
		q, stats, err := s.Estimator().Estimate(testObservations(s, peak), nil)
		if err != nil {
			t.Fatal(err)
		}
		return q, stats
	}

	// Reference: a fresh pool solves peak=1 with no history.
	wantQ, wantStats := estimate(NewPool(), 1)

	// Reused: the same pool first solves peak=3 (poisoning the arenas
	// with unrelated iterates), then peak=1 on the recycled session.
	pool := NewPool()
	estimate(pool, 3)
	gotQ, gotStats := estimate(pool, 1)
	if created := pool.Stats().Created; created != 1 {
		t.Fatalf("created = %d, want 1: the second lease must reuse the pooled session", created)
	}

	if gotStats != wantStats {
		t.Errorf("solver stats differ after session reuse:\n got %+v\nwant %+v", gotStats, wantStats)
	}
	if gotQ.Rows() != wantQ.Rows() || gotQ.Cols() != wantQ.Cols() {
		t.Fatalf("estimate shape %dx%d, want %dx%d", gotQ.Rows(), gotQ.Cols(), wantQ.Rows(), wantQ.Cols())
	}
	for i := 0; i < wantQ.Rows(); i++ {
		for j := 0; j < wantQ.Cols(); j++ {
			if gotQ.At(i, j) != wantQ.At(i, j) {
				t.Fatalf("Q[%d,%d] = %v after reuse, want %v (bitwise)", i, j, gotQ.At(i, j), wantQ.At(i, j))
			}
		}
	}
}

func TestLeaseResetClearsScratch(t *testing.T) {
	pool := NewPool()
	lease, err := pool.Lease(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := lease.Session()
	s.obsBuf = append(s.obsBuf, covest.Observation{Energy: 42})
	s.topk = append(s.topk, 3)
	for i := range s.scores {
		s.scores[i] = 99
	}
	lease.Release()

	lease2, err := pool.Lease(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer lease2.Release()
	s2 := lease2.Session()
	if s2 != s {
		t.Skip("pool returned a different session; scratch reuse not exercised")
	}
	if len(s2.obsBuf) != 0 || len(s2.topk) != 0 {
		t.Errorf("scratch not truncated on lease: obsBuf=%d topk=%d", len(s2.obsBuf), len(s2.topk))
	}
	for i, v := range s2.scores {
		if v != 0 {
			t.Errorf("scores[%d] = %v on fresh lease, want 0", i, v)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	pool := NewPool()
	bad := []EstimatorSpec{
		{PanelX: -1, PanelZ: 1, BeamsAz: 1, BeamsEl: 1, Gamma: 1, Mu: 1, MaxIters: 1},
		{PanelX: 1, PanelZ: 1, BeamsAz: -1, BeamsEl: 1, Gamma: 1, Mu: 1, MaxIters: 1},
		{PanelX: 1, PanelZ: 1, BeamsAz: 1, BeamsEl: 1, Gamma: -2, Mu: 1, MaxIters: 1},
		{PanelX: 1, PanelZ: 1, BeamsAz: 1, BeamsEl: 1, Gamma: 1, Mu: -3, MaxIters: 1},
		{PanelX: 1, PanelZ: 1, BeamsAz: 1, BeamsEl: 1, Gamma: 1, Mu: 1, MaxIters: -1},
	}
	for i, spec := range bad {
		if _, err := pool.Lease(spec); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	if got := pool.Stats().Leases; got != 0 {
		t.Errorf("leases = %d after rejected specs, want 0", got)
	}
}

func TestSpecKeySeparatesConfigurations(t *testing.T) {
	a := smallSpec()
	b := smallSpec()
	b.Mu = 2
	if a.key() == b.key() {
		t.Error("specs with different mu share a pool key")
	}
	if a.bookKey() != b.bookKey() {
		t.Error("specs with identical geometry should share a codebook key")
	}
	pool := NewPool()
	la, err := pool.Lease(a)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := pool.Lease(b)
	if err != nil {
		t.Fatal(err)
	}
	if la.Session() == lb.Session() {
		t.Error("different specs leased the same session")
	}
	if la.Session().Book() != lb.Session().Book() {
		t.Error("same geometry should share one codebook")
	}
	la.Release()
	lb.Release()
}

func TestConcurrentDistinctSpecs(t *testing.T) {
	// Sessions of different specs must be independent: hammer two specs
	// concurrently and let the race detector check for shared state.
	pool := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			spec := smallSpec()
			spec.Mu = 1 + float64(id%2)
			for i := 0; i < 10; i++ {
				lease, err := pool.Lease(spec)
				if err != nil {
					t.Errorf("lease: %v", err)
					return
				}
				s := lease.Session()
				if _, _, err := s.Estimator().Estimate(testObservations(s, id%4), nil); err != nil {
					t.Errorf("estimate: %v", err)
				}
				lease.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := pool.Stats().Active; got != 0 {
		t.Errorf("active = %d after hammer, want 0", got)
	}
}

func TestPoolStatsString(t *testing.T) {
	// PoolStats must marshal with stable field names (the /statsz
	// contract); a rename would silently break dashboards.
	s := PoolStats{Created: 1, Leases: 2, Active: 3, Discarded: 4}
	got := fmt.Sprintf("%+v", s)
	want := "{Created:1 Leases:2 Active:3 Discarded:4}"
	if got != want {
		t.Errorf("PoolStats layout changed: %s, want %s", got, want)
	}
}
