package serve

import (
	"math/rand"
	"testing"

	"mmwalign/internal/metrics"
)

// TestLatencyRingPartialFillPercentiles pins the warm-up behaviour of
// the /statsz percentile ring: with k < latencyRingCap samples the
// digest must run over exactly the k observed values — a ring that
// pre-sized its buffer to capacity would average in thousands of
// phantom zero samples and crush every percentile toward 0 until the
// first wrap. (Audited: the ring appends until capacity and only then
// overwrites, so no zero-filled slot can ever be digested; this test
// keeps that property from regressing.)
func TestLatencyRingPartialFillPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, k := range []int{1, 2, 7, 100, latencyRingCap - 1} {
		tr := newLatencyTracker()
		want := make([]float64, 0, k)
		for i := 0; i < k; i++ {
			ns := int64(1e6 + rng.Intn(90_000_000)) // 1ms..91ms, all nonzero
			want = append(want, float64(ns))
			tr.observe("align", ns)
		}
		sum, ok := tr.summaries()["align"]
		if !ok {
			t.Fatalf("k=%d: endpoint missing from summaries", k)
		}
		if sum.Count != k {
			t.Fatalf("k=%d: Count = %d", k, sum.Count)
		}
		for _, pc := range []struct {
			p    float64
			got  float64
			name string
		}{{50, sum.P50, "p50"}, {95, sum.P95, "p95"}, {99, sum.P99, "p99"}} {
			ref := metrics.Percentile(append([]float64(nil), want...), pc.p)
			if pc.got != ref {
				t.Fatalf("k=%d: %s = %g, want %g (digest not over the observed samples)",
					k, pc.name, pc.got, ref)
			}
			// The phantom-zero failure mode: with all samples ≥ 1ms, any
			// zero-filled slot reaching the digest would drag the
			// percentile to 0.
			if pc.got < 1e6 {
				t.Fatalf("k=%d: %s = %g below the sample floor — zero-filled slots digested", k, pc.name, pc.got)
			}
		}
	}
}

// TestLatencyRingWrapKeepsNewest checks the overwrite-oldest contract
// past capacity: after cap+m observations the digest covers the newest
// cap samples (the first m are evicted) and Count keeps the lifetime
// total.
func TestLatencyRingWrapKeepsNewest(t *testing.T) {
	tr := newLatencyTracker()
	const extra = 10
	total := latencyRingCap + extra
	vals := make([]float64, total)
	for i := 0; i < total; i++ {
		v := int64(1e6 + i)
		vals[i] = float64(v)
		tr.observe("align", v)
	}
	sum := tr.summaries()["align"]
	if sum.Count != total {
		t.Fatalf("Count = %d, want lifetime total %d", sum.Count, total)
	}
	ref := metrics.Percentile(append([]float64(nil), vals[extra:]...), 50)
	if sum.P50 != ref {
		t.Fatalf("post-wrap p50 = %g, want %g over the newest %d samples", sum.P50, ref, latencyRingCap)
	}
}
