package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mmwalign/internal/cmat"
	"mmwalign/internal/meas"
	"mmwalign/internal/metrics"
)

// holdGate blocks every /v1/align measurement while held — unlike
// blockingGate (first measurement only), it pins any number of
// concurrent requests in flight, which is how the soak tests build
// sustained queue pressure deterministically.
type holdGate struct {
	mu sync.Mutex
	ch chan struct{} // nil: pass-through
}

func (g *holdGate) hold() {
	g.mu.Lock()
	g.ch = make(chan struct{})
	g.mu.Unlock()
}

func (g *holdGate) release() {
	g.mu.Lock()
	if g.ch != nil {
		close(g.ch)
		g.ch = nil
	}
	g.mu.Unlock()
}

func (g *holdGate) wrap(p meas.Prober) meas.Prober {
	return &holdProber{Prober: p, g: g}
}

type holdProber struct {
	meas.Prober
	g *holdGate
}

func (p *holdProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	p.g.mu.Lock()
	ch := p.g.ch
	p.g.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return p.Prober.Measure(txBeam, rxBeam, u, v)
}

// proposedBody is a small full-estimation alignment run (the proposed
// scheme, not scan), deterministic for the seed — the request shape the
// brown-out test needs, since only non-scan schemes degrade.
func proposedBody(seed int64) []byte {
	b, err := json.Marshal(map[string]any{
		"scheme":     "proposed",
		"budget":     6,
		"seed":       seed,
		"j":          2,
		"window":     8,
		"tx_panel_x": 2, "tx_panel_z": 1, "tx_beams_az": 2, "tx_beams_el": 1,
		"rx_panel_x": 2, "rx_panel_z": 2, "rx_beams_az": 2, "rx_beams_el": 2,
	})
	if err != nil {
		panic(err)
	}
	return b
}

// waitInflight polls until the server's admitted-request count reaches
// n (the deterministic "requests are queued now" barrier).
func waitInflight(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		inflight := srv.inflight
		srv.mu.Unlock()
		if inflight >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflight never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBrownoutDegradeAndRecover is the brown-out contract end to end:
// sustained queue pressure flips /v1/align to transparent scan-order
// responses marked "degraded": true instead of 503s, and after a quiet
// recovery window the same request produces a full-quality body
// byte-identical to the pre-overload baseline.
func TestBrownoutDegradeAndRecover(t *testing.T) {
	clk := newFakeClock()
	gate := &holdGate{}
	srv := NewServer(Config{
		MaxConcurrent:     1,
		QueueDepth:        4,
		DefaultTimeout:    time.Minute,
		BrownoutQueueFrac: 0.5, // enter at 2 queued, exit at 1
		BrownoutAfter:     100 * time.Millisecond,
		BrownoutRecover:   100 * time.Millisecond,
		now:               clk.Now,
		WrapProber:        gate.wrap,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Full-quality baseline before any pressure.
	status, _, want := post(t, ts.URL+"/v1/align", proposedBody(42))
	if status != http.StatusOK {
		t.Fatalf("baseline status = %d, body %s", status, want)
	}
	if strings.Contains(string(want), `"degraded"`) {
		t.Fatalf("baseline body carries a degraded marker: %s", want)
	}

	// Build sustained pressure: one executing + two queued, held at the
	// measurement gate.
	gate.hold()
	heldDone := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func(seed int64) {
			s, _, _ := post(t, ts.URL+"/v1/align", alignBody(seed))
			heldDone <- s
		}(int64(i + 1))
	}
	waitInflight(t, srv, 3)
	clk.Advance(200 * time.Millisecond) // exceed BrownoutAfter

	// The next admission observes the sustained pressure, flips
	// brown-out, queues behind the held requests, and — once the gate
	// opens — completes as a degraded scan-order response.
	degradedDone := make(chan []byte, 1)
	go func() {
		s, _, body := post(t, ts.URL+"/v1/align", proposedBody(42))
		if s != http.StatusOK {
			t.Errorf("degraded request status = %d, body %s", s, body)
		}
		degradedDone <- body
	}()
	waitInflight(t, srv, 4)
	if !srv.brownout.Degraded() {
		t.Fatal("brown-out not active after sustained queue pressure")
	}

	gate.release()
	for i := 0; i < 3; i++ {
		if s := <-heldDone; s != http.StatusOK {
			t.Errorf("held request %d finished with %d, want 200", i, s)
		}
	}
	degradedBody := <-degradedDone
	var deg struct {
		Scheme   string `json:"scheme"`
		Degraded bool   `json:"degraded"`
	}
	if err := json.Unmarshal(degradedBody, &deg); err != nil {
		t.Fatalf("decoding degraded body %s: %v", degradedBody, err)
	}
	if !deg.Degraded || deg.Scheme != "scan" {
		t.Fatalf("degraded response = scheme %q degraded %t, want scan-order marked degraded; body %s",
			deg.Scheme, deg.Degraded, degradedBody)
	}
	if got := srv.rec.Counter("serve_degraded_responses").Value(); got != 1 {
		t.Errorf("serve_degraded_responses = %d, want 1", got)
	}

	// A quiet recovery window restores full quality: the same request
	// must now produce a body byte-identical to the baseline.
	clk.Advance(200 * time.Millisecond) // exceed BrownoutRecover
	status, _, got := post(t, ts.URL+"/v1/align", proposedBody(42))
	if status != http.StatusOK {
		t.Fatalf("post-recovery status = %d, body %s", status, got)
	}
	if srv.brownout.Degraded() {
		t.Error("brown-out still active after quiet recovery window")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-recovery body differs from pre-overload baseline:\n got: %s\nwant: %s", got, want)
	}
}

// TestOverloadSoakBoundedTail drives 4x the server's admission capacity
// and pins the two overload invariants: every response (success or
// typed rejection) lands well under the request deadline — overload
// degrades into fast feedback, not slow timeouts — and the goroutine
// count returns to baseline after the burst and drain (no leaked
// request goroutines).
func TestOverloadSoakBoundedTail(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := NewServer(Config{
		MaxConcurrent:  2,
		QueueDepth:     2,
		DefaultTimeout: 5 * time.Second,
		// A small service-time floor so 16 workers actually overrun the
		// 4-request admission window — a bare estimate finishes faster
		// than the clients can queue up behind it.
		estimateHook: func() { time.Sleep(10 * time.Millisecond) },
	})
	ts := httptest.NewServer(srv)
	client := ts.Client()

	const (
		workers   = 16 // 4x the 2-executing + 2-queued admission window
		perWorker = 8
	)
	var (
		mu        sync.Mutex
		latencies []float64
		served    int
		rejected  int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				start := time.Now()
				resp, err := client.Post(ts.URL+"/v1/estimate", "application/json",
					bytes.NewReader(estimateBody(id%4, 2)))
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				elapsed := float64(time.Since(start).Nanoseconds())
				switch resp.StatusCode {
				case http.StatusOK:
					mu.Lock()
					served++
					mu.Unlock()
				case http.StatusServiceUnavailable:
					kind := decodeErrorBody(t, body).Error.Kind
					if kind != errQueueFull && kind != errShed {
						t.Errorf("503 kind = %q, want queue_full or shed", kind)
					}
					if resp.Header.Get("Retry-After") == "" {
						t.Error("503 without Retry-After")
					}
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
				}
				mu.Lock()
				latencies = append(latencies, elapsed)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if served == 0 {
		t.Error("overload served nothing; want progress under pressure")
	}
	if rejected == 0 {
		t.Error("4x overload rejected nothing; want backpressure engaged")
	}
	// p99 bound: rejections are immediate and successes are bounded by
	// two queue slots of millisecond-scale estimates, so the tail must
	// sit far below the 5s deadline even on a slow CI machine.
	if p99 := metrics.Percentile(latencies, 99); p99 > 3e9 {
		t.Errorf("p99 latency = %.0fms under overload, want < 3000ms",
			p99/1e6)
	}

	// Drain and verify nothing leaked: no stuck request goroutines, no
	// leased sessions.
	ts.Close()
	client.CloseIdleConnections()
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain after overload: %v", err)
	}
	if active := srv.Pool().Stats().Active; active != 0 {
		t.Errorf("active sessions after drain = %d, want 0", active)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across overload: %d before, %d after", before, after)
	}
}
