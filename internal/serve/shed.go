package serve

import (
	"math"
	"sync"
	"time"

	"mmwalign/internal/metrics"
	"mmwalign/internal/obs"
)

// p50RecomputeEvery bounds how often the median is re-digested from the
// latency ring: the cached value is reused until this many new samples
// arrive, so admission-time shedding costs O(1) amortized instead of a
// 4096-sample sort per request.
const p50RecomputeEvery = 32

// p50NS returns the endpoint's (cached) median service time in
// nanoseconds, 0 when the endpoint has no samples yet — which disables
// shedding until the server has actually observed itself, the property
// that makes the shedding layer inert on a cold or idle server.
func (t *latencyTracker) p50NS(endpoint string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.byEP[endpoint]
	if !ok {
		return 0
	}
	return t.p50Locked(r)
}

// maxP50NS returns the largest per-endpoint median — the conservative
// service-time estimate used for Retry-After hints, which are not tied
// to one endpoint.
func (t *latencyTracker) maxP50NS() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var top float64
	for _, r := range t.byEP {
		if v := t.p50Locked(r); v > top {
			top = v
		}
	}
	return top
}

// p50Locked serves the ring's cached median, re-digesting when enough
// new samples have arrived. Caller holds t.mu.
func (t *latencyTracker) p50Locked(r *latencyRing) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if r.p50at == 0 || r.total-r.p50at >= p50RecomputeEvery {
		xs := append([]float64(nil), r.samples...)
		r.p50cache = metrics.Percentile(xs, 50)
		r.p50at = r.total
	}
	return r.p50cache
}

// expectedQueueWait estimates how long a request admitted at queue
// position queued will wait for an execution slot: queued requests
// drain at one per median service time per slot. Returns 0 (no
// estimate, so no shedding) until the endpoint has observed latency.
func (s *Server) expectedQueueWait(endpoint string, queued int) time.Duration {
	if queued <= 0 {
		return 0
	}
	p50 := s.lat.p50NS(endpoint)
	if p50 <= 0 {
		return 0
	}
	slots := s.cfg.MaxConcurrent
	if slots < 1 {
		slots = 1
	}
	return time.Duration(float64(queued) * p50 / float64(slots))
}

// dynamicRetryAfter computes the Retry-After hint for backpressure
// rejections from the live queue estimate: the time for the current
// queue (plus the rejected request itself) to drain at the observed
// median service rate, floored at the configured static hint and at
// one second. With no latency observed yet it degrades to the static
// flag — exactly the pre-resilience behaviour.
func (s *Server) dynamicRetryAfter() int {
	s.mu.Lock()
	queued := s.inflight - s.cfg.MaxConcurrent
	s.mu.Unlock()
	if queued < 0 {
		queued = 0
	}
	slots := s.cfg.MaxConcurrent
	if slots < 1 {
		slots = 1
	}
	secs := int(math.Ceil(float64(queued+1) * s.lat.maxP50NS() / float64(slots) / 1e9))
	if secs < s.cfg.RetryAfterSeconds {
		secs = s.cfg.RetryAfterSeconds
	}
	if secs < 1 {
		secs = 1
	}
	return secs
}

// brownout is the degraded-mode controller: when queue pressure stays
// at or above the enter threshold for longer than the after window,
// /v1/align transparently downgrades to the cheap scan-order strategy
// (marked "degraded": true) instead of 503ing; when pressure stays at
// or below the exit threshold for the recover window, full estimation
// resumes. Thresholds are hysteretic (exit < enter) so the mode cannot
// flap at the boundary. Pressure is sampled at every admission and
// completion, so recovery needs no timer goroutine — the next request
// after a quiet recover window restores full quality. A nil brownout
// (disabled) never degrades.
type brownout struct {
	mu      sync.Mutex
	enter   int // queued ≥ enter arms the degrade timer
	exit    int // queued ≤ exit arms the recovery timer
	after   time.Duration
	recover time.Duration
	now     func() time.Time

	degraded   bool
	aboveSince time.Time
	belowSince time.Time

	enters *obs.Counter
	exits  *obs.Counter
}

// newBrownout builds the controller for a queue of depth queueDepth
// entering degraded mode at frac occupancy. frac < 0 disables.
func newBrownout(frac float64, queueDepth int, after, recoverAfter time.Duration, now func() time.Time, rec *obs.Recorder) *brownout {
	if frac < 0 || queueDepth <= 0 {
		return nil
	}
	enter := int(math.Round(frac * float64(queueDepth)))
	if enter < 1 {
		enter = 1
	}
	return &brownout{
		enter:   enter,
		exit:    enter / 2,
		after:   after,
		recover: recoverAfter,
		now:     now,
		enters:  rec.Counter("serve_brownout_enters"),
		exits:   rec.Counter("serve_brownout_exits"),
	}
}

// sample feeds one queue-occupancy observation into the controller.
func (b *brownout) sample(queued int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch {
	case queued >= b.enter:
		b.belowSince = time.Time{}
		if b.aboveSince.IsZero() {
			b.aboveSince = now
		} else if !b.degraded && now.Sub(b.aboveSince) >= b.after {
			b.degraded = true
			b.enters.Add(1)
		}
	case queued <= b.exit:
		b.aboveSince = time.Time{}
		if !b.degraded {
			return
		}
		if b.belowSince.IsZero() {
			b.belowSince = now
		} else if now.Sub(b.belowSince) >= b.recover {
			b.degraded = false
			b.belowSince = time.Time{}
			b.exits.Add(1)
		}
	default:
		// Hysteresis band: neither timer advances.
		b.aboveSince = time.Time{}
		b.belowSince = time.Time{}
	}
}

// Degraded reports whether brown-out mode is active.
func (b *brownout) Degraded() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.degraded
}
