package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock is the deterministic time source for the resilience layer:
// every rate-limit refill, breaker cooldown, brown-out window, and shed
// deadline in these tests is driven by explicit Advance calls, never by
// the wall clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// postID is post with an X-Client-ID header attached.
func postID(t *testing.T, url, id string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(clientIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, buf.Bytes()
}

func TestLRUMapEvictsOldest(t *testing.T) {
	m := newLRUMap(3)
	for _, k := range []string{"a", "b", "c"} {
		m.put(k, k)
	}
	// Touch "a" so "b" becomes the eviction candidate.
	if _, ok := m.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	m.put("d", "d")
	if m.len() != 3 {
		t.Fatalf("len = %d, want 3", m.len())
	}
	if _, ok := m.get("b"); ok {
		t.Error("b survived eviction; want it dropped as least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := m.get(k); !ok {
			t.Errorf("%s evicted; want it retained", k)
		}
	}
}

func TestClientIDExtraction(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/v1/align", nil)
	r.RemoteAddr = "10.1.2.3:54321"
	if got := clientID(r); got != "10.1.2.3" {
		t.Errorf("fallback clientID = %q, want remote host", got)
	}
	r.Header.Set(clientIDHeader, "tenant-7")
	if got := clientID(r); got != "tenant-7" {
		t.Errorf("header clientID = %q, want tenant-7", got)
	}
	long := make([]byte, 4*maxClientIDLen)
	for i := range long {
		long[i] = 'x'
	}
	r.Header.Set(clientIDHeader, string(long))
	if got := clientID(r); len(got) != maxClientIDLen {
		t.Errorf("oversized clientID kept %d bytes, want %d", len(got), maxClientIDLen)
	}
}

// TestRateLimitPerClient drives the limiter through HTTP: one client's
// burst exhausts to a typed 429 with Retry-After, a second client is
// unaffected, and the fake clock refills the first.
func TestRateLimitPerClient(t *testing.T) {
	clk := newFakeClock()
	srv := NewServer(Config{RateLimitPerSec: 1, RateLimitBurst: 2, now: clk.Now})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if status, _, body := postID(t, ts.URL+"/v1/estimate", "alice", estimateBody(1, 2)); status != http.StatusOK {
			t.Fatalf("burst request %d: status %d, body %s", i, status, body)
		}
	}
	status, hdr, body := postID(t, ts.URL+"/v1/estimate", "alice", estimateBody(1, 2))
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d, want 429; body %s", status, body)
	}
	if kind := decodeErrorBody(t, body).Error.Kind; kind != errRateLimited {
		t.Errorf("kind = %q, want %q", kind, errRateLimited)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}

	// Another client has its own bucket.
	if status, _, body := postID(t, ts.URL+"/v1/estimate", "bob", estimateBody(1, 2)); status != http.StatusOK {
		t.Errorf("other client status = %d, want 200; body %s", status, body)
	}

	// One refill interval restores exactly one token.
	clk.Advance(time.Second)
	if status, _, body := postID(t, ts.URL+"/v1/estimate", "alice", estimateBody(1, 2)); status != http.StatusOK {
		t.Errorf("post-refill status = %d, want 200; body %s", status, body)
	}
	if status, _, _ := postID(t, ts.URL+"/v1/estimate", "alice", estimateBody(1, 2)); status != http.StatusTooManyRequests {
		t.Errorf("second post-refill status = %d, want 429", status)
	}

	if got := srv.rec.Counter("serve_rate_limited").Value(); got != 2 {
		t.Errorf("serve_rate_limited = %d, want 2", got)
	}
}

// TestRateLimitLRUBound pins the memory bound: hostile client-ID churn
// recycles buckets instead of growing the table.
func TestRateLimitLRUBound(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(1, 1, 8, clk.Now, NewServer(Config{}).rec.Counter("x"))
	for i := 0; i < 1000; i++ {
		l.allow(fmt.Sprintf("client-%d", i))
	}
	if got := l.clients(); got > 8 {
		t.Errorf("tracked buckets = %d, want <= 8", got)
	}
}

// failSwitch makes the estimate handler panic on demand — the
// in-package seam for deterministic estimation failures, since a panic
// mid-request is a breaker failure like any typed estimation 5xx.
type failSwitch struct {
	mu   sync.Mutex
	fail bool
}

func (f *failSwitch) set(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *failSwitch) hook() {
	f.mu.Lock()
	fail := f.fail
	f.mu.Unlock()
	if fail {
		panic("injected estimation failure")
	}
}

// TestBreakerTripShortCircuitRecover walks the full circuit: threshold
// consecutive failures trip it open, open requests short-circuit to the
// scan-order fallback without leasing a session, the cooldown admits a
// half-open probe, a failed probe re-opens, and a clean probe closes.
func TestBreakerTripShortCircuitRecover(t *testing.T) {
	clk := newFakeClock()
	sw := &failSwitch{}
	srv := NewServer(Config{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		now:              clk.Now,
		estimateHook:     sw.hook,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two consecutive failures trip the circuit.
	sw.set(true)
	for i := 0; i < 2; i++ {
		status, _, body := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2))
		if status != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d, want 500; body %s", i, status, body)
		}
	}
	if got := srv.rec.Counter("serve_breaker_trips").Value(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Open: short-circuited with the fallback, no session leased.
	leasesBefore := srv.Pool().Stats().Leases
	status, hdr, body := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit status = %d, want 503; body %s", status, body)
	}
	eb := decodeErrorBody(t, body)
	if eb.Error.Kind != errCircuitOpen {
		t.Errorf("kind = %q, want %q", eb.Error.Kind, errCircuitOpen)
	}
	if eb.Fallback == nil || eb.Fallback.Policy != "scan-order" || len(eb.Fallback.RXBeams) == 0 {
		t.Errorf("open-circuit fallback = %+v, want scan-order with beams", eb.Fallback)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	if got := srv.Pool().Stats().Leases; got != leasesBefore {
		t.Errorf("leases %d -> %d across short-circuit; want no solver budget burned", leasesBefore, got)
	}

	// Cooldown elapses; the probe is still failing, so the circuit
	// re-opens for another full cooldown.
	clk.Advance(time.Minute + time.Second)
	if status, _, _ := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2)); status != http.StatusInternalServerError {
		t.Fatalf("failed probe status = %d, want 500", status)
	}
	if status, _, _ := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2)); status != http.StatusServiceUnavailable {
		t.Fatalf("post-failed-probe status = %d, want 503 (re-opened)", status)
	}

	// Next cooldown's probe succeeds and closes the circuit.
	sw.set(false)
	clk.Advance(time.Minute + time.Second)
	if status, _, body := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2)); status != http.StatusOK {
		t.Fatalf("clean probe status = %d, want 200; body %s", status, body)
	}
	if got := srv.rec.Counter("serve_breaker_recoveries").Value(); got != 1 {
		t.Errorf("recoveries = %d, want 1", got)
	}
	for key, state := range srv.breaker.States() {
		if state != "closed" {
			t.Errorf("breaker %q = %s after recovery, want closed", key, state)
		}
	}

	// Closed again: the next request is a plain 200.
	if status, _, _ := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2)); status != http.StatusOK {
		t.Error("post-recovery request not served")
	}
}

// TestBreakerHealthyServerHoldsNoState pins the failure-only allocation
// property: successes never create breaker entries.
func TestBreakerHealthyServerHoldsNoState(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i := 0; i < 5; i++ {
		if status, _, _ := post(t, ts.URL+"/v1/estimate", estimateBody(i%4, 2)); status != http.StatusOK {
			t.Fatalf("request %d not served", i)
		}
	}
	if states := srv.breaker.States(); states != nil {
		t.Errorf("breaker states = %v after healthy traffic, want none", states)
	}
}

// TestShedDeadlineAware pins the CoDel-style admission test: once the
// server has observed its own service time, a queued arrival whose
// deadline cannot outlast the expected queue wait is rejected
// immediately as a typed shed, without leasing a session.
func TestShedDeadlineAware(t *testing.T) {
	gate := newBlockingGate()
	srv := NewServer(Config{
		MaxConcurrent:  1,
		QueueDepth:     4,
		DefaultTimeout: time.Minute,
		WrapProber:     gate.wrap,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Teach the server that estimates take ~10s.
	for i := 0; i < 5; i++ {
		srv.lat.observe("estimate", 10e9)
	}

	// Occupy the single execution slot.
	blockedDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/align", alignBody(1))
		blockedDone <- status
	}()
	<-gate.started

	// A queued request with a minute of headroom rides out the 10s wait.
	queuedDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2))
		queuedDone <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		inflight := srv.inflight
		srv.mu.Unlock()
		if inflight == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// 500ms of deadline against an expected 20s wait (2 ahead × 10s):
	// shed now, not 504 later.
	var req map[string]any
	body := estimateBody(2, 2)
	mustUnmarshal(t, body, &req)
	req["timeout_ms"] = 500
	leasesBefore := srv.Pool().Stats().Leases
	status, hdr, data := post(t, ts.URL+"/v1/estimate", mustMarshal(t, req))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", status, data)
	}
	if kind := decodeErrorBody(t, data).Error.Kind; kind != errShed {
		t.Errorf("kind = %q, want %q", kind, errShed)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	if got := srv.rec.Counter("serve_sheds").Value(); got != 1 {
		t.Errorf("serve_sheds = %d, want 1", got)
	}
	if got := srv.Pool().Stats().Leases; got != leasesBefore {
		t.Errorf("shed request leased a session (%d -> %d)", leasesBefore, got)
	}

	close(gate.gate)
	if status := <-blockedDone; status != http.StatusOK {
		t.Errorf("blocked request finished with %d, want 200", status)
	}
	if status := <-queuedDone; status != http.StatusOK {
		t.Errorf("queued request finished with %d, want 200", status)
	}
}

// TestRetryAfterScalesWithQueueDepth pins the dynamic Retry-After
// estimate: the static flag with no latency observed, then the queue's
// expected drain time once the server knows its own median.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	srv := NewServer(Config{MaxConcurrent: 1, QueueDepth: 8, RetryAfterSeconds: 1})
	if got := srv.dynamicRetryAfter(); got != 1 {
		t.Errorf("unobserved Retry-After = %d, want static floor 1", got)
	}
	for i := 0; i < 8; i++ {
		srv.lat.observe("estimate", 2e9) // 2s median
	}
	set := func(inflight int) {
		srv.mu.Lock()
		srv.inflight = inflight
		srv.mu.Unlock()
	}
	set(4) // 3 queued -> (3+1)*2s
	if got := srv.dynamicRetryAfter(); got != 8 {
		t.Errorf("Retry-After at 3 queued = %d, want 8", got)
	}
	set(7) // 6 queued -> (6+1)*2s
	if got := srv.dynamicRetryAfter(); got != 14 {
		t.Errorf("Retry-After at 6 queued = %d, want 14", got)
	}
	set(0)
	if got := srv.dynamicRetryAfter(); got != 2 {
		t.Errorf("Retry-After at empty queue = %d, want 2 (one service time)", got)
	}
}

// TestBrownoutHysteresis drives the controller directly through its
// state machine: sustained pressure degrades, the hysteresis band holds
// state, and a sustained quiet window recovers.
func TestBrownoutHysteresis(t *testing.T) {
	clk := newFakeClock()
	b := newBrownout(0.5, 8, time.Second, time.Second, clk.Now, NewServer(Config{}).rec)
	if b.enter != 4 || b.exit != 2 {
		t.Fatalf("thresholds = enter %d exit %d, want 4/2", b.enter, b.exit)
	}

	// A momentary spike does not degrade.
	b.sample(5)
	if b.Degraded() {
		t.Fatal("degraded on first over-threshold sample; want sustained pressure required")
	}
	// Pressure relief resets the timer.
	b.sample(0)
	clk.Advance(2 * time.Second)
	b.sample(5)
	if b.Degraded() {
		t.Fatal("degraded after timer reset; want fresh window")
	}
	clk.Advance(time.Second)
	b.sample(5)
	if !b.Degraded() {
		t.Fatal("not degraded after sustained pressure")
	}

	// The hysteresis band (exit < queued < enter) holds degraded.
	clk.Advance(time.Hour)
	b.sample(3)
	if !b.Degraded() {
		t.Fatal("recovered inside hysteresis band; want hold")
	}
	// Quiet must be sustained too.
	b.sample(0)
	clk.Advance(500 * time.Millisecond)
	b.sample(5) // relapse resets the recovery timer
	b.sample(0)
	clk.Advance(time.Second)
	b.sample(0)
	if b.Degraded() {
		t.Fatal("still degraded after sustained quiet window")
	}
}

func mustUnmarshal(t *testing.T, data []byte, dst any) {
	t.Helper()
	if err := json.Unmarshal(data, dst); err != nil {
		t.Fatal(err)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
