package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mmwalign/internal/cmat"
	"mmwalign/internal/faultinject"
	"mmwalign/internal/meas"
	"mmwalign/internal/rng"
)

var update = flag.Bool("update", false, "rewrite golden files")

// estimateBody builds the canonical small estimate request: the
// 4-antenna test panel with a deterministic energy bump at peak.
func estimateBody(peak, topK int) []byte {
	type obs struct {
		Beam   int     `json:"beam"`
		Energy float64 `json:"energy"`
	}
	body := map[string]any{
		"panel_x":   4,
		"panel_z":   1,
		"beams_az":  4,
		"beams_el":  1,
		"max_iters": 5,
		"top_k":     topK,
	}
	var os []obs
	for j := 0; j < 4; j++ {
		d := float64(j - peak)
		os = append(os, obs{Beam: j, Energy: 1 + 6/(1+d*d)})
	}
	body["observations"] = os
	b, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	return b
}

// post sends a JSON body and returns status, headers, and body bytes.
func post(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, resp.Header, data
}

func decodeErrorBody(t *testing.T, data []byte) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("decoding error envelope from %q: %v", data, err)
	}
	return eb
}

func TestEstimateGolden(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, _, body := post(t, ts.URL+"/v1/estimate", estimateBody(1, 3))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}

	golden := filepath.Join("testdata", "estimate_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("estimate response drifted from golden:\n got: %s\nwant: %s", body, want)
	}
}

// TestConcurrentVsSequentialByteIdentical is the core determinism
// claim: the same request set produces byte-identical bodies whether
// the server runs them one at a time or eight at a time over pooled
// (reused) sessions.
func TestConcurrentVsSequentialByteIdentical(t *testing.T) {
	const n = 16
	reqs := make([][]byte, n)
	for i := range reqs {
		reqs[i] = estimateBody(i%4, 1+i%4)
	}

	run := func(maxConc int, concurrent bool) [][]byte {
		srv := NewServer(Config{MaxConcurrent: maxConc, QueueDepth: n})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		out := make([][]byte, n)
		if !concurrent {
			for i, r := range reqs {
				status, _, body := post(t, ts.URL+"/v1/estimate", r)
				if status != http.StatusOK {
					t.Fatalf("sequential request %d: status %d, body %s", i, status, body)
				}
				out[i] = body
			}
			return out
		}
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				status, _, body := post(t, ts.URL+"/v1/estimate", reqs[i])
				if status != http.StatusOK {
					t.Errorf("concurrent request %d: status %d, body %s", i, status, body)
					return
				}
				out[i] = body
			}(i)
		}
		wg.Wait()
		return out
	}

	sequential := run(1, false)
	concurrent := run(8, true)
	for i := range reqs {
		if !bytes.Equal(sequential[i], concurrent[i]) {
			t.Errorf("request %d: concurrent body differs from sequential:\n conc: %s\n seq:  %s",
				i, concurrent[i], sequential[i])
		}
	}
}

// TestServerHammer drives 32 goroutines of mixed estimate requests
// through a small admission window; every response must be a clean 200
// or a well-formed backpressure 503, and the pool must end quiescent.
func TestServerHammer(t *testing.T) {
	srv := NewServer(Config{MaxConcurrent: 4, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				status, hdr, body := post(t, ts.URL+"/v1/estimate", estimateBody(id%4, 2))
				switch status {
				case http.StatusOK:
				case http.StatusServiceUnavailable:
					if hdr.Get("Retry-After") == "" {
						t.Errorf("503 without Retry-After")
					}
					if kind := decodeErrorBody(t, body).Error.Kind; kind != errQueueFull {
						t.Errorf("503 kind = %q, want %q", kind, errQueueFull)
					}
				default:
					t.Errorf("unexpected status %d: %s", status, body)
				}
			}
		}(g)
	}
	wg.Wait()

	stats := srv.Pool().Stats()
	if stats.Active != 0 {
		t.Errorf("active sessions after hammer = %d, want 0", stats.Active)
	}
}

func TestExpiredDeadlineRejectedWithoutLease(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var req map[string]any
	if err := json.Unmarshal(estimateBody(1, 2), &req); err != nil {
		t.Fatal(err)
	}
	req["timeout_ms"] = -1
	body, _ := json.Marshal(req)

	start := time.Now()
	status, _, data := post(t, ts.URL+"/v1/estimate", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", status, data)
	}
	if kind := decodeErrorBody(t, data).Error.Kind; kind != errDeadlineExceeded {
		t.Errorf("kind = %q, want %q", kind, errDeadlineExceeded)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("expired-deadline rejection took %v, want prompt", elapsed)
	}
	if got := srv.Pool().Stats().Leases; got != 0 {
		t.Errorf("leases = %d, want 0: expired request must not lease a session", got)
	}
}

// blockingGate makes the first /v1/align measurement of a server block
// until released — the deterministic way to hold a request in-flight
// for the backpressure and drain tests.
type blockingGate struct {
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func newBlockingGate() *blockingGate {
	return &blockingGate{started: make(chan struct{}), gate: make(chan struct{})}
}

func (g *blockingGate) wrap(p meas.Prober) meas.Prober {
	return &blockingProber{Prober: p, g: g}
}

type blockingProber struct {
	meas.Prober
	g *blockingGate
}

func (p *blockingProber) Measure(txBeam, rxBeam int, u, v cmat.Vector) meas.Measurement {
	p.g.once.Do(func() {
		close(p.g.started)
		<-p.g.gate
	})
	return p.Prober.Measure(txBeam, rxBeam, u, v)
}

// alignBody is a minimal scan-scheme run: one measurement, small
// panels, deterministic for the seed.
func alignBody(seed int64) []byte {
	b, err := json.Marshal(map[string]any{
		"scheme":     "scan",
		"budget":     1,
		"seed":       seed,
		"tx_panel_x": 2, "tx_panel_z": 1, "tx_beams_az": 2, "tx_beams_el": 1,
		"rx_panel_x": 2, "rx_panel_z": 1, "rx_beams_az": 2, "rx_beams_el": 1,
	})
	if err != nil {
		panic(err)
	}
	return b
}

func TestQueueFullReturns503WithRetryAfter(t *testing.T) {
	gate := newBlockingGate()
	srv := NewServer(Config{MaxConcurrent: 1, QueueDepth: 1, RetryAfterSeconds: 7, WrapProber: gate.wrap})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Request 1 occupies the single execution slot, blocked mid-measure.
	blockedDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/align", alignBody(1))
		blockedDone <- status
	}()
	<-gate.started

	// Request 2 fills the queue (it will finish after the gate opens).
	queuedDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2))
		queuedDone <- status
	}()
	// Wait until request 2 is admitted (inflight reaches 2).
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		inflight := srv.inflight
		srv.mu.Unlock()
		if inflight == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Request 3 must bounce: queue full, Retry-After attached.
	status, hdr, body := post(t, ts.URL+"/v1/estimate", estimateBody(2, 2))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", status, body)
	}
	if got := hdr.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}
	if kind := decodeErrorBody(t, body).Error.Kind; kind != errQueueFull {
		t.Errorf("kind = %q, want %q", kind, errQueueFull)
	}

	close(gate.gate)
	if status := <-blockedDone; status != http.StatusOK {
		t.Errorf("blocked request finished with %d, want 200", status)
	}
	if status := <-queuedDone; status != http.StatusOK {
		t.Errorf("queued request finished with %d, want 200", status)
	}
}

func TestDeadlineExpiresWhileQueued(t *testing.T) {
	gate := newBlockingGate()
	srv := NewServer(Config{MaxConcurrent: 1, QueueDepth: 2, WrapProber: gate.wrap})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	blockedDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/align", alignBody(1))
		blockedDone <- status
	}()
	<-gate.started

	var req map[string]any
	if err := json.Unmarshal(estimateBody(1, 2), &req); err != nil {
		t.Fatal(err)
	}
	req["timeout_ms"] = 50
	body, _ := json.Marshal(req)
	status, _, data := post(t, ts.URL+"/v1/estimate", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", status, data)
	}
	if kind := decodeErrorBody(t, data).Error.Kind; kind != errDeadlineExceeded {
		t.Errorf("kind = %q, want %q", kind, errDeadlineExceeded)
	}
	if got := srv.Pool().Stats().Leases; got != 0 {
		t.Errorf("leases = %d, want 0: a queued-then-expired request must not lease", got)
	}

	close(gate.gate)
	if status := <-blockedDone; status != http.StatusOK {
		t.Errorf("blocked request finished with %d, want 200", status)
	}
}

func TestGracefulDrain(t *testing.T) {
	gate := newBlockingGate()
	srv := NewServer(Config{MaxConcurrent: 2, QueueDepth: 2, WrapProber: gate.wrap})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inflightDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/align", alignBody(1))
		inflightDone <- status
	}()
	<-gate.started

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}

	// New work is rejected while draining.
	status, hdr, body := post(t, ts.URL+"/v1/estimate", estimateBody(1, 2))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status during drain = %d, want 503; body %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	if kind := decodeErrorBody(t, body).Error.Kind; kind != errDraining {
		t.Errorf("kind = %q, want %q", kind, errDraining)
	}

	// Readiness flips to draining for load balancers; liveness stays 200
	// — the process is healthy and finishing its in-flight work, and a
	// restart now would kill that work.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness must survive a drain)", resp.StatusCode)
	}

	// The in-flight request completes; only then does Drain return.
	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned %v before in-flight request completed", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate.gate)
	if status := <-inflightDone; status != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200 (drain must complete it)", status)
	}
	if err := <-drainErr; err != nil {
		t.Errorf("Drain = %v, want nil", err)
	}
}

// TestReadyzDrainSequence pins the orchestration contract across the
// whole drain lifecycle: ready before, unready the moment Drain begins
// (while in-flight work is still running), alive throughout, and still
// unready after the drain completes — readiness never flaps back.
func TestReadyzDrainSequence(t *testing.T) {
	gate := newBlockingGate()
	srv := NewServer(Config{MaxConcurrent: 1, WrapProber: gate.wrap})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", got)
	}

	inflightDone := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/align", alignBody(1))
		inflightDone <- status
	}()
	<-gate.started

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}

	// Unready while the in-flight request is still executing — load
	// balancers must stop routing before the last request finishes.
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200", got)
	}

	close(gate.gate)
	if status := <-inflightDone; status != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", status)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}

	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain completed = %d, want 503 (readiness must not flap back)", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz after drain completed = %d, want 200", got)
	}
}

// TestEstimateFaultTyped5xxAndNoPoisoning covers the estimate-side
// fault path: an invalid (negative) energy yields a typed 500 naming
// the scan-order fallback, and the pooled session the faulty request
// touched serves the next request with byte-identical results to a
// fresh server.
func TestEstimateFaultTyped5xxAndNoPoisoning(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var req map[string]any
	if err := json.Unmarshal(estimateBody(1, 2), &req); err != nil {
		t.Fatal(err)
	}
	req["observations"] = []map[string]any{{"beam": 0, "energy": -5.0}, {"beam": 1, "energy": 2.0}}
	faulty, _ := json.Marshal(req)

	status, _, data := post(t, ts.URL+"/v1/estimate", faulty)
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", status, data)
	}
	eb := decodeErrorBody(t, data)
	if eb.Error.Kind != errEstimationFailed {
		t.Errorf("kind = %q, want %q", eb.Error.Kind, errEstimationFailed)
	}
	if eb.Fallback == nil || eb.Fallback.Policy != "scan-order" {
		t.Fatalf("fallback = %+v, want scan-order policy", eb.Fallback)
	}
	if len(eb.Fallback.RXBeams) == 0 {
		t.Error("scan-order fallback carries no beams to sound")
	}

	// The session that saw the poisoned window must answer the next
	// request exactly like a never-faulted server.
	status, _, got := post(t, ts.URL+"/v1/estimate", estimateBody(1, 3))
	if status != http.StatusOK {
		t.Fatalf("post-fault request: status %d, body %s", status, got)
	}
	fresh := NewServer(Config{})
	tsFresh := httptest.NewServer(fresh)
	defer tsFresh.Close()
	_, _, want := post(t, tsFresh.URL+"/v1/estimate", estimateBody(1, 3))
	if !bytes.Equal(got, want) {
		t.Errorf("post-fault response differs from fresh server:\n got: %s\nwant: %s", got, want)
	}
}

// TestAlignNaNInjection wires internal/faultinject through the prober
// seam: with every energy NaN the run cannot pick a pair, so the server
// answers a typed 5xx that names the scan-order fallback.
func TestAlignNaNInjection(t *testing.T) {
	srv := NewServer(Config{
		WrapProber: func(p meas.Prober) meas.Prober {
			return faultinject.New(p, faultinject.Config{PNaN: 1}, rng.New(1))
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, _, data := post(t, ts.URL+"/v1/align", alignBody(1))
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", status, data)
	}
	eb := decodeErrorBody(t, data)
	if eb.Error.Kind != errEstimationFailed {
		t.Errorf("kind = %q, want %q", eb.Error.Kind, errEstimationFailed)
	}
	if eb.Fallback == nil || eb.Fallback.Policy != "scan-order" {
		t.Errorf("fallback = %+v, want scan-order policy", eb.Fallback)
	}
}

// TestAlignPanicInjection covers the panic half of the fault seam: a
// prober that panics mid-run yields a typed 500, and the very next
// request on the same server runs clean with results byte-identical to
// an unfaulted server.
func TestAlignPanicInjection(t *testing.T) {
	var mu sync.Mutex
	requests := 0
	srv := NewServer(Config{
		WrapProber: func(p meas.Prober) meas.Prober {
			mu.Lock()
			requests++
			first := requests == 1
			mu.Unlock()
			if !first {
				return p
			}
			return faultinject.WrapTransient(1, faultinject.TransientPanic)(0, "serve", p)
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, _, data := post(t, ts.URL+"/v1/align", alignBody(7))
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", status, data)
	}
	eb := decodeErrorBody(t, data)
	if eb.Error.Kind != errInternalPanic {
		t.Errorf("kind = %q, want %q", eb.Error.Kind, errInternalPanic)
	}
	if eb.Fallback == nil || eb.Fallback.Policy != "scan-order" {
		t.Errorf("fallback = %+v, want scan-order policy", eb.Fallback)
	}

	status, _, got := post(t, ts.URL+"/v1/align", alignBody(7))
	if status != http.StatusOK {
		t.Fatalf("post-panic request: status %d, body %s", status, got)
	}
	clean := NewServer(Config{})
	tsClean := httptest.NewServer(clean)
	defer tsClean.Close()
	_, _, want := post(t, tsClean.URL+"/v1/align", alignBody(7))
	if !bytes.Equal(got, want) {
		t.Errorf("post-panic response differs from clean server:\n got: %s\nwant: %s", got, want)
	}
}

// TestEstimatePanicTyped500AndDiscard covers the estimate-side panic
// path: the typed internal_panic envelope (with its scan-order
// fallback) must actually reach the client — the recover must not
// dereference the lease after Discard, which panics by design — the
// poisoned session must be discarded, and the next request must match
// a fresh server byte for byte.
func TestEstimatePanicTyped500AndDiscard(t *testing.T) {
	armed := true
	srv := NewServer(Config{estimateHook: func() {
		if armed {
			armed = false
			panic("injected estimate fault")
		}
	}})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, _, data := post(t, ts.URL+"/v1/estimate", estimateBody(1, 3))
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", status, data)
	}
	eb := decodeErrorBody(t, data)
	if eb.Error.Kind != errInternalPanic {
		t.Errorf("kind = %q, want %q", eb.Error.Kind, errInternalPanic)
	}
	if eb.Fallback == nil || eb.Fallback.Policy != "scan-order" || len(eb.Fallback.RXBeams) == 0 {
		t.Fatalf("fallback = %+v, want scan-order policy with beams", eb.Fallback)
	}
	if got := srv.Pool().Stats().Discarded; got != 1 {
		t.Errorf("discarded sessions = %d, want 1", got)
	}

	status, _, got := post(t, ts.URL+"/v1/estimate", estimateBody(1, 3))
	if status != http.StatusOK {
		t.Fatalf("post-panic request: status %d, body %s", status, got)
	}
	fresh := NewServer(Config{})
	tsFresh := httptest.NewServer(fresh)
	defer tsFresh.Close()
	_, _, want := post(t, tsFresh.URL+"/v1/estimate", estimateBody(1, 3))
	if !bytes.Equal(got, want) {
		t.Errorf("post-panic response differs from fresh server:\n got: %s\nwant: %s", got, want)
	}
}

// TestClientDisconnectIsClientGone pins the taxonomy split between the
// server's own timeout and a client hang-up: a canceled request context
// (what net/http hands the handler when the client disconnects) must be
// answered and counted as client_gone (499), never deadline_exceeded.
// The handler is driven directly so the cancellation is observed
// deterministically: cancel() happens before the gate opens, and scan
// with budget 4 re-checks ctx before every measurement.
func TestClientDisconnectIsClientGone(t *testing.T) {
	gate := newBlockingGate()
	srv := NewServer(Config{WrapProber: gate.wrap})

	body, err := json.Marshal(map[string]any{
		"scheme": "scan", "budget": 4, "seed": int64(1),
		"tx_panel_x": 2, "tx_panel_z": 1, "tx_beams_az": 2, "tx_beams_el": 1,
		"rx_panel_x": 2, "rx_panel_z": 1, "rx_beams_az": 2, "rx_beams_el": 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-gate.started
		cancel() // the client hangs up while the first measurement is gated
		close(gate.gate)
	}()

	req := httptest.NewRequest(http.MethodPost, "/v1/align", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)

	if rr.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d; body %s", rr.Code, statusClientClosedRequest, rr.Body.Bytes())
	}
	if kind := decodeErrorBody(t, rr.Body.Bytes()).Error.Kind; kind != errClientGone {
		t.Errorf("kind = %q, want %q", kind, errClientGone)
	}
	if n := srv.Recorder().Counter("serve_errors_client_gone").Value(); n != 1 {
		t.Errorf("client_gone counter = %d, want 1", n)
	}
	if n := srv.Recorder().Counter("serve_errors_deadline_exceeded").Value(); n != 0 {
		t.Errorf("deadline_exceeded = %d, want 0: a disconnect is not a timeout", n)
	}
}

func TestAlignDeterministicForSeed(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	_, _, first := post(t, ts.URL+"/v1/align", alignBody(42))
	_, _, second := post(t, ts.URL+"/v1/align", alignBody(42))
	if !bytes.Equal(first, second) {
		t.Errorf("same seed, different bodies:\n1: %s\n2: %s", first, second)
	}
	_, _, other := post(t, ts.URL+"/v1/align", alignBody(43))
	if bytes.Equal(first, other) {
		t.Error("different seeds produced identical bodies (suspicious)")
	}
}

func TestBadRequests(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name string
		url  string
		body string
	}{
		{"malformed json", "/v1/estimate", `{`},
		{"unknown field", "/v1/estimate", `{"not_a_field": 1}`},
		{"no observations", "/v1/estimate", `{"panel_x": 4, "panel_z": 1}`},
		{"beam out of range", "/v1/estimate", `{"panel_x":4,"panel_z":1,"beams_az":4,"beams_el":1,"observations":[{"beam":99,"energy":1}]}`},
		{"zero budget", "/v1/align", `{"budget": 0}`},
		{"unknown scheme", "/v1/align", `{"budget": 4, "scheme": "nope"}`},
		{"unknown channel", "/v1/align", `{"budget": 4, "channel": "nope"}`},
		{"negative tx panel", "/v1/align", `{"budget": 4, "tx_panel_x": -1}`},
		{"negative rx panel", "/v1/align", `{"budget": 4, "rx_panel_z": -8}`},
		{"negative tx beams", "/v1/align", `{"budget": 4, "tx_beams_el": -2}`},
		{"negative rx beams", "/v1/align", `{"budget": 4, "rx_beams_az": -4}`},
		{"negative snapshots", "/v1/align", `{"budget": 4, "snapshots": -2}`},
		{"negative estimate panel", "/v1/estimate", `{"panel_x": -4, "observations": [{"beam": 0, "energy": 1}]}`},
	}
	for _, tc := range cases {
		status, _, data := post(t, ts.URL+tc.url, []byte(tc.body))
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400; body %s", tc.name, status, data)
			continue
		}
		if kind := decodeErrorBody(t, data).Error.Kind; kind != errBadRequest {
			t.Errorf("%s: kind = %q, want %q", tc.name, kind, errBadRequest)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/estimate = %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}

	for i := 0; i < 3; i++ {
		if status, _, body := post(t, ts.URL+"/v1/estimate", estimateBody(i%4, 2)); status != http.StatusOK {
			t.Fatalf("warmup request %d: status %d, body %s", i, status, body)
		}
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statszBody
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Pool.Leases != 3 {
		t.Errorf("statsz leases = %d, want 3", stats.Pool.Leases)
	}
	if stats.Pool.Created < 1 {
		t.Error("statsz reports no sessions created")
	}
	lat, ok := stats.Latency["estimate"]
	if !ok {
		t.Fatal("statsz has no latency entry for estimate")
	}
	if lat.Count != 3 {
		t.Errorf("latency count = %d, want 3", lat.Count)
	}
	if lat.P50 <= 0 || lat.P99 < lat.P50 {
		t.Errorf("implausible percentiles: p50=%v p99=%v", lat.P50, lat.P99)
	}
	if stats.Counters["serve_requests_estimate"] != 3 {
		t.Errorf("request counter = %d, want 3", stats.Counters["serve_requests_estimate"])
	}
}

func TestTelemetryFragmentOptIn(t *testing.T) {
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var req map[string]any
	if err := json.Unmarshal(estimateBody(1, 2), &req); err != nil {
		t.Fatal(err)
	}
	req["telemetry"] = true
	body, _ := json.Marshal(req)
	status, _, data := post(t, ts.URL+"/v1/estimate", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	var resp map[string]json.RawMessage
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if _, ok := resp["telemetry"]; !ok {
		t.Error("telemetry fragment missing despite opt-in")
	}

	// Without opt-in the fragment (which carries wall-clock timings)
	// must be absent, keeping bodies deterministic.
	status, _, data = post(t, ts.URL+"/v1/estimate", estimateBody(1, 2))
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if bytes.Contains(data, []byte(`"telemetry"`)) {
		t.Error("telemetry fragment present without opt-in")
	}
}

func TestDrainIdempotentAndImmediateWhenIdle(t *testing.T) {
	srv := NewServer(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("idle drain = %v, want nil", err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second drain = %v, want nil", err)
	}
}

func TestNewAlignHandlerSmokeViaRoot(t *testing.T) {
	// The public wrapper is exercised in the root package's tests; here
	// just pin that a drained server rejects with the draining kind.
	srv := NewServer(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	status, _, data := post(t, ts.URL+"/v1/estimate", estimateBody(0, 1))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status after drain = %d, want 503; body %s", status, data)
	}
	if kind := decodeErrorBody(t, data).Error.Kind; kind != errDraining {
		t.Errorf("kind = %q, want %q", kind, errDraining)
	}
}

func TestMain(m *testing.M) {
	flag.Parse()
	os.Exit(m.Run())
}
